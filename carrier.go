package rfidraw

import "rfidraw/internal/phys"

// backscatter is the link type of passive RFID: the carrier traverses the
// reader→tag path twice, doubling phase accumulation per metre.
const backscatter = phys.Backscatter

// newCarrier wraps the internal carrier constructor so the public package
// can offer a frequency override without exposing internal types.
func newCarrier(freqHz float64) phys.Carrier { return phys.NewCarrier(freqHz) }

// DefaultCarrierHz is the prototype's query frequency (§6 of the paper).
const DefaultCarrierHz = 922e6

// WavelengthM returns the wavelength in metres for a carrier frequency.
func WavelengthM(carrierHz float64) float64 { return phys.NewCarrier(carrierHz).WavelengthM }
