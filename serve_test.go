package rfidraw

import (
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/realtime"
	"rfidraw/internal/server"
	"rfidraw/internal/sim"
)

// serveScenario caches one single-word run for the serving tests.
var (
	serveOnce sync.Once
	serveRun  *sim.MultiWordRun
	serveErr  error
)

func serveScenario(t *testing.T) *sim.MultiWordRun {
	t.Helper()
	serveOnce.Do(func() {
		sc, err := sim.New(sim.Config{Seed: 11})
		if err != nil {
			serveErr = err
			return
		}
		serveRun, serveErr = sc.RunWords([]string{"hi"}, []geom.Vec2{{X: 0.6, Z: 1.0}})
	})
	if serveErr != nil {
		t.Fatal(serveErr)
	}
	return serveRun
}

// TestOpenSessionLive: an in-process session traces a live report stream
// and delivers points (and the end marker) to a subscriber.
func TestOpenSessionLive(t *testing.T) {
	run := serveScenario(t)
	sys, err := New(Config{PlaneDistanceM: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	sess, err := sys.OpenSession(SessionSpec{ID: "live", Sweep: run.SweepInterval})
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID() != "live" {
		t.Fatalf("ID = %q", sess.ID())
	}
	sub, err := sess.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	var points, ends int
	var lastTag string
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range sub.Events() {
			switch ev.Type {
			case "point":
				points++
				lastTag = ev.Tag
			case "end":
				ends++
			}
		}
	}()

	for _, rep := range realtime.MergeStreams(run.ReportsRF...) {
		if err := sess.Offer(ReaderReport{
			Time: rep.Time, ReaderID: rep.ReaderID, Antenna: rep.AntennaID,
			EPC: rep.EPC.String(), Phase: rep.PhaseRad, Power: rep.PowerDB,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	sess.Close() // idempotent
	<-done
	if points == 0 {
		t.Fatal("no live points delivered")
	}
	if lastTag != run.Tags[0].EPC.String() {
		t.Fatalf("point tag = %q, want %q", lastTag, run.Tags[0].EPC.String())
	}
	if ends != 1 {
		t.Fatalf("end events = %d, want 1", ends)
	}
	if _, err := sys.OpenSession(SessionSpec{ID: "", Sweep: 0}); err == nil {
		t.Fatal("OpenSession with zero sweep should fail")
	}
}

// TestSystemCloseConcurrent pins the documented Close contract: Close is
// idempotent and safe to race against in-flight Trace* calls.
func TestSystemCloseConcurrent(t *testing.T) {
	run := serveScenario(t)
	sys, err := New(Config{PlaneDistanceM: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]Sample, len(run.SamplesRF[0]))
	for i, s := range run.SamplesRF[0] {
		samples[i] = Sample{Time: s.T, Phases: map[int]float64(s.Phase)}
	}
	streams := map[string][]Sample{run.Tags[0].EPC.String(): samples}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			// Either a full result or a closed-engine error is fine; a
			// panic or hang is not.
			if _, err := sys.TraceMany(streams); err != nil && !strings.Contains(err.Error(), "closed") {
				t.Errorf("TraceMany: %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := sys.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := sys.Close(); err != nil {
		t.Fatalf("final Close: %v", err)
	}
	// The synchronous single-tag path runs on the caller's goroutine and
	// still completes after Close.
	if _, err := sys.Trace(samples); err != nil {
		t.Fatalf("Trace after Close: %v", err)
	}
}

// TestServeSurface boots the daemon layer over a System and checks the
// observability endpoints respond.
func TestServeSurface(t *testing.T) {
	sys, err := New(Config{PlaneDistanceM: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sv, err := sys.NewServer(ServeConfig{HTTPAddr: "127.0.0.1:0", IngestAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Start(); err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get("http://" + sv.HTTPAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
	}
	// An in-process session is visible on the daemon API.
	sess, err := sys.OpenSession(SessionSpec{ID: "visible", Sweep: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	resp, err := http.Get("http://" + sv.HTTPAddr() + "/v1/sessions/visible")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-process session not visible over HTTP: %s", resp.Status)
	}
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing the server closed the shared registry's sessions.
	if err := sess.Offer(ReaderReport{}); !errors.Is(err, server.ErrSessionClosed) {
		t.Fatalf("Offer after server close: %v", err)
	}
}

// TestServeRejectsImpossibleAcquireBound: an acquisition buffer smaller
// than the warmup must fail server construction with a clear error, not
// silently kill every tag's pipeline at first ingest.
func TestServeRejectsImpossibleAcquireBound(t *testing.T) {
	sys, err := New(Config{PlaneDistanceM: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.NewServer(ServeConfig{
		HTTPAddr: "127.0.0.1:0", IngestAddr: "127.0.0.1:0",
		MaxAcquireBuffer: 2,
	}); err == nil {
		t.Fatal("MaxAcquireBuffer below the warmup must fail NewServer")
	}
}
