package rfidraw

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"testing"

	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/sim"
)

// equivEpsilon returns the dense-vs-hierarchical equivalence tolerance in
// metres: 0.02 (half the paper's median-accuracy envelope of a few cm) by
// default, overridable with RFIDRAW_EQUIV_EPSILON_M for stricter or
// machine-specific gates.
func equivEpsilon(t *testing.T) float64 {
	t.Helper()
	if s := os.Getenv("RFIDRAW_EQUIV_EPSILON_M"); s != "" {
		eps, err := strconv.ParseFloat(s, 64)
		if err != nil || eps <= 0 {
			t.Fatalf("bad RFIDRAW_EQUIV_EPSILON_M=%q: %v", s, err)
		}
		return eps
	}
	return 0.02
}

func toPublicSamples(t *testing.T, run *sim.WordRun) []Sample {
	t.Helper()
	out := make([]Sample, len(run.SamplesRF))
	for i, s := range run.SamplesRF {
		out[i] = Sample{Time: s.T, Phases: map[int]float64(s.Phase)}
	}
	return out
}

// TestHierarchicalMatchesDenseOnCorpus is the tentpole's equivalence gate:
// over a sim-corpus workload, the default hierarchical search must
// reproduce the dense reference trajectories within epsilon, while
// spending at least 5× fewer steady-state grid evaluations per sample.
func TestHierarchicalMatchesDenseOnCorpus(t *testing.T) {
	eps := equivEpsilon(t)
	dense, err := New(Config{PlaneDistanceM: 2, Search: SearchConfig{Mode: SearchDense}})
	if err != nil {
		t.Fatal(err)
	}
	defer dense.Close()
	hier, err := New(Config{PlaneDistanceM: 2}) // zero value: hierarchical
	if err != nil {
		t.Fatal(err)
	}
	defer hier.Close()

	words := []struct {
		word  string
		start geom.Vec2
		seed  int64
	}{
		{"on", geom.Vec2{X: 0.9, Z: 1.0}, 21},
		{"hi", geom.Vec2{X: 1.3, Z: 0.8}, 22},
		{"go", geom.Vec2{X: 0.6, Z: 1.3}, 23},
		{"up", geom.Vec2{X: 1.6, Z: 1.1}, 24},
	}
	var denseEvals, hierEvals, denseSteps, hierSteps int
	var medians []float64
	for _, w := range words {
		sc, err := sim.New(sim.Config{Seed: w.seed})
		if err != nil {
			t.Fatal(err)
		}
		run, err := sc.RunWord(w.word, w.start, handwriting.DefaultStyle())
		if err != nil {
			t.Fatal(err)
		}
		samples := toPublicSamples(t, run)
		dres, err := dense.Trace(samples)
		if err != nil {
			t.Fatalf("%s: dense trace: %v", w.word, err)
		}
		hres, err := hier.Trace(samples)
		if err != nil {
			t.Fatalf("%s: hierarchical trace: %v", w.word, err)
		}
		if d := dres.InitialPosition.Dist(hres.InitialPosition); d > eps {
			t.Errorf("%s: initial positions differ by %.4f m (dense %+v vs hierarchical %+v, eps %.3f)",
				w.word, d, dres.InitialPosition, hres.InitialPosition, eps)
		}
		n := len(dres.Trajectory)
		if len(hres.Trajectory) < n {
			n = len(hres.Trajectory)
		}
		if n == 0 {
			t.Fatalf("%s: empty trajectory", w.word)
		}
		dists := make([]float64, n)
		for i := 0; i < n; i++ {
			dp, hp := dres.Trajectory[i], hres.Trajectory[i]
			dists[i] = math.Hypot(dp.X-hp.X, dp.Z-hp.Z)
		}
		sort.Float64s(dists)
		med := dists[n/2]
		medians = append(medians, med)
		if med > eps {
			t.Errorf("%s: median pointwise distance %.4f m exceeds epsilon %.3f", w.word, med, eps)
		}
		dt, ht := dres.Traces[dres.Chosen], hres.Traces[hres.Chosen]
		denseEvals += dt.SearchEvals
		denseSteps += len(dt.Points)
		hierEvals += ht.SearchEvals
		hierSteps += len(ht.Points)
	}

	dPer := float64(denseEvals) / float64(denseSteps)
	hPer := float64(hierEvals) / float64(hierSteps)
	t.Logf("steady-state grid evals/sample: dense %.1f, hierarchical %.1f (%.1fx reduction); per-word medians %v",
		dPer, hPer, dPer/hPer, fmtMedians(medians))
	if dPer < 5*hPer {
		t.Errorf("hierarchical search spent %.1f evals/sample vs dense %.1f — reduction %.2fx is below the 5x target",
			hPer, dPer, dPer/hPer)
	}
}

func fmtMedians(m []float64) string {
	out := ""
	for i, v := range m {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.4f", v)
	}
	return out
}
