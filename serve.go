package rfidraw

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/deploy"
	"rfidraw/internal/engine"
	"rfidraw/internal/realtime"
	"rfidraw/internal/rfid"
	"rfidraw/internal/server"
	"rfidraw/internal/vote"
	"rfidraw/internal/wal"
)

// ServeConfig configures the serving layer a System can expose: the
// rfidrawd daemon surface (HTTP control + streaming API, reader ingest
// gateway) and the session registry behind it. Zero values take the
// defaults noted per field.
type ServeConfig struct {
	// HTTPAddr is the control/streaming API address. Default
	// 127.0.0.1:8090.
	HTTPAddr string
	// IngestAddr is the reader ingest gateway address. Default
	// 127.0.0.1:7070.
	IngestAddr string
	// MaxSessions caps live sessions; creates beyond it are shed with
	// HTTP 503. Default 128.
	MaxSessions int
	// MaxSubscribers caps live-stream consumers per session; attaches
	// beyond it are shed with HTTP 503. Default 16.
	MaxSubscribers int
	// SubscriberQueue bounds each subscriber's event queue; a consumer
	// that falls behind loses the oldest events (and is told so with
	// "drop" events) rather than stalling the session. Default 256.
	SubscriberQueue int
	// SessionShards is each session engine's worker shard count.
	// Default 1 — sessions are the unit of parallelism; raise it for
	// sessions tracking many simultaneous tags.
	SessionShards int
	// MaxAcquireBuffer bounds each tag's warmup sample buffer: a tag
	// whose initial acquisition keeps failing is declared dead once this
	// many sweeps have been buffered, capping the per-tag memory a
	// session commits to unacquirable tags. Default 400 sweeps.
	MaxAcquireBuffer int
	// IdleTimeout expires sessions with no activity, readers or
	// subscribers. Default 2 minutes. Mutable at runtime via the
	// control API.
	IdleTimeout time.Duration
	// RetainFor bounds how long a parked session's record is kept with
	// no retrace or catch-up activity before it is forgotten and its
	// log deleted. 0 (the default) retains forever.
	RetainFor time.Duration
	// ReorderWindow is how long ingest holds reports to resequence
	// cross-reader skew. Default 25ms.
	ReorderWindow time.Duration

	// Capacity calibrates the admission layer's congestion score: each
	// per-session demand signal (search evaluations/s, WAL bytes/s,
	// late-report rate, subscriber backlog) is normalized against these
	// and the node score is the worst component. Zero fields take
	// generous defaults sized for a single modern core.
	Capacity CostCapacity
	// ShedThreshold is the congestion score at or above which new
	// sessions are refused with HTTP 429 + Retry-After. 0 takes the
	// default 0.9; negative disables score-driven shedding (the
	// MaxSessions hard cap still applies).
	ShedThreshold float64
	// ParkThreshold is the score at or above which the pressure loop
	// parks the lowest-cost durable sessions (engine reclaimed, record
	// kept serveable and resumable) until the score recovers. 0 takes
	// the default 0.75; negative disables parking under pressure.
	ParkThreshold float64

	// DataDir, when set, makes sessions durable: each session's
	// canonical resequenced report stream is recorded in a per-session
	// write-ahead log under this directory, retained session logs are
	// rehydrated as "recovered" sessions at startup, idle-expired
	// sessions are parked (engine reclaimed, record serveable) instead
	// of forgotten, and the retrace / ?from=seq catch-up APIs serve from
	// the record. Empty disables durability (the pre-WAL behaviour).
	DataDir string
	// WALSyncEvery fsyncs each session's log every N report appends
	// (drain boundaries always sync). 1 syncs every append. Default 64.
	WALSyncEvery int

	// TraceSampleN seeds the span-sampling cadence: 1-in-N resequenced
	// reports per session record a full stage-by-stage span, served as
	// NDJSON from GET /v1/sessions/{id}/trace. 0 (the default) disables
	// sampling; mutable at runtime via the control API.
	TraceSampleN int

	// Logger, when non-nil, receives structured operational logs with
	// session-scoped attributes and takes precedence over Logf.
	Logger *slog.Logger
	// LogLevel, when non-nil, is the shared runtime-mutable level gate
	// the control API's "log_level" knob mutates.
	LogLevel *slog.LevelVar
	// Logf receives operational log lines when Logger is nil; nil
	// discards them.
	Logf func(format string, args ...any)
}

// CostCapacity is the congestion score's normalization basis: how much
// of each resource this node is provisioned for.
type CostCapacity struct {
	// SearchEvalsPerSec is the node's candidate-evaluation budget.
	SearchEvalsPerSec float64
	// WALBytesPerSec is the durability write budget.
	WALBytesPerSec float64
	// LatePerSec is the tolerable rate of reports arriving too late to
	// resequence.
	LatePerSec float64
	// Backlog is the tolerable worst subscriber queue fill fraction
	// (0, 1].
	Backlog float64
	// DowngradesPerSec is the tolerable rate of adaptive trace-tier
	// step-downs across all subscribers.
	DowngradesPerSec float64
}

func (c ServeConfig) registryConfig(factory server.EngineFactory) server.RegistryConfig {
	return server.RegistryConfig{
		NewEngine:       factory,
		MaxSessions:     c.MaxSessions,
		MaxSubscribers:  c.MaxSubscribers,
		SubscriberQueue: c.SubscriberQueue,
		ReorderWindow:   c.ReorderWindow,
		IdleTimeout:     c.IdleTimeout,
		RetainFor:       c.RetainFor,
		Capacity: server.Capacity{
			SearchEvalsPerSec: c.Capacity.SearchEvalsPerSec,
			WALBytesPerSec:    c.Capacity.WALBytesPerSec,
			LatePerSec:        c.Capacity.LatePerSec,
			Backlog:           c.Capacity.Backlog,
			DowngradesPerSec:  c.Capacity.DowngradesPerSec,
		},
		ShedThreshold: c.ShedThreshold,
		ParkThreshold: c.ParkThreshold,
		TraceSampleN:  c.TraceSampleN,
		Logger:        c.Logger,
		LogLevel:      c.LogLevel,
		Logf:          c.Logf,
	}
}

// RetracedTag is one tag's outcome from a Session.Retrace: the public
// Result plus the error for tags that never acquired.
type RetracedTag struct {
	Tag    string
	Result *Result
	Err    error
}

// Server is a running rfidrawd serving layer bound to a System.
type Server struct {
	inner *server.Server
}

// Start binds the listeners and begins serving; Close stops it.
func (sv *Server) Start() error { return sv.inner.Start() }

// Serve runs until the context is cancelled, then shuts down.
func (sv *Server) Serve(ctx context.Context) error { return sv.inner.Serve(ctx) }

// Close shuts the server down, closing every session. Idempotent.
func (sv *Server) Close() error { return sv.inner.Close() }

// HTTPAddr returns the bound API address (resolved, useful with ":0").
func (sv *Server) HTTPAddr() string { return sv.inner.HTTPAddr() }

// IngestAddr returns the bound ingest gateway address.
func (sv *Server) IngestAddr() string { return sv.inner.IngestAddr() }

// registry lazily builds the System's session registry. The first caller
// fixes the registry's limits: NewServer applies its ServeConfig,
// OpenSession applies defaults — so configure limits by building the
// server before opening in-process sessions.
func (s *System) registry(cfg ServeConfig) (*server.Registry, error) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.reg != nil {
		return s.reg, nil
	}
	// Session engines are built lazily per session; validate the
	// acquisition bound now so a misconfiguration fails server startup
	// instead of silently failing every tag at first ingest.
	if cfg.MaxAcquireBuffer > 0 && cfg.MaxAcquireBuffer < realtime.DefaultWarmupSamples {
		return nil, fmt.Errorf("rfidraw: MaxAcquireBuffer %d must be ≥ the %d-sample warmup",
			cfg.MaxAcquireBuffer, realtime.DefaultWarmupSamples)
	}
	shards := cfg.SessionShards
	if shards <= 0 {
		shards = 1
	}
	// systemFor resolves a session's (geometry, search) pair to a
	// positioning system. The default pair shares this System's
	// precomputed positioner and steering tables; every other
	// combination builds its tables once (steering-table construction is
	// the expensive part) and every session on that pair — live engine,
	// recovery replay, retrace — shares the result, so a recorded
	// session deterministically rebuilds the exact pipeline it ran live.
	var (
		geoMu  sync.Mutex
		geoSys = map[string]*core.System{}
	)
	systemFor := func(geometry string, search *vote.SearchConfig) (*core.System, error) {
		if geometry == "" {
			geometry = "default"
		}
		if geometry == "default" && search == nil {
			return s.eng.System(), nil
		}
		key := geometry
		if search != nil {
			key = fmt.Sprintf("%s|%d/%d/%d", geometry, search.Mode, search.TopK, search.Levels)
		}
		geoMu.Lock()
		defer geoMu.Unlock()
		if sys, ok := geoSys[key]; ok {
			return sys, nil
		}
		base := s.eng.System()
		dep := base.Deployment()
		coreCfg := base.Config()
		if geometry != "default" {
			spec, err := deploy.GeometryByName(geometry)
			if err != nil {
				return nil, err
			}
			dep, err = spec.Build(base.Deployment().Carrier, base.Deployment().Link)
			if err != nil {
				return nil, err
			}
			coreCfg.Region = spec.Region()
		}
		if search != nil {
			coreCfg.Vote.Search = *search
			coreCfg.Trace.Search = *search
		}
		sys, err := core.NewSystem(dep, coreCfg)
		if err != nil {
			return nil, err
		}
		geoSys[key] = sys
		return sys, nil
	}
	factory := func(sweep time.Duration, geometry string, search *vote.SearchConfig, onUpdate func(engine.Update)) (*engine.Engine, error) {
		sys, err := systemFor(geometry, search)
		if err != nil {
			return nil, err
		}
		return engine.New(engine.Config{
			Shards: shards,
			// Sessions on one (geometry, search) pair share a read-only
			// positioner and steering tables; each gets its own shard
			// group.
			System:           sys,
			SweepInterval:    sweep,
			MaxAcquireBuffer: cfg.MaxAcquireBuffer,
			OnUpdate:         onUpdate,
			// Dispatch every report immediately: serving is the
			// latency-sensitive live-cursor regime.
			BatchSize: 1,
		})
	}
	regCfg := cfg.registryConfig(factory)
	if cfg.DataDir != "" {
		store, err := wal.Open(cfg.DataDir, wal.Options{SyncEvery: cfg.WALSyncEvery})
		if err != nil {
			return nil, fmt.Errorf("rfidraw: %w", err)
		}
		regCfg.WAL = store
		regCfg.NewReplayer = func(sweep time.Duration, geometry string, search *vote.SearchConfig, record bool) (*engine.Replayer, error) {
			// The replayer shares systemFor's cache with the live
			// factory: the same (geometry, search) pair resolves to the
			// same precomputed tables, so a retrace without an override
			// is byte-equivalent to the live trace by construction.
			sys, err := systemFor(geometry, search)
			if err != nil {
				return nil, err
			}
			return engine.NewReplayer(engine.Config{
				System:           sys,
				SweepInterval:    sweep,
				MaxAcquireBuffer: cfg.MaxAcquireBuffer,
				RecordTrace:      record,
			})
		}
	}
	reg, err := server.NewRegistry(regCfg)
	if err != nil {
		return nil, fmt.Errorf("rfidraw: %w", err)
	}
	s.reg = reg
	return reg, nil
}

// NewServer builds the daemon serving layer over this System: a session
// registry whose sessions share the System's precomputed positioner, an
// ingest gateway for readerwire reader connections, and the HTTP
// control/streaming/observability API. Call Start (or Serve) to bind it.
func (s *System) NewServer(cfg ServeConfig) (*Server, error) {
	reg, err := s.registry(cfg)
	if err != nil {
		return nil, err
	}
	inner, err := server.New(server.Config{
		HTTPAddr:       cfg.HTTPAddr,
		IngestAddr:     cfg.IngestAddr,
		SharedRegistry: reg,
		IdleTimeout:    cfg.IdleTimeout,
		Logger:         cfg.Logger,
		LogLevel:       cfg.LogLevel,
		Logf:           cfg.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("rfidraw: %w", err)
	}
	return &Server{inner: inner}, nil
}

// Serve runs the daemon serving layer until the context is cancelled —
// the one-call form of NewServer + Serve that cmd/rfidrawd uses.
func (s *System) Serve(ctx context.Context, cfg ServeConfig) error {
	sv, err := s.NewServer(cfg)
	if err != nil {
		return err
	}
	return sv.Serve(ctx)
}

// ReaderReport is one live phase report fed into a Session: which antenna
// heard which tag when, at what phase. It is the public shape of the
// readerwire PhaseReport.
type ReaderReport struct {
	// Time is the reply time relative to the start of the session's
	// stream; reports must be non-decreasing per reader.
	Time time.Duration
	// ReaderID and Antenna identify the hearing port (antennas 1–8 in
	// the standard deployment).
	ReaderID int
	Antenna  int
	// EPC is the tag's 24-hex-digit identity; empty feeds a single
	// anonymous tag.
	EPC string
	// Phase is the measured wrapped phase in [0, 2π) radians.
	Phase float64
	// Power is the reply power in dB (informational).
	Power float64
}

// Event is one item of a session's live output stream: a trace point, a
// recognized glyph, a queue-drop notice or the end-of-session marker.
type Event struct {
	// Type is "point", "glyph", "drop" or "end".
	Type string
	// Tag is the writer's EPC hex (points, glyphs).
	Tag string
	// Time is the sample's stream time (points, glyphs).
	Time time.Duration
	// X, Z are writing-plane coordinates in metres (points).
	X, Z float64
	// Glyph is the recognized letter; Dist/Margin its DTW confidence;
	// Points the stroke's sample count.
	Glyph  string
	Dist   float64
	Margin float64
	Points int
	// Confidence is the leading hypothesis's running mean vote at this
	// point: ≤ 0, nearer 0 is better, collapsing when tracking is lost
	// (point events).
	Confidence float64
	// Hypotheses is how many candidate initial positions are still being
	// traced for this tag (point events); it shrinks as wrong candidates'
	// vote records collapse and they are retired.
	Hypotheses int
	// Switched marks a leadership change: the trajectory re-based onto a
	// different hypothesis, so the cursor may jump here. Stroke-building
	// consumers should treat it as a pen lift (point events).
	Switched bool
	// Dropped is how many events this subscriber lost (drop notices).
	Dropped int
}

// Session is an in-process serving session: the same registry entry the
// daemon serves over HTTP, fed and consumed directly by the embedding
// program.
type Session struct {
	inner *server.Session
}

// SessionSpec describes one serving session to open — the single
// creation surface OpenSession, Client.CreateSession and POST
// /v1/sessions all accept, so a new per-session knob is one field here
// instead of another constructor variant everywhere.
type SessionSpec struct {
	// ID names the session; "" assigns a random one.
	ID string
	// Sweep is the per-tag reader cadence (with N tags sharing reader
	// airtime, N × the raw sweep period). Required for in-process
	// sessions; daemon sessions may leave it 0 and let the first reader
	// Hello announce it.
	Sweep time.Duration
	// Geometry names an antenna geometry from the deployment registry;
	// "" uses the System's own. Fixed for the session's lifetime.
	Geometry string
	// Search overrides the vote-search configuration for this session;
	// nil takes the serving default. Recorded durably, so recovery and
	// retrace rebuild the same pipeline the live engine ran.
	Search *SearchConfig
	// WAL is the session's durability policy.
	WAL WALPolicy
}

// WALPolicy tunes one session's write-ahead logging (systems serving
// with ServeConfig.DataDir).
type WALPolicy struct {
	// Disable opts this session out of durability: no record, no
	// retrace, no parking — an explicitly ephemeral session.
	Disable bool
	// SyncEvery overrides the report-append fsync cadence for this
	// session's log (1 = every report); 0 takes the serving default.
	SyncEvery int
}

// OpenSession creates a live session on the System's session registry.
// The session traces every tag it hears concurrently on its own engine
// shard group and delivers points and glyphs to subscribers; if a
// Server is running over the same System, the session is also visible
// on the daemon API under the same ID.
func (s *System) OpenSession(spec SessionSpec) (*Session, error) {
	if spec.Sweep <= 0 {
		return nil, fmt.Errorf("rfidraw: OpenSession needs a positive sweep interval")
	}
	reg, err := s.registry(ServeConfig{})
	if err != nil {
		return nil, err
	}
	var sc *vote.SearchConfig
	if spec.Search != nil {
		sc = &vote.SearchConfig{
			Mode:   vote.SearchMode(spec.Search.Mode),
			TopK:   spec.Search.TopK,
			Levels: spec.Search.Levels,
		}
	}
	sess, err := reg.Open(server.SessionSpec{
		ID:       spec.ID,
		Sweep:    spec.Sweep,
		Geometry: spec.Geometry,
		Search:   sc,
		WAL: server.WALPolicy{
			Disable:   spec.WAL.Disable,
			SyncEvery: spec.WAL.SyncEvery,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("rfidraw: %w", err)
	}
	return &Session{inner: sess}, nil
}

// OpenSessionID creates a session by ID and sweep alone.
//
// Deprecated: use OpenSession with a SessionSpec.
func (s *System) OpenSessionID(id string, sweep time.Duration) (*Session, error) {
	return s.OpenSession(SessionSpec{ID: id, Sweep: sweep})
}

// ID returns the session's registry identity.
func (s *Session) ID() string { return s.inner.ID }

// Offer feeds one phase report. It blocks for backpressure when the
// session's ingest queue is full and fails once the session is closed.
func (s *Session) Offer(rep ReaderReport) error {
	wire := rfid.Report{
		Time:      rep.Time,
		ReaderID:  rep.ReaderID,
		AntennaID: rep.Antenna,
		PhaseRad:  rep.Phase,
		PowerDB:   rep.Power,
	}
	if rep.EPC != "" {
		epc, err := rfid.ParseEPC(rep.EPC)
		if err != nil {
			return fmt.Errorf("rfidraw: %w", err)
		}
		wire.EPC = epc
	}
	return s.inner.Offer(wire)
}

// Flush drains buffered ingest and closes the engine's open sweeps,
// delivering any final positions to subscribers (e.g. at end of stream).
// Flush is idempotent: with nothing offered since the previous flush it
// is a no-op, so racing an explicit Flush against the session's own idle
// drain or Close never closes a sweep twice.
func (s *Session) Flush() error { return s.inner.Flush() }

// Retrace replays the session's write-ahead log (systems serving with
// ServeConfig.DataDir) through a fresh tracking pipeline and returns
// each tag's batch Result, keyed by EPC. With search nil the pipeline
// matches the live one and the results are byte-equivalent to the live
// trace; a non-nil search re-traces the same record under different
// tunables. head is the log sequence the retrace covered.
func (s *Session) Retrace(search *SearchConfig) (results []RetracedTag, head uint64, err error) {
	var sc *vote.SearchConfig
	if search != nil {
		sc = &vote.SearchConfig{
			Mode:   vote.SearchMode(search.Mode),
			TopK:   search.TopK,
			Levels: search.Levels,
		}
	}
	inner, head, err := s.inner.Retrace(sc)
	if err != nil {
		return nil, 0, fmt.Errorf("rfidraw: %w", err)
	}
	out := make([]RetracedTag, 0, len(inner))
	for _, r := range inner {
		rt := RetracedTag{Tag: r.Tag, Err: r.Err}
		if r.Err == nil {
			rt.Result = convertResult(r.Result)
		}
		out = append(out, rt)
	}
	return out, head, nil
}

// Close tears the session down; subscribers see an "end" event and their
// channels close. Idempotent.
func (s *Session) Close() { s.inner.Close() }

// Subscription is one attached consumer of a session's event stream.
type Subscription struct {
	sub    *server.Subscriber
	events chan Event
	once   sync.Once
}

// Subscribe attaches a consumer with a bounded queue (buffer <= 0 takes
// the default, 256). A consumer that falls behind loses the oldest
// events — freshness beats completeness for a live cursor — and is told
// via "drop" events.
func (s *Session) Subscribe(buffer int) (*Subscription, error) {
	sub, err := s.inner.Subscribe(buffer)
	if err != nil {
		return nil, fmt.Errorf("rfidraw: %w", err)
	}
	return forwardSubscription(sub), nil
}

// SubscribeFrom attaches a catch-up consumer (systems serving with
// ServeConfig.DataDir): the stream opens with the session's recorded
// history replayed from its write-ahead log — points derived from log
// records with sequence ≥ from, 0 meaning everything — and then splices
// onto the live stream without gap or duplicate.
func (s *Session) SubscribeFrom(from uint64, buffer int) (*Subscription, error) {
	sub, err := s.inner.SubscribeFrom(from, buffer)
	if err != nil {
		return nil, fmt.Errorf("rfidraw: %w", err)
	}
	return forwardSubscription(sub), nil
}

func forwardSubscription(sub *server.Subscriber) *Subscription {
	out := &Subscription{sub: sub, events: make(chan Event, 16)}
	go func() {
		defer close(out.events)
		for ev := range sub.Events() {
			out.events <- Event{
				Type: ev.Type, Tag: ev.Tag, Time: ev.T,
				X: ev.X, Z: ev.Z,
				Glyph: ev.Glyph, Dist: ev.Dist, Margin: ev.Margin,
				Points: ev.Points, Confidence: ev.Confidence,
				Hypotheses: ev.Hypotheses, Switched: ev.Switched,
				Dropped: ev.Dropped,
			}
		}
	}()
	return out
}

// Events is the subscription's delivery channel; it closes when the
// session ends or the subscription is closed.
func (sub *Subscription) Events() <-chan Event { return sub.events }

// Drops reports how many events this subscription has lost to the
// slow-consumer policy.
func (sub *Subscription) Drops() int64 { return sub.sub.Drops() }

// Close detaches the subscription. Idempotent.
func (sub *Subscription) Close() {
	sub.once.Do(func() {
		sub.sub.Close()
		// Drain the forwarder so it observes the closed inner channel
		// and closes events.
		for range sub.events {
		}
	})
}
