// Benchmarks regenerating every figure of the paper's evaluation, plus
// ablations of the design choices DESIGN.md calls out and performance
// micro-benchmarks of the hot paths.
//
// Figure benches run reduced workloads (a few words instead of the paper's
// 150) so `go test -bench=.` finishes in minutes; cmd/rfidraw runs the
// full-scale versions. Each figure bench reports the headline quantity of
// its figure as a custom metric, so the benchmark output doubles as a
// compact reproduction table.
package rfidraw

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rfidraw/internal/antenna"
	"rfidraw/internal/core"
	"rfidraw/internal/corpus"
	"rfidraw/internal/deploy"
	"rfidraw/internal/engine"
	"rfidraw/internal/experiments"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/obs"
	"rfidraw/internal/phys"
	"rfidraw/internal/readerwire"
	"rfidraw/internal/realtime"
	"rfidraw/internal/recognition"
	"rfidraw/internal/rfid"
	"rfidraw/internal/server"
	"rfidraw/internal/sim"
	"rfidraw/internal/tracing"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
	"rfidraw/internal/wal"
)

// —— Figure benches ————————————————————————————————————————————————————————

func BenchmarkFig2BeamPatterns(b *testing.B) {
	var widthRatio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig2()
		if err != nil {
			b.Fatal(err)
		}
		widthRatio = r.Width2 / r.Width4
	}
	b.ReportMetric(widthRatio, "beamwidth-ratio-2v4ant")
}

func BenchmarkFig3GratingLobes(b *testing.B) {
	var lobes float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig3()
		if err != nil {
			b.Fatal(err)
		}
		lobes = float64(r.LobeCounts[len(r.LobeCounts)-1])
	}
	b.ReportMetric(lobes, "lobes-at-8lambda")
}

func BenchmarkFig4MultiResolution(b *testing.B) {
	var filtered float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig4()
		if err != nil {
			b.Fatal(err)
		}
		filtered = float64(r.LobesFiltered)
	}
	b.ReportMetric(filtered, "lobes-after-filter")
}

func BenchmarkFig6Positioning(b *testing.B) {
	var peakErr float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig6()
		if err != nil {
			b.Fatal(err)
		}
		peakErr = r.PeakErr * 100
	}
	b.ReportMetric(peakErr, "peak-err-cm")
}

func BenchmarkFig7WrongLobes(b *testing.B) {
	var far float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
		far = r.Far.ShapeErr * 100
	}
	b.ReportMetric(far, "far-lobe-shape-err-cm")
}

func BenchmarkFig10Microbenchmark(b *testing.B) {
	var shape float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig10(40)
		if err != nil {
			b.Fatal(err)
		}
		shape = r.ShapeErr * 100
	}
	b.ReportMetric(shape, "clear-shape-err-cm")
}

// benchBatch runs (and caches per size) a reduced word batch.
var benchBatches = map[string]*experiments.BatchResult{}

func batchFor(b *testing.B, prop sim.Propagation) *experiments.BatchResult {
	b.Helper()
	key := prop.String()
	if r, ok := benchBatches[key]; ok {
		return r
	}
	r, err := experiments.RunBatch(experiments.BatchConfig{Prop: prop, Words: 6, Users: 2, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	benchBatches[key] = r
	return r
}

func BenchmarkFig11TrajectoryCDF(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		batch := batchFor(b, sim.LOS)
		ratio = experiments.RunFig11(batch).Improvement()
	}
	b.ReportMetric(ratio, "improvement-x")
}

func BenchmarkFig11TrajectoryCDFNLOS(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		batch := batchFor(b, sim.NLOS)
		ratio = experiments.RunFig11(batch).Improvement()
	}
	b.ReportMetric(ratio, "improvement-x")
}

func BenchmarkFig12InitialPositionCDF(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		batch := batchFor(b, sim.LOS)
		ratio = experiments.RunFig12(batch).Improvement()
	}
	b.ReportMetric(ratio, "improvement-x")
}

func BenchmarkFig13ErrorCoupling(b *testing.B) {
	var buckets float64
	for i := 0; i < b.N; i++ {
		batch := batchFor(b, sim.LOS)
		buckets = float64(len(experiments.RunFig13(batch).Buckets))
	}
	b.ReportMetric(buckets, "buckets")
}

func BenchmarkFig14CharRecognition(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		batch := batchFor(b, sim.LOS)
		var ok, total int
		for _, o := range batch.Outcomes {
			ok += o.CharsOKRF
			total += o.CharsTotal
		}
		if total > 0 {
			rate = 100 * float64(ok) / float64(total)
		}
	}
	b.ReportMetric(rate, "char-rate-%")
}

func BenchmarkFig15WordRecognition(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		batch := batchFor(b, sim.LOS)
		var ok, total int
		for _, o := range batch.Outcomes {
			total++
			if o.WordOKRF {
				ok++
			}
		}
		if total > 0 {
			rate = 100 * float64(ok) / float64(total)
		}
	}
	b.ReportMetric(rate, "word-rate-%")
}

func BenchmarkFig16Play5m(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig16(60)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.BLErr / r.RFErr
	}
	b.ReportMetric(ratio, "improvement-x")
}

// —— Ablation benches ——————————————————————————————————————————————————————

// benchScenario builds a static-tag observation for ablations.
func benchObservation(b *testing.B, seed int64) (vote.Observations, geom.Vec2, *deploy.RFIDraw) {
	b.Helper()
	sc, err := sim.New(sim.Config{Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	src := geom.Vec2{X: 1.3, Z: 1.0}
	rf, _, err := sc.StaticRun(src, 400*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	return rf[len(rf)-1].Phase, src, sc.RFIDraw
}

// BenchmarkAblationNoCoarseFilter shows why the coarse pairs exist: wide
// pairs alone localize ambiguously (candidate far from truth scores as
// well as the truth).
func BenchmarkAblationNoCoarseFilter(b *testing.B) {
	obs, src, dep := benchObservation(b, 101)
	// Dense search: the wide-only arm measures raw grating-lobe
	// ambiguity, which the hierarchical search's peak-group selection
	// would reshape (see the same override in experiments/ablation.go).
	cfg := vote.Config{
		Plane: geom.Plane{Y: 2}, Region: deploy.DefaultRegion(), CandidateCount: 6,
		Search: vote.SearchConfig{Mode: vote.SearchDense},
	}
	full, err := vote.NewPositioner(dep.Stage1Pairs(), dep.WidePairs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	wideOnly, err := vote.NewPositioner(dep.WidePairs, dep.WidePairs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var errFull, errWide float64
	for i := 0; i < b.N; i++ {
		cf, err := full.Candidates(obs)
		if err != nil {
			b.Fatal(err)
		}
		cw, err := wideOnly.Candidates(obs)
		if err != nil {
			b.Fatal(err)
		}
		errFull = cf[0].Pos.Dist(src) * 100
		errWide = cw[0].Pos.Dist(src) * 100
	}
	b.ReportMetric(errFull, "with-filter-err-cm")
	b.ReportMetric(errWide, "wide-only-err-cm")
}

// BenchmarkAblationNoLobeLocking compares tracing with locked lobes (§5.2)
// against re-localizing every sample from scratch: without locking, shape
// coherence is lost.
func BenchmarkAblationNoLobeLocking(b *testing.B) {
	sc, err := sim.New(sim.Config{Seed: 102})
	if err != nil {
		b.Fatal(err)
	}
	wr, err := sc.RunWord("on", geom.Vec2{X: 0.9, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(sc.RFIDraw, core.Config{Plane: sc.Plane, Region: sc.Region})
	if err != nil {
		b.Fatal(err)
	}
	var lockedErr, unlockedErr float64
	for i := 0; i < b.N; i++ {
		res, err := sys.Trace(wr.SamplesRF)
		if err != nil {
			b.Fatal(err)
		}
		le, err := traj.MedianError(wr.Truth, res.Best.Trajectory, traj.AlignInitial, 64)
		if err != nil {
			b.Fatal(err)
		}
		lockedErr = le * 100

		// Unlocked: localize each sample independently (best candidate),
		// the re-vote-per-sample alternative to lobe locking.
		var pts []traj.Point
		for _, s := range wr.SamplesRF {
			cands, err := sys.Localize(s.Phase)
			if err != nil {
				continue
			}
			pts = append(pts, traj.Point{T: s.T, Pos: cands[0].Pos})
		}
		if len(pts) == 0 {
			b.Fatal("no per-sample localizations")
		}
		ue, err := traj.MedianError(wr.Truth, traj.Trajectory{Points: pts}, traj.AlignInitial, 64)
		if err != nil {
			b.Fatal(err)
		}
		unlockedErr = ue * 100
	}
	b.ReportMetric(lockedErr, "locked-err-cm")
	b.ReportMetric(unlockedErr, "per-sample-err-cm")
}

// BenchmarkAblationSeparationSweep quantifies §3.3: larger separations give
// finer angle quantization (more lobes) — the resolution/ambiguity dial.
func BenchmarkAblationSeparationSweep(b *testing.B) {
	carrier := phys.DefaultCarrier()
	lambda := carrier.WavelengthM
	var lobes [4]float64
	for i := 0; i < b.N; i++ {
		for si, sep := range []float64{2, 4, 8, 16} {
			a1 := antenna.Antenna{ID: 1, Pos: geom.Vec3{}}
			a2 := antenna.Antenna{ID: 2, Pos: geom.Vec3{X: sep * lambda}}
			p, err := antenna.NewPair(a1, a2, carrier, phys.Backscatter)
			if err != nil {
				b.Fatal(err)
			}
			lobes[si] = float64(p.LobeCount())
		}
	}
	b.ReportMetric(lobes[0], "lobes-2lambda")
	b.ReportMetric(lobes[1], "lobes-4lambda")
	b.ReportMetric(lobes[2], "lobes-8lambda")
	b.ReportMetric(lobes[3], "lobes-16lambda")
}

// BenchmarkAblationCandidateCount measures how many candidate initial
// positions tracing needs before the vote-selection finds the true start.
func BenchmarkAblationCandidateCount(b *testing.B) {
	sc, err := sim.New(sim.Config{Seed: 103, Distance: 3})
	if err != nil {
		b.Fatal(err)
	}
	wr, err := sc.RunWord("go", geom.Vec2{X: 0.9, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		b.Fatal(err)
	}
	var err1, err5 float64
	for i := 0; i < b.N; i++ {
		for _, count := range []int{1, 5} {
			sys, err := core.NewSystem(sc.RFIDraw, core.Config{
				Plane: sc.Plane, Region: sc.Region, CandidateCount: count,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := sys.Trace(wr.SamplesRF)
			if err != nil {
				b.Fatal(err)
			}
			e := res.InitialPosition().Dist(wr.Truth.Start()) * 100
			if count == 1 {
				err1 = e
			} else {
				err5 = e
			}
		}
	}
	b.ReportMetric(err1, "init-err-1cand-cm")
	b.ReportMetric(err5, "init-err-5cand-cm")
}

// —— Engine multi-tag benches ——————————————————————————————————————————————

// benchEngineRun caches one 8-user concurrent-writing session; jobs for
// higher tag counts replicate its streams under fresh keys, so throughput
// scaling is measured on identical per-tag work.
var benchEngineRun *sim.MultiWordRun

func benchEngineJobs(b *testing.B, tags int) []engine.TagJob {
	b.Helper()
	if benchEngineRun == nil {
		sc, err := sim.New(sim.Config{Seed: 77})
		if err != nil {
			b.Fatal(err)
		}
		words := []string{"hi", "go", "on", "it", "at", "to", "in", "up"}
		starts := make([]geom.Vec2, len(words))
		for i := range starts {
			starts[i] = geom.Vec2{X: 0.4 + 0.35*float64(i%4), Z: 0.6 + 0.45*float64(i/4)}
		}
		run, err := sc.RunWords(words, starts)
		if err != nil {
			b.Fatal(err)
		}
		benchEngineRun = run
	}
	jobs := make([]engine.TagJob, tags)
	for i := range jobs {
		src := benchEngineRun.SamplesRF[i%len(benchEngineRun.SamplesRF)]
		jobs[i] = engine.TagJob{Tag: fmt.Sprintf("tag-%03d", i), Samples: src}
	}
	return jobs
}

// BenchmarkEngineMultiTag measures full-pipeline throughput (vote →
// lobe-lock → trace) for 1/8/64 concurrent tags at 1 shard (the
// single-threaded path) and at one shard per core. tag-traces/s is the
// headline: at 8 tags it should scale near-linearly with cores.
func BenchmarkEngineMultiTag(b *testing.B) {
	shardCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		shardCounts = append(shardCounts, n)
	}
	for _, tags := range []int{1, 8, 64} {
		for _, shards := range shardCounts {
			b.Run(fmt.Sprintf("tags=%d/shards=%d", tags, shards), func(b *testing.B) {
				b.ReportAllocs()
				jobs := benchEngineJobs(b, tags)
				eng, err := engine.New(engine.Config{
					Shards: shards,
					Core:   core.Config{Plane: geom.Plane{Y: 2}, Region: deploy.DefaultRegion()},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, r := range eng.TraceBatch(jobs) {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
				b.StopTimer()
				traces := float64(b.N) * float64(len(jobs))
				b.ReportMetric(traces/b.Elapsed().Seconds(), "tag-traces/s")
			})
		}
	}
}

// BenchmarkEngineStreaming measures the live wire-fed path: every tag's
// raw reports interleaved, demultiplexed and tracked concurrently.
func BenchmarkEngineStreaming(b *testing.B) {
	benchEngineJobs(b, 8) // ensure the cached run exists
	run := benchEngineRun
	merged := realtime.MergeStreams(run.ReportsRF...)
	streamShards := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		streamShards = append(streamShards, n)
	}
	for _, shards := range streamShards {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Trackers are stateful per tag, so each iteration needs
				// a fresh engine; keep its construction (steering-table
				// precompute) out of the timed streaming work.
				b.StopTimer()
				eng, err := engine.New(engine.Config{
					Shards:        shards,
					Core:          core.Config{Plane: geom.Plane{Y: 2}, Region: deploy.DefaultRegion()},
					SweepInterval: run.SweepInterval * time.Duration(len(run.Tags)),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := eng.OfferAll(merged); err != nil {
					b.Fatal(err)
				}
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*float64(len(merged))/b.Elapsed().Seconds(), "reports/s")
		})
	}
}

// —— Serving dataplane benches ————————————————————————————————————————————

// benchDaemon lazily starts one in-process daemon shared by every
// BenchmarkIngestToEmit configuration. The registry's limits are fixed
// by its first builder, so it is sized here for the largest fan-out
// configuration; the daemon lives for the rest of the benchmark binary.
var benchDaemon *server.Client

func benchDaemonStart(b *testing.B) *server.Client {
	b.Helper()
	if benchDaemon != nil {
		return benchDaemon
	}
	sys, err := core.NewSystem(nil, core.Config{Plane: geom.Plane{Y: 2}, Region: deploy.DefaultRegion()})
	if err != nil {
		b.Fatal(err)
	}
	factory := func(sweep time.Duration, geometry string, search *vote.SearchConfig, onUpdate func(engine.Update)) (*engine.Engine, error) {
		return engine.New(engine.Config{
			Shards:        runtime.GOMAXPROCS(0),
			System:        sys,
			SweepInterval: sweep,
			OnUpdate:      onUpdate,
			BatchSize:     1,
		})
	}
	srv, err := server.New(server.Config{
		HTTPAddr:   "127.0.0.1:0",
		IngestAddr: "127.0.0.1:0",
		Registry: server.RegistryConfig{
			NewEngine:      factory,
			MaxSubscribers: 2048,
			// Batched subscribers queue group-commit carriers, each a
			// whole batch, so 32 slots is thousands of events of
			// headroom; the deep default exists for unbatched consumers.
			// At 1024 subscribers the default's queue buffers alone are
			// ~50MB of always-live, pointer-bearing heap, and every GC
			// cycle's rescan of it would drown the fan-out being measured.
			SubscriberQueue: 32,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	benchDaemon = &server.Client{BaseURL: "http://" + srv.HTTPAddr(), Ingest: srv.IngestAddr()}
	return benchDaemon
}

// benchSessionReaders polls the session info endpoint until the ingest
// gateway has released the session's last reader connection — the
// barrier proving every report written to the socket has been offered
// into the session pump.
func benchAwaitIngestDone(b *testing.B, httpc *http.Client, url string) {
	b.Helper()
	for {
		resp, err := httpc.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		var info struct {
			Readers int `json:"readers"`
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if info.Readers == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// BenchmarkIngestToEmit measures the serving dataplane end to end:
// reports enter through the readerwire ingest gateway, cross the session
// pump (reorder buffer → WAL-less engine offer → emit) and fan out to N
// attached HTTP stream subscribers, which drain their streams to EOF.
// reports/s is the headline metric; the subscriber axis exposes the
// per-event fan-out cost, which encode-once byte sharing keeps near
// flat, and the encoding axis compares NDJSON with the binary frame
// encoding.
func BenchmarkIngestToEmit(b *testing.B) {
	benchEngineJobs(b, 8) // ensure the cached run exists
	run := benchEngineRun
	merged := realtime.MergeStreams(run.ReportsRF...)
	sweep := run.SweepInterval * time.Duration(len(run.Tags))
	cl := benchDaemonStart(b)
	httpc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 600, MaxIdleConns: 600}}
	for _, enc := range []string{"ndjson", "binary"} {
		for _, subs := range []int{1, 64, 512} {
			b.Run(fmt.Sprintf("encoding=%s/subs=%d", enc, subs), func(b *testing.B) {
				ctx := context.Background()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					id, err := cl.CreateSession(ctx, server.SessionSpec{Sweep: sweep})
					if err != nil {
						b.Fatal(err)
					}
					sessionURL := cl.BaseURL + "/v1/sessions/" + id
					streamURL := sessionURL + "/stream"
					if enc == "binary" {
						streamURL += "?encoding=binary"
					}
					subErrs := make(chan error, subs)
					var wg sync.WaitGroup
					for s := 0; s < subs; s++ {
						resp, err := httpc.Get(streamURL)
						if err != nil {
							b.Fatal(err)
						}
						if resp.StatusCode != http.StatusOK {
							b.Fatalf("stream attach: %s", resp.Status)
						}
						wg.Add(1)
						go func() {
							defer wg.Done()
							_, err := io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
							if err != nil {
								subErrs <- err
							}
						}()
					}
					rs, err := cl.DialIngest(id, readerwire.Hello{
						Proto: readerwire.ProtoVersion, ReaderID: 1,
						AntennaCount: 4, SweepInterval: sweep,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					for _, rep := range merged {
						if err := rs.Send(rep); err != nil {
							b.Fatal(err)
						}
					}
					if err := rs.Flush(); err != nil {
						b.Fatal(err)
					}
					if err := rs.Close(); err != nil {
						b.Fatal(err)
					}
					benchAwaitIngestDone(b, httpc, sessionURL)
					if err := cl.DrainSession(ctx, id); err != nil {
						b.Fatal(err)
					}
					if err := cl.DeleteSession(ctx, id); err != nil {
						b.Fatal(err)
					}
					wg.Wait()
					b.StopTimer()
					select {
					case err := <-subErrs:
						b.Fatal(err)
					default:
					}
					b.StartTimer()
				}
				b.ReportMetric(float64(b.N)*float64(len(merged))/b.Elapsed().Seconds(), "reports/s")
			})
		}
	}
}

// benchRawStream attaches one subscriber over a bare TCP connection:
// it sends a minimal one-shot GET (Connection: close, so EOF marks the
// stream end) and verifies the status line, leaving the reader
// positioned at the start of the response. Raw connections keep the
// benchmark's 1024 in-process drain loops from paying net/http's
// per-read client machinery, which would otherwise dwarf the server
// cost being measured on this shared CPU.
func benchRawStream(addr, path string) (net.Conn, *bufio.Reader, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	req := "GET " + path + " HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
	if _, err := io.WriteString(conn, req); err != nil {
		conn.Close()
		return nil, nil, err
	}
	br := bufio.NewReaderSize(conn, 4096)
	status, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	if !strings.Contains(status, " 200 ") {
		conn.Close()
		return nil, nil, fmt.Errorf("stream attach: %s", strings.TrimSpace(status))
	}
	return conn, br, nil
}

// BenchmarkTieredFanout measures the tiered multicast path: one session
// fanning out to N NDJSON subscribers spread evenly across the three
// trace tiers (s%3), so every flush marshals each distinct tier run at
// most once and shares the bytes across its cohort. reports/s should
// stay near flat as subscribers grow — the per-subscriber cost is a
// channel send of pre-encoded carriers, not a marshal — and CI gates
// the 1024-subscriber arm against the committed baseline.
func BenchmarkTieredFanout(b *testing.B) {
	benchEngineJobs(b, 8) // ensure the cached run exists
	run := benchEngineRun
	merged := realtime.MergeStreams(run.ReportsRF...)
	sweep := run.SweepInterval * time.Duration(len(run.Tags))
	cl := benchDaemonStart(b)
	addr := strings.TrimPrefix(cl.BaseURL, "http://")
	httpc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64, MaxIdleConns: 64}}
	for _, subs := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				id, err := cl.CreateSession(ctx, server.SessionSpec{Sweep: sweep})
				if err != nil {
					b.Fatal(err)
				}
				sessionURL := cl.BaseURL + "/v1/sessions/" + id
				subErrs := make(chan error, subs)
				var wg sync.WaitGroup
				for s := 0; s < subs; s++ {
					conn, br, err := benchRawStream(addr, fmt.Sprintf("/v1/sessions/%s/stream?tier=%d", id, s%3))
					if err != nil {
						b.Fatal(err)
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						_, err := io.Copy(io.Discard, br)
						conn.Close()
						if err != nil {
							subErrs <- err
						}
					}()
				}
				rs, err := cl.DialIngest(id, readerwire.Hello{
					Proto: readerwire.ProtoVersion, ReaderID: 1,
					AntennaCount: 4, SweepInterval: sweep,
				})
				if err != nil {
					b.Fatal(err)
				}
				// Attaching 1024 subscribers allocates their queue buffers;
				// settle that untimed setup debt now so the timed fan-out
				// isn't billed for setup's garbage via GC assists.
				runtime.GC()
				b.StartTimer()
				for _, rep := range merged {
					if err := rs.Send(rep); err != nil {
						b.Fatal(err)
					}
				}
				if err := rs.Flush(); err != nil {
					b.Fatal(err)
				}
				if err := rs.Close(); err != nil {
					b.Fatal(err)
				}
				benchAwaitIngestDone(b, httpc, sessionURL)
				if err := cl.DrainSession(ctx, id); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := cl.DeleteSession(ctx, id); err != nil {
					b.Fatal(err)
				}
				wg.Wait()
				select {
				case err := <-subErrs:
					b.Fatal(err)
				default:
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(b.N)*float64(len(merged))/b.Elapsed().Seconds(), "reports/s")
		})
	}
}

// —— Performance micro-benches ————————————————————————————————————————————

func BenchmarkLocalizeSingleSample(b *testing.B) {
	obs, _, dep := benchObservation(b, 104)
	sys, err := core.NewSystem(dep, core.Config{Plane: geom.Plane{Y: 2}, Region: deploy.DefaultRegion()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Localize(obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceStep(b *testing.B) {
	sc, err := sim.New(sim.Config{Seed: 105})
	if err != nil {
		b.Fatal(err)
	}
	wr, err := sc.RunWord("go", geom.Vec2{X: 0.9, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(sc.RFIDraw, core.Config{Plane: sc.Plane, Region: sc.Region})
	if err != nil {
		b.Fatal(err)
	}
	stream, err := sys.Tracer().NewStream(wr.Truth.Start(), wr.SamplesRF[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Push(wr.SamplesRF[1+i%(len(wr.SamplesRF)-1)])
	}
}

func BenchmarkDTWClassify(b *testing.B) {
	rec, err := recognition.New(corpus.All())
	if err != nil {
		b.Fatal(err)
	}
	w, err := handwriting.Write("q", geom.Vec2{}, handwriting.DefaultStyle(), nil)
	if err != nil {
		b.Fatal(err)
	}
	pts := w.Traj.Positions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rec.Classify(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rep := rfid.Report{
		Time: time.Second, ReaderID: 1, AntennaID: 3,
		EPC: rfid.RandomEPC(rng), PhaseRad: 1.234, PowerDB: -20,
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		w := readerwire.NewWriter(&buf)
		if err := w.WriteReport(rep); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := readerwire.NewReader(&buf).Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannelMeasure(b *testing.B) {
	sc, err := sim.New(sim.Config{Seed: 106})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	ant := sc.RFIDraw.Antennas[0].Pos
	tag := geom.Vec3{X: 1.3, Y: 2, Z: 1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Env.Measure(ant, tag, 0, rng)
	}
}

// BenchmarkObsStamp measures the full per-report observability cost the
// serving pump pays: a monotonic clock read plus one histogram
// observation per pipeline stage and the end-to-end record. The stamps
// are always on — every report of every session pays this at full
// ingest rate — so CI gates allocs/op at zero growth (baseline 0).
func BenchmarkObsStamp(b *testing.B) {
	p := &obs.Pipeline{}
	stages := obs.Stages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := obs.Now()
		for _, st := range stages {
			p.ObserveStage(st, obs.Now()-t0, i)
		}
		p.ObserveE2E(obs.Now()-t0, i)
	}
}

// —— Search strategy benches ———————————————————————————————————————————————

// BenchmarkSearchModes compares the dense reference scan and the
// hierarchical coarse-to-fine search on the full pipeline at 1/8/64 tags
// (single shard, so ns/op compares algorithms rather than parallelism).
// grid-evals/sample is the steady-state tracking cost the hierarchical
// search exists to cut; the ≥5x reduction is asserted by
// TestHierarchicalMatchesDenseOnCorpus and visible here per tag count.
func BenchmarkSearchModes(b *testing.B) {
	for _, mode := range []vote.SearchMode{vote.SearchDense, vote.SearchHierarchical} {
		for _, tags := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("mode=%s/tags=%d", mode, tags), func(b *testing.B) {
				b.ReportAllocs()
				jobs := benchEngineJobs(b, tags)
				eng, err := engine.New(engine.Config{
					Shards: 1,
					Core: core.Config{
						Plane: geom.Plane{Y: 2}, Region: deploy.DefaultRegion(),
						Vote:  vote.Config{Search: vote.SearchConfig{Mode: mode}},
						Trace: tracing.Config{Search: vote.SearchConfig{Mode: mode}},
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				b.ResetTimer()
				var evals, samples int
				for i := 0; i < b.N; i++ {
					for _, r := range eng.TraceBatch(jobs) {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
						evals += r.Result.Best.SearchEvals
						samples += len(r.Result.Best.Votes)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(evals)/float64(samples), "grid-evals/sample")
				b.ReportMetric(float64(b.N)*float64(len(jobs))/b.Elapsed().Seconds(), "tag-traces/s")
			})
		}
	}
}

// BenchmarkWALAppend measures the serving pump's per-report durability
// cost: encoding and writing one report record into the session log.
// Syncing is deferred past the run (fsync cadence is policy, not append
// cost) and the encode path reuses the log's buffer, so allocs/op is
// gated at zero growth by CI (cross-machine stable, unlike ns/op).
func BenchmarkWALAppend(b *testing.B) {
	store, err := wal.Open(b.TempDir(), wal.Options{NoSync: true, SegmentBytes: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	log, err := store.Create(wal.Meta{ID: "bench", Created: time.Unix(0, 0), Sweep: 50 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rep := rfid.Report{
		Time: 0, ReaderID: 1, AntennaID: 3,
		EPC: rfid.RandomEPC(rng), PhaseRad: 1.25, PowerDB: -31,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.Time += 6 * time.Millisecond
		if err := log.AppendReport(uint64(i+1), rep); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.SetBytes(int64(log.Bytes()) / int64(b.N))
	if err := log.Abandon(); err != nil {
		b.Fatal(err)
	}
}
