module rfidraw

go 1.24
