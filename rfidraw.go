// Package rfidraw is a from-scratch Go implementation of RF-IDraw (Wang,
// Vasisht, Katabi — SIGCOMM 2014): an RFID trajectory-tracing system
// accurate enough to act as a virtual touch screen in the air.
//
// RF-IDraw's key idea is a multi-resolution use of antenna pairs. Widely
// separated pairs (8λ) have many narrow grating lobes: high resolution but
// ambiguous. Tightly spaced pairs (λ/4 for backscatter) have a single wide
// beam: unambiguous but coarse. Voting with the coarse pairs filters the
// ambiguity of the wide pairs while keeping their resolution (§3 of the
// paper). For tracing, each wide pair is locked onto one grating lobe and
// its continuous rotation is followed; even a wrong-but-nearby lobe
// preserves the trajectory's shape (§4), which is what a handwriting
// interface needs.
//
// The package exposes the system behind a hardware-free API: callers feed
// per-antenna phase measurements (from real readers or from the bundled
// simulator) and receive positions and trajectories in a writing plane
// parallel to the antenna wall.
//
// # Quick start
//
//	sys, err := rfidraw.New(rfidraw.Config{PlaneDistanceM: 2})
//	...
//	res, err := sys.Trace(samples) // samples from readers or simulator
//	for _, p := range res.Trajectory {
//	    fmt.Println(p.Time, p.X, p.Z)
//	}
//
// # Multi-tag tracking
//
// Every System is backed by the sharded concurrent engine
// (internal/engine). Trace is the synchronous single-tag path — a 1-shard
// engine under the hood — while TraceMany fans per-tag observation
// streams out across Config.Shards worker shards and traces them in
// parallel, with per-tag output identical to the sequential path.
//
// # Serving
//
// The serving layer (serve.go) turns a System into a long-lived
// multi-session service: OpenSession opens an in-process live session
// (feed ReaderReports, subscribe to point/glyph Events), and Serve runs
// the rfidrawd daemon surface — HTTP control API, chunked NDJSON live
// streams, a reader ingest gateway and /metrics observability — over
// the same session registry.
//
// See the examples/ directory for full programs, and internal/ for the
// substrates (channel model, RFID reader simulator, AoA baseline,
// handwriting workload, recognizer, experiment harness).
package rfidraw

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/deploy"
	"rfidraw/internal/engine"
	"rfidraw/internal/geom"
	"rfidraw/internal/server"
	"rfidraw/internal/tracing"
	"rfidraw/internal/vote"
)

// Point is a position in the writing plane: X right, Z up, metres. The
// writing plane is parallel to the antenna wall at the configured distance.
type Point struct {
	X, Z float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return geom.Vec2{X: p.X, Z: p.Z}.Dist(geom.Vec2{X: q.X, Z: q.Z})
}

// Sample is one merged observation instant: the wrapped phase (radians, in
// [0, 2π)) measured at each antenna, keyed by the deployment's antenna IDs
// (1–8 for the standard deployment). Antennas missed by reply loss are
// simply absent.
type Sample struct {
	Time   time.Duration
	Phases map[int]float64
}

// Candidate is a hypothesised tag position with its total vote; 0 is a
// perfect intersection of all pairs' beams, more negative is worse.
type Candidate struct {
	Pos   Point
	Score float64
}

// TracePoint is one reconstructed trajectory sample.
type TracePoint struct {
	Time time.Duration
	X, Z float64
}

// Trace is one reconstructed trajectory with its vote record.
type Trace struct {
	// Initial is the candidate initial position this trace started from.
	Initial Candidate
	// Points is the reconstructed trajectory.
	Points []TracePoint
	// Votes is the total pair vote at each point — flat near zero for a
	// correct start, collapsing for a wrong one (the paper's Fig. 10f).
	Votes []float64
	// TotalVote is the sum of Votes, the trace-selection score.
	TotalVote float64
	// SearchEvals is how many vote-surface evaluations the per-sample
	// position searches spent; divided by len(Points) it is the
	// grid-evaluations-per-sample cost the Search mode controls.
	SearchEvals int
	// Retired reports this hypothesis was retired mid-stream: its vote
	// record collapsed (Fig. 10f) and tracing it stopped, so Points and
	// Votes are truncated at the retirement sample.
	Retired bool
}

// Result is the outcome of tracing an observation stream.
type Result struct {
	// Trajectory is the chosen reconstruction.
	Trajectory []TracePoint
	// InitialPosition is the chosen absolute position estimate.
	InitialPosition Point
	// Chosen indexes Traces for the selected trace.
	Chosen int
	// Traces holds every candidate's trace, for diagnostics.
	Traces []Trace
	// LeaderSwitches is how many times the leading hypothesis changed as
	// the multi-hypothesis stream extended — the paper's over-time
	// candidate disambiguation converging (0 means the first election
	// held to the end).
	LeaderSwitches int
	// Retirements is how many candidate hypotheses were retired for
	// collapsed vote records before the stream ended.
	Retirements int
}

// SearchMode selects how the positioning/tracing vote surfaces are
// searched.
type SearchMode int

const (
	// SearchHierarchical (the default) replaces exhaustive grid scans
	// with a coarse-to-fine refinement: vote on a coarse lattice, keep
	// the top-K promising cells, recursively subdivide only those down
	// to the fine resolution and finish with a quadratic interpolation.
	// In steady-state tracking the lobe lock seeds the window at the
	// last fix, so per-sample cost scales with the remaining ambiguity,
	// not with the vicinity area. Results match dense search within the
	// paper's positioning-error envelope.
	SearchHierarchical SearchMode = iota
	// SearchDense is the exhaustive reference strategy: every grid and
	// vicinity point is evaluated. Slower, kept for equivalence testing
	// and regression triage.
	SearchDense
)

// SearchConfig tunes the hierarchical coarse-to-fine search. The zero
// value (hierarchical, default top-K, subdivide to the fine resolution)
// is right for almost all deployments.
type SearchConfig struct {
	// Mode picks the strategy; zero value is SearchHierarchical.
	Mode SearchMode
	// TopK overrides how many coarse cells / branches survive each
	// refinement selection. 0 takes the per-stage defaults (4 for
	// one-shot positioning, 2 for steady-state tracking).
	TopK int
	// Levels caps the subdivision depth; 0 subdivides until the fine
	// resolution is reached.
	Levels int
}

// Config configures a System.
type Config struct {
	// PlaneDistanceM is the writing plane's distance from the antenna
	// wall in metres (the paper evaluates 2–5 m). Required.
	PlaneDistanceM float64
	// RegionMin/RegionMax bound the search region in the writing plane;
	// zero values take the standard region in front of the antenna
	// square.
	RegionMin, RegionMax Point
	// CandidateCount is how many candidate initial positions to trace.
	// Default 3.
	CandidateCount int
	// CarrierHz overrides the 922 MHz default carrier.
	CarrierHz float64
	// Shards is how many worker shards the backing engine runs; tags are
	// hashed across them, so it bounds how many tags are traced in
	// parallel by TraceMany. Default 1 (fully synchronous, the
	// single-threaded path).
	Shards int
	// Search tunes the grid-search strategy on the positioning and
	// tracing hot paths; the zero value is the hierarchical
	// coarse-to-fine search.
	Search SearchConfig
}

// System is a configured RF-IDraw instance for the standard two-reader,
// eight-antenna deployment. A System is safe for concurrent use.
type System struct {
	eng   *engine.Engine
	plane geom.Plane

	// regMu guards the lazily built session registry behind the serving
	// layer (see serve.go: Serve, NewServer, OpenSession).
	regMu sync.Mutex
	reg   *server.Registry
}

// New builds a System.
func New(cfg Config) (*System, error) {
	if cfg.PlaneDistanceM <= 0 {
		return nil, errors.New("rfidraw: Config.PlaneDistanceM must be positive")
	}
	region := deploy.DefaultRegion()
	if cfg.RegionMin != cfg.RegionMax {
		region = geom.Rect{
			Min: geom.Vec2{X: cfg.RegionMin.X, Z: cfg.RegionMin.Z},
			Max: geom.Vec2{X: cfg.RegionMax.X, Z: cfg.RegionMax.Z},
		}
	}
	dep, err := buildDeployment(cfg.CarrierHz)
	if err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	search := vote.SearchConfig{
		Mode:   vote.SearchMode(cfg.Search.Mode),
		TopK:   cfg.Search.TopK,
		Levels: cfg.Search.Levels,
	}
	eng, err := engine.New(engine.Config{
		Shards:     shards,
		Deployment: dep,
		Core: core.Config{
			Plane:          geom.Plane{Y: cfg.PlaneDistanceM},
			Region:         region,
			CandidateCount: cfg.CandidateCount,
			Vote:           vote.Config{Search: search},
			Trace:          tracing.Config{Search: search},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("rfidraw: %w", err)
	}
	return &System{eng: eng, plane: geom.Plane{Y: cfg.PlaneDistanceM}}, nil
}

// Close stops the backing engine's worker shards and closes every
// serving session opened through the System (OpenSession / Serve). A
// System remains usable until Closed; Close is optional for short-lived
// programs but releases the goroutines of long-lived ones.
//
// Close is idempotent and safe to call from any number of goroutines,
// concurrently with in-flight Trace, TraceMany and Localize calls: work
// already dispatched completes normally and is returned to its caller,
// calls that arrive after shutdown fail with an "engine: closed" error
// (Trace and Localize, which run on the caller's goroutine against the
// read-only positioner, always complete), and every Close call returns
// the same result once shutdown has finished.
func (s *System) Close() error {
	s.regMu.Lock()
	reg := s.reg
	s.regMu.Unlock()
	if reg != nil {
		reg.Close()
	}
	return s.eng.Close()
}

// AntennaPositions returns the deployment's antenna wall positions keyed
// by antenna ID, as (x, z) on the wall plane. Useful for installation and
// plotting.
func (s *System) AntennaPositions() map[int]Point {
	out := make(map[int]Point)
	for _, a := range s.eng.System().Deployment().Antennas {
		out[a.ID] = Point{X: a.Pos.X, Z: a.Pos.Z}
	}
	return out
}

// Localize runs one-shot multi-resolution positioning on a single sample
// and returns candidate positions, best first.
func (s *System) Localize(sample Sample) ([]Candidate, error) {
	cands, err := s.eng.System().Localize(vote.Observations(sample.Phases))
	if err != nil {
		return nil, fmt.Errorf("rfidraw: %w", err)
	}
	out := make([]Candidate, len(cands))
	for i, c := range cands {
		out[i] = Candidate{Pos: Point{X: c.Pos.X, Z: c.Pos.Z}, Score: c.Score}
	}
	return out, nil
}

// Trace reconstructs the tag's trajectory from an observation stream.
// Samples must be in time order; gaps from reply loss are tolerated.
// It is the synchronous single-tag path: the engine's shared sequential
// pipeline on the caller's goroutine, with output identical to what
// TraceMany produces for the same samples.
func (s *System) Trace(samples []Sample) (*Result, error) {
	if len(samples) == 0 {
		return nil, errors.New("rfidraw: no samples")
	}
	res, err := s.eng.Trace(convertSamples(samples))
	if err != nil {
		return nil, fmt.Errorf("rfidraw: %w", err)
	}
	return convertResult(res), nil
}

// TraceMany reconstructs several tags' trajectories concurrently: streams
// is keyed by tag identity (e.g. EPC hex), and each tag's samples are
// traced on the tag's home shard. Per-tag results are identical to what
// Trace returns for the same samples. Tags whose trace fails are reported
// in the joined error; the returned map holds every success.
func (s *System) TraceMany(streams map[string][]Sample) (map[string]*Result, error) {
	if len(streams) == 0 {
		return nil, errors.New("rfidraw: no streams")
	}
	keys := make([]string, 0, len(streams))
	for k := range streams {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	jobs := make([]engine.TagJob, 0, len(keys))
	var errs []error
	for _, k := range keys {
		if len(streams[k]) == 0 {
			errs = append(errs, fmt.Errorf("rfidraw: tag %q has no samples", k))
			continue
		}
		jobs = append(jobs, engine.TagJob{Tag: k, Samples: convertSamples(streams[k])})
	}
	out := make(map[string]*Result, len(jobs))
	for _, r := range s.eng.TraceBatch(jobs) {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("rfidraw: tag %q: %w", r.Tag, r.Err))
			continue
		}
		out[r.Tag] = convertResult(r.Result)
	}
	return out, errors.Join(errs...)
}

func convertSamples(samples []Sample) []tracing.Sample {
	in := make([]tracing.Sample, len(samples))
	for i, smp := range samples {
		in[i] = tracing.Sample{T: smp.Time, Phase: vote.Observations(smp.Phases)}
	}
	return in
}

func convertResult(res *core.TraceResult) *Result {
	out := &Result{
		Trajectory:      convertTrajectory(res.Best),
		InitialPosition: Point{X: res.InitialPosition().X, Z: res.InitialPosition().Z},
		Chosen:          res.BestIndex,
		Traces:          make([]Trace, len(res.All)),
		LeaderSwitches:  res.LeaderSwitches,
		Retirements:     res.Retirements,
	}
	for i, tr := range res.All {
		out.Traces[i] = Trace{
			Initial:     Candidate{Pos: Point{X: res.Candidates[i].Pos.X, Z: res.Candidates[i].Pos.Z}, Score: res.Candidates[i].Score},
			Points:      convertTrajectory(tr),
			Votes:       append([]float64(nil), tr.Votes...),
			TotalVote:   tr.TotalVote,
			SearchEvals: tr.SearchEvals,
			Retired:     tr.Retired,
		}
	}
	return out
}

func convertTrajectory(r tracing.Result) []TracePoint {
	out := make([]TracePoint, r.Trajectory.Len())
	for i, p := range r.Trajectory.Points {
		out[i] = TracePoint{Time: p.T, X: p.Pos.X, Z: p.Pos.Z}
	}
	return out
}

func buildDeployment(carrierHz float64) (*deploy.RFIDraw, error) {
	if carrierHz <= 0 {
		return deploy.DefaultRFIDraw()
	}
	return deploy.NewRFIDraw(newCarrier(carrierHz), backscatter)
}
