// NLOS: compare RF-IDraw with the antenna-array baseline through the
// office-lounge cubicle separators (§8.1's non-line-of-sight evaluation).
// The baseline's accuracy collapses; RF-IDraw's shape holds because the
// dominant path still carries the grating-lobe rotation.
//
//	go run ./examples/nlos
package main

import (
	"fmt"
	"log"

	"rfidraw/internal/baseline"
	"rfidraw/internal/core"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/sim"
	"rfidraw/internal/traj"
)

func main() {
	for _, prop := range []sim.Propagation{sim.LOS, sim.NLOS} {
		scenario, err := sim.New(sim.Config{Prop: prop, Seed: 21, Distance: 3})
		if err != nil {
			log.Fatal(err)
		}
		run, err := scenario.RunWord("house", geom.Vec2{X: 0.6, Z: 1.0}, handwriting.DefaultStyle())
		if err != nil {
			log.Fatal(err)
		}

		sys, err := core.NewSystem(scenario.RFIDraw, core.Config{Plane: scenario.Plane, Region: scenario.Region})
		if err != nil {
			log.Fatal(err)
		}
		rf, err := sys.Trace(run.SamplesRF)
		if err != nil {
			log.Fatal(err)
		}
		rfErr, err := traj.MedianError(run.Truth, rf.Best.Trajectory, traj.AlignInitial, 128)
		if err != nil {
			log.Fatal(err)
		}

		bl, err := baseline.New(scenario.Baseline, baseline.Config{Plane: scenario.Plane, Region: scenario.Region})
		if err != nil {
			log.Fatal(err)
		}
		blTraj, err := bl.Trace(run.SamplesBL)
		if err != nil {
			log.Fatal(err)
		}
		blErr, err := traj.MedianError(run.Truth, blTraj, traj.AlignMean, 128)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-4v  RF-IDraw shape error: %5.1f cm   baseline: %5.1f cm   (%.0f× better)\n",
			prop, rfErr*100, blErr*100, blErr/rfErr)
	}
	fmt.Println("\npaper: 3.7 vs 40.8 cm in LOS (11×), 4.9 vs 76.9 cm in NLOS (16×)")
}
