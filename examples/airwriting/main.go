// Airwriting: the full virtual-touch-screen loop of the paper's §9 —
// several users write words in the air, RF-IDraw reconstructs each
// trajectory, and the handwriting recognizer (standing in for MyScript
// Stylus) turns it back into text.
//
//	go run ./examples/airwriting
package main

import (
	"fmt"
	"log"

	"rfidraw/internal/core"
	"rfidraw/internal/corpus"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/recognition"
	"rfidraw/internal/sim"
	"rfidraw/internal/traj"
)

func main() {
	words := []string{"play", "clear", "import", "house", "train"}
	rec, err := recognition.New(corpus.All())
	if err != nil {
		log.Fatal(err)
	}

	okCount := 0
	for i, text := range words {
		scenario, err := sim.New(sim.Config{Seed: int64(100 + i)})
		if err != nil {
			log.Fatal(err)
		}
		style := handwriting.RandomStyle(scenario.RNG()) // a different user each word
		run, err := scenario.RunWord(text, geom.Vec2{X: 0.5, Z: 1.0}, style)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := core.NewSystem(scenario.RFIDraw, core.Config{Plane: scenario.Plane, Region: scenario.Region})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Trace(run.SamplesRF)
		if err != nil {
			log.Fatalf("%q: %v", text, err)
		}

		// Shift the reconstruction by its initial offset (Fig. 10e) and
		// smooth it, as the prototype pipeline does before emitting
		// touch events.
		cmp, err := traj.Compare(run.Truth, res.Best.Trajectory, traj.AlignInitial, 128)
		if err != nil {
			log.Fatal(err)
		}
		shifted := res.Best.Trajectory.Shift(cmp.Offset.Scale(-1)).Smooth(3)

		got, ok, err := rec.RecognizeWord(shifted, run.Word.Letters, text)
		if err != nil {
			log.Fatal(err)
		}
		status := "✗"
		if ok {
			status = "✓"
			okCount++
		}
		fmt.Printf("%s wrote %-8q recognized %-8q (shape error %.1f cm)\n",
			status, text, got, cmp.Summary().Median*100)
	}
	fmt.Printf("\n%d/%d words recognized (paper: 92%% over 150 words)\n", okCount, len(words))
}
