// Quickstart: simulate a user writing one word in the air and reconstruct
// the trajectory with the public rfidraw API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rfidraw"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/plot"
	"rfidraw/internal/sim"
	"rfidraw/internal/traj"
)

func main() {
	// 1. Build a simulated testbed: a LOS room with the standard
	//    two-reader, eight-antenna deployment, user 2 m from the wall.
	scenario, err := sim.New(sim.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A user writes "clear" in the air with an RFID on their finger.
	run, err := scenario.RunWord("clear", geom.Vec2{X: 0.55, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user wrote %q: %d letters, %.2f m of stroke, %v of writing\n",
		run.Word.Text, len(run.Word.Letters), run.Word.Traj.ArcLength(), run.Word.Traj.Duration().Round(1e7))

	// 3. Feed the readers' phase samples to RF-IDraw.
	sys, err := rfidraw.New(rfidraw.Config{PlaneDistanceM: scenario.Plane.Y})
	if err != nil {
		log.Fatal(err)
	}
	samples := make([]rfidraw.Sample, len(run.SamplesRF))
	for i, s := range run.SamplesRF {
		samples[i] = rfidraw.Sample{Time: s.T, Phases: s.Phase}
	}
	res, err := sys.Trace(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed %d trajectory points from %d candidates (chose #%d)\n",
		len(res.Trajectory), len(res.Traces), res.Chosen)
	fmt.Printf("estimated initial position: (%.2f, %.2f) m\n", res.InitialPosition.X, res.InitialPosition.Z)

	// 4. Compare against the VICON ground truth: remove the initial
	//    offset (the paper's §8.1 metric) and report the shape error.
	rec := make([]geom.Vec2, len(res.Trajectory))
	pts := make([]traj.Point, len(res.Trajectory))
	for i, p := range res.Trajectory {
		rec[i] = geom.Vec2{X: p.X, Z: p.Z}
		pts[i] = traj.Point{T: p.Time, Pos: rec[i]}
	}
	med, err := traj.MedianError(run.Truth, traj.Trajectory{Points: pts}, traj.AlignInitial, 128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("median shape error: %.1f cm (paper: 3.7 cm LOS median)\n", med*100)

	// 5. Show the reconstruction.
	art, err := plot.Trajectories(72, 18, run.Truth.Positions(), rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntruth (*) vs reconstruction (o):")
	fmt.Println(art)
}
