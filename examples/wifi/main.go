// WiFi-style tracking: §9.3 notes the grating-lobe idea transfers to
// other RF systems — e.g. WiFi access points tracing nearby cellphones.
// This example builds the same multi-resolution deployment for a *one-way*
// link (the device transmits; phases accumulate once per metre instead of
// twice) and traces an actively transmitting device drawing a figure-eight.
//
// One-way operation changes the geometry: tightly spaced pairs are
// unambiguous up to λ/2 (not λ/4), and each wide pair has half the lobes.
//
//	go run ./examples/wifi
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"rfidraw/internal/channel"
	"rfidraw/internal/core"
	"rfidraw/internal/deploy"
	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
	"rfidraw/internal/plot"
	"rfidraw/internal/tracing"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
)

func main() {
	// 2.4 GHz-ish carrier, one-way link (the device transmits).
	carrier := phys.NewCarrier(2.412e9)
	dep, err := deploy.NewRFIDraw(carrier, phys.OneWay)
	if err != nil {
		log.Fatal(err)
	}
	lambda := carrier.WavelengthM
	fmt.Printf("carrier 2.412 GHz, λ = %.1f cm; wide pairs %.2f m apart with %d lobes each\n",
		lambda*100, dep.WidePairs[0].Separation(), dep.WidePairs[0].LobeCount())

	// The 8λ square is only ~1 m at 2.4 GHz: an access-point-sized rig.
	region := geom.Rect{
		Min: geom.Vec2{X: -0.3, Z: -0.3},
		Max: geom.Vec2{X: 8*lambda + 0.3, Z: 8 * lambda * 1.2},
	}
	plane := geom.Plane{Y: 1.5}
	env := &channel.Environment{
		Carrier:          carrier,
		Link:             phys.OneWay,
		DirectGain:       1,
		PhaseNoiseStdDev: 0.15,
		Scatterers: []channel.Scatterer{
			{Pos: geom.Vec3{X: 0.8, Y: 1.0, Z: 0.9}, Reflectivity: 0.12},
			{Pos: geom.Vec3{X: -0.4, Y: 2.0, Z: 0.3}, Reflectivity: 0.10},
		},
	}
	if err := env.Validate(); err != nil {
		log.Fatal(err)
	}

	// The device draws a figure-eight, 30 cm wide.
	rng := rand.New(rand.NewSource(3))
	n := 120
	pos := make([]geom.Vec2, n)
	c := region.Center()
	for i := range pos {
		th := 2 * math.Pi * float64(i) / float64(n-1)
		pos[i] = geom.Vec2{X: c.X + 0.15*math.Sin(2*th), Z: c.Z + 0.12*math.Sin(th)}
	}
	truth := traj.FromPositions(pos, 25*time.Millisecond)

	samples := make([]tracing.Sample, truth.Len())
	for i, p := range truth.Points {
		src := plane.To3D(p.Pos)
		obs := vote.Observations{}
		for _, a := range dep.Antennas {
			obs[a.ID] = env.Measure(a.Pos, src, 0, rng).Phase
		}
		samples[i] = tracing.Sample{T: p.T, Phase: obs}
	}

	sys, err := core.NewSystem(dep, core.Config{Plane: plane, Region: region})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Trace(samples)
	if err != nil {
		log.Fatal(err)
	}
	med, err := traj.MedianError(truth, res.Best.Trajectory, traj.AlignInitial, 120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced a one-way transmitter's figure-eight: median shape error %.1f cm\n\n", med*100)

	art, err := plot.Trajectories(64, 20, truth.Positions(), res.Best.Trajectory.Positions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("truth (*) vs reconstruction (o):")
	fmt.Println(art)
}
