// Streaming: the networked pipeline in one process — two simulated reader
// daemons stream phase reports over TCP (readerwire protocol) and a live
// tracker consumes both streams, printing positions as they arrive. This
// is what cmd/readerd and cmd/tracker do across processes.
//
//	go run ./examples/streaming
//
// With -daemon the example connects through a running rfidrawd instead of
// embedding the tracker: it creates a session, streams the reader reports
// into the ingest gateway and prints the live NDJSON events coming back.
//
//	rfidrawd &
//	go run ./examples/streaming -daemon http://127.0.0.1:8090
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/readerwire"
	"rfidraw/internal/realtime"
	"rfidraw/internal/rfid"
	"rfidraw/internal/server"
	"rfidraw/internal/sim"
)

func main() {
	daemon := flag.String("daemon", "", "rfidrawd HTTP API base URL; empty embeds the tracker locally")
	flag.Parse()
	scenario, err := sim.New(sim.Config{Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	run, err := scenario.RunWord("play", geom.Vec2{X: 0.6, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		log.Fatal(err)
	}
	dur := run.Word.Traj.Duration() + 100*time.Millisecond

	// Split the merged samples back into two per-reader report streams.
	streams2 := make([][]rfid.Report, 2)
	for readerID := 0; readerID < 2; readerID++ {
		for _, s := range run.SamplesRF {
			for id, ph := range s.Phase {
				if (id-1)/4 != readerID {
					continue
				}
				streams2[readerID] = append(streams2[readerID], rfid.Report{
					Time: s.T, ReaderID: readerID, AntennaID: id,
					EPC: scenario.Tag.EPC, PhaseRad: ph,
				})
			}
		}
	}

	if *daemon != "" {
		if err := throughDaemon(*daemon, streams2, run.Word.Text); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Serve each reader stream over TCP.
	var servers []*readerwire.Server
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for readerID := 0; readerID < 2; readerID++ {
		reports := streams2[readerID]
		srv, err := readerwire.NewServer("127.0.0.1:0", &readerwire.InventorySource{
			Announce: readerwire.Hello{
				Proto: readerwire.ProtoVersion, ReaderID: uint8(readerID),
				AntennaCount: 4, SweepInterval: 25 * time.Millisecond,
			},
			AllReports: reports,
		}, 0 /* unpaced */)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		go srv.Serve(ctx, dur)
		servers = append(servers, srv)
		fmt.Printf("reader %d streaming %d reports on %s\n", readerID, len(reports), srv.Addr())
	}

	// Collect both streams (a real deployment would interleave live).
	var streams [][]rfid.Report
	for _, srv := range servers {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		hello, reports, err := readerwire.Collect(conn)
		conn.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("collected %d reports from reader %d\n", len(reports), hello.ReaderID)
		streams = append(streams, reports)
	}

	// Live-track the merged stream.
	sys, err := core.NewSystem(scenario.RFIDraw, core.Config{Plane: scenario.Plane, Region: scenario.Region})
	if err != nil {
		log.Fatal(err)
	}
	tracker, err := realtime.NewTracker(realtime.Config{System: sys, SweepInterval: 25 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	for _, rep := range realtime.MergeStreams(streams...) {
		ps, err := tracker.Offer(rep)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range ps {
			if count%10 == 0 {
				fmt.Printf("live t=%8v  (%.3f, %.3f) m\n", p.Time.Round(time.Millisecond), p.Pos.X, p.Pos.Z)
			}
			count++
		}
	}
	if ps, err := tracker.Flush(); err == nil {
		count += len(ps)
	}
	fmt.Printf("\ntraced %d live positions of %q; mean vote %.4f\n", count, run.Word.Text, tracker.MeanVote())
}

// throughDaemon runs the same pipeline against a live rfidrawd: session
// create, two ingest reader connections, live NDJSON consumption.
func throughDaemon(daemon string, streams [][]rfid.Report, word string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl := &server.Client{BaseURL: daemon}
	id, err := cl.CreateSession(ctx, server.SessionSpec{})
	if err != nil {
		return err
	}
	defer cl.DeleteSession(context.Background(), id)
	fmt.Printf("daemon session %s on %s (ingest %s)\n", id, daemon, cl.Ingest)

	events, errs, err := cl.Subscribe(ctx, id)
	if err != nil {
		return err
	}
	counted := make(chan int)
	go func() {
		count := 0
		for ev := range events {
			if ev.Type != "point" {
				continue
			}
			if count%10 == 0 {
				fmt.Printf("live t=%8v  (%.3f, %.3f) m\n", ev.T.Round(time.Millisecond), ev.X, ev.Z)
			}
			count++
		}
		counted <- count
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for readerID := range streams {
		wg.Add(1)
		go func(readerID int) {
			defer wg.Done()
			rs, err := cl.DialIngest(id, readerwire.Hello{
				Proto: readerwire.ProtoVersion, ReaderID: uint8(readerID),
				AntennaCount: 4, SweepInterval: 25 * time.Millisecond,
			})
			if err != nil {
				log.Printf("reader %d: %v", readerID, err)
				return
			}
			defer rs.Close()
			if err := rs.Replay(ctx, streams[readerID], 4 /* 4x real time */, 0, start); err != nil {
				log.Printf("reader %d: %v", readerID, err)
			}
		}(readerID)
	}
	wg.Wait()
	time.Sleep(300 * time.Millisecond) // let the daemon's idle drain flush
	if err := cl.DeleteSession(context.Background(), id); err != nil {
		return err
	}
	count := <-counted
	select {
	case err := <-errs:
		return err
	default:
	}
	fmt.Printf("\ntraced %d live positions of %q through the daemon\n", count, word)
	return nil
}
