// Gestures: beyond handwriting, a virtual touch screen needs swipe /
// tap / circle commands (§9.3 discusses gesture interfaces; RF-IDraw
// supports them without any training). A simulated user performs a command
// sequence with the tag; RF-IDraw traces it, the gesture classifier splits
// and names each stroke, and the trace is also emitted as touch events —
// the full pipeline from RF phases to device input.
//
//	go run ./examples/gestures
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/geom"
	"rfidraw/internal/gesture"
	"rfidraw/internal/sim"
	"rfidraw/internal/touch"
	"rfidraw/internal/tracing"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
)

// buildPerformance scripts the user's motion: swipe right, pause, circle,
// pause, swipe down.
func buildPerformance() traj.Trajectory {
	var pos []geom.Vec2
	appendLine := func(from, to geom.Vec2, n int) {
		for i := 0; i < n; i++ {
			pos = append(pos, from.Lerp(to, float64(i)/float64(n-1)))
		}
	}
	appendPause := func(at geom.Vec2, n int) {
		for i := 0; i < n; i++ {
			pos = append(pos, at)
		}
	}
	appendLine(geom.Vec2{X: 0.8, Z: 1.2}, geom.Vec2{X: 1.4, Z: 1.2}, 24)
	appendPause(geom.Vec2{X: 1.4, Z: 1.2}, 8)
	for i := 0; i <= 40; i++ {
		th := 2 * math.Pi * float64(i) / 40
		pos = append(pos, geom.Vec2{X: 1.2 + 0.15*math.Cos(th), Z: 1.2 + 0.15*math.Sin(th)})
	}
	appendPause(geom.Vec2{X: 1.35, Z: 1.2}, 8)
	appendLine(geom.Vec2{X: 1.35, Z: 1.2}, geom.Vec2{X: 1.35, Z: 0.8}, 24)
	return traj.FromPositions(pos, 25*time.Millisecond)
}

func main() {
	scenario, err := sim.New(sim.Config{Seed: 44})
	if err != nil {
		log.Fatal(err)
	}
	truth := buildPerformance()

	// Observe the performance through the simulated readers.
	samples := make([]tracing.Sample, truth.Len())
	for i, p := range truth.Points {
		src := scenario.Plane.To3D(p.Pos)
		obs := vote.Observations{}
		for _, a := range scenario.RFIDraw.Antennas {
			m := scenario.Env.Measure(a.Pos, src, 0, scenario.RNG())
			obs[a.ID] = m.Phase
		}
		samples[i] = tracing.Sample{T: p.T, Phase: obs}
	}

	sys, err := core.NewSystem(scenario.RFIDraw, core.Config{Plane: scenario.Plane, Region: scenario.Region})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Trace(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %d samples of the gesture performance\n\n", res.Best.Trajectory.Len())

	// Split the trace at pauses and classify each stroke.
	strokes := gesture.Segment(res.Best.Trajectory.Smooth(2), 0.05, 3)
	fmt.Printf("detected %d strokes:\n", len(strokes))
	for i, s := range strokes {
		r, err := gesture.Classify(s, gesture.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  stroke %d: %-12s (net %.2f m, path %.2f m, winding %+.1f rad)\n",
			i+1, r.Command, r.Net.Norm(), r.PathLen, r.Winding)
	}

	// Emit the whole performance as touch events (what MonkeyRunner
	// replays onto the phone in the paper's prototype).
	screen := touch.DefaultScreen(geom.Rect{Min: geom.Vec2{X: 0.5, Z: 0.6}, Max: geom.Vec2{X: 1.7, Z: 1.6}})
	events, err := touch.Events(res.Best.Trajectory, screen)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := touch.WriteJSONL(&buf, events); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nemitted %d touch events (%d bytes of JSONL); first three:\n", len(events), buf.Len())
	for i, e := range events {
		if i == 3 {
			break
		}
		fmt.Printf("  %+v\n", e)
	}
}
