// Multiuser: four users write simultaneously with different tags. EPC
// identities keep their report streams apart (§2: "since RF sources have
// unique IDs ... it is easy to scale to a larger number of users"), and
// the sharded engine traces every tag concurrently — one home shard per
// tag, all shards sharing the same read-only positioner and its
// precomputed steering table.
//
//	go run ./examples/multiuser
package main

import (
	"fmt"
	"log"

	"rfidraw/internal/core"
	"rfidraw/internal/deploy"
	"rfidraw/internal/engine"
	"rfidraw/internal/geom"
	"rfidraw/internal/sim"
	"rfidraw/internal/traj"
)

func main() {
	sc, err := sim.New(sim.Config{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Four tags, four users, four words written at the same time in
	// different parts of the writing plane. Gen-2 singulation splits the
	// readers' airtime, so each tag's read rate divides by four.
	words := []string{"hi", "go", "on", "up"}
	starts := []geom.Vec2{{X: 0.4, Z: 1.3}, {X: 1.7, Z: 0.7}, {X: 0.9, Z: 1.7}, {X: 1.9, Z: 1.5}}
	run, err := sc.RunWords(words, starts)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := engine.New(engine.Config{
		Shards: 4,
		Core:   core.Config{Plane: sc.Plane, Region: deploy.DefaultRegion()},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	jobs := make([]engine.TagJob, len(run.Tags))
	for i, tag := range run.Tags {
		jobs[i] = engine.TagJob{Tag: tag.EPC.String(), Samples: run.SamplesRF[i]}
	}
	for i, r := range eng.TraceBatch(jobs) {
		if r.Err != nil {
			log.Fatalf("tag %d: %v", i, r.Err)
		}
		med, err := traj.MedianError(run.Truths[i], r.Result.Best.Trajectory, traj.AlignInitial, 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tag %s: user %d wrote %-3q → %d points traced, shape error %.1f cm\n",
			r.Tag, i+1, words[i], r.Result.Best.Trajectory.Len(), med*100)
	}
	fmt.Printf("\n%d users tracked concurrently on %d shards; EPC identity separates their streams\n",
		len(run.Tags), eng.Shards())
}
