// Multiuser: four users write simultaneously with different tags. EPC
// identities keep their report streams apart (§2: "since RF sources have
// unique IDs ... it is easy to scale to a larger number of users"), and
// the sharded engine traces every tag concurrently — one home shard per
// tag, all shards sharing the same read-only positioner and its
// precomputed steering table.
//
//	go run ./examples/multiuser
//
// With -daemon the four writers' raw reader streams go through a running
// rfidrawd session instead of the embedded engine: the daemon
// demultiplexes the tags, traces them concurrently and streams every
// writer's points and recognized glyphs back.
//
//	rfidrawd &
//	go run ./examples/multiuser -daemon http://127.0.0.1:8090
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/deploy"
	"rfidraw/internal/engine"
	"rfidraw/internal/geom"
	"rfidraw/internal/readerwire"
	"rfidraw/internal/server"
	"rfidraw/internal/sim"
	"rfidraw/internal/traj"
)

func main() {
	daemon := flag.String("daemon", "", "rfidrawd HTTP API base URL; empty embeds the engine locally")
	flag.Parse()
	sc, err := sim.New(sim.Config{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Four tags, four users, four words written at the same time in
	// different parts of the writing plane. Gen-2 singulation splits the
	// readers' airtime, so each tag's read rate divides by four.
	words := []string{"hi", "go", "on", "up"}
	starts := []geom.Vec2{{X: 0.4, Z: 1.3}, {X: 1.7, Z: 0.7}, {X: 0.9, Z: 1.7}, {X: 1.9, Z: 1.5}}
	run, err := sc.RunWords(words, starts)
	if err != nil {
		log.Fatal(err)
	}

	if *daemon != "" {
		if err := throughDaemon(*daemon, run, words); err != nil {
			log.Fatal(err)
		}
		return
	}

	eng, err := engine.New(engine.Config{
		Shards: 4,
		Core:   core.Config{Plane: sc.Plane, Region: deploy.DefaultRegion()},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	jobs := make([]engine.TagJob, len(run.Tags))
	for i, tag := range run.Tags {
		jobs[i] = engine.TagJob{Tag: tag.EPC.String(), Samples: run.SamplesRF[i]}
	}
	for i, r := range eng.TraceBatch(jobs) {
		if r.Err != nil {
			log.Fatalf("tag %d: %v", i, r.Err)
		}
		med, err := traj.MedianError(run.Truths[i], r.Result.Best.Trajectory, traj.AlignInitial, 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tag %s: user %d wrote %-3q → %d points traced, shape error %.1f cm\n",
			r.Tag, i+1, words[i], r.Result.Best.Trajectory.Len(), med*100)
	}
	fmt.Printf("\n%d users tracked concurrently on %d shards; EPC identity separates their streams\n",
		len(run.Tags), eng.Shards())
}

// throughDaemon replays the writers' raw per-reader report streams into
// an rfidrawd session and tallies the live output per tag.
func throughDaemon(daemon string, run *sim.MultiWordRun, words []string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cl := &server.Client{BaseURL: daemon}
	id, err := cl.CreateSession(ctx, server.SessionSpec{})
	if err != nil {
		return err
	}
	defer cl.DeleteSession(context.Background(), id)
	fmt.Printf("daemon session %s on %s (ingest %s)\n", id, daemon, cl.Ingest)

	events, errs, err := cl.Subscribe(ctx, id)
	if err != nil {
		return err
	}
	type tally struct {
		points int
		glyphs []string
	}
	tallies := map[string]*tally{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			tl := tallies[ev.Tag]
			if tl == nil {
				tl = &tally{}
				tallies[ev.Tag] = tl
			}
			switch ev.Type {
			case "point":
				tl.points++
			case "glyph":
				tl.glyphs = append(tl.glyphs, ev.Glyph)
			}
		}
	}()

	// Gen-2 singulation splits airtime: the per-tag cadence is tag-count
	// × the raw sweep interval, which is what the Hello announces.
	perTag := run.SweepInterval * time.Duration(len(run.Tags))
	start := time.Now()
	var wg sync.WaitGroup
	for readerID := range run.ReportsRF {
		wg.Add(1)
		go func(readerID int) {
			defer wg.Done()
			rs, err := cl.DialIngest(id, readerwire.Hello{
				Proto: readerwire.ProtoVersion, ReaderID: uint8(readerID),
				AntennaCount: 4, SweepInterval: perTag,
			})
			if err != nil {
				log.Printf("reader %d: %v", readerID, err)
				return
			}
			defer rs.Close()
			if err := rs.Replay(ctx, run.ReportsRF[readerID], 4 /* 4x real time */, 0, start); err != nil {
				log.Printf("reader %d: %v", readerID, err)
			}
		}(readerID)
	}
	wg.Wait()
	time.Sleep(300 * time.Millisecond) // let the daemon's idle drain flush
	if err := cl.DeleteSession(context.Background(), id); err != nil {
		return err
	}
	<-done
	select {
	case err := <-errs:
		return err
	default:
	}
	for i, tag := range run.Tags {
		tl := tallies[tag.EPC.String()]
		if tl == nil {
			tl = &tally{}
		}
		fmt.Printf("tag %s: user %d wrote %-3q → %d live points, glyphs %v\n",
			tag.EPC, i+1, words[i], tl.points, tl.glyphs)
	}
	fmt.Printf("\n%d users tracked concurrently through the daemon; EPC identity separates their streams\n",
		len(run.Tags))
	return nil
}
