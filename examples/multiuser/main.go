// Multiuser: two users write simultaneously with different tags. EPC
// identities keep their report streams apart (§2: "since RF sources have
// unique IDs ... it is easy to scale to a larger number of users"), and
// one tracker per EPC reconstructs each trajectory independently.
//
//	go run ./examples/multiuser
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"rfidraw/internal/antenna"
	"rfidraw/internal/channel"
	"rfidraw/internal/core"
	"rfidraw/internal/deploy"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/rfid"
	"rfidraw/internal/tracing"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	dep, err := deploy.DefaultRFIDraw()
	if err != nil {
		log.Fatal(err)
	}
	env := channel.LOS(0.1, channel.RandomScatterers(rng, 5,
		geom.Vec3{X: -1, Y: 0.3, Z: 0}, geom.Vec3{X: 3.6, Y: 3.5, Z: 2.6}, 0.05, 0.15)...)

	// Two tags, two users, two words written at the same time in
	// different parts of the writing plane.
	tags := []rfid.Tag{rfid.NewTag(rng), rfid.NewTag(rng)}
	words := []string{"hi", "go"}
	starts := []geom.Vec2{{X: 0.4, Z: 1.3}, {X: 1.7, Z: 0.7}}
	plane := geom.Plane{Y: 2}

	written := make([]handwriting.Word, len(tags))
	tracks := make([]func(time.Duration) geom.Vec3, len(tags))
	for i := range tags {
		w, err := handwriting.Write(words[i], starts[i], handwriting.RandomStyle(rng), rng)
		if err != nil {
			log.Fatal(err)
		}
		written[i] = w
		wt := w.Traj
		tracks[i] = func(t time.Duration) geom.Vec3 {
			p, err := wt.At(t)
			if err != nil {
				return geom.Vec3{}
			}
			return plane.To3D(p)
		}
	}

	// Both readers inventory both tags; Gen-2 singulation splits the
	// airtime, so each tag's read rate halves.
	dur := written[0].Traj.Duration()
	if d := written[1].Traj.Duration(); d > dur {
		dur = d
	}
	dur += 100 * time.Millisecond
	mkReader := func(id int, ants []antenna.Antenna) *rfid.Reader {
		cfg := rfid.DefaultReaderConfig(id, ants)
		cfg.SweepInterval = 20 * time.Millisecond
		r, err := rfid.NewReader(cfg, env)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	readers := []*rfid.Reader{
		mkReader(deploy.ReaderA, dep.Antennas[:4]),
		mkReader(deploy.ReaderB, dep.Antennas[4:]),
	}

	for ti, tag := range tags {
		// Collect per-tag samples across both readers.
		merged := map[time.Duration]vote.Observations{}
		for _, r := range readers {
			reports, err := r.InventoryMulti(dur, tags, tracks, rng)
			if err != nil {
				log.Fatal(err)
			}
			sweep := r.Config().SweepInterval
			for _, snap := range rfid.GroupSweeps(reports, tag.EPC, sweep, 5*sweep) {
				obs, ok := merged[snap.Time]
				if !ok {
					obs = vote.Observations{}
					merged[snap.Time] = obs
				}
				for id, ph := range snap.Phase {
					obs[id] = ph
				}
			}
		}
		var samples []tracing.Sample
		for t := time.Duration(0); t <= dur; t += readers[0].Config().SweepInterval {
			if obs, ok := merged[t]; ok {
				samples = append(samples, tracing.Sample{T: t, Phase: obs})
			}
		}

		sys, err := core.NewSystem(dep, core.Config{Plane: plane, Region: deploy.DefaultRegion()})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Trace(samples)
		if err != nil {
			log.Fatalf("tag %d: %v", ti, err)
		}
		med, err := traj.MedianError(written[ti].Traj, res.Best.Trajectory, traj.AlignInitial, 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tag %s: user %d wrote %-3q → %d points traced, shape error %.1f cm\n",
			tag.EPC, ti+1, words[ti], res.Best.Trajectory.Len(), med*100)
	}
	fmt.Println("\nboth users tracked concurrently; EPC identity separates their streams")
}
