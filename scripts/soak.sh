#!/usr/bin/env bash
# Soak gate: drive a race-enabled rfidrawd with loadgen, fail on goroutine
# leaks (pre-load vs post-drain /metrics scrapes), on unpopulated stage
# latency histograms, on a client/server latency-accounting divergence
# (loadgen -server-check-ms), or on an empty mid-load pprof CPU profile,
# and leave the latency percentile report (SOAK JSON) for the CI
# artifact step.
#
# Env knobs: SOAK_SESSIONS (8), SOAK_DURATION (30s), SOAK_OUT
# (SOAK_latency.json), SOAK_PACE (1).
set -euo pipefail

HTTP=127.0.0.1:18090
INGEST=127.0.0.1:17070
PPROF=127.0.0.1:16060
SESSIONS="${SOAK_SESSIONS:-8}"
DURATION="${SOAK_DURATION:-30s}"
PACE="${SOAK_PACE:-1}"
OUT="${SOAK_OUT:-SOAK_latency.json}"
# Goroutine growth tolerated between the two scrapes: idle HTTP conns and
# GC workers wobble a little; a leaked session is dozens.
SLACK=8

mkdir -p bin
go build -race -o bin/rfidrawd ./cmd/rfidrawd
go build -o bin/loadgen ./cmd/loadgen

bin/rfidrawd -http "$HTTP" -ingest "$INGEST" -idle 30s -pprof-addr "$PPROF" &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  curl -sf "http://$HTTP/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$HTTP/healthz" >/dev/null

goroutines() { curl -sf "http://$HTTP/metrics" | awk '/^rfidrawd_goroutines /{print $2}'; }
BEFORE="$(goroutines)"
echo "soak: goroutines before load: $BEFORE"

# loadgen cross-checks the daemon's own rfidrawd_report_latency_seconds
# histogram against the client-observed latency (-server-check-ms): the
# server-side interpolated p99 must not exceed the client p99 by more
# than the tolerance, and the histogram must have gained observations.
bin/loadgen -daemon "http://$HTTP" -sessions "$SESSIONS" -duration "$DURATION" -pace "$PACE" \
  -server-check-ms 500 -out "$OUT" &
LOADGEN=$!

# Mid-load CPU profile: the opt-in pprof endpoint must serve a
# non-empty profile while the daemon is actually working.
sleep 3
curl -sf "http://$PPROF/debug/pprof/profile?seconds=5" -o soak_cpu.pprof
if [ ! -s soak_cpu.pprof ]; then
  echo "soak: pprof CPU profile is empty" >&2
  exit 1
fi
echo "soak: captured mid-load CPU profile ($(wc -c <soak_cpu.pprof) bytes)"
rm -f soak_cpu.pprof

wait "$LOADGEN"
echo "soak: loadgen report:"
cat "$OUT"

# The multi-hypothesis tracing core must surface its observability: the
# hypothesis gauge and the leader-switch/retirement counters have to be
# present on /metrics (values may legitimately be 0 after drain).
METRICS="$(curl -sf "http://$HTTP/metrics")"
for m in rfidrawd_hypotheses_active rfidrawd_leader_switches_total rfidrawd_hypothesis_retirements_total; do
  if ! echo "$METRICS" | grep -q "^$m "; then
    echo "soak: /metrics missing $m" >&2
    exit 1
  fi
done
echo "soak: hypothesis metrics present"

# Every pipeline stage's latency histogram must have been populated by
# the load: a stage whose +Inf bucket stayed at zero means its stamps
# are not wired through the serving path.
for st in ingest reorder wal_append engine_offer emit write; do
  C="$(echo "$METRICS" | grep -F "rfidrawd_stage_seconds_bucket{stage=\"$st\",le=\"+Inf\"}" | awk '{print $2}')"
  if [ "${C:-0}" -eq 0 ]; then
    echo "soak: stage histogram $st never observed anything under load" >&2
    exit 1
  fi
done
echo "soak: all stage histograms populated"

# loadgen deletes its sessions; give the daemon a moment to fully drain.
sleep 5
AFTER="$(goroutines)"
echo "soak: goroutines after drain: $AFTER (before: $BEFORE, slack: $SLACK)"
if [ "$AFTER" -gt $((BEFORE + SLACK)) ]; then
  echo "soak: goroutine leak: $BEFORE -> $AFTER" >&2
  exit 1
fi

# The daemon must still be healthy and empty.
curl -sf "http://$HTTP/healthz" | grep -q '"sessions":0'
echo "soak: OK"

# ── Phase 2: kill-and-recover ────────────────────────────────────────────
# SIGKILL a durable (-data-dir) daemon mid-load, restart it over the same
# directory, and assert (a) every mid-flight session is rehydrated in the
# recovered state, (b) retrace serves from the recovered record and is
# deterministic (two runs byte-identical).
kill "$DAEMON" 2>/dev/null || true
wait "$DAEMON" 2>/dev/null || true

DATA_DIR="$(mktemp -d)"
RECOVER_SESSIONS="${SOAK_RECOVER_SESSIONS:-4}"
bin/rfidrawd -http "$HTTP" -ingest "$INGEST" -idle 30s -data-dir "$DATA_DIR" &
DAEMON=$!
trap 'kill -9 "$DAEMON" 2>/dev/null || true; rm -rf "$DATA_DIR"' EXIT
for _ in $(seq 1 100); do
  curl -sf "http://$HTTP/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done

# Drive load and kill the daemon out from under it.
bin/loadgen -daemon "http://$HTTP" -sessions "$RECOVER_SESSIONS" -duration 60s -pace "$PACE" \
  >/dev/null 2>&1 &
LOADGEN=$!
sleep 8
echo "soak: SIGKILL rfidrawd mid-load"
kill -9 "$DAEMON"
wait "$LOADGEN" 2>/dev/null || true  # loadgen fails when its daemon dies; expected

bin/rfidrawd -http "$HTTP" -ingest "$INGEST" -idle 30s -data-dir "$DATA_DIR" &
DAEMON=$!
for _ in $(seq 1 100); do
  curl -sf "http://$HTTP/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done

RECOVERED="$(curl -sf "http://$HTTP/metrics" | awk '/^rfidrawd_sessions_recovered_total /{print $2}')"
echo "soak: sessions recovered after restart: $RECOVERED (want $RECOVER_SESSIONS)"
if [ "$RECOVERED" -lt "$RECOVER_SESSIONS" ]; then
  echo "soak: recovery lost sessions: $RECOVERED < $RECOVER_SESSIONS" >&2
  exit 1
fi
STATES="$(curl -sf "http://$HTTP/v1/sessions")"
if echo "$STATES" | grep -q '"state":"live"'; then
  echo "soak: recovered daemon reports live sessions it never served" >&2
  exit 1
fi

# Retrace equivalence: two retraces of the same recovered record must be
# byte-identical and non-empty.
SID="$(echo "$STATES" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p' | head -1)"
curl -sf -X POST "http://$HTTP/v1/sessions/$SID/retrace" -d '{}' -o rt1.json
curl -sf -X POST "http://$HTTP/v1/sessions/$SID/retrace" -d '{}' -o rt2.json
if ! cmp -s rt1.json rt2.json; then
  echo "soak: retrace of $SID is nondeterministic" >&2
  exit 1
fi
if ! grep -q '"t_ns"' rt1.json; then
  echo "soak: retrace of $SID returned no trajectory points" >&2
  exit 1
fi
rm -f rt1.json rt2.json
echo "soak: kill-and-recover OK ($RECOVERED sessions, retrace deterministic)"

# ── Phase 3: adversarial scenario corpus ─────────────────────────────────
# Drive every named fault profile (internal/corpus) through a fresh
# durable daemon with loadgen -profile: injected clock skew, duplicate
# floods, reader death and the multiroom geometry must all produce trace
# points, keep retrace deterministic, and leak no goroutines. The drift
# profile's 40ms skew exceeds the 25ms reorder window, so the
# reorder-late counter must move.
kill -9 "$DAEMON" 2>/dev/null || true
wait "$DAEMON" 2>/dev/null || true
rm -rf "$DATA_DIR"

ADV_SESSIONS="${SOAK_ADV_SESSIONS:-2}"
ADV_DURATION="${SOAK_ADV_DURATION:-8s}"
ADV_PACE="${SOAK_ADV_PACE:-4}"
DATA_DIR="$(mktemp -d)"
bin/rfidrawd -http "$HTTP" -ingest "$INGEST" -idle 30s -data-dir "$DATA_DIR" &
DAEMON=$!
for _ in $(seq 1 100); do
  curl -sf "http://$HTTP/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
ADV_BEFORE="$(goroutines)"

for PROFILE in clean nlos-heavy drift dup-flood reader-loss multiroom; do
  echo "soak: adversarial profile: $PROFILE"
  bin/loadgen -daemon "http://$HTTP" -sessions "$ADV_SESSIONS" \
    -duration "$ADV_DURATION" -pace "$ADV_PACE" -retrace \
    -profile "$PROFILE" -out "SOAK_${PROFILE}.json"
done

LATE="$(curl -sf "http://$HTTP/metrics" | awk '/^rfidrawd_reorder_late_total /{print $2}')"
echo "soak: reorder-late reports across profiles: $LATE"
if [ "${LATE:-0}" -eq 0 ]; then
  echo "soak: drift profile moved no reorder-late reports (skew beyond the window went unnoticed)" >&2
  exit 1
fi

sleep 5
ADV_AFTER="$(goroutines)"
echo "soak: goroutines after adversarial phase: $ADV_AFTER (before: $ADV_BEFORE, slack: $SLACK)"
if [ "$ADV_AFTER" -gt $((ADV_BEFORE + SLACK)) ]; then
  echo "soak: goroutine leak under fault injection: $ADV_BEFORE -> $ADV_AFTER" >&2
  exit 1
fi
curl -sf "http://$HTTP/healthz" | grep -q '"sessions":0'
echo "soak: adversarial corpus OK (6 profiles, reorder-late $LATE)"

# ── Phase 4: overload ────────────────────────────────────────────────────
# Drive a daemon provisioned at a fraction of the offered load (tiny
# -eval-capacity, low shed/park thresholds) well past capacity and
# assert the admission layer does its job: the congestion score rises on
# /metrics, the cheapest durable sessions are parked (not dropped), new
# sessions are refused with 429s that carry Retry-After (loadgen
# -overload fails on a hint-less 429), a parked session resumes and
# still retraces deterministically, and the daemon neither crashes nor
# leaks goroutines.
kill -9 "$DAEMON" 2>/dev/null || true
wait "$DAEMON" 2>/dev/null || true
rm -rf "$DATA_DIR"

OVL_SESSIONS="${SOAK_OVERLOAD_SESSIONS:-12}"
OVL_DURATION="${SOAK_OVERLOAD_DURATION:-20s}"
OVL_PACE="${SOAK_OVERLOAD_PACE:-4}"
DATA_DIR="$(mktemp -d)"
bin/rfidrawd -http "$HTTP" -ingest "$INGEST" -idle 30s -data-dir "$DATA_DIR" \
  -eval-capacity 500 -shed-at 0.5 -park-at 0.2 &
DAEMON=$!
for _ in $(seq 1 100); do
  curl -sf "http://$HTTP/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
OVL_BEFORE="$(goroutines)"

bin/loadgen -daemon "http://$HTTP" -sessions "$OVL_SESSIONS" \
  -duration "$OVL_DURATION" -pace "$OVL_PACE" -overload -out SOAK_overload.json &
LOADGEN=$!

# The score decays once sessions are parked, so sample it while the
# overload is in flight and keep the peak.
PEAK=0
for _ in $(seq 1 15); do
  sleep 1
  S="$(curl -sf "http://$HTTP/metrics" | awk '/^rfidrawd_congestion_score /{print $2}')" || S=0
  PEAK="$(awk -v a="$PEAK" -v b="${S:-0}" 'BEGIN{print (b>a)?b:a}')"
done
if ! wait "$LOADGEN"; then
  echo "soak: loadgen -overload failed (a session errored for a reason other than shed/park)" >&2
  cat SOAK_overload.json >&2 || true
  exit 1
fi
echo "soak: overload report:"
cat SOAK_overload.json
echo "soak: peak congestion score under overload: $PEAK"
if awk -v p="$PEAK" 'BEGIN{exit !(p > 0)}'; then :; else
  echo "soak: congestion score never rose under 2x+ overload" >&2
  exit 1
fi

METRICS="$(curl -sf "http://$HTTP/metrics")"
PARKED="$(echo "$METRICS" | awk '/^rfidrawd_sessions_parked_total /{print $2}')"
REJECTED="$(echo "$METRICS" | awk '/^rfidrawd_admission_rejected_total /{print $2}')"
echo "soak: parked $PARKED sessions, rejected $REJECTED creates with 429"
if [ "${PARKED:-0}" -eq 0 ]; then
  echo "soak: pressure loop parked nothing under overload" >&2
  exit 1
fi
if [ "${REJECTED:-0}" -eq 0 ]; then
  echo "soak: admission refused nothing under overload" >&2
  exit 1
fi

# Resume one parked session through the control plane and prove the
# record survived the park/resume round trip: two retraces must be
# byte-identical and non-empty.
PARKED_ID="$(curl -sf "http://$HTTP/v1/control" | grep -o '"id":"[^"]*","state":"recovered"' | head -1 | sed 's/"id":"\([^"]*\)".*/\1/')"
if [ -z "$PARKED_ID" ]; then
  echo "soak: no parked session visible on /v1/control" >&2
  exit 1
fi
curl -sf -X POST "http://$HTTP/v1/sessions/$PARKED_ID/resume" >/dev/null
curl -sf "http://$HTTP/v1/sessions/$PARKED_ID" | grep -q '"state":"live"'
curl -sf -X POST "http://$HTTP/v1/sessions/$PARKED_ID/retrace" -d '{}' -o rt1.json
curl -sf -X POST "http://$HTTP/v1/sessions/$PARKED_ID/retrace" -d '{}' -o rt2.json
if ! cmp -s rt1.json rt2.json; then
  echo "soak: retrace after park/resume is nondeterministic" >&2
  exit 1
fi
if ! grep -q '"t_ns"' rt1.json; then
  echo "soak: retrace after park/resume returned no trajectory points" >&2
  exit 1
fi
rm -f rt1.json rt2.json
RESUMED="$(curl -sf "http://$HTTP/metrics" | awk '/^rfidrawd_sessions_resumed_total /{print $2}')"
echo "soak: resumed $PARKED_ID losslessly (resumed_total $RESUMED, retrace deterministic)"

sleep 5
OVL_AFTER="$(goroutines)"
echo "soak: goroutines after overload phase: $OVL_AFTER (before: $OVL_BEFORE, slack: $SLACK)"
if [ "$OVL_AFTER" -gt $((OVL_BEFORE + SLACK)) ]; then
  echo "soak: goroutine leak under overload: $OVL_BEFORE -> $OVL_AFTER" >&2
  exit 1
fi
curl -sf "http://$HTTP/healthz" >/dev/null
echo "soak: overload OK (peak score $PEAK, parked $PARKED, rejected $REJECTED)"

# ── Phase 5: binary subscriber encoding ──────────────────────────────────
# Replay the identical scenario twice against a fresh daemon — once with
# NDJSON subscribers, once with the length-prefixed binary encoding — and
# gate that both decode to the same trace stream. Counts must agree
# within the tail-sweep bound (the replay deadline cuts the final
# scenario loop at a wall-clock boundary, so the last in-flight sweep per
# tag can differ by a point between runs; an encoding-level decode bug
# diverges by whole event streams, not a tail point) and neither run may
# drop events.
kill -9 "$DAEMON" 2>/dev/null || true
wait "$DAEMON" 2>/dev/null || true
rm -rf "$DATA_DIR"

ENC_SESSIONS="${SOAK_ENC_SESSIONS:-2}"
ENC_DURATION="${SOAK_ENC_DURATION:-8s}"
ENC_PACE="${SOAK_ENC_PACE:-4}"
bin/rfidrawd -http "$HTTP" -ingest "$INGEST" -idle 30s &
DAEMON=$!
trap 'kill -9 "$DAEMON" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  curl -sf "http://$HTTP/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done

for ENC in ndjson binary; do
  echo "soak: encoding phase: $ENC"
  bin/loadgen -daemon "http://$HTTP" -sessions "$ENC_SESSIONS" \
    -duration "$ENC_DURATION" -pace "$ENC_PACE" -encoding "$ENC" \
    -out "SOAK_enc_${ENC}.json"
done

enc_field() { sed -n "s/^  \"$2\": \([0-9]*\),*/\1/p" "SOAK_enc_$1.json" | head -1; }
ND_POINTS="$(enc_field ndjson points)"; BIN_POINTS="$(enc_field binary points)"
ND_DROPS="$(enc_field ndjson drops)";   BIN_DROPS="$(enc_field binary drops)"
TAGS="$(enc_field ndjson tags_per_session)"
ENC_SLACK=$((ENC_SESSIONS * TAGS * 2))
echo "soak: points ndjson=$ND_POINTS binary=$BIN_POINTS (slack $ENC_SLACK), drops ndjson=$ND_DROPS binary=$BIN_DROPS"
if [ "${ND_POINTS:-0}" -eq 0 ] || [ "${BIN_POINTS:-0}" -eq 0 ]; then
  echo "soak: an encoding phase produced no trace points" >&2
  exit 1
fi
if [ "${ND_DROPS:-0}" -ne 0 ] || [ "${BIN_DROPS:-0}" -ne 0 ]; then
  echo "soak: encoding phase dropped events (ndjson $ND_DROPS, binary $BIN_DROPS)" >&2
  exit 1
fi
DIFF=$((ND_POINTS - BIN_POINTS)); [ "$DIFF" -lt 0 ] && DIFF=$((-DIFF))
if [ "$DIFF" -gt "$ENC_SLACK" ]; then
  echo "soak: binary subscribers decoded a different stream: $ND_POINTS ndjson vs $BIN_POINTS binary points" >&2
  exit 1
fi
curl -sf "http://$HTTP/healthz" | grep -q '"sessions":0'
echo "soak: binary encoding OK ($BIN_POINTS points, equal to ndjson within tail-sweep bound)"

# ── Phase 6: tiered fan-out under pressure ───────────────────────────────
# One session fanning out to many subscribers spread across all three
# trace tiers, against a daemon with a deliberately shallow subscriber
# queue so fan-out pressure is real: the adaptive policy must step
# backlogged subscribers down a tier (downgrades > 0, announced
# in-stream and counted by the report) instead of stalling anyone, and
# the decimated T0 cohort — running at an eighth of the point rate —
# must ride it out without losing a single event. The daemon must also
# come back to idle without leaking any of the fan-out goroutines.
kill -9 "$DAEMON" 2>/dev/null || true
wait "$DAEMON" 2>/dev/null || true

TIER_SUBSCRIBERS="${SOAK_TIER_SUBSCRIBERS:-256}"
TIER_DURATION="${SOAK_TIER_DURATION:-10s}"
TIER_PACE="${SOAK_TIER_PACE:-8}"
bin/rfidrawd -http "$HTTP" -ingest "$INGEST" -idle 30s \
  -max-subscribers 512 -queue 2 &
DAEMON=$!
trap 'kill -9 "$DAEMON" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  curl -sf "http://$HTTP/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
TIER_BEFORE="$(goroutines)"

echo "soak: tiered fan-out phase: $TIER_SUBSCRIBERS subscribers, mixed tiers"
bin/loadgen -daemon "http://$HTTP" -sessions 1 -tags 4 -duration "$TIER_DURATION" \
  -pace "$TIER_PACE" -subscribers "$TIER_SUBSCRIBERS" -tier mixed \
  -out SOAK_tiered.json

tier_field() { sed -n "s/^  \"$1\": \([0-9]*\),*/\1/p" SOAK_tiered.json | head -1; }
T0_POINTS="$(tier_field tier0_points)"; T1_POINTS="$(tier_field tier1_points)"
T2_POINTS="$(tier_field tier2_points)"; T0_DROPS="$(tier_field tier0_drops)"
DOWNGRADES="$(tier_field downgrades)"
echo "soak: tiered points t0=$T0_POINTS t1=$T1_POINTS t2=$T2_POINTS, t0 drops=$T0_DROPS, downgrades=$DOWNGRADES"
if [ "${T0_POINTS:-0}" -eq 0 ] || [ "${T1_POINTS:-0}" -eq 0 ] || [ "${T2_POINTS:-0}" -eq 0 ]; then
  echo "soak: a tier cohort received no trace points" >&2
  exit 1
fi
if [ "${DOWNGRADES:-0}" -eq 0 ]; then
  echo "soak: fan-out pressure on a shallow queue triggered no adaptive downgrades" >&2
  exit 1
fi
if [ "${T0_DROPS:-0}" -ne 0 ]; then
  echo "soak: decimated T0 subscribers dropped $T0_DROPS events under fan-out pressure" >&2
  exit 1
fi
DOWNGRADES_METRIC="$(curl -sf "http://$HTTP/metrics" | awk '/^rfidrawd_tier_downgrades_total /{print $2}')"
if [ "${DOWNGRADES_METRIC:-0}" -eq 0 ]; then
  echo "soak: rfidrawd_tier_downgrades_total never moved despite $DOWNGRADES observed downgrades" >&2
  exit 1
fi

sleep 5
TIER_AFTER="$(goroutines)"
echo "soak: goroutines after tiered phase: $TIER_AFTER (before: $TIER_BEFORE, slack: $SLACK)"
if [ "$TIER_AFTER" -gt $((TIER_BEFORE + SLACK)) ]; then
  echo "soak: goroutine leak under tiered fan-out: $TIER_BEFORE -> $TIER_AFTER" >&2
  exit 1
fi
curl -sf "http://$HTTP/healthz" | grep -q '"sessions":0'
echo "soak: tiered fan-out OK ($TIER_SUBSCRIBERS subscribers, $DOWNGRADES downgrades, zero T0 drops)"
