#!/usr/bin/env bash
# Soak gate: drive a race-enabled rfidrawd with loadgen, fail on goroutine
# leaks (pre-load vs post-drain /metrics scrapes), and leave the latency
# percentile report (SOAK JSON) for the CI artifact step.
#
# Env knobs: SOAK_SESSIONS (8), SOAK_DURATION (30s), SOAK_OUT
# (SOAK_latency.json), SOAK_PACE (1).
set -euo pipefail

HTTP=127.0.0.1:18090
INGEST=127.0.0.1:17070
SESSIONS="${SOAK_SESSIONS:-8}"
DURATION="${SOAK_DURATION:-30s}"
PACE="${SOAK_PACE:-1}"
OUT="${SOAK_OUT:-SOAK_latency.json}"
# Goroutine growth tolerated between the two scrapes: idle HTTP conns and
# GC workers wobble a little; a leaked session is dozens.
SLACK=8

mkdir -p bin
go build -race -o bin/rfidrawd ./cmd/rfidrawd
go build -o bin/loadgen ./cmd/loadgen

bin/rfidrawd -http "$HTTP" -ingest "$INGEST" -idle 30s &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  curl -sf "http://$HTTP/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$HTTP/healthz" >/dev/null

goroutines() { curl -sf "http://$HTTP/metrics" | awk '/^rfidrawd_goroutines /{print $2}'; }
BEFORE="$(goroutines)"
echo "soak: goroutines before load: $BEFORE"

bin/loadgen -daemon "http://$HTTP" -sessions "$SESSIONS" -duration "$DURATION" -pace "$PACE" -out "$OUT"
echo "soak: loadgen report:"
cat "$OUT"

# The multi-hypothesis tracing core must surface its observability: the
# hypothesis gauge and the leader-switch/retirement counters have to be
# present on /metrics (values may legitimately be 0 after drain).
METRICS="$(curl -sf "http://$HTTP/metrics")"
for m in rfidrawd_hypotheses_active rfidrawd_leader_switches_total rfidrawd_hypothesis_retirements_total; do
  if ! echo "$METRICS" | grep -q "^$m "; then
    echo "soak: /metrics missing $m" >&2
    exit 1
  fi
done
echo "soak: hypothesis metrics present"

# loadgen deletes its sessions; give the daemon a moment to fully drain.
sleep 5
AFTER="$(goroutines)"
echo "soak: goroutines after drain: $AFTER (before: $BEFORE, slack: $SLACK)"
if [ "$AFTER" -gt $((BEFORE + SLACK)) ]; then
  echo "soak: goroutine leak: $BEFORE -> $AFTER" >&2
  exit 1
fi

# The daemon must still be healthy and empty.
curl -sf "http://$HTTP/healthz" | grep -q '"sessions":0'
echo "soak: OK"

# ── Phase 2: kill-and-recover ────────────────────────────────────────────
# SIGKILL a durable (-data-dir) daemon mid-load, restart it over the same
# directory, and assert (a) every mid-flight session is rehydrated in the
# recovered state, (b) retrace serves from the recovered record and is
# deterministic (two runs byte-identical).
kill "$DAEMON" 2>/dev/null || true
wait "$DAEMON" 2>/dev/null || true

DATA_DIR="$(mktemp -d)"
RECOVER_SESSIONS="${SOAK_RECOVER_SESSIONS:-4}"
bin/rfidrawd -http "$HTTP" -ingest "$INGEST" -idle 30s -data-dir "$DATA_DIR" &
DAEMON=$!
trap 'kill -9 "$DAEMON" 2>/dev/null || true; rm -rf "$DATA_DIR"' EXIT
for _ in $(seq 1 100); do
  curl -sf "http://$HTTP/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done

# Drive load and kill the daemon out from under it.
bin/loadgen -daemon "http://$HTTP" -sessions "$RECOVER_SESSIONS" -duration 60s -pace "$PACE" \
  >/dev/null 2>&1 &
LOADGEN=$!
sleep 8
echo "soak: SIGKILL rfidrawd mid-load"
kill -9 "$DAEMON"
wait "$LOADGEN" 2>/dev/null || true  # loadgen fails when its daemon dies; expected

bin/rfidrawd -http "$HTTP" -ingest "$INGEST" -idle 30s -data-dir "$DATA_DIR" &
DAEMON=$!
for _ in $(seq 1 100); do
  curl -sf "http://$HTTP/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done

RECOVERED="$(curl -sf "http://$HTTP/metrics" | awk '/^rfidrawd_sessions_recovered_total /{print $2}')"
echo "soak: sessions recovered after restart: $RECOVERED (want $RECOVER_SESSIONS)"
if [ "$RECOVERED" -lt "$RECOVER_SESSIONS" ]; then
  echo "soak: recovery lost sessions: $RECOVERED < $RECOVER_SESSIONS" >&2
  exit 1
fi
STATES="$(curl -sf "http://$HTTP/v1/sessions")"
if echo "$STATES" | grep -q '"state":"live"'; then
  echo "soak: recovered daemon reports live sessions it never served" >&2
  exit 1
fi

# Retrace equivalence: two retraces of the same recovered record must be
# byte-identical and non-empty.
SID="$(echo "$STATES" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p' | head -1)"
curl -sf -X POST "http://$HTTP/v1/sessions/$SID/retrace" -d '{}' -o rt1.json
curl -sf -X POST "http://$HTTP/v1/sessions/$SID/retrace" -d '{}' -o rt2.json
if ! cmp -s rt1.json rt2.json; then
  echo "soak: retrace of $SID is nondeterministic" >&2
  exit 1
fi
if ! grep -q '"t_ns"' rt1.json; then
  echo "soak: retrace of $SID returned no trajectory points" >&2
  exit 1
fi
rm -f rt1.json rt2.json
echo "soak: kill-and-recover OK ($RECOVERED sessions, retrace deterministic)"

# ── Phase 3: adversarial scenario corpus ─────────────────────────────────
# Drive every named fault profile (internal/corpus) through a fresh
# durable daemon with loadgen -profile: injected clock skew, duplicate
# floods, reader death and the multiroom geometry must all produce trace
# points, keep retrace deterministic, and leak no goroutines. The drift
# profile's 40ms skew exceeds the 25ms reorder window, so the
# reorder-late counter must move.
kill -9 "$DAEMON" 2>/dev/null || true
wait "$DAEMON" 2>/dev/null || true
rm -rf "$DATA_DIR"

ADV_SESSIONS="${SOAK_ADV_SESSIONS:-2}"
ADV_DURATION="${SOAK_ADV_DURATION:-8s}"
ADV_PACE="${SOAK_ADV_PACE:-4}"
DATA_DIR="$(mktemp -d)"
bin/rfidrawd -http "$HTTP" -ingest "$INGEST" -idle 30s -data-dir "$DATA_DIR" &
DAEMON=$!
for _ in $(seq 1 100); do
  curl -sf "http://$HTTP/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
ADV_BEFORE="$(goroutines)"

for PROFILE in clean nlos-heavy drift dup-flood reader-loss multiroom; do
  echo "soak: adversarial profile: $PROFILE"
  bin/loadgen -daemon "http://$HTTP" -sessions "$ADV_SESSIONS" \
    -duration "$ADV_DURATION" -pace "$ADV_PACE" -retrace \
    -profile "$PROFILE" -out "SOAK_${PROFILE}.json"
done

LATE="$(curl -sf "http://$HTTP/metrics" | awk '/^rfidrawd_reorder_late_total /{print $2}')"
echo "soak: reorder-late reports across profiles: $LATE"
if [ "${LATE:-0}" -eq 0 ]; then
  echo "soak: drift profile moved no reorder-late reports (skew beyond the window went unnoticed)" >&2
  exit 1
fi

sleep 5
ADV_AFTER="$(goroutines)"
echo "soak: goroutines after adversarial phase: $ADV_AFTER (before: $ADV_BEFORE, slack: $SLACK)"
if [ "$ADV_AFTER" -gt $((ADV_BEFORE + SLACK)) ]; then
  echo "soak: goroutine leak under fault injection: $ADV_BEFORE -> $ADV_AFTER" >&2
  exit 1
fi
curl -sf "http://$HTTP/healthz" | grep -q '"sessions":0'
echo "soak: adversarial corpus OK (6 profiles, reorder-late $LATE)"
