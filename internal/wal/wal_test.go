package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rfidraw/internal/rfid"
)

// testMeta is a fixed session identity for the round-trip tests.
func testMeta() Meta {
	return Meta{ID: "sess-1", Created: time.Unix(0, 1234567890), Sweep: 50 * time.Millisecond}
}

// testReports fabricates n deterministic reports.
func testReports(n int) []rfid.Report {
	rng := rand.New(rand.NewSource(42))
	out := make([]rfid.Report, n)
	for i := range out {
		out[i] = rfid.Report{
			Time:      time.Duration(i) * 10 * time.Millisecond,
			ReaderID:  i % 2,
			AntennaID: 1 + i%4,
			EPC:       rfid.RandomEPC(rng),
			PhaseRad:  rng.Float64() * 6.28,
			PowerDB:   -30 - rng.Float64()*10,
		}
	}
	return out
}

// writeLog appends reports (with a flush every flushEvery reports) and
// returns the store. close_ appends the clean-close record and compacts.
func writeLog(t *testing.T, dir string, opts Options, reports []rfid.Report, flushEvery int, close_ bool) *Store {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := st.Create(testMeta())
	if err != nil {
		t.Fatal(err)
	}
	seq := uint64(0)
	for i, rep := range reports {
		seq++
		if err := l.AppendReport(seq, rep); err != nil {
			t.Fatal(err)
		}
		if flushEvery > 0 && (i+1)%flushEvery == 0 {
			seq++
			if err := l.AppendFlush(seq); err != nil {
				t.Fatal(err)
			}
		}
	}
	if close_ {
		seq++
		if err := l.Close(seq); err != nil {
			t.Fatal(err)
		}
	} else if err := l.Abandon(); err != nil {
		t.Fatal(err)
	}
	return st
}

// collect replays a session into a slice.
func collect(t *testing.T, st *Store, id string, upTo uint64) []Record {
	t.Helper()
	var out []Record
	if err := st.Replay(id, upTo, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRoundTrip: meta, reports, flush markers and the close record
// survive a write/read cycle byte-exactly, with clean stats.
func TestRoundTrip(t *testing.T) {
	reports := testReports(100)
	st := writeLog(t, t.TempDir(), Options{NoSync: true}, reports, 10, true)

	meta, stats, err := st.Scan("sess-1")
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != "sess-1" || meta.Sweep != 50*time.Millisecond || !meta.Created.Equal(time.Unix(0, 1234567890)) {
		t.Fatalf("meta = %+v", meta)
	}
	if stats.Reports != 100 || stats.Flushes != 10 || !stats.CleanClose {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.TornBytes != 0 {
		t.Fatalf("undamaged log reports %d torn bytes", stats.TornBytes)
	}

	recs := collect(t, st, "sess-1", 0)
	ri := 0
	for _, rec := range recs {
		if rec.Type != RecordReport {
			continue
		}
		if rec.Report != reports[ri] {
			t.Fatalf("report %d: %+v != %+v", ri, rec.Report, reports[ri])
		}
		ri++
	}
	if ri != len(reports) {
		t.Fatalf("replayed %d reports, want %d", ri, len(reports))
	}
}

// TestRotationAndCompaction: a tiny segment budget forces many segments;
// replay spans them all, and a clean close compacts to the single
// authoritative segment with identical content.
func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	reports := testReports(200)
	st := writeLog(t, dir, Options{NoSync: true, SegmentBytes: 512}, reports, 0, false)

	segs, err := segmentFiles(st.sessionDir("sess-1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("512-byte budget produced only %d segments", len(segs))
	}
	before := collect(t, st, "sess-1", 0)

	// Compact (as a clean close would) and re-read: same records.
	if err := compact(st.sessionDir("sess-1")); err != nil {
		t.Fatal(err)
	}
	segs, _ = segmentFiles(st.sessionDir("sess-1"))
	if len(segs) != 1 || filepath.Base(segs[0]) != compactedName {
		t.Fatalf("post-compaction segments: %v", segs)
	}
	after := collect(t, st, "sess-1", 0)
	if len(before) != len(after) {
		t.Fatalf("compaction changed record count %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("record %d changed: %+v -> %+v", i, before[i], after[i])
		}
	}
	// Meta must still be recoverable from the compacted form.
	if meta, _, err := st.Scan("sess-1"); err != nil || meta.ID != "sess-1" {
		t.Fatalf("compacted scan: meta=%+v err=%v", meta, err)
	}
}

// TestUpToStopsAtHead: Replay(upTo) must deliver records through the
// given seq and nothing after — the catch-up reader's contract.
func TestUpToStopsAtHead(t *testing.T) {
	st := writeLog(t, t.TempDir(), Options{NoSync: true}, testReports(50), 10, true)
	recs := collect(t, st, "sess-1", 23)
	if len(recs) == 0 || recs[len(recs)-1].Seq != 23 {
		t.Fatalf("upTo=23 ended at seq %d (%d records)", recs[len(recs)-1].Seq, len(recs))
	}
}

// TestTornTailRecovery is the satellite gate: truncate the last segment
// at EVERY byte offset inside the final record and assert recovery never
// panics, drops exactly the torn record, and replays the undamaged
// prefix intact.
func TestTornTailRecovery(t *testing.T) {
	src := t.TempDir()
	reports := testReports(30)
	writeLog(t, src, Options{NoSync: true}, reports, 0, false)
	seg := filepath.Join(src, "sess-1", "00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := frameHeader + reportPayloadLen
	full := collect(t, mustOpen(t, src), "sess-1", 0)
	if len(full) != 30 {
		t.Fatalf("intact log has %d records, want 30", len(full))
	}

	for cut := len(data) - lastFrame + 1; cut < len(data); cut++ {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, "sess-1"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "sess-1", "00000001.wal"), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st := mustOpen(t, dir)
		meta, stats, err := st.Scan("sess-1")
		if err != nil {
			t.Fatalf("cut=%d: scan: %v", cut, err)
		}
		if meta.ID != "sess-1" {
			t.Fatalf("cut=%d: meta lost: %+v", cut, meta)
		}
		if stats.Reports != 29 {
			t.Fatalf("cut=%d: recovered %d reports, want 29 (only the torn record drops)", cut, stats.Reports)
		}
		if stats.TornBytes == 0 {
			t.Fatalf("cut=%d: truncation not accounted", cut)
		}
		recs := collect(t, st, "sess-1", 0)
		for i, rec := range recs {
			if rec != full[i] {
				t.Fatalf("cut=%d: record %d diverged from undamaged prefix", cut, i)
			}
		}
	}
}

// TestMidSegmentCorruptionResyncs: flipping bytes inside a middle record
// loses that record only; the reader re-locks on the next frame.
func TestMidSegmentCorruptionResyncs(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, Options{NoSync: true}, testReports(20), 0, false)
	seg := filepath.Join(dir, "sess-1", "00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt record #10's payload (meta record is first; records are
	// fixed-size after it).
	metaLen := frameHeader + 26 + len("sess-1")
	off := metaLen + 9*(frameHeader+reportPayloadLen) + frameHeader + 5
	for i := 0; i < 4; i++ {
		data[off+i] ^= 0xff
	}
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st := mustOpen(t, dir)
	_, stats, err := st.Scan("sess-1")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reports != 19 {
		t.Fatalf("recovered %d reports, want 19 (one corrupted)", stats.Reports)
	}
	if stats.TornBytes == 0 {
		t.Fatal("corruption not accounted")
	}
}

// TestSessionsListAndRemove covers the store-level directory API.
func TestSessionsListAndRemove(t *testing.T) {
	dir := t.TempDir()
	st := writeLog(t, dir, Options{NoSync: true}, testReports(5), 0, true)
	l2, err := st.Create(Meta{ID: "sess-2", Created: time.Now(), Sweep: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(1); err != nil {
		t.Fatal(err)
	}
	ids, err := st.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "sess-1" || ids[1] != "sess-2" {
		t.Fatalf("sessions = %v", ids)
	}
	u := st.Usage()
	if u.Sessions != 2 || u.Segments < 2 || u.Bytes == 0 {
		t.Fatalf("usage = %+v", u)
	}
	if err := st.Remove("sess-1"); err != nil {
		t.Fatal(err)
	}
	if ids, _ = st.Sessions(); len(ids) != 1 || ids[0] != "sess-2" {
		t.Fatalf("sessions after remove = %v", ids)
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return st
}
