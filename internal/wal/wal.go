// Package wal is the durability layer of the serving stack: a per-session
// write-ahead log of the canonical resequenced report stream. The session
// pump appends every report *after* the cross-reader reorder buffer has
// released it, so the log is exactly the stream the tracking engine saw,
// in the order it saw it — which makes a replay of the log reproduce the
// live trace bit for bit (the same one-core-two-schedulers property the
// batch/streaming equivalence gate enforces, extended to disk).
//
// # Layout
//
// Each session owns one directory under the store root, named by its
// (filesystem-safe) session ID, holding numbered segment files:
//
//	<root>/<session-id>/00000001.wal
//	<root>/<session-id>/00000002.wal
//	...
//
// Segments rotate by size and (optionally) age. Every segment opens with
// a meta record, so any segment is self-describing. Closing a log
// compacts the session to a single 00000000.wal segment (which sorts
// before all append segments and is authoritative when present, making
// compaction crash-safe: a crash between the rename and the deletion of
// the old segments leaves a readable, de-duplicated session).
//
// # Record framing
//
// Every record is length- and CRC-framed:
//
//	uint32  payload length (big endian, excluding the 8-byte frame)
//	uint32  CRC-32 (IEEE) of the payload
//	...     payload: type byte + type-specific fields
//
// Record types: meta (session identity, sweep cadence), report (one
// sequenced reader report), flush (the pump drained and closed open
// sweeps — replays must flush there too, or they diverge from the live
// trace), close (clean end of session).
//
// # Recovery
//
// Reading is resync-tolerant in the readerwire spirit: a damaged record
// (bad CRC, implausible length) makes the reader slide forward byte by
// byte until it locks onto the next valid frame instead of abandoning
// the session; a torn tail (the process died mid-append, or the last
// sector never hit the platter) drops exactly the torn record and
// nothing else.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rfidraw/internal/rfid"
)

// Record type bytes.
const (
	typeMeta   = 0x01
	typeReport = 0x02
	typeFlush  = 0x03
	typeClose  = 0x04
)

// walVersion identifies the record format revision inside meta records.
const walVersion = 1

// maxPayload bounds a record payload; anything larger is rejected as
// corrupt framing (the largest real payload is a meta record with a
// 64-byte session ID).
const maxPayload = 1 << 12

// frameHeader is the fixed per-record framing overhead.
const frameHeader = 8

// Options tunes a Store.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this.
	// Default 4 MiB.
	SegmentBytes int64
	// SegmentAge rotates the active segment once it has been open this
	// long, so an idle session's tail still becomes a closed, compactable
	// segment. 0 disables age-based rotation.
	SegmentAge time.Duration
	// SyncEvery fsyncs the active segment every N report appends; 1
	// syncs every append (maximum durability, one fsync per report).
	// Flush and close records always sync. Default 64.
	SyncEvery int
	// NoSync disables fsync entirely (tests and benchmarks).
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	return o
}

// Meta identifies a logged session.
type Meta struct {
	// ID is the session's registry identity (filesystem-safe by the
	// registry's ID charset).
	ID string
	// Created is the session's creation time.
	Created time.Time
	// Sweep is the session's per-tag reader cadence — a replay needs it
	// to rebuild the tracking pipeline the live session ran.
	Sweep time.Duration
	// Geometry names the session's antenna geometry (deploy registry
	// name); "" is the default deployment. A replay rebuilds the same
	// steering tables the live session positioned with. Stored in a
	// formerly reserved meta byte, so logs written before geometries
	// existed decode to "".
	Geometry string
	// Search carries the session's per-session vote-search override, if
	// any: a replay must rebuild the same steering tables the live
	// session searched with, or the retrace diverges. Stored in formerly
	// reserved meta bytes, so older logs decode to the zero value (no
	// override).
	Search SearchMeta
}

// SearchMeta is the wire form of a per-session search override in the
// meta record. The zero value means "no override" (deployment default).
type SearchMeta struct {
	// Mode is 0 (no override), 1 (hierarchical) or 2 (dense).
	Mode uint8
	// TopK and Levels mirror the search configuration's fields (the
	// registry validates they fit a byte before opening the session).
	TopK   uint8
	Levels uint8
}

// Overrides carries per-log option overrides — a session's WAL policy —
// applied on top of the store's defaults.
type Overrides struct {
	// SyncEvery, when positive, replaces the store's report-append sync
	// cadence for this log.
	SyncEvery int
}

// Record is one decoded log entry.
type Record struct {
	// Seq is the session-scoped record sequence number (reports and
	// flushes share one monotonic counter).
	Seq uint64
	// Type is one of RecordReport, RecordFlush, RecordClose.
	Type RecordType
	// Report carries the reader report for RecordReport entries.
	Report rfid.Report
}

// RecordType enumerates replayable record kinds.
type RecordType uint8

// Replayable record kinds, in the order a session emits them.
const (
	RecordReport RecordType = iota + 1
	RecordFlush
	RecordClose
)

// Stats summarizes one session's log as recovered from disk.
type Stats struct {
	// Records, Reports and Flushes count decoded entries.
	Records, Reports, Flushes int
	// LastSeq is the highest sequence number seen.
	LastSeq uint64
	// CleanClose reports a close record was found (the session shut down
	// cleanly rather than crashing).
	CleanClose bool
	// TornBytes counts bytes dropped or skipped recovering damaged or
	// torn records; 0 on an undamaged log.
	TornBytes int64
	// Segments and Bytes describe the on-disk footprint.
	Segments int
	Bytes    int64
}

// Usage is a store-wide footprint summary for metrics.
type Usage struct {
	Sessions, Segments int
	Bytes              int64
}

// Store is a directory of per-session logs.
type Store struct {
	dir  string
	opts Options

	// mu serializes session create/remove against directory scans.
	mu sync.Mutex
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("wal: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Store{dir: dir, opts: opts.withDefaults()}, nil
}

// Dir returns the store root.
func (st *Store) Dir() string { return st.dir }

// sessionDir maps a session ID onto its directory.
func (st *Store) sessionDir(id string) string { return filepath.Join(st.dir, id) }

// Create starts a fresh log for a session, truncating any retained log
// under the same ID (the registry guarantees ID uniqueness among live
// and recovered sessions; a leftover directory is a forgotten one).
func (st *Store) Create(meta Meta) (*Log, error) { return st.CreateWith(meta, Overrides{}) }

// CreateWith is Create with per-log option overrides (a session's WAL
// policy) applied on top of the store defaults.
func (st *Store) CreateWith(meta Meta, over Overrides) (*Log, error) {
	if err := validateMeta(meta); err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	dir := st.sessionDir(meta.ID)
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, meta: meta, opts: st.opts.apply(over), nextSeg: 1}
	if err := l.rotate(); err != nil {
		return nil, err
	}
	return l, nil
}

// AppendTo reopens a retained session log for appending — the resume
// path: a parked (recovered) session coming back live must extend its
// record, never truncate it. A compacted 00000000.wal (authoritative
// when present) is renamed into the ordinary segment sequence so it is
// no longer authoritative over the segments appended after it; then a
// fresh segment opens with the given meta. The caller owns sequence
// continuity: new records must carry sequence numbers past the retained
// head, and the close record already mid-log replays as a flush (the
// boundary the session drained at when it was parked).
func (st *Store) AppendTo(meta Meta, over Overrides) (*Log, error) {
	if err := validateMeta(meta); err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	dir := st.sessionDir(meta.ID)
	matches, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("wal: session %s: no retained log to append to", meta.ID)
	}
	sort.Strings(matches)
	nextSeg := 1
	if filepath.Base(matches[0]) == compactedName {
		// The compacted segment holds the whole session; anything else is
		// a straggler from a crash mid-compaction and already folded in.
		for _, m := range matches[1:] {
			os.Remove(m)
		}
		if err := os.Rename(matches[0], filepath.Join(dir, fmt.Sprintf("%08d.wal", 1))); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		nextSeg = 2
	} else {
		last := strings.TrimSuffix(filepath.Base(matches[len(matches)-1]), ".wal")
		n, err := strconv.Atoi(last)
		if err != nil {
			return nil, fmt.Errorf("wal: session %s: segment %q: %w", meta.ID, last, err)
		}
		nextSeg = n + 1
	}
	l := &Log{dir: dir, meta: meta, opts: st.opts.apply(over), nextSeg: nextSeg}
	if err := l.rotate(); err != nil {
		return nil, err
	}
	return l, nil
}

// validateMeta checks the fields Create/AppendTo encode into the meta
// record.
func validateMeta(meta Meta) error {
	if meta.ID == "" {
		return errors.New("wal: empty session ID")
	}
	if len(meta.Geometry) > 255 {
		return fmt.Errorf("wal: geometry name %d bytes long", len(meta.Geometry))
	}
	return nil
}

// apply folds per-log overrides into a copy of the store options.
func (o Options) apply(over Overrides) Options {
	if over.SyncEvery > 0 {
		o.SyncEvery = over.SyncEvery
	}
	return o
}

// Sessions lists the IDs with retained logs.
func (st *Store) Sessions() ([]string, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Remove deletes a session's log.
func (st *Store) Remove(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return os.RemoveAll(st.sessionDir(id))
}

// Usage walks the store and reports its footprint (metrics scrapes).
func (st *Store) Usage() Usage {
	var u Usage
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return u
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		u.Sessions++
		segs, err := segmentFiles(filepath.Join(st.dir, e.Name()))
		if err != nil {
			continue
		}
		u.Segments += len(segs)
		for _, seg := range segs {
			if fi, err := os.Stat(seg); err == nil {
				u.Bytes += fi.Size()
			}
		}
	}
	return u
}

// Scan reads a session's log without retaining records: its meta and
// summary stats. It never fails on damaged records — they are counted in
// Stats.TornBytes — only on an unreadable directory or a log whose meta
// cannot be recovered from any segment.
func (st *Store) Scan(id string) (Meta, Stats, error) {
	var meta Meta
	var haveMeta bool
	var stats Stats
	err := st.replay(id, 0, func(r Record) error {
		stats.Records++
		switch r.Type {
		case RecordReport:
			stats.Reports++
		case RecordFlush:
			stats.Flushes++
		case RecordClose:
			stats.CleanClose = true
		}
		if r.Seq > stats.LastSeq {
			stats.LastSeq = r.Seq
		}
		return nil
	}, &meta, &haveMeta, &stats)
	if err != nil {
		return Meta{}, Stats{}, err
	}
	if !haveMeta {
		return Meta{}, Stats{}, fmt.Errorf("wal: session %s: no recoverable meta record", id)
	}
	return meta, stats, nil
}

// Replay streams a session's records through fn in order. upTo > 0 stops
// after the record with that sequence number has been delivered — the
// catch-up reader uses it to stop at the live head it snapshotted, which
// also makes reading concurrently-appended logs safe (everything at or
// below a synced head is complete on disk). fn errors abort the replay.
func (st *Store) Replay(id string, upTo uint64, fn func(Record) error) error {
	var meta Meta
	var haveMeta bool
	var stats Stats
	return st.replay(id, upTo, fn, &meta, &haveMeta, &stats)
}

// errStopReplay signals the upTo cutoff internally.
var errStopReplay = errors.New("wal: stop replay")

func (st *Store) replay(id string, upTo uint64, fn func(Record) error, meta *Meta, haveMeta *bool, stats *Stats) error {
	segs, err := segmentFiles(st.sessionDir(id))
	if err != nil {
		return fmt.Errorf("wal: session %s: %w", id, err)
	}
	if len(segs) == 0 {
		return fmt.Errorf("wal: session %s: no segments", id)
	}
	stats.Segments = len(segs)
	for _, seg := range segs {
		if err := readSegment(seg, upTo, fn, meta, haveMeta, stats); err != nil {
			if errors.Is(err, errStopReplay) {
				return nil
			}
			return fmt.Errorf("wal: session %s: %w", id, err)
		}
	}
	return nil
}

// segmentFiles lists a session's segments in replay order. A compacted
// 00000000.wal is authoritative: when present (a clean close, or a crash
// between compaction's rename and its cleanup of the old segments) it
// holds the whole session, so the append segments are ignored.
func segmentFiles(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	if len(matches) > 0 && filepath.Base(matches[0]) == compactedName {
		return matches[:1], nil
	}
	return matches, nil
}

// readSegment decodes one segment file, resync-scanning past damage.
func readSegment(path string, upTo uint64, fn func(Record) error, meta *Meta, haveMeta *bool, stats *Stats) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	stats.Bytes += int64(len(data))
	off := 0
	for off < len(data) {
		payload, frameLen, ok := decodeFrame(data[off:])
		if !ok {
			// Damaged or torn: slide one byte and hunt for the next valid
			// frame. At the tail this consumes the torn record and stops.
			stats.TornBytes++
			off++
			continue
		}
		off += frameLen
		rec, m, err := decodePayload(payload)
		if err != nil {
			// CRC-valid but semantically bad (version skew): count and skip.
			stats.TornBytes += int64(frameLen)
			continue
		}
		if m != nil {
			if !*haveMeta {
				*meta, *haveMeta = *m, true
			}
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
		if upTo > 0 && rec.Seq >= upTo {
			return errStopReplay
		}
	}
	return nil
}

// decodeFrame validates one frame at the head of b, returning its payload
// and total frame length. ok is false when the bytes cannot be a complete,
// CRC-valid frame.
func decodeFrame(b []byte) (payload []byte, frameLen int, ok bool) {
	if len(b) < frameHeader {
		return nil, 0, false
	}
	n := binary.BigEndian.Uint32(b)
	if n == 0 || n > maxPayload || len(b) < frameHeader+int(n) {
		return nil, 0, false
	}
	payload = b[frameHeader : frameHeader+int(n)]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(b[4:]) {
		return nil, 0, false
	}
	return payload, frameHeader + int(n), true
}

// decodePayload decodes a CRC-valid payload into a Record or a Meta.
func decodePayload(p []byte) (Record, *Meta, error) {
	switch p[0] {
	case typeMeta:
		if len(p) < 26 || p[1] != walVersion {
			return Record{}, nil, fmt.Errorf("wal: meta version %d", p[1])
		}
		// p[18] was reserved (always zero) before geometries existed; it
		// now carries the geometry-name length, with the name appended
		// after the ID. Old logs decode to Geometry "".
		geoLen := int(p[18])
		idLen := int(p[25])
		if len(p) != 26+idLen+geoLen {
			return Record{}, nil, fmt.Errorf("wal: meta length %d", len(p))
		}
		return Record{}, &Meta{
			Created:  time.Unix(0, int64(binary.BigEndian.Uint64(p[2:]))),
			Sweep:    time.Duration(binary.BigEndian.Uint64(p[10:])),
			Search:   SearchMeta{Mode: p[19], TopK: p[20], Levels: p[21]},
			ID:       string(p[26 : 26+idLen]),
			Geometry: string(p[26+idLen:]),
		}, nil
	case typeReport:
		if len(p) != reportPayloadLen {
			return Record{}, nil, fmt.Errorf("wal: report length %d", len(p))
		}
		rec := Record{Type: RecordReport, Seq: binary.BigEndian.Uint64(p[1:])}
		rec.Report.Time = time.Duration(binary.BigEndian.Uint64(p[9:]))
		rec.Report.ReaderID = int(p[17])
		rec.Report.AntennaID = int(p[18])
		copy(rec.Report.EPC[:], p[19:31])
		rec.Report.PhaseRad = math.Float64frombits(binary.BigEndian.Uint64(p[31:]))
		rec.Report.PowerDB = math.Float64frombits(binary.BigEndian.Uint64(p[39:]))
		return rec, nil, nil
	case typeFlush, typeClose:
		if len(p) != 9 {
			return Record{}, nil, fmt.Errorf("wal: marker length %d", len(p))
		}
		typ := RecordFlush
		if p[0] == typeClose {
			typ = RecordClose
		}
		return Record{Type: typ, Seq: binary.BigEndian.Uint64(p[1:])}, nil, nil
	default:
		return Record{}, nil, fmt.Errorf("wal: unknown record type 0x%02x", p[0])
	}
}

// reportPayloadLen is the exact report payload size: type + seq + time +
// reader + antenna + EPC + phase + power.
const reportPayloadLen = 1 + 8 + 8 + 1 + 1 + 12 + 8 + 8

// compactedName is the single-segment form of a closed session.
const compactedName = "00000000.wal"

// Log is one session's open, appendable log. It is not safe for
// concurrent use: exactly one goroutine (the session pump) appends.
type Log struct {
	dir  string
	meta Meta
	opts Options

	f        *os.File
	nextSeg  int
	segBytes int64
	segBorn  time.Time
	appends  int // report appends since the last sync
	buf      []byte
	bytes    int64
	closed   bool
}

// rotate closes the active segment (if any) and opens the next, writing
// its opening meta record.
func (l *Log) rotate() error {
	if l.f != nil {
		if err := l.syncClose(); err != nil {
			return err
		}
	}
	path := filepath.Join(l.dir, fmt.Sprintf("%08d.wal", l.nextSeg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f, l.segBytes, l.segBorn = f, 0, time.Now()
	l.nextSeg++
	return l.append(l.encodeMeta(), true)
}

// encodeMeta builds the meta payload.
func (l *Log) encodeMeta() []byte {
	p := l.buf[:0]
	p = append(p, typeMeta, walVersion)
	p = binary.BigEndian.AppendUint64(p, uint64(l.meta.Created.UnixNano()))
	p = binary.BigEndian.AppendUint64(p, uint64(l.meta.Sweep))
	p = append(p, byte(len(l.meta.Geometry)))
	// Three formerly reserved bytes carry the search override (zero = no
	// override, which is also what pre-search logs decode to).
	p = append(p, l.meta.Search.Mode, l.meta.Search.TopK, l.meta.Search.Levels)
	p = append(p, 0, 0, 0) // reserved
	p = append(p, byte(len(l.meta.ID)))
	p = append(p, l.meta.ID...)
	p = append(p, l.meta.Geometry...)
	return p
}

// append frames and writes one payload, maintaining the sync policy.
// sync forces an fsync regardless of the policy.
func (l *Log) append(payload []byte, sync bool) error {
	if l.closed {
		return errors.New("wal: log closed")
	}
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	n := int64(frameHeader + len(payload))
	l.segBytes += n
	l.bytes += n
	if sync {
		return l.Sync()
	}
	l.appends++
	if l.appends >= l.opts.SyncEvery {
		return l.Sync()
	}
	return nil
}

// AppendReport logs one sequenced report, rotating the segment first if
// the active one is over its size or age budget.
func (l *Log) AppendReport(seq uint64, rep rfid.Report) error {
	if l.segBytes >= l.opts.SegmentBytes ||
		(l.opts.SegmentAge > 0 && time.Since(l.segBorn) >= l.opts.SegmentAge) {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	p := l.buf[:0]
	p = append(p, typeReport)
	p = binary.BigEndian.AppendUint64(p, seq)
	p = binary.BigEndian.AppendUint64(p, uint64(rep.Time))
	p = append(p, byte(rep.ReaderID), byte(rep.AntennaID))
	p = append(p, rep.EPC[:]...)
	p = binary.BigEndian.AppendUint64(p, math.Float64bits(rep.PhaseRad))
	p = binary.BigEndian.AppendUint64(p, math.Float64bits(rep.PowerDB))
	err := l.append(p, false)
	l.buf = p[:0]
	return err
}

// AppendFlush logs a pump drain (always synced: a flush is the boundary
// retrace and catch-up snapshot at, so it must be durable and complete
// on disk when the append returns).
func (l *Log) AppendFlush(seq uint64) error { return l.appendMarker(typeFlush, seq) }

// appendClose logs the clean end of the session.
func (l *Log) appendClose(seq uint64) error { return l.appendMarker(typeClose, seq) }

func (l *Log) appendMarker(typ byte, seq uint64) error {
	p := l.buf[:0]
	p = append(p, typ)
	p = binary.BigEndian.AppendUint64(p, seq)
	err := l.append(p, true)
	l.buf = p[:0]
	return err
}

// Sync fsyncs the active segment.
func (l *Log) Sync() error {
	l.appends = 0
	if l.opts.NoSync || l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Bytes reports the total bytes this log has appended.
func (l *Log) Bytes() int64 { return l.bytes }

// Segments reports how many segment files this log has opened over its
// lifetime; an increase between observations means a rotation happened.
func (l *Log) Segments() int { return l.nextSeg }

// syncClose flushes and closes the active segment file.
func (l *Log) syncClose() error {
	if err := l.Sync(); err != nil {
		return err
	}
	err := l.f.Close()
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Close appends a close record carrying seq, syncs, and compacts the
// session to a single segment. Idempotent.
func (l *Log) Close(seq uint64) error {
	if l.closed {
		return nil
	}
	if err := l.appendClose(seq); err != nil {
		return err
	}
	if err := l.syncClose(); err != nil {
		return err
	}
	l.closed = true
	return compact(l.dir)
}

// Abandon closes the active segment without a close record or
// compaction, leaving the log exactly as a crash would (tests and
// shutdown paths that must not mutate the on-disk state).
func (l *Log) Abandon() error {
	if l.closed {
		return nil
	}
	l.closed = true
	return l.syncClose()
}

// compact rewrites a session's segments into the single authoritative
// 00000000.wal: temp file, fsync, rename, then delete the append
// segments. A crash at any point leaves a recoverable session — before
// the rename the temp file is ignored; after it the compacted segment
// wins over any stragglers.
func compact(dir string) error {
	segs, err := segmentFiles(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if len(segs) == 1 && filepath.Base(segs[0]) == compactedName {
		return nil
	}
	tmp := filepath.Join(dir, "compact.tmp")
	out, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	metaWritten := false
	var werr error
	writeFrame := func(payload []byte) {
		if werr != nil {
			return
		}
		var hdr [frameHeader]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		if _, err := out.Write(hdr[:]); err != nil {
			werr = err
			return
		}
		_, werr = out.Write(payload)
	}
	// Re-frame the decoded records: damage is shed here, so a compacted
	// session is always pristine. Only the first recoverable meta record
	// is kept (segments each open with one for self-description).
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			out.Close()
			os.Remove(tmp)
			return fmt.Errorf("wal: %w", err)
		}
		off := 0
		for off < len(data) {
			payload, frameLen, ok := decodeFrame(data[off:])
			if !ok {
				off++
				continue
			}
			off += frameLen
			if payload[0] == typeMeta {
				if !metaWritten {
					writeFrame(payload)
					metaWritten = true
				}
				continue
			}
			writeFrame(payload)
		}
	}
	if werr == nil {
		werr = out.Sync()
	}
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(dir, compactedName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	for _, seg := range segs {
		if filepath.Base(seg) != compactedName {
			os.Remove(seg)
		}
	}
	return nil
}
