package wal

import (
	"encoding/binary"
	"strings"
	"testing"
	"time"
)

func TestMetaGeometryRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{
		ID:       "geo-session",
		Created:  time.Unix(0, 1234567890),
		Sweep:    50 * time.Millisecond,
		Geometry: "multiroom",
	}
	l, err := st.Create(meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(0); err != nil {
		t.Fatal(err)
	}
	got, _, err := st.Scan(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Geometry != "multiroom" || got.ID != meta.ID || got.Sweep != meta.Sweep {
		t.Fatalf("scanned meta %+v, want %+v", got, meta)
	}
}

func TestMetaGeometryTooLong(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Create(Meta{ID: "x", Geometry: strings.Repeat("g", 256)})
	if err == nil {
		t.Fatal("256-byte geometry name accepted")
	}
}

// Logs written before the geometry field existed carry a zero reserved
// byte at p[18]; they must keep decoding, with Geometry "".
func TestMetaDecodeLegacyPayload(t *testing.T) {
	id := "legacy"
	p := []byte{typeMeta, walVersion}
	p = binary.BigEndian.AppendUint64(p, 42)
	p = binary.BigEndian.AppendUint64(p, uint64(25*time.Millisecond))
	p = append(p, 0, 0, 0, 0, 0, 0, 0) // pre-geometry reserved block
	p = append(p, byte(len(id)))
	p = append(p, id...)
	_, meta, err := decodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil || meta.ID != id || meta.Geometry != "" {
		t.Fatalf("legacy meta decoded to %+v", meta)
	}
	if meta.Sweep != 25*time.Millisecond {
		t.Fatalf("legacy sweep %v", meta.Sweep)
	}
}
