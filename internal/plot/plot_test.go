package plot

import (
	"strings"
	"testing"

	"rfidraw/internal/geom"
)

func TestHeatmapShape(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 4, 5}
	out, err := Heatmap(vals, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 3 {
		t.Fatalf("shape wrong:\n%s", out)
	}
	// Highest value (5, at iz=1, ix=2) renders in the TOP row, last col.
	if lines[0][2] != '@' {
		t.Fatalf("max cell = %q", lines[0][2])
	}
	if lines[1][0] != ' ' {
		t.Fatalf("min cell = %q", lines[1][0])
	}
}

func TestHeatmapErrorsAndFlat(t *testing.T) {
	if _, err := Heatmap([]float64{1, 2}, 3, 2); err == nil {
		t.Fatal("shape mismatch should error")
	}
	if _, err := Heatmap(nil, 0, 0); err == nil {
		t.Fatal("empty should error")
	}
	// A constant field renders without dividing by zero.
	out, err := Heatmap([]float64{7, 7, 7, 7}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestTrajectories(t *testing.T) {
	a := []geom.Vec2{{X: 0, Z: 0}, {X: 1, Z: 1}}
	b := []geom.Vec2{{X: 0, Z: 1}, {X: 1, Z: 0}}
	out, err := Trajectories(21, 11, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Fatalf("markers missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 {
		t.Fatalf("height = %d", len(lines))
	}
	if _, err := Trajectories(1, 1, a); err == nil {
		t.Fatal("tiny raster should error")
	}
	if _, err := Trajectories(10, 10); err == nil {
		t.Fatal("no series should error")
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	err := CSV(&sb, []string{"a", "b"}, [][]float64{{1, 2}, {3.5, -4}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3.5,-4\n"
	if sb.String() != want {
		t.Fatalf("csv = %q", sb.String())
	}
	if err := CSV(&sb, []string{"a"}, [][]float64{{1, 2}}); err == nil {
		t.Fatal("ragged row should error")
	}
}

func TestCSVPoints(t *testing.T) {
	var sb strings.Builder
	if err := CSVPoints(&sb, []geom.Vec2{{X: 1, Z: 2}}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "x_m,z_m\n1,2\n") {
		t.Fatalf("csv = %q", sb.String())
	}
}
