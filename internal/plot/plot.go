// Package plot renders experiment outputs as ASCII art and CSV files. The
// paper's figures are regenerated as data series (CSV) plus quick-look
// ASCII heatmaps/trajectory plots, since the repository is deliberately
// dependency-free.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"rfidraw/internal/geom"
)

// shades are ASCII intensity levels from empty to full.
var shades = []byte(" .:-=+*#%@")

// Heatmap renders a row-major grid of values (nx × nz, x fastest, z upward)
// as ASCII art, normalising values to the [min, max] range found.
func Heatmap(values []float64, nx, nz int) (string, error) {
	if nx <= 0 || nz <= 0 || nx*nz != len(values) {
		return "", fmt.Errorf("plot: heatmap shape %d×%d does not match %d values", nx, nz, len(values))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	// Render top row (max z) first.
	for iz := nz - 1; iz >= 0; iz-- {
		for ix := 0; ix < nx; ix++ {
			v := values[iz*nx+ix]
			level := 0
			if span > 0 {
				level = int((v - lo) / span * float64(len(shades)-1))
			}
			if level < 0 {
				level = 0
			}
			if level >= len(shades) {
				level = len(shades) - 1
			}
			b.WriteByte(shades[level])
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Trajectories renders one or more polylines into a character raster of
// the given size, each drawn with its own marker rune. Bounds are the
// union of all polylines plus a margin.
func Trajectories(width, height int, series ...[]geom.Vec2) (string, error) {
	if width <= 2 || height <= 2 {
		return "", fmt.Errorf("plot: raster %d×%d too small", width, height)
	}
	var all []geom.Vec2
	for _, s := range series {
		all = append(all, s...)
	}
	box, ok := geom.Bounds(all)
	if !ok {
		return "", fmt.Errorf("plot: no points to draw")
	}
	box = box.Expand(math.Max(box.Width(), box.Height())*0.05 + 1e-9)
	raster := make([][]byte, height)
	for i := range raster {
		raster[i] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte("*o+x#&%$")
	for si, s := range series {
		m := markers[si%len(markers)]
		for _, p := range s {
			ix := int((p.X - box.Min.X) / box.Width() * float64(width-1))
			iz := int((p.Z - box.Min.Z) / box.Height() * float64(height-1))
			if ix < 0 || ix >= width || iz < 0 || iz >= height {
				continue
			}
			raster[height-1-iz][ix] = m
		}
	}
	var b strings.Builder
	for _, row := range raster {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// CSV writes rows of float columns with a header line.
func CSV(w io.Writer, headers []string, rows [][]float64) error {
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(headers) {
			return fmt.Errorf("plot: row width %d != header width %d", len(row), len(headers))
		}
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = fmt.Sprintf("%.6g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// CSVPoints writes a polyline as x,z CSV rows.
func CSVPoints(w io.Writer, pts []geom.Vec2) error {
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = []float64{p.X, p.Z}
	}
	return CSV(w, []string{"x_m", "z_m"}, rows)
}
