package readerwire

import (
	"context"
	"net"
	"testing"
	"time"

	"rfidraw/internal/rfid"
)

// TestServerPacing verifies the paced replay: at pace p, a stream spanning
// duration D takes ≈D/p of wall time to deliver.
func TestServerPacing(t *testing.T) {
	reports := make([]rfid.Report, 20)
	for i := range reports {
		reports[i] = rfid.Report{Time: time.Duration(i) * 10 * time.Millisecond, AntennaID: 1}
	}
	src := &InventorySource{
		Announce:   Hello{Proto: ProtoVersion, AntennaCount: 4, SweepInterval: 25 * time.Millisecond},
		AllReports: reports,
	}
	// 200 ms of data at pace 2 → ≥100 ms wall time.
	srv, err := NewServer("127.0.0.1:0", src, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go srv.Serve(ctx, 200*time.Millisecond)
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	_, got, err := Collect(conn)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(got) != len(reports) {
		t.Fatalf("got %d reports", len(got))
	}
	if elapsed < 80*time.Millisecond {
		t.Fatalf("paced stream finished in %v, want ≥~100 ms", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("paced stream took %v, far too slow", elapsed)
	}
}

// TestServerContextCancellation confirms Serve exits when cancelled.
func TestServerContextCancellation(t *testing.T) {
	src := &InventorySource{Announce: Hello{Proto: ProtoVersion}}
	srv, err := NewServer("127.0.0.1:0", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, time.Second) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cancelled serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not exit on cancellation")
	}
}
