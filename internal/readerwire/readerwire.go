// Package readerwire defines the binary TCP protocol between RFID readers
// and the tracking host, replacing the vendor API of the paper's prototype
// (the ThingMagic readers stream per-reply phase reports to a MATLAB
// pipeline; here simulated readers stream to a Go pipeline).
//
// # Wire format
//
// Every message is length-prefixed:
//
//	uint32  payload length (big endian, excluding itself)
//	uint8   message type
//	...     type-specific payload
//
// Message types:
//
//	0x01 Hello        reader announces itself: readerID, antenna count,
//	                  sweep interval
//	0x02 PhaseReport  one tag reply: time, readerID, antennaID, EPC,
//	                  phase, power
//	0x03 Bye          clean shutdown
//
// Integers are big endian; floats are IEEE 754 bits; durations are
// nanoseconds. The format is versioned by the Hello's proto field.
package readerwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"rfidraw/internal/rfid"
)

// ProtoVersion identifies this wire format revision.
const ProtoVersion = 1

// MaxPayload bounds a message payload; anything larger is rejected as
// corrupt framing.
const MaxPayload = 1 << 16

// Message type bytes.
const (
	TypeHello       = 0x01
	TypePhaseReport = 0x02
	TypeBye         = 0x03
)

// Hello is the stream-opening announcement.
type Hello struct {
	Proto         uint8
	ReaderID      uint8
	AntennaCount  uint8
	SweepInterval time.Duration
}

// Bye is the clean end-of-stream marker.
type Bye struct{}

// Message is a decoded wire message: exactly one of the fields is set.
type Message struct {
	Hello  *Hello
	Report *rfid.Report
	Bye    *Bye
}

// Writer encodes messages onto a stream.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter wraps an io.Writer (normally a net.Conn).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), buf: make([]byte, 0, 64)}
}

func (w *Writer) frame(payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(payload)
	return err
}

// WriteHello sends the stream announcement.
func (w *Writer) WriteHello(h Hello) error {
	b := w.buf[:0]
	b = append(b, TypeHello, h.Proto, h.ReaderID, h.AntennaCount)
	b = binary.BigEndian.AppendUint64(b, uint64(h.SweepInterval))
	if err := w.frame(b); err != nil {
		return err
	}
	return w.w.Flush()
}

// WriteReport sends one phase report. Reports are buffered; call Flush to
// push them to the network.
func (w *Writer) WriteReport(r rfid.Report) error {
	if r.ReaderID < 0 || r.ReaderID > 255 || r.AntennaID < 0 || r.AntennaID > 255 {
		return fmt.Errorf("readerwire: reader/antenna id out of byte range: %d/%d", r.ReaderID, r.AntennaID)
	}
	b := w.buf[:0]
	b = append(b, TypePhaseReport, byte(r.ReaderID), byte(r.AntennaID))
	b = binary.BigEndian.AppendUint64(b, uint64(r.Time))
	b = append(b, r.EPC[:]...)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.PhaseRad))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.PowerDB))
	return w.frame(b)
}

// WriteBye sends the end-of-stream marker and flushes.
func (w *Writer) WriteBye() error {
	if err := w.frame([]byte{TypeBye}); err != nil {
		return err
	}
	return w.w.Flush()
}

// Flush pushes buffered reports to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes messages from a stream.
type Reader struct {
	r *bufio.Reader
	// resync makes Next scan forward for the next valid frame instead of
	// failing the stream on a malformed one (see NewResyncReader).
	resync  bool
	resyncs int
}

// NewReader wraps an io.Reader (normally a net.Conn). The reader is
// strict: any malformed frame fails the stream with ErrBadFrame.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, MaxPayload+8)}
}

// NewResyncReader wraps an io.Reader like NewReader but makes Next
// self-healing: when a frame is malformed — a corrupted length, an unknown
// type, an out-of-range payload, a short read mid-frame — the reader
// slides forward one byte at a time until it locks onto the next valid
// frame header instead of erroring out the whole stream. A partial frame
// at the very end of the stream (a mid-frame disconnect) reads as a clean
// io.EOF. Use it on the serving side, where a reconnecting reader must not
// lose its whole session to one damaged frame.
func NewResyncReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, MaxPayload+8), resync: true}
}

// Resyncs reports how many bytes Next has skipped hunting for valid
// frames; zero on an undamaged stream.
func (r *Reader) Resyncs() int { return r.resyncs }

// ErrBadFrame reports malformed framing or payloads.
var ErrBadFrame = errors.New("readerwire: bad frame")

// Next reads the next message. It returns io.EOF at a clean end of stream
// (after Bye or when the connection closes between frames). In strict mode
// malformed frames return ErrBadFrame; in resync mode (NewResyncReader)
// they are skipped.
func (r *Reader) Next() (Message, error) {
	for {
		msg, err := r.next()
		if err == nil || !r.resync || !errors.Is(err, ErrBadFrame) {
			return msg, err
		}
		// Malformed frame: slide one byte and hunt for the next header.
		if _, derr := r.r.Discard(1); derr != nil {
			return Message{}, io.EOF
		}
		r.resyncs++
	}
}

// NextBuffered decodes the next message only when a complete frame is
// already sitting in the reader's internal buffer: it never blocks on
// the underlying stream. ok is false when the buffer holds no complete
// frame (the caller should fall back to the blocking Next, which fills
// the buffer). Burst-mode ingest uses it to drain every report a single
// socket read delivered before paying the next read syscall.
//
// Error behavior matches Next: in resync mode malformed buffered bytes
// are skipped (counted by Resyncs); in strict mode they return
// ErrBadFrame.
func (r *Reader) NextBuffered() (Message, bool, error) {
	for {
		buffered := r.r.Buffered()
		if buffered < 4 {
			return Message{}, false, nil
		}
		hdr, _ := r.r.Peek(4) // cannot fail: 4 bytes are buffered
		n := binary.BigEndian.Uint32(hdr)
		if n == 0 || n > MaxPayload {
			if r.resync {
				r.r.Discard(1)
				r.resyncs++
				continue
			}
			return Message{}, false, fmt.Errorf("%w: payload length %d", ErrBadFrame, n)
		}
		if buffered < 4+int(n) {
			// The frame's tail has not arrived yet; let the caller block
			// on Next for it.
			return Message{}, false, nil
		}
		frame, _ := r.r.Peek(4 + int(n)) // cannot fail: fully buffered
		msg, err := decodePayload(frame[4:])
		if err != nil {
			if r.resync && errors.Is(err, ErrBadFrame) {
				r.r.Discard(1)
				r.resyncs++
				continue
			}
			return Message{}, false, err
		}
		if _, err := r.r.Discard(4 + int(n)); err != nil {
			return Message{}, false, err
		}
		return msg, true, nil
	}
}

// next decodes one message without consuming any bytes until the whole
// frame has validated, so resync mode can rescan from the next byte.
func (r *Reader) next() (Message, error) {
	hdr, err := r.r.Peek(4)
	if err != nil {
		if len(hdr) == 0 {
			return Message{}, err // clean EOF between frames, or IO error
		}
		if errors.Is(err, io.EOF) {
			if r.resync {
				// 1–3 trailing bytes: an unfinishable partial header.
				return Message{}, io.EOF
			}
			return Message{}, fmt.Errorf("%w: truncated header: %v", ErrBadFrame, io.ErrUnexpectedEOF)
		}
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 || n > MaxPayload {
		return Message{}, fmt.Errorf("%w: payload length %d", ErrBadFrame, n)
	}
	frame, err := r.r.Peek(4 + int(n))
	if err != nil {
		if errors.Is(err, io.EOF) {
			if r.resync && !plausibleFrame(frame) {
				// The "frame" this length implies runs past the end of
				// the stream and does not even start like a real
				// message: treat it as corruption and keep scanning.
				return Message{}, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, io.ErrUnexpectedEOF)
			}
			if r.resync {
				// A truncated but plausible final frame: the sender
				// disconnected mid-frame. End of stream.
				return Message{}, io.EOF
			}
			return Message{}, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, io.ErrUnexpectedEOF)
		}
		return Message{}, err
	}
	msg, err := decodePayload(frame[4:])
	if err != nil {
		return Message{}, err
	}
	if _, err := r.r.Discard(4 + int(n)); err != nil {
		return Message{}, err
	}
	return msg, nil
}

// payloadLen is the single source of truth for each message type's exact
// payload length (type byte included); ok is false for unknown types.
// decodePayload and plausibleFrame must agree on these, so they both
// consult this table.
func payloadLen(typ byte) (n int, ok bool) {
	switch typ {
	case TypeHello:
		return 1 + 3 + 8, true
	case TypePhaseReport:
		return 1 + 2 + 8 + 12 + 8 + 8, true
	case TypeBye:
		return 1, true
	default:
		return 0, false
	}
}

// plausibleFrame reports whether a partial frame (header plus however much
// payload arrived) starts like a genuine message: a known type byte and a
// length consistent with that type.
func plausibleFrame(partial []byte) bool {
	if len(partial) < 5 {
		return len(partial) == 4 // length alone: cannot disprove
	}
	want, ok := payloadLen(partial[4])
	return ok && binary.BigEndian.Uint32(partial) == uint32(want)
}

// decodePayload validates and decodes one frame payload.
func decodePayload(payload []byte) (Message, error) {
	if want, ok := payloadLen(payload[0]); ok && len(payload) != want {
		return Message{}, fmt.Errorf("%w: type 0x%02x length %d, want %d", ErrBadFrame, payload[0], len(payload), want)
	}
	switch payload[0] {
	case TypeHello:
		h := &Hello{
			Proto:         payload[1],
			ReaderID:      payload[2],
			AntennaCount:  payload[3],
			SweepInterval: time.Duration(binary.BigEndian.Uint64(payload[4:])),
		}
		if h.Proto != ProtoVersion {
			return Message{}, fmt.Errorf("%w: protocol version %d, want %d", ErrBadFrame, h.Proto, ProtoVersion)
		}
		return Message{Hello: h}, nil
	case TypePhaseReport:
		rep := &rfid.Report{
			ReaderID:  int(payload[1]),
			AntennaID: int(payload[2]),
			Time:      time.Duration(binary.BigEndian.Uint64(payload[3:11])),
		}
		copy(rep.EPC[:], payload[11:23])
		rep.PhaseRad = math.Float64frombits(binary.BigEndian.Uint64(payload[23:31]))
		rep.PowerDB = math.Float64frombits(binary.BigEndian.Uint64(payload[31:39]))
		if math.IsNaN(rep.PhaseRad) || rep.PhaseRad < 0 || rep.PhaseRad >= 2*math.Pi+1e-9 {
			return Message{}, fmt.Errorf("%w: phase %v out of range", ErrBadFrame, rep.PhaseRad)
		}
		return Message{Report: rep}, nil
	case TypeBye:
		return Message{Bye: &Bye{}}, nil
	default:
		return Message{}, fmt.Errorf("%w: unknown type 0x%02x", ErrBadFrame, payload[0])
	}
}
