// Package readerwire defines the binary TCP protocol between RFID readers
// and the tracking host, replacing the vendor API of the paper's prototype
// (the ThingMagic readers stream per-reply phase reports to a MATLAB
// pipeline; here simulated readers stream to a Go pipeline).
//
// # Wire format
//
// Every message is length-prefixed:
//
//	uint32  payload length (big endian, excluding itself)
//	uint8   message type
//	...     type-specific payload
//
// Message types:
//
//	0x01 Hello        reader announces itself: readerID, antenna count,
//	                  sweep interval
//	0x02 PhaseReport  one tag reply: time, readerID, antennaID, EPC,
//	                  phase, power
//	0x03 Bye          clean shutdown
//
// Integers are big endian; floats are IEEE 754 bits; durations are
// nanoseconds. The format is versioned by the Hello's proto field.
package readerwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"rfidraw/internal/rfid"
)

// ProtoVersion identifies this wire format revision.
const ProtoVersion = 1

// MaxPayload bounds a message payload; anything larger is rejected as
// corrupt framing.
const MaxPayload = 1 << 16

// Message type bytes.
const (
	TypeHello       = 0x01
	TypePhaseReport = 0x02
	TypeBye         = 0x03
)

// Hello is the stream-opening announcement.
type Hello struct {
	Proto         uint8
	ReaderID      uint8
	AntennaCount  uint8
	SweepInterval time.Duration
}

// Bye is the clean end-of-stream marker.
type Bye struct{}

// Message is a decoded wire message: exactly one of the fields is set.
type Message struct {
	Hello  *Hello
	Report *rfid.Report
	Bye    *Bye
}

// Writer encodes messages onto a stream.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter wraps an io.Writer (normally a net.Conn).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), buf: make([]byte, 0, 64)}
}

func (w *Writer) frame(payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(payload)
	return err
}

// WriteHello sends the stream announcement.
func (w *Writer) WriteHello(h Hello) error {
	b := w.buf[:0]
	b = append(b, TypeHello, h.Proto, h.ReaderID, h.AntennaCount)
	b = binary.BigEndian.AppendUint64(b, uint64(h.SweepInterval))
	if err := w.frame(b); err != nil {
		return err
	}
	return w.w.Flush()
}

// WriteReport sends one phase report. Reports are buffered; call Flush to
// push them to the network.
func (w *Writer) WriteReport(r rfid.Report) error {
	if r.ReaderID < 0 || r.ReaderID > 255 || r.AntennaID < 0 || r.AntennaID > 255 {
		return fmt.Errorf("readerwire: reader/antenna id out of byte range: %d/%d", r.ReaderID, r.AntennaID)
	}
	b := w.buf[:0]
	b = append(b, TypePhaseReport, byte(r.ReaderID), byte(r.AntennaID))
	b = binary.BigEndian.AppendUint64(b, uint64(r.Time))
	b = append(b, r.EPC[:]...)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.PhaseRad))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.PowerDB))
	return w.frame(b)
}

// WriteBye sends the end-of-stream marker and flushes.
func (w *Writer) WriteBye() error {
	if err := w.frame([]byte{TypeBye}); err != nil {
		return err
	}
	return w.w.Flush()
}

// Flush pushes buffered reports to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes messages from a stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader wraps an io.Reader (normally a net.Conn).
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ErrBadFrame reports malformed framing or payloads.
var ErrBadFrame = errors.New("readerwire: bad frame")

// Next reads the next message. It returns io.EOF at a clean end of stream
// (after Bye or when the connection closes between frames).
func (r *Reader) Next() (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Message{}, fmt.Errorf("%w: truncated header: %v", ErrBadFrame, err)
		}
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxPayload {
		return Message{}, fmt.Errorf("%w: payload length %d", ErrBadFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return Message{}, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	switch payload[0] {
	case TypeHello:
		if len(payload) != 1+3+8 {
			return Message{}, fmt.Errorf("%w: hello length %d", ErrBadFrame, len(payload))
		}
		h := &Hello{
			Proto:         payload[1],
			ReaderID:      payload[2],
			AntennaCount:  payload[3],
			SweepInterval: time.Duration(binary.BigEndian.Uint64(payload[4:])),
		}
		if h.Proto != ProtoVersion {
			return Message{}, fmt.Errorf("%w: protocol version %d, want %d", ErrBadFrame, h.Proto, ProtoVersion)
		}
		return Message{Hello: h}, nil
	case TypePhaseReport:
		if len(payload) != 1+2+8+12+8+8 {
			return Message{}, fmt.Errorf("%w: report length %d", ErrBadFrame, len(payload))
		}
		rep := &rfid.Report{
			ReaderID:  int(payload[1]),
			AntennaID: int(payload[2]),
			Time:      time.Duration(binary.BigEndian.Uint64(payload[3:11])),
		}
		copy(rep.EPC[:], payload[11:23])
		rep.PhaseRad = math.Float64frombits(binary.BigEndian.Uint64(payload[23:31]))
		rep.PowerDB = math.Float64frombits(binary.BigEndian.Uint64(payload[31:39]))
		if math.IsNaN(rep.PhaseRad) || rep.PhaseRad < 0 || rep.PhaseRad >= 2*math.Pi+1e-9 {
			return Message{}, fmt.Errorf("%w: phase %v out of range", ErrBadFrame, rep.PhaseRad)
		}
		return Message{Report: rep}, nil
	case TypeBye:
		if len(payload) != 1 {
			return Message{}, fmt.Errorf("%w: bye length %d", ErrBadFrame, len(payload))
		}
		return Message{Bye: &Bye{}}, nil
	default:
		return Message{}, fmt.Errorf("%w: unknown type 0x%02x", ErrBadFrame, payload[0])
	}
}
