package readerwire

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"

	"rfidraw/internal/rfid"
)

func sampleReport(rng *rand.Rand, t time.Duration) rfid.Report {
	return rfid.Report{
		Time:      t,
		ReaderID:  rng.Intn(2),
		AntennaID: 1 + rng.Intn(8),
		EPC:       rfid.RandomEPC(rng),
		PhaseRad:  rng.Float64() * 2 * math.Pi,
		PowerDB:   -40 + rng.Float64()*30,
	}
}

func TestRoundTripMessages(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	hello := Hello{Proto: ProtoVersion, ReaderID: 1, AntennaCount: 4, SweepInterval: 25 * time.Millisecond}
	if err := w.WriteHello(hello); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	reports := make([]rfid.Report, 50)
	for i := range reports {
		reports[i] = sampleReport(rng, time.Duration(i)*time.Millisecond)
		if err := w.WriteReport(reports[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteBye(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	msg, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Hello == nil || *msg.Hello != hello {
		t.Fatalf("hello = %+v", msg.Hello)
	}
	for i := range reports {
		msg, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Report == nil {
			t.Fatalf("message %d not a report", i)
		}
		if *msg.Report != reports[i] {
			t.Fatalf("report %d mismatch:\n got %+v\nwant %+v", i, *msg.Report, reports[i])
		}
	}
	msg, err = r.Next()
	if err != nil || msg.Bye == nil {
		t.Fatalf("expected bye, got %+v err %v", msg, err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after bye want EOF, got %v", err)
	}
}

func TestWriterRejectsOutOfRangeIDs(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.WriteReport(rfid.Report{ReaderID: 300}); err == nil {
		t.Fatal("oversized reader ID should error")
	}
	if err := w.WriteReport(rfid.Report{AntennaID: -1}); err == nil {
		t.Fatal("negative antenna ID should error")
	}
}

func TestReaderRejectsCorruptFrames(t *testing.T) {
	cases := map[string][]byte{
		"zero length":  {0, 0, 0, 0},
		"huge length":  {0xff, 0xff, 0xff, 0xff},
		"unknown type": {0, 0, 0, 1, 0x7f},
		"short hello":  {0, 0, 0, 2, TypeHello, 1},
		"short report": {0, 0, 0, 3, TypePhaseReport, 0, 1},
		"long bye":     {0, 0, 0, 2, TypeBye, 0},
		"trunc header": {0, 0},
		"wrong proto": func() []byte {
			var buf bytes.Buffer
			w := NewWriter(&buf)
			if err := w.WriteHello(Hello{Proto: 99}); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}(),
	}
	for name, raw := range cases {
		r := NewReader(bytes.NewReader(raw))
		if _, err := r.Next(); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: want ErrBadFrame, got %v", name, err)
		}
	}
}

func TestReaderRejectsBadPhase(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rng := rand.New(rand.NewSource(2))
	rep := sampleReport(rng, 0)
	rep.PhaseRad = 17 // out of [0, 2π)
	if err := w.WriteReport(rep); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame, got %v", err)
	}
}

func TestServerStreamsToClient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	reports := make([]rfid.Report, 200)
	for i := range reports {
		reports[i] = sampleReport(rng, time.Duration(i)*2*time.Millisecond)
	}
	src := &InventorySource{
		Announce:   Hello{Proto: ProtoVersion, ReaderID: 0, AntennaCount: 4, SweepInterval: 25 * time.Millisecond},
		AllReports: reports,
	}
	srv, err := NewServer("127.0.0.1:0", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go srv.Serve(ctx, 400*time.Millisecond)
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello, got, err := Collect(conn)
	if err != nil {
		t.Fatal(err)
	}
	if hello != src.Announce {
		t.Fatalf("hello = %+v", hello)
	}
	if len(got) != len(reports) {
		t.Fatalf("got %d reports, want %d", len(got), len(reports))
	}
	for i := range got {
		if got[i] != reports[i] {
			t.Fatalf("report %d mismatch", i)
		}
	}
}

func TestServerMultipleClients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	reports := make([]rfid.Report, 50)
	for i := range reports {
		reports[i] = sampleReport(rng, time.Duration(i)*time.Millisecond)
	}
	src := &InventorySource{
		Announce:   Hello{Proto: ProtoVersion, ReaderID: 1, AntennaCount: 4, SweepInterval: 25 * time.Millisecond},
		AllReports: reports,
	}
	srv, err := NewServer("127.0.0.1:0", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go srv.Serve(ctx, 100*time.Millisecond)
	defer srv.Close()

	results := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func() {
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				results <- -1
				return
			}
			defer conn.Close()
			_, got, err := Collect(conn)
			if err != nil {
				results <- -1
				return
			}
			results <- len(got)
		}()
	}
	for i := 0; i < 3; i++ {
		if n := <-results; n != len(reports) {
			t.Fatalf("client %d got %d reports", i, n)
		}
	}
}

func TestInventorySourceWindow(t *testing.T) {
	src := &InventorySource{AllReports: []rfid.Report{
		{Time: 0}, {Time: 10 * time.Millisecond}, {Time: 20 * time.Millisecond},
	}}
	got := src.Reports(5*time.Millisecond, 20*time.Millisecond)
	if len(got) != 1 || got[0].Time != 10*time.Millisecond {
		t.Fatalf("window = %+v", got)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", nil, 0); err == nil {
		t.Fatal("nil source should error")
	}
	if _, err := NewServer("500.0.0.1:x", &InventorySource{}, 0); err == nil {
		t.Fatal("bad address should error")
	}
}

// Property: any report with in-range fields survives a round trip.
func TestQuickReportRoundTrip(t *testing.T) {
	f := func(readerID, antennaID uint8, ns int64, epc [12]byte, phaseFrac float64, power float64) bool {
		if math.IsNaN(phaseFrac) || math.IsInf(phaseFrac, 0) || math.IsNaN(power) {
			return true
		}
		rep := rfid.Report{
			Time:      time.Duration(ns & math.MaxInt64),
			ReaderID:  int(readerID),
			AntennaID: int(antennaID),
			EPC:       rfid.EPC(epc),
			PhaseRad:  math.Mod(math.Abs(phaseFrac), 2*math.Pi),
			PowerDB:   power,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteReport(rep); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		msg, err := NewReader(&buf).Next()
		if err != nil || msg.Report == nil {
			return false
		}
		return *msg.Report == rep
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
