package readerwire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rfidraw/internal/rfid"
)

// ReportSource yields reports to stream; the simulated reader daemon
// implements it by running an inventory.
type ReportSource interface {
	// Reports returns the reports for the given window, in time order.
	Reports(from, to time.Duration) []rfid.Report
	// Hello describes the stream.
	Hello() Hello
}

// Server streams a ReportSource to every TCP client in near-real time: it
// replays the source's reports paced by their timestamps.
type Server struct {
	src  ReportSource
	ln   net.Listener
	pace float64 // time acceleration factor; 0 = as fast as possible

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and serves src. pace is
// the replay speed multiplier: 1 streams in real time, 0 streams without
// pacing (useful in tests).
func NewServer(addr string, src ReportSource, pace float64) (*Server, error) {
	if src == nil {
		return nil, fmt.Errorf("readerwire: nil source")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("readerwire: %w", err)
	}
	return &Server{src: src, ln: ln, pace: pace, conns: map[net.Conn]struct{}{}}, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts clients until the context is cancelled or the listener is
// closed, streaming the window [0, dur] of the source to each client.
func (s *Server) Serve(ctx context.Context, dur time.Duration) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	}()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			// Streaming errors mean the client went away; nothing to do.
			_ = s.stream(ctx, conn, dur)
		}()
	}
}

// Close shuts the listener down.
func (s *Server) Close() error { return s.ln.Close() }

// stream writes the source's reports to one client, paced.
func (s *Server) stream(ctx context.Context, conn net.Conn, dur time.Duration) error {
	w := NewWriter(conn)
	if err := w.WriteHello(s.src.Hello()); err != nil {
		return err
	}
	const chunk = 100 * time.Millisecond
	start := time.Now()
	for from := time.Duration(0); from < dur; from += chunk {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		to := from + chunk
		if to > dur {
			to = dur
		}
		for _, rep := range s.src.Reports(from, to) {
			if err := w.WriteReport(rep); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if s.pace > 0 {
			target := time.Duration(float64(to) / s.pace)
			if sleep := target - time.Since(start); sleep > 0 {
				select {
				case <-time.After(sleep):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
	}
	return w.WriteBye()
}

// InventorySource adapts a pre-computed report slice to ReportSource.
type InventorySource struct {
	Announce   Hello
	AllReports []rfid.Report
}

// Hello implements ReportSource.
func (s *InventorySource) Hello() Hello { return s.Announce }

// Reports implements ReportSource with a linear scan (report counts per
// word are small; an index would be overkill).
func (s *InventorySource) Reports(from, to time.Duration) []rfid.Report {
	var out []rfid.Report
	for _, r := range s.AllReports {
		if r.Time >= from && r.Time < to {
			out = append(out, r)
		}
	}
	return out
}

// Collect reads a full stream from conn into a report slice, validating
// the Hello handshake. It reads through a resync reader, so a damaged or
// truncated stream yields every report that survived intact: corrupted
// frames are skipped, a repeated Hello (a reader re-announcing after
// reconnect) is ignored, and a connection that drops mid-frame without a
// Bye ends the collection cleanly instead of erroring it out.
func Collect(conn net.Conn) (Hello, []rfid.Report, error) {
	r := NewResyncReader(conn)
	msg, err := r.Next()
	if err != nil {
		return Hello{}, nil, err
	}
	if msg.Hello == nil {
		return Hello{}, nil, fmt.Errorf("readerwire: stream must open with Hello")
	}
	hello := *msg.Hello
	var reports []rfid.Report
	for {
		msg, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return hello, reports, nil
			}
			return hello, reports, err
		}
		switch {
		case msg.Report != nil:
			reports = append(reports, *msg.Report)
		case msg.Bye != nil:
			return hello, reports, nil
		}
	}
}
