package readerwire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"rfidraw/internal/rfid"
)

// encodeStream renders a Hello, the given reports and an optional Bye into
// raw wire bytes.
func encodeStream(t *testing.T, reports []rfid.Report, bye bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHello(Hello{Proto: ProtoVersion, ReaderID: 1, AntennaCount: 4, SweepInterval: 25 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if err := w.WriteReport(r); err != nil {
			t.Fatal(err)
		}
	}
	if bye {
		if err := w.WriteBye(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testReports(n int) []rfid.Report {
	out := make([]rfid.Report, n)
	for i := range out {
		out[i] = rfid.Report{
			Time:      time.Duration(i) * 10 * time.Millisecond,
			ReaderID:  1,
			AntennaID: 1 + i%4,
			PhaseRad:  math.Mod(0.1*float64(i), 2*math.Pi),
		}
		out[i].EPC[0] = byte(i)
	}
	return out
}

// readAll drains a reader, returning the decoded reports.
func readAll(t *testing.T, r *Reader) []rfid.Report {
	t.Helper()
	var out []rfid.Report
	for {
		msg, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if msg.Report != nil {
			out = append(out, *msg.Report)
		}
	}
}

// TestResyncTruncatedStream is the regression test for mid-frame
// disconnects: a stream cut off partway through a report must deliver
// every complete report and then end cleanly, not error out.
func TestResyncTruncatedStream(t *testing.T) {
	reports := testReports(8)
	raw := encodeStream(t, reports, true)
	// Cut mid-way through the final report's frame (before the Bye).
	byeLen := 4 + 1
	cut := len(raw) - byeLen - 17 // 17 bytes into the last report frame
	r := NewResyncReader(bytes.NewReader(raw[:cut]))
	msg, err := r.Next()
	if err != nil || msg.Hello == nil {
		t.Fatalf("want Hello, got %+v, %v", msg, err)
	}
	got := readAll(t, r)
	if len(got) != len(reports)-1 {
		t.Fatalf("got %d reports from truncated stream, want %d", len(got), len(reports)-1)
	}
	for i, rep := range got {
		if rep.Time != reports[i].Time || rep.AntennaID != reports[i].AntennaID {
			t.Fatalf("report %d mismatch: got %+v want %+v", i, rep, reports[i])
		}
	}
}

// TestResyncSkipsCorruptedFrame verifies the reader re-locks onto the next
// valid frame header after a burst of garbage mid-stream.
func TestResyncSkipsCorruptedFrame(t *testing.T) {
	reports := testReports(6)
	head := encodeStream(t, reports[:3], false)
	tailOnly := encodeStream(t, reports[3:], true)
	// Strip the tail's Hello so the garbage sits between two report runs.
	helloLen := 4 + 1 + 3 + 8
	garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x99, 0xff, 0x07, 0x01}
	raw := append(append(append([]byte{}, head...), garbage...), tailOnly[helloLen:]...)

	r := NewResyncReader(bytes.NewReader(raw))
	if msg, err := r.Next(); err != nil || msg.Hello == nil {
		t.Fatalf("want Hello, got %+v, %v", msg, err)
	}
	got := readAll(t, r)
	if len(got) != len(reports) {
		t.Fatalf("got %d reports across corruption, want %d", len(got), len(reports))
	}
	if r.Resyncs() == 0 {
		t.Fatal("expected the reader to report skipped bytes")
	}
}

// TestStrictReaderStillFailsOnCorruption pins the default reader's
// behaviour: corruption is an ErrBadFrame, not a silent skip.
func TestStrictReaderStillFailsOnCorruption(t *testing.T) {
	raw := encodeStream(t, testReports(2), true)
	// Corrupt the second report's length prefix (hello frame is 16 bytes,
	// a report frame 43).
	raw[16+43] ^= 0xff
	r := NewReader(bytes.NewReader(raw))
	var err error
	for i := 0; i < 8; i++ {
		if _, err = r.Next(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("strict reader error = %v, want ErrBadFrame", err)
	}
}

// TestResyncTruncatedHeaderTail: 1–3 trailing bytes after the last full
// frame read as clean EOF in resync mode.
func TestResyncTruncatedHeaderTail(t *testing.T) {
	raw := encodeStream(t, testReports(2), false)
	raw = append(raw, 0x00, 0x00) // half a length prefix
	r := NewResyncReader(bytes.NewReader(raw))
	if msg, err := r.Next(); err != nil || msg.Hello == nil {
		t.Fatalf("want Hello, got %+v, %v", msg, err)
	}
	if got := readAll(t, r); len(got) != 2 {
		t.Fatalf("got %d reports, want 2", len(got))
	}
}
