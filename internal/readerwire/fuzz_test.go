package readerwire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"rfidraw/internal/faultgen"
	"rfidraw/internal/rfid"
)

// fuzzStream is the canonical valid stream the fuzzer mutates: a Hello,
// a handful of reports across both antennas, and a Bye. The committed
// seed corpus under testdata/fuzz/FuzzReaderNext holds this stream plus
// faultgen.Corruptions variants of it (truncations, bit flips, length
// tampering, junk insertion) so every fuzz run starts from the wire
// damage the fault harness models.
func fuzzStream(tb testing.TB, reports int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHello(Hello{Proto: ProtoVersion, ReaderID: 1, AntennaCount: 4, SweepInterval: 25 * time.Millisecond}); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < reports; i++ {
		rep := rfid.Report{
			Time:      time.Duration(i) * 5 * time.Millisecond,
			ReaderID:  1,
			AntennaID: 1 + i%4,
			PhaseRad:  math.Mod(0.7*float64(i+1), 2*math.Pi),
			PowerDB:   -40 - float64(i),
		}
		rep.EPC[0] = byte(i + 1)
		rep.EPC[11] = 0xAB
		if err := w.WriteReport(rep); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.WriteBye(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// checkMessage asserts a decoded message upholds the decoder's contract:
// exactly one variant set, and any report within validated ranges.
func checkMessage(t *testing.T, msg Message) {
	t.Helper()
	set := 0
	if msg.Hello != nil {
		set++
		if msg.Hello.Proto != ProtoVersion {
			t.Fatalf("decoded hello with proto %d", msg.Hello.Proto)
		}
	}
	if msg.Report != nil {
		set++
		r := msg.Report
		if r.ReaderID < 0 || r.ReaderID > 255 || r.AntennaID < 0 || r.AntennaID > 255 {
			t.Fatalf("decoded report with out-of-byte ids %d/%d", r.ReaderID, r.AntennaID)
		}
		if math.IsNaN(r.PhaseRad) || r.PhaseRad < 0 || r.PhaseRad >= 2*math.Pi+1e-9 {
			t.Fatalf("decoded report with out-of-range phase %v", r.PhaseRad)
		}
	}
	if msg.Bye != nil {
		set++
	}
	if set != 1 {
		t.Fatalf("message with %d variants set", set)
	}
}

// FuzzReaderNext drives arbitrary bytes through both decoder modes.
// Strict mode may reject (ErrBadFrame) but never panic or mis-decode;
// resync mode must additionally terminate at io.EOF on EVERY input —
// it exists to survive corruption, so surfacing ErrBadFrame, looping
// forever, or hallucinating more messages than the bytes could frame are
// all failures.
func FuzzReaderNext(f *testing.F) {
	clean := fuzzStream(f, 6)
	f.Add(clean)
	for _, c := range faultgen.Corruptions(1, clean, 16) {
		f.Add(c)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		strict := NewReader(bytes.NewReader(data))
		for {
			msg, err := strict.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("strict: unexpected error class: %v", err)
				}
				break
			}
			checkMessage(t, msg)
		}

		rr := NewResyncReader(bytes.NewReader(data))
		decoded := 0
		for {
			msg, err := rr.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("resync: leaked error past resync: %v", err)
				}
				break
			}
			checkMessage(t, msg)
			decoded++
		}
		// Progress invariants: the scanner cannot skip more bytes than the
		// input holds, and the smallest frame (Bye) is 5 bytes, bounding
		// how many messages any input can possibly contain.
		if rr.Resyncs() > len(data) {
			t.Fatalf("resync: skipped %d bytes of a %d-byte input", rr.Resyncs(), len(data))
		}
		if decoded > len(data)/5 {
			t.Fatalf("resync: decoded %d messages from %d bytes", decoded, len(data))
		}
	})
}

// FuzzReaderNext only proves resync never fails; this pins down that it
// still decodes. Interleaving junk between every frame of a valid stream
// must yield every original message back, in order.
func TestResyncRecoversInterleavedJunk(t *testing.T) {
	clean := fuzzStream(t, 6)
	// Split into frames to interleave junk at every boundary.
	var frames [][]byte
	for rest := clean; len(rest) > 0; {
		n := 4 + int(uint32(rest[0])<<24|uint32(rest[1])<<16|uint32(rest[2])<<8|uint32(rest[3]))
		frames = append(frames, rest[:n])
		rest = rest[n:]
	}
	junk := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00}
	var damaged bytes.Buffer
	for _, fr := range frames {
		damaged.Write(junk)
		damaged.Write(fr)
	}
	rr := NewResyncReader(bytes.NewReader(damaged.Bytes()))
	var got int
	for {
		msg, err := rr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		checkMessage(t, msg)
		got++
	}
	if got != len(frames) {
		t.Fatalf("recovered %d messages, want %d", got, len(frames))
	}
	if rr.Resyncs() == 0 {
		t.Fatal("resync counter did not move over damaged stream")
	}
}
