package sim

import (
	"testing"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
)

func TestNewScenarioDefaults(t *testing.T) {
	s, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Prop != LOS {
		t.Fatal("default prop should be LOS")
	}
	if s.Plane.Y != 2 {
		t.Fatalf("default distance = %v", s.Plane.Y)
	}
	if s.RFIDraw == nil || s.Baseline == nil || s.Env == nil {
		t.Fatal("incomplete scenario")
	}
	if s.Env.DirectGain != 1 {
		t.Fatal("LOS should have unit direct gain")
	}
	if s.RNG() == nil {
		t.Fatal("missing rng")
	}
}

func TestNewScenarioNLOS(t *testing.T) {
	s, err := New(Config{Prop: NLOS, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Env.DirectGain >= 1 {
		t.Fatal("NLOS should attenuate the direct path")
	}
	if len(s.Env.Scatterers) < 8 {
		t.Fatalf("NLOS scatterers = %d", len(s.Env.Scatterers))
	}
	if LOS.String() != "LOS" || NLOS.String() != "NLOS" {
		t.Fatal("prop strings")
	}
}

func TestScenarioDeterministic(t *testing.T) {
	run := func() *WordRun {
		s, err := New(Config{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		wr, err := s.RunWord("play", geom.Vec2{X: 0.8, Z: 1.0}, handwriting.DefaultStyle())
		if err != nil {
			t.Fatal(err)
		}
		return wr
	}
	a, b := run(), run()
	if a.Truth.Len() != b.Truth.Len() || len(a.SamplesRF) != len(b.SamplesRF) {
		t.Fatal("scenario not deterministic")
	}
	for i := range a.SamplesRF {
		for id, ph := range a.SamplesRF[i].Phase {
			if b.SamplesRF[i].Phase[id] != ph {
				t.Fatal("phase streams differ across identical seeds")
			}
		}
	}
}

func TestRunWordShapes(t *testing.T) {
	s, err := New(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := s.RunWord("clear", geom.Vec2{X: 0.6, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	if wr.Word.Text != "clear" || len(wr.Word.Letters) != 5 {
		t.Fatal("word metadata")
	}
	if wr.Truth.Len() == 0 {
		t.Fatal("no ground truth")
	}
	if len(wr.SamplesRF) < 20 || len(wr.SamplesBL) < 20 {
		t.Fatalf("sample counts = %d / %d", len(wr.SamplesRF), len(wr.SamplesBL))
	}
	// RF samples cover all 8 antennas in steady state.
	mid := wr.SamplesRF[len(wr.SamplesRF)/2]
	if len(mid.Phase) < 6 {
		t.Fatalf("mid-trace sample has only %d phases", len(mid.Phase))
	}
	// Time-ordered.
	for i := 1; i < len(wr.SamplesRF); i++ {
		if wr.SamplesRF[i].T <= wr.SamplesRF[i-1].T {
			t.Fatal("samples out of order")
		}
	}
}

func TestRunWordErrors(t *testing.T) {
	s, err := New(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunWord("", geom.Vec2{}, handwriting.DefaultStyle()); err == nil {
		t.Fatal("empty word should error")
	}
}

func TestStaticRun(t *testing.T) {
	s, err := New(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rf, bl, err := s.StaticRun(geom.Vec2{X: 1.3, Z: 1.0}, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rf) < 10 || len(bl) < 10 {
		t.Fatalf("static sample counts = %d / %d", len(rf), len(bl))
	}
}

func TestFarTagMostlyLost(t *testing.T) {
	// Beyond the reader's range the tag cannot harvest energy (§8.1
	// footnote); observation should fail or be extremely sparse.
	s, err := New(Config{Seed: 6, Distance: 12})
	if err != nil {
		t.Fatal(err)
	}
	rf, _, err := s.StaticRun(geom.Vec2{X: 1.3, Z: 1.0}, 500*time.Millisecond)
	if err == nil {
		// Occasional lucky reads are acceptable; full coverage is not.
		complete := 0
		for _, smp := range rf {
			if len(smp.Phase) == 8 {
				complete++
			}
		}
		if complete > len(rf)/2 {
			t.Fatalf("12 m tag produced %d/%d complete samples", complete, len(rf))
		}
	}
}

func TestRunWordsMultiTag(t *testing.T) {
	s, err := New(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	run, err := s.RunWords([]string{"hi", "go", "on"},
		[]geom.Vec2{{X: 0.4, Z: 1.3}, {X: 1.6, Z: 0.7}, {X: 1.0, Z: 1.6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Tags) != 3 || len(run.SamplesRF) != 3 {
		t.Fatalf("got %d tags, %d sample streams", len(run.Tags), len(run.SamplesRF))
	}
	if run.Tags[0].EPC != s.Tag.EPC {
		t.Fatal("tag 0 should be the scenario's own tag")
	}
	seen := map[string]bool{}
	for i, tag := range run.Tags {
		if seen[tag.EPC.String()] {
			t.Fatalf("duplicate EPC %s", tag.EPC)
		}
		seen[tag.EPC.String()] = true
		if len(run.SamplesRF[i]) < 10 {
			t.Fatalf("tag %d has only %d samples", i, len(run.SamplesRF[i]))
		}
	}
	// Raw streams: one per reader, in time order, with all three EPCs.
	if len(run.ReportsRF) != 2 {
		t.Fatalf("got %d report streams", len(run.ReportsRF))
	}
	for ri, reports := range run.ReportsRF {
		epcs := map[string]bool{}
		for i, rep := range reports {
			if i > 0 && rep.Time < reports[i-1].Time {
				t.Fatalf("reader %d reports out of order at %d", ri, i)
			}
			epcs[rep.EPC.String()] = true
		}
		if len(epcs) != 3 {
			t.Fatalf("reader %d heard %d tags, want 3", ri, len(epcs))
		}
	}
}

func TestRunWordsMismatchedInputs(t *testing.T) {
	s, err := New(Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunWords([]string{"hi"}, nil); err == nil {
		t.Fatal("mismatched texts/starts should error")
	}
}
