// Package sim assembles end-to-end experiment scenarios: a room (LOS or
// NLOS), the RF-IDraw and baseline deployments with their readers, a user
// writing a word in the air with a tag, the VICON ground truth, and the
// merged per-sweep observation streams both positioning schemes consume.
//
// It is the reproduction's equivalent of the paper's physical testbeds:
// the 5×6 m VICON room (LOS, §7) and the 8×12 m cubicle office lounge
// (NLOS, §8.1).
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"rfidraw/internal/antenna"
	"rfidraw/internal/channel"
	"rfidraw/internal/deploy"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/rfid"
	"rfidraw/internal/tracing"
	"rfidraw/internal/traj"
	"rfidraw/internal/vicon"
	"rfidraw/internal/vote"
)

// Propagation selects line-of-sight or non-line-of-sight conditions.
type Propagation int

const (
	// LOS is the VICON-room line-of-sight condition.
	LOS Propagation = iota
	// NLOS is the office-lounge condition: the direct path penetrates
	// 20 cm of two-layer wood cubicle separators (§8.1).
	NLOS
)

// String implements fmt.Stringer.
func (p Propagation) String() string {
	if p == NLOS {
		return "NLOS"
	}
	return "LOS"
}

// Scenario is one fully wired experiment environment.
type Scenario struct {
	// Prop records the propagation condition.
	Prop Propagation
	// Plane is the writing plane (distance from the antenna wall).
	Plane geom.Plane
	// Region is the search region in the writing plane.
	Region geom.Rect
	// RFIDraw and Baseline are the two compared deployments.
	RFIDraw  *deploy.RFIDraw
	Baseline *deploy.Baseline
	// Env is the shared propagation environment.
	Env *channel.Environment
	// Tag is the tag on the user's hand.
	Tag rfid.Tag

	readersRF []*rfid.Reader  // one per RF-IDraw reader array, in reader-ID order
	readersBL [2]*rfid.Reader // left and bottom arrays
	rng       *rand.Rand
}

// Readers returns the number of RF-IDraw reader arrays in the scenario
// (two for the default geometry, more for multi-room deployments).
func (s *Scenario) Readers() int { return len(s.readersRF) }

// Config tunes scenario construction.
type Config struct {
	// Prop selects LOS or NLOS.
	Prop Propagation
	// Distance is the user's distance from the antenna wall in metres
	// (the paper evaluates 2–5 m). Default 2.
	Distance float64
	// Scatterers is the number of multipath reflectors. Defaults: 6 for
	// LOS, 10 for NLOS (cubicle furniture and separators).
	Scatterers int
	// PhaseNoise is the per-measurement phase noise stddev in radians.
	// Default 0.12 (≈7°), a typical reader phase jitter.
	PhaseNoise float64
	// NLOSDirectGain is the direct-path amplitude gain in NLOS. The
	// paper's NLOS results degrade only mildly (§8.1), implying the
	// attenuated direct path still dominates; default 0.6.
	NLOSDirectGain float64
	// Seed drives all randomness in the scenario.
	Seed int64
	// Deployment overrides the RF-IDraw antenna deployment (heterogeneous
	// geometries: multi-room, rotated). Nil means the paper's default
	// Fig. 6d placement. The scenario builds one reader per distinct
	// ReaderID in the deployment's antennas.
	Deployment *deploy.RFIDraw
	// Region overrides the writing-plane search region; the zero Rect
	// means deploy.DefaultRegion(). Geometries with more rooms need a
	// region covering them (deploy.GeometrySpec.Region).
	Region geom.Rect
}

func (c Config) withDefaults() Config {
	if c.Distance <= 0 {
		c.Distance = 2
	}
	if c.Scatterers <= 0 {
		if c.Prop == NLOS {
			c.Scatterers = 8
		} else {
			c.Scatterers = 6
		}
	}
	if c.PhaseNoise <= 0 {
		c.PhaseNoise = 0.12
	}
	if c.NLOSDirectGain <= 0 {
		c.NLOSDirectGain = 0.6
	}
	return c
}

// New builds a scenario: deployments, environment with random scatterers,
// readers and a tag, all seeded deterministically.
func New(cfg Config) (*Scenario, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	rf := cfg.Deployment
	if rf == nil {
		var err error
		rf, err = deploy.DefaultRFIDraw()
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	bl, err := deploy.DefaultBaseline()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	// Scatterers live in the volume between the wall and just beyond the
	// user. Reflectivities are modest in LOS; in NLOS the separators add
	// stronger reflectors while the direct path is attenuated.
	lo := geom.Vec3{X: -1, Y: 0.3, Z: 0}
	hi := geom.Vec3{X: 3.6, Y: cfg.Distance + 1.5, Z: 2.6}
	maxRefl := 0.18
	if cfg.Prop == NLOS {
		maxRefl = 0.15
	}
	scatterers := channel.RandomScatterers(rng, cfg.Scatterers, lo, hi, 0.05, maxRefl)
	var env *channel.Environment
	if cfg.Prop == NLOS {
		env = channel.NLOS(cfg.PhaseNoise, cfg.NLOSDirectGain, scatterers...)
	} else {
		env = channel.LOS(cfg.PhaseNoise, scatterers...)
	}

	region := cfg.Region
	if region.Width() <= 0 || region.Height() <= 0 {
		region = deploy.DefaultRegion()
	}
	s := &Scenario{
		Prop:     cfg.Prop,
		Plane:    geom.Plane{Y: cfg.Distance},
		Region:   region,
		RFIDraw:  rf,
		Baseline: bl,
		Env:      env,
		Tag:      rfid.NewTag(rng),
		rng:      rng,
	}

	mkReader := func(id int, ants []antenna.Antenna) (*rfid.Reader, error) {
		cfgR := rfid.DefaultReaderConfig(id, ants)
		cfgR.PhaseOffsetRad = rng.Float64() * 6.28 // uncalibrated per-reader offset
		if cfg.Prop == NLOS {
			// The cubicle separators attenuate the carrier ≈18 dB round
			// trip; the lounge deployment compensates with higher reader
			// transmit power, keeping tags readable through 5 m as the
			// paper's NLOS experiments require (§8.1).
			cfgR.WakePowerDB = -47
		}
		return rfid.NewReader(cfgR, env)
	}
	// One simulated reader per distinct ReaderID in the deployment, in
	// reader-ID order. Grouping must visit the rng in a fixed order so
	// seeded runs on the default geometry reproduce the historical stream
	// (reader A, reader B, then the two baseline arrays).
	groups := map[int][]antenna.Antenna{}
	maxReader := -1
	for _, a := range rf.Antennas {
		groups[a.ReaderID] = append(groups[a.ReaderID], a)
		if a.ReaderID > maxReader {
			maxReader = a.ReaderID
		}
	}
	for id := 0; id <= maxReader; id++ {
		ants, ok := groups[id]
		if !ok {
			return nil, fmt.Errorf("sim: deployment has no antennas for reader %d", id)
		}
		r, err := mkReader(id, ants)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		s.readersRF = append(s.readersRF, r)
	}
	if s.readersBL[0], err = mkReader(deploy.ReaderA, bl.Left.Elements); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if s.readersBL[1], err = mkReader(deploy.ReaderB, bl.Bottom.Elements); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return s, nil
}

// RNG exposes the scenario's seeded random source for callers that layer
// extra randomness (user styles, word choice) on the same stream.
func (s *Scenario) RNG() *rand.Rand { return s.rng }

// WordRun is the result of one user writing one word in the scenario.
type WordRun struct {
	// Word is the written word with its letter segmentation.
	Word handwriting.Word
	// Truth is the VICON-captured ground truth trajectory.
	Truth traj.Trajectory
	// SamplesRF are the merged per-sweep observations for RF-IDraw's
	// eight antennas.
	SamplesRF []tracing.Sample
	// SamplesBL are the merged observations for the baseline's arrays.
	SamplesBL []tracing.Sample
}

// RunWord simulates a user writing text starting at start in the writing
// plane, with the given style, and returns both schemes' observation
// streams plus ground truth.
func (s *Scenario) RunWord(text string, start geom.Vec2, style handwriting.Style) (*WordRun, error) {
	word, err := handwriting.Write(text, start, style, s.rng)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	truth, err := vicon.Capture(word.Traj, vicon.DefaultConfig(), s.rng)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	at := func(t time.Duration) geom.Vec3 {
		p, err := word.Traj.At(t)
		if err != nil {
			return geom.Vec3{}
		}
		return s.Plane.To3D(p)
	}
	dur := word.Traj.Duration() + 50*time.Millisecond
	samplesRF, err := s.observe(s.readersRF, dur, at)
	if err != nil {
		return nil, err
	}
	samplesBL, err := s.observe(s.readersBL[:], dur, at)
	if err != nil {
		return nil, err
	}
	return &WordRun{Word: word, Truth: truth, SamplesRF: samplesRF, SamplesBL: samplesBL}, nil
}

// MultiWordRun is the result of several users writing words at the same
// time, each with their own tag. Gen-2 singulation splits each reader's
// airtime round-robin across the tags, so per-tag read rate divides by the
// user count — the scaling regime §2 of the paper claims and the
// concurrent engine is built for.
type MultiWordRun struct {
	// Tags are the per-user tags; Tags[0] is the scenario's own tag.
	Tags []rfid.Tag
	// Words are the written words, aligned with Tags.
	Words []handwriting.Word
	// Truths are the VICON-captured ground-truth trajectories.
	Truths []traj.Trajectory
	// SamplesRF[i] is tag i's merged per-sweep observation stream over
	// RF-IDraw's eight antennas — the batch pipeline's input.
	SamplesRF [][]tracing.Sample
	// ReportsRF[r] is RF reader r's raw interleaved reply stream with all
	// tags mixed together, in time order — what a real reader delivers on
	// the wire and what the streaming engine demultiplexes.
	ReportsRF [][]rfid.Report
	// SweepInterval is the readers' sweep period; each tag is visited
	// every len(Tags) sweeps.
	SweepInterval time.Duration
}

// RunWords simulates len(texts) users writing concurrently, user i
// starting text i at starts[i] with a per-user random style. It returns
// both the per-tag merged sample streams and the raw per-reader report
// streams.
func (s *Scenario) RunWords(texts []string, starts []geom.Vec2) (*MultiWordRun, error) {
	if len(texts) == 0 || len(texts) != len(starts) {
		return nil, fmt.Errorf("sim: RunWords needs matching texts (%d) and starts (%d)", len(texts), len(starts))
	}
	n := len(texts)
	run := &MultiWordRun{
		Tags:   make([]rfid.Tag, n),
		Words:  make([]handwriting.Word, n),
		Truths: make([]traj.Trajectory, n),
	}
	tracks := make([]func(time.Duration) geom.Vec3, n)
	var dur time.Duration
	for i := range texts {
		if i == 0 {
			run.Tags[i] = s.Tag
		} else {
			run.Tags[i] = rfid.NewTag(s.rng)
		}
		word, err := handwriting.Write(texts[i], starts[i], handwriting.RandomStyle(s.rng), s.rng)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		truth, err := vicon.Capture(word.Traj, vicon.DefaultConfig(), s.rng)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		run.Words[i] = word
		run.Truths[i] = truth
		wt := word.Traj
		tracks[i] = func(t time.Duration) geom.Vec3 {
			p, err := wt.At(t)
			if err != nil {
				return geom.Vec3{}
			}
			return s.Plane.To3D(p)
		}
		if d := word.Traj.Duration(); d > dur {
			dur = d
		}
	}
	dur += 100 * time.Millisecond

	sweep := s.readersRF[0].Config().SweepInterval
	run.SweepInterval = sweep
	// With airtime split N ways a tag is revisited every N sweeps, so the
	// safe last-known-phase hold scales accordingly (cf. the 2-sweep hold
	// of single-tag observation).
	maxAge := 2*time.Duration(n)*sweep + 5*time.Millisecond
	run.ReportsRF = make([][]rfid.Report, len(s.readersRF))
	merged := make([]map[time.Duration]vote.Observations, n)
	for i := range merged {
		merged[i] = map[time.Duration]vote.Observations{}
	}
	for ri, r := range s.readersRF {
		reports, err := r.InventoryMulti(dur, run.Tags, tracks, s.rng)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		run.ReportsRF[ri] = reports
		for ti, tag := range run.Tags {
			for _, snap := range rfid.GroupSweeps(reports, tag.EPC, sweep, maxAge) {
				obs, ok := merged[ti][snap.Time]
				if !ok {
					obs = vote.Observations{}
					merged[ti][snap.Time] = obs
				}
				for id, ph := range snap.Phase {
					obs[id] = ph
				}
			}
		}
	}
	run.SamplesRF = make([][]tracing.Sample, n)
	for ti := range run.Tags {
		var out []tracing.Sample
		for t := time.Duration(0); t <= dur; t += sweep {
			if obs, ok := merged[ti][t]; ok {
				out = append(out, tracing.Sample{T: t, Phase: obs})
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("sim: no observations for tag %d (out of range?)", ti)
		}
		run.SamplesRF[ti] = out
	}
	return run, nil
}

// StaticRun produces observation streams for a stationary tag, used by the
// positioning (Fig. 6/12) experiments.
func (s *Scenario) StaticRun(pos geom.Vec2, dur time.Duration) (rf, bl []tracing.Sample, err error) {
	at := func(time.Duration) geom.Vec3 { return s.Plane.To3D(pos) }
	rf, err = s.observe(s.readersRF, dur, at)
	if err != nil {
		return nil, nil, err
	}
	bl, err = s.observe(s.readersBL[:], dur, at)
	if err != nil {
		return nil, nil, err
	}
	return rf, bl, nil
}

// observe runs both readers over the tag trajectory and merges their
// per-sweep snapshots into combined samples.
func (s *Scenario) observe(readers []*rfid.Reader, dur time.Duration, at func(time.Duration) geom.Vec3) ([]tracing.Sample, error) {
	if dur <= 0 {
		return nil, fmt.Errorf("sim: non-positive duration %v", dur)
	}
	sweep := readers[0].Config().SweepInterval
	// Holding a lost port's phase for too long corrupts wide-pair votes:
	// at hand speed the round-trip path changes a quarter turn in tens of
	// milliseconds. Two sweeps is the longest safe hold.
	const maxAge = 55 * time.Millisecond
	merged := map[time.Duration]vote.Observations{}
	for _, r := range readers {
		reports := r.Inventory(dur, s.Tag, at, s.rng)
		for _, snap := range rfid.GroupSweeps(reports, s.Tag.EPC, sweep, maxAge) {
			obs, ok := merged[snap.Time]
			if !ok {
				obs = vote.Observations{}
				merged[snap.Time] = obs
			}
			for id, ph := range snap.Phase {
				obs[id] = ph
			}
		}
	}
	out := make([]tracing.Sample, 0, len(merged))
	for t := time.Duration(0); t <= dur; t += sweep {
		if obs, ok := merged[t]; ok {
			out = append(out, tracing.Sample{T: t, Phase: obs})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sim: no observations (tag out of range?)")
	}
	return out, nil
}
