package antenna

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
)

var (
	carrier = phys.DefaultCarrier()
	lambda  = carrier.WavelengthM
)

func mustPair(t *testing.T, i, j Antenna, link phys.Link) Pair {
	t.Helper()
	p, err := NewPair(i, j, carrier, link)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPairValidation(t *testing.T) {
	a := Antenna{ID: 1, ReaderID: 0, Pos: geom.Vec3{}}
	b := Antenna{ID: 2, ReaderID: 0, Pos: geom.Vec3{X: 1}}
	if _, err := NewPair(a, b, carrier, phys.Backscatter); err != nil {
		t.Fatal(err)
	}
	crossReader := Antenna{ID: 3, ReaderID: 1, Pos: geom.Vec3{X: 2}}
	if _, err := NewPair(a, crossReader, carrier, phys.Backscatter); err == nil {
		t.Fatal("pair across readers must be rejected (uncalibrated offset)")
	}
	if _, err := NewPair(a, a, carrier, phys.Backscatter); err == nil {
		t.Fatal("coincident pair must be rejected")
	}
}

func TestLobeCountGrowsLinearly(t *testing.T) {
	// §3.2: for D = K·λ/2 (one-way), k can take K values; our count is
	// 2·floor(F·D/λ)+1 covering both sides of broadside.
	cases := []struct {
		sepWavelengths float64
		link           phys.Link
		wantMax        int
	}{
		{0.5, phys.OneWay, 0},       // λ/2, one-way: single beam
		{0.25, phys.Backscatter, 0}, // λ/4, backscatter: single beam (§6)
		{1, phys.OneWay, 1},
		{8, phys.OneWay, 8},
		{8, phys.Backscatter, 16}, // the prototype's wide pairs
	}
	for _, tc := range cases {
		p := mustPair(t,
			Antenna{ID: 1, Pos: geom.Vec3{}},
			Antenna{ID: 2, Pos: geom.Vec3{X: tc.sepWavelengths * lambda}},
			tc.link)
		if got := p.MaxLobeIndex(); got != tc.wantMax {
			t.Errorf("sep=%vλ link=%v: MaxLobeIndex=%d, want %d", tc.sepWavelengths, tc.link, got, tc.wantMax)
		}
		if got := p.LobeCount(); got != 2*tc.wantMax+1 {
			t.Errorf("LobeCount=%d", got)
		}
	}
}

func TestSeparationHelpers(t *testing.T) {
	p := mustPair(t,
		Antenna{ID: 1, Pos: geom.Vec3{}},
		Antenna{ID: 2, Pos: geom.Vec3{X: 8 * lambda}},
		phys.Backscatter)
	if math.Abs(p.Separation()-8*lambda) > 1e-12 {
		t.Fatal("separation")
	}
	if math.Abs(p.SeparationWavelengths()-8) > 1e-9 {
		t.Fatal("separation in wavelengths")
	}
	if math.Abs(p.EffectiveTurnsSpan()-16) > 1e-9 {
		t.Fatal("effective turns span should double for backscatter")
	}
}

func TestIdealPhaseDiffConsistentWithEq2(t *testing.T) {
	// For any source, the ideal measured turns and the true ΔdTurns must
	// differ by an integer (Eq. 2's k).
	p := mustPair(t,
		Antenna{ID: 1, Pos: geom.Vec3{}},
		Antenna{ID: 2, Pos: geom.Vec3{X: 8 * lambda}},
		phys.Backscatter)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		pos := geom.Vec3{X: rng.Float64()*4 - 1, Y: 1 + rng.Float64()*4, Z: rng.Float64() * 2}
		turns := p.IdealPhaseDiffTurns(pos)
		k := p.DeltaDistTurns(pos) - turns
		if math.Abs(k-math.Round(k)) > 1e-9 {
			t.Fatalf("pos %v: Δd turns %v and measured %v differ by non-integer %v",
				pos, p.DeltaDistTurns(pos), turns, k)
		}
		if turns <= -0.5-1e-12 || turns > 0.5+1e-12 {
			t.Fatalf("measured turns %v out of (−0.5, 0.5]", turns)
		}
	}
}

func TestVoteFreeZeroOnTruth(t *testing.T) {
	p := mustPair(t,
		Antenna{ID: 1, Pos: geom.Vec3{}},
		Antenna{ID: 2, Pos: geom.Vec3{X: 8 * lambda}},
		phys.Backscatter)
	src := geom.Vec3{X: 1.2, Y: 2, Z: 0.7}
	turns := p.IdealPhaseDiffTurns(src)
	if v := p.VoteFree(src, turns); v < -1e-12 {
		t.Fatalf("vote at the true source = %v, want 0", v)
	}
	// A point slightly off the lobe must vote strictly lower.
	off := geom.Vec3{X: 1.2 + 0.03, Y: 2, Z: 0.7}
	if v := p.VoteFree(off, turns); v >= -1e-9 {
		t.Fatalf("off-lobe vote = %v, want < 0", v)
	}
}

func TestVoteFreePeriodicAmbiguity(t *testing.T) {
	// A wide pair cannot distinguish positions whose ΔdTurns differ by an
	// integer — they all get a ≈0 vote (the grating-lobe ambiguity).
	p := mustPair(t,
		Antenna{ID: 1, Pos: geom.Vec3{}},
		Antenna{ID: 2, Pos: geom.Vec3{X: 8 * lambda}},
		phys.Backscatter)
	src := geom.Vec3{X: 1.2, Y: 2, Z: 0.7}
	turns := p.IdealPhaseDiffTurns(src)
	// Find another x with ΔdTurns exactly one greater (next lobe) by
	// bisection along x.
	target := p.DeltaDistTurns(src) + 1
	lo, hi := 1.2, 3.5
	for iter := 0; iter < 100; iter++ {
		mid := (lo + hi) / 2
		if p.DeltaDistTurns(geom.Vec3{X: mid, Y: 2, Z: 0.7}) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	ghost := geom.Vec3{X: (lo + hi) / 2, Y: 2, Z: 0.7}
	if v := p.VoteFree(ghost, turns); v < -1e-6 {
		t.Fatalf("ghost lobe vote = %v, want ≈0 (ambiguity)", v)
	}
	// The coarse pair, in contrast, must reject the ghost.
	coarse := mustPair(t,
		Antenna{ID: 5, Pos: geom.Vec3{X: 1.0}},
		Antenna{ID: 6, Pos: geom.Vec3{X: 1.0 + lambda/4}},
		phys.Backscatter)
	cTurns := coarse.IdealPhaseDiffTurns(src)
	vTrue := coarse.VoteFree(src, cTurns)
	vGhost := coarse.VoteFree(ghost, cTurns)
	if vGhost >= vTrue-1e-9 {
		t.Fatalf("coarse pair should penalise the ghost: true=%v ghost=%v", vTrue, vGhost)
	}
}

func TestNearestLobeAndVoteFixed(t *testing.T) {
	p := mustPair(t,
		Antenna{ID: 1, Pos: geom.Vec3{}},
		Antenna{ID: 2, Pos: geom.Vec3{X: 8 * lambda}},
		phys.Backscatter)
	src := geom.Vec3{X: 0.9, Y: 2.2, Z: 0.4}
	turns := p.IdealPhaseDiffTurns(src)
	k := p.NearestLobe(src, turns)
	want := p.DeltaDistTurns(src) - turns
	if math.Abs(float64(k)-want) > 1e-6 {
		t.Fatalf("NearestLobe = %d, want %v", k, want)
	}
	if v := p.VoteFixed(src, turns, k); v < -1e-12 {
		t.Fatalf("fixed vote at truth = %v", v)
	}
	// Wrong k votes poorly.
	if v := p.VoteFixed(src, turns, k+3); v > -1 {
		t.Fatalf("vote with k+3 = %v, want ≤ −9-ish", v)
	}
	// Lobe index clamps to the valid range.
	if got := p.NearestLobe(geom.Vec3{X: 100, Y: 0.01, Z: 0}, 0); got > p.MaxLobeIndex() || got < -p.MaxLobeIndex() {
		t.Fatalf("NearestLobe %d outside ±%d", got, p.MaxLobeIndex())
	}
}

func TestPhaseDiffTurnsWraps(t *testing.T) {
	if got := PhaseDiffTurns(0.1, 0.1+math.Pi); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("half-turn diff = %v", got)
	}
	if got := PhaseDiffTurns(0.1, 0.1+3*math.Pi); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("wrapped diff = %v", got)
	}
	if got := PhaseDiffTurns(1, 1); got != 0 {
		t.Fatalf("zero diff = %v", got)
	}
}

func TestNewULAValidation(t *testing.T) {
	if _, err := NewULA(0, 1, 1, geom.Vec3{}, geom.Vec3{X: 0.1}, carrier, phys.Backscatter); err == nil {
		t.Fatal("1-element array must be rejected")
	}
	if _, err := NewULA(0, 1, 4, geom.Vec3{}, geom.Vec3{}, carrier, phys.Backscatter); err == nil {
		t.Fatal("zero step must be rejected")
	}
	a, err := NewULA(0, 1, 4, geom.Vec3{}, geom.Vec3{X: lambda / 4}, carrier, phys.Backscatter)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Elements) != 4 {
		t.Fatal("element count")
	}
	if a.Elements[3].ID != 4 {
		t.Fatal("IDs should be sequential")
	}
	wantCenter := geom.Vec3{X: 1.5 * lambda / 4}
	if a.Center().Dist(wantCenter) > 1e-12 {
		t.Fatalf("center = %v", a.Center())
	}
	if a.Axis().Dist(geom.Vec3{X: 1}) > 1e-12 {
		t.Fatalf("axis = %v", a.Axis())
	}
}

func TestBartlettRecoversAoA(t *testing.T) {
	// A noiseless far-field source must produce a spectrum peak at its
	// true angle.
	a, err := NewULA(0, 1, 4, geom.Vec3{}, geom.Vec3{X: lambda / 4}, carrier, phys.Backscatter)
	if err != nil {
		t.Fatal(err)
	}
	for _, trueTheta := range []float64{math.Pi / 3, math.Pi / 2, 2 * math.Pi / 3} {
		// Place a far source at the given angle from the array axis (x).
		src := geom.Vec3{X: 50 * math.Cos(trueTheta), Y: 50 * math.Sin(trueTheta)}
		phases := make([]float64, len(a.Elements))
		for i, e := range a.Elements {
			phases[i] = phys.PathPhase(carrier, phys.Backscatter, e.Pos.Dist(src))
		}
		got, err := a.PeakAoA(phases, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-trueTheta) > 0.02 {
			t.Errorf("AoA = %v, want %v", got, trueTheta)
		}
	}
}

func TestBartlettSpectrumErrors(t *testing.T) {
	a, _ := NewULA(0, 1, 4, geom.Vec3{}, geom.Vec3{X: lambda / 4}, carrier, phys.Backscatter)
	if _, err := a.BartlettSpectrum([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("phase count mismatch must error")
	}
	if _, err := a.PeakAoA([]float64{1, 2, 3, 4}, 1); err == nil {
		t.Fatal("nTheta < 2 must error")
	}
}

func TestDirectionRayGeometry(t *testing.T) {
	a, _ := NewULA(0, 1, 4, geom.Vec3{}, geom.Vec3{X: lambda / 4}, carrier, phys.Backscatter)
	plane := geom.Plane{Y: 2}
	// Broadside (θ = π/2) from an x-axis array points along +z in the
	// writing plane (the in-plane normal).
	ray := a.DirectionRay(math.Pi/2, plane)
	if math.Abs(ray.Dir.X) > 1e-9 || ray.Dir.Z <= 0 {
		t.Fatalf("broadside dir = %v, want +z", ray.Dir)
	}
	// Endfire (θ = 0) points along +x.
	ray = a.DirectionRay(0, plane)
	if math.Abs(ray.Dir.Z) > 1e-9 || ray.Dir.X <= 0 {
		t.Fatalf("endfire dir = %v, want +x", ray.Dir)
	}
}

func TestBeamPatternPeaksAtSource(t *testing.T) {
	p := mustPair(t,
		Antenna{ID: 1, Pos: geom.Vec3{}},
		Antenna{ID: 2, Pos: geom.Vec3{X: lambda / 4}},
		phys.Backscatter)
	plane := geom.Plane{Y: 2}
	src := geom.Vec2{X: 0.5, Z: 0.3}
	turns := p.IdealPhaseDiffTurns(plane.To3D(src))
	pts := []geom.Vec2{src, {X: 2.0, Z: 1.5}}
	gains := p.BeamPattern(pts, plane, turns, 0.05)
	if gains[0] < 0.999 {
		t.Fatalf("gain at source = %v, want ≈1", gains[0])
	}
	if gains[1] >= gains[0] {
		t.Fatalf("distant point gain %v should be below source gain %v", gains[1], gains[0])
	}
}

// Property: VoteFree is always in [−0.25, 0] (the residual to the nearest
// integer is at most 1/2 when unclamped; clamping can exceed it only for
// unreachable positions, which we exclude by construction).
func TestQuickVoteFreeRange(t *testing.T) {
	p, _ := NewPair(
		Antenna{ID: 1, Pos: geom.Vec3{}},
		Antenna{ID: 2, Pos: geom.Vec3{X: 8 * lambda}},
		carrier, phys.Backscatter)
	f := func(x, y, z, mt float64) bool {
		pos := geom.Vec3{X: math.Mod(x, 4), Y: 0.5 + math.Abs(math.Mod(y, 5)), Z: math.Mod(z, 2)}
		turns := wrapHalf(mt)
		for _, v := range []float64{pos.X, pos.Y, pos.Z, turns} {
			if math.IsNaN(v) {
				return true
			}
		}
		v := p.VoteFree(pos, turns)
		return v <= 1e-12 && v >= -0.25-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: VoteFixed(pos, t, k) ≤ VoteFree(pos, wrapHalf(t)) + ε whenever k
// is in range — the free vote picks the best lobe.
func TestQuickVoteFixedBelowFree(t *testing.T) {
	p, _ := NewPair(
		Antenna{ID: 1, Pos: geom.Vec3{}},
		Antenna{ID: 2, Pos: geom.Vec3{X: 8 * lambda}},
		carrier, phys.Backscatter)
	f := func(x, y, k int) bool {
		pos := geom.Vec3{X: float64(x%40) * 0.1, Y: 1 + float64(y%30)*0.1, Z: 0.5}
		if pos.Y < 0.5 {
			pos.Y = 2
		}
		turns := p.IdealPhaseDiffTurns(pos)
		kk := k % (p.MaxLobeIndex() + 1)
		return p.VoteFixed(pos, turns, kk) <= p.VoteFree(pos, turns)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
