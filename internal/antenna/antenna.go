// Package antenna implements the antenna-pair geometry and grating-lobe
// mathematics at the heart of RF-IDraw (§3 of the paper), plus the uniform
// linear array and Bartlett angle-of-arrival spectrum the compared baseline
// uses.
//
// Everything is phrased in "turns" — fractions of a wavelength / full phase
// rotations — because Eq. 2 of the paper relates the two directly:
//
//	F·Δd/λ = Δφ/2π + k,  k ∈ Z
//
// where F is the link travel factor (2 for backscatter), Δd the difference
// of the tag's distances to the pair's two antennas, and Δφ the measured
// phase difference. Each integer k corresponds to one grating lobe.
package antenna

import (
	"fmt"
	"math"

	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
)

// Antenna is one reader port's radiating element.
type Antenna struct {
	// ID is a stable identifier; the paper numbers its antennas 1–8.
	ID int
	// ReaderID identifies which reader the antenna is connected to.
	// Phase comparisons are only meaningful within one reader.
	ReaderID int
	// Pos is the element position in room coordinates (wall plane y=0).
	Pos geom.Vec3
}

// Pair is an ordered antenna pair <I, J>. Its measured observable is the
// phase difference Δφ(J,I) = φJ − φI.
type Pair struct {
	I, J    Antenna
	Carrier phys.Carrier
	Link    phys.Link
}

// NewPair builds a pair after checking that both antennas belong to the
// same reader (phases across readers have an uncalibrated offset, §3.5).
func NewPair(i, j Antenna, carrier phys.Carrier, link phys.Link) (Pair, error) {
	if i.ReaderID != j.ReaderID {
		return Pair{}, fmt.Errorf("antenna: pair <%d,%d> spans readers %d and %d", i.ID, j.ID, i.ReaderID, j.ReaderID)
	}
	if i.Pos == j.Pos {
		return Pair{}, fmt.Errorf("antenna: pair <%d,%d> has coincident elements", i.ID, j.ID)
	}
	return Pair{I: i, J: j, Carrier: carrier, Link: link}, nil
}

// Separation returns the element spacing D in metres.
func (p Pair) Separation() float64 { return p.I.Pos.Dist(p.J.Pos) }

// SeparationWavelengths returns D/λ.
func (p Pair) SeparationWavelengths() float64 { return p.Separation() / p.Carrier.WavelengthM }

// EffectiveTurnsSpan returns F·D/λ — the maximum |Δd|·F/λ any source
// position can produce, and therefore (up to rounding) the number of
// grating lobes on each side of broadside.
func (p Pair) EffectiveTurnsSpan() float64 {
	return p.Link.TravelFactor() * p.Separation() / p.Carrier.WavelengthM
}

// MaxLobeIndex returns the largest |k| any real source position can make
// Eq. 2 hold for. Coarse pairs are built so this is 0 (a single beam).
func (p Pair) MaxLobeIndex() int {
	return int(math.Floor(p.EffectiveTurnsSpan() + 1e-9))
}

// LobeCount returns the number of distinct grating lobes, 2·MaxLobeIndex+1.
// It grows linearly with separation, as §3.2 derives.
func (p Pair) LobeCount() int { return 2*p.MaxLobeIndex() + 1 }

// DeltaDistTurns returns F·Δd/λ for a source at pos: the left-hand side of
// Eq. 2 in turns, using exact 3-D distances (the hyperbola form the paper
// recommends at close range, not the far-field cos θ approximation).
func (p Pair) DeltaDistTurns(pos geom.Vec3) float64 {
	dd := pos.Dist(p.I.Pos) - pos.Dist(p.J.Pos)
	return p.Link.TravelFactor() * dd / p.Carrier.WavelengthM
}

// PhaseDiffTurns converts two measured wrapped phases into the observable
// Δφ(J,I)/2π, wrapped to (−0.5, 0.5].
func PhaseDiffTurns(phiI, phiJ float64) float64 {
	return phys.WrapSigned(phiJ-phiI) / phys.TwoPi
}

// IdealPhaseDiffTurns returns the noiseless phase-difference observable for
// a source at pos, i.e. DeltaDistTurns reduced to (−0.5, 0.5]. Useful for
// constructing synthetic measurements in tests and plots.
func (p Pair) IdealPhaseDiffTurns(pos geom.Vec3) float64 {
	return wrapHalf(p.DeltaDistTurns(pos))
}

// wrapHalf wraps x to (−0.5, 0.5].
func wrapHalf(x float64) float64 {
	w := math.Mod(x, 1)
	switch {
	case w <= -0.5:
		w += 1
	case w > 0.5:
		w -= 1
	}
	return w
}

// NearestLobe returns the lobe index k* minimising |F·Δd(pos)/λ − turns − k|
// subject to |k| ≤ MaxLobeIndex. This is the lobe-locking step of the
// tracing algorithm (§5.2).
func (p Pair) NearestLobe(pos geom.Vec3, measuredTurns float64) int {
	frac := p.DeltaDistTurns(pos) - measuredTurns
	k := int(math.Round(frac))
	if max := p.MaxLobeIndex(); k > max {
		k = max
	} else if max := p.MaxLobeIndex(); k < -max {
		k = -max
	}
	return k
}

// VoteFree is the widely-spaced-pair vote of Eq. 7: the negated squared
// distance (in turns) from pos to the *closest* grating lobe consistent
// with the measured phase difference.
func (p Pair) VoteFree(pos geom.Vec3, measuredTurns float64) float64 {
	frac := p.DeltaDistTurns(pos) - measuredTurns
	k := math.Round(frac)
	if max := float64(p.MaxLobeIndex()); k > max {
		k = max
	} else if k < -max {
		k = -max
	}
	r := frac - k
	return -r * r
}

// VoteFixed is the tracing-time vote with the lobe index pinned (Eq. 7 with
// fixed k and unwrapped phase): the negated squared residual against lobe k
// given the *unwrapped* phase-difference track in turns.
func (p Pair) VoteFixed(pos geom.Vec3, unwrappedTurns float64, k int) float64 {
	r := p.DeltaDistTurns(pos) - unwrappedTurns - float64(k)
	return -r * r
}

// Array is a uniform linear array of antennas, used by the baseline AoA
// scheme ([12] in the paper): elements along a line with constant spacing.
type Array struct {
	Elements []Antenna
	Carrier  phys.Carrier
	Link     phys.Link
}

// NewULA builds an n-element uniform linear array starting at origin and
// stepping by step (whose norm is the element spacing). All elements share
// the reader ID.
func NewULA(readerID, firstID, n int, origin, step geom.Vec3, carrier phys.Carrier, link phys.Link) (Array, error) {
	if n < 2 {
		return Array{}, fmt.Errorf("antenna: array needs ≥2 elements, got %d", n)
	}
	if step.Norm() == 0 {
		return Array{}, fmt.Errorf("antenna: array step must be non-zero")
	}
	els := make([]Antenna, n)
	for i := range els {
		els[i] = Antenna{ID: firstID + i, ReaderID: readerID, Pos: origin.Add(step.Scale(float64(i)))}
	}
	return Array{Elements: els, Carrier: carrier, Link: link}, nil
}

// Center returns the array's phase centre.
func (a Array) Center() geom.Vec3 {
	var c geom.Vec3
	for _, e := range a.Elements {
		c = c.Add(e.Pos)
	}
	return c.Scale(1 / float64(len(a.Elements)))
}

// Axis returns the unit vector along the array's line.
func (a Array) Axis() geom.Vec3 {
	d := a.Elements[len(a.Elements)-1].Pos.Sub(a.Elements[0].Pos)
	return d.Scale(1 / d.Norm())
}

// SteeringTurns returns, for each element, the expected phase (in turns,
// relative to element 0) of a far-field source at angle theta from the
// array axis. For a source along angle θ, the path to element n is shorter
// by x_n·cos θ, so its received phase is larger by +F·x_n·cos θ/λ turns,
// where x_n is the element's position along the axis.
func (a Array) SteeringTurns(theta float64) []float64 {
	axis := a.Axis()
	base := a.Elements[0].Pos
	f := a.Link.TravelFactor() / a.Carrier.WavelengthM
	out := make([]float64, len(a.Elements))
	ct := math.Cos(theta)
	for i, e := range a.Elements {
		x := e.Pos.Sub(base).Dot(axis)
		out[i] = f * x * ct
	}
	return out
}

// BartlettSpectrum evaluates the classical (Bartlett) beamformer power at
// each candidate angle, from the measured per-element wrapped phases. Only
// phase information is used (unit amplitudes), which matches what a
// commercial reader reports.
func (a Array) BartlettSpectrum(phases []float64, thetas []float64) ([]float64, error) {
	if len(phases) != len(a.Elements) {
		return nil, fmt.Errorf("antenna: got %d phases for %d elements", len(phases), len(a.Elements))
	}
	out := make([]float64, len(thetas))
	for ti, th := range thetas {
		steer := a.SteeringTurns(th)
		var re, im float64
		for n := range phases {
			// Correlate measurement with the steering phase.
			ang := phases[n] - phases[0] - phys.TwoPi*(steer[n]-steer[0])
			re += math.Cos(ang)
			im += math.Sin(ang)
		}
		out[ti] = (re*re + im*im) / float64(len(phases)*len(phases))
	}
	return out, nil
}

// PeakAoA scans nTheta angles in (0, π) and returns the angle with the
// highest Bartlett power.
func (a Array) PeakAoA(phases []float64, nTheta int) (float64, error) {
	if nTheta < 2 {
		return 0, fmt.Errorf("antenna: need ≥2 scan angles, got %d", nTheta)
	}
	thetas := make([]float64, nTheta)
	for i := range thetas {
		thetas[i] = math.Pi * (float64(i) + 0.5) / float64(nTheta)
	}
	spec, err := a.BartlettSpectrum(phases, thetas)
	if err != nil {
		return 0, err
	}
	best := 0
	for i, v := range spec {
		if v > spec[best] {
			best = i
		}
	}
	return thetas[best], nil
}

// DirectionRay converts an AoA estimate into a ray in the writing plane:
// starting at the array centre, at angle theta from the array axis
// (measured in the wall/writing plane).
func (a Array) DirectionRay(theta float64, plane geom.Plane) geom.Ray {
	c := a.Center()
	axis := a.Axis()
	// Build the in-plane normal to the axis (rotate the axis projection
	// by 90° in the (x, z) writing-plane coordinates).
	ax2 := geom.Vec2{X: axis.X, Z: axis.Z}
	n2 := geom.Vec2{X: -ax2.Z, Z: ax2.X}
	dir := ax2.Scale(math.Cos(theta)).Add(n2.Scale(math.Sin(theta)))
	return geom.Ray{Origin: plane.To2D(c), Dir: dir}
}

// BeamPattern evaluates a pair's normalised beam gain over a grid of
// writing-plane points for a given measured phase difference: exp(vote/2σ²)
// with σ in turns. It is used to regenerate the paper's Figs. 2–4.
func (p Pair) BeamPattern(points []geom.Vec2, plane geom.Plane, measuredTurns, sigmaTurns float64) []float64 {
	out := make([]float64, len(points))
	inv := 1 / (2 * sigmaTurns * sigmaTurns)
	for i, pt := range points {
		v := p.VoteFree(plane.To3D(pt), measuredTurns)
		out[i] = math.Exp(v * inv)
	}
	return out
}
