package antenna

import (
	"math"
	"math/rand"
	"testing"

	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
)

// TestNoiseRobustnessScalesWithSeparation verifies §3.3's Eq. 5: the same
// phase noise produces a cos θ error that shrinks linearly with the pair
// separation D. The paper's worked example: φn = π/5 gives 0.2 error in
// cos θ at D = λ/2 but only 0.0125 at D = 8λ (one-way).
func TestNoiseRobustnessScalesWithSeparation(t *testing.T) {
	phaseNoise := math.Pi / 5
	// cosθ error = (λ/D)·(φn/2π) for a one-way link (Eq. 5).
	cases := []struct {
		sepWavelengths float64
		wantErr        float64
	}{
		{0.5, 0.2},
		{8, 0.0125},
	}
	for _, tc := range cases {
		d := tc.sepWavelengths * lambda
		got := (lambda / d) * (phaseNoise / phys.TwoPi)
		if math.Abs(got-tc.wantErr) > 1e-9 {
			t.Errorf("D=%vλ: cosθ error %v, want %v (paper §3.3)", tc.sepWavelengths, got, tc.wantErr)
		}
	}
}

// TestWidePairAngleEstimateMoreNoiseRobust checks the same property
// empirically end-to-end: estimate the source's Δd-turns from noisy phase
// differences through a narrow and a wide pair and compare the induced
// *position-equivalent* error along the measurement axis.
func TestWidePairAngleEstimateMoreNoiseRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := geom.Vec3{X: 1.3, Y: 2, Z: 1.0}
	mk := func(sep float64) Pair {
		p, err := NewPair(
			Antenna{ID: 1, Pos: geom.Vec3{X: 1.3 - sep/2}},
			Antenna{ID: 2, Pos: geom.Vec3{X: 1.3 + sep/2}},
			carrier, phys.Backscatter)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	narrow := mk(lambda / 4)
	wide := mk(8 * lambda)
	// For each pair: perturb the phase difference by noise, then find
	// the x-displacement of the source that would explain the residual.
	residualX := func(p Pair) float64 {
		trueTurns := p.DeltaDistTurns(src)
		var sum float64
		const trials = 300
		for i := 0; i < trials; i++ {
			noisy := trueTurns + rng.NormFloat64()*0.05 // turns
			// Invert numerically: how far along x must the source move
			// for DeltaDistTurns to change by the noise amount?
			slope := (p.DeltaDistTurns(src.Add(geom.Vec3{X: 0.001})) - trueTurns) / 0.001
			if slope == 0 {
				t.Fatal("degenerate geometry")
			}
			dx := (noisy - trueTurns) / slope
			sum += math.Abs(dx)
		}
		return sum / trials
	}
	nErr := residualX(narrow)
	wErr := residualX(wide)
	if wErr >= nErr/10 {
		t.Fatalf("wide pair position noise %v should be ≫10× below narrow pair %v", wErr, nErr)
	}
}

// TestResolutionQuantization verifies §3.3's resolution claim: with phase
// quantization δ, the finest cos θ step is (λ/D)·(δ/2π), so the wide pair
// resolves finer angles.
func TestResolutionQuantization(t *testing.T) {
	delta := 2 * math.Pi / 4096 // a 12-bit phase readout
	q := func(sepWavelengths float64) float64 {
		return (1 / sepWavelengths) * (delta / phys.TwoPi)
	}
	if q(8) >= q(0.5) {
		t.Fatal("wider separation must quantize cosθ finer")
	}
	if ratio := q(0.5) / q(8); math.Abs(ratio-16) > 1e-9 {
		t.Fatalf("quantization ratio = %v, want 16 (linear in D)", ratio)
	}
}
