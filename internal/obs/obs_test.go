package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{999, 0},
		{1000, 0},
		{1001, 1},
		{2000, 1},
		{2001, 2},
		{4000, 2},
		{4001, 3},
		{int64(time.Millisecond), 10},
		{int64(time.Second), 20},
		{int64(67 * time.Second), NumBuckets},
		{int64(time.Hour), NumBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every index must respect its bound: value at the bound stays in
	// the bucket, value just past it moves up.
	for i := 0; i < NumBuckets; i++ {
		bound := int64(BucketBound(i) * 1e9)
		if got := bucketIndex(bound); got != i {
			t.Errorf("bucketIndex(bound %d) = %d, want %d", bound, got, i)
		}
		if got := bucketIndex(bound + 1); got != i+1 {
			t.Errorf("bucketIndex(bound+1 %d) = %d, want %d", bound+1, got, i+1)
		}
	}
}

func TestHistogramSnapshotCumulative(t *testing.T) {
	var h Histogram
	h.Observe(500, 0)                     // bucket 0
	h.Observe(1500, 1)                    // bucket 1
	h.Observe(int64(time.Millisecond), 2) // bucket 10
	h.Observe(int64(time.Hour), 3)        // +Inf
	snap := h.Snapshot()
	if snap.Count != 4 {
		t.Fatalf("count = %d, want 4", snap.Count)
	}
	if snap.Buckets[0] != 1 || snap.Buckets[1] != 2 || snap.Buckets[9] != 2 || snap.Buckets[10] != 3 {
		t.Fatalf("cumulative buckets wrong: %v", snap.Buckets)
	}
	if snap.Buckets[NumBuckets-1] != 3 {
		t.Fatalf("last finite bucket = %d, want 3 (hour sample only in +Inf)", snap.Buckets[NumBuckets-1])
	}
	for i := 1; i < NumBuckets; i++ {
		if snap.Buckets[i] < snap.Buckets[i-1] {
			t.Fatalf("bucket %d not monotone: %d < %d", i, snap.Buckets[i], snap.Buckets[i-1])
		}
	}
	wantSum := (500 + 1500 + float64(time.Millisecond) + float64(time.Hour)) * 1e-9
	if diff := snap.SumSeconds - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %g, want %g", snap.SumSeconds, wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(hint int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(i)*1000, hint)
			}
		}(w)
	}
	wg.Wait()
	if snap := h.Snapshot(); snap.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", snap.Count, workers*perWorker)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(int64(time.Millisecond), 0) // bucket 10: (512µs, 1024µs]
	}
	q := h.Snapshot().Quantile(0.99)
	if q < BucketBound(9) || q > BucketBound(10) {
		t.Fatalf("q99 = %g, want within (%g, %g]", q, BucketBound(9), BucketBound(10))
	}
	var empty Histogram
	if got := empty.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

func TestObserveZeroAllocs(t *testing.T) {
	var p Pipeline
	allocs := testing.AllocsPerRun(100, func() {
		now := Now()
		p.ObserveStage(StageIngest, now%1000, 1)
		p.ObserveStage(StageEmit, now%100000, 2)
		p.ObserveE2E(now%1000000, 3)
	})
	if allocs != 0 {
		t.Fatalf("observe path allocates %v allocs/op, want 0", allocs)
	}
}

func TestPipelineRender(t *testing.T) {
	var p Pipeline
	p.ObserveStage(StageWALAppend, 5000, 0)
	p.ObserveE2E(int64(2*time.Millisecond), 0)
	var buf bytes.Buffer
	p.Render(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE rfidrawd_stage_seconds histogram",
		`rfidrawd_stage_seconds_bucket{stage="wal_append",le="+Inf"} 1`,
		`rfidrawd_stage_seconds_count{stage="ingest"} 0`,
		"# TYPE rfidrawd_report_latency_seconds histogram",
		`rfidrawd_report_latency_seconds_bucket{le="+Inf"} 1`,
		"rfidrawd_report_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q\noutput:\n%s", want, out)
		}
	}
}

func TestSpanRingBounds(t *testing.T) {
	var r SpanRing
	for i := 0; i < SpanCapacity+10; i++ {
		r.Add(Span{Seq: uint64(i)})
	}
	spans := r.Snapshot()
	if len(spans) != SpanCapacity {
		t.Fatalf("retained %d spans, want %d", len(spans), SpanCapacity)
	}
	if spans[0].Seq != 10 || spans[len(spans)-1].Seq != SpanCapacity+9 {
		t.Fatalf("ring order wrong: first=%d last=%d", spans[0].Seq, spans[len(spans)-1].Seq)
	}
	if r.Total() != SpanCapacity+10 {
		t.Fatalf("total = %d, want %d", r.Total(), SpanCapacity+10)
	}
}

func TestTimelineBounds(t *testing.T) {
	var tl Timeline
	if _, ok := tl.Last(); ok {
		t.Fatal("empty timeline reported a last event")
	}
	for i := 0; i < TimelineCapacity+5; i++ {
		tl.Record(EventCreate, fmt.Sprintf("n=%d", i))
	}
	evs := tl.Snapshot()
	if len(evs) != TimelineCapacity {
		t.Fatalf("retained %d events, want %d", len(evs), TimelineCapacity)
	}
	if evs[0].Detail != "n=5" {
		t.Fatalf("oldest retained = %q, want n=5", evs[0].Detail)
	}
	last, ok := tl.Last()
	if !ok || last.Detail != fmt.Sprintf("n=%d", TimelineCapacity+4) {
		t.Fatalf("last = %+v ok=%v", last, ok)
	}
	if tl.Total() != TimelineCapacity+5 {
		t.Fatalf("total = %d", tl.Total())
	}
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for _, st := range Stages() {
		name := st.String()
		if name == "" || name == "unknown" {
			t.Fatalf("stage %d has bad name %q", st, name)
		}
		if seen[name] {
			t.Fatalf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage should be unknown")
	}
}

func TestBuildInfo(t *testing.T) {
	if BuildVersion() == "" {
		t.Fatal("empty build version")
	}
	if !strings.HasPrefix(GoVersion(), "go") {
		t.Fatalf("odd go version %q", GoVersion())
	}
	if StartTime.IsZero() {
		t.Fatal("zero start time")
	}
}
