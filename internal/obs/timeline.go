package obs

import (
	"sync"
	"time"
)

// TimelineEvent is one structured lifecycle or anomaly event on a
// session's diagnostic timeline.
type TimelineEvent struct {
	Wall   time.Time `json:"at"`
	Type   string    `json:"type"`
	Detail string    `json:"detail,omitempty"`
}

// Timeline event types. Kept as plain strings on the wire; these
// constants exist so producers and tests agree on spelling.
const (
	EventCreate       = "create"
	EventRecover      = "recover"
	EventPark         = "park"
	EventResume       = "resume"
	EventRetrace      = "retrace"
	EventWALRotate    = "wal_rotate"
	EventResync       = "resync"
	EventShed         = "shed"
	EventLeaderSwitch = "leader_switch"
	EventTierChange   = "tier_change"
)

// TimelineCapacity bounds each session's event ring.
const TimelineCapacity = 128

// Timeline is a bounded ring of diagnostic events. Producers are
// lifecycle paths (not per-report), so a mutex is fine.
type Timeline struct {
	mu     sync.Mutex
	events [TimelineCapacity]TimelineEvent
	next   int
	total  uint64
}

// Record appends an event, evicting the oldest when full.
func (t *Timeline) Record(typ, detail string) {
	t.mu.Lock()
	t.events[t.next%TimelineCapacity] = TimelineEvent{Wall: time.Now(), Type: typ, Detail: detail}
	t.next++
	t.total++
	t.mu.Unlock()
}

// Snapshot returns the retained events, oldest first.
func (t *Timeline) Snapshot() []TimelineEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if n > TimelineCapacity {
		n = TimelineCapacity
	}
	out := make([]TimelineEvent, 0, n)
	start := t.next - n
	for i := start; i < t.next; i++ {
		out = append(out, t.events[i%TimelineCapacity])
	}
	return out
}

// Total counts every event ever recorded, including evicted ones.
func (t *Timeline) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Last returns the most recent event and true, or false when empty.
func (t *Timeline) Last() (TimelineEvent, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next == 0 {
		return TimelineEvent{}, false
	}
	return t.events[(t.next-1)%TimelineCapacity], true
}
