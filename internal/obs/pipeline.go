package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
)

// Pipeline holds the daemon-wide stage histograms plus the end-to-end
// report latency histogram. One Pipeline is shared by every session in a
// registry; stampers pass a stripe hint to spread contention.
type Pipeline struct {
	stages [NumStages]Histogram
	e2e    Histogram
	// Burst fan-in accounting: how many ingest bursts the pumps consumed
	// and how many reports they carried, so the average burst size the
	// gateway achieves under a given load is observable. One atomic add
	// per burst (not per report), so no striping is needed.
	bursts       atomic.Int64
	burstReports atomic.Int64
}

// ObserveBurst records one consumed ingest burst of n reports.
func (p *Pipeline) ObserveBurst(n int) {
	p.bursts.Add(1)
	p.burstReports.Add(int64(n))
}

// BurstSnapshot returns the cumulative burst count and the reports those
// bursts carried.
func (p *Pipeline) BurstSnapshot() (bursts, reports int64) {
	return p.bursts.Load(), p.burstReports.Load()
}

// ObserveStage records one duration for a pipeline stage.
func (p *Pipeline) ObserveStage(st Stage, ns int64, hint int) {
	p.stages[st].Observe(ns, hint)
}

// ObserveE2E records one decode-to-emit end-to-end latency.
func (p *Pipeline) ObserveE2E(ns int64, hint int) {
	p.e2e.Observe(ns, hint)
}

// StageSnapshot returns the merged snapshot for one stage.
func (p *Pipeline) StageSnapshot(st Stage) HistogramSnapshot {
	return p.stages[st].Snapshot()
}

// E2ESnapshot returns the merged end-to-end snapshot.
func (p *Pipeline) E2ESnapshot() HistogramSnapshot {
	return p.e2e.Snapshot()
}

// boundLabel formats a bucket upper bound the way Prometheus clients
// expect (shortest float that round-trips).
func boundLabel(i int) string {
	return strconv.FormatFloat(BucketBound(i), 'g', -1, 64)
}

// writeHistogram emits one labeled histogram series (buckets, sum,
// count) in exposition format. extraLabel is rendered inside every
// brace pair when non-empty, e.g. `stage="ingest"`.
func writeHistogram(w io.Writer, name, extraLabel string, snap HistogramSnapshot) {
	sep := ""
	if extraLabel != "" {
		sep = ","
	}
	for i := 0; i < NumBuckets; i++ {
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, extraLabel, sep, boundLabel(i), snap.Buckets[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, extraLabel, sep, snap.Count)
	if extraLabel == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, snap.SumSeconds)
		fmt.Fprintf(w, "%s_count %d\n", name, snap.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, extraLabel, snap.SumSeconds)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, extraLabel, snap.Count)
	}
}

// Render writes the pipeline's histogram families in Prometheus text
// exposition format 0.0.4.
func (p *Pipeline) Render(w io.Writer) {
	fmt.Fprintf(w, "# HELP rfidrawd_stage_seconds Per-stage report latency inside the serving pipeline.\n")
	fmt.Fprintf(w, "# TYPE rfidrawd_stage_seconds histogram\n")
	for _, st := range Stages() {
		writeHistogram(w, "rfidrawd_stage_seconds", `stage="`+st.String()+`"`, p.StageSnapshot(st))
	}
	fmt.Fprintf(w, "# HELP rfidrawd_report_latency_seconds End-to-end report latency from ingest decode to trace-point emit.\n")
	fmt.Fprintf(w, "# TYPE rfidrawd_report_latency_seconds histogram\n")
	writeHistogram(w, "rfidrawd_report_latency_seconds", "", p.E2ESnapshot())
	bursts, burstReports := p.BurstSnapshot()
	fmt.Fprintf(w, "# HELP rfidrawd_ingest_bursts_total Ingest bursts consumed by session pumps.\n")
	fmt.Fprintf(w, "# TYPE rfidrawd_ingest_bursts_total counter\n")
	fmt.Fprintf(w, "rfidrawd_ingest_bursts_total %d\n", bursts)
	fmt.Fprintf(w, "# HELP rfidrawd_ingest_burst_reports_total Reports carried inside ingest bursts.\n")
	fmt.Fprintf(w, "# TYPE rfidrawd_ingest_burst_reports_total counter\n")
	fmt.Fprintf(w, "rfidrawd_ingest_burst_reports_total %d\n", burstReports)
}
