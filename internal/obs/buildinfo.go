package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// Version can be overridden at link time:
//
//	go build -ldflags "-X rfidraw/internal/obs.Version=v1.2.3"
//
// When left empty, BuildVersion falls back to the module version
// recorded by the toolchain, or "devel".
var Version string

// StartTime is the process start instant, exported as
// rfidrawd_process_start_time_seconds.
var StartTime = time.Now()

// BuildVersion resolves the daemon's version string.
func BuildVersion() string {
	if Version != "" {
		return Version
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// GoVersion reports the toolchain that built the binary.
func GoVersion() string { return runtime.Version() }
