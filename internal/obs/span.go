package obs

import "sync"

// Span is a full stage-by-stage trace of a single sampled report. Stage
// durations are nanoseconds; Wall is the report's wall-clock arrival in
// Unix nanoseconds so spans from different sessions can be correlated.
//
// Arrival/Release are monotonic stamps used while the span is open; the
// exported duration fields are filled as the report crosses each stage.
type Span struct {
	Seq       uint64 `json:"seq"`
	T         int64  `json:"t_ns"`
	Wall      int64  `json:"wall_ns"`
	IngestNs  int64  `json:"ingest_ns"`
	ReorderNs int64  `json:"reorder_ns"`
	WALNs     int64  `json:"wal_ns"`
	OfferNs   int64  `json:"offer_ns"`
	EmitNs    int64  `json:"emit_ns"`
	TotalNs   int64  `json:"total_ns"`

	// Arrival and Release carry the open span's monotonic stamps; they
	// are bookkeeping, not part of the dumped trace.
	Arrival int64 `json:"-"`
	Release int64 `json:"-"`
}

// SpanCapacity bounds each session's sampled-span ring.
const SpanCapacity = 256

// SpanRing is a bounded ring of completed spans. Writers run on the
// sampled (slow) path, so a mutex is fine here.
type SpanRing struct {
	mu    sync.Mutex
	spans [SpanCapacity]Span
	next  int
	total uint64
}

// Add appends a completed span, evicting the oldest when full.
func (r *SpanRing) Add(s Span) {
	r.mu.Lock()
	r.spans[r.next%SpanCapacity] = s
	r.next++
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (r *SpanRing) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if n > SpanCapacity {
		n = SpanCapacity
	}
	out := make([]Span, 0, n)
	start := r.next - n
	for i := start; i < r.next; i++ {
		out = append(out, r.spans[i%SpanCapacity])
	}
	return out
}

// Total counts every span ever recorded, including evicted ones.
func (r *SpanRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
