// Package obs is the daemon's always-on observability core: fixed
// exponential-bucket latency histograms built from per-stripe atomic
// counters (zero allocations on the stamping hot path), sampled
// stage-by-stage report spans, bounded per-session diagnostic timelines,
// and the process build identity.
//
// The serving layer stamps every report as it moves through the
// pipeline — ingest decode, reorder release, WAL append, engine offer,
// trace-point emit, subscriber write — and each stamp pair lands in a
// Stage histogram; the decode→emit distance lands in the end-to-end
// histogram. Everything here is wait-free on the write side: a stamp is
// two monotonic clock reads and a handful of atomic adds, so the
// instrumentation can stay on permanently at full ingest rate (gated in
// CI by BenchmarkObsStamp at 0 allocs/op).
package obs

import "time"

// base anchors the package's monotonic clock. All Now values are
// nanoseconds since process start, strictly for computing durations —
// never wall time.
var base = time.Now()

// Now returns the monotonic clock in nanoseconds since process start.
// It allocates nothing (time.Since reads the runtime's monotonic clock).
func Now() int64 { return int64(time.Since(base)) }

// Stage names one pipeline segment between two report stamps.
type Stage uint8

const (
	// StageIngest is decode-to-pump: from the ingest gateway decoding a
	// report off the wire to the session pump dequeuing it (inbox wait).
	StageIngest Stage = iota
	// StageReorder is the report's residency in the cross-reader
	// resequencing heap (the hold window plus heap churn).
	StageReorder
	// StageWALAppend is the synchronous write of the report into the
	// session's write-ahead log.
	StageWALAppend
	// StageEngineOffer is the synchronous hand-off into the tracking
	// engine (shard dispatch).
	StageEngineOffer
	// StageEmit is from reorder release to the trace point reaching the
	// subscriber queues: the engine's compute latency plus the broadcast.
	StageEmit
	// StageWrite is from subscriber enqueue to the HTTP stream handler
	// encoding the event onto the wire.
	StageWrite

	// NumStages counts the pipeline segments.
	NumStages = int(StageWrite) + 1
)

// stageNames are the Prometheus label values, index-aligned with the
// Stage constants.
var stageNames = [NumStages]string{
	"ingest", "reorder", "wal_append", "engine_offer", "emit", "write",
}

// String returns the stage's metric label.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every stage in pipeline order (for rendering and tests).
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}
