package obs

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the number of finite histogram buckets. Bucket i has an
// upper bound of 1µs·2^i, so the finite range spans 1µs to ~67s; samples
// beyond that land only in the implicit +Inf bucket.
const NumBuckets = 26

// NumStripes spreads the atomic counters across independent cache lines
// so concurrent stampers (ingest pumps, engine shards, stream writers)
// don't serialize on one set of words.
const NumStripes = 4

// BucketBound returns bucket i's upper bound in seconds.
func BucketBound(i int) float64 {
	return float64(uint64(1)<<uint(i)) * 1e-6
}

// bucketIndex maps a duration in nanoseconds to its bucket, or
// NumBuckets for the +Inf overflow slot. Bounds are inclusive
// (Prometheus `le` semantics): 1000ns → bucket 0, 1001ns → bucket 1.
func bucketIndex(ns int64) int {
	if ns <= 1000 {
		return 0
	}
	idx := bits.Len64(uint64(ns-1) / 1000)
	if idx > NumBuckets {
		return NumBuckets
	}
	return idx
}

// stripe is one independent copy of the bucket counters, padded to keep
// neighbouring stripes out of each other's cache lines.
type stripe struct {
	counts [NumBuckets + 1]atomic.Uint64
	sumNs  atomic.Int64
	_      [64]byte
}

// Histogram is a fixed exponential-bucket latency histogram. The zero
// value is ready to use. Observe is wait-free and allocation-free.
type Histogram struct {
	stripes [NumStripes]stripe
}

// Observe records one duration. hint selects the counter stripe — pass
// any stable small integer (shard ID, session stripe) to spread
// contention; it does not need to be bounded.
func (h *Histogram) Observe(ns int64, hint int) {
	if ns < 0 {
		ns = 0
	}
	s := &h.stripes[uint(hint)%NumStripes]
	s.counts[bucketIndex(ns)].Add(1)
	s.sumNs.Add(ns)
}

// HistogramSnapshot is a merged, cumulative view of a Histogram, shaped
// for Prometheus exposition: Buckets[i] counts samples ≤ BucketBound(i),
// Count includes the +Inf overflow, SumSeconds is the total observed time.
type HistogramSnapshot struct {
	Buckets    [NumBuckets]uint64
	Count      uint64
	SumSeconds float64
}

// Snapshot merges the stripes into cumulative bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var raw [NumBuckets + 1]uint64
	var sumNs int64
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := range raw {
			raw[b] += s.counts[b].Load()
		}
		sumNs += s.sumNs.Load()
	}
	var snap HistogramSnapshot
	var cum uint64
	for b := 0; b < NumBuckets; b++ {
		cum += raw[b]
		snap.Buckets[b] = cum
	}
	snap.Count = cum + raw[NumBuckets]
	snap.SumSeconds = float64(sumNs) * 1e-9
	return snap
}

// Quantile returns an interpolated quantile (q in [0,1]) in seconds from
// the snapshot, using the same linear-within-bucket estimate Prometheus
// applies to histogram_quantile. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var prevCum uint64
	for b := 0; b < NumBuckets; b++ {
		cum := s.Buckets[b]
		if float64(cum) >= rank {
			lower := 0.0
			if b > 0 {
				lower = BucketBound(b - 1)
			}
			upper := BucketBound(b)
			inBucket := float64(cum - prevCum)
			if inBucket == 0 {
				return upper
			}
			return lower + (upper-lower)*((rank-float64(prevCum))/inBucket)
		}
		prevCum = cum
	}
	// Rank falls in +Inf: clamp to the largest finite bound.
	return BucketBound(NumBuckets - 1)
}
