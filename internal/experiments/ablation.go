package experiments

import (
	"fmt"
	"strings"

	"rfidraw/internal/baseline"
	"rfidraw/internal/core"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/sim"
	"rfidraw/internal/stats"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
)

// AblationReport quantifies the design choices DESIGN.md §5 calls out,
// each isolated on the same simulated workload: the coarse filter, lobe
// locking, trajectory-vote candidate selection, and the near-field
// baseline strengthening.
type AblationReport struct {
	// CoarseFilterErr / WideOnlyErr: median one-shot localization error
	// (m) with and without the stage-1 coarse filter.
	CoarseFilterErr, WideOnlyErr float64
	// LockedErr / PerSampleErr: median trajectory shape error (m) with
	// lobe locking vs re-localizing every sample independently.
	LockedErr, PerSampleErr float64
	// VoteSelectErr / FirstCandErr: median initial-position error (m)
	// when candidates are ranked by trajectory vote vs taking the
	// single best stage-vote candidate.
	VoteSelectErr, FirstCandErr float64
	// FarFieldBLErr / NearFieldBLErr: the baseline's median *absolute*
	// position error (m) as published (far-field rays) vs with the
	// strengthened near-field solver. Absolute error is where the
	// far-field approximation costs; mean-aligned shape error hides it.
	FarFieldBLErr, NearFieldBLErr float64
	// Trials is the number of words behind each statistic.
	Trials int
}

// RunAblations executes all ablations over `trials` simulated words.
func RunAblations(trials int, seed int64) (*AblationReport, error) {
	if trials <= 0 {
		trials = 8
	}
	rep := &AblationReport{Trials: trials}
	var (
		coarseErrs, wideErrs   []float64
		lockedErrs, sampleErrs []float64
		voteSelErrs, firstErrs []float64
		farBLErrs, nearBLErrs  []float64
	)
	words := []string{"on", "go", "play", "clear", "house", "word", "train", "light", "sound", "paper"}
	for trial := 0; trial < trials; trial++ {
		text := words[trial%len(words)]
		sc, err := sim.New(sim.Config{Seed: seed + int64(trial)*131, Distance: []float64{2, 3, 5}[trial%3]})
		if err != nil {
			return nil, err
		}
		wr, err := sc.RunWord(text, geom.Vec2{X: 0.7, Z: 1.0}, handwriting.DefaultStyle())
		if err != nil {
			return nil, err
		}
		truthStart := wr.Truth.Start()
		steady := wr.SamplesRF[len(wr.SamplesRF)/2]

		// 1. Coarse filter ablation: one-shot localization. Dense search:
		// the wide-only arm's stage-1 surface is a field of aliased
		// ridges — the exact ambiguity this ablation quantifies — which
		// violates the hierarchical search's peak-concentration
		// assumption; the ablation must measure the algorithm, not the
		// search heuristic.
		vcfg := vote.Config{
			Plane: sc.Plane, Region: sc.Region, CandidateCount: 4,
			Search: vote.SearchConfig{Mode: vote.SearchDense},
		}
		full, err := vote.NewPositioner(sc.RFIDraw.Stage1Pairs(), sc.RFIDraw.WidePairs, vcfg)
		if err != nil {
			return nil, err
		}
		wideOnly, err := vote.NewPositioner(sc.RFIDraw.WidePairs, sc.RFIDraw.WidePairs, vcfg)
		if err != nil {
			return nil, err
		}
		truthMid, err := wr.Truth.At(steady.T)
		if err != nil {
			return nil, err
		}
		if cf, err := full.Candidates(steady.Phase); err == nil && len(cf) > 0 {
			coarseErrs = append(coarseErrs, cf[0].Pos.Dist(truthMid))
		}
		if cw, err := wideOnly.Candidates(steady.Phase); err == nil && len(cw) > 0 {
			wideErrs = append(wideErrs, cw[0].Pos.Dist(truthMid))
		}

		// 2. Lobe locking ablation + 3. vote selection ablation.
		sys, err := core.NewSystem(sc.RFIDraw, core.Config{Plane: sc.Plane, Region: sc.Region})
		if err != nil {
			return nil, err
		}
		res, err := sys.Trace(wr.SamplesRF)
		if err == nil {
			if med, err := traj.MedianError(wr.Truth, res.Best.Trajectory, traj.AlignInitial, 64); err == nil {
				lockedErrs = append(lockedErrs, med)
			}
			voteSelErrs = append(voteSelErrs, res.InitialPosition().Dist(truthStart))
			// "First candidate" = highest stage-vote score, i.e. what the
			// system would pick without trajectory-vote refinement.
			firstErrs = append(firstErrs, res.Candidates[0].Pos.Dist(truthStart))
		}
		var perSample []traj.Point
		for _, s := range wr.SamplesRF {
			if cands, err := sys.Localize(s.Phase); err == nil && len(cands) > 0 {
				perSample = append(perSample, traj.Point{T: s.T, Pos: cands[0].Pos})
			}
		}
		if len(perSample) > 1 {
			if med, err := traj.MedianError(wr.Truth, traj.Trajectory{Points: perSample}, traj.AlignInitial, 64); err == nil {
				sampleErrs = append(sampleErrs, med)
			}
		}

		// 4. Baseline strengthening ablation.
		for _, nearField := range []bool{false, true} {
			bl, err := baseline.New(sc.Baseline, baseline.Config{Plane: sc.Plane, Region: sc.Region, NearField: nearField})
			if err != nil {
				return nil, err
			}
			tr, err := bl.Trace(wr.SamplesBL)
			if err != nil {
				continue
			}
			// Absolute error: unaligned point-by-point distance.
			med, err := traj.MedianError(wr.Truth, tr, traj.AlignNone, 64)
			if err != nil {
				continue
			}
			if nearField {
				nearBLErrs = append(nearBLErrs, med)
			} else {
				farBLErrs = append(farBLErrs, med)
			}
		}
	}
	rep.CoarseFilterErr = stats.Median(coarseErrs)
	rep.WideOnlyErr = stats.Median(wideErrs)
	rep.LockedErr = stats.Median(lockedErrs)
	rep.PerSampleErr = stats.Median(sampleErrs)
	rep.VoteSelectErr = stats.Median(voteSelErrs)
	rep.FirstCandErr = stats.Median(firstErrs)
	rep.FarFieldBLErr = stats.Median(farBLErrs)
	rep.NearFieldBLErr = stats.Median(nearBLErrs)
	return rep, nil
}

// Render formats the report.
func (r *AblationReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (%d words, medians)\n", r.Trials)
	rows := [][]string{
		{"coarse filter (§3.5)", cm(r.CoarseFilterErr), cm(r.WideOnlyErr), "one-shot localization error, with filter vs wide pairs only"},
		{"lobe locking (§5.2)", cm(r.LockedErr), cm(r.PerSampleErr), "trajectory shape error, locked tracing vs per-sample re-voting"},
		{"vote selection (§5.2)", cm(r.VoteSelectErr), cm(r.FirstCandErr), "initial-position error, trajectory-vote pick vs best stage vote"},
		{"baseline solver", cm(r.FarFieldBLErr), cm(r.NearFieldBLErr), "baseline absolute error, far-field (published) vs near-field"},
	}
	b.WriteString(stats.Table([]string{"design choice", "with", "without/variant", "metric"}, rows))
	return b.String()
}

func cm(m float64) string { return fmt.Sprintf("%.1f cm", m*100) }
