package experiments

import (
	"strings"
	"testing"
)

func TestRunAblations(t *testing.T) {
	rep, err := RunAblations(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 3 {
		t.Fatalf("trials = %d", rep.Trials)
	}
	// The coarse filter must help one-shot localization.
	if rep.CoarseFilterErr >= rep.WideOnlyErr {
		t.Fatalf("coarse filter should help: %.3f vs %.3f", rep.CoarseFilterErr, rep.WideOnlyErr)
	}
	// Lobe locking must beat per-sample re-voting on shape.
	if rep.LockedErr >= rep.PerSampleErr {
		t.Fatalf("lobe locking should help: %.3f vs %.3f", rep.LockedErr, rep.PerSampleErr)
	}
	// The vote-refined initial position is at least as good as the raw
	// best-stage-vote candidate.
	if rep.VoteSelectErr > rep.FirstCandErr+1e-9 {
		t.Fatalf("vote selection should not hurt: %.3f vs %.3f", rep.VoteSelectErr, rep.FirstCandErr)
	}
	out := rep.Render()
	if !strings.Contains(out, "coarse filter") || !strings.Contains(out, "lobe locking") {
		t.Fatalf("render incomplete:\n%s", out)
	}
	// Defaulted trials.
	if rep2, err := RunAblations(0, 7); err != nil || rep2.Trials <= 0 {
		t.Fatalf("default trials: %+v err=%v", rep2, err)
	}
}
