// Package experiments regenerates every figure of the paper's evaluation
// (§7–§9) against the simulated testbed: trajectory-error CDFs, initial
// position CDFs, error coupling, character/word recognition rates, beam
// pattern illustrations and the microbenchmark. Each figure has a Run
// function returning a report that renders to text and CSV.
package experiments

import (
	"fmt"
	"math/rand"

	"rfidraw/internal/baseline"
	"rfidraw/internal/core"
	"rfidraw/internal/corpus"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/recognition"
	"rfidraw/internal/sim"
	"rfidraw/internal/stats"
	"rfidraw/internal/traj"
)

// BatchConfig drives the shared word-writing experiment behind Figs.
// 11–15: users write words sampled from the corpus at several distances,
// and both systems reconstruct every trace.
type BatchConfig struct {
	// Prop is the propagation condition (LOS or NLOS).
	Prop sim.Propagation
	// Words is the number of words to write (the paper uses 150).
	Words int
	// Users is the number of distinct user styles (the paper uses 5).
	Users int
	// Distances are the user-to-wall distances cycled through (§8 uses
	// 2–5 m). Defaults to {2, 3, 5}.
	Distances []float64
	// Seed drives all randomness.
	Seed int64
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.Words <= 0 {
		c.Words = 30
	}
	if c.Users <= 0 {
		c.Users = 5
	}
	if len(c.Distances) == 0 {
		c.Distances = []float64{2, 3, 5}
	}
	return c
}

// WordOutcome is everything measured for one written word.
type WordOutcome struct {
	Text     string
	User     int
	Distance float64

	// TrajErrRF is RF-IDraw's median point error after removing the
	// initial-position offset (§8.1's metric), in metres.
	TrajErrRF float64
	// TrajErrBL is the baseline's median point error after removing the
	// mean offset (the metric favourable to it), in metres.
	TrajErrBL float64
	// InitErrRF / InitErrBL are the absolute initial-position errors.
	InitErrRF float64
	InitErrBL float64

	// Character recognition tallies (per letter).
	CharsTotal int
	CharsOKRF  int
	CharsOKBL  int
	// Word recognition outcomes (after dictionary correction).
	WordOKRF bool
	WordOKBL bool

	// FailedRF / FailedBL record reconstruction failures (excluded from
	// error statistics but reported).
	FailedRF bool
	FailedBL bool
}

// BatchResult aggregates a full word batch.
type BatchResult struct {
	Config   BatchConfig
	Outcomes []WordOutcome
}

// RunBatch executes the shared word-writing experiment.
func RunBatch(cfg BatchConfig) (*BatchResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	words, err := corpus.Sample(rng, cfg.Words)
	if err != nil {
		return nil, err
	}
	rng.Shuffle(len(words), func(i, j int) { words[i], words[j] = words[j], words[i] })

	styles := make([]handwriting.Style, cfg.Users)
	for i := range styles {
		styles[i] = handwriting.RandomStyle(rng)
	}
	rec, err := recognition.New(corpus.All())
	if err != nil {
		return nil, err
	}

	res := &BatchResult{Config: cfg}
	for wi, text := range words {
		user := wi % cfg.Users
		dist := cfg.Distances[wi%len(cfg.Distances)]
		out, err := runOneWord(text, user, dist, cfg.Prop, cfg.Seed+int64(wi)*7919, styles[user], rec)
		if err != nil {
			return nil, fmt.Errorf("experiments: word %q: %w", text, err)
		}
		res.Outcomes = append(res.Outcomes, out)
	}
	return res, nil
}

// runOneWord simulates one written word and evaluates both systems on it.
func runOneWord(text string, user int, dist float64, prop sim.Propagation, seed int64, style handwriting.Style, rec *recognition.Recognizer) (WordOutcome, error) {
	out := WordOutcome{Text: text, User: user, Distance: dist}
	sc, err := sim.New(sim.Config{Prop: prop, Distance: dist, Seed: seed})
	if err != nil {
		return out, err
	}
	// Place the word so it fits inside the region with margin.
	width := float64(len(text)) * style.LetterHeightM * 1.1
	maxX := sc.Region.Max.X - width - 0.3
	if maxX < sc.Region.Min.X+0.3 {
		maxX = sc.Region.Min.X + 0.3
	}
	start := geom.Vec2{
		X: sc.Region.Min.X + 0.3 + sc.RNG().Float64()*(maxX-sc.Region.Min.X-0.3),
		Z: 0.8 + sc.RNG().Float64()*0.5,
	}
	wr, err := sc.RunWord(text, start, style)
	if err != nil {
		return out, err
	}
	truthStart := wr.Truth.Start()

	// RF-IDraw reconstruction.
	sys, err := core.NewSystem(sc.RFIDraw, core.Config{Plane: sc.Plane, Region: sc.Region})
	if err != nil {
		return out, err
	}
	rfRes, err := sys.Trace(wr.SamplesRF)
	if err != nil {
		out.FailedRF = true
	} else {
		rep, err := traj.Compare(wr.Truth, rfRes.Best.Trajectory, traj.AlignInitial, 128)
		if err != nil {
			out.FailedRF = true
		} else {
			out.TrajErrRF = stats.Median(rep.PointErrors)
			out.InitErrRF = rfRes.InitialPosition().Dist(truthStart)
			// Recognition on the shape-corrected reconstruction: shift
			// by the initial offset like Fig. 10e, then classify.
			shifted := rfRes.Best.Trajectory.Shift(rep.Offset.Scale(-1))
			scoreRecognition(rec, shifted, wr, &out.CharsTotal, &out.CharsOKRF, &out.WordOKRF)
		}
	}

	// Baseline reconstruction.
	bl, err := baseline.New(sc.Baseline, baseline.Config{Plane: sc.Plane, Region: sc.Region})
	if err != nil {
		return out, err
	}
	blTraj, err := bl.Trace(wr.SamplesBL)
	if err != nil {
		out.FailedBL = true
	} else {
		rep, err := traj.Compare(wr.Truth, blTraj, traj.AlignMean, 128)
		if err != nil {
			out.FailedBL = true
		} else {
			out.TrajErrBL = stats.Median(rep.PointErrors)
			out.InitErrBL = blTraj.Start().Dist(truthStart)
			shifted := blTraj.Shift(rep.Offset.Scale(-1))
			var blTotal int
			scoreRecognition(rec, shifted, wr, &blTotal, &out.CharsOKBL, &out.WordOKBL)
			if out.CharsTotal == 0 {
				out.CharsTotal = blTotal
			}
		}
	}
	return out, nil
}

// scoreRecognition classifies each letter of a reconstructed trajectory
// and the whole word. The trajectory is smoothed first, as the prototype's
// pipeline does before emitting touch events.
func scoreRecognition(rec *recognition.Recognizer, t traj.Trajectory, wr *sim.WordRun, total, okChars *int, okWord *bool) {
	t = t.Smooth(3)
	*total = 0
	*okChars = 0
	for _, span := range wr.Word.Letters {
		pts, err := handwriting.LetterPositions(t, span, recognition.TemplatePoints)
		if err != nil {
			continue
		}
		c, err := rec.Classify(pts)
		if err != nil {
			continue
		}
		*total++
		if c.Rune == span.Rune {
			*okChars++
		}
	}
	_, ok, err := rec.RecognizeWord(t, wr.Word.Letters, wr.Word.Text)
	*okWord = err == nil && ok
}

// TrajErrors returns both systems' per-word trajectory errors (metres),
// excluding failures.
func (r *BatchResult) TrajErrors() (rf, bl []float64) {
	for _, o := range r.Outcomes {
		if !o.FailedRF {
			rf = append(rf, o.TrajErrRF)
		}
		if !o.FailedBL {
			bl = append(bl, o.TrajErrBL)
		}
	}
	return rf, bl
}

// InitErrors returns both systems' initial-position errors (metres).
func (r *BatchResult) InitErrors() (rf, bl []float64) {
	for _, o := range r.Outcomes {
		if !o.FailedRF {
			rf = append(rf, o.InitErrRF)
		}
		if !o.FailedBL {
			bl = append(bl, o.InitErrBL)
		}
	}
	return rf, bl
}

// CharRates returns character recognition rates per distance for both
// systems.
func (r *BatchResult) CharRates() map[float64]*DistanceRates {
	out := map[float64]*DistanceRates{}
	for _, o := range r.Outcomes {
		dr, ok := out[o.Distance]
		if !ok {
			dr = &DistanceRates{Distance: o.Distance}
			out[o.Distance] = dr
		}
		if !o.FailedRF {
			dr.RF.Success += o.CharsOKRF
			dr.RF.Total += o.CharsTotal
		}
		if !o.FailedBL {
			dr.BL.Success += o.CharsOKBL
			dr.BL.Total += o.CharsTotal
		}
	}
	return out
}

// DistanceRates carries per-distance character recognition tallies.
type DistanceRates struct {
	Distance float64
	RF, BL   stats.Rate
}

// WordRatesByLength returns word recognition rates bucketed by word length
// (lengths ≥ maxLen collapse, as Fig. 15 groups "≥6").
func (r *BatchResult) WordRatesByLength(maxLen int) map[int]*LengthRates {
	out := map[int]*LengthRates{}
	for _, o := range r.Outcomes {
		l := len(o.Text)
		if l > maxLen {
			l = maxLen
		}
		lr, ok := out[l]
		if !ok {
			lr = &LengthRates{Length: l}
			out[l] = lr
		}
		if !o.FailedRF {
			lr.RF.Add(o.WordOKRF)
		}
		if !o.FailedBL {
			lr.BL.Add(o.WordOKBL)
		}
	}
	return out
}

// LengthRates carries per-word-length recognition tallies.
type LengthRates struct {
	Length int
	RF, BL stats.Rate
}
