package experiments

import (
	"math"
	"testing"

	"rfidraw/internal/geom"
	"rfidraw/internal/sim"
	"rfidraw/internal/stats"
	"rfidraw/internal/vote"
)

func TestBatchConfigDefaults(t *testing.T) {
	cfg := BatchConfig{}.withDefaults()
	if cfg.Words <= 0 || cfg.Users <= 0 || len(cfg.Distances) == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestBatchOutcomeCoverage(t *testing.T) {
	res, err := RunBatch(BatchConfig{Prop: sim.LOS, Words: 6, Users: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 6 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	users := map[int]bool{}
	dists := map[float64]bool{}
	for _, o := range res.Outcomes {
		users[o.User] = true
		dists[o.Distance] = true
		if o.Text == "" {
			t.Fatal("empty word")
		}
		if !o.FailedRF && o.TrajErrRF < 0 {
			t.Fatal("negative error")
		}
		if !o.FailedRF && o.CharsTotal == 0 {
			t.Fatalf("word %q has no character tallies", o.Text)
		}
	}
	if len(users) != 2 {
		t.Fatalf("users covered = %v", users)
	}
	if len(dists) != 3 {
		t.Fatalf("distances covered = %v", dists)
	}
}

func TestBatchAccessorsExcludeFailures(t *testing.T) {
	res := &BatchResult{Outcomes: []WordOutcome{
		{TrajErrRF: 0.01, TrajErrBL: 0.1, InitErrRF: 0.02, InitErrBL: 0.3},
		{FailedRF: true, TrajErrBL: 0.2, InitErrBL: 0.4},
		{FailedBL: true, TrajErrRF: 0.03, InitErrRF: 0.04},
	}}
	rf, bl := res.TrajErrors()
	if len(rf) != 2 || len(bl) != 2 {
		t.Fatalf("traj errors = %d/%d", len(rf), len(bl))
	}
	irf, ibl := res.InitErrors()
	if len(irf) != 2 || len(ibl) != 2 {
		t.Fatalf("init errors = %d/%d", len(irf), len(ibl))
	}
}

func TestCharRatesGrouping(t *testing.T) {
	res := &BatchResult{Outcomes: []WordOutcome{
		{Distance: 2, CharsTotal: 5, CharsOKRF: 5, CharsOKBL: 1},
		{Distance: 2, CharsTotal: 5, CharsOKRF: 4, CharsOKBL: 0},
		{Distance: 5, CharsTotal: 3, CharsOKRF: 2, CharsOKBL: 0},
		{Distance: 5, FailedRF: true, FailedBL: true, CharsTotal: 4},
	}}
	rates := res.CharRates()
	if len(rates) != 2 {
		t.Fatalf("distance groups = %d", len(rates))
	}
	d2 := rates[2.0]
	if d2.RF.Success != 9 || d2.RF.Total != 10 {
		t.Fatalf("d2 RF = %+v", d2.RF)
	}
	if d2.BL.Success != 1 {
		t.Fatalf("d2 BL = %+v", d2.BL)
	}
	d5 := rates[5.0]
	// The failed word contributes nothing.
	if d5.RF.Total != 3 {
		t.Fatalf("d5 RF total = %d", d5.RF.Total)
	}
}

func TestWordRatesByLength(t *testing.T) {
	res := &BatchResult{Outcomes: []WordOutcome{
		{Text: "go", WordOKRF: true},
		{Text: "play", WordOKRF: true, WordOKBL: false},
		{Text: "playing", WordOKRF: false},
		{Text: "station", WordOKRF: true},
	}}
	rates := res.WordRatesByLength(6)
	if rates[2].RF.Success != 1 || rates[2].RF.Total != 1 {
		t.Fatalf("len2 = %+v", rates[2].RF)
	}
	if rates[4].RF.Total != 1 {
		t.Fatalf("len4 = %+v", rates[4].RF)
	}
	// 7-letter words collapse into the ≥6 bucket.
	if rates[6].RF.Total != 2 || rates[6].RF.Success != 1 {
		t.Fatalf("len6 = %+v", rates[6].RF)
	}
}

func TestCDFReportMath(t *testing.T) {
	r := &CDFReport{
		Title: "test", Prop: sim.LOS,
		RF: []float64{0.01, 0.02, 0.03},
		BL: []float64{0.1, 0.2, 0.3},
	}
	rf, bl := r.Summary()
	if rf.Median != 0.02 || bl.Median != 0.2 {
		t.Fatalf("medians = %v / %v", rf.Median, bl.Median)
	}
	if got := r.Improvement(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("improvement = %v", got)
	}
	headers, rows := r.CDFPoints(8)
	if len(headers) != 4 || len(rows) != 8 {
		t.Fatalf("points = %d×%d", len(rows), len(headers))
	}
	// Probabilities are monotone.
	for i := 1; i < len(rows); i++ {
		if rows[i][1] < rows[i-1][1] || rows[i][3] < rows[i-1][3] {
			t.Fatal("CDF not monotone")
		}
	}
	if r.Render() == "" {
		t.Fatal("render")
	}
	// Degenerate improvement.
	zero := &CDFReport{RF: []float64{0}, BL: []float64{1}}
	if zero.Improvement() != 0 {
		t.Fatal("zero median should yield 0 improvement")
	}
}

func TestFWHMWidthOnSyntheticPeak(t *testing.T) {
	grid, err := vote.NewGrid(geom.Rect{Min: geom.Vec2{}, Max: geom.Vec2{X: 1, Z: 0.2}}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	pattern := make([]float64, grid.Len())
	src := geom.Vec2{X: 0.5, Z: 0.1}
	sigma := 0.05
	for i := range pattern {
		d := grid.At(i).Dist(src)
		pattern[i] = math.Exp(-d * d / (2 * sigma * sigma))
	}
	w := FWHMWidth(pattern, grid, src)
	// FWHM of a Gaussian is 2.355σ ≈ 0.118; grid quantization ±0.02.
	if w < 0.08 || w > 0.16 {
		t.Fatalf("FWHM = %v, want ≈0.118", w)
	}
}

func TestCountRowClusters(t *testing.T) {
	grid, err := vote.NewGrid(geom.Rect{Min: geom.Vec2{}, Max: geom.Vec2{X: 1, Z: 0.1}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Row of 11 cells with two separated high runs.
	pattern := make([]float64, grid.Len())
	for _, ix := range []int{1, 2, 7, 8} {
		pattern[ix] = 1 // iz = 0 row
	}
	if got := countRowClusters(pattern, grid, geom.Vec2{X: 0.5, Z: 0}, 0.5); got != 2 {
		t.Fatalf("clusters = %d, want 2", got)
	}
	// Out-of-range source z yields 0.
	if got := countRowClusters(pattern, grid, geom.Vec2{X: 0.5, Z: 9}, 0.5); got != 0 {
		t.Fatalf("out-of-range clusters = %d", got)
	}
}

func TestRatesHelpersOnEmptyBatch(t *testing.T) {
	res := &BatchResult{}
	if rf, bl := res.TrajErrors(); rf != nil || bl != nil {
		t.Fatal("empty batch should have no errors")
	}
	if got := res.CharRates(); len(got) != 0 {
		t.Fatal("empty char rates")
	}
	if got := res.WordRatesByLength(6); len(got) != 0 {
		t.Fatal("empty word rates")
	}
	f13 := RunFig13(res)
	for _, b := range f13.Buckets {
		if len(b.Values) != 0 {
			t.Fatal("empty batch buckets should be empty")
		}
	}
	_ = stats.Median(nil)
}
