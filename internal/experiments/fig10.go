package experiments

import (
	"fmt"
	"strings"

	"rfidraw/internal/core"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/plot"
	"rfidraw/internal/sim"
	"rfidraw/internal/traj"
)

// Fig10Report is the §7 microbenchmark: a user writes "clear" 2 m from the
// wall; the system proposes candidate initial positions, traces each, and
// picks the one whose trajectory vote stays high.
type Fig10Report struct {
	// CandidateInits are the candidate initial positions' errors (m)
	// against the true start, chosen candidate first.
	CandidateInits []float64
	// ChosenIdx is the selected candidate's index in trace order.
	ChosenIdx int
	// ShapeErr is the chosen trace's median error after removing the
	// initial offset (the paper quotes millimetric letter detail and a
	// ≈7 cm initial offset for the blue candidate).
	ShapeErr float64
	// MeanVotes are each candidate's mean trajectory votes; the chosen
	// one's must be the highest (Fig. 10f's separation).
	MeanVotes []float64
	// TruthPlot / ChosenPlot / OverlayPlot are ASCII renderings of the
	// panels (a), (b) and (e).
	TruthPlot, ChosenPlot, OverlayPlot string
	// VoteSeries is the per-position total vote of each candidate
	// (Fig. 10f's curves), indexed [candidate][position].
	VoteSeries [][]float64
}

// RunFig10 regenerates the microbenchmark.
func RunFig10(seed int64) (*Fig10Report, error) {
	sc, err := sim.New(sim.Config{Prop: sim.LOS, Distance: 2, Seed: seed})
	if err != nil {
		return nil, err
	}
	wr, err := sc.RunWord("clear", geom.Vec2{X: 0.55, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(sc.RFIDraw, core.Config{Plane: sc.Plane, Region: sc.Region})
	if err != nil {
		return nil, err
	}
	res, err := sys.Trace(wr.SamplesRF)
	if err != nil {
		return nil, err
	}
	rep := &Fig10Report{ChosenIdx: res.BestIndex}
	truthStart := wr.Truth.Start()
	for i, c := range res.Candidates {
		rep.CandidateInits = append(rep.CandidateInits, c.Pos.Dist(truthStart))
		mv := 0.0
		if n := len(res.All[i].Votes); n > 0 {
			mv = res.All[i].TotalVote / float64(n)
		}
		rep.MeanVotes = append(rep.MeanVotes, mv)
		rep.VoteSeries = append(rep.VoteSeries, append([]float64(nil), res.All[i].Votes...))
	}
	cmp, err := traj.Compare(wr.Truth, res.Best.Trajectory, traj.AlignInitial, 128)
	if err != nil {
		return nil, err
	}
	rep.ShapeErr = cmp.Summary().Median
	if rep.TruthPlot, err = plot.Trajectories(72, 20, wr.Truth.Positions()); err != nil {
		return nil, err
	}
	if rep.ChosenPlot, err = plot.Trajectories(72, 20, res.Best.Trajectory.Positions()); err != nil {
		return nil, err
	}
	shifted := res.Best.Trajectory.Shift(cmp.Offset.Scale(-1))
	if rep.OverlayPlot, err = plot.Trajectories(72, 20, wr.Truth.Positions(), shifted.Positions()); err != nil {
		return nil, err
	}
	return rep, nil
}

// Render formats the report.
func (r *Fig10Report) Render() string {
	var b strings.Builder
	b.WriteString("Fig 10 — microbenchmark: tracing \"clear\" written in the air at 2 m\n")
	for i := range r.CandidateInits {
		marker := " "
		if i == r.ChosenIdx {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s candidate %d: initial error %.3f m, mean trajectory vote %.4f\n",
			marker, i, r.CandidateInits[i], r.MeanVotes[i])
	}
	fmt.Fprintf(&b, "chosen trace shape error (offset removed): %.3f m\n", r.ShapeErr)
	b.WriteString("\n(a) ground truth:\n")
	b.WriteString(r.TruthPlot)
	b.WriteString("\n(b) chosen reconstruction:\n")
	b.WriteString(r.ChosenPlot)
	b.WriteString("\n(e) truth (*) vs shifted reconstruction (o):\n")
	b.WriteString(r.OverlayPlot)
	return b.String()
}
