package experiments

import (
	"fmt"
	"strings"

	"rfidraw/internal/sim"
	"rfidraw/internal/stats"
)

// CDFReport carries one error-CDF comparison (the paper's Figs. 11 and
// 12): RF-IDraw vs the antenna-array baseline under one propagation
// condition.
type CDFReport struct {
	Title string
	Prop  sim.Propagation
	// RF and BL are the per-word error samples (metres).
	RF, BL []float64
}

// Summary returns both systems' order statistics.
func (r *CDFReport) Summary() (rf, bl stats.Summary) {
	return stats.Summarize(r.RF), stats.Summarize(r.BL)
}

// Improvement is the baseline-to-RF-IDraw median ratio (the paper's
// headline 11×/16× for trajectories, 2.2×/2.3× for initial positions).
func (r *CDFReport) Improvement() float64 {
	rf, bl := r.Summary()
	if rf.Median == 0 {
		return 0
	}
	return bl.Median / rf.Median
}

// Render formats the report.
func (r *CDFReport) Render() string {
	rf, bl := r.Summary()
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%v)\n", r.Title, r.Prop)
	fmt.Fprintf(&b, "RF-IDraw: median %.1f cm, 90th %.1f cm (n=%d)\n", rf.Median*100, rf.P90*100, rf.N)
	fmt.Fprintf(&b, "Baseline: median %.1f cm, 90th %.1f cm (n=%d)\n", bl.Median*100, bl.P90*100, bl.N)
	fmt.Fprintf(&b, "improvement: %.1f×\n", r.Improvement())
	return b.String()
}

// CDFPoints renders n (error_cm, probability) rows per system for CSV.
func (r *CDFReport) CDFPoints(n int) (headers []string, rows [][]float64) {
	rfCDF := stats.NewCDF(r.RF)
	blCDF := stats.NewCDF(r.BL)
	rx, rp := rfCDF.Points(n)
	bx, bp := blCDF.Points(n)
	headers = []string{"rf_err_cm", "rf_p", "bl_err_cm", "bl_p"}
	for i := 0; i < n && i < len(rx) && i < len(bx); i++ {
		rows = append(rows, []float64{rx[i] * 100, rp[i], bx[i] * 100, bp[i]})
	}
	return headers, rows
}

// RunFig11 regenerates the trajectory-error CDF (Fig. 11) for one
// propagation condition from a word batch.
func RunFig11(batch *BatchResult) *CDFReport {
	rf, bl := batch.TrajErrors()
	return &CDFReport{Title: "Fig 11 — trajectory error CDF", Prop: batch.Config.Prop, RF: rf, BL: bl}
}

// RunFig12 regenerates the initial-position-error CDF (Fig. 12).
func RunFig12(batch *BatchResult) *CDFReport {
	rf, bl := batch.InitErrors()
	return &CDFReport{Title: "Fig 12 — initial position error CDF", Prop: batch.Config.Prop, RF: rf, BL: bl}
}

// Fig13Report buckets RF-IDraw's trajectory error by its initial-position
// error (the paper's Fig. 13): below ≈0.4 m offset the shape error stays
// ≈3 cm; above it grows to 7–8 cm but remains a coherent enlargement.
type Fig13Report struct {
	Buckets []stats.Bucket
}

// RunFig13 regenerates Fig. 13 from a word batch.
func RunFig13(batch *BatchResult) *Fig13Report {
	var keys, vals []float64
	for _, o := range batch.Outcomes {
		if o.FailedRF {
			continue
		}
		keys = append(keys, o.InitErrRF)
		vals = append(vals, o.TrajErrRF)
	}
	edges := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	return &Fig13Report{Buckets: stats.BucketBy(keys, vals, edges, true)}
}

// Render formats the report.
func (r *Fig13Report) Render() string {
	var b strings.Builder
	b.WriteString("Fig 13 — trajectory error vs initial position error (RF-IDraw)\n")
	rows := make([][]string, 0, len(r.Buckets))
	for _, bk := range r.Buckets {
		med := stats.Median(bk.Values)
		rows = append(rows, []string{
			bk.Label(),
			fmt.Sprintf("%d", len(bk.Values)),
			fmt.Sprintf("%.2f", med*100),
		})
	}
	b.WriteString(stats.Table([]string{"init err (m)", "n", "median traj err (cm)"}, rows))
	return b.String()
}

// Fig14Report is the character recognition success rate by distance
// (Fig. 14): ≈97–98% for RF-IDraw at 2/3/5 m, chance level for the
// baseline.
type Fig14Report struct {
	Rates []*DistanceRates
}

// RunFig14 regenerates Fig. 14 from a word batch.
func RunFig14(batch *BatchResult) *Fig14Report {
	m := batch.CharRates()
	var out []*DistanceRates
	for _, d := range batch.Config.Distances {
		if r, ok := m[d]; ok {
			out = append(out, r)
		}
	}
	return &Fig14Report{Rates: out}
}

// Render formats the report.
func (r *Fig14Report) Render() string {
	var b strings.Builder
	b.WriteString("Fig 14 — character recognition success rate by distance\n")
	rows := make([][]string, 0, len(r.Rates))
	for _, dr := range r.Rates {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f m", dr.Distance),
			fmt.Sprintf("%.1f%% (%d/%d)", dr.RF.Percent(), dr.RF.Success, dr.RF.Total),
			fmt.Sprintf("%.1f%% (%d/%d)", dr.BL.Percent(), dr.BL.Success, dr.BL.Total),
		})
	}
	b.WriteString(stats.Table([]string{"distance", "RF-IDraw", "antenna arrays"}, rows))
	return b.String()
}

// Fig15Report is the word recognition success rate by word length
// (Fig. 15): ≥88% for RF-IDraw even at 6+ letters, 0% for the baseline.
type Fig15Report struct {
	Rates []*LengthRates
}

// RunFig15 regenerates Fig. 15 from a word batch.
func RunFig15(batch *BatchResult) *Fig15Report {
	m := batch.WordRatesByLength(6)
	var out []*LengthRates
	for l := 2; l <= 6; l++ {
		if r, ok := m[l]; ok {
			out = append(out, r)
		}
	}
	return &Fig15Report{Rates: out}
}

// Render formats the report.
func (r *Fig15Report) Render() string {
	var b strings.Builder
	b.WriteString("Fig 15 — word recognition success rate by word length\n")
	rows := make([][]string, 0, len(r.Rates))
	for _, lr := range r.Rates {
		label := fmt.Sprintf("%d", lr.Length)
		if lr.Length == 6 {
			label = "≥6"
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%.0f%% (%d/%d)", lr.RF.Percent(), lr.RF.Success, lr.RF.Total),
			fmt.Sprintf("%.0f%% (%d/%d)", lr.BL.Percent(), lr.BL.Success, lr.BL.Total),
		})
	}
	b.WriteString(stats.Table([]string{"letters", "RF-IDraw", "antenna arrays"}, rows))
	return b.String()
}
