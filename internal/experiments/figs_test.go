package experiments

import (
	"strings"
	"testing"

	"rfidraw/internal/sim"
)

func TestRunFig2(t *testing.T) {
	r, err := RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	// More antennas → narrower beam (the paper's Fig. 2 point).
	if r.Width4 >= r.Width2 {
		t.Fatalf("4-antenna width %.2f should be below 2-antenna width %.2f", r.Width4, r.Width2)
	}
	if !strings.Contains(r.Render(), "Fig 2") {
		t.Fatal("render")
	}
}

func TestRunFig3(t *testing.T) {
	r, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.LobeCounts) != 3 {
		t.Fatal("want 3 separations")
	}
	// Lobe count grows with separation; main lobe narrows (§3.2/§3.3).
	if r.LobeCounts[0] != 1 {
		t.Fatalf("λ/2 lobes = %d, want 1", r.LobeCounts[0])
	}
	if !(r.LobeCounts[0] < r.LobeCounts[1] && r.LobeCounts[1] < r.LobeCounts[2]) {
		t.Fatalf("lobe counts not increasing: %v", r.LobeCounts)
	}
	if !(r.MainWidths[2] < r.MainWidths[0]) {
		t.Fatalf("8λ width %.2f should be below λ/2 width %.2f", r.MainWidths[2], r.MainWidths[0])
	}
	if r.Render() == "" {
		t.Fatal("render")
	}
}

func TestRunFig4(t *testing.T) {
	r, err := RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	if r.LobesFiltered >= r.LobesWide {
		t.Fatalf("filtering should remove lobes: %d → %d", r.LobesWide, r.LobesFiltered)
	}
	if r.LobesFiltered > 2 {
		t.Fatalf("filtered lobes = %d, want ≈1", r.LobesFiltered)
	}
	if r.Render() == "" {
		t.Fatal("render")
	}
}

func TestRunFig6(t *testing.T) {
	r, err := RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakErr > 0.05 {
		t.Fatalf("combined peak error = %.3f m, want ≈0 noiseless", r.PeakErr)
	}
	if r.Render() == "" {
		t.Fatal("render")
	}
}

func TestRunFig7(t *testing.T) {
	r, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if r.Correct.ShapeErr > 0.01 || r.Correct.AbsOffset > 0.02 {
		t.Fatalf("correct start: %+v", r.Correct)
	}
	worst := 0.0
	for i, v := range r.Adjacent {
		if v.ShapeErr > 0.03 {
			t.Fatalf("adjacent start %d shape error = %.3f m, shape should be preserved", i, v.ShapeErr)
		}
		// The reconstruction is genuinely displaced (tracking wrong lobes).
		if v.AbsOffset < 0.03 {
			t.Fatalf("adjacent start %d abs offset = %.3f m, should be displaced", i, v.AbsOffset)
		}
		if v.ShapeErr > worst {
			worst = v.ShapeErr
		}
	}
	// The far start distorts more than any adjacent one.
	if r.Far.ShapeErr <= worst {
		t.Fatalf("far-start shape error %.4f should exceed adjacent max %.4f", r.Far.ShapeErr, worst)
	}
	if r.Render() == "" {
		t.Fatal("render")
	}
}

func TestRunFig10(t *testing.T) {
	r, err := RunFig10(40)
	if err != nil {
		t.Fatal(err)
	}
	if r.ShapeErr > 0.05 {
		t.Fatalf("microbenchmark shape error = %.3f m", r.ShapeErr)
	}
	if r.ChosenIdx < 0 || r.ChosenIdx >= len(r.MeanVotes) {
		t.Fatal("chosen index out of range")
	}
	// The chosen candidate has the best mean vote.
	for i, v := range r.MeanVotes {
		if v > r.MeanVotes[r.ChosenIdx]+1e-12 {
			t.Fatalf("candidate %d vote %.4f beats chosen %.4f", i, v, r.MeanVotes[r.ChosenIdx])
		}
	}
	if r.Render() == "" {
		t.Fatal("render")
	}
}

func TestFigs11Through15(t *testing.T) {
	batch, err := RunBatch(BatchConfig{Prop: sim.LOS, Words: 9, Users: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f11 := RunFig11(batch)
	rf, bl := f11.Summary()
	if !(rf.Median < bl.Median) {
		t.Fatalf("Fig11: RF median %.3f should beat baseline %.3f", rf.Median, bl.Median)
	}
	if f11.Improvement() <= 1 {
		t.Fatal("Fig11 improvement should exceed 1×")
	}
	h, rows := f11.CDFPoints(16)
	if len(h) != 4 || len(rows) == 0 {
		t.Fatal("CDF points")
	}
	f12 := RunFig12(batch)
	if f12.Render() == "" || f11.Render() == "" {
		t.Fatal("render")
	}
	f13 := RunFig13(batch)
	if len(f13.Buckets) != 6 {
		t.Fatalf("Fig13 buckets = %d", len(f13.Buckets))
	}
	if f13.Render() == "" {
		t.Fatal("render")
	}
	f14 := RunFig14(batch)
	if len(f14.Rates) == 0 {
		t.Fatal("Fig14 empty")
	}
	var rfC, blC float64
	for _, dr := range f14.Rates {
		rfC += dr.RF.Value()
		blC += dr.BL.Value()
	}
	if rfC <= blC {
		t.Fatal("Fig14: RF char recognition should beat baseline")
	}
	if f14.Render() == "" {
		t.Fatal("render")
	}
	f15 := RunFig15(batch)
	if len(f15.Rates) == 0 || f15.Render() == "" {
		t.Fatal("Fig15 empty")
	}
}

func TestRunFig16(t *testing.T) {
	r, err := RunFig16(60)
	if err != nil {
		t.Fatal(err)
	}
	if r.RFErr >= r.BLErr {
		t.Fatalf("RF error %.3f should beat baseline %.3f at 5 m", r.RFErr, r.BLErr)
	}
	if r.Render() == "" {
		t.Fatal("render")
	}
}
