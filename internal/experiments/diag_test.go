package experiments

import (
	"fmt"
	"testing"

	"rfidraw/internal/sim"
)

func TestDiagPerDistance(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	res, err := RunBatch(BatchConfig{Prop: sim.LOS, Words: 18, Users: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		fmt.Printf("%-9s d=%.0f trajRF=%.3f initRF=%.3f charsRF=%d/%d wordRF=%v trajBL=%.3f failRF=%v\n",
			o.Text, o.Distance, o.TrajErrRF, o.InitErrRF, o.CharsOKRF, o.CharsTotal, o.WordOKRF, o.TrajErrBL, o.FailedRF)
	}
}
