package experiments

import (
	"fmt"
	"math"
	"strings"

	"rfidraw/internal/antenna"
	"rfidraw/internal/deploy"
	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
	"rfidraw/internal/plot"
	"rfidraw/internal/vote"
)

// beamGrid is the rendering grid used by the beam-pattern figures.
func beamGrid() (vote.Grid, geom.Plane) {
	region := geom.Rect{Min: geom.Vec2{X: -1.0, Z: 0}, Max: geom.Vec2{X: 3.6, Z: 3.2}}
	g, err := vote.NewGrid(region, 0.04)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return g, geom.Plane{Y: 2}
}

// arrayPattern evaluates a Bartlett-style spatial power map for an array
// observing a noiseless source: at each grid point, how well the measured
// per-element phases match that point's predicted phases.
func arrayPattern(ants []antenna.Antenna, carrier phys.Carrier, link phys.Link, src geom.Vec3, grid vote.Grid, plane geom.Plane) []float64 {
	meas := make([]float64, len(ants))
	for i, a := range ants {
		meas[i] = phys.PathPhase(carrier, link, a.Pos.Dist(src))
	}
	out := make([]float64, grid.Len())
	for gi := 0; gi < grid.Len(); gi++ {
		p := plane.To3D(grid.At(gi))
		var re, im float64
		for i, a := range ants {
			pred := phys.PathPhase(carrier, link, a.Pos.Dist(p))
			d := meas[i] - pred
			re += math.Cos(d)
			im += math.Sin(d)
		}
		out[gi] = (re*re + im*im) / float64(len(ants)*len(ants))
	}
	return out
}

// FWHMWidth estimates the half-power width (metres along x at the source's
// z row) of the main beam in a pattern — the figures' visual "beam width".
func FWHMWidth(pattern []float64, grid vote.Grid, src geom.Vec2) float64 {
	iz := int((src.Z - grid.Region.Min.Z) / grid.Res)
	if iz < 0 {
		iz = 0
	}
	if iz >= grid.NZ {
		iz = grid.NZ - 1
	}
	row := pattern[iz*grid.NX : (iz+1)*grid.NX]
	// Find the peak nearest the source column.
	srcIx := int((src.X - grid.Region.Min.X) / grid.Res)
	best := srcIx
	if best < 0 {
		best = 0
	}
	if best >= grid.NX {
		best = grid.NX - 1
	}
	for i := range row {
		if row[i] > row[best] && abs(i-srcIx) <= abs(best-srcIx) {
			best = i
		}
	}
	half := row[best] / 2
	lo, hi := best, best
	for lo > 0 && row[lo-1] >= half {
		lo--
	}
	for hi < len(row)-1 && row[hi+1] >= half {
		hi++
	}
	return float64(hi-lo+1) * grid.Res
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Fig2Report compares the beam width of 2- vs 4-antenna arrays with λ/2
// spacing (the paper's Fig. 2): more antennas, narrower beam.
type Fig2Report struct {
	Width2, Width4 float64
	Heat2, Heat4   string
}

// RunFig2 regenerates Fig. 2 with a one-way source 2 m from the arrays.
func RunFig2() (*Fig2Report, error) {
	carrier := phys.DefaultCarrier()
	lambda := carrier.WavelengthM
	grid, plane := beamGrid()
	src2 := geom.Vec2{X: 1.3, Z: 1.6}
	src := plane.To3D(src2)
	mk := func(n int) []antenna.Antenna {
		out := make([]antenna.Antenna, n)
		for i := range out {
			out[i] = antenna.Antenna{ID: i + 1, Pos: geom.Vec3{X: 1.0 + float64(i)*lambda/2}}
		}
		return out
	}
	p2 := arrayPattern(mk(2), carrier, phys.OneWay, src, grid, plane)
	p4 := arrayPattern(mk(4), carrier, phys.OneWay, src, grid, plane)
	h2, err := plot.Heatmap(p2, grid.NX, grid.NZ)
	if err != nil {
		return nil, err
	}
	h4, err := plot.Heatmap(p4, grid.NX, grid.NZ)
	if err != nil {
		return nil, err
	}
	return &Fig2Report{
		Width2: FWHMWidth(p2, grid, src2),
		Width4: FWHMWidth(p4, grid, src2),
		Heat2:  h2,
		Heat4:  h4,
	}, nil
}

// Render formats the report.
func (r *Fig2Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2 — antenna array beam resolution (λ/2 spacing, one-way)\n")
	fmt.Fprintf(&b, "2-antenna beam width: %.2f m   4-antenna beam width: %.2f m (narrower)\n", r.Width2, r.Width4)
	b.WriteString("\n2-antenna array beam:\n")
	b.WriteString(r.Heat2)
	b.WriteString("\n4-antenna array beam:\n")
	b.WriteString(r.Heat4)
	return b.String()
}

// Fig3Report shows the resolution/ambiguity tradeoff of a single antenna
// pair at λ/2, λ and 8λ separation (the paper's Fig. 3).
type Fig3Report struct {
	Separations []float64 // in wavelengths
	LobeCounts  []int
	MainWidths  []float64
	Heats       []string
}

// RunFig3 regenerates Fig. 3 (one-way link, as in the paper's primer).
func RunFig3() (*Fig3Report, error) {
	carrier := phys.DefaultCarrier()
	lambda := carrier.WavelengthM
	grid, plane := beamGrid()
	src2 := geom.Vec2{X: 1.3, Z: 1.6}
	src := plane.To3D(src2)
	rep := &Fig3Report{}
	for _, sep := range []float64{0.5, 1, 8} {
		a := antenna.Antenna{ID: 1, Pos: geom.Vec3{X: 1.3 - sep*lambda/2}}
		b := antenna.Antenna{ID: 2, Pos: geom.Vec3{X: 1.3 + sep*lambda/2}}
		pair, err := antenna.NewPair(a, b, carrier, phys.OneWay)
		if err != nil {
			return nil, err
		}
		turns := pair.IdealPhaseDiffTurns(src)
		pat := pair.BeamPattern(grid.Points(), plane, turns, 0.05)
		heat, err := plot.Heatmap(pat, grid.NX, grid.NZ)
		if err != nil {
			return nil, err
		}
		rep.Separations = append(rep.Separations, sep)
		rep.LobeCounts = append(rep.LobeCounts, pair.LobeCount())
		rep.MainWidths = append(rep.MainWidths, FWHMWidth(pat, grid, src2))
		rep.Heats = append(rep.Heats, heat)
	}
	return rep, nil
}

// Render formats the report.
func (r *Fig3Report) Render() string {
	var b strings.Builder
	b.WriteString("Fig 3 — resolution vs ambiguity tradeoff of one antenna pair\n")
	for i, sep := range r.Separations {
		fmt.Fprintf(&b, "separation %.1fλ: %d lobes, main-lobe width %.2f m\n",
			sep, r.LobeCounts[i], r.MainWidths[i])
	}
	for i, h := range r.Heats {
		fmt.Fprintf(&b, "\nseparation %.1fλ:\n%s", r.Separations[i], h)
	}
	return b.String()
}

// Fig4Report demonstrates multi-resolution filtering: the λ/2 pair's wide
// beam removes the 8λ pair's ambiguity while keeping its resolution (the
// paper's Fig. 4).
type Fig4Report struct {
	// LobesWide is the number of distinct high-likelihood clusters in
	// the 8λ pattern alone; LobesFiltered after applying the λ/2 filter.
	LobesWide, LobesFiltered int
	// FilteredWidth is the surviving beam's width (m), comparable to
	// the wide pair's own lobe width rather than the coarse pair's.
	FilteredWidth float64
	Heat          string
}

// RunFig4 regenerates Fig. 4.
func RunFig4() (*Fig4Report, error) {
	carrier := phys.DefaultCarrier()
	lambda := carrier.WavelengthM
	grid, plane := beamGrid()
	src2 := geom.Vec2{X: 1.3, Z: 1.6}
	src := plane.To3D(src2)
	mkPair := func(sep float64) (antenna.Pair, error) {
		a := antenna.Antenna{ID: 1, Pos: geom.Vec3{X: 1.3 - sep*lambda/2}}
		b := antenna.Antenna{ID: 2, Pos: geom.Vec3{X: 1.3 + sep*lambda/2}}
		return antenna.NewPair(a, b, carrier, phys.OneWay)
	}
	wide, err := mkPair(8)
	if err != nil {
		return nil, err
	}
	coarse, err := mkPair(0.5)
	if err != nil {
		return nil, err
	}
	wt := wide.IdealPhaseDiffTurns(src)
	ct := coarse.IdealPhaseDiffTurns(src)
	pts := grid.Points()
	wPat := wide.BeamPattern(pts, plane, wt, 0.05)
	cPat := coarse.BeamPattern(pts, plane, ct, 0.05)
	filtered := make([]float64, len(wPat))
	for i := range filtered {
		filtered[i] = wPat[i] * cPat[i]
	}
	heat, err := plot.Heatmap(filtered, grid.NX, grid.NZ)
	if err != nil {
		return nil, err
	}
	return &Fig4Report{
		LobesWide:     countRowClusters(wPat, grid, src2, 0.5),
		LobesFiltered: countRowClusters(filtered, grid, src2, 0.5),
		FilteredWidth: FWHMWidth(filtered, grid, src2),
		Heat:          heat,
	}, nil
}

// countRowClusters counts contiguous above-threshold runs along the
// source's grid row — a proxy for the number of visible lobes.
func countRowClusters(pattern []float64, grid vote.Grid, src geom.Vec2, frac float64) int {
	iz := int((src.Z - grid.Region.Min.Z) / grid.Res)
	if iz < 0 || iz >= grid.NZ {
		return 0
	}
	row := pattern[iz*grid.NX : (iz+1)*grid.NX]
	peak := 0.0
	for _, v := range row {
		if v > peak {
			peak = v
		}
	}
	th := peak * frac
	count := 0
	in := false
	for _, v := range row {
		if v >= th && !in {
			count++
			in = true
		} else if v < th {
			in = false
		}
	}
	return count
}

// Render formats the report.
func (r *Fig4Report) Render() string {
	var b strings.Builder
	b.WriteString("Fig 4 — multi-resolution filtering\n")
	fmt.Fprintf(&b, "8λ pair alone: %d visible lobes; after λ/2 filter: %d (width %.2f m)\n",
		r.LobesWide, r.LobesFiltered, r.FilteredWidth)
	b.WriteString(r.Heat)
	return b.String()
}

// Fig6Report walks the four stages of multi-resolution positioning on the
// real deployment (the paper's Fig. 6): wide-pair intersections, coarse
// filter, refined filter, and the combined unambiguous estimate.
type Fig6Report struct {
	Source geom.Vec2
	// PeakErr is the distance between the combined vote map's peak and
	// the true source.
	PeakErr float64
	// Panels are the four ASCII heatmaps (a–d).
	Panels [4]string
}

// RunFig6 regenerates Fig. 6 on the standard deployment, noiselessly.
func RunFig6() (*Fig6Report, error) {
	dep, err := deploy.DefaultRFIDraw()
	if err != nil {
		return nil, err
	}
	plane := geom.Plane{Y: 2}
	region := deploy.DefaultRegion()
	grid, err := vote.NewGrid(region, 0.03)
	if err != nil {
		return nil, err
	}
	src2 := geom.Vec2{X: 1.3, Z: 1.0}
	src := plane.To3D(src2)
	obs := vote.Observations{}
	for _, a := range dep.Antennas {
		obs[a.ID] = phys.PathPhase(dep.Carrier, dep.Link, a.Pos.Dist(src))
	}
	exp := func(m []float64) []float64 {
		out := make([]float64, len(m))
		for i, v := range m {
			out[i] = math.Exp(v / (2 * 0.03 * 0.03))
		}
		return out
	}
	maps := [][]float64{
		exp(vote.VoteMap(dep.WidePairs, obs, grid, plane)),
		exp(vote.VoteMap(dep.CoarsePairs, obs, grid, plane)),
		exp(vote.VoteMap(dep.Stage1Pairs(), obs, grid, plane)),
		exp(vote.VoteMap(dep.AllPairs(), obs, grid, plane)),
	}
	rep := &Fig6Report{Source: src2}
	for i, m := range maps {
		h, err := plot.Heatmap(m, grid.NX, grid.NZ)
		if err != nil {
			return nil, err
		}
		rep.Panels[i] = h
	}
	// Peak of the combined map.
	best := 0
	for i, v := range maps[3] {
		if v > maps[3][best] {
			best = i
		}
	}
	rep.PeakErr = grid.At(best).Dist(src2)
	return rep, nil
}

// Render formats the report.
func (r *Fig6Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6 — multi-resolution positioning stages (source at %v)\n", r.Source)
	fmt.Fprintf(&b, "combined-vote peak error: %.3f m\n", r.PeakErr)
	titles := [4]string{
		"(a) wide pairs only: high resolution, ambiguous",
		"(b) coarse λ/4 pairs: one wide filter",
		"(c) + cross pairs: finer filter",
		"(d) all pairs: unambiguous high resolution",
	}
	for i := range r.Panels {
		fmt.Fprintf(&b, "\n%s\n%s", titles[i], r.Panels[i])
	}
	return b.String()
}
