package experiments

import (
	"fmt"
	"testing"

	"rfidraw/internal/sim"
	"rfidraw/internal/stats"
)

// TestCalibration prints headline numbers for a small batch in both
// propagation conditions; it is a diagnostic aid while tuning the channel
// model and only asserts coarse sanity.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe is slow")
	}
	for _, prop := range []sim.Propagation{sim.LOS, sim.NLOS} {
		res, err := RunBatch(BatchConfig{Prop: prop, Words: 12, Users: 3, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		rf, bl := res.TrajErrors()
		irf, ibl := res.InitErrors()
		fmt.Printf("%v traj RF median=%.3f p90=%.3f | BL median=%.3f p90=%.3f\n",
			prop, stats.Median(rf), stats.Percentile(rf, 90), stats.Median(bl), stats.Percentile(bl, 90))
		fmt.Printf("%v init RF median=%.3f | BL median=%.3f\n", prop, stats.Median(irf), stats.Median(ibl))
		var cr, ct, cb int
		var wr, wt, wb int
		for _, o := range res.Outcomes {
			cr += o.CharsOKRF
			cb += o.CharsOKBL
			ct += o.CharsTotal
			wt++
			if o.WordOKRF {
				wr++
			}
			if o.WordOKBL {
				wb++
			}
		}
		fmt.Printf("%v char RF=%d/%d BL=%d/%d word RF=%d/%d BL=%d/%d\n", prop, cr, ct, cb, ct, wr, wt, wb, wt)
		if stats.Median(rf) >= stats.Median(bl) {
			t.Errorf("%v: RF-IDraw median %.3f should beat baseline %.3f", prop, stats.Median(rf), stats.Median(bl))
		}
	}
}
