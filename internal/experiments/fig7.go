package experiments

import (
	"fmt"
	"strings"

	"rfidraw/internal/deploy"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/phys"
	"rfidraw/internal/plot"
	"rfidraw/internal/tracing"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
)

// Fig7Variant is one wrong-start reconstruction of the letter 'q'.
type Fig7Variant struct {
	// StartOffset is the imposed initial-position offset (m).
	StartOffset geom.Vec2
	// ShapeErr is the median trajectory error after removing the
	// reconstruction's own initial offset — pure shape distortion.
	ShapeErr float64
	// AbsOffset is the reconstruction's resulting absolute displacement
	// from the truth (it tracks the wrong lobes at a shifted position).
	AbsOffset float64
}

// Fig7Report demonstrates wrong-grating-lobe shape resilience (the paper's
// Fig. 7): starting the trace one lobe away locks every pair onto an
// adjacent wrong lobe; the reconstruction is displaced but its shape is
// preserved. Starting several lobes away distorts the shape visibly.
type Fig7Report struct {
	// Correct is the correct-start reconstruction.
	Correct Fig7Variant
	// Adjacent are the eight reconstructions started one lobe away in
	// each direction (the 3×3 grid of Fig. 7a minus the centre).
	Adjacent []Fig7Variant
	// Far is a reconstruction started ≈4 lobes away (Fig. 7b).
	Far Fig7Variant
	// Plot overlays the truth and the far-start reconstruction.
	Plot string
}

// RunFig7 regenerates Fig. 7 with a noiseless channel, isolating the pure
// lobe-geometry effect just as the paper's figure does.
func RunFig7() (*Fig7Report, error) {
	dep, err := deploy.DefaultRFIDraw()
	if err != nil {
		return nil, err
	}
	plane := geom.Plane{Y: 2}
	word, err := handwriting.Write("q", geom.Vec2{X: 1.3, Z: 1.0}, handwriting.DefaultStyle(), nil)
	if err != nil {
		return nil, err
	}
	truth, err := word.Traj.Resample(80)
	if err != nil {
		return nil, err
	}
	samples := make([]tracing.Sample, truth.Len())
	for i, p := range truth.Points {
		obs := vote.Observations{}
		src := plane.To3D(p.Pos)
		for _, a := range dep.Antennas {
			obs[a.ID] = phys.PathPhase(dep.Carrier, dep.Link, a.Pos.Dist(src))
		}
		samples[i] = tracing.Sample{T: p.T, Phase: obs}
	}
	// Trace with the wide pairs only: Fig. 7 isolates the grating-lobe
	// geometry, and the coarse pairs would otherwise bias far starts
	// back toward the truth.
	region := deploy.DefaultRegion().Expand(1.5)
	// Dense search: this experiment reproduces §5.2's full-vicinity
	// maximisation verbatim — the far-start distortion it demonstrates
	// depends on the step always taking the vicinity-wide argmax, which
	// the hierarchical search deliberately avoids.
	tr, err := tracing.NewTracer(dep.WidePairs, tracing.Config{
		Plane: plane, Region: region,
		Search: vote.SearchConfig{Mode: vote.SearchDense},
	})
	if err != nil {
		return nil, err
	}
	// One grating-lobe spacing in the writing plane: Δ ≈ R·λ/(F·D).
	lobe := plane.Y * dep.Carrier.WavelengthM / (dep.Link.TravelFactor() * dep.WidePairs[0].Separation())

	runVariant := func(offset geom.Vec2) (Fig7Variant, tracing.Result, error) {
		res, err := tr.Trace(truth.Start().Add(offset), samples)
		if err != nil {
			return Fig7Variant{}, tracing.Result{}, err
		}
		rep, err := traj.Compare(truth, res.Trajectory, traj.AlignInitial, 80)
		if err != nil {
			return Fig7Variant{}, tracing.Result{}, err
		}
		return Fig7Variant{
			StartOffset: offset,
			ShapeErr:    rep.Summary().Median,
			AbsOffset:   rep.Offset.Norm(),
		}, res, nil
	}

	rep := &Fig7Report{}
	var res tracing.Result
	if rep.Correct, res, err = runVariant(geom.Vec2{}); err != nil {
		return nil, err
	}
	_ = res
	for _, d := range [][2]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}} {
		v, _, err := runVariant(geom.Vec2{X: d[0] * lobe, Z: d[1] * lobe})
		if err != nil {
			return nil, err
		}
		rep.Adjacent = append(rep.Adjacent, v)
	}
	var farRes tracing.Result
	if rep.Far, farRes, err = runVariant(geom.Vec2{X: 4 * lobe, Z: 4 * lobe}); err != nil {
		return nil, err
	}
	overlay, err := plot.Trajectories(72, 24, truth.Positions(), farRes.Trajectory.Positions())
	if err != nil {
		return nil, err
	}
	rep.Plot = overlay
	return rep, nil
}

// Render formats the report.
func (r *Fig7Report) Render() string {
	var b strings.Builder
	b.WriteString("Fig 7 — wrong-grating-lobe shape resilience (letter 'q')\n")
	fmt.Fprintf(&b, "correct start:          shape err %.1f mm, abs offset %.2f m\n",
		r.Correct.ShapeErr*1000, r.Correct.AbsOffset)
	for i, v := range r.Adjacent {
		fmt.Fprintf(&b, "adjacent lobe start %d:  shape err %.1f mm, abs offset %.2f m (shape preserved)\n",
			i+1, v.ShapeErr*1000, v.AbsOffset)
	}
	fmt.Fprintf(&b, "far lobe start (+4,+4): shape err %.1f mm, abs offset %.2f m (distorted)\n",
		r.Far.ShapeErr*1000, r.Far.AbsOffset)
	b.WriteString("\ntruth (*) vs far-lobe reconstruction (o):\n")
	b.WriteString(r.Plot)
	return b.String()
}
