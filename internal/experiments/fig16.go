package experiments

import (
	"fmt"
	"strings"

	"rfidraw/internal/baseline"
	"rfidraw/internal/core"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/plot"
	"rfidraw/internal/sim"
	"rfidraw/internal/traj"
)

// Fig16Report is the qualitative comparison of Fig. 16: the word "play"
// written 5 m from the reader antennas, reconstructed by both systems.
// RF-IDraw reproduces the writing; the baseline scatters.
type Fig16Report struct {
	// RFErr and BLErr are the median shape errors (m) of the two
	// reconstructions.
	RFErr, BLErr float64
	// TruthPlot, RFPlot and BLPlot are ASCII renderings.
	TruthPlot, RFPlot, BLPlot string
}

// RunFig16 regenerates Fig. 16.
func RunFig16(seed int64) (*Fig16Report, error) {
	sc, err := sim.New(sim.Config{Prop: sim.LOS, Distance: 5, Seed: seed})
	if err != nil {
		return nil, err
	}
	wr, err := sc.RunWord("play", geom.Vec2{X: 0.9, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		return nil, err
	}
	rep := &Fig16Report{}

	sys, err := core.NewSystem(sc.RFIDraw, core.Config{Plane: sc.Plane, Region: sc.Region})
	if err != nil {
		return nil, err
	}
	rf, err := sys.Trace(wr.SamplesRF)
	if err != nil {
		return nil, err
	}
	if rep.RFErr, err = traj.MedianError(wr.Truth, rf.Best.Trajectory, traj.AlignInitial, 128); err != nil {
		return nil, err
	}

	bl, err := baseline.New(sc.Baseline, baseline.Config{Plane: sc.Plane, Region: sc.Region})
	if err != nil {
		return nil, err
	}
	blTraj, err := bl.Trace(wr.SamplesBL)
	if err != nil {
		return nil, err
	}
	if rep.BLErr, err = traj.MedianError(wr.Truth, blTraj, traj.AlignMean, 128); err != nil {
		return nil, err
	}

	if rep.TruthPlot, err = plot.Trajectories(72, 18, wr.Truth.Positions()); err != nil {
		return nil, err
	}
	if rep.RFPlot, err = plot.Trajectories(72, 18, rf.Best.Trajectory.Positions()); err != nil {
		return nil, err
	}
	if rep.BLPlot, err = plot.Trajectories(72, 18, blTraj.Positions()); err != nil {
		return nil, err
	}
	return rep, nil
}

// Render formats the report.
func (r *Fig16Report) Render() string {
	var b strings.Builder
	b.WriteString("Fig 16 — \"play\" written 5 m away\n")
	fmt.Fprintf(&b, "RF-IDraw shape error: %.1f cm   baseline shape error: %.1f cm\n", r.RFErr*100, r.BLErr*100)
	b.WriteString("\nground truth:\n")
	b.WriteString(r.TruthPlot)
	b.WriteString("\nRF-IDraw reconstruction:\n")
	b.WriteString(r.RFPlot)
	b.WriteString("\nantenna-array baseline reconstruction:\n")
	b.WriteString(r.BLPlot)
	return b.String()
}
