package vicon

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/traj"
)

func truthLine() traj.Trajectory {
	pos := make([]geom.Vec2, 50)
	for i := range pos {
		pos[i] = geom.Vec2{X: float64(i) * 0.01}
	}
	return traj.FromPositions(pos, 20*time.Millisecond) // ~1 s at 50 pts
}

func TestCaptureRateAndSpan(t *testing.T) {
	truth := truthLine()
	cap100, err := Capture(truth, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 0.98 s span at 100 Hz → 99 samples.
	if cap100.Len() < 95 || cap100.Len() > 100 {
		t.Fatalf("capture count = %d", cap100.Len())
	}
	if cap100.Start().Dist(truth.Start()) > 1e-9 {
		t.Fatal("noise-free capture should start at truth")
	}
}

func TestCaptureNoiseLevel(t *testing.T) {
	truth := truthLine()
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	cap, err := Capture(truth, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	var maxDev float64
	var sumSq float64
	for _, p := range cap.Points {
		tp, _ := truth.At(p.T)
		d := p.Pos.Dist(tp)
		sumSq += d * d
		if d > maxDev {
			maxDev = d
		}
	}
	rms := math.Sqrt(sumSq / float64(cap.Len()))
	// 2 mm per axis → ~2.8 mm radial RMS; must stay sub-centimetre (§6).
	if rms < 0.001 || rms > 0.006 {
		t.Fatalf("rms deviation = %v m", rms)
	}
	if maxDev > 0.015 {
		t.Fatalf("max deviation = %v m, should be sub-centimetre-ish", maxDev)
	}
}

func TestCaptureMountOffset(t *testing.T) {
	truth := truthLine()
	cfg := DefaultConfig()
	cfg.MountOffset = geom.Vec2{X: 0.01, Z: -0.005}
	cap, err := Capture(truth, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := truth.Start().Add(cfg.MountOffset)
	if cap.Start().Dist(want) > 1e-9 {
		t.Fatalf("offset not applied: %v vs %v", cap.Start(), want)
	}
}

func TestCaptureErrors(t *testing.T) {
	if _, err := Capture(traj.Trajectory{}, DefaultConfig(), nil); err == nil {
		t.Fatal("empty truth should error")
	}
	bad := DefaultConfig()
	bad.SampleRate = 0
	if _, err := Capture(truthLine(), bad, nil); err == nil {
		t.Fatal("zero sample rate should error")
	}
	bad = DefaultConfig()
	bad.MarkerNoiseM = -1
	if _, err := Capture(truthLine(), bad, nil); err == nil {
		t.Fatal("negative noise should error")
	}
}
