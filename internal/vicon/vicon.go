// Package vicon simulates the infrared motion-capture ground truth of the
// paper's evaluation (§6): a VICON T-series rig tracking reflective markers
// on the user's hand with sub-centimetre accuracy at camera rate. The
// evaluation compares reconstructed trajectories against this ground truth,
// so the simulator reproduces its two imperfections: small per-sample
// marker noise and a fixed marker→tag mounting offset (markers sit around
// the RFID, not on it).
package vicon

import (
	"fmt"
	"math/rand"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/traj"
)

// Config describes the capture rig.
type Config struct {
	// SampleRate is the camera rate in Hz. VICON T-series systems run at
	// 100+ Hz; default 100.
	SampleRate float64
	// MarkerNoiseM is the per-sample position noise stddev in metres.
	// Default 0.002 (sub-centimetre, per §6).
	MarkerNoiseM float64
	// MountOffsetM is the fixed marker→tag offset in the writing plane.
	MountOffset geom.Vec2
}

// DefaultConfig returns a 100 Hz rig with 2 mm noise and no mount offset.
func DefaultConfig() Config {
	return Config{SampleRate: 100, MarkerNoiseM: 0.002}
}

// Capture samples the true trajectory the way the mocap rig would: at
// camera rate, with marker noise and the mounting offset applied. rng may
// be nil for a noise-free capture.
func Capture(truth traj.Trajectory, cfg Config, rng *rand.Rand) (traj.Trajectory, error) {
	if truth.Len() == 0 {
		return traj.Trajectory{}, fmt.Errorf("vicon: empty trajectory")
	}
	if cfg.SampleRate <= 0 {
		return traj.Trajectory{}, fmt.Errorf("vicon: sample rate %v must be positive", cfg.SampleRate)
	}
	if cfg.MarkerNoiseM < 0 {
		return traj.Trajectory{}, fmt.Errorf("vicon: negative marker noise")
	}
	dt := time.Duration(float64(time.Second) / cfg.SampleRate)
	n := int(truth.Duration()/dt) + 1
	pts := make([]traj.Point, 0, n)
	for i := 0; i < n; i++ {
		tau := truth.Points[0].T + time.Duration(i)*dt
		p, err := truth.At(tau)
		if err != nil {
			return traj.Trajectory{}, err
		}
		p = p.Add(cfg.MountOffset)
		if rng != nil && cfg.MarkerNoiseM > 0 {
			p = p.Add(geom.Vec2{
				X: rng.NormFloat64() * cfg.MarkerNoiseM,
				Z: rng.NormFloat64() * cfg.MarkerNoiseM,
			})
		}
		pts = append(pts, traj.Point{T: tau, Pos: p})
	}
	return traj.Trajectory{Points: pts}, nil
}
