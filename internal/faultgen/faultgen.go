// Package faultgen is a deterministic, seeded fault-injection layer for
// reader report streams: it wraps any report source (the simulator's
// per-reader streams, a recorded WAL, a test fixture) and applies
// composable per-reader faults — clock offset and drift, dropout bursts,
// duplicate floods, bounded out-of-order delivery, and mid-session reader
// death with rejoin.
//
// Everything is a pure function of (Plan, input): applying the same plan
// to the same stream twice yields byte-identical output, which is what
// lets the scenario gates assert that the tracing pipeline is
// deterministic over *faulted* input, not just clean input. All
// randomness comes from a per-reader rand.Rand seeded by a hash of
// (Plan.Seed, readerID), so streams can be faulted reader-by-reader or
// as one merged slice with identical results per report.
//
// The faults model the failure modes a real RFID deployment exhibits on
// the wire, upstream of the session reorder buffer:
//
//   - clock skew/drift: a reader whose timestamps run offset or fast —
//     including skew exceeding the serving layer's reorder window, the
//     case the rfidrawd_reorder_late_total counter instruments;
//   - dropout bursts: periodic read loss (tag out of beam, RF collision);
//   - duplicate floods: inventory rounds re-reporting the same reply;
//   - out-of-order delivery: reports swapped within a bounded window,
//     breaking per-reader monotonicity (the ingest gateway drops the
//     regressions and counts them);
//   - death/rejoin: a reader silent for an interval mid-session, then
//     back — the recovery story's adversarial input.
package faultgen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"rfidraw/internal/rfid"
)

// AllReaders selects every reader in a ReaderFault.
const AllReaders = -1

// ReaderFault is one composable fault applied to one reader's reports
// (or to every reader with Reader == AllReaders). Zero-valued fields are
// inactive, so a single ReaderFault can stack several fault kinds.
type ReaderFault struct {
	// Reader is the reader ID this fault applies to; AllReaders (-1)
	// applies it to every report.
	Reader int

	// ClockOffset shifts the reader's timestamps by a constant: positive
	// skew makes the reader run ahead of its peers. An offset beyond the
	// session's reorder window forces "reordered past" deliveries.
	ClockOffset time.Duration
	// DriftPPM makes the reader's clock run fast (positive) or slow
	// (negative) by parts per million of elapsed stream time, on top of
	// ClockOffset. Per-reader monotonicity is preserved for any drift
	// above -1e6 ppm.
	DriftPPM float64

	// DropoutEvery and DropoutLen describe periodic dropout bursts:
	// every DropoutEvery of stream time, reports are dropped for
	// DropoutLen. Both must be positive for the fault to be active.
	DropoutEvery time.Duration
	DropoutLen   time.Duration

	// DuplicateProb duplicates each surviving report with this
	// probability; DuplicateBurst is how many extra copies each
	// duplication emits (default 1 when DuplicateProb > 0).
	DuplicateProb  float64
	DuplicateBurst int

	// ShuffleWindow permutes the reader's reports within windows of this
	// much stream time, breaking per-reader timestamp monotonicity —
	// out-of-order delivery as the ingest gateway sees it.
	ShuffleWindow time.Duration

	// DeadFrom/DeadUntil silence the reader for [DeadFrom, DeadUntil) of
	// stream time: death at DeadFrom, rejoin at DeadUntil. Active when
	// DeadUntil > DeadFrom.
	DeadFrom  time.Duration
	DeadUntil time.Duration
}

// Plan is a seeded set of reader faults: the full description of one
// adversarial scenario's wire behaviour.
type Plan struct {
	// Seed drives every random decision; (Seed, readerID) fixes each
	// reader's random stream.
	Seed int64
	// Faults are applied in order; several may target the same reader.
	Faults []ReaderFault
}

// Validate rejects plans whose faults cannot be applied coherently.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		if f.Reader < AllReaders {
			return fmt.Errorf("faultgen: fault %d: reader %d", i, f.Reader)
		}
		if f.DriftPPM <= -1e6 {
			return fmt.Errorf("faultgen: fault %d: drift %v ppm reverses time", i, f.DriftPPM)
		}
		if f.DuplicateProb < 0 || f.DuplicateProb > 1 {
			return fmt.Errorf("faultgen: fault %d: duplicate probability %v", i, f.DuplicateProb)
		}
		if (f.DropoutEvery > 0) != (f.DropoutLen > 0) {
			return fmt.Errorf("faultgen: fault %d: dropout needs both period and length", i)
		}
		if f.DropoutLen > 0 && f.DropoutLen >= f.DropoutEvery {
			return fmt.Errorf("faultgen: fault %d: dropout %v swallows the whole period %v", i, f.DropoutLen, f.DropoutEvery)
		}
		if f.DeadUntil < f.DeadFrom {
			return fmt.Errorf("faultgen: fault %d: death interval [%v, %v) is reversed", i, f.DeadFrom, f.DeadUntil)
		}
		if f.ShuffleWindow < 0 {
			return fmt.Errorf("faultgen: fault %d: negative shuffle window", i)
		}
	}
	return nil
}

// Active reports whether the plan injects anything at all.
func (p Plan) Active() bool { return len(p.Faults) > 0 }

// Apply runs the plan over one report stream and returns the faulted
// stream. The input may hold one reader or several; each fault only
// touches its own reader's reports. The input slice is not modified.
// Apply is deterministic: equal (plan, input) gives equal output.
func (p Plan) Apply(stream []rfid.Report) []rfid.Report {
	out := append([]rfid.Report(nil), stream...)
	for _, f := range p.Faults {
		out = p.applyFault(f, out)
	}
	return out
}

// ApplyAll applies the plan to several per-reader streams (the shape
// sim.MultiWordRun.ReportsRF and loadgen use).
func (p Plan) ApplyAll(streams [][]rfid.Report) [][]rfid.Report {
	out := make([][]rfid.Report, len(streams))
	for i, s := range streams {
		out[i] = p.Apply(s)
	}
	return out
}

// applyFault runs one fault over a stream. Fault kinds compose in a
// fixed order chosen to mirror the physical causality: the reader dies
// (death), misses reads (dropout), re-reports replies (duplicates),
// stamps them with its own clock (skew/drift), and its network delivers
// them possibly out of order (shuffle).
func (p Plan) applyFault(f ReaderFault, in []rfid.Report) []rfid.Report {
	rngs := map[int]*rand.Rand{}
	rng := func(reader int) *rand.Rand {
		r, ok := rngs[reader]
		if !ok {
			r = rand.New(rand.NewSource(readerSeed(p.Seed, reader)))
			rngs[reader] = r
		}
		return r
	}
	out := make([]rfid.Report, 0, len(in))
	for _, rep := range in {
		if f.Reader != AllReaders && rep.ReaderID != f.Reader {
			out = append(out, rep)
			continue
		}
		if f.DeadUntil > f.DeadFrom && rep.Time >= f.DeadFrom && rep.Time < f.DeadUntil {
			continue
		}
		if f.DropoutEvery > 0 && rep.Time%f.DropoutEvery < f.DropoutLen {
			continue
		}
		copies := 1
		if f.DuplicateProb > 0 && rng(rep.ReaderID).Float64() < f.DuplicateProb {
			burst := f.DuplicateBurst
			if burst <= 0 {
				burst = 1
			}
			copies += burst
		}
		faulted := rep
		if f.ClockOffset != 0 || f.DriftPPM != 0 {
			faulted.Time = rep.Time + f.ClockOffset +
				time.Duration(float64(rep.Time)*f.DriftPPM/1e6)
		}
		for c := 0; c < copies; c++ {
			out = append(out, faulted)
		}
	}
	if f.ShuffleWindow > 0 {
		shuffleWindows(f, rng, out)
	}
	return out
}

// shuffleWindows permutes the faulted reader's reports within
// ShuffleWindow-sized buckets of stream time, in place. Bucketing by the
// report's own timestamp keeps the damage bounded (a report moves at
// most one window) while still breaking per-reader monotonicity at every
// bucket boundary crossing.
func shuffleWindows(f ReaderFault, rng func(int) *rand.Rand, out []rfid.Report) {
	// Indices of the faulted reader's reports, bucketed by window.
	buckets := map[int64][]int{}
	var order []int64
	for i, rep := range out {
		if f.Reader != AllReaders && rep.ReaderID != f.Reader {
			continue
		}
		w := int64(rep.Time / f.ShuffleWindow)
		if _, ok := buckets[w]; !ok {
			order = append(order, w)
		}
		buckets[w] = append(buckets[w], i)
	}
	// Deterministic bucket order: map iteration order must not leak into
	// the output, so walk windows in first-appearance order.
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, w := range order {
		idx := buckets[w]
		// One shared permutation source per fault application: key the
		// rng off the fault's reader selector, not each report's.
		r := rng(f.Reader)
		r.Shuffle(len(idx), func(a, b int) {
			out[idx[a]], out[idx[b]] = out[idx[b]], out[idx[a]]
		})
	}
}

// readerSeed mixes the plan seed with a reader ID into an independent
// per-reader stream seed (splitmix64 finalizer — cheap, well-spread, and
// stable across platforms).
func readerSeed(seed int64, reader int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(reader+0x10001)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Corruptions derives deterministic wire-level corruption variants of a
// byte stream: truncations, bit flips, length-field tampering and junk
// insertion — the damage patterns the resync reader must survive. It
// seeds the readerwire fuzz corpus; n bounds the variant count.
func Corruptions(seed int64, frames []byte, n int) [][]byte {
	if len(frames) == 0 || n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(readerSeed(seed, 0x7ea)))
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		b := append([]byte(nil), frames...)
		switch i % 4 {
		case 0: // truncate mid-frame
			b = b[:rng.Intn(len(b))]
		case 1: // flip a few bits
			for k := 0; k < 1+rng.Intn(4); k++ {
				b[rng.Intn(len(b))] ^= 1 << uint(rng.Intn(8))
			}
		case 2: // tamper a length prefix (first 4 bytes of some offset)
			if len(b) >= 4 {
				off := rng.Intn(len(b) - 3)
				b[off], b[off+1] = 0xff, byte(rng.Intn(256))
			}
		case 3: // insert junk bytes mid-stream
			junk := make([]byte, 1+rng.Intn(9))
			rng.Read(junk)
			off := rng.Intn(len(b))
			b = append(b[:off:off], append(junk, b[off:]...)...)
		}
		out = append(out, b)
	}
	return out
}
