package faultgen

import (
	"reflect"
	"testing"
	"time"

	"rfidraw/internal/rfid"
)

// stream builds a two-reader interleaved report stream: n reports per
// reader, one every step, distinct phases so reports are distinguishable.
func stream(n int, step time.Duration) []rfid.Report {
	var out []rfid.Report
	for i := 0; i < n; i++ {
		t := time.Duration(i) * step
		for reader := 0; reader < 2; reader++ {
			out = append(out, rfid.Report{
				Time:      t,
				ReaderID:  reader,
				AntennaID: 4*reader + 1,
				PhaseRad:  float64(i%628) / 100,
				PowerDB:   -30,
			})
		}
	}
	return out
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{Faults: []ReaderFault{{Reader: -2}}},
		{Faults: []ReaderFault{{DriftPPM: -1e6}}},
		{Faults: []ReaderFault{{DuplicateProb: 1.5}}},
		{Faults: []ReaderFault{{DropoutEvery: time.Second}}},
		{Faults: []ReaderFault{{DropoutEvery: time.Second, DropoutLen: time.Second}}},
		{Faults: []ReaderFault{{DeadFrom: time.Second, DeadUntil: time.Millisecond}}},
		{Faults: []ReaderFault{{ShuffleWindow: -time.Second}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d: Validate accepted invalid fault %+v", i, p.Faults[0])
		}
	}
	ok := Plan{Seed: 1, Faults: []ReaderFault{
		{Reader: AllReaders, ClockOffset: time.Millisecond, DriftPPM: 100,
			DropoutEvery: time.Second, DropoutLen: 100 * time.Millisecond,
			DuplicateProb: 0.5, DuplicateBurst: 2, ShuffleWindow: 10 * time.Millisecond,
			DeadFrom: time.Second, DeadUntil: 2 * time.Second},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("Validate rejected a coherent plan: %v", err)
	}
	if !ok.Active() {
		t.Fatal("plan with faults should be Active")
	}
	if (Plan{}).Active() {
		t.Fatal("empty plan should not be Active")
	}
}

// The central contract: equal (plan, input) must give equal output, and
// the input must not be mutated.
func TestApplyDeterministicAndPure(t *testing.T) {
	in := stream(500, 2*time.Millisecond)
	orig := append([]rfid.Report(nil), in...)
	plan := Plan{Seed: 99, Faults: []ReaderFault{
		{Reader: 0, ClockOffset: 40 * time.Millisecond, DriftPPM: 250},
		{Reader: AllReaders, DuplicateProb: 0.3, DuplicateBurst: 3},
		{Reader: 1, DropoutEvery: 120 * time.Millisecond, DropoutLen: 30 * time.Millisecond},
		{Reader: AllReaders, ShuffleWindow: 15 * time.Millisecond},
		{Reader: 1, DeadFrom: 300 * time.Millisecond, DeadUntil: 500 * time.Millisecond},
	}}
	a := plan.Apply(in)
	b := plan.Apply(in)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Apply is not deterministic for equal (plan, input)")
	}
	if !reflect.DeepEqual(in, orig) {
		t.Fatal("Apply mutated its input stream")
	}
	if reflect.DeepEqual(a, in) {
		t.Fatal("an active plan left the stream untouched")
	}
	// A different seed must change the random-driven faults.
	c := Plan{Seed: 100, Faults: plan.Faults}.Apply(in)
	if reflect.DeepEqual(a, c) {
		t.Fatal("changing the seed did not change the output")
	}
}

func TestApplyAllMatchesPerStream(t *testing.T) {
	in := stream(100, time.Millisecond)
	var perReader [][]rfid.Report
	for reader := 0; reader < 2; reader++ {
		var s []rfid.Report
		for _, rep := range in {
			if rep.ReaderID == reader {
				s = append(s, rep)
			}
		}
		perReader = append(perReader, s)
	}
	plan := Plan{Seed: 7, Faults: []ReaderFault{
		{Reader: AllReaders, DuplicateProb: 0.4},
	}}
	got := plan.ApplyAll(perReader)
	if len(got) != 2 {
		t.Fatalf("ApplyAll returned %d streams, want 2", len(got))
	}
	// Per-reader rng streams make splitting irrelevant: faulting each
	// reader's stream alone equals faulting it inside the merged slice.
	merged := plan.Apply(in)
	for reader := 0; reader < 2; reader++ {
		var fromMerged []rfid.Report
		for _, rep := range merged {
			if rep.ReaderID == reader {
				fromMerged = append(fromMerged, rep)
			}
		}
		if !reflect.DeepEqual(got[reader], fromMerged) {
			t.Fatalf("reader %d: per-stream faulting differs from merged faulting", reader)
		}
	}
}

func TestClockOffsetAndDrift(t *testing.T) {
	in := stream(10, 10*time.Millisecond)
	plan := Plan{Faults: []ReaderFault{{Reader: 1, ClockOffset: 40 * time.Millisecond, DriftPPM: 1e5}}}
	out := plan.Apply(in)
	if len(out) != len(in) {
		t.Fatalf("clock fault changed report count: %d -> %d", len(in), len(out))
	}
	for i, rep := range out {
		if rep.ReaderID == 0 {
			if rep.Time != in[i].Time {
				t.Fatalf("unfaulted reader 0 timestamp moved: %v -> %v", in[i].Time, rep.Time)
			}
			continue
		}
		want := in[i].Time + 40*time.Millisecond + in[i].Time/10 // 1e5 ppm = +10%
		if rep.Time != want {
			t.Fatalf("reader 1 report %d: time %v, want %v", i, rep.Time, want)
		}
	}
}

func TestDropoutBursts(t *testing.T) {
	in := stream(1000, time.Millisecond)
	plan := Plan{Faults: []ReaderFault{{Reader: 0, DropoutEvery: 100 * time.Millisecond, DropoutLen: 25 * time.Millisecond}}}
	out := plan.Apply(in)
	n0, n1 := 0, 0
	for _, rep := range out {
		if rep.ReaderID == 0 {
			n0++
			if rep.Time%(100*time.Millisecond) < 25*time.Millisecond {
				t.Fatalf("report at %v survived inside a dropout burst", rep.Time)
			}
		} else {
			n1++
		}
	}
	if n1 != 1000 {
		t.Fatalf("dropout on reader 0 touched reader 1: %d reports", n1)
	}
	if n0 != 750 { // 25% of each 100ms period dropped, periods align with 1ms grid
		t.Fatalf("reader 0 kept %d reports, want 750", n0)
	}
}

func TestDuplicateFlood(t *testing.T) {
	in := stream(2000, time.Millisecond)
	plan := Plan{Seed: 3, Faults: []ReaderFault{{Reader: AllReaders, DuplicateProb: 0.5, DuplicateBurst: 2}}}
	out := plan.Apply(in)
	if len(out) <= len(in) {
		t.Fatalf("duplicate flood did not grow the stream: %d -> %d", len(in), len(out))
	}
	// Expected growth: 50% of reports gain 2 copies → ~2x. Allow wide slack.
	ratio := float64(len(out)) / float64(len(in))
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("duplicate growth ratio %.2f outside [1.7, 2.3]", ratio)
	}
	// Default burst of 1 when unset.
	one := Plan{Seed: 3, Faults: []ReaderFault{{Reader: AllReaders, DuplicateProb: 1}}}.Apply(in)
	if len(one) != 2*len(in) {
		t.Fatalf("prob=1 burst=default should exactly double: %d -> %d", len(in), len(one))
	}
}

func TestShuffleBreaksMonotonicity(t *testing.T) {
	in := stream(500, 2*time.Millisecond)
	plan := Plan{Seed: 11, Faults: []ReaderFault{{Reader: 0, ShuffleWindow: 20 * time.Millisecond}}}
	out := plan.Apply(in)
	if len(out) != len(in) {
		t.Fatalf("shuffle changed report count: %d -> %d", len(in), len(out))
	}
	regressions, last := 0, time.Duration(-1)
	for _, rep := range out {
		if rep.ReaderID != 0 {
			continue
		}
		if rep.Time < last {
			regressions++
			// Bounded damage: a report moves at most one window.
			if last-rep.Time > 40*time.Millisecond {
				t.Fatalf("shuffle moved a report %v, beyond two windows", last-rep.Time)
			}
		}
		if rep.Time > last {
			last = rep.Time
		}
	}
	if regressions == 0 {
		t.Fatal("shuffle produced no timestamp regressions")
	}
	// Reader 1 untouched and still monotonic.
	last = -1
	for _, rep := range out {
		if rep.ReaderID != 1 {
			continue
		}
		if rep.Time < last {
			t.Fatal("shuffle on reader 0 broke reader 1 ordering")
		}
		last = rep.Time
	}
}

func TestDeathAndRejoin(t *testing.T) {
	in := stream(100, 10*time.Millisecond)
	plan := Plan{Faults: []ReaderFault{{Reader: 1, DeadFrom: 200 * time.Millisecond, DeadUntil: 600 * time.Millisecond}}}
	out := plan.Apply(in)
	sawBefore, sawAfter := false, false
	for _, rep := range out {
		if rep.ReaderID != 1 {
			continue
		}
		switch {
		case rep.Time < 200*time.Millisecond:
			sawBefore = true
		case rep.Time < 600*time.Millisecond:
			t.Fatalf("reader 1 reported at %v while dead", rep.Time)
		default:
			sawAfter = true
		}
	}
	if !sawBefore || !sawAfter {
		t.Fatalf("death interval clipped too much: before=%v after=%v", sawBefore, sawAfter)
	}
}

func TestEmptyPlanIsIdentity(t *testing.T) {
	in := stream(50, time.Millisecond)
	out := Plan{Seed: 42}.Apply(in)
	if !reflect.DeepEqual(in, out) {
		t.Fatal("empty plan changed the stream")
	}
}

func TestCorruptions(t *testing.T) {
	frames := make([]byte, 256)
	for i := range frames {
		frames[i] = byte(i)
	}
	a := Corruptions(5, frames, 12)
	b := Corruptions(5, frames, 12)
	if len(a) != 12 {
		t.Fatalf("got %d variants, want 12", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Corruptions is not deterministic")
	}
	differs := 0
	for _, v := range a {
		if !reflect.DeepEqual(v, frames) {
			differs++
		}
	}
	if differs < len(a)-1 {
		t.Fatalf("only %d/%d variants actually differ from the input", differs, len(a))
	}
	if Corruptions(5, nil, 4) != nil {
		t.Fatal("empty input should yield no variants")
	}
	if Corruptions(5, frames, 0) != nil {
		t.Fatal("n=0 should yield no variants")
	}
}
