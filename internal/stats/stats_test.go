package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	if got := Percentile(v, 50); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Percentile(v, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(v, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(v, 25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Fatalf("interpolated median = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	v := []float64{5, 1, 3}
	Percentile(v, 50)
	if v[0] != 5 || v[1] != 1 || v[2] != 3 {
		t.Fatalf("input mutated: %v", v)
	}
}

func TestMeanStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	if got := StdDev(v); got != 2 {
		t.Fatalf("stddev = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Fatal("empty mean/stddev should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	v := make([]float64, 100)
	for i := range v {
		v[i] = float64(i + 1) // 1..100
	}
	s := Summarize(v)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Median != 50.5 {
		t.Fatalf("median = %v", s.Median)
	}
	if math.Abs(s.P90-90.1) > 0.01 {
		t.Fatalf("p90 = %v", s.P90)
	}
	if got := Summarize(nil); got.N != 0 || !math.IsNaN(got.Mean) {
		t.Fatalf("empty summary = %+v", got)
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Fatal("summary string missing n")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.Len() != 4 {
		t.Fatal("len")
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.Quantile(0.5); got != 2.5 {
		t.Fatalf("quantile = %v", got)
	}
	xs, ps := c.Points(4)
	if len(xs) != 4 || len(ps) != 4 {
		t.Fatal("points shape")
	}
	if xs[0] != 1 || xs[3] != 4 || ps[3] != 1 {
		t.Fatalf("points = %v %v", xs, ps)
	}
	if !sort.Float64sAreSorted(ps) {
		t.Fatal("CDF must be monotone")
	}
	empty := NewCDF(nil)
	if !math.IsNaN(empty.At(1)) {
		t.Fatal("empty CDF At should be NaN")
	}
	if xs, ps := empty.Points(5); xs != nil || ps != nil {
		t.Fatal("empty CDF points should be nil")
	}
}

func TestBucketBy(t *testing.T) {
	keys := []float64{0.05, 0.15, 0.15, 0.45, 0.9, 2.0}
	vals := []float64{1, 2, 3, 4, 5, 6}
	edges := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	buckets := BucketBy(keys, vals, edges, true)
	if len(buckets) != 6 {
		t.Fatalf("bucket count = %d", len(buckets))
	}
	if len(buckets[0].Values) != 1 || buckets[0].Values[0] != 1 {
		t.Fatalf("bucket 0 = %v", buckets[0].Values)
	}
	if len(buckets[1].Values) != 2 {
		t.Fatalf("bucket 1 = %v", buckets[1].Values)
	}
	if len(buckets[5].Values) != 2 { // 0.9 and 2.0 in the open bucket
		t.Fatalf("open bucket = %v", buckets[5].Values)
	}
	if got := buckets[0].Label(); got != "0.0-0.1" {
		t.Fatalf("label = %q", got)
	}
	if got := buckets[5].Label(); got != ">0.5" {
		t.Fatalf("open label = %q", got)
	}
}

func TestBucketByPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BucketBy([]float64{1}, nil, []float64{0, 1}, false)
}

func TestRate(t *testing.T) {
	var r Rate
	if !math.IsNaN(r.Value()) {
		t.Fatal("empty rate should be NaN")
	}
	r.Add(true)
	r.Add(true)
	r.Add(false)
	if r.Success != 2 || r.Total != 3 {
		t.Fatalf("rate = %+v", r)
	}
	if math.Abs(r.Percent()-66.666) > 0.01 {
		t.Fatalf("percent = %v", r.Percent())
	}
	if !strings.Contains(r.String(), "2/3") {
		t.Fatalf("string = %q", r.String())
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"xx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[0], "long-header") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator = %q", lines[1])
	}
}

// Property: Percentile is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64, p1, p2 float64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float64, 50)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		p1 = math.Abs(math.Mod(p1, 100))
		p2 = math.Abs(math.Mod(p2, 100))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(v, p1) <= Percentile(v, p2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF.At is within [0,1] and monotone.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		v := make([]float64, 30)
		for i := range v {
			v[i] = rng.Float64() * 10
		}
		c := NewCDF(v)
		a = math.Mod(math.Abs(a), 12)
		b = math.Mod(math.Abs(b), 12)
		if a > b {
			a, b = b, a
		}
		pa, pb := c.At(a), c.At(b)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize order statistics are consistent.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float64, 40)
		for i := range v {
			v[i] = rng.NormFloat64() * 7
		}
		s := Summarize(v)
		return s.Min <= s.Median && s.Median <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
