// Package stats provides the small statistical toolkit the evaluation
// needs: empirical CDFs, percentiles, summaries and bucketing. The paper's
// evaluation (§8–§9) reports medians, 90th percentiles, CDFs and bucketed
// means; everything here is deterministic and allocation-light.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of values using
// linear interpolation between closest ranks. It returns NaN for an empty
// slice. The input is not modified.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of values.
func Median(values []float64) float64 { return Percentile(values, 50) }

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// StdDev returns the population standard deviation, or NaN for an empty
// slice.
func StdDev(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	m := Mean(values)
	var ss float64
	for _, v := range values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(values)))
}

// Summary holds the order statistics the evaluation reports.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P90    float64
	P99    float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of values. An empty input yields a zero-N
// summary with NaN statistics.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		nan := math.NaN()
		return Summary{N: 0, Mean: nan, Median: nan, P90: nan, P99: nan, Min: nan, Max: nan}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(sorted),
		Mean:   Mean(sorted),
		Median: percentileSorted(sorted, 50),
		P90:    percentileSorted(sorted, 90),
		P99:    percentileSorted(sorted, 99),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
	}
}

// String renders the summary compactly, in the units of the input.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f median=%.3f p90=%.3f p99=%.3f min=%.3f max=%.3f",
		s.N, s.Mean, s.Median, s.P90, s.P99, s.Min, s.Max)
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from a sample. The input is copied.
func NewCDF(values []float64) *CDF {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X ≤ x) for the empirical distribution.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the sample.
func (c *CDF) Quantile(q float64) float64 { return percentileSorted(c.sorted, q*100) }

// Points returns n evenly spaced (value, probability) pairs suitable for
// plotting the CDF curve, spanning the sample range.
func (c *CDF) Points(n int) (xs, ps []float64) {
	if len(c.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	for i := 0; i < n; i++ {
		x := lo
		if n > 1 {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		xs[i] = x
		ps[i] = c.At(x)
	}
	return xs, ps
}

// Bucket groups (key, value) observations by bucket edges over the key and
// reports per-bucket value statistics. It reproduces the Fig. 13 analysis:
// trajectory error bucketed by initial-position error.
type Bucket struct {
	// Lo and Hi are the bucket's key range [Lo, Hi); the final bucket is
	// unbounded above when built with open = true.
	Lo, Hi float64
	// Values are the observations whose key fell in the bucket.
	Values []float64
}

// Label renders the bucket range the way the paper labels Fig. 13's x axis
// ("0-0.1", ..., ">0.5").
func (b Bucket) Label() string {
	if math.IsInf(b.Hi, 1) {
		return fmt.Sprintf(">%.1f", b.Lo)
	}
	return fmt.Sprintf("%.1f-%.1f", b.Lo, b.Hi)
}

// BucketBy assigns each (key, value) pair to the bucket whose range contains
// the key. Edges must be ascending; keys below edges[0] are dropped. When
// open is true a final unbounded bucket (≥ last edge) is appended.
func BucketBy(keys, values []float64, edges []float64, open bool) []Bucket {
	if len(keys) != len(values) {
		panic("stats: BucketBy keys/values length mismatch")
	}
	n := len(edges) - 1
	if n < 0 {
		n = 0
	}
	buckets := make([]Bucket, 0, n+1)
	for i := 0; i+1 < len(edges); i++ {
		buckets = append(buckets, Bucket{Lo: edges[i], Hi: edges[i+1]})
	}
	if open && len(edges) > 0 {
		buckets = append(buckets, Bucket{Lo: edges[len(edges)-1], Hi: math.Inf(1)})
	}
	for i, k := range keys {
		for j := range buckets {
			if k >= buckets[j].Lo && k < buckets[j].Hi {
				buckets[j].Values = append(buckets[j].Values, values[i])
				break
			}
		}
	}
	return buckets
}

// Rate is a success ratio with its sample count.
type Rate struct {
	Success int
	Total   int
}

// Add records one trial.
func (r *Rate) Add(ok bool) {
	r.Total++
	if ok {
		r.Success++
	}
}

// Value returns the success fraction in [0, 1], or NaN when empty.
func (r Rate) Value() float64 {
	if r.Total == 0 {
		return math.NaN()
	}
	return float64(r.Success) / float64(r.Total)
}

// Percent returns the success rate in percent.
func (r Rate) Percent() float64 { return 100 * r.Value() }

// String implements fmt.Stringer.
func (r Rate) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", r.Success, r.Total, r.Percent())
}

// Table renders rows of labelled values as a fixed-width text table; the
// experiment harness uses it for its reports.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
