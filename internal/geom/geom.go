// Package geom provides the small amount of 2-D/3-D vector geometry the
// positioning system needs: points, polylines, rays, and the writing-plane
// convention that maps the paper's 2-D (x, z) outputs into 3-D space.
//
// Coordinate convention (see DESIGN.md §3): reader antennas are mounted on
// the wall plane y = 0 with x running right and z running up; the user
// writes in a plane parallel to the wall at y = distance. All positioning
// math is done with full 3-D Euclidean distances, while grids, trajectories
// and plots live in (x, z) within the writing plane.
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a point or vector in the writing plane: X right, Z up, in metres.
type Vec2 struct {
	X, Z float64
}

// Vec3 is a point or vector in room coordinates, in metres.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns u + v.
func (u Vec2) Add(v Vec2) Vec2 { return Vec2{u.X + v.X, u.Z + v.Z} }

// Sub returns u − v.
func (u Vec2) Sub(v Vec2) Vec2 { return Vec2{u.X - v.X, u.Z - v.Z} }

// Scale returns s·u.
func (u Vec2) Scale(s float64) Vec2 { return Vec2{s * u.X, s * u.Z} }

// Dot returns the dot product u·v.
func (u Vec2) Dot(v Vec2) float64 { return u.X*v.X + u.Z*v.Z }

// Norm returns the Euclidean length of u.
func (u Vec2) Norm() float64 { return math.Hypot(u.X, u.Z) }

// Dist returns the Euclidean distance between u and v.
func (u Vec2) Dist(v Vec2) float64 { return u.Sub(v).Norm() }

// Lerp linearly interpolates from u (t=0) to v (t=1).
func (u Vec2) Lerp(v Vec2, t float64) Vec2 {
	return Vec2{u.X + t*(v.X-u.X), u.Z + t*(v.Z-u.Z)}
}

// String implements fmt.Stringer.
func (u Vec2) String() string { return fmt.Sprintf("(%.3f, %.3f)", u.X, u.Z) }

// Add returns u + v.
func (u Vec3) Add(v Vec3) Vec3 { return Vec3{u.X + v.X, u.Y + v.Y, u.Z + v.Z} }

// Sub returns u − v.
func (u Vec3) Sub(v Vec3) Vec3 { return Vec3{u.X - v.X, u.Y - v.Y, u.Z - v.Z} }

// Scale returns s·u.
func (u Vec3) Scale(s float64) Vec3 { return Vec3{s * u.X, s * u.Y, s * u.Z} }

// Dot returns the dot product u·v.
func (u Vec3) Dot(v Vec3) float64 { return u.X*v.X + u.Y*v.Y + u.Z*v.Z }

// Norm returns the Euclidean length of u.
func (u Vec3) Norm() float64 { return math.Sqrt(u.Dot(u)) }

// Dist returns the Euclidean distance between u and v.
func (u Vec3) Dist(v Vec3) float64 { return u.Sub(v).Norm() }

// String implements fmt.Stringer.
func (u Vec3) String() string { return fmt.Sprintf("(%.3f, %.3f, %.3f)", u.X, u.Y, u.Z) }

// Plane is a writing plane parallel to the antenna wall at the given Y
// distance. It converts between plane coordinates (Vec2) and room
// coordinates (Vec3).
type Plane struct {
	// Y is the distance of the plane from the antenna wall, in metres.
	Y float64
}

// To3D lifts a plane point into room coordinates.
func (p Plane) To3D(v Vec2) Vec3 { return Vec3{v.X, p.Y, v.Z} }

// To2D projects a room point onto the plane's coordinates, discarding its Y.
func (p Plane) To2D(v Vec3) Vec2 { return Vec2{v.X, v.Z} }

// Rect is an axis-aligned rectangle in the writing plane, used to bound
// voting grids and plots.
type Rect struct {
	Min, Max Vec2
}

// Contains reports whether v lies inside the rectangle (inclusive).
func (r Rect) Contains(v Vec2) bool {
	return v.X >= r.Min.X && v.X <= r.Max.X && v.Z >= r.Min.Z && v.Z <= r.Max.Z
}

// Width returns the rectangle's extent along X.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the rectangle's extent along Z.
func (r Rect) Height() float64 { return r.Max.Z - r.Min.Z }

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Vec2 { return r.Min.Lerp(r.Max, 0.5) }

// Expand returns the rectangle grown by m on every side.
func (r Rect) Expand(m float64) Rect {
	return Rect{Vec2{r.Min.X - m, r.Min.Z - m}, Vec2{r.Max.X + m, r.Max.Z + m}}
}

// Clip returns v clamped into the rectangle.
func (r Rect) Clip(v Vec2) Vec2 {
	return Vec2{clamp(v.X, r.Min.X, r.Max.X), clamp(v.Z, r.Min.Z, r.Max.Z)}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Ray is a half-line in the writing plane, used by the AoA baseline to
// represent an array's estimated source direction.
type Ray struct {
	Origin Vec2
	// Dir is the direction; it need not be normalised.
	Dir Vec2
}

// IntersectRays returns the intersection point of two rays (treated as full
// lines) and reports whether they intersect at a single point. Parallel or
// degenerate rays return ok = false.
func IntersectRays(a, b Ray) (Vec2, bool) {
	// Solve a.Origin + s·a.Dir = b.Origin + t·b.Dir.
	det := a.Dir.X*(-b.Dir.Z) - (-b.Dir.X)*a.Dir.Z
	if math.Abs(det) < 1e-12 {
		return Vec2{}, false
	}
	rx := b.Origin.X - a.Origin.X
	rz := b.Origin.Z - a.Origin.Z
	s := (rx*(-b.Dir.Z) - (-b.Dir.X)*rz) / det
	return a.Origin.Add(a.Dir.Scale(s)), true
}

// PolylineLength returns the total arc length of the polyline.
func PolylineLength(pts []Vec2) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += pts[i].Dist(pts[i-1])
	}
	return total
}

// ResamplePolyline returns n points evenly spaced by arc length along the
// polyline. It returns nil when pts is empty or n <= 0. A single-point
// polyline is replicated.
func ResamplePolyline(pts []Vec2, n int) []Vec2 {
	if len(pts) == 0 || n <= 0 {
		return nil
	}
	out := make([]Vec2, n)
	if len(pts) == 1 {
		for i := range out {
			out[i] = pts[0]
		}
		return out
	}
	total := PolylineLength(pts)
	if total == 0 {
		for i := range out {
			out[i] = pts[0]
		}
		return out
	}
	if n == 1 {
		out[0] = pts[0]
		return out
	}
	step := total / float64(n-1)
	out[0] = pts[0]
	seg := 0
	segStart := 0.0 // arc length at pts[seg]
	segLen := pts[1].Dist(pts[0])
	for i := 1; i < n; i++ {
		target := float64(i) * step
		for target > segStart+segLen && seg < len(pts)-2 {
			segStart += segLen
			seg++
			segLen = pts[seg+1].Dist(pts[seg])
		}
		t := 0.0
		if segLen > 0 {
			t = (target - segStart) / segLen
		}
		if t > 1 {
			t = 1
		}
		out[i] = pts[seg].Lerp(pts[seg+1], t)
	}
	return out
}

// Centroid returns the mean of the points. It returns the zero vector for
// an empty slice.
func Centroid(pts []Vec2) Vec2 {
	if len(pts) == 0 {
		return Vec2{}
	}
	var c Vec2
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// Bounds returns the tightest Rect containing all points. ok is false for
// an empty slice.
func Bounds(pts []Vec2) (Rect, bool) {
	if len(pts) == 0 {
		return Rect{}, false
	}
	r := Rect{pts[0], pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Z = math.Min(r.Min.Z, p.Z)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Z = math.Max(r.Max.Z, p.Z)
	}
	return r, true
}
