package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestVec2Arithmetic(t *testing.T) {
	a := Vec2{1, 2}
	b := Vec2{3, -4}
	if got := a.Add(b); got != (Vec2{4, -2}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec2{-2, 6}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1*3+2*(-4) {
		t.Fatalf("Dot = %v", got)
	}
	if got := b.Norm(); got != 5 {
		t.Fatalf("Norm = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (Vec2{2, -1}) {
		t.Fatalf("Lerp = %v", got)
	}
}

func TestVec3Arithmetic(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-1, 0, 1}
	if got := a.Add(b); got != (Vec3{0, 2, 4}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{2, 2, 2}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Dot(b); got != -1+0+3 {
		t.Fatalf("Dot = %v", got)
	}
	if got := (Vec3{3, 4, 12}).Norm(); got != 13 {
		t.Fatalf("Norm = %v", got)
	}
	if got := a.Scale(-1); got != (Vec3{-1, -2, -3}) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestPlaneRoundTrip(t *testing.T) {
	p := Plane{Y: 2.5}
	v := Vec2{0.7, 1.3}
	v3 := p.To3D(v)
	if v3.Y != 2.5 {
		t.Fatalf("lifted Y = %v", v3.Y)
	}
	if got := p.To2D(v3); got != v {
		t.Fatalf("round trip = %v, want %v", got, v)
	}
}

func TestRect(t *testing.T) {
	r := Rect{Vec2{0, 0}, Vec2{2, 1}}
	if !r.Contains(Vec2{1, 0.5}) || r.Contains(Vec2{3, 0.5}) || r.Contains(Vec2{1, -0.1}) {
		t.Fatal("Contains wrong")
	}
	if r.Width() != 2 || r.Height() != 1 {
		t.Fatal("extent wrong")
	}
	if r.Center() != (Vec2{1, 0.5}) {
		t.Fatal("center wrong")
	}
	e := r.Expand(0.5)
	if e.Min != (Vec2{-0.5, -0.5}) || e.Max != (Vec2{2.5, 1.5}) {
		t.Fatalf("Expand = %v", e)
	}
	if got := r.Clip(Vec2{-1, 5}); got != (Vec2{0, 1}) {
		t.Fatalf("Clip = %v", got)
	}
	if got := r.Clip(Vec2{1, 0.25}); got != (Vec2{1, 0.25}) {
		t.Fatalf("Clip of interior point moved: %v", got)
	}
}

func TestIntersectRays(t *testing.T) {
	a := Ray{Vec2{0, 0}, Vec2{1, 1}}
	b := Ray{Vec2{2, 0}, Vec2{-1, 1}}
	p, ok := IntersectRays(a, b)
	if !ok {
		t.Fatal("expected intersection")
	}
	if !approx(p.X, 1, 1e-9) || !approx(p.Z, 1, 1e-9) {
		t.Fatalf("intersection = %v, want (1,1)", p)
	}
	// Parallel rays must fail.
	if _, ok := IntersectRays(a, Ray{Vec2{5, 0}, Vec2{2, 2}}); ok {
		t.Fatal("parallel rays should not intersect")
	}
	// Degenerate direction must fail.
	if _, ok := IntersectRays(Ray{Vec2{0, 0}, Vec2{}}, b); ok {
		t.Fatal("degenerate ray should not intersect")
	}
}

func TestPolylineLength(t *testing.T) {
	pts := []Vec2{{0, 0}, {3, 4}, {3, 5}}
	if got := PolylineLength(pts); got != 6 {
		t.Fatalf("length = %v", got)
	}
	if PolylineLength(nil) != 0 || PolylineLength(pts[:1]) != 0 {
		t.Fatal("empty/single polyline should have length 0")
	}
}

func TestResamplePolyline(t *testing.T) {
	pts := []Vec2{{0, 0}, {10, 0}}
	got := ResamplePolyline(pts, 11)
	if len(got) != 11 {
		t.Fatalf("len = %d", len(got))
	}
	for i, p := range got {
		if !approx(p.X, float64(i), 1e-9) || !approx(p.Z, 0, 1e-9) {
			t.Fatalf("point %d = %v", i, p)
		}
	}
	// Endpoints are preserved on a bent polyline.
	bent := []Vec2{{0, 0}, {1, 0}, {1, 1}}
	rs := ResamplePolyline(bent, 5)
	if rs[0] != bent[0] {
		t.Fatalf("first point %v", rs[0])
	}
	if !approx(rs[4].X, 1, 1e-9) || !approx(rs[4].Z, 1, 1e-9) {
		t.Fatalf("last point %v", rs[4])
	}
	// Degenerate inputs.
	if ResamplePolyline(nil, 5) != nil {
		t.Fatal("nil input should resample to nil")
	}
	if got := ResamplePolyline(bent, 0); got != nil {
		t.Fatal("n=0 should return nil")
	}
	single := ResamplePolyline([]Vec2{{2, 3}}, 4)
	for _, p := range single {
		if p != (Vec2{2, 3}) {
			t.Fatalf("single-point resample = %v", single)
		}
	}
	one := ResamplePolyline(bent, 1)
	if len(one) != 1 || one[0] != bent[0] {
		t.Fatalf("n=1 resample = %v", one)
	}
	// Zero-length polyline (coincident points).
	zl := ResamplePolyline([]Vec2{{1, 1}, {1, 1}}, 3)
	for _, p := range zl {
		if p != (Vec2{1, 1}) {
			t.Fatalf("zero-length resample = %v", zl)
		}
	}
}

func TestResamplePreservesLength(t *testing.T) {
	pts := []Vec2{{0, 0}, {1, 2}, {-1, 3}, {4, 4}, {2, -2}}
	want := PolylineLength(pts)
	got := PolylineLength(ResamplePolyline(pts, 2000))
	if math.Abs(got-want) > want*0.01 {
		t.Fatalf("resampled length %v, want ≈%v", got, want)
	}
}

func TestCentroidAndBounds(t *testing.T) {
	pts := []Vec2{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	if got := Centroid(pts); got != (Vec2{1, 1}) {
		t.Fatalf("centroid = %v", got)
	}
	if got := Centroid(nil); got != (Vec2{}) {
		t.Fatalf("empty centroid = %v", got)
	}
	r, ok := Bounds(pts)
	if !ok || r.Min != (Vec2{0, 0}) || r.Max != (Vec2{2, 2}) {
		t.Fatalf("bounds = %v ok=%v", r, ok)
	}
	if _, ok := Bounds(nil); ok {
		t.Fatal("bounds of empty should be not-ok")
	}
}

// Property: resampling twice with the same n is (nearly) idempotent.
func TestQuickResampleIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		pts := []Vec2{
			{math.Sin(float64(seed)), math.Cos(float64(seed))},
			{math.Sin(float64(seed) + 1), math.Cos(float64(seed) * 2)},
			{math.Sin(float64(seed) * 3), math.Cos(float64(seed) + 2)},
		}
		a := ResamplePolyline(pts, 64)
		b := ResamplePolyline(a, 64)
		tol := 0.05*PolylineLength(pts) + 1e-9
		for i := range a {
			if a[i].Dist(b[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: IntersectRays result lies on both lines.
func TestQuickIntersectOnBothLines(t *testing.T) {
	f := func(ox, oz, dx, dz, px, pz, qx, qz float64) bool {
		norm := func(v float64) float64 { return math.Mod(v, 10) }
		a := Ray{Vec2{norm(ox), norm(oz)}, Vec2{norm(dx) + 0.3, norm(dz)}}
		b := Ray{Vec2{norm(px), norm(pz)}, Vec2{norm(qx), norm(qz) + 0.7}}
		for _, v := range []float64{a.Origin.X, a.Origin.Z, a.Dir.X, a.Dir.Z, b.Origin.X, b.Origin.Z, b.Dir.X, b.Dir.Z} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p, ok := IntersectRays(a, b)
		if !ok {
			return true // parallel: nothing to check
		}
		onLine := func(r Ray) bool {
			// Cross product of (p−origin) with dir should vanish.
			w := p.Sub(r.Origin)
			cross := w.X*r.Dir.Z - w.Z*r.Dir.X
			scale := math.Max(1, w.Norm()*r.Dir.Norm())
			return math.Abs(cross)/scale < 1e-6
		}
		return onLine(a) && onLine(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
