package deploy

import (
	"fmt"
	"math"
	"sort"

	"rfidraw/internal/antenna"
	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
)

// Room places one copy of the standard Fig. 6d antenna square on the wall
// plane: the layout is rotated by RotRad about the room origin (in the
// x–z wall plane) and then translated to Origin. A non-zero rotation gives
// the non-orthogonal placements the paper never evaluates; several rooms
// give multi-room deployments with more than two reader arrays.
type Room struct {
	Origin geom.Vec2
	RotRad float64
}

// GeometrySpec is a named per-session antenna geometry: one or more rooms,
// each carrying the standard two-reader, eight-antenna layout. Room r's
// readers get IDs 2r and 2r+1 and its antennas IDs 8r+1..8r+8, so every
// geometry stays addressable by the wire protocol's (reader, antenna)
// pairs without renumbering.
type GeometrySpec struct {
	Name        string
	Description string
	Rooms       []Room
}

// Readers returns the number of reader arrays in the geometry.
func (g GeometrySpec) Readers() int { return 2 * len(g.Rooms) }

// transform maps a layout-local wall position into room coordinates.
func (r Room) transform(x, z float64) (float64, float64) {
	s, c := math.Sincos(r.RotRad)
	return r.Origin.X + x*c - z*s, r.Origin.Z + x*s + z*c
}

// Build constructs the deployment: each room is the standard layout under
// its rigid transform, and the pair structure (wide / coarse / cross) is
// replicated per room — pairs never straddle rooms, because a pair's
// steering table assumes both elements share a reader's phase reference.
func (g GeometrySpec) Build(carrier phys.Carrier, link phys.Link) (*RFIDraw, error) {
	if len(g.Rooms) == 0 {
		return nil, fmt.Errorf("deploy: geometry %q has no rooms", g.Name)
	}
	base, err := NewRFIDraw(carrier, link)
	if err != nil {
		return nil, err
	}
	out := &RFIDraw{Carrier: carrier, Link: link}
	for ri, room := range g.Rooms {
		ants := make([]antenna.Antenna, len(base.Antennas))
		for i, a := range base.Antennas {
			x, z := room.transform(a.Pos.X, a.Pos.Z)
			ants[i] = antenna.Antenna{
				ID:       8*ri + a.ID,
				ReaderID: 2*ri + a.ReaderID,
				Pos:      geom.Vec3{X: x, Y: a.Pos.Y, Z: z},
			}
		}
		out.Antennas = append(out.Antennas, ants...)
		pairs := func(ids [][2]int) ([]antenna.Pair, error) {
			ps := make([]antenna.Pair, 0, len(ids))
			for _, ij := range ids {
				p, err := antenna.NewPair(ants[ij[0]-1], ants[ij[1]-1], carrier, link)
				if err != nil {
					return nil, err
				}
				ps = append(ps, p)
			}
			return ps, nil
		}
		wide, err := pairs([][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 1}, {1, 3}, {2, 4}})
		if err != nil {
			return nil, err
		}
		coarse, err := pairs([][2]int{{5, 6}, {7, 8}})
		if err != nil {
			return nil, err
		}
		cross, err := pairs([][2]int{{5, 7}, {5, 8}, {6, 7}, {6, 8}})
		if err != nil {
			return nil, err
		}
		out.WidePairs = append(out.WidePairs, wide...)
		out.CoarsePairs = append(out.CoarsePairs, coarse...)
		out.CrossPairs = append(out.CrossPairs, cross...)
	}
	return out, nil
}

// BuildDefault builds the geometry at the prototype's carrier and link.
func (g GeometrySpec) BuildDefault() (*RFIDraw, error) {
	return g.Build(phys.DefaultCarrier(), phys.Backscatter)
}

// Region returns the writing-plane search region: the union bounding box
// of every room's transformed copy of the standard region. For the
// single-room untransformed geometry this is exactly DefaultRegion.
func (g GeometrySpec) Region() geom.Rect {
	std := DefaultRegion()
	corners := [4]geom.Vec2{
		std.Min,
		{X: std.Min.X, Z: std.Max.Z},
		{X: std.Max.X, Z: std.Min.Z},
		std.Max,
	}
	first := true
	var out geom.Rect
	for _, room := range g.Rooms {
		for _, c := range corners {
			x, z := room.transform(c.X, c.Z)
			if first {
				out = geom.Rect{Min: geom.Vec2{X: x, Z: z}, Max: geom.Vec2{X: x, Z: z}}
				first = false
				continue
			}
			out.Min.X = math.Min(out.Min.X, x)
			out.Min.Z = math.Min(out.Min.Z, z)
			out.Max.X = math.Max(out.Max.X, x)
			out.Max.Z = math.Max(out.Max.Z, z)
		}
	}
	return out
}

// Named geometries. "default" is the paper's Fig. 6d placement; "rotated"
// tilts the whole square ~17° so no pair axis is axis-aligned (the
// non-orthogonal case); "multiroom" adds a second, rotated room — four
// reader arrays, sixteen antennas — offset along the wall.
var geometries = []GeometrySpec{
	{
		Name:        "default",
		Description: "paper Fig. 6d: one room, two readers, axis-aligned",
		Rooms:       []Room{{}},
	},
	{
		Name:        "rotated",
		Description: "one room tilted 0.3 rad: non-orthogonal pair axes",
		Rooms:       []Room{{RotRad: 0.3}},
	},
	{
		Name:        "multiroom",
		Description: "two rooms (four readers, sixteen antennas), second room offset and tilted",
		Rooms: []Room{
			{},
			{Origin: geom.Vec2{X: 4.5, Z: 0.6}, RotRad: 0.35},
		},
	},
}

// GeometryByName resolves a named geometry; "" means "default".
func GeometryByName(name string) (GeometrySpec, error) {
	if name == "" {
		name = "default"
	}
	for _, g := range geometries {
		if g.Name == name {
			return g, nil
		}
	}
	return GeometrySpec{}, fmt.Errorf("deploy: unknown geometry %q (have %v)", name, GeometryNames())
}

// GeometryNames lists the registered geometry names, sorted.
func GeometryNames() []string {
	out := make([]string, len(geometries))
	for i, g := range geometries {
		out[i] = g.Name
	}
	sort.Strings(out)
	return out
}
