// Package deploy constructs the antenna deployments of the paper's
// evaluation (§6): RF-IDraw's Fig. 6d layout — four widely-spaced antennas
// on one reader plus four tightly-spaced antennas on a second reader — and
// the compared baseline's two 4-element uniform linear arrays using the
// same total of eight antennas.
package deploy

import (
	"fmt"

	"rfidraw/internal/antenna"
	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
)

// Reader IDs of the two-reader prototype.
const (
	ReaderA = 0 // widely-spaced pairs (antennas 1–4)
	ReaderB = 1 // tightly-spaced pairs (antennas 5–8)
)

// RFIDraw is the Fig. 6d deployment: the paper's antenna arrangement with
// the pair structure the algorithms consume.
type RFIDraw struct {
	Carrier phys.Carrier
	Link    phys.Link
	// Antennas holds all eight antennas, indexed by the paper's IDs
	// (1–8) in Antennas[ID-1] order.
	Antennas []antenna.Antenna
	// WidePairs are reader A's six pairs (square edges + diagonals),
	// each 8λ or more apart: the high-resolution grating-lobe pairs.
	WidePairs []antenna.Pair
	// CoarsePairs are reader B's two λ/4 pairs <5,6> and <7,8>: a single
	// unambiguous beam each (λ/4 because backscatter doubles phase
	// accumulation, §6).
	CoarsePairs []antenna.Pair
	// CrossPairs are reader B's remaining pairs <5,7>,<5,8>,<6,7>,<6,8>,
	// used to sharpen the coarse filter (Fig. 6c).
	CrossPairs []antenna.Pair
}

// Stage1Pairs returns the pairs used to build the stage-1 spatial filter:
// the coarse pairs plus the cross pairs.
func (d *RFIDraw) Stage1Pairs() []antenna.Pair {
	out := make([]antenna.Pair, 0, len(d.CoarsePairs)+len(d.CrossPairs))
	out = append(out, d.CoarsePairs...)
	out = append(out, d.CrossPairs...)
	return out
}

// AllPairs returns every pair the system votes with.
func (d *RFIDraw) AllPairs() []antenna.Pair {
	out := d.Stage1Pairs()
	return append(out, d.WidePairs...)
}

// AntennaByID returns the antenna with the paper's 1-based ID.
func (d *RFIDraw) AntennaByID(id int) (antenna.Antenna, error) {
	if id < 1 || id > len(d.Antennas) {
		return antenna.Antenna{}, fmt.Errorf("deploy: no antenna %d", id)
	}
	return d.Antennas[id-1], nil
}

// SideWavelengths is the wide square's side in wavelengths (8λ ≈ 2.6 m).
const SideWavelengths = 8

// NewRFIDraw builds the standard deployment on the wall plane y = 0:
//
//	2 ───────── 3        antennas 1–4: reader A corners, 8λ apart
//	│           │        antennas 5,6: reader B vertical λ/4 pair, mid-left
//	5                    antennas 7,8: reader B horizontal λ/4 pair, mid-bottom
//	6
//	│           │
//	1 ──7 8──── 4
//
// The origin sits at antenna 1; x runs right, z runs up.
func NewRFIDraw(carrier phys.Carrier, link phys.Link) (*RFIDraw, error) {
	lambda := carrier.WavelengthM
	L := SideWavelengths * lambda
	q := lambda / 4
	mk := func(id, reader int, x, z float64) antenna.Antenna {
		return antenna.Antenna{ID: id, ReaderID: reader, Pos: geom.Vec3{X: x, Z: z}}
	}
	ants := []antenna.Antenna{
		mk(1, ReaderA, 0, 0),
		mk(2, ReaderA, 0, L),
		mk(3, ReaderA, L, L),
		mk(4, ReaderA, L, 0),
		// Reader B: vertical pair on the left edge at mid-height and a
		// horizontal pair on the bottom edge at mid-width, slightly
		// outside the square so no element collides with reader A's.
		mk(5, ReaderB, -0.30, L/2),
		mk(6, ReaderB, -0.30, L/2+q),
		mk(7, ReaderB, L/2, -0.30),
		mk(8, ReaderB, L/2+q, -0.30),
	}
	pair := func(i, j int) (antenna.Pair, error) {
		return antenna.NewPair(ants[i-1], ants[j-1], carrier, link)
	}
	mustPairs := func(ids [][2]int) ([]antenna.Pair, error) {
		out := make([]antenna.Pair, 0, len(ids))
		for _, ij := range ids {
			p, err := pair(ij[0], ij[1])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
		return out, nil
	}
	wide, err := mustPairs([][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 1}, {1, 3}, {2, 4}})
	if err != nil {
		return nil, err
	}
	coarse, err := mustPairs([][2]int{{5, 6}, {7, 8}})
	if err != nil {
		return nil, err
	}
	cross, err := mustPairs([][2]int{{5, 7}, {5, 8}, {6, 7}, {6, 8}})
	if err != nil {
		return nil, err
	}
	return &RFIDraw{
		Carrier:     carrier,
		Link:        link,
		Antennas:    ants,
		WidePairs:   wide,
		CoarsePairs: coarse,
		CrossPairs:  cross,
	}, nil
}

// DefaultRFIDraw builds the deployment at the prototype's 922 MHz carrier
// with backscatter links.
func DefaultRFIDraw() (*RFIDraw, error) {
	return NewRFIDraw(phys.DefaultCarrier(), phys.Backscatter)
}

// Baseline is the compared scheme's deployment (§6): two 4-element λ/4
// uniform linear arrays with the same total number of antennas, one along
// the left edge of the square and one along the bottom edge.
type Baseline struct {
	Carrier phys.Carrier
	Link    phys.Link
	// Left is the vertical array along the square's left edge.
	Left antenna.Array
	// Bottom is the horizontal array along the square's bottom edge.
	Bottom antenna.Array
}

// NewBaseline builds the baseline deployment matched to the RF-IDraw
// square: array phase centres at the middle of the left and bottom edges.
func NewBaseline(carrier phys.Carrier, link phys.Link) (*Baseline, error) {
	lambda := carrier.WavelengthM
	L := SideWavelengths * lambda
	q := lambda / 4
	// Centre each 4-element array (span 3·λ/4) on its edge midpoint.
	left, err := antenna.NewULA(ReaderA, 1, 4,
		geom.Vec3{X: 0, Z: L/2 - 1.5*q}, geom.Vec3{Z: q}, carrier, link)
	if err != nil {
		return nil, err
	}
	bottom, err := antenna.NewULA(ReaderB, 5, 4,
		geom.Vec3{X: L/2 - 1.5*q, Z: 0}, geom.Vec3{X: q}, carrier, link)
	if err != nil {
		return nil, err
	}
	return &Baseline{Carrier: carrier, Link: link, Left: left, Bottom: bottom}, nil
}

// DefaultBaseline builds the baseline at the prototype's carrier.
func DefaultBaseline() (*Baseline, error) {
	return NewBaseline(phys.DefaultCarrier(), phys.Backscatter)
}

// AllAntennas returns the eight baseline antennas.
func (b *Baseline) AllAntennas() []antenna.Antenna {
	out := make([]antenna.Antenna, 0, len(b.Left.Elements)+len(b.Bottom.Elements))
	out = append(out, b.Left.Elements...)
	out = append(out, b.Bottom.Elements...)
	return out
}

// DefaultRegion is the writing-plane search region used throughout the
// evaluation: the area in front of the antenna square.
func DefaultRegion() geom.Rect {
	lambda := phys.DefaultCarrier().WavelengthM
	L := SideWavelengths * lambda
	return geom.Rect{Min: geom.Vec2{X: -0.2, Z: -0.2}, Max: geom.Vec2{X: L + 0.2, Z: L * 0.8}}
}
