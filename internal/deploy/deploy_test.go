package deploy

import (
	"math"
	"testing"

	"rfidraw/internal/phys"
)

func TestNewRFIDrawStructure(t *testing.T) {
	d, err := DefaultRFIDraw()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Antennas) != 8 {
		t.Fatalf("antennas = %d", len(d.Antennas))
	}
	if len(d.WidePairs) != 6 {
		t.Fatalf("wide pairs = %d, want 6 (§3.4)", len(d.WidePairs))
	}
	if len(d.CoarsePairs) != 2 || len(d.CrossPairs) != 4 {
		t.Fatalf("coarse/cross = %d/%d", len(d.CoarsePairs), len(d.CrossPairs))
	}
	if len(d.Stage1Pairs()) != 6 || len(d.AllPairs()) != 12 {
		t.Fatal("pair aggregation wrong")
	}
	lambda := d.Carrier.WavelengthM
	// Square edges are 8λ ≈ 2.6 m (§6).
	for _, i := range []int{0, 1, 2, 3} {
		sep := d.WidePairs[i].Separation()
		if math.Abs(sep-8*lambda) > 1e-9 {
			t.Errorf("wide pair %d separation = %v, want 8λ", i, sep)
		}
	}
	// Diagonals are 8√2 λ.
	for _, i := range []int{4, 5} {
		sep := d.WidePairs[i].Separation()
		if math.Abs(sep-8*math.Sqrt2*lambda) > 1e-9 {
			t.Errorf("diagonal pair %d separation = %v", i, sep)
		}
	}
	// Coarse pairs are λ/4 (backscatter-unambiguous, §6) and single-beam.
	for i, p := range d.CoarsePairs {
		if math.Abs(p.Separation()-lambda/4) > 1e-9 {
			t.Errorf("coarse pair %d separation = %v, want λ/4", i, p.Separation())
		}
		if p.LobeCount() != 1 {
			t.Errorf("coarse pair %d has %d lobes, want 1", i, p.LobeCount())
		}
	}
	// Wide pairs have many lobes.
	if d.WidePairs[0].LobeCount() < 16 {
		t.Errorf("wide pair lobes = %d, want ≥16", d.WidePairs[0].LobeCount())
	}
}

func TestReaderAssignment(t *testing.T) {
	d, err := DefaultRFIDraw()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{1, 2, 3, 4} {
		a, err := d.AntennaByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.ReaderID != ReaderA {
			t.Errorf("antenna %d on reader %d, want A", id, a.ReaderID)
		}
	}
	for _, id := range []int{5, 6, 7, 8} {
		a, err := d.AntennaByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.ReaderID != ReaderB {
			t.Errorf("antenna %d on reader %d, want B", id, a.ReaderID)
		}
	}
	if _, err := d.AntennaByID(0); err == nil {
		t.Fatal("ID 0 should error")
	}
	if _, err := d.AntennaByID(9); err == nil {
		t.Fatal("ID 9 should error")
	}
	// No pair spans readers (§3.5).
	for _, p := range d.AllPairs() {
		if p.I.ReaderID != p.J.ReaderID {
			t.Fatalf("pair <%d,%d> spans readers", p.I.ID, p.J.ID)
		}
	}
}

func TestNewBaselineStructure(t *testing.T) {
	b, err := DefaultBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.AllAntennas()) != 8 {
		t.Fatalf("baseline antennas = %d, want 8 (same as RF-IDraw)", len(b.AllAntennas()))
	}
	lambda := b.Carrier.WavelengthM
	// λ/4 element spacing (§6).
	gotL := b.Left.Elements[1].Pos.Dist(b.Left.Elements[0].Pos)
	gotB := b.Bottom.Elements[1].Pos.Dist(b.Bottom.Elements[0].Pos)
	if math.Abs(gotL-lambda/4) > 1e-9 || math.Abs(gotB-lambda/4) > 1e-9 {
		t.Fatalf("element spacing = %v / %v, want λ/4", gotL, gotB)
	}
	// Left array is vertical, bottom horizontal.
	if b.Left.Axis().Z < 0.99 {
		t.Fatalf("left axis = %v", b.Left.Axis())
	}
	if b.Bottom.Axis().X < 0.99 {
		t.Fatalf("bottom axis = %v", b.Bottom.Axis())
	}
	// Phase centres on the edge midpoints.
	L := SideWavelengths * lambda
	if math.Abs(b.Left.Center().Z-L/2) > 1e-9 || math.Abs(b.Left.Center().X) > 1e-9 {
		t.Fatalf("left center = %v", b.Left.Center())
	}
	if math.Abs(b.Bottom.Center().X-L/2) > 1e-9 || math.Abs(b.Bottom.Center().Z) > 1e-9 {
		t.Fatalf("bottom center = %v", b.Bottom.Center())
	}
}

func TestDefaultRegionCoversSquare(t *testing.T) {
	r := DefaultRegion()
	if r.Width() <= 0 || r.Height() <= 0 {
		t.Fatal("degenerate region")
	}
	d, _ := DefaultRFIDraw()
	lambda := d.Carrier.WavelengthM
	if r.Max.X < 8*lambda {
		t.Fatal("region should span the antenna square")
	}
}

func TestNewRFIDrawOneWayLink(t *testing.T) {
	// The deployment also supports one-way links (the §9.3 WiFi
	// discussion); lobe counts halve relative to backscatter.
	d, err := NewRFIDraw(phys.DefaultCarrier(), phys.OneWay)
	if err != nil {
		t.Fatal(err)
	}
	bs, _ := DefaultRFIDraw()
	if d.WidePairs[0].LobeCount() >= bs.WidePairs[0].LobeCount() {
		t.Fatal("one-way link should have fewer lobes than backscatter")
	}
}
