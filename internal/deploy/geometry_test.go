package deploy

import (
	"math"
	"testing"

	"rfidraw/internal/geom"
)

func TestDefaultGeometryMatchesNewRFIDraw(t *testing.T) {
	g, err := GeometryByName("")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "default" {
		t.Fatalf("empty name resolved to %q", g.Name)
	}
	built, err := g.BuildDefault()
	if err != nil {
		t.Fatal(err)
	}
	std, err := DefaultRFIDraw()
	if err != nil {
		t.Fatal(err)
	}
	if len(built.Antennas) != len(std.Antennas) {
		t.Fatalf("default geometry has %d antennas, want %d", len(built.Antennas), len(std.Antennas))
	}
	for i, a := range built.Antennas {
		b := std.Antennas[i]
		if a.ID != b.ID || a.ReaderID != b.ReaderID {
			t.Fatalf("antenna %d: (%d,%d) != (%d,%d)", i, a.ID, a.ReaderID, b.ID, b.ReaderID)
		}
		if math.Abs(a.Pos.X-b.Pos.X) > 1e-12 || math.Abs(a.Pos.Z-b.Pos.Z) > 1e-12 {
			t.Fatalf("antenna %d moved: %+v != %+v", i, a.Pos, b.Pos)
		}
	}
	if len(built.WidePairs) != 6 || len(built.CoarsePairs) != 2 || len(built.CrossPairs) != 4 {
		t.Fatalf("default pair counts: wide=%d coarse=%d cross=%d",
			len(built.WidePairs), len(built.CoarsePairs), len(built.CrossPairs))
	}
	reg := g.Region()
	std2 := DefaultRegion()
	if reg != std2 {
		t.Fatalf("default Region %+v != DefaultRegion %+v", reg, std2)
	}
}

func TestRotatedGeometryPreservesPairBaselines(t *testing.T) {
	g, err := GeometryByName("rotated")
	if err != nil {
		t.Fatal(err)
	}
	built, err := g.BuildDefault()
	if err != nil {
		t.Fatal(err)
	}
	std, err := DefaultRFIDraw()
	if err != nil {
		t.Fatal(err)
	}
	// A rigid transform must preserve every pair separation exactly.
	dist := func(d *RFIDraw, i, j int) float64 {
		a, b := d.Antennas[i], d.Antennas[j]
		dx, dz := a.Pos.X-b.Pos.X, a.Pos.Z-b.Pos.Z
		return math.Hypot(dx, dz)
	}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if math.Abs(dist(built, i, j)-dist(std, i, j)) > 1e-9 {
				t.Fatalf("rotation changed separation of antennas %d,%d", i+1, j+1)
			}
		}
	}
	// And at least one antenna must have actually moved.
	if built.Antennas[1].Pos == std.Antennas[1].Pos {
		t.Fatal("rotated geometry did not move any antenna")
	}
}

func TestMultiroomGeometry(t *testing.T) {
	g, err := GeometryByName("multiroom")
	if err != nil {
		t.Fatal(err)
	}
	if g.Readers() != 4 {
		t.Fatalf("multiroom has %d readers, want 4", g.Readers())
	}
	built, err := g.BuildDefault()
	if err != nil {
		t.Fatal(err)
	}
	if len(built.Antennas) != 16 {
		t.Fatalf("multiroom has %d antennas, want 16", len(built.Antennas))
	}
	// IDs 1..16, readers 0..3, no pair straddling rooms.
	for i, a := range built.Antennas {
		if a.ID != i+1 {
			t.Fatalf("antenna %d has ID %d", i, a.ID)
		}
		wantReader := (i / 8 * 2) + btoi(i%8 >= 4)
		if a.ReaderID != wantReader {
			t.Fatalf("antenna %d has reader %d, want %d", a.ID, a.ReaderID, wantReader)
		}
	}
	for _, p := range built.AllPairs() {
		ra, rb := (p.I.ID-1)/8, (p.J.ID-1)/8
		if ra != rb {
			t.Fatalf("pair <%d,%d> straddles rooms", p.I.ID, p.J.ID)
		}
	}
	if got := len(built.AllPairs()); got != 24 {
		t.Fatalf("multiroom has %d pairs, want 24", got)
	}
	// The region must cover both rooms' antennas.
	reg := g.Region()
	for _, a := range built.Antennas {
		in := a.Pos.X >= reg.Min.X-0.5 && a.Pos.X <= reg.Max.X+0.5 &&
			a.Pos.Z >= reg.Min.Z-0.5 && a.Pos.Z <= reg.Max.Z+0.5
		if !in {
			t.Fatalf("antenna %d at %+v outside region %+v", a.ID, a.Pos, reg)
		}
	}
	if reg.Width() <= DefaultRegion().Width() {
		t.Fatal("multiroom region no wider than one room")
	}
}

func TestGeometryErrors(t *testing.T) {
	if _, err := GeometryByName("no-such-geometry"); err == nil {
		t.Fatal("unknown geometry name accepted")
	}
	if _, err := (GeometrySpec{Name: "empty"}).BuildDefault(); err == nil {
		t.Fatal("zero-room geometry built")
	}
	names := GeometryNames()
	if len(names) != 3 {
		t.Fatalf("GeometryNames = %v", names)
	}
	for _, n := range names {
		if _, err := GeometryByName(n); err != nil {
			t.Fatalf("registered geometry %q does not resolve: %v", n, err)
		}
	}
	_ = geom.Rect{}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
