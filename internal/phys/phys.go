// Package phys provides the RF physics primitives the rest of the system is
// built on: carrier/wavelength bookkeeping, wrapped-phase arithmetic, and
// unit helpers.
//
// Conventions used throughout the repository:
//
//   - Phases are in radians and, when "wrapped", live in [0, 2π).
//   - Phase differences are wrapped to (−π, π] by WrapSigned.
//   - Distances are in metres, frequencies in Hz, time in seconds.
//   - A signal's phase rotates by 2π for every wavelength travelled, so the
//     received phase of a one-way path of length d is −2π·d/λ (mod 2π). An
//     RFID backscatter link traverses the path twice, which callers express
//     with TravelFactor (see the Link type).
package phys

import "math"

// SpeedOfLight is the propagation speed used for wavelength computation, in
// metres per second.
const SpeedOfLight = 299792458.0

// TwoPi is 2π, the full phase circle.
const TwoPi = 2 * math.Pi

// Link describes how many times the signal traverses the reader→tag path.
// The equations in the paper (§3.1) are written for a one-way transmitter;
// RFID backscatter doubles every distance term (footnote 3 of the paper).
type Link int

const (
	// OneWay models an active transmitter: the phase reflects the one-way
	// distance from source to receive antenna.
	OneWay Link = 1
	// Backscatter models a passive RFID: the reader's carrier travels to
	// the tag and back, so the phase reflects the round-trip distance.
	Backscatter Link = 2
)

// TravelFactor returns the distance multiplier for the link type: 1 for
// one-way transmission, 2 for backscatter.
func (l Link) TravelFactor() float64 { return float64(l) }

// String implements fmt.Stringer.
func (l Link) String() string {
	switch l {
	case OneWay:
		return "one-way"
	case Backscatter:
		return "backscatter"
	default:
		return "unknown-link"
	}
}

// Carrier bundles the carrier frequency with its derived wavelength. The
// paper's prototype queries tags at 922 MHz (§6).
type Carrier struct {
	// FrequencyHz is the carrier frequency in Hz.
	FrequencyHz float64
	// WavelengthM is the carrier wavelength in metres, c/f.
	WavelengthM float64
}

// NewCarrier returns a Carrier for the given frequency in Hz.
func NewCarrier(freqHz float64) Carrier {
	return Carrier{FrequencyHz: freqHz, WavelengthM: SpeedOfLight / freqHz}
}

// DefaultCarrier is the 922 MHz UHF carrier used by the paper's prototype.
// Its wavelength is ≈32.5 cm, making the 8λ wide-pair separation 2.6 m.
func DefaultCarrier() Carrier { return NewCarrier(922e6) }

// Wrap reduces a phase in radians to the canonical interval [0, 2π).
func Wrap(phase float64) float64 {
	p := math.Mod(phase, TwoPi)
	if p < 0 {
		p += TwoPi
	}
	return p
}

// WrapSigned reduces a phase difference to (−π, π]. It is the right wrap for
// comparing two wrapped phases: WrapSigned(a−b) is the smallest rotation
// taking b to a.
func WrapSigned(phase float64) float64 {
	p := math.Mod(phase, TwoPi)
	switch {
	case p <= -math.Pi:
		p += TwoPi
	case p > math.Pi:
		p -= TwoPi
	}
	return p
}

// PathPhase returns the wrapped received phase of a pure path of the given
// one-way length in metres: −2π·F·d/λ wrapped to [0, 2π), where F is the
// link's travel factor. This is Eq. 1 of the paper generalised to
// backscatter.
func PathPhase(c Carrier, link Link, distanceM float64) float64 {
	return Wrap(-TwoPi * link.TravelFactor() * distanceM / c.WavelengthM)
}

// PhaseToDistanceTurns converts a phase difference Δφ (radians) into
// fractional wavelengths (turns): Δφ/2π. Eq. 2 of the paper expresses the
// path-length difference Δd/λ as this quantity plus an integer k.
func PhaseToDistanceTurns(deltaPhase float64) float64 { return deltaPhase / TwoPi }

// UnwrapNext continues a phase-unwrapping sequence: given the previous
// unwrapped value and a new wrapped measurement, it returns the unwrapped
// value closest to prev that is congruent to next (mod 2π). This implements
// the "unwrapping ∆φ" step of the tracing algorithm (§5.2).
func UnwrapNext(prevUnwrapped, nextWrapped float64) float64 {
	return prevUnwrapped + WrapSigned(nextWrapped-prevUnwrapped)
}

// UnwrapSeries unwraps a whole series of wrapped phases in place, starting
// from the first sample. The result is a continuous phase track whose
// element-to-element steps are all within (−π, π].
func UnwrapSeries(wrapped []float64) []float64 {
	if len(wrapped) == 0 {
		return nil
	}
	out := make([]float64, len(wrapped))
	out[0] = wrapped[0]
	for i := 1; i < len(wrapped); i++ {
		out[i] = UnwrapNext(out[i-1], wrapped[i])
	}
	return out
}

// DB converts a linear power ratio to decibels.
func DB(ratio float64) float64 { return 10 * math.Log10(ratio) }

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// AmplitudeFromDB converts a power gain in dB to an amplitude (field) gain.
func AmplitudeFromDB(db float64) float64 { return math.Pow(10, db/20) }
