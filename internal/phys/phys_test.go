package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewCarrierWavelength(t *testing.T) {
	c := NewCarrier(922e6)
	want := SpeedOfLight / 922e6
	if !almostEqual(c.WavelengthM, want, 1e-12) {
		t.Fatalf("wavelength = %v, want %v", c.WavelengthM, want)
	}
	if c.WavelengthM < 0.32 || c.WavelengthM > 0.33 {
		t.Fatalf("922 MHz wavelength should be ≈32.5 cm, got %v m", c.WavelengthM)
	}
}

func TestDefaultCarrierEightLambda(t *testing.T) {
	// The paper states the 8λ wide-pair separation is 2.6 m (§6).
	c := DefaultCarrier()
	if got := 8 * c.WavelengthM; math.Abs(got-2.6) > 0.01 {
		t.Fatalf("8λ = %v m, want ≈2.6 m", got)
	}
}

func TestWrapRange(t *testing.T) {
	cases := []float64{0, 1, -1, math.Pi, -math.Pi, TwoPi, -TwoPi, 7 * TwoPi, -9.5, 123.456}
	for _, in := range cases {
		got := Wrap(in)
		if got < 0 || got >= TwoPi {
			t.Errorf("Wrap(%v) = %v out of [0, 2π)", in, got)
		}
		// Congruence mod 2π.
		if d := math.Mod(got-in, TwoPi); !almostEqual(math.Abs(WrapSigned(d)), 0, 1e-9) {
			t.Errorf("Wrap(%v) = %v not congruent mod 2π", in, got)
		}
	}
}

func TestWrapSignedRange(t *testing.T) {
	cases := []float64{0, 3, -3, math.Pi, -math.Pi, math.Pi + 0.1, -math.Pi - 0.1, 100, -100}
	for _, in := range cases {
		got := WrapSigned(in)
		if got <= -math.Pi || got > math.Pi {
			t.Errorf("WrapSigned(%v) = %v out of (−π, π]", in, got)
		}
	}
}

func TestWrapSignedExactBoundary(t *testing.T) {
	if got := WrapSigned(math.Pi); !almostEqual(got, math.Pi, 1e-12) {
		t.Fatalf("WrapSigned(π) = %v, want π", got)
	}
	if got := WrapSigned(-math.Pi); !almostEqual(got, math.Pi, 1e-12) {
		t.Fatalf("WrapSigned(−π) = %v, want π (wrapped up)", got)
	}
}

func TestPathPhaseWholeWavelengths(t *testing.T) {
	c := NewCarrier(1e9) // λ ≈ 0.2998 m
	for k := 1; k < 5; k++ {
		d := float64(k) * c.WavelengthM
		if got := PathPhase(c, OneWay, d); !almostEqual(got, 0, 1e-6) && !almostEqual(got, TwoPi, 1e-6) {
			t.Errorf("one-way phase over %d whole wavelengths = %v, want ≈0", k, got)
		}
	}
}

func TestPathPhaseBackscatterDoubles(t *testing.T) {
	c := DefaultCarrier()
	d := 1.2345
	one := PathPhase(c, OneWay, d)
	rt := PathPhase(c, Backscatter, d)
	if !almostEqual(rt, Wrap(2*(-TwoPi*d/c.WavelengthM)), 1e-9) {
		t.Fatalf("backscatter phase %v inconsistent with doubled one-way", rt)
	}
	// The quarter-wavelength path is a half-turn round trip.
	q := PathPhase(c, Backscatter, c.WavelengthM/4)
	if !almostEqual(q, math.Pi, 1e-9) {
		t.Fatalf("λ/4 backscatter phase = %v, want π", q)
	}
	_ = one
}

func TestUnwrapNextContinuity(t *testing.T) {
	// A phase ramp crossing the 2π boundary must unwrap monotonically.
	var prev float64
	step := 0.4
	unwrapped := 0.0
	for i := 0; i < 100; i++ {
		truth := float64(i) * step
		wrapped := Wrap(truth)
		if i == 0 {
			unwrapped = wrapped
		} else {
			unwrapped = UnwrapNext(prev, wrapped)
		}
		if !almostEqual(unwrapped, truth, 1e-9) {
			t.Fatalf("step %d: unwrapped %v, want %v", i, unwrapped, truth)
		}
		prev = unwrapped
	}
}

func TestUnwrapSeries(t *testing.T) {
	truth := make([]float64, 200)
	wrapped := make([]float64, 200)
	for i := range truth {
		truth[i] = -0.5 + 0.31*float64(i) // crosses many boundaries
		wrapped[i] = Wrap(truth[i])
	}
	got := UnwrapSeries(wrapped)
	// The unwrapped series may differ from truth by a constant multiple of
	// 2π fixed by the first sample; check the differences instead.
	for i := 1; i < len(got); i++ {
		want := truth[i] - truth[i-1]
		if d := got[i] - got[i-1]; !almostEqual(d, want, 1e-9) {
			t.Fatalf("step %d: delta %v, want %v", i, d, want)
		}
	}
	if UnwrapSeries(nil) != nil {
		t.Fatal("UnwrapSeries(nil) should be nil")
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, r := range []float64{0.001, 0.5, 1, 2, 1000} {
		if got := FromDB(DB(r)); !almostEqual(got, r, 1e-9*r) {
			t.Errorf("FromDB(DB(%v)) = %v", r, got)
		}
	}
	if !almostEqual(AmplitudeFromDB(20), 10, 1e-9) {
		t.Fatal("20 dB should be 10× amplitude")
	}
}

func TestLinkStrings(t *testing.T) {
	if OneWay.String() != "one-way" || Backscatter.String() != "backscatter" {
		t.Fatal("unexpected Link strings")
	}
	if Link(7).String() != "unknown-link" {
		t.Fatal("unknown link string")
	}
	if OneWay.TravelFactor() != 1 || Backscatter.TravelFactor() != 2 {
		t.Fatal("travel factors wrong")
	}
}

// Property: Wrap is idempotent and congruent mod 2π.
func TestQuickWrapIdempotent(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
		w := Wrap(x)
		return almostEqual(Wrap(w), w, 1e-9) && w >= 0 && w < TwoPi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: WrapSigned(a−b) applied to b recovers a up to 2π.
func TestQuickWrapSignedRecovers(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e9 || math.Abs(b) > 1e9 {
			return true
		}
		d := WrapSigned(a - b)
		return almostEqual(Wrap(b+d), Wrap(a), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: UnwrapNext moves by at most π from prev.
func TestQuickUnwrapNextBounded(t *testing.T) {
	f := func(prev, next float64) bool {
		if math.IsNaN(prev) || math.IsNaN(next) || math.Abs(prev) > 1e9 || math.Abs(next) > 1e9 {
			return true
		}
		u := UnwrapNext(prev, Wrap(next))
		return math.Abs(u-prev) <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
