package engine

import (
	"errors"
	"fmt"
	"sort"

	"rfidraw/internal/core"
	"rfidraw/internal/realtime"
	"rfidraw/internal/rfid"
	"rfidraw/internal/vote"
)

// Replayer re-runs a canonical resequenced report stream — a session's
// write-ahead log — through the exact live pipeline, synchronously on
// the caller's goroutine. It mirrors the sharded engine's per-tag
// tracker construction (same Config knobs, same code path) minus the
// scheduler, so replaying a log reproduces the live session's per-tag
// output bit for bit: the sharded engine and the Replayer are the third
// and fourth schedulers over the one tracing core, after batch and
// streaming.
//
// A Replayer is single-goroutine and single-use: feed Offer/Flush in
// log order, then read Results.
type Replayer struct {
	cfg     Config
	sys     *core.System
	scratch *vote.Scratch
	tags    map[rfid.EPC]*tagState
	order   []rfid.EPC

	// OnUpdate, when set, receives each tag's new positions inline from
	// Offer/Flush (the catch-up feeder uses it; retrace only needs
	// Results).
	OnUpdate func(Update)
}

// NewReplayer builds a replayer from the same Config an Engine takes.
// Shards, BatchSize and Config.OnUpdate are ignored (replay is
// synchronous; set Replayer.OnUpdate instead); System or
// Deployment/Core, SweepInterval and the per-tag tracker knobs mean
// exactly what they mean for a live engine. Set RecordTrace when
// Results must materialize batch-equivalent TraceResults.
func NewReplayer(cfg Config) (*Replayer, error) {
	if cfg.SweepInterval <= 0 {
		return nil, errors.New("engine: Config.SweepInterval required for replay")
	}
	sys := cfg.System
	if sys == nil {
		var err error
		sys, err = core.NewSystem(cfg.Deployment, cfg.Core)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	return &Replayer{
		cfg:     cfg,
		sys:     sys,
		scratch: vote.NewScratch(),
		tags:    map[rfid.EPC]*tagState{},
	}, nil
}

// System exposes the replayer's positioning system.
func (r *Replayer) System() *core.System { return r.sys }

// tag returns (building on first sight) the report's tag pipeline,
// mirroring shard.offer.
func (r *Replayer) tag(epc rfid.EPC) *tagState {
	ts, ok := r.tags[epc]
	if ok {
		return ts
	}
	tracker, err := realtime.NewTracker(realtime.Config{
		System:           r.sys,
		SweepInterval:    r.cfg.SweepInterval,
		MaxPhaseAge:      r.cfg.MaxPhaseAge,
		WarmupSamples:    r.cfg.WarmupSamples,
		MaxAcquireBuffer: r.cfg.MaxAcquireBuffer,
		ReacquireVote:    r.cfg.ReacquireVote,
		ReacquireWindow:  r.cfg.ReacquireWindow,
		RecordTrace:      r.cfg.RecordTrace,
		Scratch:          r.scratch,
	})
	ts = &tagState{tracker: tracker}
	if err != nil {
		ts.err = fmt.Errorf("engine: tag %s: %w", epc, err)
		ts.tracker = nil
	}
	r.tags[epc] = ts
	r.order = append(r.order, epc)
	return ts
}

// Offer replays one report (in log order).
func (r *Replayer) Offer(rep rfid.Report) error {
	ts := r.tag(rep.EPC)
	if ts.err != nil {
		return nil // tag failed terminally; mirror the shard and drop
	}
	ps, err := ts.tracker.Offer(rep)
	r.emit(rep.EPC, ts, ps)
	if err != nil {
		ts.err = fmt.Errorf("engine: tag %s: %w", rep.EPC, err)
	}
	return nil
}

// Flush replays a pump drain: every tag's current sweep closes, exactly
// as an engine Flush does live. Safe to call repeatedly (the trackers'
// flush is idempotent), which is what makes a replay that always
// finishes with a Flush equivalent to a log whose last record already
// was one.
func (r *Replayer) Flush() {
	for _, epc := range r.order {
		ts := r.tags[epc]
		if ts.err != nil || ts.tracker == nil {
			continue
		}
		ps, err := ts.tracker.Flush()
		r.emit(epc, ts, ps)
		if err != nil {
			ts.err = fmt.Errorf("engine: tag %s: %w", epc, err)
		}
	}
}

func (r *Replayer) emit(epc rfid.EPC, ts *tagState, ps []realtime.Position) {
	if len(ps) == 0 {
		return
	}
	ts.positions += len(ps)
	if r.OnUpdate != nil {
		r.OnUpdate(Update{Tag: epc.String(), Positions: ps})
	}
}

// Results materializes each acquired tag's batch-equivalent TraceResult
// (requires Config.RecordTrace), sorted by tag key. Tags that never
// acquired or failed terminally are reported with their error.
func (r *Replayer) Results() []TagResult {
	out := make([]TagResult, 0, len(r.tags))
	for _, epc := range r.order {
		out = append(out, r.tags[epc].traceResult(epc))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// Positions reports how many positions each tag emitted during replay.
func (r *Replayer) Positions() map[string]int {
	out := make(map[string]int, len(r.tags))
	for epc, ts := range r.tags {
		out[epc.String()] = ts.positions
	}
	return out
}
