package engine

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/realtime"
	"rfidraw/internal/tracing"
)

// TestBatchIsReplayOfStreaming is the refactor's hard gate: one
// algorithm, two schedulers. For every tag of the sim corpus at 1, 8 and
// 64 tags, the batch pipeline's TraceResult must be byte-identical (gob)
// to what the live tracker materializes after the same samples are
// replayed through it sweep by sweep. The live side runs the real
// realtime.Tracker (the code rfidrawd serves), driven at the sample
// level; tags replay concurrently so -race also patrols the shared
// read-only System. Reacquisition is disabled on the live side — it is
// the one live-only behaviour (batch streams cannot be re-acquired) and
// has its own tests.
func TestBatchIsReplayOfStreaming(t *testing.T) {
	tagCounts := []int{1, 8, 64}
	if testing.Short() {
		tagCounts = []int{1, 8}
	}
	for _, tags := range tagCounts {
		run := multiRun(t, tags)
		jobs := make([]TagJob, tags)
		for i := 0; i < tags; i++ {
			jobs[i] = TagJob{Tag: run.Tags[i].EPC.String(), Samples: run.SamplesRF[i]}
		}
		e := newEngine(t, Config{Shards: 4})
		batch := e.TraceBatch(jobs)

		live := make([]*core.TraceResult, tags)
		errs := make([]error, tags)
		var wg sync.WaitGroup
		for i := 0; i < tags; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				live[i], errs[i] = replayLive(e.System(), run.SamplesRF[i])
			}(i)
		}
		wg.Wait()

		for i := 0; i < tags; i++ {
			if batch[i].Err != nil {
				t.Fatalf("tags=%d tag %d: batch: %v", tags, i, batch[i].Err)
			}
			if errs[i] != nil {
				t.Fatalf("tags=%d tag %d: live replay: %v", tags, i, errs[i])
			}
			if !bytes.Equal(encodeResult(t, batch[i].Result), encodeResult(t, live[i])) {
				t.Errorf("tags=%d tag %d: batch result differs from streaming replay "+
					"(batch best=%d switches=%d; live best=%d switches=%d)",
					tags, i,
					batch[i].Result.BestIndex, batch[i].Result.LeaderSwitches,
					live[i].BestIndex, live[i].LeaderSwitches)
			}
		}
	}
}

// TestStreamingSurfacesLeaderSwitches: on the multi-tag corpus the
// over-time disambiguation re-elects at least one tag's leader
// mid-stream; the switch must be flagged on the emitted position, carry
// hypothesis counts, and agree with the tag's TagStats counters.
func TestStreamingSurfacesLeaderSwitches(t *testing.T) {
	run := multiRun(t, 3)
	e := newEngine(t, Config{
		Shards:        4,
		SweepInterval: run.SweepInterval * time.Duration(len(run.Tags)),
	})
	got := streamInto(t, e, run)
	flagged := map[string]int{}
	for tag, ps := range got {
		for _, p := range ps {
			if p.Hypotheses <= 0 {
				t.Fatalf("tag %s: position without hypothesis count: %+v", tag, p)
			}
			if p.Confidence > 0 {
				t.Fatalf("tag %s: confidence %v must be ≤ 0", tag, p.Confidence)
			}
			if p.Switched {
				flagged[tag]++
			}
		}
	}
	totalFlagged := 0
	for _, n := range flagged {
		totalFlagged += n
	}
	if totalFlagged == 0 {
		t.Fatal("no leader switch surfaced on the corpus — the disambiguation signal is lost")
	}
	for _, st := range e.Stats() {
		if st.LeaderSwitches != flagged[st.Tag] {
			t.Fatalf("tag %s: stats report %d switches, positions flagged %d",
				st.Tag, st.LeaderSwitches, flagged[st.Tag])
		}
		if st.Started && st.Hypotheses <= 0 {
			t.Fatalf("tag %s: started with %d active hypotheses", st.Tag, st.Hypotheses)
		}
	}
}

// TestFlushDuringWarmupDoesNotLeakPrefix: a stream that ends before the
// warmup target is reached must still be traced — Flush treats the
// stream as complete, acquires over the buffered prefix and emits its
// positions — and the warmup buffer must be released either way, which
// TagStats surfaces as Buffered.
func TestFlushDuringWarmupDoesNotLeakPrefix(t *testing.T) {
	run := multiRun(t, 1)
	sweep := run.SweepInterval * time.Duration(len(run.Tags))
	e := newEngine(t, Config{Shards: 2, SweepInterval: sweep})
	var mu sync.Mutex
	emitted := 0
	e.cfg.OnUpdate = func(u Update) {
		mu.Lock()
		emitted += len(u.Positions)
		mu.Unlock()
	}
	// Only three sweeps of reports: one short of the default warmup of 4.
	cutoff := 3 * sweep
	for _, rep := range realtime.MergeStreams(run.ReportsRF...) {
		if rep.Time >= cutoff {
			break
		}
		if err := e.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	stats := e.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats for %d tags, want 1", len(stats))
	}
	if stats[0].Started {
		t.Fatal("tracker acquired before warmup completed or stream flushed")
	}
	if stats[0].Buffered == 0 {
		t.Fatal("warmup prefix not buffered — test premise broken")
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	stats = e.Stats()
	if stats[0].Buffered != 0 {
		t.Fatalf("flush leaked %d buffered warmup samples", stats[0].Buffered)
	}
	if !stats[0].Started || stats[0].Positions == 0 {
		t.Fatalf("flushed warmup prefix was discarded: started=%v positions=%d",
			stats[0].Started, stats[0].Positions)
	}
	mu.Lock()
	defer mu.Unlock()
	if emitted != stats[0].Positions {
		t.Fatalf("OnUpdate saw %d positions, stats %d", emitted, stats[0].Positions)
	}
}

// replayLive pushes a batch sample slice through a live tracker one
// sweep at a time and materializes the batch-equivalent result.
func replayLive(sys *core.System, samples []tracing.Sample) (*core.TraceResult, error) {
	tr, err := realtime.NewTracker(realtime.Config{
		System:        sys,
		SweepInterval: 25 * time.Millisecond,
		ReacquireVote: math.Inf(-1),
		RecordTrace:   true,
	})
	if err != nil {
		return nil, err
	}
	for _, s := range samples {
		if _, err := tr.OfferSample(s); err != nil {
			return nil, err
		}
	}
	if _, err := tr.Flush(); err != nil {
		return nil, err
	}
	return tr.TraceResult()
}
