package engine

import (
	"bytes"
	"testing"
	"time"

	"rfidraw/internal/realtime"
)

// TestReplayerMatchesStreamingEngine is the WAL subsystem's in-memory
// foundation: replaying the exact report stream a live engine consumed
// through a synchronous Replayer must reproduce the engine's per-tag
// batch-equivalent results gob-byte-identically — including positions
// emitted around interleaved flushes (the pump's idle drains, which the
// WAL records so replays drain at the same points).
func TestReplayerMatchesStreamingEngine(t *testing.T) {
	run := multiRun(t, 3)
	sweep := run.SweepInterval * time.Duration(len(run.Tags))
	cfg := Config{
		Shards:        4,
		SweepInterval: sweep,
		RecordTrace:   true,
	}
	e := newEngine(t, cfg)

	merged := realtime.MergeStreams(run.ReportsRF...)
	// Split the stream in three, flushing at the joints like idle drains.
	cuts := []int{len(merged) / 3, 2 * len(merged) / 3, len(merged)}
	prev := 0
	for _, cut := range cuts {
		for _, rep := range merged[prev:cut] {
			if err := e.Offer(rep); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		prev = cut
	}
	live := e.TraceResults()
	if len(live) != len(run.Tags) {
		t.Fatalf("live results for %d tags, want %d", len(live), len(run.Tags))
	}

	// The replayer mirrors the live schedule: same reports, same drains.
	rp, err := NewReplayer(Config{
		System:        e.System(),
		SweepInterval: sweep,
		RecordTrace:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev = 0
	for _, cut := range cuts {
		for _, rep := range merged[prev:cut] {
			if err := rp.Offer(rep); err != nil {
				t.Fatal(err)
			}
		}
		rp.Flush()
		prev = cut
	}
	// A trailing extra Flush must be harmless (idempotence): retrace
	// always finishes with one.
	rp.Flush()
	replayed := rp.Results()
	if len(replayed) != len(live) {
		t.Fatalf("replayed %d tags, live %d", len(replayed), len(live))
	}
	for i := range live {
		if live[i].Err != nil {
			t.Fatalf("tag %s: live: %v", live[i].Tag, live[i].Err)
		}
		if replayed[i].Err != nil {
			t.Fatalf("tag %s: replay: %v", replayed[i].Tag, replayed[i].Err)
		}
		if replayed[i].Tag != live[i].Tag {
			t.Fatalf("tag order: %s vs %s", replayed[i].Tag, live[i].Tag)
		}
		if !bytes.Equal(encodeResult(t, live[i].Result), encodeResult(t, replayed[i].Result)) {
			t.Errorf("tag %s: replayer result differs from live engine", live[i].Tag)
		}
	}
}
