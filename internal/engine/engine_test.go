package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"testing"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/deploy"
	"rfidraw/internal/geom"
	"rfidraw/internal/realtime"
	"rfidraw/internal/rfid"
	"rfidraw/internal/sim"
	"rfidraw/internal/traj"
)

// testRun builds one cached multi-tag scenario per tag count.
var (
	testRunsMu sync.Mutex
	testRuns   = map[int]*sim.MultiWordRun{}
)

func multiRun(t testing.TB, tags int) *sim.MultiWordRun {
	t.Helper()
	testRunsMu.Lock()
	defer testRunsMu.Unlock()
	if r, ok := testRuns[tags]; ok {
		return r
	}
	sc, err := sim.New(sim.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"hi", "go", "on", "it", "at", "to", "in", "up"}
	texts := make([]string, tags)
	starts := make([]geom.Vec2, tags)
	for i := 0; i < tags; i++ {
		texts[i] = words[i%len(words)]
		starts[i] = geom.Vec2{X: 0.4 + 0.35*float64(i%5), Z: 0.6 + 0.35*float64(i/5%3)}
	}
	run, err := sc.RunWords(texts, starts)
	if err != nil {
		t.Fatal(err)
	}
	testRuns[tags] = run
	return run
}

func coreConfig() core.Config {
	return core.Config{Plane: geom.Plane{Y: 2}, Region: deploy.DefaultRegion()}
}

func newEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	if cfg.Core.Plane.Y == 0 {
		cfg.Core = coreConfig()
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// encodeResult serialises a trace result so byte-identity can be asserted.
func encodeResult(t testing.TB, r *core.TraceResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBatchDeterministicAcrossShardCounts is the engine's core guarantee:
// for identical input, the concurrent engine's output is byte-identical to
// the sequential single-threaded path, for any shard count.
func TestBatchDeterministicAcrossShardCounts(t *testing.T) {
	run := multiRun(t, 3)
	jobs := make([]TagJob, len(run.Tags))
	for i, tag := range run.Tags {
		jobs[i] = TagJob{Tag: tag.EPC.String(), Samples: run.SamplesRF[i]}
	}

	// Sequential reference: a plain core.System, no engine.
	sys, err := core.NewSystem(nil, coreConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(jobs))
	for i, j := range jobs {
		res, err := sys.Trace(j.Samples)
		if err != nil {
			t.Fatalf("sequential tag %d: %v", i, err)
		}
		want[i] = encodeResult(t, res)
	}

	for _, shards := range []int{1, 2, 8} {
		e := newEngine(t, Config{Shards: shards})
		results := e.TraceBatch(jobs)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("shards=%d tag %d: %v", shards, i, r.Err)
			}
			if r.Tag != jobs[i].Tag {
				t.Fatalf("shards=%d result %d keyed %q, want %q", shards, i, r.Tag, jobs[i].Tag)
			}
			if !bytes.Equal(encodeResult(t, r.Result), want[i]) {
				t.Fatalf("shards=%d tag %d: engine output differs from sequential path", shards, i)
			}
		}
	}
}

// TestBatchMoreShardsThanTags checks nothing wedges or is lost when most
// shards have no work.
func TestBatchMoreShardsThanTags(t *testing.T) {
	run := multiRun(t, 2)
	e := newEngine(t, Config{Shards: 16})
	jobs := []TagJob{
		{Tag: run.Tags[0].EPC.String(), Samples: run.SamplesRF[0]},
		{Tag: run.Tags[1].EPC.String(), Samples: run.SamplesRF[1]},
	}
	for i, r := range e.TraceBatch(jobs) {
		if r.Err != nil {
			t.Fatalf("tag %d: %v", i, r.Err)
		}
		if r.Result.Best.Trajectory.Len() < 5 {
			t.Fatalf("tag %d: only %d points", i, r.Result.Best.Trajectory.Len())
		}
	}
}

// TestBatchConcurrentCallers exercises TraceBatch from several goroutines
// against one engine (run under -race).
func TestBatchConcurrentCallers(t *testing.T) {
	run := multiRun(t, 3)
	e := newEngine(t, Config{Shards: 4})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobs := make([]TagJob, len(run.Tags))
			for i, tag := range run.Tags {
				jobs[i] = TagJob{Tag: tag.EPC.String(), Samples: run.SamplesRF[i]}
			}
			for _, r := range e.TraceBatch(jobs) {
				if r.Err != nil {
					t.Error(r.Err)
				}
			}
		}()
	}
	wg.Wait()
}

// TestTraceSingleTagWrapper checks the synchronous single-tag wrapper is
// the sequential path: same bytes as a direct core.System.Trace.
func TestTraceSingleTagWrapper(t *testing.T) {
	run := multiRun(t, 1)
	sys, err := core.NewSystem(nil, coreConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Trace(run.SamplesRF[0])
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, Config{Shards: 1})
	got, err := e.Trace(run.SamplesRF[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResult(t, got), encodeResult(t, want)) {
		t.Fatal("single-tag engine wrapper differs from direct core path")
	}
}

// streamInto replays both readers' raw report streams, time-merged, into
// the engine and returns per-tag collected positions.
func streamInto(t *testing.T, e *Engine, run *sim.MultiWordRun) map[string][]realtime.Position {
	t.Helper()
	var mu sync.Mutex
	got := map[string][]realtime.Position{}
	e.cfg.OnUpdate = func(u Update) {
		mu.Lock()
		defer mu.Unlock()
		got[u.Tag] = append(got[u.Tag], u.Positions...)
	}
	merged := realtime.MergeStreams(run.ReportsRF...)
	if err := e.OfferAll(merged); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestStreamingMultiTag drives the live path end to end: all tags' raw
// reports interleaved on the wire, each tracked to a trajectory close to
// its ground truth.
func TestStreamingMultiTag(t *testing.T) {
	run := multiRun(t, 3)
	e := newEngine(t, Config{
		Shards: 4,
		// Airtime is split three ways, so each tag's effective sweep
		// period triples.
		SweepInterval: run.SweepInterval * time.Duration(len(run.Tags)),
	})
	got := streamInto(t, e, run)
	if len(got) != len(run.Tags) {
		t.Fatalf("tracked %d tags, want %d", len(got), len(run.Tags))
	}
	for i, tag := range run.Tags {
		ps := got[tag.EPC.String()]
		if len(ps) < 10 {
			t.Fatalf("tag %d: only %d live positions", i, len(ps))
		}
		pts := make([]traj.Point, len(ps))
		for j, p := range ps {
			pts[j] = traj.Point{T: p.Time, Pos: p.Pos}
		}
		med, err := traj.MedianError(run.Truths[i], traj.Trajectory{Points: pts}, traj.AlignInitial, 64)
		if err != nil {
			t.Fatal(err)
		}
		if med > 0.25 {
			t.Fatalf("tag %d: live shape error %.1f cm", i, med*100)
		}
	}
	stats := e.Stats()
	if len(stats) != len(run.Tags) {
		t.Fatalf("stats for %d tags, want %d", len(stats), len(run.Tags))
	}
	for _, st := range stats {
		if st.Err != nil {
			t.Fatalf("tag %s: %v", st.Tag, st.Err)
		}
		if !st.Started || st.Positions == 0 {
			t.Fatalf("tag %s: started=%v positions=%d", st.Tag, st.Started, st.Positions)
		}
	}
}

// TestStreamingTagAppearsMidStream delays one tag's reports: the engine
// must spin up its pipeline at first sight and still trace it.
func TestStreamingTagAppearsMidStream(t *testing.T) {
	run := multiRun(t, 2)
	late := run.Tags[1].EPC
	// Drop the late tag's first 500 ms of reports.
	cutoff := 500 * time.Millisecond
	var filtered []rfid.Report
	for _, rep := range realtime.MergeStreams(run.ReportsRF...) {
		if rep.EPC == late && rep.Time < cutoff {
			continue
		}
		filtered = append(filtered, rep)
	}
	e := newEngine(t, Config{
		Shards:        3,
		SweepInterval: run.SweepInterval * time.Duration(len(run.Tags)),
	})
	var mu sync.Mutex
	got := map[string]int{}
	e.cfg.OnUpdate = func(u Update) {
		mu.Lock()
		defer mu.Unlock()
		got[u.Tag] += len(u.Positions)
		for _, p := range u.Positions {
			if u.Tag == late.String() && p.Time < cutoff {
				t.Errorf("late tag emitted position at %v before it appeared", p.Time)
			}
		}
	}
	if err := e.OfferAll(filtered); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got[run.Tags[0].EPC.String()] < 10 {
		t.Fatalf("early tag: %d positions", got[run.Tags[0].EPC.String()])
	}
	if got[late.String()] < 5 {
		t.Fatalf("late tag: %d positions", got[late.String()])
	}
}

// TestStreamingTagGoesSilent cuts one tag's reports mid-stream (it leaves
// the field): the other tag must be unaffected, and the silent tag simply
// stops emitting.
func TestStreamingTagGoesSilent(t *testing.T) {
	run := multiRun(t, 2)
	silent := run.Tags[1].EPC
	cutoff := 600 * time.Millisecond
	var filtered []rfid.Report
	for _, rep := range realtime.MergeStreams(run.ReportsRF...) {
		if rep.EPC == silent && rep.Time >= cutoff {
			continue
		}
		filtered = append(filtered, rep)
	}
	e := newEngine(t, Config{
		Shards:        2,
		SweepInterval: run.SweepInterval * time.Duration(len(run.Tags)),
	})
	var mu sync.Mutex
	var lastSilent time.Duration
	counts := map[string]int{}
	e.cfg.OnUpdate = func(u Update) {
		mu.Lock()
		defer mu.Unlock()
		counts[u.Tag] += len(u.Positions)
		if u.Tag == silent.String() {
			for _, p := range u.Positions {
				if p.Time > lastSilent {
					lastSilent = p.Time
				}
			}
		}
	}
	if err := e.OfferAll(filtered); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if counts[run.Tags[0].EPC.String()] < 10 {
		t.Fatalf("surviving tag: %d positions", counts[run.Tags[0].EPC.String()])
	}
	// The silent tag may coast briefly on held phases but must stop soon
	// after its reports end.
	if lastSilent > cutoff+run.SweepInterval*time.Duration(4*len(run.Tags)) {
		t.Fatalf("silent tag still emitting at %v, cut off at %v", lastSilent, cutoff)
	}
}

// TestStreamingRequiresSweepInterval: batch-only engines reject Offer.
func TestStreamingRequiresSweepInterval(t *testing.T) {
	e := newEngine(t, Config{Shards: 2})
	if err := e.Offer(rfid.Report{}); err == nil {
		t.Fatal("Offer without SweepInterval should error")
	}
}

// TestCloseIdempotent: closing twice is fine, use-after-close errors.
func TestCloseIdempotent(t *testing.T) {
	e := newEngine(t, Config{Shards: 2, SweepInterval: 25 * time.Millisecond})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Offer(rfid.Report{}); err == nil {
		t.Fatal("Offer after Close should error")
	}
}

// TestCloseConcurrent: several goroutines racing Close against in-flight
// TraceBatch calls must neither panic nor deadlock — every batch either
// completes normally or reports "engine: closed" per job.
func TestCloseConcurrent(t *testing.T) {
	run := multiRun(t, 2)
	e := newEngine(t, Config{Shards: 4})
	jobs := []TagJob{
		{Tag: run.Tags[0].EPC.String(), Samples: run.SamplesRF[0]},
		{Tag: run.Tags[1].EPC.String(), Samples: run.SamplesRF[1]},
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for _, r := range e.TraceBatch(jobs) {
				if r.Err == nil && r.Result == nil {
					t.Error("TraceBatch returned neither result nor error")
				}
			}
		}()
		go func() {
			defer wg.Done()
			if err := e.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatalf("Close after concurrent closes: %v", err)
	}
}

// TestShardAffinity: equal keys land on the same shard, and distribution
// over many keys touches every shard.
func TestShardAffinity(t *testing.T) {
	e := newEngine(t, Config{Shards: 4})
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("tag-%03d", i)
		a := e.shardFor(key)
		b := e.shardFor(key)
		if a != b {
			t.Fatalf("key %q hashed to two shards", key)
		}
		seen[a.id] = true
	}
	if len(seen) != 4 {
		t.Fatalf("256 keys used only %d/4 shards", len(seen))
	}
}

// TestTraceBatchDuringClose races batch callers against Close (run under
// -race): no send-on-closed-channel panic, and post-close jobs come back
// with a clean error instead of wedging.
func TestTraceBatchDuringClose(t *testing.T) {
	run := multiRun(t, 1)
	e := newEngine(t, Config{Shards: 2})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res := e.TraceBatch([]TagJob{{Tag: "x", Samples: run.SamplesRF[0]}})
				if res[0].Err != nil {
					if res[0].Result != nil {
						t.Error("closed-engine job returned both result and error")
					}
					return // engine closed underneath us: the contract held
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := e.Close(); err != nil {
		t.Error(err)
	}
	wg.Wait()
	res := e.TraceBatch([]TagJob{{Tag: "y", Samples: run.SamplesRF[0]}})
	if res[0].Err == nil {
		t.Fatal("TraceBatch after Close should error per job")
	}
}
