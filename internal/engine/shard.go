package engine

import (
	"fmt"
	"sync"

	"rfidraw/internal/realtime"
	"rfidraw/internal/rfid"
	"rfidraw/internal/tracing"
	"rfidraw/internal/vote"
)

// scratchPool hands each shard its reusable refinement scratch (the
// hierarchical search's memo and frontier buffers, see vote.Scratch) when
// its goroutine starts and takes it back when the shard exits. It is
// package-level so scratches survive engine lifetimes — callers that
// build an engine per stream (benchmarks, tests, short-lived servers)
// reuse warm scratches. One scratch serves all of a shard's tags because
// a shard is a single goroutine; scratches never influence results.
var scratchPool = sync.Pool{New: func() any { return vote.NewScratch() }}

// traceJob is one batch tracing unit of work.
type traceJob struct {
	samples []tracing.Sample
	out     *TagResult
	wg      *sync.WaitGroup
}

// shardMsg is a shard inbox message; exactly one field is set.
type shardMsg struct {
	// job runs one batch trace.
	job *traceJob
	// reports is a pooled streaming batch; the shard returns it to the
	// engine's pool after processing.
	reports *[]rfid.Report
	// flush closes every tracker's current sweep and acks.
	flush chan error
	// stats asks for a snapshot of per-tag streaming state.
	stats chan []TagStats
	// results asks for batch-equivalent trace results (RecordTrace).
	results chan []TagResult
}

// tagState is one streamed tag's pipeline, confined to its home shard.
type tagState struct {
	tracker   *realtime.Tracker
	positions int
	err       error
}

// shard is one worker: a goroutine owning the per-tag state of every tag
// hashed onto it.
type shard struct {
	id       int
	eng      *Engine
	in       chan shardMsg
	done     chan struct{}
	trackers map[rfid.EPC]*tagState
	// scratch is the shard's reusable refinement scratch, held for the
	// shard goroutine's lifetime (from the engine's scratchPool) and
	// shared by every batch trace and live tracker on this shard.
	scratch *vote.Scratch
}

func (s *shard) loop() {
	defer close(s.done)
	s.scratch = scratchPool.Get().(*vote.Scratch)
	defer scratchPool.Put(s.scratch)
	for msg := range s.in {
		switch {
		case msg.job != nil:
			res, err := s.eng.sys.TraceWith(s.scratch, msg.job.samples)
			msg.job.out.Result, msg.job.out.Err = res, err
			msg.job.wg.Done()
		case msg.reports != nil:
			for _, rep := range *msg.reports {
				s.offer(rep)
			}
			s.eng.batchPool.Put(msg.reports)
		case msg.flush != nil:
			msg.flush <- s.flushTrackers()
		case msg.stats != nil:
			msg.stats <- s.collectStats()
		case msg.results != nil:
			msg.results <- s.collectResults()
		}
	}
}

// offer feeds one report into its tag's tracker, creating the tracker on
// first sight — a tag appearing mid-stream simply starts its own pipeline
// at its first report.
func (s *shard) offer(rep rfid.Report) {
	ts, ok := s.trackers[rep.EPC]
	if !ok {
		tracker, err := realtime.NewTracker(realtime.Config{
			System:           s.eng.sys,
			SweepInterval:    s.eng.cfg.SweepInterval,
			MaxPhaseAge:      s.eng.cfg.MaxPhaseAge,
			WarmupSamples:    s.eng.cfg.WarmupSamples,
			MaxAcquireBuffer: s.eng.cfg.MaxAcquireBuffer,
			ReacquireVote:    s.eng.cfg.ReacquireVote,
			ReacquireWindow:  s.eng.cfg.ReacquireWindow,
			RecordTrace:      s.eng.cfg.RecordTrace,
			Scratch:          s.scratch,
		})
		ts = &tagState{tracker: tracker}
		if err != nil {
			ts.err = fmt.Errorf("engine: tag %s: %w", rep.EPC, err)
			ts.tracker = nil
		}
		s.trackers[rep.EPC] = ts
	}
	if ts.err != nil {
		return // tag's pipeline failed terminally; drop its reports
	}
	ps, err := ts.tracker.Offer(rep)
	s.emit(rep.EPC, ts, ps)
	if err != nil {
		ts.err = fmt.Errorf("engine: tag %s: %w", rep.EPC, err)
	}
}

// emit forwards new positions to the engine's OnUpdate callback.
func (s *shard) emit(epc rfid.EPC, ts *tagState, ps []realtime.Position) {
	if len(ps) == 0 {
		return
	}
	ts.positions += len(ps)
	if s.eng.cfg.OnUpdate != nil {
		s.eng.cfg.OnUpdate(Update{Tag: epc.String(), Positions: ps})
	}
}

func (s *shard) flushTrackers() error {
	var first error
	for epc, ts := range s.trackers {
		if ts.err != nil || ts.tracker == nil {
			continue // already failed; reported via Stats
		}
		ps, err := ts.tracker.Flush()
		s.emit(epc, ts, ps)
		if err != nil {
			ts.err = fmt.Errorf("engine: tag %s: %w", epc, err)
			if first == nil {
				first = ts.err
			}
		}
	}
	return first
}

// collectResults materializes batch-equivalent trace results for every
// acquired tag on this shard (engine Config.RecordTrace).
func (s *shard) collectResults() []TagResult {
	out := make([]TagResult, 0, len(s.trackers))
	for epc, ts := range s.trackers {
		out = append(out, ts.traceResult(epc))
	}
	return out
}

// traceResult materializes one streamed tag's batch-equivalent outcome;
// shared by the shard and the Replayer so the two schedulers cannot
// diverge in how a tag's state becomes a TagResult.
func (ts *tagState) traceResult(epc rfid.EPC) TagResult {
	res := TagResult{Tag: epc.String()}
	switch {
	case ts.err != nil:
		res.Err = ts.err
	case ts.tracker == nil || !ts.tracker.Started():
		res.Err = fmt.Errorf("engine: tag %s: never acquired", epc)
	default:
		res.Result, res.Err = ts.tracker.TraceResult()
	}
	return res
}

func (s *shard) collectStats() []TagStats {
	out := make([]TagStats, 0, len(s.trackers))
	for epc, ts := range s.trackers {
		st := TagStats{Tag: epc.String(), Positions: ts.positions, Err: ts.err}
		if ts.tracker != nil {
			st.Started = ts.tracker.Started()
			st.MeanVote = ts.tracker.MeanVote()
			st.Reacquisitions = ts.tracker.Reacquisitions()
			st.Hypotheses = ts.tracker.ActiveHypotheses()
			st.LeaderSwitches = ts.tracker.LeaderSwitches()
			st.Retirements = ts.tracker.Retirements()
			st.Buffered = ts.tracker.Buffered()
			st.SearchEvals = ts.tracker.SearchEvals()
		}
		out = append(out, st)
	}
	return out
}
