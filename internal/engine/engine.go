// Package engine is the concurrent multi-tag tracking engine: it runs the
// multi-resolution vote → lobe-lock → trace pipeline (§5 of the paper) for
// many tags at once by sharding work across worker goroutines.
//
// # Sharding model
//
// An Engine owns N shards, each a single goroutine with an inbox channel.
// Every piece of work is keyed by tag identity (EPC), and a tag's key is
// hashed (FNV-1a) to pick its home shard, so all of one tag's work — batch
// traces and live report streams alike — executes sequentially on one
// goroutine. Per-tag state (the realtime tracker, its lobe locks, its
// sample buffer) is confined to that goroutine and never locked. The heavy
// read-only structures — the deployment, the positioner with its
// precomputed steering table, the tracer — live in one core.System shared
// by all shards.
//
// Because a tag's pipeline is sequential on its home shard and runs
// exactly the code the single-threaded path runs, per-tag output is
// deterministic and identical for any shard count, including 1. The
// synchronous single-tag Trace runs the same shared pipeline directly on
// the caller's goroutine — semantically a 1-shard engine, without
// serialising unrelated callers.
//
// # Concurrency contract
//
// TraceBatch and Trace are safe to call from any number of goroutines.
// The streaming entry points Offer, OfferAll, Flush, Stats and Close
// must be called from a single ingest goroutine (reports must be
// time-ordered, which only a single caller can guarantee, and Stats
// dispatches that goroutine's buffered reports before sampling). The
// OnUpdate callback is invoked from shard goroutines — potentially
// several at once — and must synchronise its own state.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/deploy"
	"rfidraw/internal/realtime"
	"rfidraw/internal/rfid"
	"rfidraw/internal/tracing"
)

// Config assembles an Engine.
type Config struct {
	// Shards is the number of worker shards. Default GOMAXPROCS.
	Shards int
	// Deployment is the antenna deployment; nil uses the standard one.
	Deployment *deploy.RFIDraw
	// Core configures the shared positioning/tracing system.
	Core core.Config
	// System, when non-nil, is a prebuilt read-only positioning system
	// shared with other engines (Deployment and Core are then ignored).
	// The serving layer uses this to give every session its own shard
	// group without duplicating the precomputed steering tables.
	System *core.System

	// SweepInterval is the readers' per-tag sweep period, required for
	// the streaming path (Offer). With Gen-2 singulation splitting
	// airtime across T tags, this is T × the reader's raw sweep period.
	SweepInterval time.Duration
	// MaxPhaseAge, WarmupSamples, MaxAcquireBuffer, ReacquireVote and
	// ReacquireWindow are forwarded to each per-tag realtime tracker;
	// zero values take the realtime package defaults. MaxAcquireBuffer
	// bounds each tag's warmup sample buffer, and with it the per-tag
	// memory a serving deployment commits to unacquirable tags.
	MaxPhaseAge      time.Duration
	WarmupSamples    int
	MaxAcquireBuffer int
	ReacquireVote    float64
	ReacquireWindow  int
	// RecordTrace keeps every streamed tag's full hypothesis
	// trajectories so TraceResults can materialize batch-equivalent
	// outcomes. Memory then grows with stream length — meant for
	// replays and equivalence tests, not serving.
	RecordTrace bool

	// OnUpdate receives live position updates from the streaming path.
	// It is called from shard goroutines, possibly concurrently.
	OnUpdate func(Update)
	// BatchSize is how many streaming reports are buffered per shard
	// before dispatch. Default 64 — right for replayed or collected
	// streams; latency-sensitive live callers (a cursor) should set 1 so
	// every report dispatches immediately, at the cost of one channel
	// send per report.
	BatchSize int
}

// Update is one live output notice: new positions for one tag.
type Update struct {
	// Tag is the tag key (EPC hex for wire-fed engines).
	Tag string
	// Positions are the newly estimated positions, in time order.
	Positions []realtime.Position
}

// TagJob is one batch tracing job: a tag's full observation stream.
type TagJob struct {
	// Tag keys the job; jobs with equal keys run sequentially in order.
	Tag string
	// Samples is the tag's merged observation stream, in time order.
	Samples []tracing.Sample
}

// TagResult is the outcome of one TagJob.
type TagResult struct {
	Tag    string
	Result *core.TraceResult
	Err    error
}

// TagStats describes one streamed tag's tracking state.
type TagStats struct {
	Tag            string
	Positions      int
	Started        bool
	MeanVote       float64
	Reacquisitions int
	// Hypotheses is how many candidate hypotheses the tag's live
	// multi-stream is still advancing (0 before acquisition).
	Hypotheses int
	// LeaderSwitches counts leadership changes across the tag's streams
	// — the §5.2 over-time disambiguation re-electing a candidate.
	LeaderSwitches int
	// Retirements counts hypotheses retired for collapsed vote records.
	Retirements int
	// Buffered is the tag's current warmup sample buffer size, bounded
	// by Config.MaxAcquireBuffer.
	Buffered int
	// SearchEvals is the tag's cumulative vote-surface evaluation count
	// (acquisitions plus live tracing), for serving-layer metrics.
	SearchEvals int
	Err         error
}

// Engine is a sharded concurrent multi-tag tracker.
type Engine struct {
	cfg    Config
	sys    *core.System
	shards []*shard

	// pending buffers streaming reports per shard between dispatches;
	// owned by the ingest goroutine (see the concurrency contract).
	pending []*[]rfid.Report
	// batchPool recycles report batch slices between the ingest
	// goroutine and the shards, keeping the streaming hot path
	// allocation-free once warm.
	batchPool sync.Pool
	// dirty records whether any report has been offered since the last
	// Flush; like pending it is owned by the ingest goroutine.
	dirty bool
	// mu guards shard-channel sends from TraceBatch (which any goroutine
	// may call) against Close closing those channels: senders hold the
	// read side, Close holds the write side while marking closed.
	mu     sync.RWMutex
	closed bool
	// closeOnce makes Close idempotent and safe to call from several
	// goroutines at once: the first caller runs the shutdown, later
	// callers block until it finishes and share its error.
	closeOnce sync.Once
	closeErr  error
}

// New builds and starts an Engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	// Catch an impossible acquisition bound at construction: left to the
	// per-tag tracker it would terminally fail every tag at its first
	// report, a silent-daemon failure mode.
	if cfg.MaxAcquireBuffer > 0 {
		warmup := cfg.WarmupSamples
		if warmup <= 0 {
			warmup = realtime.DefaultWarmupSamples
		}
		if cfg.MaxAcquireBuffer < warmup {
			return nil, fmt.Errorf("engine: MaxAcquireBuffer %d must be ≥ WarmupSamples %d",
				cfg.MaxAcquireBuffer, warmup)
		}
	}
	sys := cfg.System
	if sys == nil {
		var err error
		sys, err = core.NewSystem(cfg.Deployment, cfg.Core)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	e := &Engine{
		cfg:     cfg,
		sys:     sys,
		shards:  make([]*shard, cfg.Shards),
		pending: make([]*[]rfid.Report, cfg.Shards),
	}
	e.batchPool.New = func() any {
		s := make([]rfid.Report, 0, cfg.BatchSize)
		return &s
	}
	for i := range e.shards {
		sh := &shard{
			id:       i,
			eng:      e,
			in:       make(chan shardMsg, 16),
			done:     make(chan struct{}),
			trackers: map[rfid.EPC]*tagState{},
		}
		e.shards[i] = sh
		go sh.loop()
	}
	return e, nil
}

// System exposes the shared read-only positioning system.
func (e *Engine) System() *core.System { return e.sys }

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// shardFor hashes a tag key onto its home shard (FNV-1a 64).
func (e *Engine) shardFor(key string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return e.shards[h%uint64(len(e.shards))]
}

// shardForEPC is shardFor over the EPC's raw bytes — the streaming path
// routes every report through here, so it must not allocate (EPC.String
// would build a garbage hex string per report).
func (e *Engine) shardForEPC(epc rfid.EPC) *shard {
	h := uint64(14695981039346656037)
	for _, b := range epc {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return e.shards[h%uint64(len(e.shards))]
}

// TraceBatch runs every job's full vote → lobe-lock → trace pipeline,
// jobs for different tags in parallel across shards, and returns results
// aligned with jobs. Each result is identical to what the sequential
// single-tag path produces for the same samples, for any shard count.
func (e *Engine) TraceBatch(jobs []TagJob) []TagResult {
	out := make([]TagResult, len(jobs))
	var wg sync.WaitGroup
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		for i := range jobs {
			out[i] = TagResult{Tag: jobs[i].Tag, Err: errors.New("engine: closed")}
		}
		return out
	}
	wg.Add(len(jobs))
	for i := range jobs {
		out[i].Tag = jobs[i].Tag
		e.shardFor(jobs[i].Tag).in <- shardMsg{job: &traceJob{
			samples: jobs[i].Samples,
			out:     &out[i],
			wg:      &wg,
		}}
	}
	e.mu.RUnlock()
	wg.Wait()
	return out
}

// Trace is the synchronous single-tag path. It runs the shared system's
// sequential pipeline directly on the caller's goroutine — exactly the
// code a shard would run for a 1-job batch, without serialising unrelated
// callers behind one shard's inbox.
func (e *Engine) Trace(samples []tracing.Sample) (*core.TraceResult, error) {
	return e.sys.Trace(samples)
}

// Offer ingests one live report, routing it to its tag's home shard.
// Reports must arrive in non-decreasing time order.
func (e *Engine) Offer(rep rfid.Report) error {
	if e.closed {
		return errors.New("engine: closed")
	}
	if e.cfg.SweepInterval <= 0 {
		return errors.New("engine: Config.SweepInterval required for streaming")
	}
	sh := e.shardForEPC(rep.EPC)
	buf := e.pending[sh.id]
	if buf == nil {
		buf = e.batchPool.Get().(*[]rfid.Report)
		*buf = (*buf)[:0]
		e.pending[sh.id] = buf
	}
	*buf = append(*buf, rep)
	e.dirty = true
	if len(*buf) >= e.cfg.BatchSize {
		e.pending[sh.id] = nil
		sh.in <- shardMsg{reports: buf}
	}
	return nil
}

// OfferAll ingests a time-ordered report slice.
func (e *Engine) OfferAll(reports []rfid.Report) error {
	for _, rep := range reports {
		if err := e.Offer(rep); err != nil {
			return err
		}
	}
	return nil
}

// dispatchPending pushes every buffered report batch to its shard.
func (e *Engine) dispatchPending() {
	for i, buf := range e.pending {
		if buf == nil {
			continue
		}
		e.pending[i] = nil
		e.shards[i].in <- shardMsg{reports: buf}
	}
}

// Flush dispatches buffered reports and closes every tracker's current
// sweep (e.g. at end of stream), emitting any final positions through
// OnUpdate. It blocks until all shards have drained. A Flush with nothing
// offered since the previous one is a no-op.
func (e *Engine) Flush() error {
	if e.closed {
		return errors.New("engine: closed")
	}
	if !e.dirty {
		return nil
	}
	e.dirty = false
	e.dispatchPending()
	acks := make([]chan error, len(e.shards))
	for i, sh := range e.shards {
		acks[i] = make(chan error, 1)
		sh.in <- shardMsg{flush: acks[i]}
	}
	var first error
	for _, ack := range acks {
		if err := <-ack; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats reports per-tag streaming state, sorted by tag key. It belongs
// to the ingest goroutine (see the concurrency contract): it dispatches
// any reports that goroutine has buffered so the snapshot is current.
func (e *Engine) Stats() []TagStats {
	if e.closed {
		return nil
	}
	e.dispatchPending()
	chans := make([]chan []TagStats, len(e.shards))
	for i, sh := range e.shards {
		chans[i] = make(chan []TagStats, 1)
		sh.in <- shardMsg{stats: chans[i]}
	}
	var out []TagStats
	for _, c := range chans {
		out = append(out, <-c...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// TraceResults materializes each streamed tag's batch-equivalent
// TraceResult (requires Config.RecordTrace), sorted by tag key. Like
// Stats it belongs to the ingest goroutine and dispatches its buffered
// reports first so the snapshot is current; tags that never acquired
// are reported with an error.
func (e *Engine) TraceResults() []TagResult {
	if e.closed {
		return nil
	}
	e.dispatchPending()
	chans := make([]chan []TagResult, len(e.shards))
	for i, sh := range e.shards {
		chans[i] = make(chan []TagResult, 1)
		sh.in <- shardMsg{results: chans[i]}
	}
	var out []TagResult
	for _, c := range chans {
		out = append(out, <-c...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// Close flushes, stops every shard and waits for them to exit. Close is
// idempotent and safe to call from any number of goroutines, concurrently
// with in-flight TraceBatch/Trace calls: batch jobs dispatched before the
// close complete normally, jobs arriving after it fail with an
// "engine: closed" error, and every Close call returns the same error
// once shutdown has finished. The streaming entry points (Offer, OfferAll,
// Flush, Stats) remain ingest-goroutine-only and must not race a Close
// from another goroutine.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		e.closeErr = e.Flush()
		e.mu.Lock()
		e.closed = true
		for _, sh := range e.shards {
			close(sh.in)
		}
		e.mu.Unlock()
		for _, sh := range e.shards {
			<-sh.done
		}
	})
	return e.closeErr
}
