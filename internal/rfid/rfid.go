// Package rfid simulates the commercial UHF RFID hardware of the paper's
// prototype (§6): EPC Gen-2 passive tags and 4-port readers in the style of
// the ThingMagic M6e, which continuously query tags and report the signal
// phase of every reply.
//
// The simulation covers the behaviours the algorithms and evaluation
// depend on:
//
//   - per-port phase reports with tag-, reader- and noise-induced offsets;
//   - round-robin port multiplexing at a configurable sweep rate;
//   - range-dependent reply loss: a passive tag only replies when it
//     harvests enough power, which caps the prototype's range at ≈5 m
//     (§8's footnote);
//   - multiple tags distinguished by EPC, sharing reader airtime.
package rfid

import (
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"time"

	"rfidraw/internal/antenna"
	"rfidraw/internal/channel"
	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
)

// EPC is a 96-bit EPC Gen-2 tag identifier.
type EPC [12]byte

// String renders the EPC as lowercase hex, the way readers report it.
func (e EPC) String() string { return hex.EncodeToString(e[:]) }

// ParseEPC parses a 24-hex-digit EPC string.
func ParseEPC(s string) (EPC, error) {
	var e EPC
	b, err := hex.DecodeString(s)
	if err != nil {
		return e, fmt.Errorf("rfid: bad EPC %q: %w", s, err)
	}
	if len(b) != len(e) {
		return e, fmt.Errorf("rfid: EPC %q must be %d bytes, got %d", s, len(e), len(b))
	}
	copy(e[:], b)
	return e, nil
}

// RandomEPC draws a uniformly random EPC.
func RandomEPC(rng *rand.Rand) EPC {
	var e EPC
	for i := range e {
		e[i] = byte(rng.Intn(256))
	}
	return e
}

// Tag is a passive UHF RFID (e.g. the Alien Squiggle of Fig. 9).
type Tag struct {
	// EPC identifies the tag; it is how multiple simultaneous users are
	// told apart (§2).
	EPC EPC
	// PhaseOffsetRad is the tag's backscatter phase offset — a property
	// of its antenna and chip. It is common to all reader ports, so it
	// cancels in within-reader phase differences.
	PhaseOffsetRad float64
}

// NewTag creates a tag with a random EPC and phase offset.
func NewTag(rng *rand.Rand) Tag {
	return Tag{EPC: RandomEPC(rng), PhaseOffsetRad: rng.Float64() * phys.TwoPi}
}

// Report is one tag reply as delivered by the reader: which port heard
// which tag when, at what phase and power.
type Report struct {
	// Time is the reply time relative to the start of the inventory.
	Time time.Duration
	// ReaderID and AntennaID identify the port that heard the reply.
	ReaderID  int
	AntennaID int
	// EPC is the replying tag.
	EPC EPC
	// PhaseRad is the measured wrapped phase in [0, 2π).
	PhaseRad float64
	// PowerDB is the received power in dB (arbitrary reference), the
	// simulator's stand-in for RSSI.
	PowerDB float64
}

// ReaderConfig configures a simulated 4-port reader.
type ReaderConfig struct {
	// ID is the reader identity; it must match every antenna's ReaderID.
	ID int
	// Antennas are the ports, typically 4 (the M6e has 4 ports).
	Antennas []antenna.Antenna
	// SweepInterval is the time to multiplex through all ports once.
	// The prototype's readers deliver on the order of tens of reads per
	// second per tag; 25 ms per 4-port sweep matches that.
	SweepInterval time.Duration
	// PhaseOffsetRad is the reader's RF-chain phase offset, common to
	// its ports but different (and uncalibrated) across readers — the
	// reason RF-IDraw never pairs antennas across readers (§3.5).
	PhaseOffsetRad float64
	// WakePowerDB and WakeWidthDB shape the reply-loss model: the
	// probability that the tag harvests enough energy to reply is a
	// logistic in received power (dB), centred at WakePowerDB.
	WakePowerDB float64
	WakeWidthDB float64
}

// DefaultReaderConfig returns a configuration matching the prototype: 25 ms
// sweeps and a wake threshold that keeps reads reliable through 5 m with
// loss growing significant beyond that (§8.1 footnote 5: "Beyond 5 meters,
// we start to see significant message loss").
func DefaultReaderConfig(id int, antennas []antenna.Antenna) ReaderConfig {
	return ReaderConfig{
		ID:            id,
		Antennas:      antennas,
		SweepInterval: 25 * time.Millisecond,
		WakePowerDB:   -33,
		WakeWidthDB:   1.5,
	}
}

// Reader is a simulated 4-port UHF reader attached to an environment.
type Reader struct {
	cfg ReaderConfig
	env *channel.Environment
}

// NewReader validates the configuration and binds it to a propagation
// environment.
func NewReader(cfg ReaderConfig, env *channel.Environment) (*Reader, error) {
	if env == nil {
		return nil, fmt.Errorf("rfid: reader %d needs an environment", cfg.ID)
	}
	if err := env.Validate(); err != nil {
		return nil, fmt.Errorf("rfid: reader %d: %w", cfg.ID, err)
	}
	if len(cfg.Antennas) == 0 {
		return nil, fmt.Errorf("rfid: reader %d has no antennas", cfg.ID)
	}
	if cfg.SweepInterval <= 0 {
		return nil, fmt.Errorf("rfid: reader %d sweep interval %v must be positive", cfg.ID, cfg.SweepInterval)
	}
	seen := make(map[int]bool, len(cfg.Antennas))
	for _, a := range cfg.Antennas {
		if a.ReaderID != cfg.ID {
			return nil, fmt.Errorf("rfid: antenna %d belongs to reader %d, not %d", a.ID, a.ReaderID, cfg.ID)
		}
		if seen[a.ID] {
			return nil, fmt.Errorf("rfid: duplicate antenna ID %d", a.ID)
		}
		seen[a.ID] = true
	}
	return &Reader{cfg: cfg, env: env}, nil
}

// Config returns the reader's configuration.
func (r *Reader) Config() ReaderConfig { return r.cfg }

// replyProbability is the logistic wake model in dB.
func (r *Reader) replyProbability(powerDB float64) float64 {
	if r.cfg.WakeWidthDB <= 0 {
		if powerDB >= r.cfg.WakePowerDB {
			return 1
		}
		return 0
	}
	return 1 / (1 + math.Exp(-(powerDB-r.cfg.WakePowerDB)/r.cfg.WakeWidthDB))
}

// ReadPort performs a single query on one port for a tag at pos. ok is
// false when the tag failed to reply (insufficient harvested power). rng
// drives both the loss draw and the measurement noise; it must not be nil.
func (r *Reader) ReadPort(t time.Duration, port antenna.Antenna, tag Tag, pos geom.Vec3, rng *rand.Rand) (Report, bool) {
	m := r.env.Measure(port.Pos, pos, tag.PhaseOffsetRad+r.cfg.PhaseOffsetRad, rng)
	powerDB := phys.DB(math.Max(m.Power, 1e-30))
	if rng.Float64() >= r.replyProbability(powerDB) {
		return Report{}, false
	}
	return Report{
		Time:      t,
		ReaderID:  r.cfg.ID,
		AntennaID: port.ID,
		EPC:       tag.EPC,
		PhaseRad:  m.Phase,
		PowerDB:   powerDB,
	}, true
}

// Sweep multiplexes through all ports once, starting at time t, and
// returns the successful reads. Port dwells are spread evenly across the
// sweep interval.
func (r *Reader) Sweep(t time.Duration, tag Tag, at func(time.Duration) geom.Vec3, rng *rand.Rand) []Report {
	dwell := r.cfg.SweepInterval / time.Duration(len(r.cfg.Antennas))
	var out []Report
	for i, port := range r.cfg.Antennas {
		rt := t + time.Duration(i)*dwell
		if rep, ok := r.ReadPort(rt, port, tag, at(rt), rng); ok {
			out = append(out, rep)
		}
	}
	return out
}

// Inventory runs sweeps back-to-back for the given duration against a tag
// following the trajectory described by at (time → room position), and
// returns every successful read in time order.
func (r *Reader) Inventory(dur time.Duration, tag Tag, at func(time.Duration) geom.Vec3, rng *rand.Rand) []Report {
	var out []Report
	for t := time.Duration(0); t < dur; t += r.cfg.SweepInterval {
		out = append(out, r.Sweep(t, tag, at, rng)...)
	}
	return out
}

// InventoryMulti interleaves multiple tags in one inventory, modelling
// Gen-2 singulation by splitting each sweep's airtime across the tags
// round-robin: tag i is queried on sweeps where sweepIndex % len(tags) == i,
// so per-tag read rate divides by the tag count.
func (r *Reader) InventoryMulti(dur time.Duration, tags []Tag, at []func(time.Duration) geom.Vec3, rng *rand.Rand) ([]Report, error) {
	if len(tags) == 0 || len(tags) != len(at) {
		return nil, fmt.Errorf("rfid: InventoryMulti needs matching tags (%d) and trajectories (%d)", len(tags), len(at))
	}
	var out []Report
	sweep := 0
	for t := time.Duration(0); t < dur; t += r.cfg.SweepInterval {
		i := sweep % len(tags)
		out = append(out, r.Sweep(t, tags[i], at[i], rng)...)
		sweep++
	}
	return out, nil
}

// Snapshot is the per-sweep view the positioning algorithms consume: the
// latest wrapped phase per antenna of one reader at a common timestamp.
type Snapshot struct {
	Time time.Duration
	// Phase maps antenna ID → wrapped phase. Ports whose last read is
	// stale (older than MaxAge at grouping time) are omitted.
	Phase map[int]float64
}

// GroupSweeps folds a report stream into per-sweep snapshots with
// last-known-phase hold: a port that missed a read keeps its previous
// phase as long as it is not older than maxAge. Reports must be in time
// order. Only reports matching epc are considered.
func GroupSweeps(reports []Report, epc EPC, sweepInterval, maxAge time.Duration) []Snapshot {
	if len(reports) == 0 {
		return nil
	}
	type held struct {
		phase float64
		t     time.Duration
	}
	latest := make(map[int]held)
	var out []Snapshot
	end := reports[len(reports)-1].Time
	ri := 0
	for t := time.Duration(0); t <= end; t += sweepInterval {
		for ri < len(reports) && reports[ri].Time < t+sweepInterval {
			rep := reports[ri]
			ri++
			if rep.EPC != epc {
				continue
			}
			latest[rep.AntennaID] = held{phase: rep.PhaseRad, t: rep.Time}
		}
		snap := Snapshot{Time: t, Phase: make(map[int]float64, len(latest))}
		for id, h := range latest {
			if t-h.t <= maxAge {
				snap.Phase[id] = h.phase
			}
		}
		if len(snap.Phase) > 0 {
			out = append(out, snap)
		}
	}
	return out
}
