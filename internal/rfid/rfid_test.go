package rfid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rfidraw/internal/antenna"
	"rfidraw/internal/channel"
	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
)

func testAntennas(readerID int) []antenna.Antenna {
	lambda := phys.DefaultCarrier().WavelengthM
	return []antenna.Antenna{
		{ID: 1, ReaderID: readerID, Pos: geom.Vec3{X: 0, Z: 0}},
		{ID: 2, ReaderID: readerID, Pos: geom.Vec3{X: 8 * lambda, Z: 0}},
		{ID: 3, ReaderID: readerID, Pos: geom.Vec3{X: 8 * lambda, Z: 8 * lambda}},
		{ID: 4, ReaderID: readerID, Pos: geom.Vec3{X: 0, Z: 8 * lambda}},
	}
}

func newTestReader(t *testing.T, noise float64) *Reader {
	t.Helper()
	r, err := NewReader(DefaultReaderConfig(0, testAntennas(0)), channel.LOS(noise))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEPCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := RandomEPC(rng)
	s := e.String()
	if len(s) != 24 {
		t.Fatalf("EPC string length = %d", len(s))
	}
	parsed, err := ParseEPC(s)
	if err != nil {
		t.Fatal(err)
	}
	if parsed != e {
		t.Fatalf("round trip: %v != %v", parsed, e)
	}
}

func TestParseEPCErrors(t *testing.T) {
	if _, err := ParseEPC("zz"); err == nil {
		t.Fatal("bad hex should error")
	}
	if _, err := ParseEPC("abcd"); err == nil {
		t.Fatal("short EPC should error")
	}
}

func TestNewReaderValidation(t *testing.T) {
	env := channel.LOS(0)
	ants := testAntennas(0)
	cases := []struct {
		name string
		cfg  ReaderConfig
		env  *channel.Environment
	}{
		{"nil env", DefaultReaderConfig(0, ants), nil},
		{"no antennas", DefaultReaderConfig(0, nil), env},
		{"zero sweep", ReaderConfig{ID: 0, Antennas: ants}, env},
		{"wrong reader id", DefaultReaderConfig(1, ants), env},
		{"dup antenna", DefaultReaderConfig(0, append(testAntennas(0), antenna.Antenna{ID: 1, ReaderID: 0, Pos: geom.Vec3{X: 1}})), env},
	}
	for _, tc := range cases {
		if _, err := NewReader(tc.cfg, tc.env); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	bad := &channel.Environment{} // fails env.Validate
	if _, err := NewReader(DefaultReaderConfig(0, ants), bad); err == nil {
		t.Error("invalid environment should error")
	}
}

func TestReadPortPhaseMatchesChannel(t *testing.T) {
	r := newTestReader(t, 0)
	rng := rand.New(rand.NewSource(2))
	tag := NewTag(rng)
	pos := geom.Vec3{X: 1.3, Y: 2, Z: 0.8}
	rep, ok := r.ReadPort(0, r.Config().Antennas[0], tag, pos, rng)
	if !ok {
		t.Fatal("close tag should reply")
	}
	env := channel.LOS(0)
	want := env.Measure(r.Config().Antennas[0].Pos, pos, tag.PhaseOffsetRad, nil).Phase
	if math.Abs(phys.WrapSigned(rep.PhaseRad-want)) > 1e-9 {
		t.Fatalf("phase = %v, want %v", rep.PhaseRad, want)
	}
	if rep.AntennaID != 1 || rep.ReaderID != 0 || rep.EPC != tag.EPC {
		t.Fatalf("report metadata wrong: %+v", rep)
	}
}

func TestReplyLossGrowsWithDistance(t *testing.T) {
	r := newTestReader(t, 0.05)
	rng := rand.New(rand.NewSource(3))
	tag := NewTag(rng)
	rate := func(d float64) float64 {
		ok := 0
		const n = 400
		for i := 0; i < n; i++ {
			if _, replied := r.ReadPort(0, r.Config().Antennas[0], tag, geom.Vec3{Y: d}, rng); replied {
				ok++
			}
		}
		return float64(ok) / n
	}
	r2, r5, r8 := rate(2), rate(5), rate(8)
	if r2 < 0.99 {
		t.Fatalf("2 m reply rate = %v, want ≈1", r2)
	}
	if r5 < 0.5 || r5 > 0.98 {
		t.Fatalf("5 m reply rate = %v, want degraded but usable", r5)
	}
	if r8 > 0.2 {
		t.Fatalf("8 m reply rate = %v, want mostly lost", r8)
	}
	if !(r2 >= r5 && r5 >= r8) {
		t.Fatalf("reply rate not monotone: %v %v %v", r2, r5, r8)
	}
}

func TestReplyProbabilityDegenerateWidth(t *testing.T) {
	cfg := DefaultReaderConfig(0, testAntennas(0))
	cfg.WakeWidthDB = 0
	r, err := NewReader(cfg, channel.LOS(0))
	if err != nil {
		t.Fatal(err)
	}
	if r.replyProbability(cfg.WakePowerDB+1) != 1 {
		t.Fatal("above threshold should be certain")
	}
	if r.replyProbability(cfg.WakePowerDB-1) != 0 {
		t.Fatal("below threshold should never reply")
	}
}

func TestSweepCoversAllPorts(t *testing.T) {
	r := newTestReader(t, 0)
	rng := rand.New(rand.NewSource(4))
	tag := NewTag(rng)
	at := func(time.Duration) geom.Vec3 { return geom.Vec3{X: 1.3, Y: 2, Z: 0.8} }
	reps := r.Sweep(0, tag, at, rng)
	if len(reps) != 4 {
		t.Fatalf("got %d reports, want 4", len(reps))
	}
	seen := map[int]bool{}
	for _, rep := range reps {
		seen[rep.AntennaID] = true
		if rep.Time < 0 || rep.Time >= r.Config().SweepInterval {
			t.Fatalf("report time %v outside sweep", rep.Time)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("ports seen = %v", seen)
	}
}

func TestInventoryTimeOrderAndRate(t *testing.T) {
	r := newTestReader(t, 0.02)
	rng := rand.New(rand.NewSource(5))
	tag := NewTag(rng)
	at := func(time.Duration) geom.Vec3 { return geom.Vec3{X: 1.3, Y: 2, Z: 0.8} }
	dur := 2 * time.Second
	reps := r.Inventory(dur, tag, at, rng)
	// 25 ms sweeps × 4 ports over 2 s → ≈320 reads at close range.
	if len(reps) < 300 {
		t.Fatalf("read count = %d, want ≈320", len(reps))
	}
	for i := 1; i < len(reps); i++ {
		if reps[i].Time < reps[i-1].Time {
			t.Fatal("reports out of order")
		}
	}
}

func TestInventoryMulti(t *testing.T) {
	r := newTestReader(t, 0.02)
	rng := rand.New(rand.NewSource(6))
	tags := []Tag{NewTag(rng), NewTag(rng)}
	at := []func(time.Duration) geom.Vec3{
		func(time.Duration) geom.Vec3 { return geom.Vec3{X: 1, Y: 2, Z: 0.5} },
		func(time.Duration) geom.Vec3 { return geom.Vec3{X: 2, Y: 2, Z: 1.0} },
	}
	reps, err := r.InventoryMulti(2*time.Second, tags, at, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EPC]int{}
	for _, rep := range reps {
		counts[rep.EPC]++
	}
	if len(counts) != 2 {
		t.Fatalf("tag count = %d", len(counts))
	}
	// Airtime splits roughly evenly.
	c0, c1 := counts[tags[0].EPC], counts[tags[1].EPC]
	if math.Abs(float64(c0-c1)) > 0.2*float64(c0+c1) {
		t.Fatalf("airtime unbalanced: %d vs %d", c0, c1)
	}
	if _, err := r.InventoryMulti(time.Second, tags, at[:1], rng); err == nil {
		t.Fatal("mismatched lengths should error")
	}
	if _, err := r.InventoryMulti(time.Second, nil, nil, rng); err == nil {
		t.Fatal("empty tags should error")
	}
}

func TestGroupSweeps(t *testing.T) {
	r := newTestReader(t, 0.02)
	rng := rand.New(rand.NewSource(7))
	tag := NewTag(rng)
	at := func(time.Duration) geom.Vec3 { return geom.Vec3{X: 1.3, Y: 2, Z: 0.8} }
	reps := r.Inventory(time.Second, tag, at, rng)
	snaps := GroupSweeps(reps, tag.EPC, r.Config().SweepInterval, 200*time.Millisecond)
	if len(snaps) < 35 {
		t.Fatalf("snapshot count = %d", len(snaps))
	}
	for _, s := range snaps[4:] {
		if len(s.Phase) != 4 {
			t.Fatalf("snapshot at %v has %d phases, want 4 (hold-last)", s.Time, len(s.Phase))
		}
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Time <= snaps[i-1].Time {
			t.Fatal("snapshots out of order")
		}
	}
	// Foreign EPCs are filtered out.
	other := NewTag(rng)
	if got := GroupSweeps(reps, other.EPC, r.Config().SweepInterval, time.Second); got != nil {
		t.Fatalf("foreign EPC should produce no snapshots, got %d", len(got))
	}
	if got := GroupSweeps(nil, tag.EPC, time.Millisecond, time.Second); got != nil {
		t.Fatal("empty reports should produce nil")
	}
}

func TestGroupSweepsMaxAgeExpiresStalePhases(t *testing.T) {
	epc := EPC{1}
	reports := []Report{
		{Time: 0, AntennaID: 1, EPC: epc, PhaseRad: 1},
		{Time: 0, AntennaID: 2, EPC: epc, PhaseRad: 2},
		// Antenna 2 then goes silent.
		{Time: 100 * time.Millisecond, AntennaID: 1, EPC: epc, PhaseRad: 1.1},
		{Time: 200 * time.Millisecond, AntennaID: 1, EPC: epc, PhaseRad: 1.2},
	}
	snaps := GroupSweeps(reports, epc, 100*time.Millisecond, 50*time.Millisecond)
	last := snaps[len(snaps)-1]
	if _, ok := last.Phase[2]; ok {
		t.Fatal("stale phase for antenna 2 should have expired")
	}
	if _, ok := last.Phase[1]; !ok {
		t.Fatal("fresh phase for antenna 1 should be present")
	}
}

// Property: reply probability is monotone non-decreasing in power.
func TestQuickReplyProbabilityMonotone(t *testing.T) {
	r := newTestReader(t, 0)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return r.replyProbability(lo) <= r.replyProbability(hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: EPC String/Parse round-trips for arbitrary bytes.
func TestQuickEPCRoundTrip(t *testing.T) {
	f := func(raw [12]byte) bool {
		e := EPC(raw)
		p, err := ParseEPC(e.String())
		return err == nil && p == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
