package traj

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rfidraw/internal/geom"
)

func line(n int) Trajectory {
	pos := make([]geom.Vec2, n)
	for i := range pos {
		pos[i] = geom.Vec2{X: float64(i) * 0.01, Z: 0}
	}
	return FromPositions(pos, 10*time.Millisecond)
}

func TestFromPositionsTiming(t *testing.T) {
	tr := line(5)
	if tr.Len() != 5 {
		t.Fatal("len")
	}
	if tr.Points[4].T != 40*time.Millisecond {
		t.Fatalf("last T = %v", tr.Points[4].T)
	}
	if tr.Duration() != 40*time.Millisecond {
		t.Fatalf("duration = %v", tr.Duration())
	}
	if (Trajectory{}).Duration() != 0 {
		t.Fatal("empty duration")
	}
}

func TestAtInterpolates(t *testing.T) {
	tr := line(3) // x = 0, 0.01, 0.02 at t = 0, 10ms, 20ms
	p, err := tr.At(5 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.X-0.005) > 1e-12 {
		t.Fatalf("interp X = %v", p.X)
	}
	// Clamping.
	p, _ = tr.At(-time.Second)
	if p.X != 0 {
		t.Fatalf("clamp low = %v", p)
	}
	p, _ = tr.At(time.Hour)
	if p.X != 0.02 {
		t.Fatalf("clamp high = %v", p)
	}
	if _, err := (Trajectory{}).At(0); err == nil {
		t.Fatal("empty At should error")
	}
}

func TestResample(t *testing.T) {
	tr := line(11)
	rs, err := tr.Resample(21)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 21 {
		t.Fatal("resample len")
	}
	if rs.Start() != tr.Start() || rs.End() != tr.End() {
		t.Fatal("endpoints not preserved")
	}
	if _, err := tr.Resample(0); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := (Trajectory{}).Resample(5); err == nil {
		t.Fatal("empty resample should error")
	}
	one, err := tr.Resample(1)
	if err != nil || one.Len() != 1 || one.Start() != tr.Start() {
		t.Fatalf("n=1 resample = %v err=%v", one, err)
	}
}

func TestShiftAndArcLength(t *testing.T) {
	tr := line(11)
	sh := tr.Shift(geom.Vec2{X: 1, Z: 2})
	if sh.Start() != (geom.Vec2{X: 1, Z: 2}) {
		t.Fatalf("shifted start = %v", sh.Start())
	}
	if math.Abs(tr.ArcLength()-0.1) > 1e-9 {
		t.Fatalf("arc length = %v", tr.ArcLength())
	}
	if math.Abs(sh.ArcLength()-tr.ArcLength()) > 1e-9 {
		t.Fatal("shift must preserve arc length")
	}
}

func TestCompareAlignInitial(t *testing.T) {
	truth := line(50)
	// Reconstruction = truth + constant offset: AlignInitial should zero it.
	recon := truth.Shift(geom.Vec2{X: 0.07, Z: -0.03})
	rep, err := Compare(truth, recon, AlignInitial, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range rep.PointErrors {
		if e > 1e-9 {
			t.Fatalf("point %d error %v after initial alignment", i, e)
		}
	}
	wantInit := math.Hypot(0.07, 0.03)
	if math.Abs(rep.InitialError-wantInit) > 1e-9 {
		t.Fatalf("initial error = %v, want %v", rep.InitialError, wantInit)
	}
	if rep.Offset.Dist(geom.Vec2{X: 0.07, Z: -0.03}) > 1e-9 {
		t.Fatalf("offset = %v", rep.Offset)
	}
}

func TestCompareAlignMean(t *testing.T) {
	truth := line(50)
	recon := truth.Shift(geom.Vec2{X: 0.5, Z: 0.5})
	rep, err := Compare(truth, recon, AlignMean, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.PointErrors {
		if e > 1e-9 {
			t.Fatalf("mean alignment should zero a constant offset, got %v", e)
		}
	}
}

func TestCompareAlignNone(t *testing.T) {
	truth := line(10)
	recon := truth.Shift(geom.Vec2{X: 0.1, Z: 0})
	rep, err := Compare(truth, recon, AlignNone, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.PointErrors {
		if math.Abs(e-0.1) > 1e-9 {
			t.Fatalf("unaligned error = %v, want 0.1", e)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(Trajectory{}, line(5), AlignInitial, 10); err == nil {
		t.Fatal("empty truth should error")
	}
	if _, err := Compare(line(5), Trajectory{}, AlignInitial, 10); err == nil {
		t.Fatal("empty recon should error")
	}
	if _, err := Compare(line(5), line(5), AlignMode(99), 10); err == nil {
		t.Fatal("bad mode should error")
	}
	// n <= 0 defaults instead of failing.
	if _, err := Compare(line(5), line(5), AlignInitial, -1); err != nil {
		t.Fatal(err)
	}
}

func TestMedianError(t *testing.T) {
	truth := line(30)
	recon := truth.Shift(geom.Vec2{X: 0.02, Z: 0})
	// After initial alignment the shift disappears.
	med, err := MedianError(truth, recon, AlignInitial, 30)
	if err != nil || med > 1e-9 {
		t.Fatalf("median = %v err = %v", med, err)
	}
	med, err = MedianError(truth, recon, AlignNone, 30)
	if err != nil || math.Abs(med-0.02) > 1e-9 {
		t.Fatalf("unaligned median = %v err = %v", med, err)
	}
	if _, err := MedianError(Trajectory{}, recon, AlignNone, 5); err == nil {
		t.Fatal("expected error")
	}
}

func TestNormalize(t *testing.T) {
	pts := []geom.Vec2{{X: 10, Z: 10}, {X: 12, Z: 10}, {X: 12, Z: 11}, {X: 10, Z: 11}}
	n := Normalize(pts)
	c := geom.Centroid(n)
	if c.Norm() > 1e-9 {
		t.Fatalf("centroid = %v", c)
	}
	r, _ := geom.Bounds(n)
	if math.Abs(math.Max(r.Width(), r.Height())-1) > 1e-9 {
		t.Fatalf("scale = %v × %v", r.Width(), r.Height())
	}
	if Normalize(nil) != nil {
		t.Fatal("nil normalize")
	}
	// Degenerate single point: translated only.
	one := Normalize([]geom.Vec2{{X: 5, Z: 5}})
	if one[0].Norm() > 1e-9 {
		t.Fatalf("single point normalize = %v", one[0])
	}
}

func TestAlignModeString(t *testing.T) {
	if AlignNone.String() != "none" || AlignInitial.String() != "initial" || AlignMean.String() != "mean" {
		t.Fatal("align mode strings")
	}
	if AlignMode(42).String() == "" {
		t.Fatal("unknown mode string empty")
	}
}

// Property: Compare with AlignInitial is invariant to translating the
// reconstruction.
func TestQuickCompareTranslationInvariant(t *testing.T) {
	f := func(seed int64, dx, dz float64) bool {
		if math.IsNaN(dx) || math.IsNaN(dz) || math.Abs(dx) > 1e6 || math.Abs(dz) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		pos := make([]geom.Vec2, 20)
		for i := range pos {
			pos[i] = geom.Vec2{X: rng.Float64(), Z: rng.Float64()}
		}
		truth := FromPositions(pos, 10*time.Millisecond)
		noisy := make([]geom.Vec2, 20)
		for i := range noisy {
			noisy[i] = pos[i].Add(geom.Vec2{X: 0.01 * rng.NormFloat64(), Z: 0.01 * rng.NormFloat64()})
		}
		recon := FromPositions(noisy, 10*time.Millisecond)
		a, err1 := Compare(truth, recon, AlignInitial, 20)
		b, err2 := Compare(truth, recon.Shift(geom.Vec2{X: dx, Z: dz}), AlignInitial, 20)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a.PointErrors {
			if math.Abs(a.PointErrors[i]-b.PointErrors[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Normalize output always fits in a unit-ish box centred at 0.
func TestQuickNormalizeBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geom.Vec2, 15)
		for i := range pts {
			pts[i] = geom.Vec2{X: rng.NormFloat64() * 100, Z: rng.NormFloat64() * 100}
		}
		for _, p := range Normalize(pts) {
			if p.Norm() > 1.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
