// Package traj defines timestamped trajectories and the error metrics of the
// paper's evaluation (§8.1): point-by-point error after removing a fixed
// offset. RF-IDraw removes the *initial-position* offset (the errors along
// the trace are coherent); the antenna-array baseline removes the *mean*
// (DC) offset, which is favourable to it because its errors are independent.
package traj

import (
	"errors"
	"fmt"
	"math"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/stats"
)

// Point is one timestamped sample of a trajectory in the writing plane.
type Point struct {
	T   time.Duration // time since the start of the trace
	Pos geom.Vec2     // position in the writing plane, metres
}

// Trajectory is an ordered sequence of timestamped positions. Samples must
// be in non-decreasing time order.
type Trajectory struct {
	Points []Point
}

// FromPositions builds a trajectory from evenly spaced positions at the
// given sample interval.
func FromPositions(pos []geom.Vec2, dt time.Duration) Trajectory {
	pts := make([]Point, len(pos))
	for i, p := range pos {
		pts[i] = Point{T: time.Duration(i) * dt, Pos: p}
	}
	return Trajectory{Points: pts}
}

// Len returns the number of samples.
func (t Trajectory) Len() int { return len(t.Points) }

// Positions returns the bare positions of the trajectory.
func (t Trajectory) Positions() []geom.Vec2 {
	out := make([]geom.Vec2, len(t.Points))
	for i, p := range t.Points {
		out[i] = p.Pos
	}
	return out
}

// Duration returns the time span covered by the trajectory.
func (t Trajectory) Duration() time.Duration {
	if len(t.Points) == 0 {
		return 0
	}
	return t.Points[len(t.Points)-1].T - t.Points[0].T
}

// Start returns the first position. It panics on an empty trajectory.
func (t Trajectory) Start() geom.Vec2 { return t.Points[0].Pos }

// End returns the last position. It panics on an empty trajectory.
func (t Trajectory) End() geom.Vec2 { return t.Points[len(t.Points)-1].Pos }

// Shift returns a copy of the trajectory translated by d.
func (t Trajectory) Shift(d geom.Vec2) Trajectory {
	pts := make([]Point, len(t.Points))
	for i, p := range t.Points {
		pts[i] = Point{T: p.T, Pos: p.Pos.Add(d)}
	}
	return Trajectory{Points: pts}
}

// At linearly interpolates the position at time τ. Times outside the
// trajectory's span clamp to the endpoints. It returns an error for an
// empty trajectory.
func (t Trajectory) At(tau time.Duration) (geom.Vec2, error) {
	if len(t.Points) == 0 {
		return geom.Vec2{}, errors.New("traj: empty trajectory")
	}
	if tau <= t.Points[0].T {
		return t.Points[0].Pos, nil
	}
	last := t.Points[len(t.Points)-1]
	if tau >= last.T {
		return last.Pos, nil
	}
	// Binary search for the segment containing tau.
	lo, hi := 0, len(t.Points)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if t.Points[mid].T <= tau {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := t.Points[lo], t.Points[hi]
	span := b.T - a.T
	if span <= 0 {
		return a.Pos, nil
	}
	frac := float64(tau-a.T) / float64(span)
	return a.Pos.Lerp(b.Pos, frac), nil
}

// Resample returns the trajectory sampled at n evenly spaced times across
// its span.
func (t Trajectory) Resample(n int) (Trajectory, error) {
	if len(t.Points) == 0 {
		return Trajectory{}, errors.New("traj: empty trajectory")
	}
	if n <= 0 {
		return Trajectory{}, fmt.Errorf("traj: invalid resample count %d", n)
	}
	out := make([]Point, n)
	t0 := t.Points[0].T
	span := t.Duration()
	for i := 0; i < n; i++ {
		tau := t0
		if n > 1 {
			tau = t0 + time.Duration(float64(span)*float64(i)/float64(n-1))
		}
		pos, err := t.At(tau)
		if err != nil {
			return Trajectory{}, err
		}
		out[i] = Point{T: tau, Pos: pos}
	}
	return Trajectory{Points: out}, nil
}

// ArcLength returns the total path length of the trajectory in metres.
func (t Trajectory) ArcLength() float64 { return geom.PolylineLength(t.Positions()) }

// AlignMode selects how a fixed offset is removed before computing
// point-by-point errors, matching §8.1.
type AlignMode int

const (
	// AlignNone compares the trajectories as-is.
	AlignNone AlignMode = iota
	// AlignInitial removes the initial-position offset (used for
	// RF-IDraw, whose errors are coherent along the trace).
	AlignInitial
	// AlignMean removes the mean (DC) position offset (used for the
	// antenna-array baseline, whose errors are independent; this choice
	// favours the baseline, as the paper notes).
	AlignMean
)

// String implements fmt.Stringer.
func (m AlignMode) String() string {
	switch m {
	case AlignNone:
		return "none"
	case AlignInitial:
		return "initial"
	case AlignMean:
		return "mean"
	default:
		return fmt.Sprintf("AlignMode(%d)", int(m))
	}
}

// ErrorReport carries the per-point error distances between a reconstructed
// trajectory and the ground truth after offset removal.
type ErrorReport struct {
	// Offset is the translation that was removed from the reconstruction.
	Offset geom.Vec2
	// PointErrors are the per-sample distances in metres, after shifting.
	PointErrors []float64
	// InitialError is the distance between the *unshifted* reconstructed
	// start and the true start — the absolute positioning error (§8.2).
	InitialError float64
}

// Summary returns order statistics of the point errors.
func (r ErrorReport) Summary() stats.Summary { return stats.Summarize(r.PointErrors) }

// Compare resamples both trajectories to n common points, removes the
// offset selected by mode from the reconstruction, and returns the
// point-by-point error distances (§8.1's metric).
func Compare(truth, recon Trajectory, mode AlignMode, n int) (ErrorReport, error) {
	if truth.Len() == 0 || recon.Len() == 0 {
		return ErrorReport{}, errors.New("traj: cannot compare empty trajectories")
	}
	if n <= 0 {
		n = 64
	}
	tr, err := truth.Resample(n)
	if err != nil {
		return ErrorReport{}, err
	}
	rr, err := recon.Resample(n)
	if err != nil {
		return ErrorReport{}, err
	}
	var offset geom.Vec2
	switch mode {
	case AlignInitial:
		offset = rr.Points[0].Pos.Sub(tr.Points[0].Pos)
	case AlignMean:
		offset = geom.Centroid(rr.Positions()).Sub(geom.Centroid(tr.Positions()))
	case AlignNone:
		// no offset removed
	default:
		return ErrorReport{}, fmt.Errorf("traj: unknown align mode %v", mode)
	}
	errs := make([]float64, n)
	for i := 0; i < n; i++ {
		errs[i] = rr.Points[i].Pos.Sub(offset).Dist(tr.Points[i].Pos)
	}
	return ErrorReport{
		Offset:       offset,
		PointErrors:  errs,
		InitialError: recon.Start().Dist(truth.Start()),
	}, nil
}

// MedianError is a convenience wrapper returning the median point error of
// Compare in metres.
func MedianError(truth, recon Trajectory, mode AlignMode, n int) (float64, error) {
	rep, err := Compare(truth, recon, mode, n)
	if err != nil {
		return math.NaN(), err
	}
	return stats.Median(rep.PointErrors), nil
}

// Smooth returns the trajectory filtered by a centred moving average over
// 2·half+1 samples (clamped at the ends). Positioning front-ends smooth
// reconstructed traces before handing them to a recognizer; half ≤ 0
// returns the trajectory unchanged.
func (t Trajectory) Smooth(half int) Trajectory {
	if half <= 0 || t.Len() == 0 {
		return t
	}
	out := make([]Point, t.Len())
	for i := range t.Points {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi > t.Len()-1 {
			hi = t.Len() - 1
		}
		var acc geom.Vec2
		for j := lo; j <= hi; j++ {
			acc = acc.Add(t.Points[j].Pos)
		}
		out[i] = Point{T: t.Points[i].T, Pos: acc.Scale(1 / float64(hi-lo+1))}
	}
	return Trajectory{Points: out}
}

// Normalize translates the trajectory so its centroid is at the origin and
// scales it so the larger side of its bounding box is 1. A zero-size
// trajectory is only translated. The recognizer uses this to compare shapes
// regardless of where and how large they were written.
func Normalize(positions []geom.Vec2) []geom.Vec2 {
	if len(positions) == 0 {
		return nil
	}
	c := geom.Centroid(positions)
	r, _ := geom.Bounds(positions)
	scale := math.Max(r.Width(), r.Height())
	out := make([]geom.Vec2, len(positions))
	for i, p := range positions {
		q := p.Sub(c)
		if scale > 0 {
			q = q.Scale(1 / scale)
		}
		out[i] = q
	}
	return out
}
