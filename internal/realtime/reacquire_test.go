package realtime

import (
	"math"
	"testing"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/phys"
	"rfidraw/internal/sim"
)

// TestReacquisitionAfterTeleport simulates tracking loss: the tag vanishes
// mid-trace and reappears far away (a user leaving and re-entering the
// field). The locked lobes stop intersecting, the vote collapses, and the
// tracker must reacquire rather than keep emitting garbage.
func TestReacquisitionAfterTeleport(t *testing.T) {
	sc, err := sim.New(sim.Config{Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	// First segment at one location, second far away; observations are
	// continuous in time but the position jumps 1.2 m between them.
	wr1, err := sc.RunWord("on", geom.Vec2{X: 0.5, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	wr2, err := sc.RunWord("go", geom.Vec2{X: 1.7, Z: 1.4}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(t, sc)
	reports := reportsFromSamples(wr1, sc.Tag.EPC)
	offset := wr1.SamplesRF[len(wr1.SamplesRF)-1].T + 25*time.Millisecond
	for _, rep := range reportsFromSamples(wr2, sc.Tag.EPC) {
		rep.Time += offset
		reports = append(reports, rep)
	}
	var after int
	for _, rep := range reports {
		ps, err := tr.Offer(rep)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ps {
			if p.Time > offset+500*time.Millisecond {
				after++
				// Positions after reacquisition must be near the second
				// word's area, not stuck at the first.
				if p.Pos.X < 1.2 {
					t.Fatalf("post-teleport position %v still near first word", p.Pos)
				}
			}
		}
	}
	if tr.Reacquisitions() == 0 {
		t.Fatal("tracker never detected tracking loss")
	}
	if after == 0 {
		t.Fatal("no positions after reacquisition")
	}
}

// TestNoSpuriousReacquisition: normal continuous writing must not trigger
// the loss detector.
func TestNoSpuriousReacquisition(t *testing.T) {
	sc, err := sim.New(sim.Config{Seed: 56})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := sc.RunWord("clear", geom.Vec2{X: 0.6, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(t, sc)
	for _, rep := range reportsFromSamples(wr, sc.Tag.EPC) {
		if _, err := tr.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Reacquisitions() != 0 {
		t.Fatalf("spurious reacquisitions: %d", tr.Reacquisitions())
	}
}

// TestReacquireDisabled: -Inf threshold turns the detector off.
func TestReacquireDisabled(t *testing.T) {
	sc, err := sim.New(sim.Config{Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	sysCfg := newTracker(t, sc).cfg // reuse system
	cfg := Config{
		System:        sysCfg.System,
		SweepInterval: sysCfg.SweepInterval,
		ReacquireVote: math.Inf(-1),
	}
	tr, err := NewTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Feed garbage phases after a valid warmup: votes collapse but no
	// reacquisition happens.
	wr, err := sc.RunWord("on", geom.Vec2{X: 0.6, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	reports := reportsFromSamples(wr, sc.Tag.EPC)
	for i, rep := range reports {
		if i > len(reports)/2 {
			rep.PhaseRad = phys.Wrap(float64(i))
		}
		if _, err := tr.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Reacquisitions() != 0 {
		t.Fatal("disabled detector still reacquired")
	}
}
