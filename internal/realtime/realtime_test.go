package realtime

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/rfid"
	"rfidraw/internal/sim"
	"rfidraw/internal/traj"
)

func newTracker(t testing.TB, sc *sim.Scenario) *Tracker {
	t.Helper()
	sys, err := core.NewSystem(sc.RFIDraw, core.Config{Plane: sc.Plane, Region: sc.Region})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTracker(Config{System: sys, SweepInterval: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// reportsForWord regenerates the raw report streams for a word run by
// re-running the scenario readers. Since Scenario keeps readers private we
// reconstruct reports from merged samples instead: one synthetic report
// per antenna phase per sample.
func reportsFromSamples(wr *sim.WordRun, epc rfid.EPC) []rfid.Report {
	var out []rfid.Report
	for _, s := range wr.SamplesRF {
		for id, ph := range s.Phase {
			out = append(out, rfid.Report{
				Time:      s.T,
				ReaderID:  (id - 1) / 4,
				AntennaID: id,
				EPC:       epc,
				PhaseRad:  ph,
			})
		}
	}
	return out
}

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(Config{}); err == nil {
		t.Fatal("missing system should error")
	}
	sc, err := sim.New(sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(sc.RFIDraw, core.Config{Plane: sc.Plane, Region: sc.Region})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTracker(Config{System: sys}); err == nil {
		t.Fatal("missing sweep interval should error")
	}
}

func TestLiveTrackingMatchesTruth(t *testing.T) {
	sc, err := sim.New(sim.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := sc.RunWord("on", geom.Vec2{X: 0.9, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(t, sc)
	reports := reportsFromSamples(wr, sc.Tag.EPC)
	var live []Position
	for _, rep := range reports {
		ps, err := tr.Offer(rep)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, ps...)
	}
	ps, err := tr.Flush()
	if err != nil {
		t.Fatal(err)
	}
	live = append(live, ps...)
	if !tr.Started() {
		t.Fatal("tracker never acquired")
	}
	if len(live) < 20 {
		t.Fatalf("live positions = %d", len(live))
	}
	// Convert to a trajectory and compare shapes.
	pts := make([]traj.Point, len(live))
	for i, p := range live {
		pts[i] = traj.Point{T: p.Time, Pos: p.Pos}
	}
	med, err := traj.MedianError(wr.Truth, traj.Trajectory{Points: pts}, traj.AlignInitial, 64)
	if err != nil {
		t.Fatal(err)
	}
	if med > 0.08 {
		t.Fatalf("live shape error = %v m", med)
	}
	if tr.MeanVote() > 0 {
		t.Fatal("mean vote must be ≤ 0")
	}
}

func TestLivePositionsAreOrderedAndIncremental(t *testing.T) {
	sc, err := sim.New(sim.Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := sc.RunWord("go", geom.Vec2{X: 0.9, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(t, sc)
	var prev time.Duration = -1
	emitted := 0
	for _, rep := range reportsFromSamples(wr, sc.Tag.EPC) {
		ps, err := tr.Offer(rep)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ps {
			if p.Time <= prev {
				t.Fatal("positions out of order")
			}
			prev = p.Time
			emitted++
		}
	}
	if emitted == 0 {
		t.Fatal("no positions emitted before stream end")
	}
}

func TestForeignTagIgnored(t *testing.T) {
	sc, err := sim.New(sim.Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := sc.RunWord("go", geom.Vec2{X: 0.9, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(t, sc)
	reports := reportsFromSamples(wr, sc.Tag.EPC)
	// Interleave reports from a different tag: they must not disturb
	// tracking.
	other := rfid.EPC{9, 9, 9}
	for _, rep := range reports[:40] {
		if _, err := tr.Offer(rep); err != nil {
			t.Fatal(err)
		}
		foreign := rep
		foreign.EPC = other
		foreign.PhaseRad = 0.123
		if ps, err := tr.Offer(foreign); err != nil || len(ps) != 0 {
			t.Fatalf("foreign tag affected tracker: %v %v", ps, err)
		}
	}
}

func TestMergeStreams(t *testing.T) {
	a := []rfid.Report{{Time: 0, AntennaID: 1}, {Time: 50 * time.Millisecond, AntennaID: 1}}
	b := []rfid.Report{{Time: 25 * time.Millisecond, AntennaID: 5}}
	m := MergeStreams(a, b)
	if len(m) != 3 {
		t.Fatal("merge length")
	}
	for i := 1; i < len(m); i++ {
		if m[i].Time < m[i-1].Time {
			t.Fatal("merge out of order")
		}
	}
	if MergeStreams() != nil {
		t.Fatal("empty merge should be nil")
	}
	if MergeStreams(nil, []rfid.Report{}) != nil {
		t.Fatal("all-empty merge should be nil")
	}
}

// mergeStreamsReference is the behaviour MergeStreams replaced:
// concatenate in stream order, then stable-sort by time — the oracle for
// the property test below.
func mergeStreamsReference(streams ...[]rfid.Report) []rfid.Report {
	var out []rfid.Report
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// TestMergeStreamsMatchesReference: over random already-ordered per-reader
// slices (with deliberate duplicate timestamps to probe tie-breaking),
// the k-way heap merge must reproduce the old append-and-stable-sort
// byte for byte, including the order of equal-time reports.
func TestMergeStreamsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		streams := make([][]rfid.Report, rng.Intn(5))
		for si := range streams {
			n := rng.Intn(20)
			tm := time.Duration(0)
			for j := 0; j < n; j++ {
				// Small increments with frequent zero steps produce many
				// within- and cross-stream timestamp collisions.
				tm += time.Duration(rng.Intn(3)) * time.Millisecond
				streams[si] = append(streams[si], rfid.Report{
					Time:      tm,
					ReaderID:  si,
					AntennaID: j,
				})
			}
		}
		got := MergeStreams(streams...)
		want := mergeStreamsReference(streams...)
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d reports, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: report %d = %+v, reference %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestFlushIdempotent is the drain-race regression gate: with no new
// reports between them, repeated Flush calls must close the current
// sweep exactly once. The old behaviour advanced the sweep clock and
// re-snapshotted the held per-antenna phases on every call, so a pump
// idle drain racing an explicit Flush (or session close) emitted
// duplicate positions from stale data — and a WAL replay of such a
// session diverged from the live trace.
func TestFlushIdempotent(t *testing.T) {
	sc, err := sim.New(sim.Config{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := sc.RunWord("hi", geom.Vec2{X: 0.9, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(t, sc)
	total := 0
	for _, rep := range reportsFromSamples(wr, sc.Tag.EPC) {
		ps, err := tr.Offer(rep)
		if err != nil {
			t.Fatal(err)
		}
		total += len(ps)
	}
	ps, err := tr.Flush()
	if err != nil {
		t.Fatal(err)
	}
	total += len(ps)
	if total == 0 {
		t.Fatal("stream produced no positions — test premise broken")
	}
	sweepAfterFirst := tr.nextSweep
	for i := 0; i < 3; i++ {
		ps, err := tr.Flush()
		if err != nil {
			t.Fatal(err)
		}
		if len(ps) != 0 {
			t.Fatalf("flush %d re-emitted %d positions (first: %+v)", i+2, len(ps), ps[0])
		}
	}
	if tr.nextSweep != sweepAfterFirst {
		t.Fatalf("idle flushes advanced the sweep clock %v -> %v", sweepAfterFirst, tr.nextSweep)
	}
	// The tracker keeps working after idle flushes: a report in the next
	// sweep window is accepted and the pipeline resumes.
	next := rfid.Report{
		Time: sweepAfterFirst + 30*time.Millisecond, ReaderID: 0, AntennaID: 1,
		EPC: sc.Tag.EPC, PhaseRad: 1.0,
	}
	if _, err := tr.Offer(next); err != nil {
		t.Fatalf("offer after idle flushes: %v", err)
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatalf("flush after resume: %v", err)
	}
}
