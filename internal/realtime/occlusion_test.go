package realtime

import (
	"testing"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/rfid"
	"rfidraw/internal/sim"
)

// TestOcclusionReacquireReseeds simulates a mid-stream occlusion: the tag
// vanishes (no reports at all for a second — a hand passing behind a
// body) and reappears writing somewhere else. The tracker must detect the
// collapsed vote record, drop its hypothesis set, re-run acquisition and
// re-seed a fresh multi-stream at the new location.
func TestOcclusionReacquireReseeds(t *testing.T) {
	sc, err := sim.New(sim.Config{Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	wr1, err := sc.RunWord("on", geom.Vec2{X: 0.5, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	wr2, err := sc.RunWord("go", geom.Vec2{X: 1.7, Z: 1.4}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(t, sc)
	reports := reportsFromSamples(wr1, sc.Tag.EPC)
	// One full second of silence, then the second word far away.
	gap := time.Second
	offset := wr1.SamplesRF[len(wr1.SamplesRF)-1].T + gap
	for _, rep := range reportsFromSamples(wr2, sc.Tag.EPC) {
		rep.Time += offset
		reports = append(reports, rep)
	}
	var before, after int
	for _, rep := range reports {
		ps, err := tr.Offer(rep)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ps {
			if p.Time < offset-gap/2 {
				before++
			}
			if p.Time > offset+500*time.Millisecond {
				after++
				// Recovered positions must be near the second word, not
				// coasting at the first.
				if p.Pos.X < 1.2 {
					t.Fatalf("post-occlusion position %v still near first word", p.Pos)
				}
				if p.Hypotheses <= 0 {
					t.Fatalf("re-seeded stream lost its hypothesis count: %+v", p)
				}
			}
		}
	}
	if before == 0 {
		t.Fatal("no positions before the occlusion")
	}
	if tr.Reacquisitions() == 0 {
		t.Fatal("tracker never detected the occlusion")
	}
	if after == 0 {
		t.Fatal("no positions after reacquisition")
	}
	if !tr.Started() {
		t.Fatal("tracker did not re-seed after reacquisition")
	}
}

// TestMaxAcquireBufferBoundsMemory: a tag whose acquisition can never
// succeed (only one antenna ever heard) fails terminally once the
// configured buffer bound is reached instead of buffering forever.
func TestMaxAcquireBufferBoundsMemory(t *testing.T) {
	sc, err := sim.New(sim.Config{Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	base := newTracker(t, sc).cfg
	tr, err := NewTracker(Config{
		System:           base.System,
		SweepInterval:    base.SweepInterval,
		MaxAcquireBuffer: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 100 && lastErr == nil; i++ {
		_, lastErr = tr.Offer(rfid.Report{
			Time:      time.Duration(i) * base.SweepInterval,
			AntennaID: 1,
			PhaseRad:  0.5,
		})
	}
	if lastErr == nil {
		t.Fatal("unacquirable tag never hit the buffer bound")
	}
	if tr.Buffered() > 13 {
		t.Fatalf("buffered %d samples past the bound of 12", tr.Buffered())
	}
}

// TestMaxAcquireBufferValidation: the bound must leave room for the
// warmup itself.
func TestMaxAcquireBufferValidation(t *testing.T) {
	sc, err := sim.New(sim.Config{Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	base := newTracker(t, sc).cfg
	if _, err := NewTracker(Config{
		System:           base.System,
		SweepInterval:    base.SweepInterval,
		WarmupSamples:    16,
		MaxAcquireBuffer: 8,
	}); err == nil {
		t.Fatal("MaxAcquireBuffer < WarmupSamples should be rejected")
	}
}
