// Package realtime turns live per-reply phase report streams into a live
// trajectory: the online counterpart of the batch pipeline. It merges the
// two readers' reports into per-sweep samples, runs multi-resolution
// positioning once enough antennas have been heard, and then drives the
// same incremental multi-hypothesis stream (tracing.MultiStream) the
// batch path replays — emitting the current leader's position every
// sweep, the mode a virtual touch screen runs in (§9's cursor
// discussion). Because batch and live share one stepping core, replaying
// a sample stream through a Tracker reproduces System.Trace byte for
// byte; only the schedulers differ.
//
// # Concurrency
//
// A Tracker is the single-tag stage of the live pipeline and is NOT safe
// for concurrent use: it assumes one goroutine feeds it time-ordered
// reports for one tag. Multi-tag tracking stacks on top of it — the
// sharded engine (internal/engine) demultiplexes a mixed-EPC wire stream
// and runs one Tracker per tag on the tag's home shard, so each Tracker
// still sees a single goroutine. Use the engine for anything beyond one
// tag; use a bare Tracker when embedding a single-tag pipeline.
package realtime

import (
	"errors"
	"fmt"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/geom"
	"rfidraw/internal/rfid"
	"rfidraw/internal/tracing"
	"rfidraw/internal/vote"
)

// Position is one live output sample: the leading hypothesis's new
// estimate plus the hypothesis-set signals around it.
type Position struct {
	Time time.Duration
	Pos  geom.Vec2
	// Confidence is the leader's running mean vote (≤ 0, nearer 0 is
	// better); it collapses when tracking is lost (Fig. 10f).
	Confidence float64
	// Switched marks a leadership change at this sample: the over-time
	// disambiguation of §5.2 re-electing a different candidate. The
	// cursor may jump here.
	Switched bool
	// Hypotheses is the number of candidate hypotheses still active.
	Hypotheses int
}

// Config tunes the live tracker.
type Config struct {
	// System is the configured RF-IDraw engine. Required.
	System *core.System
	// SweepInterval is the readers' sweep period (from their Hello).
	SweepInterval time.Duration
	// MaxPhaseAge drops phases older than this when forming samples.
	// Default 2.2 sweep intervals.
	MaxPhaseAge time.Duration
	// WarmupSamples is how many merged samples are buffered before
	// attempting initial positioning. Default 4.
	WarmupSamples int
	// MaxAcquireBuffer bounds the warmup sample buffer: a tag whose
	// acquisition keeps failing is declared dead once this many samples
	// have been buffered, bounding per-tag memory on serving
	// deployments. Default 400 (~10 s at 25 ms sweeps). Must be at
	// least WarmupSamples when both are set.
	MaxAcquireBuffer int
	// ReacquireVote triggers tracking-loss recovery: when the recent
	// mean vote falls below this threshold the tracker declares the
	// lobe locks lost (e.g. the user left and re-entered the field),
	// drops the hypothesis set and re-runs initial acquisition —
	// re-seeding a fresh MultiStream from the new fix. Votes are ≤ 0;
	// more negative means worse. Default −0.5; set to -Inf to disable.
	ReacquireVote float64
	// ReacquireWindow is how many recent votes the loss detector
	// averages. Default 8.
	ReacquireWindow int
	// RecordTrace keeps every hypothesis's full trajectory in the live
	// stream so TraceResult can materialize the batch-equivalent
	// outcome. Memory then grows with stream length, so it is meant for
	// replays and the batch/streaming equivalence tests, not serving.
	RecordTrace bool
	// Scratch optionally shares a reusable refinement scratch (see
	// vote.Scratch) with the tracker; the engine passes each shard's so
	// all of a shard's tags reuse one. Nil allocates a private scratch.
	// Must only ever be used from the goroutine feeding this tracker.
	Scratch *vote.Scratch
}

// DefaultWarmupSamples is the warmup buffer length used when
// Config.WarmupSamples is unset; configuration layers that bound the
// acquisition buffer validate against it.
const DefaultWarmupSamples = 4

// Tracker consumes rfid.Reports (from any number of readers) in time order
// and produces live positions.
type Tracker struct {
	cfg Config

	epc     rfid.EPC
	haveEPC bool

	latest    map[int]timedPhase
	nextSweep time.Duration
	samples   []tracing.Sample
	// dirty records whether any report or sample has arrived since the
	// last Flush; it makes Flush idempotent (see Flush).
	dirty bool

	started bool
	ms      *tracing.MultiStream
	// cands and cstats snapshot the acquisition that seeded the current
	// stream, for TraceResult.
	cstats vote.SearchStats

	recent         []float64 // ring of recent leader votes for loss detection
	reacquisitions int
	// evals, switches and retirements accumulate counts from retired
	// streams; the live stream's counts are added on read.
	evals       int
	switches    int
	retirements int
}

type timedPhase struct {
	phase float64
	t     time.Duration
}

// NewTracker builds a live tracker.
func NewTracker(cfg Config) (*Tracker, error) {
	if cfg.System == nil {
		return nil, errors.New("realtime: Config.System is required")
	}
	if cfg.SweepInterval <= 0 {
		return nil, fmt.Errorf("realtime: sweep interval %v must be positive", cfg.SweepInterval)
	}
	if cfg.MaxPhaseAge <= 0 {
		cfg.MaxPhaseAge = cfg.SweepInterval * 11 / 5
	}
	if cfg.WarmupSamples <= 0 {
		cfg.WarmupSamples = DefaultWarmupSamples
	}
	if cfg.MaxAcquireBuffer <= 0 {
		cfg.MaxAcquireBuffer = 400
	}
	if cfg.MaxAcquireBuffer < cfg.WarmupSamples {
		return nil, fmt.Errorf("realtime: MaxAcquireBuffer %d must be ≥ WarmupSamples %d",
			cfg.MaxAcquireBuffer, cfg.WarmupSamples)
	}
	if cfg.ReacquireVote == 0 {
		cfg.ReacquireVote = -0.5
	}
	if cfg.ReacquireWindow <= 0 {
		cfg.ReacquireWindow = 8
	}
	if cfg.Scratch == nil {
		cfg.Scratch = vote.NewScratch()
	}
	return &Tracker{cfg: cfg, latest: map[int]timedPhase{}}, nil
}

// Offer ingests one report and returns any newly estimated positions.
// Reports must arrive in non-decreasing time order across all readers
// (interleaving between readers is fine).
func (t *Tracker) Offer(rep rfid.Report) ([]Position, error) {
	if !t.haveEPC {
		t.epc = rep.EPC
		t.haveEPC = true
	} else if rep.EPC != t.epc {
		// A different tag: ignore (multi-tag callers run one Tracker
		// per EPC).
		return nil, nil
	}
	t.dirty = true
	var out []Position
	// Close any sweeps that ended before this report.
	for rep.Time >= t.nextSweep+t.cfg.SweepInterval {
		pos, err := t.closeSweep(false)
		if err != nil {
			return out, err
		}
		out = append(out, pos...)
	}
	t.latest[rep.AntennaID] = timedPhase{phase: rep.PhaseRad, t: rep.Time}
	return out, nil
}

// Flush closes the current sweep (e.g. at end of stream) and returns any
// final positions. A tracker still warming up treats the stream as
// complete: it attempts a final acquisition over whatever prefix it has
// buffered, so a short stream's positions are emitted rather than
// silently discarded with the buffer.
//
// Flush is idempotent: a Flush with no report or sample ingested since
// the previous one is a no-op. Without the guard a second flush would
// advance the sweep clock and re-snapshot the held per-antenna phases as
// a fresh sample — emitting a duplicate position from stale data — which
// is exactly what racing drain paths (a serving pump's idle drain vs. an
// explicit client Flush vs. session close) used to do.
func (t *Tracker) Flush() ([]Position, error) {
	if !t.dirty {
		return nil, nil
	}
	t.dirty = false
	return t.closeSweep(true)
}

// OfferSample feeds one already-merged sweep sample, bypassing report
// merging: the entry point for sample-level replays — and the
// batch/streaming equivalence tests, which push the exact samples a
// batch Trace consumes. Mixing OfferSample with report-level Offer on
// one tracker is unsupported. The sample's phase map is not retained.
func (t *Tracker) OfferSample(s tracing.Sample) ([]Position, error) {
	t.dirty = true
	return t.offerSample(s, false)
}

// closeSweep snapshots the current per-antenna phases as one sample and
// advances the pipeline. final marks an end-of-stream (or pause) flush.
func (t *Tracker) closeSweep(final bool) ([]Position, error) {
	now := t.nextSweep
	t.nextSweep += t.cfg.SweepInterval
	// The observation map is the scratch's reusable buffer: sweep
	// merging must not allocate on the steady-state path. offerSample
	// clones it when buffering for warmup.
	obs := t.cfg.Scratch.ObsBuf()
	for id, tp := range t.latest {
		if now+t.cfg.SweepInterval-tp.t <= t.cfg.MaxPhaseAge {
			obs[id] = tp.phase
		}
	}
	if len(obs) == 0 {
		if final && !t.started && len(t.samples) > 0 {
			// End of stream mid-warmup with nothing new this sweep:
			// still try to acquire over the buffered prefix.
			return t.tryAcquire(true)
		}
		return nil, nil
	}
	return t.offerSample(tracing.Sample{T: now, Phase: obs}, final)
}

// offerSample advances the pipeline with one merged sample.
func (t *Tracker) offerSample(sample tracing.Sample, final bool) ([]Position, error) {
	if t.started {
		return t.push(sample)
	}
	t.samples = append(t.samples, cloneSample(sample))
	if len(t.samples) < t.cfg.WarmupSamples && !final {
		return nil, nil
	}
	return t.tryAcquire(final)
}

// tryAcquire runs initial acquisition over the warmup buffer and, on
// success, seeds the multi-hypothesis stream and replays the buffered
// prefix through it so its state catches up with "now".
func (t *Tracker) tryAcquire(final bool) ([]Position, error) {
	cands, cstats, start, err := t.cfg.System.Acquire(t.cfg.Scratch, t.samples, final)
	if err != nil {
		// Not enough signal yet; keep buffering (bounded).
		if len(t.samples) > t.cfg.MaxAcquireBuffer {
			return nil, fmt.Errorf("realtime: cannot acquire initial position: %w", err)
		}
		return nil, nil
	}
	ms, err := t.cfg.System.Tracer().NewMultiStreamWith(
		t.cfg.Scratch, cands, t.samples[start],
		tracing.MultiConfig{Record: t.cfg.RecordTrace})
	if err != nil {
		return nil, fmt.Errorf("realtime: %w", err)
	}
	t.ms = ms
	t.cstats = cstats
	t.started = true
	var out []Position
	for _, s := range t.samples[start:] {
		ps, err := t.push(s)
		if err != nil {
			return out, err
		}
		out = append(out, ps...)
		if !t.started {
			// A long replayed prefix can itself trip the loss detector
			// (push dropped the stream and reset the buffer); stop
			// replaying the stale tail.
			return out, nil
		}
	}
	t.samples = nil
	return out, nil
}

// push extends the live stream by one sample, emitting the leader's new
// position and running the tracking-loss detector over its votes.
func (t *Tracker) push(sample tracing.Sample) ([]Position, error) {
	st, ok := t.ms.Push(sample)
	if !ok {
		return nil, nil
	}
	// Tracking-loss detection: a collapsed recent leader vote means even
	// the best hypothesis's locked lobes no longer intersect coherently
	// (the over-constrained-system signal of §5.2). Drop the hypothesis
	// set and re-seed from a fresh acquisition.
	t.recent = append(t.recent, st.Vote)
	if len(t.recent) > t.cfg.ReacquireWindow {
		t.recent = t.recent[1:]
	}
	if len(t.recent) == t.cfg.ReacquireWindow && mean(t.recent) < t.cfg.ReacquireVote {
		t.retireStream()
		t.recent = nil
		t.samples = nil
		t.reacquisitions++
		return nil, nil
	}
	return []Position{{
		Time:       st.Point.T,
		Pos:        st.Point.Pos,
		Confidence: st.MeanVote,
		Switched:   st.Switched,
		Hypotheses: st.Active,
	}}, nil
}

// retireStream folds the live stream's counters into the cumulative
// totals and drops it.
func (t *Tracker) retireStream() {
	t.evals += t.ms.SearchEvals()
	t.switches += t.ms.Switches()
	t.retirements += t.ms.Retirements()
	t.ms = nil
	t.started = false
}

// cloneSample deep-copies a sample for warmup buffering: the phase map a
// sweep hands in lives in a reusable scratch buffer.
func cloneSample(s tracing.Sample) tracing.Sample {
	phase := make(vote.Observations, len(s.Phase))
	for id, ph := range s.Phase {
		phase[id] = ph
	}
	return tracing.Sample{T: s.T, Phase: phase}
}

// Reacquisitions reports how many times tracking was lost and restarted.
func (t *Tracker) Reacquisitions() int { return t.reacquisitions }

// SearchEvals reports the cumulative vote-surface evaluation count this
// tracker has spent across acquisitions and live tracing — the streaming
// counterpart of Trace's per-result SearchEvals, used by serving-layer
// metrics.
func (t *Tracker) SearchEvals() int {
	n := t.evals
	if t.ms != nil {
		n += t.ms.SearchEvals()
	}
	return n
}

// LeaderSwitches reports how many times the leading hypothesis changed,
// across all streams this tracker has run.
func (t *Tracker) LeaderSwitches() int {
	n := t.switches
	if t.ms != nil {
		n += t.ms.Switches()
	}
	return n
}

// Retirements reports how many hypotheses have been retired for
// collapsed vote records, across all streams this tracker has run.
func (t *Tracker) Retirements() int {
	n := t.retirements
	if t.ms != nil {
		n += t.ms.Retirements()
	}
	return n
}

// ActiveHypotheses reports how many candidate hypotheses the live stream
// is still advancing (0 before acquisition and after tracking loss).
func (t *Tracker) ActiveHypotheses() int {
	if t.ms == nil {
		return 0
	}
	return t.ms.Active()
}

// Buffered reports how many warmup samples are currently held for
// acquisition — the per-tag memory MaxAcquireBuffer bounds.
func (t *Tracker) Buffered() int { return len(t.samples) }

// TraceResult materializes the batch-equivalent outcome of the current
// stream: what System.Trace would have returned for the samples replayed
// so far. It requires Config.RecordTrace and a started tracker.
func (t *Tracker) TraceResult() (*core.TraceResult, error) {
	if !t.started {
		return nil, errors.New("realtime: tracker has not acquired")
	}
	return core.ResultFromMulti(t.ms, t.cstats)
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// MeanVote reports the live leader's mean vote so far; callers can use it
// as a confidence signal (it collapses when tracking is lost).
func (t *Tracker) MeanVote() float64 {
	if t.ms == nil {
		return 0
	}
	return t.ms.LeaderMeanVote()
}

// Started reports whether initial acquisition has completed.
func (t *Tracker) Started() bool { return t.started }

// MergeStreams time-merges multiple report slices (one per reader) into a
// single non-decreasing stream, as a network fan-in would deliver them.
// Each input slice must itself be in non-decreasing time order (readers
// emit time-ordered reports); the merge is a k-way heap merge, linear in
// the total report count up to a log(readers) factor. Ties keep input
// order: earlier slices first, then position within the slice — exactly
// the order the old append-everything-and-stable-sort produced.
func MergeStreams(streams ...[]rfid.Report) []rfid.Report {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	if total == 0 {
		return nil
	}
	out := make([]rfid.Report, 0, total)
	// heads[i] is the next unconsumed index of streams[i]; h is a binary
	// min-heap of stream indices ordered by (head time, stream index).
	heads := make([]int, len(streams))
	h := make([]int, 0, len(streams))
	less := func(a, b int) bool {
		ta, tb := streams[a][heads[a]].Time, streams[b][heads[b]].Time
		if ta != tb {
			return ta < tb
		}
		return a < b
	}
	up := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(h[i], h[parent]) {
				break
			}
			h[i], h[parent] = h[parent], h[i]
			i = parent
		}
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(h) && less(h[l], h[min]) {
				min = l
			}
			if r < len(h) && less(h[r], h[min]) {
				min = r
			}
			if min == i {
				return
			}
			h[i], h[min] = h[min], h[i]
			i = min
		}
	}
	for i, s := range streams {
		if len(s) > 0 {
			h = append(h, i)
			up(len(h) - 1)
		}
	}
	for len(h) > 0 {
		i := h[0]
		out = append(out, streams[i][heads[i]])
		heads[i]++
		if heads[i] == len(streams[i]) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		down(0)
	}
	return out
}
