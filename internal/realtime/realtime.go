// Package realtime turns live per-reply phase report streams into a live
// trajectory: the online counterpart of the batch pipeline. It merges the
// two readers' reports into per-sweep samples, runs multi-resolution
// positioning once enough antennas have been heard, and then extends the
// traced trajectory sample by sample, emitting each new position as it is
// estimated — the mode a virtual touch screen runs in (§9's cursor
// discussion).
//
// # Concurrency
//
// A Tracker is the single-tag stage of the live pipeline and is NOT safe
// for concurrent use: it assumes one goroutine feeds it time-ordered
// reports for one tag. Multi-tag tracking stacks on top of it — the
// sharded engine (internal/engine) demultiplexes a mixed-EPC wire stream
// and runs one Tracker per tag on the tag's home shard, so each Tracker
// still sees a single goroutine. Use the engine for anything beyond one
// tag; use a bare Tracker when embedding a single-tag pipeline.
package realtime

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/geom"
	"rfidraw/internal/rfid"
	"rfidraw/internal/tracing"
	"rfidraw/internal/vote"
)

// Position is one live output sample.
type Position struct {
	Time time.Duration
	Pos  geom.Vec2
}

// Config tunes the live tracker.
type Config struct {
	// System is the configured RF-IDraw engine. Required.
	System *core.System
	// SweepInterval is the readers' sweep period (from their Hello).
	SweepInterval time.Duration
	// MaxPhaseAge drops phases older than this when forming samples.
	// Default 2.2 sweep intervals.
	MaxPhaseAge time.Duration
	// WarmupSamples is how many merged samples are buffered before
	// attempting initial positioning. Default 4.
	WarmupSamples int
	// ReacquireVote triggers tracking-loss recovery: when the recent
	// mean vote falls below this threshold the tracker declares the
	// lobe locks lost (e.g. the user left and re-entered the field) and
	// re-runs initial acquisition. Votes are ≤ 0; more negative means
	// worse. Default −0.5; set to -Inf to disable.
	ReacquireVote float64
	// ReacquireWindow is how many recent votes the loss detector
	// averages. Default 8.
	ReacquireWindow int
	// Scratch optionally shares a reusable refinement scratch (see
	// vote.Scratch) with the tracker; the engine passes each shard's so
	// all of a shard's tags reuse one. Nil allocates a private scratch.
	// Must only ever be used from the goroutine feeding this tracker.
	Scratch *vote.Scratch
}

// Tracker consumes rfid.Reports (from any number of readers) in time order
// and produces live positions.
type Tracker struct {
	cfg Config

	epc     rfid.EPC
	haveEPC bool

	latest    map[int]timedPhase
	nextSweep time.Duration
	samples   []tracing.Sample

	started bool
	stream  *tracing.Stream

	recent         []float64 // ring of recent votes for loss detection
	reacquisitions int
	// evals accumulates vote-surface evaluations from completed
	// acquisitions and retired streams; the live stream's count is added
	// on read (see SearchEvals).
	evals int
}

type timedPhase struct {
	phase float64
	t     time.Duration
}

// NewTracker builds a live tracker.
func NewTracker(cfg Config) (*Tracker, error) {
	if cfg.System == nil {
		return nil, errors.New("realtime: Config.System is required")
	}
	if cfg.SweepInterval <= 0 {
		return nil, fmt.Errorf("realtime: sweep interval %v must be positive", cfg.SweepInterval)
	}
	if cfg.MaxPhaseAge <= 0 {
		cfg.MaxPhaseAge = cfg.SweepInterval * 11 / 5
	}
	if cfg.WarmupSamples <= 0 {
		cfg.WarmupSamples = 4
	}
	if cfg.ReacquireVote == 0 {
		cfg.ReacquireVote = -0.5
	}
	if cfg.ReacquireWindow <= 0 {
		cfg.ReacquireWindow = 8
	}
	if cfg.Scratch == nil {
		cfg.Scratch = vote.NewScratch()
	}
	return &Tracker{cfg: cfg, latest: map[int]timedPhase{}}, nil
}

// Offer ingests one report and returns any newly estimated positions.
// Reports must arrive in non-decreasing time order across all readers
// (interleaving between readers is fine).
func (t *Tracker) Offer(rep rfid.Report) ([]Position, error) {
	if !t.haveEPC {
		t.epc = rep.EPC
		t.haveEPC = true
	} else if rep.EPC != t.epc {
		// A different tag: ignore (multi-tag callers run one Tracker
		// per EPC).
		return nil, nil
	}
	var out []Position
	// Close any sweeps that ended before this report.
	for rep.Time >= t.nextSweep+t.cfg.SweepInterval {
		pos, err := t.closeSweep()
		if err != nil {
			return out, err
		}
		out = append(out, pos...)
	}
	t.latest[rep.AntennaID] = timedPhase{phase: rep.PhaseRad, t: rep.Time}
	return out, nil
}

// Flush closes the current sweep (e.g. at end of stream) and returns any
// final positions.
func (t *Tracker) Flush() ([]Position, error) {
	return t.closeSweep()
}

// closeSweep snapshots the current per-antenna phases as one sample and
// advances the pipeline.
func (t *Tracker) closeSweep() ([]Position, error) {
	now := t.nextSweep
	t.nextSweep += t.cfg.SweepInterval
	obs := vote.Observations{}
	for id, tp := range t.latest {
		if now+t.cfg.SweepInterval-tp.t <= t.cfg.MaxPhaseAge {
			obs[id] = tp.phase
		}
	}
	if len(obs) == 0 {
		return nil, nil
	}
	sample := tracing.Sample{T: now, Phase: obs}
	if !t.started {
		t.samples = append(t.samples, sample)
		if len(t.samples) < t.cfg.WarmupSamples {
			return nil, nil
		}
		// Acquire: localize candidates over the buffered prefix, pick
		// the best trace, then continue it incrementally.
		res, err := t.cfg.System.TraceWith(t.cfg.Scratch, t.samples)
		if res != nil {
			for _, tr := range res.All {
				t.evals += tr.SearchEvals
			}
		}
		if err != nil {
			// Not enough signal yet; keep buffering (bounded).
			if len(t.samples) > 400 {
				return nil, fmt.Errorf("realtime: cannot acquire initial position: %w", err)
			}
			return nil, nil
		}
		stream, err := t.cfg.System.Tracer().NewStreamWith(t.cfg.Scratch, res.InitialPosition(), t.samples[0])
		if err != nil {
			return nil, fmt.Errorf("realtime: %w", err)
		}
		// Replay the buffered prefix through the stream so its state
		// catches up with "now".
		var out []Position
		for _, s := range t.samples {
			if p, _, ok := stream.Push(s); ok {
				out = append(out, Position{Time: p.T, Pos: p.Pos})
			}
		}
		t.stream = stream
		t.started = true
		t.samples = nil
		return out, nil
	}
	p, v, ok := t.stream.Push(sample)
	if !ok {
		return nil, nil
	}
	// Tracking-loss detection: a collapsed recent vote means the locked
	// lobes no longer intersect coherently (the over-constrained-system
	// signal of §5.2). Drop the stream and rebuild from scratch.
	t.recent = append(t.recent, v)
	if len(t.recent) > t.cfg.ReacquireWindow {
		t.recent = t.recent[1:]
	}
	if len(t.recent) == t.cfg.ReacquireWindow && mean(t.recent) < t.cfg.ReacquireVote {
		t.evals += t.stream.SearchEvals()
		t.started = false
		t.stream = nil
		t.recent = nil
		t.samples = nil
		t.reacquisitions++
		return nil, nil
	}
	return []Position{{Time: p.T, Pos: p.Pos}}, nil
}

// Reacquisitions reports how many times tracking was lost and restarted.
func (t *Tracker) Reacquisitions() int { return t.reacquisitions }

// SearchEvals reports the cumulative vote-surface evaluation count this
// tracker has spent across acquisitions and live tracing — the streaming
// counterpart of Trace's per-result SearchEvals, used by serving-layer
// metrics.
func (t *Tracker) SearchEvals() int {
	n := t.evals
	if t.stream != nil {
		n += t.stream.SearchEvals()
	}
	return n
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// MeanVote reports the live trace's mean vote so far; callers can use it
// as a confidence signal (it collapses when tracking is lost).
func (t *Tracker) MeanVote() float64 {
	if t.stream == nil {
		return 0
	}
	return t.stream.MeanVote()
}

// Started reports whether initial acquisition has completed.
func (t *Tracker) Started() bool { return t.started }

// MergeStreams time-merges multiple report slices (one per reader) into a
// single non-decreasing stream, as a network fan-in would deliver them.
func MergeStreams(streams ...[]rfid.Report) []rfid.Report {
	var out []rfid.Report
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
