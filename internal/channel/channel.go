// Package channel models the wireless channel between reader antennas and a
// tag as a coherent sum of rays: the direct path plus specular reflections
// off scatterers, with optional wall penetration loss for non-line-of-sight
// (NLOS) deployments and Gaussian receiver phase noise.
//
// The paper's prototype measures, for every tag reply, the phase of the
// backscattered signal at one reader port. That phase is the argument of
// the round-trip complex channel. This package reproduces that quantity:
// the one-way channel h is a coherent ray sum, and backscatter links square
// it (reader→tag→reader over the reciprocal path), so the measured phase is
// arg(h²) plus tag/reader offsets and noise. Multipath therefore perturbs
// the phase exactly as in the paper's §8 discussion: mildly when the direct
// path dominates (LOS), strongly when it is attenuated (NLOS).
package channel

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
)

// Scatterer is a point reflector. A ray reader→scatterer→tag (and back)
// adds a delayed, attenuated component to the channel.
type Scatterer struct {
	// Pos is the scatterer position in room coordinates.
	Pos geom.Vec3
	// Reflectivity is the amplitude reflection coefficient in (0, 1].
	Reflectivity float64
}

// Environment describes the propagation environment of one deployment.
type Environment struct {
	// Carrier sets the wavelength all path phases are computed with.
	Carrier phys.Carrier
	// Link selects one-way or backscatter phase accumulation.
	Link phys.Link
	// Scatterers are the multipath sources in the room.
	Scatterers []Scatterer
	// DirectGain attenuates the direct path's amplitude; 1 for LOS, <1
	// when the direct path penetrates an obstruction (NLOS). Setting it
	// to 0 removes the direct path entirely.
	DirectGain float64
	// PhaseNoiseStdDev is the standard deviation, in radians, of the
	// additive Gaussian noise on every measured phase.
	PhaseNoiseStdDev float64
}

// Validate reports configuration errors.
func (e *Environment) Validate() error {
	if e.Carrier.WavelengthM <= 0 {
		return fmt.Errorf("channel: carrier wavelength %v must be positive", e.Carrier.WavelengthM)
	}
	if e.Link != phys.OneWay && e.Link != phys.Backscatter {
		return fmt.Errorf("channel: unknown link type %d", e.Link)
	}
	if e.DirectGain < 0 {
		return fmt.Errorf("channel: direct gain %v must be non-negative", e.DirectGain)
	}
	if e.PhaseNoiseStdDev < 0 {
		return fmt.Errorf("channel: phase noise stddev %v must be non-negative", e.PhaseNoiseStdDev)
	}
	for i, s := range e.Scatterers {
		if s.Reflectivity <= 0 || s.Reflectivity > 1 {
			return fmt.Errorf("channel: scatterer %d reflectivity %v out of (0, 1]", i, s.Reflectivity)
		}
	}
	return nil
}

// LOS returns a line-of-sight environment at the default carrier with the
// given phase noise and scatterers.
func LOS(phaseNoise float64, scatterers ...Scatterer) *Environment {
	return &Environment{
		Carrier:          phys.DefaultCarrier(),
		Link:             phys.Backscatter,
		Scatterers:       scatterers,
		DirectGain:       1,
		PhaseNoiseStdDev: phaseNoise,
	}
}

// NLOS returns a non-line-of-sight environment: the direct path is
// attenuated by directGain (amplitude), standing in for the two-layer wood
// cubicle separators of the paper's office-lounge deployment (§8.1).
func NLOS(phaseNoise, directGain float64, scatterers ...Scatterer) *Environment {
	e := LOS(phaseNoise, scatterers...)
	e.DirectGain = directGain
	return e
}

// OneWayChannel returns the complex one-way channel between an antenna and
// the tag: the coherent sum of the direct ray and every scatterer ray, with
// 1/d amplitude spreading per ray.
func (e *Environment) OneWayChannel(antenna, tag geom.Vec3) complex128 {
	lambda := e.Carrier.WavelengthM
	h := complex(0, 0)
	d0 := antenna.Dist(tag)
	if d0 > 0 && e.DirectGain > 0 {
		amp := e.DirectGain / d0
		h += cmplx.Rect(amp, -phys.TwoPi*d0/lambda)
	}
	for _, s := range e.Scatterers {
		d := antenna.Dist(s.Pos) + s.Pos.Dist(tag)
		if d <= 0 {
			continue
		}
		amp := s.Reflectivity / d
		h += cmplx.Rect(amp, -phys.TwoPi*d/lambda)
	}
	return h
}

// Measurement is one phase observation at a single antenna.
type Measurement struct {
	// Phase is the measured wrapped phase in [0, 2π).
	Phase float64
	// Power is the received power (|h|² for the round trip), a stand-in
	// for RSSI used by the reply-loss model.
	Power float64
}

// Measure returns the phase a reader would report for a tag at tagPos heard
// on the given antenna. extraOffset carries tag- and reader-specific phase
// offsets (they cancel within a reader's antenna pairs, as on real
// hardware). rng supplies the phase noise; it may be nil for a noiseless
// measurement.
func (e *Environment) Measure(antenna, tagPos geom.Vec3, extraOffset float64, rng *rand.Rand) Measurement {
	h := e.OneWayChannel(antenna, tagPos)
	var phase float64
	var power float64
	switch e.Link {
	case phys.Backscatter:
		// Round trip over the reciprocal channel: h² in amplitude and
		// phase, so received power goes as |h|⁴ (1/d⁴ free space).
		rt := h * h
		phase = cmplx.Phase(rt)
		a := cmplx.Abs(rt)
		power = a * a
	default:
		phase = cmplx.Phase(h)
		power = cmplx.Abs(h) * cmplx.Abs(h)
	}
	if rng != nil && e.PhaseNoiseStdDev > 0 {
		phase += rng.NormFloat64() * e.PhaseNoiseStdDev
	}
	return Measurement{Phase: phys.Wrap(phase + extraOffset), Power: power}
}

// IdealPhase returns the noiseless, multipath-free phase for the direct
// path only — the quantity Eq. 1 of the paper describes. It is what Measure
// degrades into once multipath and noise are added.
func (e *Environment) IdealPhase(antenna, tagPos geom.Vec3) float64 {
	return phys.PathPhase(e.Carrier, e.Link, antenna.Dist(tagPos))
}

// DominantPathExcess quantifies how much the multipath perturbs the phase
// at a point: the absolute wrapped difference between the measured
// (noiseless) phase and the ideal direct-path phase, in radians. The
// evaluation uses it to sanity-check LOS vs NLOS setups.
func (e *Environment) DominantPathExcess(antenna, tagPos geom.Vec3) float64 {
	m := e.Measure(antenna, tagPos, 0, nil)
	return math.Abs(phys.WrapSigned(m.Phase - e.IdealPhase(antenna, tagPos)))
}

// RandomScatterers places n scatterers uniformly in the box, with
// reflectivity drawn uniformly from [minRefl, maxRefl]. The box is given by
// two opposite corners in room coordinates.
func RandomScatterers(rng *rand.Rand, n int, lo, hi geom.Vec3, minRefl, maxRefl float64) []Scatterer {
	out := make([]Scatterer, n)
	for i := range out {
		out[i] = Scatterer{
			Pos: geom.Vec3{
				X: lo.X + rng.Float64()*(hi.X-lo.X),
				Y: lo.Y + rng.Float64()*(hi.Y-lo.Y),
				Z: lo.Z + rng.Float64()*(hi.Z-lo.Z),
			},
			Reflectivity: minRefl + rng.Float64()*(maxRefl-minRefl),
		}
	}
	return out
}
