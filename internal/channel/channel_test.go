package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
)

func TestValidate(t *testing.T) {
	ok := LOS(0.1)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Environment{
		{Carrier: phys.Carrier{}, Link: phys.Backscatter, DirectGain: 1},
		{Carrier: phys.DefaultCarrier(), Link: phys.Link(3), DirectGain: 1},
		{Carrier: phys.DefaultCarrier(), Link: phys.OneWay, DirectGain: -1},
		{Carrier: phys.DefaultCarrier(), Link: phys.OneWay, DirectGain: 1, PhaseNoiseStdDev: -0.1},
		{Carrier: phys.DefaultCarrier(), Link: phys.OneWay, DirectGain: 1,
			Scatterers: []Scatterer{{Reflectivity: 0}}},
		{Carrier: phys.DefaultCarrier(), Link: phys.OneWay, DirectGain: 1,
			Scatterers: []Scatterer{{Reflectivity: 1.5}}},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestCleanChannelMatchesIdealPhase(t *testing.T) {
	// Without scatterers or noise, Measure must return the Eq. 1 phase.
	e := LOS(0)
	ant := geom.Vec3{X: 0, Y: 0, Z: 0}
	tag := geom.Vec3{X: 1, Y: 2, Z: 0.5}
	m := e.Measure(ant, tag, 0, nil)
	want := e.IdealPhase(ant, tag)
	if math.Abs(phys.WrapSigned(m.Phase-want)) > 1e-9 {
		t.Fatalf("phase = %v, want %v", m.Phase, want)
	}
}

func TestBackscatterDoublesPhaseSensitivity(t *testing.T) {
	// Moving the tag by λ/4 flips the backscatter phase by π but the
	// one-way phase only by π/2.
	bs := LOS(0)
	ow := LOS(0)
	ow.Link = phys.OneWay
	lambda := bs.Carrier.WavelengthM
	ant := geom.Vec3{}
	tag1 := geom.Vec3{Y: 2}
	tag2 := geom.Vec3{Y: 2 + lambda/4}
	dbs := phys.WrapSigned(bs.Measure(ant, tag2, 0, nil).Phase - bs.Measure(ant, tag1, 0, nil).Phase)
	dow := phys.WrapSigned(ow.Measure(ant, tag2, 0, nil).Phase - ow.Measure(ant, tag1, 0, nil).Phase)
	if math.Abs(math.Abs(dbs)-math.Pi) > 1e-6 {
		t.Fatalf("backscatter λ/4 shift = %v, want ±π", dbs)
	}
	if math.Abs(math.Abs(dow)-math.Pi/2) > 1e-6 {
		t.Fatalf("one-way λ/4 shift = %v, want ±π/2", dow)
	}
}

func TestExtraOffsetAddsCleanly(t *testing.T) {
	e := LOS(0)
	ant := geom.Vec3{}
	tag := geom.Vec3{Y: 3}
	base := e.Measure(ant, tag, 0, nil).Phase
	shifted := e.Measure(ant, tag, 1.234, nil).Phase
	if math.Abs(phys.WrapSigned(shifted-base-1.234)) > 1e-9 {
		t.Fatalf("offset not additive: base=%v shifted=%v", base, shifted)
	}
}

func TestOffsetCancelsInPairDifference(t *testing.T) {
	// A tag/reader offset common to both antennas must cancel in the
	// phase difference — the property that lets a reader compare its own
	// ports (§3 footnote 2).
	e := LOS(0)
	a1 := geom.Vec3{X: 0}
	a2 := geom.Vec3{X: 2.6}
	tag := geom.Vec3{X: 1, Y: 2, Z: 0.3}
	offset := 2.5
	d0 := phys.WrapSigned(e.Measure(a2, tag, 0, nil).Phase - e.Measure(a1, tag, 0, nil).Phase)
	d1 := phys.WrapSigned(e.Measure(a2, tag, offset, nil).Phase - e.Measure(a1, tag, offset, nil).Phase)
	if math.Abs(phys.WrapSigned(d1-d0)) > 1e-9 {
		t.Fatalf("common offset leaked into pair difference: %v vs %v", d0, d1)
	}
}

func TestScatterersPerturbPhase(t *testing.T) {
	ant := geom.Vec3{}
	tag := geom.Vec3{Y: 2.5}
	clean := LOS(0)
	dirty := LOS(0, Scatterer{Pos: geom.Vec3{X: 1.5, Y: 1.5, Z: 0.5}, Reflectivity: 0.6})
	excess := dirty.DominantPathExcess(ant, tag)
	if excess <= 1e-6 {
		t.Fatal("scatterer should perturb the phase")
	}
	if clean.DominantPathExcess(ant, tag) > 1e-9 {
		t.Fatal("clean channel should have no excess")
	}
	// With a dominant direct path the perturbation stays small-ish.
	if excess > math.Pi/2 {
		t.Fatalf("LOS excess %v too large for a weak scatterer", excess)
	}
}

func TestNLOSAttenuationRaisesMultipathImpact(t *testing.T) {
	ant := geom.Vec3{}
	tag := geom.Vec3{Y: 3}
	sc := Scatterer{Pos: geom.Vec3{X: 2, Y: 2, Z: 1}, Reflectivity: 0.5}
	los := LOS(0, sc)
	nlos := NLOS(0, 0.25, sc)
	if nlos.DominantPathExcess(ant, tag) <= los.DominantPathExcess(ant, tag) {
		t.Fatal("NLOS attenuation should increase multipath phase excess")
	}
}

func TestPowerFallsWithDistance(t *testing.T) {
	e := LOS(0)
	ant := geom.Vec3{}
	p2 := e.Measure(ant, geom.Vec3{Y: 2}, 0, nil).Power
	p5 := e.Measure(ant, geom.Vec3{Y: 5}, 0, nil).Power
	if p5 >= p2 {
		t.Fatalf("power at 5 m (%v) should be below power at 2 m (%v)", p5, p2)
	}
	// Backscatter power goes as 1/d⁴ → ratio (5/2)⁴ ≈ 39.
	ratio := p2 / p5
	if ratio < 30 || ratio > 50 {
		t.Fatalf("backscatter power ratio = %v, want ≈39", ratio)
	}
}

func TestPhaseNoiseApplied(t *testing.T) {
	e := LOS(0.2)
	rng := rand.New(rand.NewSource(1))
	ant := geom.Vec3{}
	tag := geom.Vec3{Y: 2}
	want := e.Measure(ant, tag, 0, nil).Phase
	var devs []float64
	for i := 0; i < 500; i++ {
		m := e.Measure(ant, tag, 0, rng)
		devs = append(devs, phys.WrapSigned(m.Phase-want))
	}
	var mean, ss float64
	for _, d := range devs {
		mean += d
	}
	mean /= float64(len(devs))
	for _, d := range devs {
		ss += (d - mean) * (d - mean)
	}
	sd := math.Sqrt(ss / float64(len(devs)))
	if sd < 0.15 || sd > 0.25 {
		t.Fatalf("observed phase noise stddev %v, want ≈0.2", sd)
	}
}

func TestZeroDistanceDirectPathSkipped(t *testing.T) {
	e := LOS(0)
	p := geom.Vec3{X: 1, Y: 1, Z: 1}
	// Tag exactly at the antenna: the direct term is skipped and the
	// channel is zero without scatterers; Measure must not panic or NaN.
	m := e.Measure(p, p, 0, nil)
	if math.IsNaN(m.Phase) || math.IsNaN(m.Power) {
		t.Fatalf("degenerate measurement produced NaN: %+v", m)
	}
}

func TestRandomScatterersInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lo := geom.Vec3{X: -1, Y: 0, Z: 0}
	hi := geom.Vec3{X: 4, Y: 6, Z: 3}
	ss := RandomScatterers(rng, 25, lo, hi, 0.1, 0.4)
	if len(ss) != 25 {
		t.Fatal("count")
	}
	for i, s := range ss {
		if s.Pos.X < lo.X || s.Pos.X > hi.X || s.Pos.Y < lo.Y || s.Pos.Y > hi.Y || s.Pos.Z < lo.Z || s.Pos.Z > hi.Z {
			t.Fatalf("scatterer %d out of box: %v", i, s.Pos)
		}
		if s.Reflectivity < 0.1 || s.Reflectivity > 0.4 {
			t.Fatalf("scatterer %d reflectivity %v out of range", i, s.Reflectivity)
		}
	}
}

// Property: the measured phase is always in [0, 2π) and power non-negative.
func TestQuickMeasureRanges(t *testing.T) {
	e := LOS(0.3, Scatterer{Pos: geom.Vec3{X: 1, Y: 1, Z: 1}, Reflectivity: 0.4})
	rng := rand.New(rand.NewSource(99))
	f := func(x, y, z, off float64) bool {
		tag := geom.Vec3{X: math.Mod(x, 5), Y: 1 + math.Abs(math.Mod(y, 5)), Z: math.Mod(z, 3)}
		if math.IsNaN(tag.X) || math.IsNaN(tag.Y) || math.IsNaN(tag.Z) || math.IsNaN(off) {
			return true
		}
		m := e.Measure(geom.Vec3{}, tag, off, rng)
		return m.Phase >= 0 && m.Phase < phys.TwoPi && m.Power >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: OneWayChannel is reciprocal in antenna/tag exchange.
func TestQuickChannelReciprocity(t *testing.T) {
	e := LOS(0, Scatterer{Pos: geom.Vec3{X: 0.5, Y: 2, Z: 1}, Reflectivity: 0.3})
	f := func(ax, ay, tx, ty float64) bool {
		a := geom.Vec3{X: math.Mod(ax, 3), Y: math.Abs(math.Mod(ay, 3)), Z: 0.5}
		b := geom.Vec3{X: math.Mod(tx, 3), Y: 2 + math.Abs(math.Mod(ty, 3)), Z: 1}
		for _, v := range []float64{a.X, a.Y, b.X, b.Y} {
			if math.IsNaN(v) {
				return true
			}
		}
		h1 := e.OneWayChannel(a, b)
		h2 := e.OneWayChannel(b, a)
		return cmplx.Abs(h1-h2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
