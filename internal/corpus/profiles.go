package corpus

import (
	"fmt"
	"time"

	"rfidraw/internal/faultgen"
)

// Profile is a named adversarial scenario: a fault plan plus the
// propagation and geometry knobs that shape the run. Profiles are the
// unit the whole adversarial surface shares — cmd/loadgen's -profile
// flag, the soak script's adversarial phase, and the scenario equivalence
// gates all consume the same registry, so "the drift scenario" means the
// same injected faults everywhere.
type Profile struct {
	Name        string
	Description string
	// NLOS selects non-line-of-sight propagation for the simulated
	// environment (occluded direct path, stronger multipath).
	NLOS bool
	// Geometry names a deploy.GeometrySpec; "" means the default Fig. 6d
	// placement.
	Geometry string
	// Seed fixes both the simulator's random stream and the fault plan,
	// making every profile run reproducible byte-for-byte.
	Seed int64
	// Faults is the wire-level fault plan applied to reader reports.
	Faults []faultgen.ReaderFault
}

// Plan returns the profile's seeded fault plan.
func (p Profile) Plan() faultgen.Plan {
	return faultgen.Plan{Seed: p.Seed, Faults: p.Faults}
}

// The named scenario corpus. Fault magnitudes are chosen against the
// serving layer's defaults: the session reorder window is 25ms, so the
// drift profile's 40ms skew forces reordered-past deliveries; the
// reader-loss interval is long enough to span several glyph gaps.
var profiles = []Profile{
	{
		Name:        "clean",
		Description: "control run: LOS, default geometry, no faults",
		Seed:        101,
	},
	{
		Name:        "nlos-heavy",
		Description: "occluded direct path with strong multipath, no wire faults",
		NLOS:        true,
		Seed:        102,
	},
	{
		Name:        "drift",
		Description: "reader 1 clock 40ms ahead (beyond the 25ms reorder window) and 200ppm fast",
		Seed:        103,
		Faults: []faultgen.ReaderFault{
			{Reader: 1, ClockOffset: 40 * time.Millisecond, DriftPPM: 200},
			{Reader: 1, ShuffleWindow: 10 * time.Millisecond},
		},
	},
	{
		Name:        "dup-flood",
		Description: "every reader re-reports ~30% of replies in bursts of 3",
		Seed:        104,
		Faults: []faultgen.ReaderFault{
			{Reader: faultgen.AllReaders, DuplicateProb: 0.3, DuplicateBurst: 3},
		},
	},
	{
		Name:        "reader-loss",
		Description: "reader 1 dies 400ms in, rejoins at 900ms, plus periodic dropouts",
		Seed:        105,
		Faults: []faultgen.ReaderFault{
			{Reader: 1, DeadFrom: 400 * time.Millisecond, DeadUntil: 900 * time.Millisecond},
			{Reader: 0, DropoutEvery: 250 * time.Millisecond, DropoutLen: 40 * time.Millisecond},
		},
	},
	{
		Name:        "multiroom",
		Description: "two-room geometry (four readers), light duplicate noise",
		Geometry:    "multiroom",
		Seed:        106,
		Faults: []faultgen.ReaderFault{
			{Reader: faultgen.AllReaders, DuplicateProb: 0.05},
		},
	},
}

// Profiles returns the scenario corpus in registry order ("clean" first).
func Profiles() []Profile {
	return append([]Profile(nil), profiles...)
}

// ProfileByName resolves a named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("corpus: unknown profile %q (have %v)", name, ProfileNames())
}

// ProfileNames lists the registered profile names in registry order.
func ProfileNames() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}
