// Package corpus provides the word workload for the evaluation. The paper
// samples 150 words from the 5000 most frequent words of a large English
// corpus (§6); since that exact list is external data we do not ship, this
// package embeds an original selection of common English words with a
// similar length distribution (2–9 letters), which is what matters to the
// experiments: word length drives recognition difficulty (Fig. 15).
package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// words is an original compilation of common English words, lowercase
// a–z only (the supported glyph set).
var words = []string{
	// 2 letters
	"an", "as", "at", "be", "by", "do", "go", "he", "if", "in",
	"is", "it", "me", "my", "no", "of", "on", "or", "so", "to",
	"up", "us", "we",
	// 3 letters
	"act", "add", "age", "air", "all", "and", "any", "arm", "art", "ask",
	"bad", "bag", "bar", "bed", "big", "bit", "box", "boy", "bus", "but",
	"buy", "can", "car", "cat", "cup", "cut", "day", "dog", "dry", "ear",
	"eat", "end", "eye", "far", "few", "fit", "fly", "for", "fun", "get",
	"god", "gun", "guy", "hand", "hat", "her", "him", "his", "hit", "hot",
	"how", "ice", "its", "job", "key", "kid", "law", "lay", "leg", "let",
	"lie", "lot", "low", "man", "map", "may", "mix", "mom", "new", "nor",
	"not", "now", "odd", "off", "oil", "old", "one", "our", "out", "own",
	"pay", "pen", "per", "pet", "put", "raw", "red", "rim", "row", "run",
	"sad", "say", "sea", "see", "set", "she", "sit", "six", "sky", "son",
	"sun", "tax", "tea", "ten", "the", "tie", "tip", "too", "top", "try",
	"two", "use", "van", "war", "way", "web", "who", "why", "win", "yes",
	"yet", "you",
	// 4 letters
	"able", "also", "area", "away", "baby", "back", "ball", "bank", "base",
	"bear", "beat", "best", "bill", "bird", "blue", "body", "book", "born",
	"both", "call", "card", "care", "case", "cell", "city", "club", "cold",
	"come", "cost", "dark", "data", "dead", "deal", "deep", "door", "down",
	"draw", "drop", "drug", "each", "east", "easy", "edge", "else", "even",
	"ever", "face", "fact", "fall", "farm", "fast", "fear", "feel", "fill",
	"film", "find", "fine", "fire", "firm", "fish", "five", "food", "foot",
	"form", "four", "free", "from", "full", "fund", "game", "girl", "give",
	"goal", "gold", "good", "grow", "hair", "half", "hall", "hang", "hard",
	"have", "head", "hear", "heat", "help", "here", "high", "hold", "home",
	"hope", "hour", "huge", "idea", "into", "item", "join", "jump", "just",
	"keep", "kill", "kind", "know", "land", "last", "late", "lead", "left",
	"less", "life", "like", "line", "list", "live", "long", "look", "lose",
	"loss", "lost", "love", "main", "make", "many", "mean", "meet", "mind",
	"miss", "more", "most", "move", "much", "music", "must", "name", "near",
	"need", "news", "next", "nice", "nine", "none", "note", "once", "only",
	"onto", "open", "over", "page", "pain", "part", "pass", "past", "path",
	"pick", "plan", "play", "pull", "push", "race", "rain", "rate", "read",
	"real", "rest", "rich", "ride", "ring", "rise", "risk", "road", "rock",
	"role", "room", "rule", "safe", "sale", "same", "save", "seat", "seek",
	"seem", "sell", "send", "ship", "shop", "shot", "show", "side", "sign",
	"site", "size", "skin", "slow", "snow", "some", "song", "soon", "sort",
	"stay", "step", "stop", "such", "sure", "take", "talk", "team", "tell",
	"term", "test", "than", "that", "them", "then", "they", "this", "thus",
	"time", "town", "tree", "trip", "true", "turn", "type", "unit", "upon",
	"very", "view", "vote", "wait", "walk", "wall", "want", "warm", "wash",
	"wear", "week", "well", "west", "what", "when", "whom", "wide", "wife",
	"wind", "wine", "wish", "with", "word", "work", "year", "your",
	// 5 letters
	"about", "above", "agree", "ahead", "allow", "alone", "along", "among",
	"apply", "argue", "avoid", "award", "basic", "beach", "begin", "black",
	"blood", "board", "brain", "break", "bring", "brown", "build", "carry",
	"catch", "cause", "chair", "check", "child", "civil", "claim", "class",
	"clean", "clear", "close", "coach", "color", "could", "count", "court",
	"cover", "crime", "cross", "crowd", "dance", "death", "doubt", "dream",
	"dress", "drink", "drive", "early", "earth", "eight", "enemy", "enjoy",
	"enter", "event", "every", "exist", "faith", "field", "fight", "final",
	"floor", "focus", "force", "frame", "front", "fruit", "glass", "grant",
	"great", "green", "group", "guard", "guess", "happy", "heart", "heavy",
	"horse", "hotel", "house", "human", "image", "issue", "judge", "knife",
	"large", "laugh", "layer", "learn", "leave", "legal", "level", "light",
	"limit", "local", "major", "maybe", "meant", "media", "metal", "might",
	"model", "money", "month", "moral", "mouth", "movie", "music", "never",
	"night", "noise", "north", "novel", "nurse", "occur", "ocean", "offer",
	"often", "order", "other", "owner", "paint", "panel", "paper", "party",
	"peace", "phase", "phone", "photo", "piece", "pilot", "pitch", "place",
	"plane", "plant", "plate", "point", "pound", "power", "press", "price",
	"pride", "prime", "print", "prove", "quick", "quiet", "quite", "radio",
	"raise", "range", "rapid", "ratio", "reach", "ready", "refer", "relax",
	"reply", "right", "river", "round", "route", "scale", "scene", "scope",
	"score", "sense", "serve", "seven", "shake", "shape", "share", "sharp",
	"shift", "shoot", "short", "since", "skill", "sleep", "small", "smart",
	"smile", "solid", "solve", "sound", "south", "space", "speak", "speed",
	"spend", "sport", "staff", "stage", "stand", "start", "state", "steal",
	"stick", "still", "stock", "stone", "store", "storm", "story", "study",
	"stuff", "style", "sugar", "table", "teach", "thank", "theme", "there",
	"these", "thing", "think", "third", "those", "three", "throw", "tight",
	"tired", "title", "total", "touch", "tough", "trade", "train", "treat",
	"trend", "trial", "trust", "truth", "twice", "under", "union", "until",
	"upper", "usual", "value", "video", "visit", "voice", "watch", "water",
	"wheel", "where", "which", "while", "white", "whole", "whose", "woman",
	"world", "worry", "would", "write", "wrong", "young",
	// 6 letters
	"accept", "access", "across", "action", "active", "actual", "advice",
	"afford", "agency", "agenda", "almost", "always", "amount", "animal",
	"annual", "answer", "anyone", "appear", "around", "arrive", "artist",
	"assume", "attack", "attend", "august", "author", "battle", "beauty",
	"become", "before", "behind", "belief", "belong", "better", "beyond",
	"border", "bottle", "bottom", "branch", "bridge", "bright", "brother",
	"budget", "button", "camera", "campus", "cancer", "cannot", "carbon",
	"career", "center", "chance", "change", "charge", "choice", "choose",
	"church", "circle", "client", "closer", "coffee", "column", "common",
	"copper", "corner", "county", "couple", "course", "create", "credit",
	"crisis", "custom", "damage", "danger", "debate", "decade", "decide",
	"defeat", "defend", "define", "degree", "demand", "depend", "design",
	"desire", "detail", "device", "dinner", "direct", "doctor", "dollar",
	"double", "driver", "during", "easily", "eating", "effect", "effort",
	"either", "eleven", "emerge", "energy", "engine", "enough", "entire",
	"escape", "ethnic", "expand", "expect", "expert", "extend", "extent",
	"fabric", "factor", "fairly", "family", "famous", "father", "fellow",
	"female", "figure", "finger", "finish", "flight", "flower", "follow",
	"forest", "forget", "formal", "former", "freeze", "friend", "future",
	"garden", "gather", "gender", "global", "ground", "growth", "guilty",
	"handle", "happen", "hardly", "health", "heaven", "height", "hidden",
	"holiday", "honest", "impact", "import", "income", "indeed", "injury",
	"inside", "intend", "invest", "island", "itself", "jacket", "junior",
	"killer", "kitchen", "labour", "latter", "lawyer", "leader", "league",
	"legacy", "length", "lesson", "letter", "likely", "listen", "little",
	"living", "losing", "luxury", "mainly", "manage", "manner", "margin",
	"market", "master", "matter", "medium", "member", "memory", "mental",
	"method", "middle", "minute", "mirror", "mobile", "modern", "moment",
	"mostly", "mother", "motion", "murder", "muscle", "museum", "mutual",
	"myself", "narrow", "nation", "native", "nature", "nearby", "nearly",
	"nobody", "normal", "notice", "notion", "number", "object", "obtain",
	"office", "online", "option", "orange", "origin", "output", "oxygen",
	"palace", "parent", "partly", "people", "period", "permit", "person",
	"phrase", "planet", "player", "please", "plenty", "pocket", "policy",
	"prefer", "pretty", "prince", "prison", "profit", "proper", "public",
	"purple", "pursue", "random", "rather", "reason", "recall", "recent",
	"record", "reduce", "reform", "refuse", "regard", "region", "relate",
	"remain", "remote", "remove", "repeat", "report", "rescue", "result",
	"retain", "return", "reveal", "review", "reward", "rhythm", "saving",
	"scheme", "school", "screen", "search", "season", "second", "secret",
	"sector", "secure", "select", "senior", "series", "settle", "severe",
	"shadow", "should", "silver", "simple", "simply", "singer", "single",
	"sister", "slight", "smooth", "soccer", "social", "source", "speech",
	"spirit", "spread", "spring", "square", "stable", "statue", "status",
	"steady", "stream", "street", "stress", "strike", "string", "strong",
	"studio", "submit", "sudden", "suffer", "summer", "supply", "survey",
	"switch", "symbol", "system", "talent", "target", "tennis", "theory",
	"thirty", "though", "threat", "ticket", "tissue", "toward", "travel",
	"treaty", "trying", "twelve", "twenty", "unable", "unique", "united",
	"unless", "unlike", "update", "useful", "valley", "vendor", "vision",
	"visual", "volume", "wealth", "weekly", "weight", "window", "winner",
	"winter", "within", "wonder", "worker", "writer", "yellow",
	// 7+ letters
	"ability", "account", "achieve", "address", "advance", "airline",
	"already", "analyst", "ancient", "another", "anxiety", "anybody",
	"applied", "arrange", "article", "attempt", "attract", "average",
	"balance", "barrier", "battery", "because", "bedroom", "benefit",
	"between", "billion", "brother", "cabinet", "capable", "capital",
	"captain", "capture", "careful", "ceiling", "century", "certain",
	"chamber", "channel", "chapter", "charity", "chicken", "citizen",
	"classic", "climate", "clothes", "collect", "college", "combine",
	"comfort", "command", "comment", "company", "compare", "compete",
	"complex", "concept", "concern", "conduct", "confirm", "connect",
	"consist", "contact", "contain", "content", "contest", "context",
	"control", "convert", "correct", "council", "counter", "country",
	"courage", "crucial", "culture", "curious", "current", "dealing",
	"decline", "deliver", "density", "deposit", "desktop", "despite",
	"destroy", "develop", "digital", "discuss", "disease", "display",
	"distant", "diverse", "drawing", "driving", "dynamic", "eastern",
	"economy", "edition", "element", "engage", "enhance", "evening",
	"exactly", "examine", "example", "excited", "exhibit", "expense",
	"explain", "explore", "express", "extreme", "factory", "failure",
	"fashion", "feature", "federal", "feeling", "fiction", "fifteen",
	"finance", "finding", "fitness", "foreign", "forever", "formula",
	"fortune", "forward", "freedom", "gallery", "general", "genetic",
	"genuine", "gravity", "greater", "habitat", "healthy", "hearing",
	"heavily", "helpful", "herself", "highway", "himself", "history",
	"housing", "however", "hundred", "husband", "illegal", "illness",
	"imagine", "improve", "include", "initial", "inquiry", "insight",
	"install", "instead", "intense", "interest", "involve", "journal",
	"journey", "justice", "justify", "kitchen", "landing", "largely",
	"lasting", "leading", "learning", "leather", "lecture", "liberal",
	"library", "licence", "limited", "machine", "manager", "married",
	"massive", "maximum", "meaning", "measure", "medical", "meeting",
	"mention", "message", "million", "mineral", "minimum", "missing",
	"mission", "mistake", "mixture", "monitor", "monthly", "morning",
	"musical", "mystery", "natural", "neither", "nervous", "network",
	"nothing", "nuclear", "obvious", "officer", "ongoing", "opening",
	"operate", "opinion", "organic", "outcome", "outside", "overall",
	"package", "painting", "partner", "passage", "passion", "patient",
	"pattern", "payment", "penalty", "pension", "perfect", "perform",
	"perhaps", "picture", "plastic", "pointed", "popular", "portion",
	"poverty", "precise", "predict", "premise", "prepare", "present",
	"prevent", "primary", "privacy", "private", "problem", "process",
	"produce", "product", "profile", "program", "project", "promise",
	"promote", "protect", "protein", "protest", "provide", "publish",
	"purpose", "pushing", "quality", "quarter", "radical", "railway",
	"readily", "reality", "realize", "receive", "recover", "reflect",
	"regular", "related", "release", "remind", "replace", "request",
	"require", "reserve", "resident", "resolve", "respect", "respond",
	"restore", "retreat", "revenue", "reverse", "routine", "running",
	"satisfy", "science", "section", "segment", "serious", "service",
	"session", "setting", "seventy", "several", "shortly", "silence",
	"similar", "society", "soldier", "somehow", "speaker", "special",
	"species", "sponsor", "stadium", "station", "storage", "strange",
	"stretch", "student", "subject", "succeed", "success", "suggest",
	"summary", "support", "suppose", "supreme", "surface", "surgery",
	"survive", "suspect", "sustain", "teacher", "telecom", "theatre",
	"therapy", "thirteen", "thought", "through", "tonight", "totally",
	"tourism", "traffic", "trouble", "typical", "uniform", "unknown",
	"unusual", "upgrade", "usually", "variety", "various", "vehicle",
	"venture", "version", "veteran", "victory", "village", "violent",
	"virtual", "visible", "waiting", "warning", "weather", "website",
	"wedding", "weekend", "welcome", "welfare", "western", "whereas",
	"whether", "willing", "without", "witness", "writing", "written",
}

// All returns the full word list (deduplicated, sorted). The returned
// slice is freshly allocated.
func All() []string {
	seen := make(map[string]bool, len(words))
	out := make([]string, 0, len(words))
	for _, w := range words {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

// Contains reports whether w is in the corpus.
func Contains(w string) bool {
	all := All()
	i := sort.SearchStrings(all, w)
	return i < len(all) && all[i] == w
}

// Sample draws n words uniformly without replacement. It returns an error
// if n exceeds the corpus size.
func Sample(rng *rand.Rand, n int) ([]string, error) {
	all := All()
	if n < 0 || n > len(all) {
		return nil, fmt.Errorf("corpus: cannot sample %d of %d words", n, len(all))
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	out := all[:n]
	sort.Strings(out)
	return out, nil
}

// ByLength buckets the corpus by word length; lengths ≥ maxLen collapse
// into the final bucket, matching Fig. 15's "≥6" grouping when maxLen=6.
func ByLength(maxLen int) map[int][]string {
	out := make(map[int][]string)
	for _, w := range All() {
		l := len(w)
		if l > maxLen {
			l = maxLen
		}
		out[l] = append(out[l], w)
	}
	return out
}

// Validate checks every corpus word is non-empty lowercase a–z; the glyph
// font only covers that set.
func Validate() error {
	for _, w := range All() {
		if w == "" {
			return fmt.Errorf("corpus: empty word")
		}
		if strings.ToLower(w) != w {
			return fmt.Errorf("corpus: %q not lowercase", w)
		}
		for _, r := range w {
			if r < 'a' || r > 'z' {
				return fmt.Errorf("corpus: %q contains unsupported rune %q", w, r)
			}
		}
	}
	return nil
}
