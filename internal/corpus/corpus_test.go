package corpus

import (
	"math/rand"
	"sort"
	"testing"
)

func TestAllDeduplicatedAndSorted(t *testing.T) {
	all := All()
	if len(all) < 500 {
		t.Fatalf("corpus too small: %d words", len(all))
	}
	if !sort.StringsAreSorted(all) {
		t.Fatal("not sorted")
	}
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			t.Fatalf("duplicate word %q", all[i])
		}
	}
	// Returned slice is a copy.
	all[0] = "mutated"
	if All()[0] == "mutated" {
		t.Fatal("All must return a fresh slice")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContains(t *testing.T) {
	for _, w := range []string{"clear", "play", "import"} {
		if !Contains(w) {
			t.Errorf("corpus should contain %q (paper's example words)", w)
		}
	}
	if Contains("zzzzq") {
		t.Fatal("nonsense word reported present")
	}
}

func TestSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := Sample(rng, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 150 {
		t.Fatalf("sample size = %d", len(s))
	}
	seen := map[string]bool{}
	for _, w := range s {
		if seen[w] {
			t.Fatalf("duplicate %q in sample", w)
		}
		seen[w] = true
		if !Contains(w) {
			t.Fatalf("sampled word %q not in corpus", w)
		}
	}
	// Deterministic under the same seed.
	s2, _ := Sample(rand.New(rand.NewSource(1)), 150)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	if _, err := Sample(rng, -1); err == nil {
		t.Fatal("negative n should error")
	}
	if _, err := Sample(rng, 1<<20); err == nil {
		t.Fatal("oversized n should error")
	}
}

func TestByLength(t *testing.T) {
	buckets := ByLength(6)
	for _, l := range []int{2, 3, 4, 5, 6} {
		if len(buckets[l]) == 0 {
			t.Errorf("no words of length %d", l)
		}
	}
	// Words of length > 6 collapse into bucket 6 (Fig. 15's "≥6").
	for _, w := range buckets[6] {
		if len(w) < 6 {
			t.Fatalf("short word %q in ≥6 bucket", w)
		}
	}
	if len(buckets[7]) != 0 {
		t.Fatal("lengths beyond maxLen should collapse")
	}
}

func TestWordLengthSpread(t *testing.T) {
	// Fig. 15 needs words of 2,3,4,5,≥6 letters; the corpus should have
	// a healthy number in each bucket.
	buckets := ByLength(6)
	for l := 2; l <= 6; l++ {
		if len(buckets[l]) < 20 {
			t.Errorf("bucket %d has only %d words", l, len(buckets[l]))
		}
	}
}
