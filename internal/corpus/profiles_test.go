package corpus

import (
	"reflect"
	"testing"

	"rfidraw/internal/deploy"
)

func TestProfileRegistry(t *testing.T) {
	want := []string{"clean", "nlos-heavy", "drift", "dup-flood", "reader-loss", "multiroom"}
	if got := ProfileNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ProfileNames = %v, want %v", got, want)
	}
	seeds := map[int64]string{}
	for _, p := range Profiles() {
		got, err := ProfileByName(p.Name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", p.Name, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("ProfileByName(%q) differs from registry entry", p.Name)
		}
		if err := p.Plan().Validate(); err != nil {
			t.Fatalf("profile %q has an invalid fault plan: %v", p.Name, err)
		}
		if prev, dup := seeds[p.Seed]; dup {
			t.Fatalf("profiles %q and %q share seed %d", prev, p.Name, p.Seed)
		}
		seeds[p.Seed] = p.Name
		// Every referenced geometry must exist in the deploy registry.
		if _, err := deploy.GeometryByName(p.Geometry); err != nil {
			t.Fatalf("profile %q references geometry %q: %v", p.Name, p.Geometry, err)
		}
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Fatal("unknown profile name accepted")
	}
}

func TestCleanProfileIsIdentity(t *testing.T) {
	clean, err := ProfileByName("clean")
	if err != nil {
		t.Fatal(err)
	}
	if clean.Plan().Active() || clean.NLOS || clean.Geometry != "" {
		t.Fatalf("clean profile is not a clean control: %+v", clean)
	}
	drift, err := ProfileByName("drift")
	if err != nil {
		t.Fatal(err)
	}
	if !drift.Plan().Active() {
		t.Fatal("drift profile injects nothing")
	}
}
