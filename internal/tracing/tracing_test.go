package tracing

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rfidraw/internal/deploy"
	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
)

var plane = geom.Plane{Y: 2}

func testTracer(t testing.TB) (*Tracer, *deploy.RFIDraw) {
	t.Helper()
	d, err := deploy.DefaultRFIDraw()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTracer(d.AllPairs(), Config{Plane: plane, Region: deploy.DefaultRegion()})
	if err != nil {
		t.Fatal(err)
	}
	return tr, d
}

// synthSamples generates observation samples for a source moving along the
// given plane positions, one sample per position, with optional phase noise.
func synthSamples(d *deploy.RFIDraw, positions []geom.Vec2, noise float64, rng *rand.Rand) []Sample {
	dt := 25 * time.Millisecond
	out := make([]Sample, len(positions))
	for i, p2 := range positions {
		src := plane.To3D(p2)
		obs := vote.Observations{}
		for _, a := range d.Antennas {
			ph := phys.PathPhase(d.Carrier, d.Link, a.Pos.Dist(src))
			if noise > 0 && rng != nil {
				ph += rng.NormFloat64() * noise
			}
			obs[a.ID] = phys.Wrap(ph)
		}
		out[i] = Sample{T: time.Duration(i) * dt, Phase: obs}
	}
	return out
}

// circlePath generates a small circular trajectory (centre c, radius r).
func circlePath(c geom.Vec2, r float64, n int) []geom.Vec2 {
	out := make([]geom.Vec2, n)
	for i := range out {
		th := 2 * math.Pi * float64(i) / float64(n)
		out[i] = geom.Vec2{X: c.X + r*math.Cos(th), Z: c.Z + r*math.Sin(th)}
	}
	return out
}

func TestNewTracerValidation(t *testing.T) {
	d, _ := deploy.DefaultRFIDraw()
	if _, err := NewTracer(d.AllPairs()[:2], Config{Plane: plane, Region: deploy.DefaultRegion()}); err == nil {
		t.Fatal("under-constrained pair set should be rejected")
	}
	if _, err := NewTracer(d.AllPairs(), Config{Plane: plane}); err == nil {
		t.Fatal("degenerate region should be rejected")
	}
	tr, err := NewTracer(d.AllPairs(), Config{Plane: plane, Region: deploy.DefaultRegion()})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Config().VicinityRadius <= 0 || tr.Config().MinPairs <= 0 {
		t.Fatal("defaults not applied")
	}
}

func TestTraceNoiselessFollowsTruth(t *testing.T) {
	tr, d := testTracer(t)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.07, 60)
	samples := synthSamples(d, path, 0, nil)
	res, err := tr.Trace(path[0], samples)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trajectory.Len() != len(path) {
		t.Fatalf("traced %d points, want %d", res.Trajectory.Len(), len(path))
	}
	truth := traj.FromPositions(path, 25*time.Millisecond)
	med, err := traj.MedianError(truth, res.Trajectory, traj.AlignNone, len(path))
	if err != nil {
		t.Fatal(err)
	}
	if med > 0.01 {
		t.Fatalf("noiseless median error = %v m, want < 1 cm", med)
	}
	// Votes stay near zero on the correct lobe set.
	for i, v := range res.Votes {
		if v < -0.05 {
			t.Fatalf("vote %d = %v, want ≈0 for the correct start", i, v)
		}
	}
}

func TestTraceShapeResilienceWrongStart(t *testing.T) {
	// §4 / Fig. 7: starting from a slightly wrong position locks nearby
	// wrong lobes; the absolute position is off but the *shape* is
	// preserved after removing the initial offset.
	tr, d := testTracer(t)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.07, 60)
	samples := synthSamples(d, path, 0, nil)
	wrongStart := path[0].Add(geom.Vec2{X: 0.10, Z: 0.07})
	res, err := tr.Trace(wrongStart, samples)
	if err != nil {
		t.Fatal(err)
	}
	truth := traj.FromPositions(path, 25*time.Millisecond)
	// Absolute error is large (wrong lobe)...
	medAbs, _ := traj.MedianError(truth, res.Trajectory, traj.AlignNone, 60)
	// ...but after removing the initial offset the shape is close.
	medShape, _ := traj.MedianError(truth, res.Trajectory, traj.AlignInitial, 60)
	if medShape > 0.04 {
		t.Fatalf("shape error = %v m, want small (shape resilience)", medShape)
	}
	if medShape > medAbs {
		t.Fatalf("shape error %v should be ≤ absolute error %v", medShape, medAbs)
	}
}

func TestTraceVoteDetectsWrongCandidate(t *testing.T) {
	// §5.2/§7.2: a badly wrong initial position yields lobes that stop
	// intersecting as the source moves — its mean vote collapses
	// relative to the correct start.
	tr, d := testTracer(t)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.12, 80)
	samples := synthSamples(d, path, 0, nil)
	good, err := tr.Trace(path[0], samples)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := tr.Trace(path[0].Add(geom.Vec2{X: 0.45, Z: 0.3}), samples)
	if err != nil {
		t.Fatal(err)
	}
	if bad.TotalVote >= good.TotalVote {
		t.Fatalf("wrong start vote %v should be below correct start vote %v",
			bad.TotalVote, good.TotalVote)
	}
}

func TestMultiStreamPicksHighestVote(t *testing.T) {
	// The §5.2 selection step, incrementally: pushing the samples through
	// a multi-hypothesis stream must elect the true start as leader even
	// when a wrong candidate scored better at positioning time.
	tr, d := testTracer(t)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.12, 80)
	samples := synthSamples(d, path, 0, nil)
	cands := []vote.Candidate{
		{Pos: path[0].Add(geom.Vec2{X: 0.45, Z: 0.3}), Score: -0.001}, // wrong but scored high
		{Pos: path[0], Score: -0.002},
	}
	ms, err := tr.NewMultiStream(cands, samples[0], MultiConfig{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		ms.Push(s)
	}
	all, kept, idx, err := ms.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || len(kept) != 2 {
		t.Fatalf("results = %d, candidates = %d", len(all), len(kept))
	}
	if idx != 1 {
		t.Fatalf("chose candidate %d, want 1 (the true start)", idx)
	}
	if all[idx].Trajectory.Start().Dist(path[0]) > 0.05 {
		t.Fatalf("best start = %v", all[idx].Trajectory.Start())
	}
	if _, err := tr.NewMultiStream(nil, samples[0], MultiConfig{}); err == nil {
		t.Fatal("no candidates should error")
	}
}

func TestTraceLobeOverridesShiftTrajectory(t *testing.T) {
	// Forcing adjacent wrong lobes (Fig. 7a) translates the trace while
	// keeping its shape.
	tr, d := testTracer(t)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.07, 50)
	samples := synthSamples(d, path, 0, nil)
	base, err := tr.Trace(path[0], samples)
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := tr.Trace(path[0], samples, LobeOverride{PairIndex: 6, DeltaK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if shifted.LockedLobes[6] != base.LockedLobes[6]+1 {
		t.Fatalf("override not applied: %d vs %d", shifted.LockedLobes[6], base.LockedLobes[6])
	}
	// The shifted trace ends up displaced...
	if base.Trajectory.End().Dist(shifted.Trajectory.End()) < 0.01 {
		t.Fatal("override should displace the trajectory")
	}
	// ...but its shape still matches the truth after offset removal.
	truth := traj.FromPositions(path, 25*time.Millisecond)
	medShape, _ := traj.MedianError(truth, shifted.Trajectory, traj.AlignInitial, 50)
	if medShape > 0.05 {
		t.Fatalf("override shape error = %v", medShape)
	}
	if _, err := tr.Trace(path[0], samples, LobeOverride{PairIndex: 99}); err == nil {
		t.Fatal("out-of-range override should error")
	}
}

func TestTraceHandlesReplyLoss(t *testing.T) {
	tr, d := testTracer(t)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.07, 60)
	samples := synthSamples(d, path, 0, nil)
	rng := rand.New(rand.NewSource(5))
	// Drop 20% of individual antenna phases.
	for i := range samples {
		for id := range samples[i].Phase {
			if rng.Float64() < 0.2 {
				delete(samples[i].Phase, id)
			}
		}
	}
	res, err := tr.Trace(path[0], samples)
	if err != nil {
		t.Fatal(err)
	}
	truth := traj.FromPositions(path, 25*time.Millisecond)
	med, _ := traj.MedianError(truth, res.Trajectory, traj.AlignInitial, 60)
	if med > 0.03 {
		t.Fatalf("median error with 20%% loss = %v m", med)
	}
}

func TestTraceErrors(t *testing.T) {
	tr, d := testTracer(t)
	if _, err := tr.Trace(geom.Vec2{X: 1, Z: 1}, nil); err == nil {
		t.Fatal("no samples should error")
	}
	// A first sample with almost all phases missing cannot lock pairs.
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.05, 5)
	samples := synthSamples(d, path, 0, nil)
	samples[0].Phase = vote.Observations{1: 0.1}
	if _, err := tr.Trace(path[0], samples); err == nil {
		t.Fatal("unobservable start should error")
	}
}

func TestTraceNoisyStillAccurate(t *testing.T) {
	tr, d := testTracer(t)
	rng := rand.New(rand.NewSource(17))
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.07, 80)
	samples := synthSamples(d, path, 0.1, rng)
	res, err := tr.Trace(path[0], samples)
	if err != nil {
		t.Fatal(err)
	}
	truth := traj.FromPositions(path, 25*time.Millisecond)
	med, _ := traj.MedianError(truth, res.Trajectory, traj.AlignInitial, 80)
	// §3.3: wide pairs are robust to phase noise — π/10 rad noise should
	// still give centimetre-level shape accuracy.
	if med > 0.03 {
		t.Fatalf("noisy median error = %v m", med)
	}
}

// TestStepHierarchicalMatchesDense compares the two vicinity strategies
// sample by sample on a noiseless path: the hierarchical coarse-to-fine
// search must land within a couple of millimetres of the dense scan while
// spending at least 5× fewer vote evaluations.
func TestStepHierarchicalMatchesDense(t *testing.T) {
	d, err := deploy.DefaultRFIDraw()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(mode vote.SearchMode) *Tracer {
		tr, err := NewTracer(d.AllPairs(), Config{
			Plane: plane, Region: deploy.DefaultRegion(),
			Search: vote.SearchConfig{Mode: mode},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	dense := mk(vote.SearchDense)
	hier := mk(vote.SearchHierarchical)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.07, 60)
	samples := synthSamples(d, path, 0, nil)
	dres, err := dense.Trace(path[0], samples)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := hier.Trace(path[0], samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(dres.Votes) != len(hres.Votes) {
		t.Fatalf("traced %d vs %d samples", len(dres.Votes), len(hres.Votes))
	}
	for i := range dres.Trajectory.Points {
		dp, hp := dres.Trajectory.Points[i].Pos, hres.Trajectory.Points[i].Pos
		if dist := dp.Dist(hp); dist > 0.005 {
			t.Fatalf("sample %d: dense %v vs hierarchical %v (off %v)", i, dp, hp, dist)
		}
	}
	if dres.SearchEvals <= 0 || hres.SearchEvals <= 0 {
		t.Fatalf("eval counters not populated: dense %d, hier %d", dres.SearchEvals, hres.SearchEvals)
	}
	if hres.SearchEvals*5 > dres.SearchEvals {
		t.Fatalf("hierarchical spent %d evals vs dense %d — below the 5x target", hres.SearchEvals, dres.SearchEvals)
	}
}

// TestStreamSharedScratchIsInert checks a scratch shared across streams
// (as the engine shares one per shard) never changes any stream's output.
func TestStreamSharedScratchIsInert(t *testing.T) {
	tr, d := testTracer(t)
	pathA := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.07, 40)
	pathB := circlePath(geom.Vec2{X: 0.8, Z: 1.3}, 0.05, 40)
	samplesA := synthSamples(d, pathA, 0, nil)
	samplesB := synthSamples(d, pathB, 0, nil)

	run := func(sc *vote.Scratch, start geom.Vec2, samples []Sample, interleave func(int)) []traj.Point {
		s, err := tr.NewStreamWith(sc, start, samples[0])
		if err != nil {
			t.Fatal(err)
		}
		var pts []traj.Point
		for i, smp := range samples {
			if interleave != nil {
				interleave(i)
			}
			if p, _, ok := s.Push(smp); ok {
				pts = append(pts, p)
			}
		}
		if s.SearchEvals() <= 0 {
			t.Fatal("stream eval counter not populated")
		}
		return pts
	}
	wantA := run(nil, pathA[0], samplesA, nil)

	// Replay stream A while stream B interleaves pushes through the same
	// scratch — exactly what two tags on one shard do.
	shared := vote.NewScratch()
	sb, err := tr.NewStreamWith(shared, pathB[0], samplesB[0])
	if err != nil {
		t.Fatal(err)
	}
	gotA := run(shared, pathA[0], samplesA, func(i int) { sb.Push(samplesB[i]) })
	if len(gotA) != len(wantA) {
		t.Fatalf("shared-scratch stream traced %d points, want %d", len(gotA), len(wantA))
	}
	for i := range gotA {
		if gotA[i] != wantA[i] {
			t.Fatalf("point %d: shared-scratch %v != private %v", i, gotA[i], wantA[i])
		}
	}
}
