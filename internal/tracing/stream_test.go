package tracing

import (
	"testing"

	"rfidraw/internal/geom"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
)

func TestNewStreamValidation(t *testing.T) {
	tr, d := testTracer(t)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.05, 10)
	samples := synthSamples(d, path, 0, nil)
	// Starved first sample: cannot lock enough pairs.
	if _, err := tr.NewStream(path[0], Sample{T: 0, Phase: vote.Observations{1: 0.2}}); err == nil {
		t.Fatal("starved stream start should error")
	}
	s, err := tr.NewStream(path[0], samples[0])
	if err != nil {
		t.Fatal(err)
	}
	if s.Position() != tr.Config().Region.Clip(path[0]) {
		t.Fatalf("initial position = %v", s.Position())
	}
	if s.MeanVote() != 0 {
		t.Fatal("mean vote before any push should be 0")
	}
}

func TestStreamMatchesBatchTrace(t *testing.T) {
	// Pushing every sample through a stream must match the batch Trace
	// from the same start.
	tr, d := testTracer(t)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.07, 50)
	samples := synthSamples(d, path, 0, nil)
	batch, err := tr.Trace(path[0], samples)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := tr.NewStream(path[0], samples[0])
	if err != nil {
		t.Fatal(err)
	}
	var pts []traj.Point
	for _, s := range samples {
		if p, _, ok := stream.Push(s); ok {
			pts = append(pts, p)
		}
	}
	if len(pts) != batch.Trajectory.Len() {
		t.Fatalf("stream traced %d points, batch %d", len(pts), batch.Trajectory.Len())
	}
	for i := range pts {
		if pts[i].Pos.Dist(batch.Trajectory.Points[i].Pos) > 1e-9 {
			t.Fatalf("point %d diverged: %v vs %v", i, pts[i].Pos, batch.Trajectory.Points[i].Pos)
		}
	}
	if stream.MeanVote() > 0 {
		t.Fatal("mean vote must be ≤ 0")
	}
}

func TestStreamSkipsStarvedSamples(t *testing.T) {
	tr, d := testTracer(t)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.05, 20)
	samples := synthSamples(d, path, 0, nil)
	stream, err := tr.NewStream(path[0], samples[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := stream.Push(Sample{T: samples[1].T, Phase: vote.Observations{}}); ok {
		t.Fatal("starved sample should be skipped")
	}
	// The stream continues cleanly afterwards.
	if _, _, ok := stream.Push(samples[1]); !ok {
		t.Fatal("stream should resume after starvation")
	}
}
