package tracing

import (
	"testing"

	"rfidraw/internal/geom"
	"rfidraw/internal/vote"
)

// TestMultiStreamRetiresCollapsedHypothesis: a badly wrong candidate's
// vote record collapses (Fig. 10f) and the hypothesis is retired — its
// recorded trace truncated, its search work stopped — while the correct
// leader keeps tracing to the end.
func TestMultiStreamRetiresCollapsedHypothesis(t *testing.T) {
	tr, d := testTracer(t)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.12, 80)
	samples := synthSamples(d, path, 0, nil)
	cands := []vote.Candidate{
		{Pos: path[0]},
		{Pos: path[0].Add(geom.Vec2{X: 0.45, Z: 0.3})}, // wildly wrong
	}
	ms, err := tr.NewMultiStream(cands, samples[0], MultiConfig{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		ms.Push(s)
	}
	if ms.Retirements() != 1 {
		t.Fatalf("retirements = %d, want 1", ms.Retirements())
	}
	if ms.Active() != 1 {
		t.Fatalf("active = %d, want 1", ms.Active())
	}
	all, _, best, err := ms.Results()
	if err != nil {
		t.Fatal(err)
	}
	if best != 0 {
		t.Fatalf("leader = %d, want 0 (the true start)", best)
	}
	if !all[1].Retired || all[0].Retired {
		t.Fatalf("retired flags = %v/%v, want false/true", all[0].Retired, all[1].Retired)
	}
	if len(all[1].Votes) >= len(all[0].Votes) {
		t.Fatalf("retired trace has %d votes, leader %d — retirement should truncate",
			len(all[1].Votes), len(all[0].Votes))
	}
	if len(all[1].Votes) < tr.Config().RetireAfter {
		t.Fatalf("retired before RetireAfter=%d samples (at %d)",
			tr.Config().RetireAfter, len(all[1].Votes))
	}
	stats := ms.Stats()
	if len(stats) != 2 || !stats[1].Retired || stats[1].Samples != len(all[1].Votes) {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestMultiStreamRetirementDisabled: a negative margin keeps every
// hypothesis stepping to the end.
func TestMultiStreamRetirementDisabled(t *testing.T) {
	tr, d := testTracer(t)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.12, 80)
	samples := synthSamples(d, path, 0, nil)
	cands := []vote.Candidate{
		{Pos: path[0]},
		{Pos: path[0].Add(geom.Vec2{X: 0.45, Z: 0.3})},
	}
	ms, err := tr.NewMultiStream(cands, samples[0], MultiConfig{Record: true, RetireMargin: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		ms.Push(s)
	}
	if ms.Retirements() != 0 || ms.Active() != 2 {
		t.Fatalf("retirements = %d, active = %d; want 0, 2", ms.Retirements(), ms.Active())
	}
	all, _, _, err := ms.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(all[0].Votes) != len(all[1].Votes) {
		t.Fatal("disabled retirement should trace both hypotheses fully")
	}
}

// TestMultiStreamElection pins the election mechanics: candidate 0 (the
// positioner's best) sits as provisional leader; a decisively better
// challenger deposes it at the very first sample — before anything has
// been emitted, so no switch is counted — while a near-equivalent
// challenger never clears the hysteresis and the positioner's ranking
// holds. Mid-stream switches on real corpus dynamics are asserted by the
// engine's streaming tests.
func TestMultiStreamElection(t *testing.T) {
	tr, d := testTracer(t)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.12, 80)
	samples := synthSamples(d, path, 0, nil)

	// A wildly wrong provisional leader collapses immediately (mean vote
	// ≈ −1): the first election hands leadership to the true start, and
	// since nothing was emitted yet it is not a switch.
	ms, err := tr.NewMultiStream([]vote.Candidate{
		{Pos: path[0].Add(geom.Vec2{X: 0.45, Z: 0.3})},
		{Pos: path[0]},
	}, samples[0], MultiConfig{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if st, ok := ms.Push(s); ok && st.Switched {
			t.Fatalf("pre-emission deposal at t=%v reported as a switch", st.Point.T)
		}
	}
	if ms.Leader() != 1 || ms.Switches() != 0 {
		t.Fatalf("leader=%d switches=%d, want 1 and 0", ms.Leader(), ms.Switches())
	}

	// A nearby candidate (within the vicinity radius) converges onto the
	// same trajectory; its mean stays within the hysteresis margin, so
	// the positioner's ranking is never overturned.
	ms, err = tr.NewMultiStream([]vote.Candidate{
		{Pos: path[0].Add(geom.Vec2{X: 0.04, Z: 0.03})},
		{Pos: path[0]},
	}, samples[0], MultiConfig{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		ms.Push(s)
	}
	if ms.Leader() != 0 || ms.Switches() != 0 {
		t.Fatalf("near-tie leader=%d switches=%d, want 0 and 0 (hysteresis holds)",
			ms.Leader(), ms.Switches())
	}
}

// TestMultiStreamResultsRequireRecord: without recording, Results is an
// error (the live serving path runs unrecorded to bound memory).
func TestMultiStreamResultsRequireRecord(t *testing.T) {
	tr, d := testTracer(t)
	path := circlePath(geom.Vec2{X: 1.3, Z: 1.0}, 0.05, 10)
	samples := synthSamples(d, path, 0, nil)
	ms, err := tr.NewMultiStream([]vote.Candidate{{Pos: path[0]}}, samples[0], MultiConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		ms.Push(s)
	}
	if _, _, _, err := ms.Results(); err == nil {
		t.Fatal("Results without Record should error")
	}
	if ms.SearchEvals() <= 0 || ms.Hypotheses() != 1 {
		t.Fatalf("evals=%d hyps=%d", ms.SearchEvals(), ms.Hypotheses())
	}
}
