package tracing

import (
	"errors"
	"fmt"

	"rfidraw/internal/geom"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
)

// MultiConfig tunes a MultiStream beyond the tracer's Config defaults.
// The zero value takes every default: retirement per the tracer's
// RetireAfter/RetireMargin, no recording.
type MultiConfig struct {
	// RetireAfter overrides the tracer's Config.RetireAfter (minimum
	// usable samples before a hypothesis may be retired); 0 inherits.
	RetireAfter int
	// RetireMargin overrides the tracer's Config.RetireMargin (mean-vote
	// gap to the leader at which a trailing hypothesis retires); 0
	// inherits, negative disables retirement for this stream.
	RetireMargin float64
	// SwitchMargin overrides the tracer's Config.SwitchMargin (election
	// hysteresis); 0 inherits, negative selects the strict argmax.
	SwitchMargin float64
	// MaxHypotheses overrides the tracer's Config.MaxHypotheses (the
	// post-decision-window active-set cap); 0 inherits, negative
	// removes the cap.
	MaxHypotheses int
	// Record retains every hypothesis's full trajectory and vote record
	// so Results can materialize the batch outcome. Batch tracing sets
	// it; live trackers normally leave it off to keep per-tag memory
	// bounded by hypothesis count, not stream length.
	Record bool
}

// hypothesis is one candidate initial position's lobe-locked stream state.
type hypothesis struct {
	initial  vote.Candidate
	states   []pairState
	pos      geom.Vec2
	total    float64
	count    int
	evals    int
	lastVote float64
	retired  bool
	// nearLeader counts consecutive samples this hypothesis's position
	// has coincided with the leader's (the duplicate-merge detector).
	nearLeader int
	// points and votes are populated only in Record mode.
	points []traj.Point
	votes  []float64
}

// Step is one MultiStream advance: the current leader's new position and
// the hypothesis-set signals around it.
type Step struct {
	// Point is the leader's new position estimate.
	Point traj.Point
	// Vote is the leader's total pair vote at Point (≤ 0, nearer 0 is
	// better).
	Vote float64
	// MeanVote is the leader's running mean vote — the live confidence
	// signal (it collapses when tracking is lost, Fig. 10f).
	MeanVote float64
	// Leader indexes the leading hypothesis (the stream's candidate
	// order).
	Leader int
	// Switched reports that the leadership changed at this sample: the
	// paper's over-time disambiguation selecting a different candidate.
	Switched bool
	// Active is the number of unretired hypotheses after this sample.
	Active int
}

// MultiStream advances a set of per-candidate lobe-locked streams
// sample-by-sample — the incremental multi-hypothesis core of §5.2. The
// batch pipeline replays a full sample slice through it; the live tracker
// pushes one sample per sweep. Both run exactly this code, so batch
// results are byte-identical to a streaming replay of the same samples.
//
// Leadership follows the running mean vote (the §5.2 selection rule
// applied continuously); hypotheses whose vote record collapses relative
// to the leader are retired (Fig. 10f) and stop consuming search work.
// Like Stream, a MultiStream is confined to a single goroutine.
type MultiStream struct {
	tr          *Tracer
	cfg         MultiConfig
	sc          *vote.Scratch
	hyps        []hypothesis
	leader      int
	emitted     bool
	switches    int
	retirements int
}

// NewMultiStream is NewMultiStreamWith with a private scratch.
func (tr *Tracer) NewMultiStream(cands []vote.Candidate, first Sample, cfg MultiConfig) (*MultiStream, error) {
	return tr.NewMultiStreamWith(nil, cands, first, cfg)
}

// NewMultiStreamWith seeds one lobe-locked hypothesis per candidate
// against the first sample. Like the single-hypothesis stream, the first
// sample only initialises lock state; Push it again to trace it.
// Overrides displace every hypothesis's initial lobe locks (the Fig. 7
// experiment). A nil scratch allocates a private one; the scratch is
// confined to the stream's goroutine and never influences results.
func (tr *Tracer) NewMultiStreamWith(sc *vote.Scratch, cands []vote.Candidate, first Sample, cfg MultiConfig, overrides ...LobeOverride) (*MultiStream, error) {
	if len(cands) == 0 {
		return nil, errors.New("tracing: no candidate initial positions")
	}
	if cfg.RetireAfter <= 0 {
		cfg.RetireAfter = tr.cfg.RetireAfter
	}
	if cfg.RetireMargin == 0 {
		cfg.RetireMargin = tr.cfg.RetireMargin
	}
	if cfg.SwitchMargin == 0 {
		cfg.SwitchMargin = tr.cfg.SwitchMargin
	}
	if cfg.SwitchMargin < 0 {
		cfg.SwitchMargin = 0
	}
	if cfg.MaxHypotheses == 0 {
		cfg.MaxHypotheses = tr.cfg.MaxHypotheses
	}
	if sc == nil {
		sc = vote.NewScratch()
	}
	ms := &MultiStream{tr: tr, cfg: cfg, sc: sc, hyps: make([]hypothesis, len(cands))}
	for hi := range cands {
		h := &ms.hyps[hi]
		h.initial = cands[hi]
		h.states = make([]pairState, len(tr.pairs))
		init3 := tr.cfg.Plane.To3D(cands[hi].Pos)
		observed := 0
		for i, p := range tr.pairs {
			h.states[i].pair = p
			if t, ok := vote.PairTurns(p, first.Phase); ok {
				h.states[i].turns = t
				h.states[i].k = p.NearestLobe(init3, t)
				h.states[i].seen = true
				observed++
			}
		}
		if observed < tr.cfg.MinPairs {
			return nil, fmt.Errorf("tracing: only %d pairs observed at start, need ≥%d", observed, tr.cfg.MinPairs)
		}
		for _, ov := range overrides {
			if ov.PairIndex < 0 || ov.PairIndex >= len(h.states) {
				return nil, fmt.Errorf("tracing: override pair index %d out of range", ov.PairIndex)
			}
			h.states[ov.PairIndex].k += ov.DeltaK
		}
		h.pos = tr.cfg.Region.Clip(cands[hi].Pos)
	}
	return ms, nil
}

// Push consumes one sample, advancing every active hypothesis and
// re-electing the leader. ok is false when the sample was skipped for
// reply loss (no hypothesis could advance).
func (ms *MultiStream) Push(sample Sample) (step Step, ok bool) {
	advanced := false
	for hi := range ms.hyps {
		h := &ms.hyps[hi]
		if h.retired {
			continue
		}
		active := ms.tr.update(h.states, sample.Phase, h.pos)
		if active < ms.tr.cfg.MinPairs {
			continue // reply loss: hold position until pairs return
		}
		var evals int
		h.pos, evals = ms.tr.step(h.states, h.pos, ms.sc)
		h.evals += evals
		v := ms.tr.totalFixedVote(h.states, h.pos)
		h.total += v
		h.count++
		h.lastVote = v
		if ms.cfg.Record {
			h.points = append(h.points, traj.Point{T: sample.T, Pos: h.pos})
			h.votes = append(h.votes, v)
		}
		advanced = true
	}
	if !advanced {
		return Step{}, false
	}
	switched := ms.elect()
	ms.retire()
	lead := &ms.hyps[ms.leader]
	return Step{
		Point:    traj.Point{T: sample.T, Pos: lead.pos},
		Vote:     lead.lastVote,
		MeanVote: lead.mean(),
		Leader:   ms.leader,
		Switched: switched,
		Active:   ms.Active(),
	}, true
}

// mean is the hypothesis's running mean vote (0 before any sample) — the
// quantity §5.2's selection rule compares.
func (h *hypothesis) mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.total / float64(h.count)
}

// elect re-picks the leader among active hypotheses by mean vote:
// strictly-greater wins, ties keep the earlier candidate. A sitting
// leader holds office until a challenger beats it by SwitchMargin — the
// hysteresis that keeps near-equivalent hypotheses (nearby lobes, whose
// means differ only by noise) from flapping the live cursor, while a
// genuinely collapsing leader (Fig. 10f) is still deposed decisively.
// The same sticky rule runs in batch, so both schedulers crown the same
// winner. Returns whether leadership changed.
func (ms *MultiStream) elect() bool {
	best := -1
	for hi := range ms.hyps {
		h := &ms.hyps[hi]
		if h.retired || h.count == 0 {
			continue
		}
		if best == -1 || h.mean() > ms.hyps[best].mean() {
			best = hi
		}
	}
	if best == -1 {
		return false
	}
	// The hypothesis set starts with the positioner's ranking: candidate
	// 0 (its best) sits as leader from the first sample, and the
	// hysteresis applies to the very first election too — one-sample
	// trace means are indistinct, so the positioner's ordering breaks
	// the tie until trace evidence is decisive.
	if best != ms.leader {
		lead := &ms.hyps[ms.leader]
		if !lead.retired && lead.count > 0 && ms.hyps[best].mean()-lead.mean() <= ms.cfg.SwitchMargin {
			best = ms.leader // challenger not decisively better: hold
		}
	}
	switched := ms.emitted && best != ms.leader
	if switched {
		ms.switches++
	}
	ms.leader = best
	ms.emitted = true
	return switched
}

// mergeAfter is how many consecutive leader-coincident samples retire a
// duplicate hypothesis. Candidates seeded near the true position lock
// the same lobes and converge onto the leader's trajectory within a few
// sweeps; once pinned to it they carry no disambiguation information
// and only multiply per-sweep search cost.
const mergeAfter = 4

// retire drops hypotheses that can no longer inform the selection. Two
// cases: a vote record collapsed relative to the leader — RetireAfter
// usable samples in, a mean vote more than RetireMargin below the
// leader's means the locked lobes stopped intersecting coherently
// (Fig. 10f) and the candidate cannot win — and a duplicate whose
// trajectory has converged onto the leader's (within the tracer's fine
// search step for mergeAfter consecutive samples). The leader itself is
// never retired, so at least one hypothesis survives.
func (ms *MultiStream) retire() {
	if ms.cfg.RetireMargin < 0 {
		return
	}
	lead := &ms.hyps[ms.leader]
	leadMean := lead.mean()
	for hi := range ms.hyps {
		h := &ms.hyps[hi]
		if hi == ms.leader || h.retired {
			continue
		}
		if h.count >= ms.cfg.RetireAfter && leadMean-h.mean() > ms.cfg.RetireMargin {
			h.retired = true
			ms.retirements++
			continue
		}
		if h.pos.Dist(lead.pos) <= ms.tr.cfg.FineStep {
			h.nearLeader++
		} else {
			h.nearLeader = 0
		}
		if h.nearLeader >= mergeAfter {
			h.retired = true
			ms.retirements++
		}
	}
	// Decision window over: cap the active set to the leader plus the
	// best challengers. Shape-equivalent nearby-lobe candidates keep
	// healthy vote records forever; carrying more than MaxHypotheses of
	// them multiplies per-sweep search cost without adding information.
	if ms.cfg.MaxHypotheses > 0 && lead.count >= ms.cfg.RetireAfter {
		ms.capActive()
	}
}

// capActive retires the worst active hypotheses beyond MaxHypotheses,
// ranked by mean vote (ties keep the earlier candidate). The leader is
// always kept.
func (ms *MultiStream) capActive() {
	active := 0
	for hi := range ms.hyps {
		if !ms.hyps[hi].retired {
			active++
		}
	}
	for active > ms.cfg.MaxHypotheses {
		worst := -1
		for hi := range ms.hyps {
			h := &ms.hyps[hi]
			if hi == ms.leader || h.retired {
				continue
			}
			if worst == -1 || h.mean() <= ms.hyps[worst].mean() {
				worst = hi // ties retire the later candidate
			}
		}
		if worst == -1 {
			return
		}
		ms.hyps[worst].retired = true
		ms.retirements++
		active--
	}
}

// Leader returns the current leading hypothesis index.
func (ms *MultiStream) Leader() int { return ms.leader }

// LeaderPosition returns the leader's current position estimate.
func (ms *MultiStream) LeaderPosition() geom.Vec2 { return ms.hyps[ms.leader].pos }

// LeaderMeanVote returns the leader's running mean vote (0 before any
// sample) — the stream's confidence signal.
func (ms *MultiStream) LeaderMeanVote() float64 { return ms.hyps[ms.leader].mean() }

// Active returns how many hypotheses are still advancing.
func (ms *MultiStream) Active() int {
	n := 0
	for hi := range ms.hyps {
		if !ms.hyps[hi].retired {
			n++
		}
	}
	return n
}

// Hypotheses returns the total hypothesis count (active + retired).
func (ms *MultiStream) Hypotheses() int { return len(ms.hyps) }

// Switches returns how many times leadership has changed.
func (ms *MultiStream) Switches() int { return ms.switches }

// Retirements returns how many hypotheses have been retired.
func (ms *MultiStream) Retirements() int { return ms.retirements }

// SearchEvals returns the cumulative vicinity-search evaluation count
// across all hypotheses — the multi-hypothesis counterpart of
// Result.SearchEvals.
func (ms *MultiStream) SearchEvals() int {
	n := 0
	for hi := range ms.hyps {
		n += ms.hyps[hi].evals
	}
	return n
}

// HypothesisStat is one hypothesis's public state snapshot.
type HypothesisStat struct {
	// Initial is the candidate this hypothesis was seeded from.
	Initial vote.Candidate
	// Samples is how many usable samples it has traced.
	Samples int
	// MeanVote is its running mean vote (frozen at retirement).
	MeanVote float64
	// Retired reports whether the hypothesis has been retired.
	Retired bool
}

// Stats snapshots every hypothesis, in candidate order.
func (ms *MultiStream) Stats() []HypothesisStat {
	out := make([]HypothesisStat, len(ms.hyps))
	for hi := range ms.hyps {
		h := &ms.hyps[hi]
		out[hi] = HypothesisStat{Initial: h.initial, Samples: h.count, MeanVote: h.mean(), Retired: h.retired}
	}
	return out
}

// Results materializes every hypothesis's batch Result (Record mode
// only), aligned with the returned candidates; best indexes the leader.
// Hypotheses that never traced a usable sample are dropped, matching the
// batch pipeline's handling of failed candidate traces; when none traced
// anything the stream-wide reply-loss error is returned.
func (ms *MultiStream) Results() (all []Result, cands []vote.Candidate, best int, err error) {
	if !ms.cfg.Record {
		return nil, nil, -1, errors.New("tracing: MultiStream results require MultiConfig.Record")
	}
	best = -1
	for hi := range ms.hyps {
		h := &ms.hyps[hi]
		if h.count == 0 {
			continue
		}
		locked := make([]int, len(h.states))
		for i := range h.states {
			locked[i] = h.states[i].k
		}
		all = append(all, Result{
			Trajectory:  traj.Trajectory{Points: h.points},
			Votes:       h.votes,
			TotalVote:   h.total,
			LockedLobes: locked,
			SearchEvals: h.evals,
			Retired:     h.retired,
		})
		cands = append(cands, h.initial)
		if hi == ms.leader {
			best = len(all) - 1
		}
	}
	if len(all) == 0 {
		return nil, nil, -1, errors.New("tracing: no usable samples (too much reply loss)")
	}
	if best == -1 {
		// The leader was dropped (cannot happen: a leader has count > 0),
		// but keep the selection rule total anyway.
		best = 0
		for i := range all {
			if meanVote(all[i]) > meanVote(all[best]) {
				best = i
			}
		}
	}
	return all, cands, best, nil
}
