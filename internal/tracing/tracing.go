// Package tracing implements RF-IDraw's trajectory tracing algorithm (§5.2
// of the paper). Starting from a candidate initial position, it:
//
//  1. locks each antenna pair onto the grating lobe closest to that
//     position (fixing the integer k of Eq. 2);
//  2. unwraps each pair's phase-difference track over time so the locked
//     lobe rotates continuously instead of jumping at 2π boundaries;
//  3. estimates each next position by maximising the total fixed-lobe vote
//     over a vicinity of the current position;
//  4. accumulates the total vote along the trajectory, which the caller
//     uses to pick the best candidate: wrong initial positions produce
//     lobes that stop intersecting coherently and their vote collapses
//     (Fig. 10f).
//
// The incremental multi-hypothesis core is MultiStream: one lobe-locked
// stream per candidate initial position, advanced sample-by-sample with a
// running-mean-vote leader and per-hypothesis retirement. Everything else
// is a scheduler over it — batch Trace replays a sample slice through a
// single-candidate MultiStream, Stream wraps one for live single-candidate
// use, and the batch/live pipelines in internal/core and internal/realtime
// replay the multi-candidate form.
//
// # Concurrency
//
// A Tracer is immutable after construction; Trace allocates all per-trace
// state per call, so one Tracer may be shared by any number of goroutines
// — the multi-tag engine's shards trace different tags through one Tracer
// concurrently. A Stream or MultiStream, by contrast, carries mutable
// lobe-lock and unwrap state for one live trace and must be confined to a
// single goroutine.
package tracing

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rfidraw/internal/antenna"
	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
)

// Sample is one merged observation instant: the wrapped phase of every
// antenna that was heard around time T.
type Sample struct {
	T     time.Duration
	Phase vote.Observations
}

// Config tunes the tracer.
type Config struct {
	// Plane is the writing plane positions live in.
	Plane geom.Plane
	// Region clips the search; estimates never leave it.
	Region geom.Rect
	// VicinityRadius bounds how far the estimate may move per sample
	// (m). Default 0.08 — a hand moving ≤ 3 m/s at 25 ms sweeps.
	VicinityRadius float64
	// VicinityStep is the first-level vicinity grid step (m).
	// Default 0.01.
	VicinityStep float64
	// FineStep is the final refinement step (m). Default 0.002.
	FineStep float64
	// CoarseStep is the hierarchical search's coarse lattice spacing (m);
	// its 3×3 window expands toward VicinityRadius only while the vote
	// maximum sits on the window border. Default 2 × VicinityStep.
	CoarseStep float64
	// MinPairs is the minimum number of observable pairs per sample;
	// samples with fewer are skipped (reply loss). Default 4.
	MinPairs int
	// Search picks the per-sample vicinity strategy: hierarchical
	// coarse-to-fine (default) or the dense full-vicinity scan.
	Search vote.SearchConfig
	// RetireAfter is the multi-hypothesis decision window, in usable
	// samples: before it no hypothesis is retired for its vote record,
	// after it collapsed records retire and MaxHypotheses applies.
	// Default 16.
	RetireAfter int
	// MaxHypotheses caps how many hypotheses stay active once the
	// decision window has passed: the leader plus the best challengers
	// by mean vote. Steady-state tracking cost is proportional to the
	// active set, and past the first few dozen samples extra candidates
	// are insurance, not coverage (wrong ones have either collapsed or
	// are shape-equivalent nearby lobes). Default 2; negative removes
	// the cap.
	MaxHypotheses int
	// RetireMargin is the mean-vote gap below the leader at which a
	// trailing hypothesis is retired (votes are ≤ 0, so the gap is
	// positive). Default 0.5 — far beyond the spread healthy candidates
	// show, so only collapsed vote records (Fig. 10f) retire. Negative
	// disables retirement.
	RetireMargin float64
	// SwitchMargin is the election hysteresis: a challenger must beat
	// the current leader's mean vote by this much to take leadership.
	// Near-equivalent hypotheses (nearby lobes, Fig. 7) have mean votes
	// within noise of each other, and flapping between them would inject
	// position jumps into the live trajectory; a decisive gap only opens
	// when the leader's vote record is actually collapsing. Default
	// 0.02; negative selects the strict argmax.
	SwitchMargin float64
}

func (c Config) withDefaults() Config {
	if c.VicinityRadius <= 0 {
		c.VicinityRadius = 0.08
	}
	if c.VicinityStep <= 0 {
		c.VicinityStep = 0.01
	}
	if c.FineStep <= 0 {
		c.FineStep = 0.002
	}
	if c.CoarseStep <= 0 {
		c.CoarseStep = 2 * c.VicinityStep
	}
	if c.MinPairs <= 0 {
		c.MinPairs = 4
	}
	if c.RetireAfter <= 0 {
		c.RetireAfter = 16
	}
	if c.MaxHypotheses == 0 {
		c.MaxHypotheses = 2
	}
	if c.RetireMargin == 0 {
		c.RetireMargin = 0.5
	}
	if c.SwitchMargin == 0 {
		c.SwitchMargin = 0.02
	}
	return c
}

// trackerTopK is the default branch width for the steady-state vicinity
// search: with every pair locked onto one lobe the vote surface near the
// last fix is unimodal, so two branches are insurance, not coverage.
const trackerTopK = 2

// Tracer traces trajectories for a fixed set of antenna pairs.
type Tracer struct {
	pairs []antenna.Pair
	cfg   Config
	// scratch pools reusable search state for Trace calls that are not
	// handed an explicit scratch; the engine's shards pass their own.
	scratch sync.Pool
}

// NewTracer builds a tracer over the given pairs (normally the
// deployment's AllPairs).
func NewTracer(pairs []antenna.Pair, cfg Config) (*Tracer, error) {
	if len(pairs) < 3 {
		return nil, fmt.Errorf("tracing: need ≥3 pairs for an over-constrained system, got %d", len(pairs))
	}
	cfg = cfg.withDefaults()
	if cfg.Region.Width() <= 0 || cfg.Region.Height() <= 0 {
		return nil, fmt.Errorf("tracing: degenerate region %+v", cfg.Region)
	}
	tr := &Tracer{pairs: pairs, cfg: cfg}
	tr.scratch.New = func() any { return vote.NewScratch() }
	return tr, nil
}

// Config returns the effective (defaulted) configuration.
func (tr *Tracer) Config() Config { return tr.cfg }

// pairState is the per-pair tracking state: the locked lobe and the
// unwrapped phase-difference track.
type pairState struct {
	pair antenna.Pair
	// k is the locked grating-lobe index, fixed at the initial position
	// (§5.2: "identifies the grating lobe ... closest to this position,
	// and keeps tracking the continuous rotation of this grating lobe").
	k int
	// turns is the unwrapped phase-difference track in turns.
	turns float64
	// seen marks whether the pair has ever been observed.
	seen bool
}

// Result is one traced trajectory with its vote record.
type Result struct {
	// Trajectory is the reconstructed trace.
	Trajectory traj.Trajectory
	// Votes is the total vote at every traced sample (Fig. 10f's curve).
	Votes []float64
	// TotalVote is the sum of Votes — the trajectory-selection score.
	TotalVote float64
	// LockedLobes maps pair index → the lobe each pair was locked to.
	LockedLobes []int
	// SearchEvals is how many vote-surface evaluations the per-sample
	// vicinity searches spent over the whole trace; SearchEvals divided
	// by len(Votes) is the steady-state grid-evaluations-per-sample
	// metric the benchmark suite tracks.
	SearchEvals int
	// Retired reports the hypothesis was retired before the stream ended
	// (its vote record collapsed, Fig. 10f); the trajectory is truncated
	// at the retirement sample.
	Retired bool
}

// LobeOverride forces a pair onto a lobe offset from the nearest one; the
// Fig. 7 experiment uses it to demonstrate wrong-lobe shape resilience.
type LobeOverride struct {
	// PairIndex indexes the tracer's pair list.
	PairIndex int
	// DeltaK is added to the locked lobe index.
	DeltaK int
}

// Trace reconstructs a trajectory from samples, starting at the candidate
// initial position. Overrides, if any, displace the initial lobe locks.
func (tr *Tracer) Trace(initial geom.Vec2, samples []Sample, overrides ...LobeOverride) (Result, error) {
	return tr.TraceWith(nil, initial, samples, overrides...)
}

// TraceWith is Trace with an explicit reusable search scratch, for callers
// that pin one per worker (the engine's shards). A nil scratch borrows
// from the tracer's internal pool. The scratch never influences results;
// it only avoids allocation.
//
// Trace is literally a replay of the streaming path: the samples are
// pushed one by one through a single-candidate MultiStream and its
// recorded result returned, so batch and live tracing cannot diverge.
func (tr *Tracer) TraceWith(sc *vote.Scratch, initial geom.Vec2, samples []Sample, overrides ...LobeOverride) (Result, error) {
	if len(samples) == 0 {
		return Result{}, errors.New("tracing: no samples")
	}
	if sc == nil {
		sc = tr.scratch.Get().(*vote.Scratch)
		defer tr.scratch.Put(sc)
	}
	ms, err := tr.NewMultiStreamWith(sc, []vote.Candidate{{Pos: initial}}, samples[0], MultiConfig{Record: true}, overrides...)
	if err != nil {
		return Result{}, err
	}
	for _, s := range samples {
		ms.Push(s)
	}
	all, _, _, err := ms.Results()
	if err != nil {
		return Result{}, err
	}
	return all[0], nil
}

// update advances each pair's unwrapped phase track with the new
// observations and returns the number of pairs observable this sample.
// Pairs appearing for the first time mid-trace are locked against the
// current position estimate.
func (tr *Tracer) update(states []pairState, obs vote.Observations, cur geom.Vec2) int {
	cur3 := tr.cfg.Plane.To3D(cur)
	active := 0
	for i := range states {
		st := &states[i]
		t, ok := vote.PairTurns(st.pair, obs)
		if !ok {
			continue
		}
		if !st.seen {
			st.turns = t
			st.k = st.pair.NearestLobe(cur3, t)
			st.seen = true
		} else {
			// Unwrap in turns: move to the congruent value nearest
			// the previous track point.
			st.turns = phys.UnwrapNext(st.turns*phys.TwoPi, t*phys.TwoPi) / phys.TwoPi
		}
		active++
	}
	return active
}

// totalFixedVote sums every seen pair's fixed-lobe vote at a position.
func (tr *Tracer) totalFixedVote(states []pairState, pos geom.Vec2) float64 {
	p3 := tr.cfg.Plane.To3D(pos)
	var sum float64
	for i := range states {
		if !states[i].seen {
			continue
		}
		sum += states[i].pair.VoteFixed(p3, states[i].turns, states[i].k)
	}
	return sum
}

// step finds the position in the vicinity of cur maximising the total
// fixed-lobe vote and returns it with the number of vote evaluations
// spent. In hierarchical mode (the default) the lobe lock seeds the
// refinement window: the search starts as a 3×3 coarse lattice around the
// last fix and expands toward VicinityRadius only while the maximum sits
// on the window border, so a steady-state sample costs a handful of
// evaluations instead of the full vicinity lattice. Dense mode is the
// original exhaustive scan plus shrinking pattern search.
func (tr *Tracer) step(states []pairState, cur geom.Vec2, sc *vote.Scratch) (geom.Vec2, int) {
	if tr.cfg.Search.Mode == vote.SearchHierarchical {
		pos, _, evals := vote.HierarchicalSearch(
			tr.cfg.Search, tr.cfg.Region, cur,
			tr.cfg.VicinityRadius, tr.cfg.CoarseStep, tr.cfg.FineStep,
			trackerTopK, sc,
			func(p geom.Vec2) float64 { return tr.totalFixedVote(states, p) },
		)
		return pos, evals
	}
	best := cur
	bestV := tr.totalFixedVote(states, cur)
	evals := 1
	r := tr.cfg.VicinityRadius
	s := tr.cfg.VicinityStep
	for dx := -r; dx <= r+1e-12; dx += s {
		for dz := -r; dz <= r+1e-12; dz += s {
			cand := tr.cfg.Region.Clip(geom.Vec2{X: cur.X + dx, Z: cur.Z + dz})
			evals++
			if v := tr.totalFixedVote(states, cand); v > bestV {
				bestV, best = v, cand
			}
		}
	}
	// Refine with a shrinking 3×3 pattern search down to FineStep.
	step := s / 2
	for step >= tr.cfg.FineStep {
		improved := false
		for dx := -1; dx <= 1; dx++ {
			for dz := -1; dz <= 1; dz++ {
				if dx == 0 && dz == 0 {
					continue
				}
				cand := tr.cfg.Region.Clip(geom.Vec2{X: best.X + float64(dx)*step, Z: best.Z + float64(dz)*step})
				evals++
				if v := tr.totalFixedVote(states, cand); v > bestV {
					bestV, best = v, cand
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return best, evals
}

// Stream incrementally extends a single candidate's trace: the online
// variant of Trace for live tracking, a thin wrapper over a
// single-hypothesis MultiStream. Lobe locks are fixed at creation; each
// Push consumes one sample and, when enough pairs are observable,
// produces the next position.
type Stream struct {
	ms *MultiStream
}

// NewStream locks pair lobes against the initial position using the first
// sample and returns a ready stream. The first sample only initialises
// state; it does not emit a position (Push it again if desired).
func (tr *Tracer) NewStream(initial geom.Vec2, first Sample) (*Stream, error) {
	return tr.NewStreamWith(nil, initial, first)
}

// NewStreamWith is NewStream with an explicit reusable search scratch; the
// engine's shards pass their per-shard one so every live tag on a shard
// shares it. A nil scratch allocates a private one. Like the stream
// itself, the scratch is confined to the stream's goroutine.
func (tr *Tracer) NewStreamWith(sc *vote.Scratch, initial geom.Vec2, first Sample) (*Stream, error) {
	ms, err := tr.NewMultiStreamWith(sc, []vote.Candidate{{Pos: initial}}, first, MultiConfig{})
	if err != nil {
		return nil, err
	}
	return &Stream{ms: ms}, nil
}

// Push consumes one sample. ok is false when the sample was skipped for
// reply loss; otherwise point is the new position estimate and vote the
// total pair vote there.
func (s *Stream) Push(sample Sample) (point traj.Point, vote float64, ok bool) {
	st, ok := s.ms.Push(sample)
	if !ok {
		return traj.Point{}, 0, false
	}
	return st.Point, st.Vote, true
}

// SearchEvals returns the cumulative vicinity-search evaluation count —
// the live counterpart of Result.SearchEvals.
func (s *Stream) SearchEvals() int { return s.ms.SearchEvals() }

// Position returns the current estimate.
func (s *Stream) Position() geom.Vec2 { return s.ms.LeaderPosition() }

// MeanVote returns the stream's mean vote so far (0 before any sample).
func (s *Stream) MeanVote() float64 { return s.ms.LeaderMeanVote() }

func meanVote(r Result) float64 {
	if len(r.Votes) == 0 {
		return 0
	}
	return r.TotalVote / float64(len(r.Votes))
}
