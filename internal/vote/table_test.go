package vote

import (
	"math"
	"sync"
	"testing"

	"rfidraw/internal/antenna"
	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
)

func testPairs(t *testing.T) []antenna.Pair {
	t.Helper()
	carrier := phys.DefaultCarrier()
	lambda := carrier.WavelengthM
	mk := func(id1, id2 int, p1, p2 geom.Vec3) antenna.Pair {
		p, err := antenna.NewPair(
			antenna.Antenna{ID: id1, Pos: p1},
			antenna.Antenna{ID: id2, Pos: p2},
			carrier, phys.Backscatter,
		)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	return []antenna.Pair{
		mk(1, 2, geom.Vec3{}, geom.Vec3{X: lambda / 4}),
		mk(3, 4, geom.Vec3{X: 0.5}, geom.Vec3{X: 0.5 + 8*lambda}),
		mk(5, 6, geom.Vec3{Z: 0.3}, geom.Vec3{X: 2 * lambda, Z: 0.3}),
	}
}

// TestSteeringTableMatchesDirect checks the precomputed fast path is
// bit-identical to evaluating antenna.Pair.VoteFree point by point: the
// concurrent engine's determinism guarantee rests on this.
func TestSteeringTableMatchesDirect(t *testing.T) {
	pairs := testPairs(t)
	plane := geom.Plane{Y: 2}
	region := geom.Rect{Min: geom.Vec2{X: -0.2, Z: 0}, Max: geom.Vec2{X: 1.4, Z: 1.2}}
	grid, err := NewGrid(region, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	table := NewSteeringTable(pairs, grid, plane)
	if table.Pairs() != len(pairs) {
		t.Fatalf("table has %d pair rows, want %d", table.Pairs(), len(pairs))
	}

	measured := []float64{0.13, -0.37, 0.02}
	score := make([]float64, grid.Len())
	for pi := range pairs {
		if err := table.AccumulateVotes(pi, measured[pi], score); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < grid.Len(); i++ {
		var want float64
		p3 := plane.To3D(grid.At(i))
		for pi, p := range pairs {
			want += p.VoteFree(p3, measured[pi])
		}
		if score[i] != want {
			t.Fatalf("point %d: table vote %v != direct vote %v (must be bit-identical)", i, score[i], want)
		}
	}
}

func TestSteeringTableScoreLengthMismatch(t *testing.T) {
	pairs := testPairs(t)
	grid, err := NewGrid(geom.Rect{Max: geom.Vec2{X: 1, Z: 1}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	table := NewSteeringTable(pairs, grid, geom.Plane{Y: 2})
	if err := table.AccumulateVotes(0, 0, make([]float64, 3)); err == nil {
		t.Fatal("want error for mismatched score buffer length")
	}
}

// TestPositionerConcurrentCandidates hammers one shared Positioner from
// many goroutines (run under -race) and checks every goroutine gets the
// same answer — the engine shares one Positioner across its shards.
func TestPositionerConcurrentCandidates(t *testing.T) {
	pairs := testPairs(t)
	plane := geom.Plane{Y: 2}
	cfg := Config{
		Plane:  plane,
		Region: geom.Rect{Min: geom.Vec2{X: -0.2, Z: 0}, Max: geom.Vec2{X: 1.4, Z: 1.2}},
	}
	p, err := NewPositioner([]antenna.Pair{pairs[0], pairs[2]}, pairs[1:2], cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := geom.Vec3{X: 0.7, Y: 2, Z: 0.6}
	obs := Observations{}
	// Synthesise per-antenna phases consistent with src: phase at antenna
	// a is −2π·F·d(a)/λ plus a common offset, so pair differences match.
	for _, pr := range pairs {
		for _, a := range []antenna.Antenna{pr.I, pr.J} {
			d := src.Dist(a.Pos)
			obs[a.ID] = phys.Wrap(-phys.TwoPi * pr.Link.TravelFactor() * d / pr.Carrier.WavelengthM)
		}
	}
	want, err := p.Candidates(obs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				got, err := p.Candidates(obs)
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) != len(want) {
					t.Errorf("got %d candidates, want %d", len(got), len(want))
					return
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("candidate %d: %+v != %+v", i, got[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	best := want[0]
	if math.Abs(best.Pos.X-src.X) > 0.05 || math.Abs(best.Pos.Z-src.Z) > 0.05 {
		t.Fatalf("best candidate %v far from source (%v, %v)", best.Pos, src.X, src.Z)
	}
}
