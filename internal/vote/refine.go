package vote

import (
	"math"
	"sort"

	"rfidraw/internal/geom"
)

// SearchMode selects how the stage-2 vote surface is searched.
type SearchMode int

const (
	// SearchHierarchical is the default coarse-to-fine refinement: vote
	// on the coarse lattice, keep the top-K cells whose vote mass clears
	// the stage-1 threshold, recursively subdivide only those cells down
	// to the fine resolution, and finish with a local quadratic
	// interpolation to sub-cell precision. Cost scales with the ambiguity
	// left after stage-1 voting, not with grid area.
	SearchHierarchical SearchMode = iota
	// SearchDense is the exhaustive strategy the system shipped with:
	// refine every coarse point that clears the stage-1 threshold with a
	// shrinking pattern search (and, in tracing, scan the whole vicinity
	// lattice every sample). Kept as the reference for equivalence tests
	// and regression triage.
	SearchDense
)

// String implements fmt.Stringer.
func (m SearchMode) String() string {
	switch m {
	case SearchHierarchical:
		return "hierarchical"
	case SearchDense:
		return "dense"
	default:
		return "unknown"
	}
}

// SearchConfig tunes the hierarchical coarse-to-fine search. The zero
// value means: hierarchical mode, default top-K, subdivide until the fine
// resolution is reached.
type SearchConfig struct {
	// Mode picks the strategy; the zero value is SearchHierarchical.
	Mode SearchMode
	// TopK is how many coarse cells (for the positioner) or refinement
	// branches (for tracing) survive each selection step. Callers have
	// their own defaults: 4 for one-shot positioning, 2 for steady-state
	// tracking, where lobe-lock makes the vicinity surface unimodal.
	TopK int
	// Levels caps how many subdivision levels run; 0 subdivides until
	// the fine resolution is reached.
	Levels int
}

func (c SearchConfig) topK(def int) int {
	if c.TopK > 0 {
		return c.TopK
	}
	return def
}

// maxLevels converts the Levels knob into subdivide's level cap, with
// already-consumed levels (e.g. table-descent levels) subtracted. -1 means
// unbounded (subdivide until the fine resolution).
func (c SearchConfig) maxLevels(consumed int) int {
	if c.Levels <= 0 {
		return -1
	}
	rem := c.Levels - consumed
	if rem < 0 {
		rem = 0
	}
	return rem
}

// scoredPoint is one evaluated search point.
type scoredPoint struct {
	pos   geom.Vec2
	score float64
}

// Scratch is the reusable per-goroutine search state: the stage-1 score
// buffer, the evaluation memo, the candidate pools and the sweep-merge /
// phase-averaging observation buffers. It exists so the hot path allocates
// nothing once warm — the engine keeps one per worker shard (from a
// sync.Pool), streams keep one per live trace. A Scratch is NOT safe for
// concurrent use; results never depend on its prior content.
type Scratch struct {
	// stage1 is the positioner's coarse-lattice score buffer.
	stage1 []float64
	// cache memoises eval results by exact position bits within one
	// search; reset at every search start.
	cache map[[2]uint64]float64
	// pool accumulates every evaluated point of one search; top-K
	// selection always reads this slice (never the map) so results are
	// deterministic.
	pool []scoredPoint
	// cells and cellsNext are the table-descent frontiers.
	cells, cellsNext []tableCell
	// obs is the reusable observation map handed out by ObsBuf.
	obs Observations
	// phasor is the reusable per-antenna phasor accumulator (PhasorBuf).
	phasor map[int]complex128
}

// NewScratch builds an empty search scratch.
func NewScratch() *Scratch {
	return &Scratch{cache: make(map[[2]uint64]float64)}
}

// stage1Buf returns the stage-1 score buffer sized to n points.
func (s *Scratch) stage1Buf(n int) []float64 {
	if cap(s.stage1) < n {
		s.stage1 = make([]float64, n)
	}
	return s.stage1[:n]
}

// ObsBuf returns the scratch's observation buffer, cleared. Sweep merging
// and phase averaging rebuild a transient Observations every sweep on the
// streaming hot path; borrowing this buffer keeps that allocation-free.
// The buffer is invalidated by the next ObsBuf call on the same scratch,
// so callers that retain a sample (warmup buffering) must clone it.
func (s *Scratch) ObsBuf() Observations {
	if s.obs == nil {
		s.obs = make(Observations)
	}
	clear(s.obs)
	return s.obs
}

// PhasorBuf returns the scratch's per-antenna phasor accumulator, cleared
// — the coherent phase-averaging counterpart of ObsBuf, with the same
// invalidation rule.
func (s *Scratch) PhasorBuf() map[int]complex128 {
	if s.phasor == nil {
		s.phasor = make(map[int]complex128)
	}
	clear(s.phasor)
	return s.phasor
}

// resetSearch clears the per-search state.
func (s *Scratch) resetSearch() {
	if s.cache == nil {
		s.cache = make(map[[2]uint64]float64)
	}
	clear(s.cache)
	s.pool = s.pool[:0]
}

// searcher runs one hierarchical search over an objective function.
type searcher struct {
	sc     *Scratch
	region geom.Rect
	// quant is the memo's position quantum. Every search point lies on a
	// dyadic lattice around the seed, but the same lattice point reached
	// through different float arithmetic differs by ulps; keying on
	// round(coord/quant) with quant at a quarter of the finest step
	// (well below the minimum lattice spacing) dedups those exactly.
	quant float64
	eval  func(geom.Vec2) float64
	evals int
}

func (s *searcher) key(p geom.Vec2) [2]uint64 {
	return [2]uint64{
		uint64(int64(math.Round(p.X / s.quant))),
		uint64(int64(math.Round(p.Z / s.quant))),
	}
}

// visit clips p into the region, evaluates it once (memoised) and adds it
// to the candidate pool.
func (s *searcher) visit(p geom.Vec2) {
	p = s.region.Clip(p)
	k := s.key(p)
	if _, ok := s.sc.cache[k]; ok {
		return
	}
	v := s.eval(p)
	s.evals++
	s.sc.cache[k] = v
	s.sc.pool = append(s.sc.pool, scoredPoint{pos: p, score: v})
}

// score returns the memoised score of an already-visited point, or
// evaluates and records it.
func (s *searcher) score(p geom.Vec2) float64 {
	p = s.region.Clip(p)
	k := s.key(p)
	if v, ok := s.sc.cache[k]; ok {
		return v
	}
	v := s.eval(p)
	s.evals++
	s.sc.cache[k] = v
	s.sc.pool = append(s.sc.pool, scoredPoint{pos: p, score: v})
	return v
}

// topK sorts the pool best-first (stable, so exact ties keep visit order
// and results stay deterministic) and truncates it to k entries.
func (s *searcher) topK(k int) {
	sort.SliceStable(s.sc.pool, func(a, b int) bool {
		return s.sc.pool[a].score > s.sc.pool[b].score
	})
	if len(s.sc.pool) > k {
		s.sc.pool = s.sc.pool[:k]
	}
}

func (s *searcher) best() scoredPoint {
	b := s.sc.pool[0]
	for _, c := range s.sc.pool[1:] {
		if c.score > b.score {
			b = c
		}
	}
	return b
}

// subdivide runs the coarse-to-fine refinement levels: each level halves
// the step, evaluates the 3×3 neighbourhood of every surviving branch and
// reselects the top-K from everything seen so far. maxLevels < 0 means
// subdivide until fineStep is reached. Returns the last step actually used
// (the quadratic-interpolation scale).
func (s *searcher) subdivide(k int, coarseStep, fineStep float64, maxLevels int) float64 {
	step := coarseStep / 2
	last := coarseStep
	for level := 0; step >= fineStep-1e-12 && (maxLevels < 0 || level < maxLevels); level++ {
		s.topK(k)
		// The pool grows as neighbours are visited; remember how many
		// seeds this level expands so new points seed the next level.
		seeds := len(s.sc.pool)
		for i := 0; i < seeds; i++ {
			c := s.sc.pool[i].pos
			for dx := -1; dx <= 1; dx++ {
				for dz := -1; dz <= 1; dz++ {
					if dx == 0 && dz == 0 {
						continue
					}
					s.visit(geom.Vec2{X: c.X + float64(dx)*step, Z: c.Z + float64(dz)*step})
				}
			}
		}
		last = step
		step /= 2
	}
	return last
}

// quadratic refines the best point to sub-cell precision: it fits a 1-D
// parabola per axis through the three samples at ±h and moves to the
// vertex when the surface is locally concave. The interpolated point is
// evaluated, so the refinement never returns a worse position.
func (s *searcher) quadratic(h float64) {
	b := s.best()
	off := geom.Vec2{}
	for axis := 0; axis < 2; axis++ {
		var lo, hi geom.Vec2
		if axis == 0 {
			lo, hi = geom.Vec2{X: b.pos.X - h, Z: b.pos.Z}, geom.Vec2{X: b.pos.X + h, Z: b.pos.Z}
		} else {
			lo, hi = geom.Vec2{X: b.pos.X, Z: b.pos.Z - h}, geom.Vec2{X: b.pos.X, Z: b.pos.Z + h}
		}
		// Clipping breaks the symmetric stencil; skip the axis at the
		// region border rather than fit a lopsided parabola.
		if s.region.Clip(lo) != lo || s.region.Clip(hi) != hi {
			continue
		}
		fm, fp := s.score(lo), s.score(hi)
		denom := fm - 2*b.score + fp
		if denom >= -1e-18 {
			continue // flat or convex: no interior vertex
		}
		d := h * (fm - fp) / (2 * denom)
		if d > h {
			d = h
		} else if d < -h {
			d = -h
		}
		if axis == 0 {
			off.X = d
		} else {
			off.Z = d
		}
	}
	if off != (geom.Vec2{}) {
		s.visit(b.pos.Add(off))
	}
}

// HierarchicalSearch maximises eval over a window of the given radius
// around seed: a 3×3 coarse lattice that expands ring by ring only while
// the maximum sits on the window border (so a seed near the optimum — the
// lobe-locked steady state — pays for a 3×3, not the whole vicinity),
// followed by top-K coarse-to-fine subdivision down to fineStep and a
// final quadratic interpolation. It returns the best position, its score
// and how many objective evaluations were spent. sc may be nil (a scratch
// is then allocated); defTopK is the branch width used when cfg.TopK is
// unset.
func HierarchicalSearch(cfg SearchConfig, region geom.Rect, seed geom.Vec2, radius, coarseStep, fineStep float64, defTopK int, sc *Scratch, eval func(geom.Vec2) float64) (geom.Vec2, float64, int) {
	if sc == nil {
		sc = NewScratch()
	}
	sc.resetSearch()
	s := &searcher{sc: sc, region: region, quant: fineStep / 4, eval: eval}

	maxRing := int(math.Ceil(radius/coarseStep - 1e-9))
	if maxRing < 1 {
		maxRing = 1
	}
	for dx := -1; dx <= 1; dx++ {
		for dz := -1; dz <= 1; dz++ {
			s.visit(geom.Vec2{X: seed.X + float64(dx)*coarseStep, Z: seed.Z + float64(dz)*coarseStep})
		}
	}
	// Expand the window while the best coarse point sits on its border:
	// the objective is still rising toward the edge, so the optimum is
	// outside the window. Bounded by the vicinity radius.
	for ring := 1; ring < maxRing; ring++ {
		b := s.best().pos
		cheb := math.Max(math.Abs(b.X-seed.X), math.Abs(b.Z-seed.Z))
		if cheb < float64(ring)*coarseStep-1e-9 {
			break
		}
		r := ring + 1
		for i := -r; i <= r; i++ {
			for j := -r; j <= r; j++ {
				if max(abs(i), abs(j)) != r {
					continue
				}
				s.visit(geom.Vec2{X: seed.X + float64(i)*coarseStep, Z: seed.Z + float64(j)*coarseStep})
			}
		}
	}

	h := s.subdivide(cfg.topK(defTopK), coarseStep, fineStep, cfg.maxLevels(0))
	s.quadratic(h)
	b := s.best()
	return b.pos, b.score, s.evals
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// SearchStats summarises one hierarchical positioning call.
type SearchStats struct {
	// Mode is the strategy that ran.
	Mode SearchMode
	// Stage1Points is the coarse-lattice size voted by stage 1.
	Stage1Points int
	// Cells is how many coarse cells cleared the threshold and were
	// refined (in dense mode: every surviving point).
	Cells int
	// GridEvals counts stage-2 vote evaluations — table-lattice lookups
	// and direct evaluations alike; stage-1 lattice votes are reported
	// separately in Stage1Points since they run once per sample in both
	// modes.
	GridEvals int
}

// refineBranch is the branch width kept per subdivision level inside one
// peak group. The wide-pair vote surface is a field of narrow ridges, so
// at coarse sampling a wrong-lobe ridge can transiently outrank the cell
// holding the true peak; four branches absorb that reordering while still
// discarding the bulk of each level's children.
const refineBranch = 4

// descendTable runs one peak group's coarse-to-fine descent through the
// multi-resolution steering table: the group's cells are scored with all
// observed pairs at level 0, then each level scores the 3×3 children of
// the surviving branches at double resolution and keeps the best
// refineBranch. Every score is a table lookup (one subtraction, rounding
// and multiply per pair) — no distance computation. Returns the finest-
// level frontier, best first, and the lookup count.
func (p *Positioner) descendTable(cells []int, po []pairObs, sc *Scratch) ([]tableCell, int) {
	evals := 0
	scoreCell := func(t *SteeringTable, idx int) float64 {
		var v float64
		for _, o := range po {
			v += t.VoteAt(o.idx, idx, o.turns)
		}
		evals++
		return v
	}
	sc.cells = sc.cells[:0]
	t0 := p.multi.Level(0)
	for _, c := range cells {
		sc.cells = append(sc.cells, tableCell{idx: c, score: scoreCell(t0, c)})
	}
	sortCells(sc.cells)
	// At the coarse level the wide pairs' votes are aliased (their lobes
	// are narrower than the cell), so level-0 scores cannot select
	// branches; with deeper levels ahead the first descent re-scores
	// children anyway, but a single-level table must keep every seed.
	if p.multi.Levels() > 1 && len(sc.cells) > refineBranch {
		sc.cells = sc.cells[:refineBranch]
	}
	for l := 1; l < p.multi.Levels(); l++ {
		t := p.multi.Level(l)
		sc.cellsNext = sc.cellsNext[:0]
		for _, c := range sc.cells {
			for _, child := range p.multi.Children(l-1, c.idx) {
				if containsCell(sc.cellsNext, child) {
					continue
				}
				sc.cellsNext = append(sc.cellsNext, tableCell{idx: child, score: scoreCell(t, child)})
			}
		}
		sortCells(sc.cellsNext)
		if len(sc.cellsNext) > refineBranch {
			sc.cellsNext = sc.cellsNext[:refineBranch]
		}
		sc.cells, sc.cellsNext = sc.cellsNext, sc.cells
	}
	return append([]tableCell(nil), sc.cells...), evals
}

// directRefine continues one group's refinement below the table's finest
// resolution: top-K subdivision with direct vote evaluation down to
// FineRes, then the quadratic interpolation to sub-cell precision. branch
// is the per-level branch width (refineBranch normally; every seed for
// single-level tables, whose coarse scores cannot rank branches).
func (p *Positioner) directRefine(frontier []tableCell, po []pairObs, sc *Scratch, branch int) (geom.Vec2, float64, int) {
	sc.resetSearch()
	s := &searcher{sc: sc, region: p.cfg.Region, quant: p.cfg.FineRes / 4, eval: func(pos geom.Vec2) float64 {
		return totalVote(pos, p.cfg.Plane, po)
	}}
	// The table stores the identical DeltaDistTurns the direct path
	// computes, so table scores seed the pool as-is.
	finest := p.multi.Level(p.multi.Levels() - 1)
	for _, c := range frontier {
		pos := finest.Grid().At(c.idx)
		sc.pool = append(sc.pool, scoredPoint{pos: pos, score: c.score})
		sc.cache[s.key(pos)] = c.score
	}
	h := s.subdivide(branch, finest.Grid().Res, p.cfg.FineRes, p.cfg.Search.maxLevels(p.multi.Levels()-1))
	s.quadratic(h)
	b := s.best()
	return b.pos, b.score, s.evals
}

func sortCells(cells []tableCell) {
	sort.SliceStable(cells, func(a, b int) bool { return cells[a].score > cells[b].score })
}

func containsCell(cells []tableCell, idx int) bool {
	for _, c := range cells {
		if c.idx == idx {
			return true
		}
	}
	return false
}

// groupFront is one peak group's finest-table frontier, best cell first.
type groupFront struct {
	cells []tableCell
}

// maxPeakGroups bounds how many peak groups the survivor partition forms —
// a runaway backstop far above what a stage-1 filter produces, not a
// selection step (selection happens on finest-table scores).
const maxPeakGroups = 64

// maxCellsPerGroup bounds how many survivor cells seed one group's
// refinement; stage-1 beams are a few cells wide, so a dozen seeds cover a
// peak's plateau while keeping per-group cost bounded.
const maxCellsPerGroup = 12

// pickCellGroups clusters the threshold-clearing stage-1 cells into up to
// k peak groups: survivors are visited best-first, joining the first group
// whose representative (its best cell) lies within suppress, otherwise
// founding a new group. Grouping — rather than discarding — nearby
// survivors keeps every cell of a peak's plateau reachable by the
// refinement while still spreading the k groups over distinct peaks.
func pickCellGroups(grid Grid, score []float64, threshold float64, k int, suppress float64) [][]int {
	var survivors []int
	for i, v := range score {
		if v >= threshold {
			survivors = append(survivors, i)
		}
	}
	sort.SliceStable(survivors, func(a, b int) bool {
		return score[survivors[a]] > score[survivors[b]]
	})
	var groups [][]int
	for _, i := range survivors {
		pi := grid.At(i)
		joined := false
		for gi, g := range groups {
			if grid.At(g[0]).Dist(pi) < suppress {
				if len(g) < maxCellsPerGroup {
					groups[gi] = append(g, i)
				}
				joined = true
				break
			}
		}
		if !joined && len(groups) < k {
			groups = append(groups, []int{i})
		}
	}
	return groups
}
