package vote

import (
	"fmt"
	"math"

	"rfidraw/internal/antenna"
	"rfidraw/internal/geom"
)

// SteeringTable is a precomputed beam-geometry cache: for a fixed writing
// plane and grid, it stores each antenna pair's geometric observable
// F·Δd/λ (the left-hand side of Eq. 2, in turns) at every grid point,
// together with the pair's lobe-index clamp. The values depend only on the
// deployment geometry — not on any measurement — so one table can be built
// per deployment and shared read-only by any number of goroutines.
//
// Voting a pair on a grid point then reduces to one subtraction, one
// rounding and one multiply (Eq. 7), replacing the two 3-D distance
// evaluations (square roots) the direct antenna.Pair.VoteFree path performs
// per point per sample. This is the lookup table the concurrent engine's
// shards share.
type SteeringTable struct {
	grid Grid
	// turns is laid out [pair][grid point], row-major in the grid's
	// x-fastest order, so a pair's sweep over the grid is one contiguous
	// cache-friendly walk.
	turns [][]float64
	// maxK[p] is pairs[p].MaxLobeIndex() as a float, hoisted out of the
	// inner loop.
	maxK []float64
}

// NewSteeringTable precomputes the steering values of every pair over the
// grid in the given plane. The result is immutable and safe for concurrent
// use.
func NewSteeringTable(pairs []antenna.Pair, grid Grid, plane geom.Plane) *SteeringTable {
	t := &SteeringTable{
		grid:  grid,
		turns: make([][]float64, len(pairs)),
		maxK:  make([]float64, len(pairs)),
	}
	n := grid.Len()
	for pi, p := range pairs {
		row := make([]float64, n)
		for i := 0; i < n; i++ {
			row[i] = p.DeltaDistTurns(plane.To3D(grid.At(i)))
		}
		t.turns[pi] = row
		t.maxK[pi] = float64(p.MaxLobeIndex())
	}
	return t
}

// Grid returns the grid the table was built over.
func (t *SteeringTable) Grid() Grid { return t.grid }

// Pairs returns how many pair rows the table holds.
func (t *SteeringTable) Pairs() int { return len(t.turns) }

// AccumulateVotes adds pair p's free-lobe vote (Eq. 7) for the measured
// phase difference to every element of score, which must have exactly one
// slot per grid point. Accumulating pair-by-pair keeps each table row's
// walk contiguous; summing pairs in caller order leaves the floating-point
// result identical to the direct per-point evaluation.
func (t *SteeringTable) AccumulateVotes(p int, measuredTurns float64, score []float64) error {
	row := t.turns[p]
	if len(score) != len(row) {
		return fmt.Errorf("vote: score buffer has %d slots for a %d-point table", len(score), len(row))
	}
	maxK := t.maxK[p]
	for i, tt := range row {
		frac := tt - measuredTurns
		k := math.Round(frac)
		if k > maxK {
			k = maxK
		} else if k < -maxK {
			k = -maxK
		}
		r := frac - k
		score[i] -= r * r
	}
	return nil
}
