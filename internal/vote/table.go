package vote

import (
	"fmt"
	"math"

	"rfidraw/internal/antenna"
	"rfidraw/internal/geom"
)

// SteeringTable is a precomputed beam-geometry cache: for a fixed writing
// plane and grid, it stores each antenna pair's geometric observable
// F·Δd/λ (the left-hand side of Eq. 2, in turns) at every grid point,
// together with the pair's lobe-index clamp. The values depend only on the
// deployment geometry — not on any measurement — so one table can be built
// per deployment and shared read-only by any number of goroutines.
//
// Voting a pair on a grid point then reduces to one subtraction, one
// rounding and one multiply (Eq. 7), replacing the two 3-D distance
// evaluations (square roots) the direct antenna.Pair.VoteFree path performs
// per point per sample. This is the lookup table the concurrent engine's
// shards share.
type SteeringTable struct {
	grid Grid
	// turns is laid out [pair][grid point], row-major in the grid's
	// x-fastest order, so a pair's sweep over the grid is one contiguous
	// cache-friendly walk.
	turns [][]float64
	// maxK[p] is pairs[p].MaxLobeIndex() as a float, hoisted out of the
	// inner loop.
	maxK []float64
}

// NewSteeringTable precomputes the steering values of every pair over the
// grid in the given plane. The result is immutable and safe for concurrent
// use.
func NewSteeringTable(pairs []antenna.Pair, grid Grid, plane geom.Plane) *SteeringTable {
	t := &SteeringTable{
		grid:  grid,
		turns: make([][]float64, len(pairs)),
		maxK:  make([]float64, len(pairs)),
	}
	n := grid.Len()
	for pi, p := range pairs {
		row := make([]float64, n)
		for i := 0; i < n; i++ {
			row[i] = p.DeltaDistTurns(plane.To3D(grid.At(i)))
		}
		t.turns[pi] = row
		t.maxK[pi] = float64(p.MaxLobeIndex())
	}
	return t
}

// Grid returns the grid the table was built over.
func (t *SteeringTable) Grid() Grid { return t.grid }

// Pairs returns how many pair rows the table holds.
func (t *SteeringTable) Pairs() int { return len(t.turns) }

// VoteAt returns pair p's free-lobe vote (Eq. 7) at grid point i for the
// measured phase difference — the sparse, single-point counterpart of
// AccumulateVotes, used by the hierarchical refinement to score only the
// cells that survive each level.
func (t *SteeringTable) VoteAt(p, i int, measuredTurns float64) float64 {
	frac := t.turns[p][i] - measuredTurns
	k := math.Round(frac)
	if maxK := t.maxK[p]; k > maxK {
		k = maxK
	} else if k < -maxK {
		k = -maxK
	}
	r := frac - k
	return -r * r
}

// AccumulateVotes adds pair p's free-lobe vote (Eq. 7) for the measured
// phase difference to every element of score, which must have exactly one
// slot per grid point. Accumulating pair-by-pair keeps each table row's
// walk contiguous; summing pairs in caller order leaves the floating-point
// result identical to the direct per-point evaluation.
func (t *SteeringTable) AccumulateVotes(p int, measuredTurns float64, score []float64) error {
	row := t.turns[p]
	if len(score) != len(row) {
		return fmt.Errorf("vote: score buffer has %d slots for a %d-point table", len(score), len(row))
	}
	maxK := t.maxK[p]
	for i, tt := range row {
		frac := tt - measuredTurns
		k := math.Round(frac)
		if k > maxK {
			k = maxK
		} else if k < -maxK {
			k = -maxK
		}
		r := frac - k
		score[i] -= r * r
	}
	return nil
}

// tableCell is one grid cell of a steering-table level together with its
// accumulated stage-2 vote, used as the hierarchical refinement frontier.
type tableCell struct {
	idx   int
	score float64
}

// MultiResTable stacks steering tables at halving resolutions over one
// region: level 0 is the coarse stage-1 lattice, and each deeper level
// doubles the density with its grid points aligned so that point (ix, iz)
// of level l is point (2ix, 2iz) of level l+1. The hierarchical search
// descends it cell by cell, so subdivided evaluations stay table lookups
// instead of per-point distance computations. Like SteeringTable it is
// immutable and safe for concurrent use.
type MultiResTable struct {
	levels []*SteeringTable
}

// NewMultiResTable precomputes `levels` steering tables for the pairs over
// region, the first at coarseRes and each subsequent one at half the
// resolution of the previous. levels must be ≥ 1.
func NewMultiResTable(pairs []antenna.Pair, region geom.Rect, plane geom.Plane, coarseRes float64, levels int) (*MultiResTable, error) {
	if levels < 1 {
		return nil, fmt.Errorf("vote: multi-res table needs ≥1 level, got %d", levels)
	}
	base, err := NewGrid(region, coarseRes)
	if err != nil {
		return nil, err
	}
	m := &MultiResTable{levels: make([]*SteeringTable, levels)}
	grid := base
	for l := 0; l < levels; l++ {
		if l > 0 {
			// Derive the child grid explicitly instead of via NewGrid so
			// the lattices stay exactly aligned: same origin, half the
			// step, 2n−1 points per axis.
			grid = Grid{
				Region: grid.Region,
				Res:    grid.Res / 2,
				NX:     2*grid.NX - 1,
				NZ:     2*grid.NZ - 1,
			}
		}
		m.levels[l] = NewSteeringTable(pairs, grid, plane)
	}
	return m, nil
}

// Levels returns how many resolution levels the table holds.
func (m *MultiResTable) Levels() int { return len(m.levels) }

// Level returns the steering table at level l (0 is coarsest).
func (m *MultiResTable) Level(l int) *SteeringTable { return m.levels[l] }

// FinestRes returns the deepest level's grid resolution.
func (m *MultiResTable) FinestRes() float64 {
	return m.levels[len(m.levels)-1].grid.Res
}

// Children returns the grid indices at level l+1 covering the cell at
// index i of level l: the 3×3 neighbourhood of the aligned child point,
// clipped to the child grid. Results are appended in deterministic
// row-major order.
func (m *MultiResTable) Children(l, i int) []int {
	parent := m.levels[l].grid
	child := m.levels[l+1].grid
	cx, cz := 2*(i%parent.NX), 2*(i/parent.NX)
	out := make([]int, 0, 9)
	for dz := -1; dz <= 1; dz++ {
		for dx := -1; dx <= 1; dx++ {
			x, z := cx+dx, cz+dz
			if x < 0 || x >= child.NX || z < 0 || z >= child.NZ {
				continue
			}
			out = append(out, z*child.NX+x)
		}
	}
	return out
}
