package vote

import (
	"math"
	"testing"

	"rfidraw/internal/antenna"
	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
)

// TestSteeringTableVoteAtMatchesAccumulate checks the sparse single-point
// lookup is bit-identical to the row accumulation path — the hierarchical
// descent and the stage-1 scan must agree on every cell.
func TestSteeringTableVoteAtMatchesAccumulate(t *testing.T) {
	pairs := testPairs(t)
	plane := geom.Plane{Y: 2}
	grid, err := NewGrid(geom.Rect{Min: geom.Vec2{X: -0.2, Z: 0}, Max: geom.Vec2{X: 1.4, Z: 1.2}}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	table := NewSteeringTable(pairs, grid, plane)
	measured := []float64{0.13, -0.37, 0.02}
	score := make([]float64, grid.Len())
	for pi := range pairs {
		if err := table.AccumulateVotes(pi, measured[pi], score); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < grid.Len(); i++ {
		var want float64
		for pi := range pairs {
			want += table.VoteAt(pi, i, measured[pi])
		}
		if score[i] != want {
			t.Fatalf("point %d: VoteAt sum %v != accumulated %v", i, want, score[i])
		}
	}
}

// TestSteeringTableGridPointOnAntenna puts a grid point exactly on an
// antenna element (zero distance to one port): the steering value must
// stay finite and bit-identical to the direct evaluation.
func TestSteeringTableGridPointOnAntenna(t *testing.T) {
	carrier := phys.DefaultCarrier()
	a1 := antenna.Antenna{ID: 1, Pos: geom.Vec3{X: 0.2, Z: 0.4}}
	a2 := antenna.Antenna{ID: 2, Pos: geom.Vec3{X: 0.2 + 2*carrier.WavelengthM, Z: 0.4}}
	pair, err := antenna.NewPair(a1, a2, carrier, phys.Backscatter)
	if err != nil {
		t.Fatal(err)
	}
	// Plane Y=0 makes the grid live on the antenna wall; the grid origin
	// and step are chosen so a1's position (0.2, 0.4) is grid point (2, 4).
	grid, err := NewGrid(geom.Rect{Min: geom.Vec2{}, Max: geom.Vec2{X: 1, Z: 1}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	plane := geom.Plane{Y: 0}
	onAntenna := 4*grid.NX + 2
	if got := grid.At(onAntenna); got != (geom.Vec2{X: 0.2, Z: 0.4}) {
		t.Fatalf("grid point %d = %v, want the antenna position", onAntenna, got)
	}
	table := NewSteeringTable([]antenna.Pair{pair}, grid, plane)
	for i := 0; i < grid.Len(); i++ {
		v := table.VoteAt(0, i, 0.1)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("point %d: non-finite vote %v", i, v)
		}
		if want := pair.VoteFree(plane.To3D(grid.At(i)), 0.1); v != want {
			t.Fatalf("point %d: table vote %v != direct %v", i, v, want)
		}
	}
}

// TestMultiResTableAlignment checks the documented lattice invariant:
// point (ix, iz) of level l is point (2ix, 2iz) of level l+1, and every
// level's steering values match direct evaluation.
func TestMultiResTableAlignment(t *testing.T) {
	pairs := testPairs(t)
	plane := geom.Plane{Y: 2}
	region := geom.Rect{Min: geom.Vec2{X: -0.2, Z: 0}, Max: geom.Vec2{X: 1.0, Z: 0.8}}
	m, err := NewMultiResTable(pairs, region, plane, 0.08, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Levels() != 3 {
		t.Fatalf("levels = %d", m.Levels())
	}
	if got, want := m.FinestRes(), 0.02; math.Abs(got-want) > 1e-12 {
		t.Fatalf("finest res = %v, want %v", got, want)
	}
	for l := 0; l < m.Levels()-1; l++ {
		parent, child := m.Level(l).Grid(), m.Level(l+1).Grid()
		if child.NX != 2*parent.NX-1 || child.NZ != 2*parent.NZ-1 {
			t.Fatalf("level %d: child shape %d×%d vs parent %d×%d", l, child.NX, child.NZ, parent.NX, parent.NZ)
		}
		for i := 0; i < parent.Len(); i++ {
			ix, iz := i%parent.NX, i/parent.NX
			j := (2*iz)*child.NX + 2*ix
			if parent.At(i) != child.At(j) {
				t.Fatalf("level %d point %d: parent %v != aligned child %v", l, i, parent.At(i), child.At(j))
			}
		}
	}
	for l := 0; l < m.Levels(); l++ {
		g := m.Level(l).Grid()
		for i := 0; i < g.Len(); i++ {
			for pi, p := range pairs {
				if got, want := m.Level(l).VoteAt(pi, i, 0.2), p.VoteFree(plane.To3D(g.At(i)), 0.2); got != want {
					t.Fatalf("level %d pair %d point %d: %v != %v", l, pi, i, got, want)
				}
			}
		}
	}
}

// TestMultiResTableChildrenCoverCell checks children stay inside the child
// grid and include the aligned centre.
func TestMultiResTableChildrenCoverCell(t *testing.T) {
	pairs := testPairs(t)
	m, err := NewMultiResTable(pairs, geom.Rect{Max: geom.Vec2{X: 0.4, Z: 0.4}}, geom.Plane{Y: 2}, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	parent, child := m.Level(0).Grid(), m.Level(1).Grid()
	for i := 0; i < parent.Len(); i++ {
		kids := m.Children(0, i)
		if len(kids) < 4 || len(kids) > 9 {
			t.Fatalf("cell %d: %d children", i, len(kids))
		}
		centre := false
		for _, k := range kids {
			if k < 0 || k >= child.Len() {
				t.Fatalf("cell %d: child %d out of range", i, k)
			}
			if child.At(k) == parent.At(i) {
				centre = true
			}
			if d := child.At(k).Dist(parent.At(i)); d > parent.Res*math.Sqrt2/2+1e-12 {
				t.Fatalf("cell %d: child %v too far from parent %v (%v)", i, child.At(k), parent.At(i), d)
			}
		}
		if !centre {
			t.Fatalf("cell %d: aligned centre missing from children", i)
		}
	}
}

func TestMultiResTableValidation(t *testing.T) {
	pairs := testPairs(t)
	if _, err := NewMultiResTable(pairs, geom.Rect{Max: geom.Vec2{X: 1, Z: 1}}, geom.Plane{Y: 2}, 0.1, 0); err == nil {
		t.Fatal("want error for 0 levels")
	}
	if _, err := NewMultiResTable(pairs, geom.Rect{Max: geom.Vec2{X: 1, Z: 1}}, geom.Plane{Y: 2}, -1, 2); err == nil {
		t.Fatal("want error for negative resolution")
	}
}

// TestHierarchicalSearchFindsShiftedPeak checks the expanding coarse
// window: a smooth peak placed most of a vicinity radius away from the
// seed must still be found (the window only grows while the maximum sits
// on its border), and a seed directly on the peak must cost far fewer
// evaluations than the full vicinity lattice.
func TestHierarchicalSearchFindsShiftedPeak(t *testing.T) {
	region := geom.Rect{Min: geom.Vec2{X: -1, Z: -1}, Max: geom.Vec2{X: 1, Z: 1}}
	peak := geom.Vec2{X: 0.06, Z: -0.05}
	eval := func(p geom.Vec2) float64 {
		d := p.Dist(peak)
		return -d * d
	}
	pos, score, evals := HierarchicalSearch(SearchConfig{}, region, geom.Vec2{}, 0.08, 0.02, 0.002, 2, nil, eval)
	if d := pos.Dist(peak); d > 0.002 {
		t.Fatalf("peak %v found at %v (off %v)", peak, pos, d)
	}
	if score < -1e-5 {
		t.Fatalf("score %v, want ≈0", score)
	}
	// Dense reference cost for the same window: 17×17 lattice plus the
	// pattern search. The shifted-peak search must stay well below it.
	if evals > 150 {
		t.Fatalf("shifted-peak search spent %d evals", evals)
	}
	_, _, steady := HierarchicalSearch(SearchConfig{}, region, peak, 0.08, 0.02, 0.002, 2, nil, eval)
	if steady > 70 {
		t.Fatalf("steady-state search spent %d evals, want ≤70", steady)
	}
}

// TestHierarchicalSearchScratchReuse checks a reused scratch never changes
// results (the engine shares one per shard across tags and samples).
func TestHierarchicalSearchScratchReuse(t *testing.T) {
	region := geom.Rect{Min: geom.Vec2{X: -1, Z: -1}, Max: geom.Vec2{X: 1, Z: 1}}
	eval := func(p geom.Vec2) float64 {
		return math.Sin(13*p.X)*math.Cos(11*p.Z) - p.Dot(p)
	}
	sc := NewScratch()
	var want geom.Vec2
	var wantScore float64
	for i := 0; i < 3; i++ {
		pos, score, _ := HierarchicalSearch(SearchConfig{}, region, geom.Vec2{X: 0.01}, 0.08, 0.02, 0.002, 2, sc, eval)
		if i == 0 {
			want, wantScore = pos, score
			continue
		}
		if pos != want || score != wantScore {
			t.Fatalf("run %d: (%v, %v) != first run (%v, %v)", i, pos, score, want, wantScore)
		}
	}
	pos, score, _ := HierarchicalSearch(SearchConfig{}, region, geom.Vec2{X: 0.01}, 0.08, 0.02, 0.002, 2, nil, eval)
	if pos != want || score != wantScore {
		t.Fatalf("nil-scratch run (%v, %v) != scratch run (%v, %v)", pos, score, want, wantScore)
	}
}

// TestHierarchicalSearchLevelsCap checks the Levels knob bounds the
// subdivision depth: one level stops at half the coarse step.
func TestHierarchicalSearchLevelsCap(t *testing.T) {
	region := geom.Rect{Min: geom.Vec2{X: -1, Z: -1}, Max: geom.Vec2{X: 1, Z: 1}}
	peak := geom.Vec2{X: 0.0137, Z: -0.0061}
	eval := func(p geom.Vec2) float64 {
		d := p.Dist(peak)
		return -d * d
	}
	_, _, unbounded := HierarchicalSearch(SearchConfig{}, region, geom.Vec2{}, 0.08, 0.02, 0.001, 2, nil, eval)
	_, _, capped := HierarchicalSearch(SearchConfig{Levels: 1}, region, geom.Vec2{}, 0.08, 0.02, 0.001, 2, nil, eval)
	if capped >= unbounded {
		t.Fatalf("capped search spent %d evals, unbounded %d — cap did nothing", capped, unbounded)
	}
}

// TestCandidatesTopKLargerThanCellCount exercises the refinement with a
// TopK far beyond the number of grid cells: every threshold-clearing cell
// is refined and the result still matches the source.
func TestCandidatesTopKLargerThanCellCount(t *testing.T) {
	stage1, wide := deployment(t)
	cfg := testConfig()
	cfg.Search = SearchConfig{TopK: 1 << 20}
	p, err := NewPositioner(stage1, wide, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if topK := cfg.Search.topK(positionerTopK); topK <= p.coarseGrid.Len() {
		t.Fatalf("test premise broken: TopK %d not larger than grid %d", topK, p.coarseGrid.Len())
	}
	src2 := geom.Vec2{X: 1.3, Z: 1.0}
	obs := synthObs(append(stage1, wide...), cfg.Plane.To3D(src2), 0, nil)
	cands, stats, err := p.CandidatesWith(nil, obs)
	if err != nil {
		t.Fatal(err)
	}
	if d := cands[0].Pos.Dist(src2); d > 0.02 {
		t.Fatalf("best candidate %v off by %v m", cands[0].Pos, d)
	}
	if stats.GridEvals <= 0 || stats.Cells <= 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
}

// TestCandidatesSingleLevelTable forces a single-level multi-resolution
// table (FineRes close to CoarseRes leaves no room for halving): the
// refinement must skip the table descent and still converge.
func TestCandidatesSingleLevelTable(t *testing.T) {
	stage1, wide := deployment(t)
	cfg := testConfig()
	cfg.CoarseRes = 0.04
	cfg.FineRes = 0.015 // 0.02 < 2×FineRes → no second table level
	p, err := NewPositioner(stage1, wide, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.multi.Levels() != 1 {
		t.Fatalf("multi levels = %d, want 1", p.multi.Levels())
	}
	src2 := geom.Vec2{X: 1.3, Z: 1.0}
	obs := synthObs(append(stage1, wide...), cfg.Plane.To3D(src2), 0, nil)
	cands, err := p.Candidates(obs)
	if err != nil {
		t.Fatal(err)
	}
	if d := cands[0].Pos.Dist(src2); d > 0.03 {
		t.Fatalf("best candidate %v off by %v m", cands[0].Pos, d)
	}
}

// TestCandidatesHierMatchesDense is the package-level equivalence check:
// on noiseless and noisy synthetic observations the hierarchical best
// candidate must land within epsilon of the dense one.
func TestCandidatesHierMatchesDense(t *testing.T) {
	stage1, wide := deployment(t)
	dense := testConfig()
	dense.Search = SearchConfig{Mode: SearchDense}
	hier := testConfig()
	pd, err := NewPositioner(stage1, wide, dense)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := NewPositioner(stage1, wide, hier)
	if err != nil {
		t.Fatal(err)
	}
	for _, src2 := range []geom.Vec2{{X: 1.3, Z: 1.0}, {X: 0.6, Z: 1.5}, {X: 2.0, Z: 0.7}} {
		obs := synthObs(append(stage1, wide...), dense.Plane.To3D(src2), 0, nil)
		cd, err := pd.Candidates(obs)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := ph.Candidates(obs)
		if err != nil {
			t.Fatal(err)
		}
		if d := cd[0].Pos.Dist(ch[0].Pos); d > 0.01 {
			t.Errorf("src %v: dense best %v vs hierarchical best %v (off %v)", src2, cd[0].Pos, ch[0].Pos, d)
		}
	}
}
