package vote

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rfidraw/internal/antenna"
	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
)

var (
	carrier = phys.DefaultCarrier()
	lambda  = carrier.WavelengthM
)

// fig6Deployment builds the paper's Fig. 6d antenna layout: reader A's four
// antennas on the corners of an 8λ square (6 wide pairs), reader B's four
// in two λ/4 pairs plus their cross pairs.
func fig6Deployment(t testing.TB) (stage1, wide []antenna.Pair) {
	t.Helper()
	L := 8 * lambda
	mk := func(id, reader int, x, z float64) antenna.Antenna {
		return antenna.Antenna{ID: id, ReaderID: reader, Pos: geom.Vec3{X: x, Z: z}}
	}
	a1 := mk(1, 0, 0, 0)
	a2 := mk(2, 0, 0, L)
	a3 := mk(3, 0, L, L)
	a4 := mk(4, 0, L, 0)
	a5 := mk(5, 1, -0.3, L/2)
	a6 := mk(6, 1, -0.3, L/2+lambda/4)
	a7 := mk(7, 1, L/2, -0.3)
	a8 := mk(8, 1, L/2+lambda/4, -0.3)
	pair := func(i, j antenna.Antenna) antenna.Pair {
		p, err := antenna.NewPair(i, j, carrier, phys.Backscatter)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	wide = []antenna.Pair{
		pair(a1, a2), pair(a2, a3), pair(a3, a4), pair(a4, a1), pair(a1, a3), pair(a2, a4),
	}
	stage1 = []antenna.Pair{
		pair(a5, a6), pair(a7, a8), // unambiguous coarse beams
		pair(a5, a7), pair(a5, a8), pair(a6, a7), pair(a6, a8), // finer filter
	}
	return stage1, stage1 // placeholder, fixed below
}

// deployment returns (stage1Pairs, widePairs) for the Fig. 6d layout.
func deployment(t testing.TB) (stage1, wide []antenna.Pair) {
	stage1, _ = fig6Deployment(t)
	// Rebuild wide pairs (fig6Deployment returns stage1 twice to keep a
	// single construction path for antennas; recompute here).
	L := 8 * lambda
	mk := func(id int, x, z float64) antenna.Antenna {
		return antenna.Antenna{ID: id, ReaderID: 0, Pos: geom.Vec3{X: x, Z: z}}
	}
	a1, a2, a3, a4 := mk(1, 0, 0), mk(2, 0, L), mk(3, L, L), mk(4, L, 0)
	pair := func(i, j antenna.Antenna) antenna.Pair {
		p, err := antenna.NewPair(i, j, carrier, phys.Backscatter)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	wide = []antenna.Pair{
		pair(a1, a2), pair(a2, a3), pair(a3, a4), pair(a4, a1), pair(a1, a3), pair(a2, a4),
	}
	return stage1, wide
}

// synthObs builds noiseless observations for a source: one phase per
// antenna appearing in any pair.
func synthObs(pairs []antenna.Pair, src geom.Vec3, noise float64, rng *rand.Rand) Observations {
	obs := Observations{}
	add := func(a antenna.Antenna) {
		if _, ok := obs[a.ID]; ok {
			return
		}
		ph := phys.PathPhase(carrier, phys.Backscatter, a.Pos.Dist(src))
		if noise > 0 && rng != nil {
			ph += rng.NormFloat64() * noise
		}
		obs[a.ID] = phys.Wrap(ph)
	}
	for _, p := range pairs {
		add(p.I)
		add(p.J)
	}
	return obs
}

func testConfig() Config {
	return Config{
		Plane:  geom.Plane{Y: 2},
		Region: geom.Rect{Min: geom.Vec2{X: 0, Z: 0}, Max: geom.Vec2{X: 2.6, Z: 2.0}},
	}
}

func TestNewGridShape(t *testing.T) {
	g, err := NewGrid(geom.Rect{Min: geom.Vec2{}, Max: geom.Vec2{X: 1, Z: 0.5}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != 11 || g.NZ != 6 {
		t.Fatalf("grid shape = %d×%d", g.NX, g.NZ)
	}
	if g.Len() != 66 {
		t.Fatalf("len = %d", g.Len())
	}
	if g.At(0) != (geom.Vec2{}) {
		t.Fatalf("first point = %v", g.At(0))
	}
	last := g.At(g.Len() - 1)
	if math.Abs(last.X-1) > 1e-9 || math.Abs(last.Z-0.5) > 1e-9 {
		t.Fatalf("last point = %v", last)
	}
	if len(g.Points()) != g.Len() {
		t.Fatal("points length")
	}
	if _, err := NewGrid(geom.Rect{}, 0.1); err == nil {
		t.Fatal("degenerate region should error")
	}
	if _, err := NewGrid(geom.Rect{Max: geom.Vec2{X: 1, Z: 1}}, 0); err == nil {
		t.Fatal("zero resolution should error")
	}
}

func TestPairTurnsMissingPhase(t *testing.T) {
	_, wide := deployment(t)
	obs := Observations{1: 0.5} // antenna 2 missing
	if _, ok := PairTurns(wide[0], obs); ok {
		t.Fatal("missing phase should report not-ok")
	}
	obs[2] = 1.0
	if _, ok := PairTurns(wide[0], obs); !ok {
		t.Fatal("complete pair should report ok")
	}
}

func TestNewPositionerValidation(t *testing.T) {
	stage1, wide := deployment(t)
	if _, err := NewPositioner(nil, wide, testConfig()); err == nil {
		t.Fatal("no stage-1 pairs should error")
	}
	if _, err := NewPositioner(stage1, nil, testConfig()); err == nil {
		t.Fatal("no wide pairs should error")
	}
	if _, err := NewPositioner(stage1, wide, Config{Plane: geom.Plane{Y: 2}}); err == nil {
		t.Fatal("degenerate region should error")
	}
	p, err := NewPositioner(stage1, wide, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.CoarseRes <= 0 || cfg.FineRes <= 0 || cfg.CandidateCount <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestCandidatesFindNoiselessSource(t *testing.T) {
	stage1, wide := deployment(t)
	p, err := NewPositioner(stage1, wide, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, src2 := range []geom.Vec2{{X: 1.3, Z: 1.0}, {X: 0.6, Z: 1.5}, {X: 2.0, Z: 0.7}} {
		src := testConfig().Plane.To3D(src2)
		obs := synthObs(append(stage1, wide...), src, 0, nil)
		cands, err := p.Candidates(obs)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) == 0 {
			t.Fatal("no candidates")
		}
		if d := cands[0].Pos.Dist(src2); d > 0.02 {
			t.Errorf("src %v: best candidate %v off by %v m", src2, cands[0].Pos, d)
		}
		if cands[0].Score < -0.01 {
			t.Errorf("noiseless best score = %v, want ≈0", cands[0].Score)
		}
	}
}

func TestCandidatesWithNoiseStayClose(t *testing.T) {
	stage1, wide := deployment(t)
	p, err := NewPositioner(stage1, wide, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	src2 := geom.Vec2{X: 1.1, Z: 1.2}
	src := testConfig().Plane.To3D(src2)
	hits := 0
	for trial := 0; trial < 10; trial++ {
		obs := synthObs(append(stage1, wide...), src, 0.15, rng)
		cands, err := p.Candidates(obs)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) > 0 && cands[0].Pos.Dist(src2) < 0.40 {
			hits++
		}
	}
	if hits < 8 {
		t.Fatalf("only %d/10 noisy trials localized within 40 cm", hits)
	}
}

func TestCandidatesRequireEnoughPairs(t *testing.T) {
	stage1, wide := deployment(t)
	p, err := NewPositioner(stage1, wide, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Observations covering only antenna 5 and 6: one stage-1 pair.
	src := testConfig().Plane.To3D(geom.Vec2{X: 1, Z: 1})
	full := synthObs(append(stage1, wide...), src, 0, nil)
	obs := Observations{5: full[5], 6: full[6]}
	if _, err := p.Candidates(obs); err == nil {
		t.Fatal("one stage-1 pair should be insufficient")
	}
}

func TestWideOnlyPositionerIsAmbiguous(t *testing.T) {
	// Ablation: using the wide pairs alone for stage 1 yields candidate
	// ambiguity — far-apart candidates with near-perfect scores.
	_, wide := deployment(t)
	cfg := testConfig()
	cfg.CandidateCount = 8
	cfg.CoarseDelta = 0.02
	p, err := NewPositioner(wide, wide, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src2 := geom.Vec2{X: 1.3, Z: 1.0}
	obs := synthObs(wide, cfg.Plane.To3D(src2), 0, nil)
	cands, err := p.Candidates(obs)
	if err != nil {
		t.Fatal(err)
	}
	farGood := 0
	for _, c := range cands {
		if c.Pos.Dist(src2) > 0.3 && c.Score > -0.02 {
			farGood++
		}
	}
	if farGood == 0 {
		t.Fatal("wide-only voting should produce ambiguous high-score candidates (grating lobes)")
	}
}

func TestScoreAtPeaksAtSource(t *testing.T) {
	stage1, wide := deployment(t)
	p, err := NewPositioner(stage1, wide, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	src2 := geom.Vec2{X: 1.3, Z: 1.0}
	obs := synthObs(append(stage1, wide...), testConfig().Plane.To3D(src2), 0, nil)
	at := p.ScoreAt(src2, obs)
	if at < -1e-9 {
		t.Fatalf("score at source = %v, want 0", at)
	}
	off := p.ScoreAt(geom.Vec2{X: 1.6, Z: 1.3}, obs)
	if off >= at {
		t.Fatalf("off-source score %v should be below source score %v", off, at)
	}
}

func TestVoteMapShape(t *testing.T) {
	stage1, _ := deployment(t)
	g, err := NewGrid(testConfig().Region, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	src2 := geom.Vec2{X: 1.3, Z: 1.0}
	obs := synthObs(stage1, testConfig().Plane.To3D(src2), 0, nil)
	m := VoteMap(stage1, obs, g, testConfig().Plane)
	if len(m) != g.Len() {
		t.Fatal("map length")
	}
	// The best grid point should be near the source.
	best := 0
	for i, v := range m {
		if v > m[best] {
			best = i
		}
	}
	if g.At(best).Dist(src2) > 0.12 {
		t.Fatalf("vote-map peak %v too far from source %v", g.At(best), src2)
	}
}

// Property: candidate scores are sorted descending and non-positive.
func TestQuickCandidatesSortedAndBounded(t *testing.T) {
	stage1, wide := deployment(t)
	p, err := NewPositioner(stage1, wide, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src2 := geom.Vec2{X: 0.3 + rng.Float64()*2, Z: 0.3 + rng.Float64()*1.4}
		obs := synthObs(append(stage1, wide...), testConfig().Plane.To3D(src2), 0.1, rng)
		cands, err := p.Candidates(obs)
		if err != nil {
			return false
		}
		for i, c := range cands {
			if c.Score > 1e-9 {
				return false
			}
			if i > 0 && cands[i-1].Score < c.Score {
				return false
			}
			if !testConfig().Region.Expand(0.01).Contains(c.Pos) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
