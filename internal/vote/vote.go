// Package vote implements RF-IDraw's multi-resolution positioning (§5.1 of
// the paper) as the two-stage voting algorithm the paper describes:
//
//   - Stage 1: every tightly-spaced (and cross) pair of the coarse reader
//     votes on each point of a coarse grid over the region of interest;
//     points whose total vote is close to the best form the candidate
//     region (the spatial filter of Fig. 6b/6c).
//   - Stage 2: every antenna pair — including the widely-spaced,
//     grating-lobe pairs — votes on points inside the candidate region;
//     the highest-vote points become the candidate positions (Fig. 6d).
//
// A pair's vote on a point is the negated squared distance, in turns,
// between the point's Δd·F/λ and the grating lobe nearest the measured
// phase difference (Eq. 6/7).
//
// # Concurrency
//
// A Positioner is immutable after construction: its pair lists, the
// precomputed stage-1 SteeringTable, and its configuration never change,
// and per-call scratch comes from an internal sync.Pool. Candidates,
// ScoreAt and VoteMap are therefore safe to call concurrently from any
// number of goroutines — the multi-tag engine's shards share one
// Positioner per deployment.
package vote

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"rfidraw/internal/antenna"
	"rfidraw/internal/geom"
)

// Observations maps antenna ID → measured wrapped phase (radians) at one
// instant. It is the cross-reader merged view of one sweep.
type Observations map[int]float64

// PairTurns extracts a pair's phase-difference observable from the
// observations, in turns wrapped to (−0.5, 0.5]. ok is false when either
// port's phase is missing (a lost read).
func PairTurns(p antenna.Pair, obs Observations) (float64, bool) {
	pi, ok1 := obs[p.I.ID]
	pj, ok2 := obs[p.J.ID]
	if !ok1 || !ok2 {
		return 0, false
	}
	return antenna.PhaseDiffTurns(pi, pj), true
}

// Grid is a regular grid of points over a writing-plane rectangle.
type Grid struct {
	Region geom.Rect
	Res    float64
	NX, NZ int
}

// NewGrid builds a grid covering region at the given resolution (metres
// between adjacent points).
func NewGrid(region geom.Rect, res float64) (Grid, error) {
	if res <= 0 {
		return Grid{}, fmt.Errorf("vote: grid resolution %v must be positive", res)
	}
	if region.Width() <= 0 || region.Height() <= 0 {
		return Grid{}, fmt.Errorf("vote: degenerate grid region %+v", region)
	}
	nx := int(region.Width()/res) + 1
	nz := int(region.Height()/res) + 1
	return Grid{Region: region, Res: res, NX: nx, NZ: nz}, nil
}

// Len returns the number of grid points.
func (g Grid) Len() int { return g.NX * g.NZ }

// At returns the i-th grid point in row-major (x-fastest) order.
func (g Grid) At(i int) geom.Vec2 {
	ix := i % g.NX
	iz := i / g.NX
	return geom.Vec2{
		X: g.Region.Min.X + float64(ix)*g.Res,
		Z: g.Region.Min.Z + float64(iz)*g.Res,
	}
}

// Points materialises all grid points.
func (g Grid) Points() []geom.Vec2 {
	out := make([]geom.Vec2, g.Len())
	for i := range out {
		out[i] = g.At(i)
	}
	return out
}

// Candidate is one hypothesised source position with its total vote.
type Candidate struct {
	Pos geom.Vec2
	// Score is the total vote Σ V(P) over all pairs that observed the
	// sample; 0 is a perfect, noise-free intersection, more negative is
	// worse (Eq. 6/7).
	Score float64
}

// Config tunes the two-stage voting positioner.
type Config struct {
	// Plane is the writing plane the grid lives in.
	Plane geom.Plane
	// Region bounds the search.
	Region geom.Rect
	// CoarseRes is the stage-1 grid resolution (m). Default 0.04.
	CoarseRes float64
	// FineRes is the stage-2 refinement resolution (m). Default 0.004.
	FineRes float64
	// CoarseDelta is how far (in vote units) below the stage-1 best a
	// point may be and still enter the candidate region. Default 0.05.
	CoarseDelta float64
	// CandidateCount caps how many candidates are returned. Default 3.
	CandidateCount int
	// MinCandidateSep merges candidates closer than this (m).
	// Default 0.15.
	MinCandidateSep float64
	// Search picks the stage-2 strategy: hierarchical coarse-to-fine
	// refinement (the default) or the exhaustive dense reference.
	Search SearchConfig
}

func (c Config) withDefaults() Config {
	if c.CoarseRes <= 0 {
		c.CoarseRes = 0.04
	}
	if c.FineRes <= 0 {
		c.FineRes = 0.004
	}
	if c.CoarseDelta <= 0 {
		c.CoarseDelta = 0.05
	}
	if c.CandidateCount <= 0 {
		c.CandidateCount = 3
	}
	if c.MinCandidateSep <= 0 {
		c.MinCandidateSep = 0.15
	}
	return c
}

// Positioner runs the two-stage voting algorithm for a fixed deployment.
type Positioner struct {
	// stage1Pairs are the unambiguous/coarse-reader pairs used to build
	// the candidate-region filter (Fig. 6b/6c).
	stage1Pairs []antenna.Pair
	// allPairs are every pair (wide + coarse) used for the stage-2 vote.
	allPairs []antenna.Pair
	cfg      Config

	// coarseGrid and table are built once at construction: the stage-1
	// full-region scan is the positioning hot path, and the steering
	// values it needs depend only on geometry, so they are precomputed
	// and shared read-only across goroutines.
	coarseGrid Grid
	table      *SteeringTable
	// multi holds the multi-resolution steering tables over all pairs
	// (stage-1 rows first) that the hierarchical refinement descends.
	// nil in dense mode.
	multi *MultiResTable
	// scratch pools search scratches (stage-1 score buffer + refinement
	// state) so repeated Candidates calls on the hot path do not allocate.
	scratch sync.Pool
}

// NewPositioner builds a Positioner. stage1Pairs build the coarse filter;
// widePairs provide the resolution; both vote in stage 2.
func NewPositioner(stage1Pairs, widePairs []antenna.Pair, cfg Config) (*Positioner, error) {
	if len(stage1Pairs) == 0 {
		return nil, errors.New("vote: need at least one stage-1 (coarse) pair")
	}
	if len(widePairs) == 0 {
		return nil, errors.New("vote: need at least one widely-spaced pair")
	}
	cfg = cfg.withDefaults()
	if cfg.Region.Width() <= 0 || cfg.Region.Height() <= 0 {
		return nil, fmt.Errorf("vote: degenerate search region %+v", cfg.Region)
	}
	all := make([]antenna.Pair, 0, len(stage1Pairs)+len(widePairs))
	all = append(all, stage1Pairs...)
	all = append(all, widePairs...)
	grid, err := NewGrid(cfg.Region, cfg.CoarseRes)
	if err != nil {
		return nil, err
	}
	p := &Positioner{
		stage1Pairs: stage1Pairs,
		allPairs:    all,
		cfg:         cfg,
		coarseGrid:  grid,
		table:       NewSteeringTable(stage1Pairs, grid, cfg.Plane),
	}
	if cfg.Search.Mode == SearchHierarchical {
		p.multi, err = NewMultiResTable(all, cfg.Region, cfg.Plane, cfg.CoarseRes, tableLevels(cfg))
		if err != nil {
			return nil, err
		}
	}
	p.scratch.New = func() any { return NewScratch() }
	return p, nil
}

// maxTableLevels bounds the precomputed table stack: each level quadruples
// the finest level's point count, and below ~1 cm the remaining descent is
// cheaper evaluated directly on the few surviving branches than stored for
// the whole region.
const maxTableLevels = 3

// tableLevels derives how deep the multi-resolution table stack goes: keep
// halving while the next level stays comfortably above the fine
// resolution (the direct subdivision + quadratic interpolation cover the
// rest), bounded by maxTableLevels and, when set, by Search.Levels.
func tableLevels(cfg Config) int {
	levels := 1
	for res := cfg.CoarseRes; res/2 >= 2*cfg.FineRes && levels < maxTableLevels; res /= 2 {
		if cfg.Search.Levels > 0 && levels > cfg.Search.Levels {
			break
		}
		levels++
	}
	return levels
}

// Config returns the effective (defaulted) configuration.
func (p *Positioner) Config() Config { return p.cfg }

// pairObs is a pair together with its observed phase difference and its
// index in the pair slice it was collected from (the steering-table row).
type pairObs struct {
	pair  antenna.Pair
	turns float64
	idx   int
}

func collect(pairs []antenna.Pair, obs Observations) []pairObs {
	out := make([]pairObs, 0, len(pairs))
	for i, pr := range pairs {
		if t, ok := PairTurns(pr, obs); ok {
			out = append(out, pairObs{pair: pr, turns: t, idx: i})
		}
	}
	return out
}

// totalVote sums every observed pair's free-lobe vote at a plane point.
func totalVote(pos geom.Vec2, plane geom.Plane, po []pairObs) float64 {
	p3 := plane.To3D(pos)
	var sum float64
	for _, o := range po {
		sum += o.pair.VoteFree(p3, o.turns)
	}
	return sum
}

// ScoreAt returns the total stage-2 vote (all pairs) at a position; it is
// the quantity Fig. 10f plots along a trajectory.
func (p *Positioner) ScoreAt(pos geom.Vec2, obs Observations) float64 {
	return totalVote(pos, p.cfg.Plane, collect(p.allPairs, obs))
}

// VoteMap evaluates the total vote of the given pairs over a grid; the
// experiment harness uses it to render the paper's spatial-filter figures.
func VoteMap(pairs []antenna.Pair, obs Observations, grid Grid, plane geom.Plane) []float64 {
	po := collect(pairs, obs)
	out := make([]float64, grid.Len())
	for i := range out {
		out[i] = totalVote(grid.At(i), plane, po)
	}
	return out
}

// Candidates runs the two-stage voting algorithm on one observation set
// and returns up to CandidateCount candidate positions, best first.
func (p *Positioner) Candidates(obs Observations) ([]Candidate, error) {
	cands, _, err := p.CandidatesWith(nil, obs)
	return cands, err
}

// positionerTopK is the default number of coarse cells the hierarchical
// stage-2 refinement descends: one-shot positioning faces the full
// grating-lobe ambiguity, so it keeps more branches than steady-state
// tracking.
const positionerTopK = 4

// CandidatesWith is Candidates with an explicit reusable scratch (nil
// takes one from the internal pool) and a report of how much search work
// the call spent — the quantity the benchmark suite tracks.
func (p *Positioner) CandidatesWith(sc *Scratch, obs Observations) ([]Candidate, SearchStats, error) {
	stats := SearchStats{Mode: p.cfg.Search.Mode, Stage1Points: p.coarseGrid.Len()}
	stage1 := collect(p.stage1Pairs, obs)
	if len(stage1) < 2 {
		return nil, stats, fmt.Errorf("vote: only %d stage-1 pairs observed, need ≥2", len(stage1))
	}
	all := collect(p.allPairs, obs)
	if len(all) < 3 {
		return nil, stats, fmt.Errorf("vote: only %d total pairs observed, need ≥3", len(all))
	}
	if sc == nil {
		sc = p.scratch.Get().(*Scratch)
		defer p.scratch.Put(sc)
	}

	// Stage 1: coarse filter over the full region, evaluated against the
	// precomputed steering table pair-row by pair-row. Accumulating in
	// observed-pair order keeps the floating-point sums identical to the
	// direct per-point evaluation.
	grid := p.coarseGrid
	score1 := sc.stage1Buf(grid.Len())
	for i := range score1 {
		score1[i] = 0
	}
	for _, o := range stage1 {
		if err := p.table.AccumulateVotes(o.idx, o.turns, score1); err != nil {
			return nil, stats, err
		}
	}
	best1 := math.Inf(-1)
	for i := range score1 {
		if score1[i] > best1 {
			best1 = score1[i]
		}
	}

	// Stage 2: refine surviving coarse points with all pairs.
	var cands []Candidate
	if p.cfg.Search.Mode == SearchHierarchical {
		// Cluster the threshold-clearing cells into peak groups, descend
		// every group through the cheap multi-resolution table, then
		// spend direct evaluations only on the top-K groups ranked by
		// their finest-table all-pairs score. Stage-1 scores alone are
		// too flat across the candidate blob to rank peaks, but after
		// two halvings the all-pairs table resolves them — so the
		// expensive distance-based refinement touches K spots no matter
		// how large the candidate region is.
		k := p.cfg.Search.topK(positionerTopK)
		if k < p.cfg.CandidateCount {
			k = p.cfg.CandidateCount
		}
		groups := pickCellGroups(grid, score1, best1-p.cfg.CoarseDelta, maxPeakGroups, 2*p.cfg.CoarseRes)
		fronts := make([]groupFront, 0, len(groups))
		for _, g := range groups {
			stats.Cells += len(g)
			cells, evals := p.descendTable(g, all, sc)
			stats.GridEvals += evals
			if len(cells) > 0 {
				fronts = append(fronts, groupFront{cells: cells})
			}
		}
		branch := refineBranch
		if p.multi.Levels() > 1 {
			sort.SliceStable(fronts, func(a, b int) bool {
				return fronts[a].cells[0].score > fronts[b].cells[0].score
			})
			if len(fronts) > k {
				fronts = fronts[:k]
			}
		} else {
			// A single-level table's coarse scores cannot rank peak
			// groups (the wide pairs' votes are aliased at that
			// resolution), so refine every group from all its seeds.
			branch = maxCellsPerGroup
		}
		for _, f := range fronts {
			pos, score, evals := p.directRefine(f.cells, all, sc, branch)
			stats.GridEvals += evals
			cands = append(cands, Candidate{Pos: pos, Score: score})
		}
	} else {
		for i := range score1 {
			if score1[i] < best1-p.cfg.CoarseDelta {
				continue
			}
			stats.Cells++
			pos, score, evals := p.refine(grid.At(i), all)
			stats.GridEvals += evals
			cands = append(cands, Candidate{Pos: pos, Score: score})
		}
	}
	if len(cands) == 0 {
		return nil, stats, errors.New("vote: empty candidate region")
	}

	// Merge near-duplicates, keep the best-scoring representatives.
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].Score > cands[b].Score })
	var out []Candidate
	for _, c := range cands {
		dup := false
		for _, kept := range out {
			if kept.Pos.Dist(c.Pos) < p.cfg.MinCandidateSep {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
			if len(out) == p.cfg.CandidateCount {
				break
			}
		}
	}
	return out, stats, nil
}

// refine hill-climbs the total vote from start down to FineRes using a
// shrinking 3×3 pattern search clipped to the region — the dense-mode
// reference refinement. The third return is the evaluation count.
func (p *Positioner) refine(start geom.Vec2, po []pairObs) (geom.Vec2, float64, int) {
	pos := start
	best := totalVote(pos, p.cfg.Plane, po)
	evals := 1
	step := p.cfg.CoarseRes / 2
	for step >= p.cfg.FineRes {
		improved := false
		for dx := -1; dx <= 1; dx++ {
			for dz := -1; dz <= 1; dz++ {
				if dx == 0 && dz == 0 {
					continue
				}
				cand := p.cfg.Region.Clip(geom.Vec2{X: pos.X + float64(dx)*step, Z: pos.Z + float64(dz)*step})
				evals++
				if s := totalVote(cand, p.cfg.Plane, po); s > best {
					best, pos = s, cand
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return pos, best, evals
}
