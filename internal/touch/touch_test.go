package touch

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/traj"
)

func window() geom.Rect {
	return geom.Rect{Min: geom.Vec2{X: 0, Z: 0}, Max: geom.Vec2{X: 2, Z: 2}}
}

func lineTraj(n int) traj.Trajectory {
	pos := make([]geom.Vec2, n)
	for i := range pos {
		pos[i] = geom.Vec2{X: 2 * float64(i) / float64(n-1), Z: 1}
	}
	return traj.FromPositions(pos, 20*time.Millisecond)
}

func TestProjectCornersAndFlip(t *testing.T) {
	s := DefaultScreen(window())
	// Bottom-left of the window maps to bottom-left of the screen (y
	// flipped to HeightPx-1).
	x, y := s.Project(geom.Vec2{X: 0, Z: 0})
	if x != 0 || y != s.HeightPx-1 {
		t.Fatalf("bottom-left → (%d, %d)", x, y)
	}
	// Top-right of the window maps to top-right of the screen.
	x, y = s.Project(geom.Vec2{X: 2, Z: 2})
	if x != s.WidthPx-1 || y != 0 {
		t.Fatalf("top-right → (%d, %d)", x, y)
	}
	// Out-of-window points clamp.
	x, y = s.Project(geom.Vec2{X: -5, Z: 9})
	if x != 0 || y != 0 {
		t.Fatalf("clamped → (%d, %d)", x, y)
	}
}

func TestEventsStructure(t *testing.T) {
	s := DefaultScreen(window())
	ev, err := Events(lineTraj(30), s)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ev); err != nil {
		t.Fatal(err)
	}
	if ev[0].Kind != Down || ev[len(ev)-1].Kind != Up {
		t.Fatal("sequence must be down…up")
	}
	if ev[0].T != 0 {
		t.Fatalf("first event at %v, want 0", ev[0].T)
	}
	// X advances monotonically for a left-to-right stroke.
	for i := 2; i < len(ev)-1; i++ {
		if ev[i].X < ev[i-1].X {
			t.Fatal("x should not regress on a rightward stroke")
		}
	}
}

func TestEventsCoalescesDuplicates(t *testing.T) {
	s := DefaultScreen(window())
	// A stationary trajectory produces only down + up.
	pos := make([]geom.Vec2, 10)
	for i := range pos {
		pos[i] = geom.Vec2{X: 1, Z: 1}
	}
	ev, err := Events(traj.FromPositions(pos, 10*time.Millisecond), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 2 {
		t.Fatalf("stationary trace produced %d events, want 2", len(ev))
	}
}

func TestEventsErrors(t *testing.T) {
	if _, err := Events(traj.Trajectory{}, DefaultScreen(window())); err == nil {
		t.Fatal("empty trajectory should error")
	}
	bad := Screen{WidthPx: 0, HeightPx: 100, Window: window()}
	if _, err := Events(lineTraj(5), bad); err == nil {
		t.Fatal("invalid screen should error")
	}
	bad = Screen{WidthPx: 100, HeightPx: 100}
	if _, err := Events(lineTraj(5), bad); err == nil {
		t.Fatal("degenerate window should error")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := DefaultScreen(window())
	ev, err := Events(lineTraj(12), s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, ev); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ev) {
		t.Fatalf("round trip length %d != %d", len(got), len(ev))
	}
	for i := range ev {
		if got[i] != ev[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got[i], ev[i])
		}
	}
}

func TestReadJSONLRejectsInvalid(t *testing.T) {
	cases := []string{
		``, // empty
		`{"t_ns":0,"kind":"move","x":1,"y":1}
{"t_ns":1,"kind":"up","x":1,"y":1}`, // starts with move
		`{"t_ns":0,"kind":"down","x":1,"y":1}
{"t_ns":1,"kind":"move","x":1,"y":1}`, // missing up
		`{"t_ns":5,"kind":"down","x":1,"y":1}
{"t_ns":1,"kind":"up","x":1,"y":1}`, // time disorder
		`not json`,
	}
	for i, c := range cases {
		if _, err := ReadJSONL(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestValidateKinds(t *testing.T) {
	bad := []Event{{Kind: Down}, {Kind: "wiggle", T: 1}, {Kind: Up, T: 2}}
	if err := Validate(bad); err == nil {
		t.Fatal("unknown kind should fail")
	}
	// Down in the middle is invalid.
	bad = []Event{{Kind: Down}, {Kind: Down, T: 1}, {Kind: Up, T: 2}}
	if err := Validate(bad); err == nil {
		t.Fatal("mid-sequence down should fail")
	}
}
