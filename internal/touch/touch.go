// Package touch converts reconstructed trajectories into touch-screen
// event sequences — the role the MonkeyRunner API plays in the paper's
// prototype (§6: reconstructed RFID trajectories are replayed as touch
// events on an Android phone, where MyScript Stylus interprets them).
//
// A trajectory in the writing plane (metres) is mapped through a
// calibration rectangle onto a pixel screen and emitted as a DOWN, MOVE…,
// UP sequence with the trace's own timing. Events serialize to a compact
// JSON-lines form any device bridge can replay.
package touch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/traj"
)

// Kind is the touch event type.
type Kind string

// Touch event kinds.
const (
	Down Kind = "down"
	Move Kind = "move"
	Up   Kind = "up"
)

// Event is one touch event in screen pixels.
type Event struct {
	// T is the event time since the gesture start.
	T time.Duration `json:"t_ns"`
	// Kind is down/move/up.
	Kind Kind `json:"kind"`
	// X and Y are screen pixels; the screen origin is top-left with Y
	// growing downward, as on Android.
	X int `json:"x"`
	Y int `json:"y"`
}

// Screen describes the target touch screen and the writing-plane window
// mapped onto it.
type Screen struct {
	// WidthPx and HeightPx are the screen dimensions in pixels.
	WidthPx, HeightPx int
	// Window is the writing-plane rectangle mapped to the full screen.
	// Writing-plane z grows upward; screen y grows downward, so the
	// mapping flips vertically.
	Window geom.Rect
}

// DefaultScreen maps the given writing-plane window onto a 1080×1920
// phone screen.
func DefaultScreen(window geom.Rect) Screen {
	return Screen{WidthPx: 1080, HeightPx: 1920, Window: window}
}

// Validate reports configuration errors.
func (s Screen) Validate() error {
	if s.WidthPx <= 0 || s.HeightPx <= 0 {
		return fmt.Errorf("touch: screen %d×%d px invalid", s.WidthPx, s.HeightPx)
	}
	if s.Window.Width() <= 0 || s.Window.Height() <= 0 {
		return fmt.Errorf("touch: degenerate window %+v", s.Window)
	}
	return nil
}

// Project maps a writing-plane point to screen pixels, clamping to the
// screen bounds.
func (s Screen) Project(p geom.Vec2) (x, y int) {
	fx := (p.X - s.Window.Min.X) / s.Window.Width()
	fz := (p.Z - s.Window.Min.Z) / s.Window.Height()
	x = int(fx * float64(s.WidthPx-1))
	y = int((1 - fz) * float64(s.HeightPx-1))
	if x < 0 {
		x = 0
	}
	if x >= s.WidthPx {
		x = s.WidthPx - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= s.HeightPx {
		y = s.HeightPx - 1
	}
	return x, y
}

// Events converts a trajectory into a touch event sequence: DOWN at the
// first sample, MOVE for each subsequent sample, UP at the end. Consecutive
// samples projecting to the same pixel are coalesced.
func Events(t traj.Trajectory, screen Screen) ([]Event, error) {
	if err := screen.Validate(); err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("touch: empty trajectory")
	}
	t0 := t.Points[0].T
	var out []Event
	lastX, lastY := -1, -1
	for i, p := range t.Points {
		x, y := screen.Project(p.Pos)
		kind := Move
		if i == 0 {
			kind = Down
		} else if x == lastX && y == lastY {
			continue
		}
		out = append(out, Event{T: p.T - t0, Kind: kind, X: x, Y: y})
		lastX, lastY = x, y
	}
	last := t.Points[t.Len()-1]
	x, y := screen.Project(last.Pos)
	out = append(out, Event{T: last.T - t0, Kind: Up, X: x, Y: y})
	return out, nil
}

// WriteJSONL writes events as JSON lines.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a JSON-lines event stream and validates its structure:
// it must open with Down, end with Up, and be time-ordered.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("touch: %w", err)
		}
		out = append(out, e)
	}
	if err := Validate(out); err != nil {
		return nil, err
	}
	return out, nil
}

// Validate checks the structural invariants of an event sequence.
func Validate(events []Event) error {
	if len(events) < 2 {
		return fmt.Errorf("touch: sequence needs at least down+up, got %d events", len(events))
	}
	if events[0].Kind != Down {
		return fmt.Errorf("touch: sequence must start with down, got %q", events[0].Kind)
	}
	if events[len(events)-1].Kind != Up {
		return fmt.Errorf("touch: sequence must end with up, got %q", events[len(events)-1].Kind)
	}
	for i, e := range events {
		if i > 0 && e.T < events[i-1].T {
			return fmt.Errorf("touch: event %d out of time order", i)
		}
		if i > 0 && i < len(events)-1 && e.Kind != Move {
			return fmt.Errorf("touch: event %d has kind %q mid-sequence", i, e.Kind)
		}
		switch e.Kind {
		case Down, Move, Up:
		default:
			return fmt.Errorf("touch: event %d has unknown kind %q", i, e.Kind)
		}
	}
	return nil
}
