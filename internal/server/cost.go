package server

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is the demand-signal side of admission control: per-session
// cost tracking and the node-level congestion score it rolls up into.
// The design follows the enhanced-VIP idea of driving forwarding and
// congestion decisions from per-object demand counters rather than flat
// caps: every session meters the rates that actually consume this node
// (search evaluations, WAL bandwidth, subscriber backlog, reorder-late
// pressure), each rate is normalized by a configurable capacity, and
// the worst normalized component is the node's congestion score.
// Admission sheds (HTTP 429 + Retry-After) at ShedThreshold; the
// pressure loop parks the lowest-cost durable sessions at ParkThreshold
// so the node degrades by shedding state it can rebuild from disk
// instead of collapsing.

// ErrOverloaded reports an open refused by the congestion score (as
// opposed to the hard MaxSessions cap, which is ErrSessionLimit). It is
// surfaced as HTTP 429 with a Retry-After.
var ErrOverloaded = errors.New("server: node overloaded")

// OverloadError carries the score and suggested backoff behind an
// ErrOverloaded refusal.
type OverloadError struct {
	// Score is the congestion score at refusal time.
	Score float64
	// RetryAfter is the suggested client backoff, scaled by how far past
	// the shed threshold the node is.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: node overloaded (congestion %.2f, retry after %s)", e.Score, e.RetryAfter)
}

// Unwrap lets errors.Is(err, ErrOverloaded) classify the refusal.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// retryAfterFor suggests a backoff proportional to the overshoot past
// the shed threshold: just past it, half a second; deep overload, up to
// five seconds. Clients that honor it spread their retries across the
// window the pressure loop needs to park sessions and recover headroom.
func retryAfterFor(score, shedAt float64) time.Duration {
	over := score - shedAt
	if over < 0 {
		over = 0
	}
	d := time.Duration((0.5 + 2*over) * float64(time.Second))
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// Capacity calibrates the congestion score: each per-session rate is
// normalized by the matching capacity before the components are
// combined. Zero fields take generous defaults sized so a lightly
// loaded node never sheds.
type Capacity struct {
	// SearchEvalsPerSec is the node's vote-surface evaluation budget.
	// Default 5e6/s.
	SearchEvalsPerSec float64
	// WALBytesPerSec is the node's durability write budget. Default
	// 64 MiB/s.
	WALBytesPerSec float64
	// LatePerSec bounds tolerated reorder-late deliveries (reports
	// reaching engines behind later-stamped ones — sustained lateness
	// means the node can no longer hold its reorder windows). Default
	// 10000/s.
	LatePerSec float64
	// Backlog is the tolerated worst-subscriber queue fill fraction in
	// [0, 1]. Default 0.75.
	Backlog float64
	// DowngradesPerSec bounds tolerated adaptive tier step-downs across
	// the node's subscribers — sustained downgrades mean fan-out demand
	// outruns what consumers can drain even at reduced stream weight.
	// Default 50/s.
	DowngradesPerSec float64
}

func (c Capacity) withDefaults() Capacity {
	if c.SearchEvalsPerSec <= 0 {
		c.SearchEvalsPerSec = 5e6
	}
	if c.WALBytesPerSec <= 0 {
		c.WALBytesPerSec = 64 << 20
	}
	if c.LatePerSec <= 0 {
		c.LatePerSec = 10000
	}
	if c.Backlog <= 0 {
		c.Backlog = 0.75
	}
	if c.DowngradesPerSec <= 0 {
		c.DowngradesPerSec = 50
	}
	return c
}

// CostSnapshot is one session's demand signal: the resource rates it
// drew between the last two samples, plus the scalar cost the park
// policy orders sessions by (normalized sum — lowest-cost durable
// sessions are parked first, since rebuilding them from their record is
// cheapest relative to the load they shed).
type CostSnapshot struct {
	EvalsPerSec    float64 `json:"evals_per_sec"`
	WALBytesPerSec float64 `json:"wal_bytes_per_sec"`
	LatePerSec     float64 `json:"late_per_sec"`
	// Backlog is the fill fraction of the session's fullest subscriber
	// queue at sample time (an instantaneous gauge, not a rate).
	Backlog float64 `json:"backlog"`
	// DowngradesPerSec is the rate of adaptive tier step-downs across the
	// session's subscribers: the fan-out pressure admission should see.
	DowngradesPerSec float64 `json:"downgrades_per_sec"`
	Cost             float64 `json:"cost"`
}

// costMeter turns a session's monotonic counters into rates by
// remembering the previous sample. Samples may come from any goroutine
// (the registry's congestion refresh, the control API); mu serializes
// them.
type costMeter struct {
	mu         sync.Mutex
	at         time.Time
	evals      int64
	wal        int64
	late       int64
	downgrades int64
	last       CostSnapshot
}

// sampleCost refreshes the session's cost snapshot from its counters.
// The first sample (and any zero-dt resample) returns the previous
// snapshot unchanged; counter regressions (Close zeroing the stats
// gauges) clamp to zero instead of going negative.
func (s *Session) sampleCost(now time.Time, cap Capacity) CostSnapshot {
	evals := s.searchEvals.Load()
	wal := s.walBytes.Load()
	late := s.reorderLate.Load()
	downgrades := s.tierDowngrades.Load()
	backlog := s.backlogFraction()
	m := &s.cost
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.at.IsZero() {
		if dt := now.Sub(m.at).Seconds(); dt > 0 {
			snap := CostSnapshot{
				EvalsPerSec:      rate(evals-m.evals, dt),
				WALBytesPerSec:   rate(wal-m.wal, dt),
				LatePerSec:       rate(late-m.late, dt),
				Backlog:          backlog,
				DowngradesPerSec: rate(downgrades-m.downgrades, dt),
			}
			snap.Cost = snap.EvalsPerSec/cap.SearchEvalsPerSec +
				snap.WALBytesPerSec/cap.WALBytesPerSec +
				snap.LatePerSec/cap.LatePerSec +
				snap.DowngradesPerSec/cap.DowngradesPerSec +
				backlog
			m.last = snap
		}
	}
	m.at, m.evals, m.wal, m.late, m.downgrades = now, evals, wal, late, downgrades
	return m.last
}

// Cost returns the session's last cost snapshot without resampling.
func (s *Session) Cost() CostSnapshot {
	s.cost.mu.Lock()
	defer s.cost.mu.Unlock()
	return s.cost.last
}

func rate(delta int64, dt float64) float64 {
	if delta <= 0 {
		return 0
	}
	return float64(delta) / dt
}

// backlogFraction is the fill fraction of the session's fullest
// subscriber queue — the demand signal for consumers that cannot keep
// up with what this session emits.
func (s *Session) backlogFraction() float64 {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	var worst float64
	for sub := range s.subs {
		if c := cap(sub.ch); c > 0 {
			if f := float64(len(sub.ch)) / float64(c); f > worst {
				worst = f
			}
		}
	}
	return worst
}

// ScoreComponents breaks the congestion score down by demand signal:
// each field is a capacity-normalized load in [0, ∞), and the score is
// their maximum — the node is as congested as its most saturated
// resource.
type ScoreComponents struct {
	SearchEvals float64 `json:"search_evals"`
	WALBytes    float64 `json:"wal_bytes"`
	ReorderLate float64 `json:"reorder_late"`
	Backlog     float64 `json:"backlog"`
	// SessionSlots is live sessions over MaxSessions: the flat cap folded
	// in as one signal among several instead of being the whole policy.
	SessionSlots float64 `json:"session_slots"`
	// TierPressure is the capacity-normalized adaptive-downgrade rate:
	// fan-out demand the consumers are absorbing by stepping down tiers.
	TierPressure float64 `json:"tier_pressure"`
}

// NodeScore is the rolled-up congestion state the admission check and
// the pressure loop act on.
type NodeScore struct {
	Score      float64         `json:"score"`
	Components ScoreComponents `json:"components"`
	SampledAt  time.Time       `json:"-"`
}

func maxScore(parts ScoreComponents) float64 {
	s := parts.SearchEvals
	for _, v := range []float64{parts.WALBytes, parts.ReorderLate, parts.Backlog, parts.SessionSlots, parts.TierPressure} {
		if v > s {
			s = v
		}
	}
	return s
}
