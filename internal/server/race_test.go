package server

import (
	"container/heap"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"rfidraw/internal/realtime"
	"rfidraw/internal/rfid"
)

// TestCatchupSubscriberSplicesWithoutGapOrDuplicate: a subscriber that
// attaches mid-stream with ?from=0 must see, per tag, exactly the point
// sequence a subscriber attached from the start saw — replayed prefix
// from the WAL, live tail spliced at the log head, no gap, no duplicate.
func TestCatchupSubscriberSplicesWithoutGapOrDuplicate(t *testing.T) {
	run, _ := scenario(t)
	reg := walRegistry(t, t.TempDir())
	sess, err := reg.Open(SessionSpec{ID: "catchup", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	reference, err := sess.Subscribe(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	type point struct {
		Tag        string
		T          time.Duration
		X, Z       float64
		Confidence float64
		Hypotheses int
		Switched   bool
	}
	var collectMu sync.Mutex
	collect := func(sub *Subscriber) (map[string][]point, func()) {
		got := map[string][]point{}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for ev := range sub.Events() {
				if ev.Type == "drop" {
					t.Error("oversized queue dropped events — comparison invalid")
				}
				if ev.Type != "point" {
					continue
				}
				collectMu.Lock()
				got[ev.Tag] = append(got[ev.Tag], point{
					Tag: ev.Tag, T: ev.T, X: ev.X, Z: ev.Z,
					Confidence: ev.Confidence, Hypotheses: ev.Hypotheses, Switched: ev.Switched,
				})
				collectMu.Unlock()
			}
		}()
		return got, func() { <-done }
	}
	total := func(m map[string][]point) int {
		collectMu.Lock()
		defer collectMu.Unlock()
		n := 0
		for _, ps := range m {
			n += len(ps)
		}
		return n
	}
	refPoints, refWait := collect(reference)

	merged := realtime.MergeStreams(run.ReportsRF...)
	mid := len(merged) / 2
	for _, rep := range merged[:mid] {
		if err := sess.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	// Attach the late subscriber mid-stream: full history requested.
	late, err := sess.SubscribeFrom(0, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	latePoints, lateWait := collect(late)
	for _, rep := range merged[mid:] {
		if err := sess.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	// After the flush the reference's point set is final; wait for the
	// late subscriber's replay to catch it before tearing down (deleting
	// the session cancels an in-flight catch-up, by design — the delete
	// also deletes the log it reads from).
	deadline := time.Now().Add(30 * time.Second)
	for total(latePoints) < total(refPoints) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	reg.Remove("catchup")
	refWait()
	lateWait()

	if len(refPoints) != len(run.Tags) {
		t.Fatalf("reference saw %d tags, want %d", len(refPoints), len(run.Tags))
	}
	for tag, ref := range refPoints {
		got := latePoints[tag]
		if len(got) != len(ref) {
			t.Fatalf("tag %s: late subscriber saw %d points, reference %d", tag, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("tag %s: point %d diverged across the splice:\n late: %+v\n  ref: %+v",
					tag, i, got[i], ref[i])
			}
		}
		// No duplicates or regressions across the catch-up→live boundary.
		for i := 1; i < len(got); i++ {
			if got[i].T <= got[i-1].T {
				t.Fatalf("tag %s: time regressed %v -> %v at %d", tag, got[i-1].T, got[i].T, i)
			}
		}
	}

	// A from in the middle of the log yields a strict suffix.
	sess2, err := reg.Open(SessionSpec{ID: "catchup2", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range merged {
		if err := sess2.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess2.Flush(); err != nil {
		t.Fatal(err)
	}
	head := sess2.WALSeq()
	suffix, err := sess2.SubscribeFrom(head/2, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	sufPoints, sufWait := collect(suffix)
	for total(sufPoints) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	reg.Remove("catchup2")
	sufWait()
	n := total(sufPoints)
	if n == 0 {
		t.Fatal("mid-log from produced no points")
	}
	if ref := total(refPoints); n >= ref {
		t.Fatalf("from=%d delivered %d points, not a strict suffix of %d", head/2, n, ref)
	}
}

// TestExpireIdleVsAttachRace is the lifecycle-race regression gate:
// hammering subscriber and reader attaches against ExpireIdle under
// -race, an attach must never succeed against a session that expiry
// tears down — either the attach wins and the session survives the GC
// pass, or the claim wins and the attach fails. Before expiry claimed
// the session atomically, an attach could land between the idle check
// and the teardown and be bound to a session mid-close.
func TestExpireIdleVsAttachRace(t *testing.T) {
	run, _ := scenario(t)
	reg := testRegistry(t, RegistryConfig{NoRecognize: true, MaxSessions: 4096})
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("race-%d", i)
		sess, err := reg.Open(SessionSpec{ID: id, Sweep: perTagSweep(run)})
		if err != nil {
			t.Fatal(err)
		}
		var (
			wg         sync.WaitGroup
			sub        *Subscriber
			subErr     error
			readerErr  error
			expiredIDs []string
		)
		conn, conn2 := net.Pipe()
		wg.Add(3)
		go func() {
			defer wg.Done()
			expiredIDs = reg.ExpireIdle(time.Now().Add(time.Hour), time.Minute)
		}()
		go func() {
			defer wg.Done()
			sub, subErr = sess.Subscribe(4)
		}()
		go func() {
			defer wg.Done()
			readerErr = sess.addReader(conn)
		}()
		wg.Wait()
		expired := false
		for _, eid := range expiredIDs {
			if eid == id {
				expired = true
			}
		}
		if expired && subErr == nil {
			t.Fatalf("iteration %d: subscriber attached to a session expiry tore down", i)
		}
		if expired && readerErr == nil {
			t.Fatalf("iteration %d: reader attached to a session expiry tore down", i)
		}
		if !expired {
			// The attach won; the session must be fully functional.
			if _, ok := reg.Get(id); !ok {
				t.Fatalf("iteration %d: unexpired session missing from registry", i)
			}
		}
		if sub != nil {
			sub.Close()
		}
		sess.removeReader(conn)
		conn.Close()
		conn2.Close()
		reg.Remove(id)
	}
}

// TestReorderHeapDeterministicTies: the resequencing heap must pop
// identically-timestamped reports in a deterministic order — time, then
// reader ID, then arrival — i.e. exactly the stable sort of the arrival
// stream by (time, reader). Property-tested over shuffled duplicates.
func TestReorderHeapDeterministicTies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(64)
		arrivals := make([]rfid.Report, n)
		for i := range arrivals {
			arrivals[i] = rfid.Report{
				// Few distinct timestamps → many ties.
				Time:      time.Duration(rng.Intn(4)) * time.Millisecond,
				ReaderID:  rng.Intn(3),
				AntennaID: rng.Intn(8),
				PhaseRad:  rng.Float64(),
			}
		}
		want := append([]rfid.Report(nil), arrivals...)
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].Time != want[j].Time {
				return want[i].Time < want[j].Time
			}
			return want[i].ReaderID < want[j].ReaderID
		})
		var h reportHeap
		for i, rep := range arrivals {
			heap.Push(&h, orderedReport{rep: rep, seq: uint64(i + 1)})
		}
		for i := 0; h.Len() > 0; i++ {
			got := heap.Pop(&h).(orderedReport).rep
			if got != want[i] {
				t.Fatalf("trial %d: pop %d = %+v, want %+v", trial, i, got, want[i])
			}
		}
	}
}
