package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rfidraw/internal/recognition"
)

// RegistryConfig tunes the session registry.
type RegistryConfig struct {
	// NewEngine binds a new session to a tracking engine. Required.
	NewEngine EngineFactory

	// MaxSessions is the admission-control cap on live sessions; opens
	// beyond it are shed. Default 128.
	MaxSessions int
	// MaxSubscribers caps stream consumers per session. Default 16.
	MaxSubscribers int
	// SubscriberQueue is the per-subscriber bounded queue depth (events).
	// Default 256.
	SubscriberQueue int
	// IngestBuffer is the per-session ingest inbox depth (reports);
	// beyond it, reader connections block (TCP backpressure). Default
	// 1024.
	IngestBuffer int
	// ReorderWindow is how long reports are held to resequence
	// cross-reader skew. Default 25ms.
	ReorderWindow time.Duration
	// GlyphGap is the stream-time silence that ends a stroke and
	// triggers glyph recognition. Default 400ms.
	GlyphGap time.Duration
	// GlyphMinPoints is the minimum stroke length worth classifying.
	// Default 8.
	GlyphMinPoints int
	// NoRecognize disables glyph recognition: no recognizer is built and
	// sessions emit only point events.
	NoRecognize bool

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 128
	}
	if c.MaxSubscribers <= 0 {
		c.MaxSubscribers = 16
	}
	if c.SubscriberQueue <= 0 {
		c.SubscriberQueue = 256
	}
	if c.IngestBuffer <= 0 {
		c.IngestBuffer = 1024
	}
	if c.ReorderWindow <= 0 {
		c.ReorderWindow = 25 * time.Millisecond
	}
	if c.GlyphGap <= 0 {
		c.GlyphGap = 400 * time.Millisecond
	}
	if c.GlyphMinPoints <= 0 {
		c.GlyphMinPoints = 8
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Registry is the session table: it owns session lifecycle (create,
// lookup, remove, idle expiry) and admission control by live-session
// count. It is safe for concurrent use and usable standalone (in-process
// sessions via rfidraw.System.OpenSession) or under a Server.
type Registry struct {
	cfg     RegistryConfig
	metrics *Metrics
	rec     *recognition.Recognizer

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool
}

// NewRegistry builds a registry. cfg.NewEngine is required.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	if cfg.NewEngine == nil {
		return nil, errors.New("server: RegistryConfig.NewEngine is required")
	}
	cfg = cfg.withDefaults()
	r := &Registry{
		cfg:      cfg,
		metrics:  &Metrics{},
		sessions: map[string]*Session{},
	}
	if !cfg.NoRecognize {
		rec, err := newRecognizer()
		if err != nil {
			return nil, err
		}
		r.rec = rec
	}
	return r, nil
}

// Metrics exposes the registry's counter set.
func (r *Registry) Metrics() *Metrics { return r.metrics }

// Open creates a session. id == "" assigns a random one. sweep, when
// positive, is the reader cadence (in-process sessions know it up front;
// ingest-fed sessions announce it with their first reader Hello and may
// pass 0 here). Opens beyond MaxSessions fail with ErrSessionLimit —
// explicit load shedding, surfaced as HTTP 503 by the API.
func (r *Registry) Open(id string, sweep time.Duration) (*Session, error) {
	if id == "" {
		id = randomID()
	} else if err := validateID(id); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if _, ok := r.sessions[id]; ok {
		r.mu.Unlock()
		return nil, ErrSessionExists
	}
	if len(r.sessions) >= r.cfg.MaxSessions {
		r.mu.Unlock()
		r.metrics.Shed.Add(1)
		return nil, ErrSessionLimit
	}
	s := newSession(r, id, sweep)
	r.sessions[id] = s
	r.mu.Unlock()
	r.metrics.SessionsCreated.Add(1)
	r.metrics.SessionsActive.Add(1)
	return s, nil
}

// Get looks a session up.
func (r *Registry) Get(id string) (*Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	return s, ok
}

// List returns the live sessions sorted by ID.
func (r *Registry) List() []*Session {
	r.mu.Lock()
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the live session count.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Remove closes a session and deletes it from the table, reporting
// whether it existed.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	s, ok := r.sessions[id]
	delete(r.sessions, id)
	r.mu.Unlock()
	if ok {
		s.Close()
		r.metrics.SessionsActive.Add(-1)
	}
	return ok
}

// ExpireIdle closes and removes sessions idle beyond the timeout (no
// ingest activity, readers or subscribers), returning their IDs.
func (r *Registry) ExpireIdle(now time.Time, idle time.Duration) []string {
	var expired []*Session
	r.mu.Lock()
	for id, s := range r.sessions {
		if s.expired(now, idle) {
			expired = append(expired, s)
			delete(r.sessions, id)
		}
	}
	r.mu.Unlock()
	ids := make([]string, 0, len(expired))
	for _, s := range expired {
		s.Close()
		r.metrics.SessionsActive.Add(-1)
		r.metrics.SessionsExpired.Add(1)
		ids = append(ids, s.ID)
	}
	sort.Strings(ids)
	return ids
}

// Close closes every session and refuses further opens. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	sessions := make([]*Session, 0, len(r.sessions))
	for id, s := range r.sessions {
		sessions = append(sessions, s)
		delete(r.sessions, id)
	}
	r.mu.Unlock()
	for _, s := range sessions {
		s.Close()
		r.metrics.SessionsActive.Add(-1)
	}
}

// validateID enforces the session-ID charset: IDs travel in URL paths
// (GET /v1/sessions/{id}) and the one-line ingest preamble, so
// whitespace, slashes and control bytes would create unaddressable
// sessions.
func validateID(id string) error {
	if len(id) > 64 {
		return fmt.Errorf("%w: id longer than 64 bytes", ErrBadSessionID)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("%w: byte %q in %q", ErrBadSessionID, c, id)
		}
	}
	return nil
}

// randomID draws a 12-hex-char session ID.
func randomID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// constant-prefix timestamp if it somehow does.
		return "s" + hex.EncodeToString([]byte(time.Now().Format("150405.000")))[:11]
	}
	return hex.EncodeToString(b[:])
}
