package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rfidraw/internal/recognition"
	"rfidraw/internal/wal"
)

// RegistryConfig tunes the session registry.
type RegistryConfig struct {
	// NewEngine binds a new session to a tracking engine. Required.
	NewEngine EngineFactory

	// WAL, when non-nil, makes every session durable: the pump records
	// its canonical resequenced report stream in a per-session
	// write-ahead log, closed-but-retained sessions are rehydrated into
	// the registry as "recovered" at construction, and retrace /
	// ?from=seq catch-up serve from the record. NewReplayer is then
	// required too.
	WAL *wal.Store
	// NewReplayer binds a WAL replay to a fresh tracking pipeline built
	// like NewEngine's (same deployment, same defaults), optionally
	// under an overridden SearchConfig. Required when WAL is set.
	NewReplayer ReplayerFactory

	// MaxSessions is the admission-control cap on live sessions; opens
	// beyond it are shed. Default 128.
	MaxSessions int
	// MaxSubscribers caps stream consumers per session. Default 16.
	MaxSubscribers int
	// SubscriberQueue is the per-subscriber bounded queue depth (events).
	// Default 256.
	SubscriberQueue int
	// IngestBuffer is the per-session ingest inbox depth (reports);
	// beyond it, reader connections block (TCP backpressure). Default
	// 1024.
	IngestBuffer int
	// ReorderWindow is how long reports are held to resequence
	// cross-reader skew. Default 25ms.
	ReorderWindow time.Duration
	// GlyphGap is the stream-time silence that ends a stroke and
	// triggers glyph recognition. Default 400ms.
	GlyphGap time.Duration
	// GlyphMinPoints is the minimum stroke length worth classifying.
	// Default 8.
	GlyphMinPoints int
	// NoRecognize disables glyph recognition: no recognizer is built and
	// sessions emit only point events.
	NoRecognize bool

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 128
	}
	if c.MaxSubscribers <= 0 {
		c.MaxSubscribers = 16
	}
	if c.SubscriberQueue <= 0 {
		c.SubscriberQueue = 256
	}
	if c.IngestBuffer <= 0 {
		c.IngestBuffer = 1024
	}
	if c.ReorderWindow <= 0 {
		c.ReorderWindow = 25 * time.Millisecond
	}
	if c.GlyphGap <= 0 {
		c.GlyphGap = 400 * time.Millisecond
	}
	if c.GlyphMinPoints <= 0 {
		c.GlyphMinPoints = 8
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Registry is the session table: it owns session lifecycle (create,
// lookup, remove, idle expiry) and admission control by live-session
// count. It is safe for concurrent use and usable standalone (in-process
// sessions via rfidraw.System.OpenSession) or under a Server.
type Registry struct {
	cfg     RegistryConfig
	metrics *Metrics
	rec     *recognition.Recognizer

	mu       sync.Mutex
	sessions map[string]*Session
	// live counts non-recovered sessions for admission control:
	// recovered sessions hold no engine or goroutines, so they do not
	// occupy MaxSessions slots (they do reserve their IDs).
	live   int
	closed bool
}

// NewRegistry builds a registry. cfg.NewEngine is required. With
// cfg.WAL set, closed-but-retained session logs found in the store are
// rehydrated as recovered sessions before the registry opens.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	if cfg.NewEngine == nil {
		return nil, errors.New("server: RegistryConfig.NewEngine is required")
	}
	if cfg.WAL != nil && cfg.NewReplayer == nil {
		return nil, errors.New("server: RegistryConfig.NewReplayer is required with WAL")
	}
	cfg = cfg.withDefaults()
	r := &Registry{
		cfg:      cfg,
		metrics:  &Metrics{},
		sessions: map[string]*Session{},
	}
	if !cfg.NoRecognize {
		rec, err := newRecognizer()
		if err != nil {
			return nil, err
		}
		r.rec = rec
	}
	if cfg.WAL != nil {
		if err := r.recover(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// recover rehydrates every retained session log into the registry in the
// recovered state. Unreadable logs are logged and skipped, never fatal —
// recovery's job is to bring back what the disk still holds.
func (r *Registry) recover() error {
	ids, err := r.cfg.WAL.Sessions()
	if err != nil {
		return fmt.Errorf("server: wal recovery: %w", err)
	}
	for _, id := range ids {
		meta, stats, err := r.cfg.WAL.Scan(id)
		if err != nil {
			r.cfg.Logf("server: wal recovery: session %s unreadable: %v", id, err)
			continue
		}
		if stats.TornBytes > 0 {
			r.metrics.WALTornBytes.Add(stats.TornBytes)
			r.cfg.Logf("server: wal recovery: session %s: dropped %d torn bytes", id, stats.TornBytes)
		}
		r.sessions[id] = newRecoveredSession(r, meta, stats)
		r.metrics.SessionsRecovered.Add(1)
		r.metrics.SessionsRetained.Add(1)
		r.cfg.Logf("server: wal recovery: session %s rehydrated (%d reports, clean=%v)",
			id, stats.Reports, stats.CleanClose)
	}
	return nil
}

// WALUsage reports the registry's on-disk log footprint (metrics); zero
// without a WAL store.
func (r *Registry) WALUsage() wal.Usage {
	if r.cfg.WAL == nil {
		return wal.Usage{}
	}
	return r.cfg.WAL.Usage()
}

// Metrics exposes the registry's counter set.
func (r *Registry) Metrics() *Metrics { return r.metrics }

// Open creates a session on the default antenna geometry. id == ""
// assigns a random one. sweep, when positive, is the reader cadence
// (in-process sessions know it up front; ingest-fed sessions announce it
// with their first reader Hello and may pass 0 here). Opens beyond
// MaxSessions fail with ErrSessionLimit — explicit load shedding,
// surfaced as HTTP 503 by the API.
func (r *Registry) Open(id string, sweep time.Duration) (*Session, error) {
	return r.OpenGeometry(id, sweep, "")
}

// OpenGeometry creates a session bound to a named antenna geometry
// (deploy registry name; "" is the default deployment). The geometry is
// fixed for the session's lifetime: the engine factory builds its
// steering tables from it, the WAL meta records it, and recovery and
// retrace rebuild the same tables.
func (r *Registry) OpenGeometry(id string, sweep time.Duration, geometry string) (*Session, error) {
	if id == "" {
		id = randomID()
	} else if err := validateID(id); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if _, ok := r.sessions[id]; ok {
		// Recovered sessions reserve their IDs too: DELETE the retained
		// record before reusing one.
		r.mu.Unlock()
		return nil, ErrSessionExists
	}
	if r.live >= r.cfg.MaxSessions {
		r.mu.Unlock()
		r.metrics.Shed.Add(1)
		return nil, ErrSessionLimit
	}
	s := newSession(r, id, sweep, geometry)
	r.sessions[id] = s
	r.live++
	r.mu.Unlock()
	r.metrics.SessionsCreated.Add(1)
	r.metrics.SessionsActive.Add(1)
	return s, nil
}

// Get looks a session up.
func (r *Registry) Get(id string) (*Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	return s, ok
}

// List returns the live sessions sorted by ID.
func (r *Registry) List() []*Session {
	r.mu.Lock()
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the live session count.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Remove closes a session, deletes it from the table AND deletes its
// retained WAL record if any (an explicit delete means forget),
// reporting whether it existed.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	s, ok := r.sessions[id]
	if ok && s.Closing() {
		// Idle expiry claimed this session and owns its teardown (it is
		// still in the table only because it will be parked recovered).
		// Stealing it here would double-count the accounting and yank
		// the record out from under enterRecovered; report not-found —
		// a later DELETE finds it in the recovered state and wins.
		r.mu.Unlock()
		return false
	}
	if ok {
		delete(r.sessions, id)
		if !s.Recovered() {
			r.live--
		} else {
			r.metrics.SessionsRetained.Add(-1)
		}
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	if s.Recovered() {
		s.closeRecovered()
	} else {
		s.Close()
		r.metrics.SessionsActive.Add(-1)
	}
	if r.cfg.WAL != nil {
		if err := r.cfg.WAL.Remove(id); err != nil {
			r.cfg.Logf("server: session %s: wal remove: %v", id, err)
		}
	}
	return true
}

// ExpireIdle closes sessions idle beyond the timeout (no ingest
// activity, readers or subscribers), returning their IDs. Expiry claims
// each session atomically (Session.claimExpiry) so an attach racing the
// expiry either keeps the session alive or is refused — never bound to
// a session mid-teardown. WAL-backed sessions that recorded anything are
// parked in the registry as "recovered" (the engine is reclaimed, the
// durable record stays serveable); the rest are removed.
func (r *Registry) ExpireIdle(now time.Time, idle time.Duration) []string {
	// The retain decision is snapshotted once, under the registry lock,
	// BEFORE the teardown: Session.Close appends the log's close record
	// (bumping the head), so re-evaluating afterwards could flip an
	// empty session from forget to retain after its table entry is gone.
	type claimed struct {
		s      *Session
		retain bool
	}
	var expired []claimed
	r.mu.Lock()
	for _, s := range r.sessions {
		if s.claimExpiry(now, idle) {
			expired = append(expired, claimed{s: s, retain: r.retainOnExpiry(s)})
		}
	}
	// Claimed sessions that will not be retained leave the table now;
	// retained ones keep their entry and flip to recovered after the
	// teardown below.
	for _, c := range expired {
		if !c.retain {
			delete(r.sessions, c.s.ID)
		}
		r.live--
	}
	r.mu.Unlock()
	ids := make([]string, 0, len(expired))
	for _, c := range expired {
		c.s.Close()
		r.metrics.SessionsActive.Add(-1)
		r.metrics.SessionsExpired.Add(1)
		if c.retain {
			c.s.enterRecovered()
			r.metrics.SessionsRetained.Add(1)
		} else if r.cfg.WAL != nil {
			// A forgotten expiry must not leave an orphan record for the
			// next restart to resurrect.
			if err := r.cfg.WAL.Remove(c.s.ID); err != nil {
				r.cfg.Logf("server: session %s: wal remove: %v", c.s.ID, err)
			}
		}
		ids = append(ids, c.s.ID)
	}
	sort.Strings(ids)
	return ids
}

// retainOnExpiry reports whether an expiring session's record outlives
// its engine: it does when durability is on and the session logged
// anything.
func (r *Registry) retainOnExpiry(s *Session) bool {
	return r.cfg.WAL != nil && s.WALSeq() > 0
}

// Close closes every session and refuses further opens. Retained WAL
// records survive (that is the point: the next daemon recovers them).
// Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	sessions := make([]*Session, 0, len(r.sessions))
	for id, s := range r.sessions {
		sessions = append(sessions, s)
		delete(r.sessions, id)
	}
	r.live = 0
	r.mu.Unlock()
	for _, s := range sessions {
		if s.Recovered() {
			s.closeRecovered()
			r.metrics.SessionsRetained.Add(-1)
			continue
		}
		if s.Closing() {
			// A concurrent idle expiry owns this session's accounting;
			// just make sure the teardown completes.
			s.Close()
			continue
		}
		s.Close()
		r.metrics.SessionsActive.Add(-1)
	}
}

// validateID enforces the session-ID charset: IDs travel in URL paths
// (GET /v1/sessions/{id}) and the one-line ingest preamble, so
// whitespace, slashes and control bytes would create unaddressable
// sessions.
func validateID(id string) error {
	if len(id) > 64 {
		return fmt.Errorf("%w: id longer than 64 bytes", ErrBadSessionID)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("%w: byte %q in %q", ErrBadSessionID, c, id)
		}
	}
	return nil
}

// randomID draws a 12-hex-char session ID.
func randomID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// constant-prefix timestamp if it somehow does.
		return "s" + hex.EncodeToString([]byte(time.Now().Format("150405.000")))[:11]
	}
	return hex.EncodeToString(b[:])
}
