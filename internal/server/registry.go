package server

import (
	"container/heap"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rfidraw/internal/obs"
	"rfidraw/internal/recognition"
	"rfidraw/internal/vote"
	"rfidraw/internal/wal"
)

// RegistryConfig tunes the session registry.
type RegistryConfig struct {
	// NewEngine binds a new session to a tracking engine. Required.
	NewEngine EngineFactory

	// WAL, when non-nil, makes every session durable: the pump records
	// its canonical resequenced report stream in a per-session
	// write-ahead log, closed-but-retained sessions are rehydrated into
	// the registry as "recovered" at construction, and retrace /
	// ?from=seq catch-up serve from the record. NewReplayer is then
	// required too.
	WAL *wal.Store
	// NewReplayer binds a WAL replay to a fresh tracking pipeline built
	// like NewEngine's (same deployment, same defaults), optionally
	// under an overridden SearchConfig. Required when WAL is set.
	NewReplayer ReplayerFactory

	// MaxSessions is the hard admission cap on live sessions; opens
	// beyond it are shed with ErrSessionLimit (HTTP 503). Before the cap
	// is reached, admission is governed by the congestion score — see
	// ShedThreshold. Default 128.
	MaxSessions int
	// MaxSubscribers caps stream consumers per session. Default 16.
	MaxSubscribers int
	// SubscriberQueue is the per-subscriber bounded queue depth (events).
	// Default 256.
	SubscriberQueue int
	// IngestBuffer is the per-session ingest inbox depth (bursts);
	// beyond it, reader connections block (TCP backpressure). Default
	// 1024.
	IngestBuffer int
	// IngestBurst caps how many reports one ingest connection batches
	// into a single inbox hand-off: after a blocking read delivers a
	// report, the gateway drains whatever further reports that socket
	// read buffered (up to this cap) and enqueues them as one burst —
	// one channel operation instead of one per report. Default 256.
	IngestBurst int
	// ReorderWindow is how long reports are held to resequence
	// cross-reader skew. Default 25ms.
	ReorderWindow time.Duration
	// GlyphGap is the stream-time silence that ends a stroke and
	// triggers glyph recognition. Default 400ms.
	GlyphGap time.Duration
	// GlyphMinPoints is the minimum stroke length worth classifying.
	// Default 8.
	GlyphMinPoints int
	// NoRecognize disables glyph recognition: no recognizer is built and
	// sessions emit only point events.
	NoRecognize bool

	// Capacity calibrates the congestion score's per-resource
	// normalization; zero fields take generous defaults.
	Capacity Capacity
	// ShedThreshold is the congestion score at or above which new
	// sessions are refused with ErrOverloaded (HTTP 429 + Retry-After).
	// 0 takes the default 0.9; negative disables score-driven shedding
	// (the MaxSessions hard cap still applies).
	ShedThreshold float64
	// ParkThreshold is the score at or above which the pressure loop
	// parks the lowest-cost durable sessions (engine reclaimed, record
	// kept serveable) until the score recovers. 0 takes the default
	// 0.75; negative disables parking under pressure.
	ParkThreshold float64
	// IdleTimeout is the initial idle-expiry deadline for live sessions
	// (mutable at runtime via the control plane). Default 2 minutes.
	IdleTimeout time.Duration
	// RetainFor bounds how long a parked (recovered) session's record is
	// kept with no retrace or catch-up activity before it is forgotten
	// and its log deleted. 0 (the default) retains forever.
	RetainFor time.Duration

	// TraceSampleN seeds the span-sampling knob: record a full
	// stage-by-stage span for 1 in N reports per session. 0 (the
	// default) disables sampling; mutable at runtime via the control
	// plane (trace_sample_n).
	TraceSampleN int

	// Logger, when non-nil, receives structured operational logs and
	// takes precedence over Logf.
	Logger *slog.Logger
	// LogLevel, when non-nil, is the shared level gate the control plane
	// mutates at runtime (log_level); nil builds a private one at Info.
	LogLevel *slog.LevelVar
	// Logf receives operational log lines when Logger is nil; nil
	// discards them. Retained as the legacy logging hook.
	Logf func(format string, args ...any)
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 128
	}
	if c.MaxSubscribers <= 0 {
		c.MaxSubscribers = 16
	}
	if c.SubscriberQueue <= 0 {
		c.SubscriberQueue = 256
	}
	if c.IngestBuffer <= 0 {
		c.IngestBuffer = 1024
	}
	if c.IngestBurst <= 0 {
		c.IngestBurst = 256
	}
	if c.ReorderWindow <= 0 {
		c.ReorderWindow = 25 * time.Millisecond
	}
	if c.GlyphGap <= 0 {
		c.GlyphGap = 400 * time.Millisecond
	}
	if c.GlyphMinPoints <= 0 {
		c.GlyphMinPoints = 8
	}
	if c.ShedThreshold == 0 {
		c.ShedThreshold = 0.9
	}
	if c.ParkThreshold == 0 {
		c.ParkThreshold = 0.75
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	c.Capacity = c.Capacity.withDefaults()
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// SessionSpec describes one session to open: the single creation
// surface Registry.Open, Client.CreateSession, System.OpenSession and
// POST /v1/sessions all accept, so a new per-session knob is one field
// here instead of another constructor pair everywhere.
type SessionSpec struct {
	// ID names the session; "" assigns a random one.
	ID string
	// Sweep, when positive, is the per-tag reader cadence known up
	// front; ingest-fed sessions may leave it 0 and let the first reader
	// Hello announce it.
	Sweep time.Duration
	// Geometry names the session's antenna geometry (deploy registry
	// name); "" is the default deployment. Fixed for the session's
	// lifetime: the engine builds its steering tables from it, the WAL
	// meta records it, and recovery and retrace rebuild the same tables.
	Geometry string
	// Search, when non-nil, overrides the deployment's vote-search
	// configuration for this session. It is recorded in the WAL meta so
	// recovery, retrace and catch-up rebuild the same search the live
	// engine ran. TopK and Levels must fit in [0, 255] (the meta
	// encoding); nil takes the registry's runtime default.
	Search *vote.SearchConfig
	// WAL is the session's durability policy.
	WAL WALPolicy
}

// WALPolicy tunes one session's write-ahead logging.
type WALPolicy struct {
	// Disable opts this session out of the registry's WAL store: no
	// record, no retrace, no parking — an explicitly ephemeral session.
	Disable bool
	// SyncEvery, when positive, overrides the store's report-append
	// fsync cadence for this session's log (1 = sync every report). 0
	// takes the registry's runtime default.
	SyncEvery int
}

// ErrBadSpec reports a SessionSpec that cannot be opened as given.
var ErrBadSpec = errors.New("server: invalid session spec")

// knobs is the registry's mutable runtime configuration: the control
// plane reads and writes it while sessions are being served, so it
// lives behind its own lock instead of in the immutable RegistryConfig.
type knobs struct {
	mu      sync.Mutex
	idle    time.Duration
	retain  time.Duration
	shedAt  float64 // <= 0 disables score-driven shedding
	parkAt  float64 // <= 0 disables parking under pressure
	cap     Capacity
	walSync int                // default SyncEvery for new session logs; 0 = store default
	search  *vote.SearchConfig // default search for new sessions; nil = deployment default
}

// KnobState is a snapshot of the registry's runtime knobs.
type KnobState struct {
	IdleTimeout   time.Duration
	RetainFor     time.Duration
	ShedThreshold float64
	ParkThreshold float64
	Capacity      Capacity
	WALSyncEvery  int
	Search        *vote.SearchConfig
	// TraceSampleN is the span-sampling knob (1-in-N reports, 0 = off).
	TraceSampleN int
	// LogLevel is the structured-logging level gate ("debug", "info",
	// "warn", "error").
	LogLevel string
}

// KnobPatch mutates a subset of the runtime knobs; nil fields keep
// their current value. Threshold values <= 0 disable that policy. A
// Capacity replacement is normalized (zero fields take defaults).
type KnobPatch struct {
	IdleTimeout   *time.Duration
	RetainFor     *time.Duration
	ShedThreshold *float64
	ParkThreshold *float64
	Capacity      *Capacity
	WALSyncEvery  *int
	// SetSearch replaces the default-search knob with Search (which may
	// be nil, restoring the deployment default).
	SetSearch bool
	Search    *vote.SearchConfig
	// TraceSampleN sets the span-sampling knob (0 disables).
	TraceSampleN *int
	// LogLevel sets the structured-logging level gate.
	LogLevel *string
}

// Knobs snapshots the runtime knobs.
func (r *Registry) Knobs() KnobState {
	k := &r.knobs
	k.mu.Lock()
	defer k.mu.Unlock()
	st := KnobState{
		IdleTimeout:   k.idle,
		RetainFor:     k.retain,
		ShedThreshold: k.shedAt,
		ParkThreshold: k.parkAt,
		Capacity:      k.cap,
		WALSyncEvery:  k.walSync,
	}
	if k.search != nil {
		cp := *k.search
		st.Search = &cp
	}
	st.TraceSampleN = int(r.traceSampleN.Load())
	st.LogLevel = levelName(r.levelVar.Level())
	return st
}

// ApplyKnobs mutates the runtime knobs, validating as it goes.
func (r *Registry) ApplyKnobs(p KnobPatch) error {
	if p.IdleTimeout != nil && *p.IdleTimeout <= 0 {
		return fmt.Errorf("%w: idle timeout must be positive", ErrBadSpec)
	}
	if p.RetainFor != nil && *p.RetainFor < 0 {
		return fmt.Errorf("%w: retention must be >= 0", ErrBadSpec)
	}
	if p.WALSyncEvery != nil && *p.WALSyncEvery < 0 {
		return fmt.Errorf("%w: wal sync cadence must be >= 0", ErrBadSpec)
	}
	if p.SetSearch && p.Search != nil {
		if err := validateSearch(p.Search); err != nil {
			return err
		}
	}
	if p.TraceSampleN != nil && *p.TraceSampleN < 0 {
		return fmt.Errorf("%w: trace sample cadence must be >= 0", ErrBadSpec)
	}
	var level slog.Level
	if p.LogLevel != nil {
		var err error
		if level, err = parseLevel(*p.LogLevel); err != nil {
			return err
		}
	}
	if p.TraceSampleN != nil {
		r.traceSampleN.Store(int64(*p.TraceSampleN))
	}
	if p.LogLevel != nil {
		r.levelVar.Set(level)
	}
	k := &r.knobs
	k.mu.Lock()
	defer k.mu.Unlock()
	if p.IdleTimeout != nil {
		k.idle = *p.IdleTimeout
	}
	if p.RetainFor != nil {
		k.retain = *p.RetainFor
	}
	if p.ShedThreshold != nil {
		k.shedAt = *p.ShedThreshold
	}
	if p.ParkThreshold != nil {
		k.parkAt = *p.ParkThreshold
	}
	if p.Capacity != nil {
		k.cap = p.Capacity.withDefaults()
	}
	if p.WALSyncEvery != nil {
		k.walSync = *p.WALSyncEvery
	}
	if p.SetSearch {
		k.search = nil
		if p.Search != nil {
			cp := *p.Search
			k.search = &cp
		}
	}
	return nil
}

// IdleTimeout reads the runtime idle-expiry knob.
func (r *Registry) IdleTimeout() time.Duration {
	r.knobs.mu.Lock()
	defer r.knobs.mu.Unlock()
	return r.knobs.idle
}

// RetainFor reads the runtime retention knob (0 = retain forever).
func (r *Registry) RetainFor() time.Duration {
	r.knobs.mu.Lock()
	defer r.knobs.mu.Unlock()
	return r.knobs.retain
}

func (r *Registry) capacity() Capacity {
	r.knobs.mu.Lock()
	defer r.knobs.mu.Unlock()
	return r.knobs.cap
}

func (r *Registry) shedAt() float64 {
	r.knobs.mu.Lock()
	defer r.knobs.mu.Unlock()
	return r.knobs.shedAt
}

func (r *Registry) parkAt() float64 {
	r.knobs.mu.Lock()
	defer r.knobs.mu.Unlock()
	return r.knobs.parkAt
}

func (r *Registry) defaultSpec(spec SessionSpec) SessionSpec {
	r.knobs.mu.Lock()
	defer r.knobs.mu.Unlock()
	if spec.Search == nil && r.knobs.search != nil {
		cp := *r.knobs.search
		spec.Search = &cp
	}
	if spec.WAL.SyncEvery == 0 {
		spec.WAL.SyncEvery = r.knobs.walSync
	}
	return spec
}

// Registry is the session table: it owns session lifecycle (create,
// lookup, remove, park/resume, idle expiry) and demand-driven admission
// control. It is safe for concurrent use and usable standalone
// (in-process sessions via rfidraw.System.OpenSession) or under a
// Server.
type Registry struct {
	cfg     RegistryConfig
	metrics *Metrics
	rec     *recognition.Recognizer
	knobs   knobs

	// logger is the resolved structured logger (never nil); levelVar is
	// its runtime-mutable level gate.
	logger   *slog.Logger
	levelVar *slog.LevelVar
	// pipeline aggregates every session's stage and end-to-end latency
	// stamps into the /metrics histograms.
	pipeline *obs.Pipeline
	// traceSampleN is the hot-path span-sampling knob (1-in-N reports;
	// 0 = off), atomic because the pump reads it per release.
	traceSampleN atomic.Int64
	// stripeSeq deals histogram stripes to new sessions round-robin.
	stripeSeq atomic.Int64

	mu       sync.Mutex
	sessions map[string]*Session
	// live counts non-recovered sessions for admission control:
	// recovered sessions hold no engine or goroutines, so they do not
	// occupy MaxSessions slots (they do reserve their IDs).
	live   int
	closed bool
	// idleQ and retainedQ index sessions by deadline so expiry pops only
	// what is due instead of scanning the whole table per tick: idleQ
	// orders live sessions by their last-activity snapshot, retainedQ
	// orders recovered sessions for retention expiry. Entries are lazy —
	// a touched session is re-queued at its fresher stamp when popped,
	// never updated in place.
	idleQ     deadlineHeap
	retainedQ deadlineHeap

	// scoreMu guards the cached congestion score (see cost.go).
	scoreMu sync.Mutex
	score   NodeScore
}

// NewRegistry builds a registry. cfg.NewEngine is required. With
// cfg.WAL set, closed-but-retained session logs found in the store are
// rehydrated as recovered sessions before the registry opens.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	if cfg.NewEngine == nil {
		return nil, errors.New("server: RegistryConfig.NewEngine is required")
	}
	if cfg.WAL != nil && cfg.NewReplayer == nil {
		return nil, errors.New("server: RegistryConfig.NewReplayer is required with WAL")
	}
	cfg = cfg.withDefaults()
	r := &Registry{
		cfg:      cfg,
		metrics:  &Metrics{},
		sessions: map[string]*Session{},
		pipeline: &obs.Pipeline{},
		levelVar: cfg.LogLevel,
	}
	if r.levelVar == nil {
		r.levelVar = &slog.LevelVar{}
	}
	r.logger = cfg.Logger
	if r.logger == nil {
		r.logger = slog.New(newLogfHandler(cfg.Logf, r.levelVar))
	}
	if cfg.TraceSampleN > 0 {
		r.traceSampleN.Store(int64(cfg.TraceSampleN))
	}
	r.knobs = knobs{
		idle:   cfg.IdleTimeout,
		retain: cfg.RetainFor,
		shedAt: cfg.ShedThreshold,
		parkAt: cfg.ParkThreshold,
		cap:    cfg.Capacity,
	}
	if !cfg.NoRecognize {
		rec, err := newRecognizer()
		if err != nil {
			return nil, err
		}
		r.rec = rec
	}
	if cfg.WAL != nil {
		if err := r.recover(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// recover rehydrates every retained session log into the registry in the
// recovered state. Unreadable logs are logged and skipped, never fatal —
// recovery's job is to bring back what the disk still holds.
func (r *Registry) recover() error {
	ids, err := r.cfg.WAL.Sessions()
	if err != nil {
		return fmt.Errorf("server: wal recovery: %w", err)
	}
	for _, id := range ids {
		meta, stats, err := r.cfg.WAL.Scan(id)
		if err != nil {
			r.logger.Warn("wal recovery: session unreadable", "session", id, "err", err)
			continue
		}
		if stats.TornBytes > 0 {
			r.metrics.WALTornBytes.Add(stats.TornBytes)
			r.logger.Warn("wal recovery: dropped torn bytes", "session", id, "bytes", stats.TornBytes)
		}
		s := newRecoveredSession(r, meta, stats)
		r.sessions[id] = s
		r.queueRetained(s)
		r.metrics.SessionsRecovered.Add(1)
		r.metrics.SessionsRetained.Add(1)
		r.logger.Info("wal recovery: session rehydrated",
			"session", id, "reports", stats.Reports, "clean", stats.CleanClose)
	}
	return nil
}

// WALUsage reports the registry's on-disk log footprint (metrics); zero
// without a WAL store.
func (r *Registry) WALUsage() wal.Usage {
	if r.cfg.WAL == nil {
		return wal.Usage{}
	}
	return r.cfg.WAL.Usage()
}

// Metrics exposes the registry's counter set.
func (r *Registry) Metrics() *Metrics { return r.metrics }

// Pipeline exposes the registry's latency histograms.
func (r *Registry) Pipeline() *obs.Pipeline { return r.pipeline }

// Logger exposes the registry's resolved structured logger.
func (r *Registry) Logger() *slog.Logger { return r.logger }

// TraceSampleN reads the span-sampling knob (0 = off).
func (r *Registry) TraceSampleN() int { return int(r.traceSampleN.Load()) }

// nextStripe deals the next session's histogram stripe.
func (r *Registry) nextStripe() int { return int(r.stripeSeq.Add(1)) }

// Open creates a session from a spec. Opens at the MaxSessions hard cap
// fail with ErrSessionLimit (HTTP 503); below it, a congestion score at
// or past the shed threshold fails with an OverloadError wrapping
// ErrOverloaded (HTTP 429 + Retry-After) — admission is driven by what
// the node is actually spending, not the flat count alone.
func (r *Registry) Open(spec SessionSpec) (*Session, error) {
	if spec.ID == "" {
		spec.ID = randomID()
	} else if err := validateID(spec.ID); err != nil {
		return nil, err
	}
	if spec.Search != nil {
		if err := validateSearch(spec.Search); err != nil {
			return nil, err
		}
		cp := *spec.Search
		spec.Search = &cp
	}
	spec = r.defaultSpec(spec)
	// First pass: the checks that need no cost sampling. The hard cap is
	// examined before the score so a full node always answers 503, and
	// an ID conflict is never reported as overload.
	if err := r.admitLocked(spec.ID); err != nil {
		return nil, err
	}
	// Score-driven admission: sample outside r.mu (sampling takes
	// per-session locks).
	if shedAt := r.shedAt(); shedAt > 0 {
		sc := r.refreshCongestionIfStale(time.Now())
		if sc.Score >= shedAt {
			r.metrics.Shed.Add(1)
			r.metrics.AdmissionRejected.Add(1)
			return nil, &OverloadError{Score: sc.Score, RetryAfter: retryAfterFor(sc.Score, shedAt)}
		}
	}
	r.mu.Lock()
	// Re-check under the lock: a racing open may have taken the last
	// slot or the ID while the score was sampling.
	if err := r.admitLockedUnsafe(spec.ID); err != nil {
		r.mu.Unlock()
		return nil, err
	}
	s := newSession(r, spec, resumeState{})
	r.sessions[spec.ID] = s
	r.live++
	r.queueIdle(s)
	r.mu.Unlock()
	r.metrics.SessionsCreated.Add(1)
	r.metrics.SessionsActive.Add(1)
	return s, nil
}

// admitLocked runs the lock-scope admission checks under r.mu.
func (r *Registry) admitLocked(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.admitLockedUnsafe(id)
}

// admitLockedUnsafe is admitLocked's body; the caller holds r.mu.
func (r *Registry) admitLockedUnsafe(id string) error {
	if r.closed {
		return ErrSessionClosed
	}
	if _, ok := r.sessions[id]; ok {
		// Recovered sessions reserve their IDs too: DELETE the retained
		// record (or resume it) before reusing one.
		return ErrSessionExists
	}
	if r.live >= r.cfg.MaxSessions {
		r.metrics.Shed.Add(1)
		return ErrSessionLimit
	}
	return nil
}

// OpenGeometry creates a session bound to a named antenna geometry.
//
// Deprecated: build a SessionSpec and call Open; this wrapper survives
// for old callers only.
func (r *Registry) OpenGeometry(id string, sweep time.Duration, geometry string) (*Session, error) {
	return r.Open(SessionSpec{ID: id, Sweep: sweep, Geometry: geometry})
}

// validateSearch bounds a per-session search override to what the WAL
// meta can record (and sane mode values).
func validateSearch(sc *vote.SearchConfig) error {
	if sc.Mode != vote.SearchHierarchical && sc.Mode != vote.SearchDense {
		return fmt.Errorf("%w: unknown search mode %d", ErrBadSpec, sc.Mode)
	}
	if sc.TopK < 0 || sc.TopK > 255 {
		return fmt.Errorf("%w: search top_k %d outside [0, 255]", ErrBadSpec, sc.TopK)
	}
	if sc.Levels < 0 || sc.Levels > 255 {
		return fmt.Errorf("%w: search levels %d outside [0, 255]", ErrBadSpec, sc.Levels)
	}
	return nil
}

// Get looks a session up.
func (r *Registry) Get(id string) (*Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	return s, ok
}

// List returns the live sessions sorted by ID.
func (r *Registry) List() []*Session {
	r.mu.Lock()
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the live session count.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Remove closes a session, deletes it from the table AND deletes its
// retained WAL record if any (an explicit delete means forget),
// reporting whether it existed.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	s, ok := r.sessions[id]
	if ok && s.Closing() {
		// Idle expiry (or a park) claimed this session and owns its
		// teardown (it is still in the table only because it will be
		// parked recovered). Stealing it here would double-count the
		// accounting and yank the record out from under enterRecovered;
		// report not-found — a later DELETE finds it in the recovered
		// state and wins.
		r.mu.Unlock()
		return false
	}
	if ok {
		delete(r.sessions, id)
		if !s.Recovered() {
			r.live--
		} else {
			r.metrics.SessionsRetained.Add(-1)
		}
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	if s.Recovered() {
		s.closeRecovered()
	} else {
		s.Close()
		r.metrics.SessionsActive.Add(-1)
	}
	if r.cfg.WAL != nil {
		if err := r.cfg.WAL.Remove(id); err != nil {
			r.logger.Error("wal remove failed", "session", id, "err", err)
		}
	}
	return true
}

// RefreshCongestion re-samples every live session's cost and rolls the
// node congestion score up from the sums (see cost.go). It is called by
// the server's pressure loop, by admission when the cached score has
// gone stale, and by /metrics and the control API so operators always
// read a current value.
func (r *Registry) RefreshCongestion(now time.Time) NodeScore {
	capacity := r.capacity()
	r.mu.Lock()
	live := make([]*Session, 0, r.live)
	for _, s := range r.sessions {
		if !s.Recovered() && !s.Closing() {
			live = append(live, s)
		}
	}
	liveCount := r.live
	maxSessions := r.cfg.MaxSessions
	r.mu.Unlock()
	var parts ScoreComponents
	for _, s := range live {
		c := s.sampleCost(now, capacity)
		parts.SearchEvals += c.EvalsPerSec
		parts.WALBytes += c.WALBytesPerSec
		parts.ReorderLate += c.LatePerSec
		parts.TierPressure += c.DowngradesPerSec
		if c.Backlog > parts.Backlog {
			parts.Backlog = c.Backlog
		}
	}
	parts.SearchEvals /= capacity.SearchEvalsPerSec
	parts.WALBytes /= capacity.WALBytesPerSec
	parts.ReorderLate /= capacity.LatePerSec
	parts.Backlog /= capacity.Backlog
	parts.TierPressure /= capacity.DowngradesPerSec
	parts.SessionSlots = float64(liveCount) / float64(maxSessions)
	score := NodeScore{Score: maxScore(parts), Components: parts, SampledAt: now}
	r.scoreMu.Lock()
	r.score = score
	r.scoreMu.Unlock()
	r.metrics.setCongestion(score.Score)
	return score
}

// congestionStaleness bounds how old a cached score admission will act
// on before re-sampling (registries without a pressure loop refresh on
// the admission path itself).
const congestionStaleness = 500 * time.Millisecond

// Congestion returns the cached congestion score.
func (r *Registry) Congestion() NodeScore {
	r.scoreMu.Lock()
	defer r.scoreMu.Unlock()
	return r.score
}

func (r *Registry) refreshCongestionIfStale(now time.Time) NodeScore {
	r.scoreMu.Lock()
	sc := r.score
	r.scoreMu.Unlock()
	if !sc.SampledAt.IsZero() && now.Sub(sc.SampledAt) < congestionStaleness {
		return sc
	}
	return r.RefreshCongestion(now)
}

// ParkUnderPressure is the pressure loop's relief valve: while the
// congestion score sits at or above the park threshold, it parks the
// lowest-cost durable live sessions — the sessions whose records can be
// rebuilt from disk for the least lost value — one at a time, until the
// score recovers or no candidates remain. Returns the parked IDs.
func (r *Registry) ParkUnderPressure(now time.Time) []string {
	parkAt := r.parkAt()
	if parkAt <= 0 || r.cfg.WAL == nil {
		return nil
	}
	sc := r.RefreshCongestion(now)
	if sc.Score < parkAt {
		return nil
	}
	type cand struct {
		s    *Session
		cost float64
	}
	r.mu.Lock()
	cands := make([]cand, 0, r.live)
	for _, s := range r.sessions {
		if !s.Recovered() && !s.Closing() && s.WALSeq() > 0 {
			cands = append(cands, cand{s: s, cost: s.Cost().Cost})
		}
	}
	r.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].s.ID < cands[j].s.ID
	})
	var parked []string
	for _, c := range cands {
		if len(parked) > 0 {
			// Parked sessions leave the live set, so a re-roll drops their
			// contribution; stop as soon as the node is back under.
			if sc = r.RefreshCongestion(now); sc.Score < parkAt {
				break
			}
		}
		if err := r.parkSession(c.s, "pressure"); err == nil {
			parked = append(parked, c.s.ID)
			r.logger.Info("session parked under pressure", "session", c.s.ID, "score", sc.Score)
		}
	}
	return parked
}

// Park parks one live durable session on operator request: the engine
// and goroutines are reclaimed, readers and subscribers are
// disconnected, and the session stays in the registry in the recovered
// state, serveable (retrace, catch-up) and resumable. Parking an
// already-parked session is a no-op.
func (r *Registry) Park(id string) error {
	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	if !ok {
		return ErrUnknownSession
	}
	return r.parkSession(s, "operator")
}

func (r *Registry) parkSession(s *Session, reason string) error {
	if r.cfg.WAL == nil || s.WALSeq() == 0 {
		return ErrNotDurable
	}
	r.mu.Lock()
	if r.sessions[s.ID] != s {
		r.mu.Unlock()
		return ErrUnknownSession
	}
	if !s.claimPark() {
		recovered := s.Recovered()
		r.mu.Unlock()
		if recovered {
			return nil // already parked: the verb is idempotent
		}
		return ErrNotLive
	}
	r.live--
	r.mu.Unlock()
	s.timeline.Record(obs.EventPark, reason)
	s.Close()
	r.metrics.SessionsActive.Add(-1)
	r.metrics.SessionsParked.Add(1)
	s.enterRecovered()
	r.metrics.SessionsRetained.Add(1)
	r.mu.Lock()
	if r.sessions[s.ID] == s {
		r.queueRetained(s)
	}
	r.mu.Unlock()
	return nil
}

// Resume brings a parked (recovered) session back live: a fresh session
// under the same ID, geometry and search configuration, its write-ahead
// log reopened for append (never truncated) with sequence numbers
// continuing past the retained head — so a later retrace replays the
// whole record, pre-park and post-resume, as one stream. Resume is
// gated by the MaxSessions hard cap but not the congestion score: an
// operator resuming a session is explicitly spending headroom.
func (r *Registry) Resume(id string) (*Session, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrSessionClosed
	}
	old, ok := r.sessions[id]
	if !ok {
		r.mu.Unlock()
		return nil, ErrUnknownSession
	}
	if !old.Recovered() {
		r.mu.Unlock()
		return nil, ErrNotParked
	}
	if r.cfg.WAL == nil {
		r.mu.Unlock()
		return nil, ErrNoWAL
	}
	if r.live >= r.cfg.MaxSessions {
		r.mu.Unlock()
		r.metrics.Shed.Add(1)
		return nil, ErrSessionLimit
	}
	sweep := time.Duration(old.sweepNs.Load())
	if sweep <= 0 || old.WALSeq() == 0 {
		r.mu.Unlock()
		return nil, ErrNotDurable
	}
	spec := SessionSpec{
		ID:       id,
		Sweep:    sweep,
		Geometry: old.geometry,
		Search:   old.search,
		WAL:      old.walPolicy,
	}
	s := newSession(r, spec, resumeState{from: old.WALSeq(), created: old.Created, timeline: old.timeline})
	r.sessions[id] = s
	r.live++
	r.queueIdle(s)
	r.mu.Unlock()
	old.closeRecovered()
	r.metrics.SessionsRetained.Add(-1)
	r.metrics.SessionsResumed.Add(1)
	r.metrics.SessionsActive.Add(1)
	r.logger.Info("session resumed", "session", id, "from_seq", s.resumeFrom)
	return s, nil
}

// deadlineEntry is one lazy heap entry: the session and the lastActive
// stamp it was queued at. The session is re-examined when the stamp's
// deadline passes; a fresher stamp re-queues it instead of expiring it.
type deadlineEntry struct {
	s    *Session
	seen int64 // unix nanos
}

// deadlineHeap orders sessions by queued-at stamp, oldest first.
type deadlineHeap []deadlineEntry

func (h deadlineHeap) Len() int           { return len(h) }
func (h deadlineHeap) Less(i, j int) bool { return h[i].seen < h[j].seen }
func (h deadlineHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *deadlineHeap) Push(x any)        { *h = append(*h, x.(deadlineEntry)) }
func (h *deadlineHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// queueIdle / queueRetained index a session for deadline-ordered
// expiry. Caller holds r.mu.
func (r *Registry) queueIdle(s *Session) {
	heap.Push(&r.idleQ, deadlineEntry{s: s, seen: s.lastActive.Load()})
}

func (r *Registry) queueRetained(s *Session) {
	heap.Push(&r.retainedQ, deadlineEntry{s: s, seen: s.lastActive.Load()})
}

// ExpireIdle closes sessions idle beyond the timeout (no ingest
// activity, readers or subscribers), returning their IDs. The idle
// index makes a quiet tick O(1) and a busy one O(k log n) for k due
// sessions — no linear scan of the table. Expiry claims each session
// atomically (Session.claimExpiry) so an attach racing the expiry
// either keeps the session alive or is refused — never bound to a
// session mid-teardown. WAL-backed sessions that recorded anything are
// parked in the registry as "recovered" (the engine is reclaimed, the
// durable record stays serveable); the rest are removed.
func (r *Registry) ExpireIdle(now time.Time, idle time.Duration) []string {
	// The retain decision is snapshotted once, under the registry lock,
	// BEFORE the teardown: Session.Close appends the log's close record
	// (bumping the head), so re-evaluating afterwards could flip an
	// empty session from forget to retain after its table entry is gone.
	type claimed struct {
		s      *Session
		retain bool
	}
	var expired []claimed
	var held []deadlineEntry
	r.mu.Lock()
	for r.idleQ.Len() > 0 {
		top := r.idleQ[0]
		if time.Unix(0, top.seen).Add(idle).After(now) {
			break // nothing older is queued: the heap is deadline-ordered
		}
		heap.Pop(&r.idleQ)
		s := top.s
		if cur, ok := r.sessions[s.ID]; !ok || cur != s {
			continue // removed, or replaced by a resume: stale entry
		}
		if last := s.lastActive.Load(); last != top.seen {
			// Touched since it was queued: re-arm at the fresher stamp.
			heap.Push(&r.idleQ, deadlineEntry{s: s, seen: last})
			continue
		}
		if s.claimExpiry(now, idle) {
			expired = append(expired, claimed{s: s, retain: r.retainOnExpiry(s)})
			continue
		}
		// The claim was refused: either the session is no longer live
		// (closed, parked — drop the entry; retainedQ owns parked ones)
		// or an attach holds it open with a stale activity stamp. Re-arm
		// the latter at its current stamp so the NEXT call re-examines it
		// — deferred past the loop, or it would pop straight back out.
		if s.State() == "live" {
			held = append(held, deadlineEntry{s: s, seen: s.lastActive.Load()})
		}
	}
	for _, e := range held {
		heap.Push(&r.idleQ, e)
	}
	// Claimed sessions that will not be retained leave the table now;
	// retained ones keep their entry and flip to recovered after the
	// teardown below.
	for _, c := range expired {
		if !c.retain {
			delete(r.sessions, c.s.ID)
		}
		r.live--
	}
	r.mu.Unlock()
	ids := make([]string, 0, len(expired))
	for _, c := range expired {
		if c.retain {
			c.s.timeline.Record(obs.EventPark, "idle expiry")
		}
		c.s.Close()
		r.metrics.SessionsActive.Add(-1)
		r.metrics.SessionsExpired.Add(1)
		if c.retain {
			c.s.enterRecovered()
			r.metrics.SessionsRetained.Add(1)
			r.mu.Lock()
			if r.sessions[c.s.ID] == c.s {
				r.queueRetained(c.s)
			}
			r.mu.Unlock()
		} else if r.cfg.WAL != nil {
			// A forgotten expiry must not leave an orphan record for the
			// next restart to resurrect.
			if err := r.cfg.WAL.Remove(c.s.ID); err != nil {
				r.logger.Error("wal remove failed", "session", c.s.ID, "err", err)
			}
		}
		ids = append(ids, c.s.ID)
	}
	sort.Strings(ids)
	return ids
}

// ExpireRetained forgets recovered sessions whose records have seen no
// retrace or catch-up activity for longer than the retention deadline,
// deleting their logs. retain <= 0 retains forever (the default).
func (r *Registry) ExpireRetained(now time.Time, retain time.Duration) []string {
	if retain <= 0 || r.cfg.WAL == nil {
		return nil
	}
	var victims []*Session
	r.mu.Lock()
	for r.retainedQ.Len() > 0 {
		top := r.retainedQ[0]
		if time.Unix(0, top.seen).Add(retain).After(now) {
			break
		}
		heap.Pop(&r.retainedQ)
		s := top.s
		if cur, ok := r.sessions[s.ID]; !ok || cur != s {
			continue // removed or resumed: stale entry
		}
		if last := s.lastActive.Load(); last != top.seen {
			heap.Push(&r.retainedQ, deadlineEntry{s: s, seen: last})
			continue
		}
		if !s.Recovered() {
			continue
		}
		delete(r.sessions, s.ID)
		victims = append(victims, s)
	}
	r.mu.Unlock()
	ids := make([]string, 0, len(victims))
	for _, s := range victims {
		s.closeRecovered()
		r.metrics.SessionsRetained.Add(-1)
		r.metrics.SessionsExpired.Add(1)
		if err := r.cfg.WAL.Remove(s.ID); err != nil {
			r.logger.Error("wal remove failed", "session", s.ID, "err", err)
		}
		ids = append(ids, s.ID)
	}
	sort.Strings(ids)
	return ids
}

// retainOnExpiry reports whether an expiring session's record outlives
// its engine: it does when durability is on and the session logged
// anything.
func (r *Registry) retainOnExpiry(s *Session) bool {
	return r.cfg.WAL != nil && s.WALSeq() > 0
}

// Close closes every session and refuses further opens. Retained WAL
// records survive (that is the point: the next daemon recovers them).
// Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	sessions := make([]*Session, 0, len(r.sessions))
	for id, s := range r.sessions {
		sessions = append(sessions, s)
		delete(r.sessions, id)
	}
	r.live = 0
	r.idleQ, r.retainedQ = nil, nil
	r.mu.Unlock()
	for _, s := range sessions {
		if s.Recovered() {
			s.closeRecovered()
			r.metrics.SessionsRetained.Add(-1)
			continue
		}
		if s.Closing() {
			// A concurrent idle expiry owns this session's accounting;
			// just make sure the teardown completes.
			s.Close()
			continue
		}
		s.Close()
		r.metrics.SessionsActive.Add(-1)
	}
}

// validateID enforces the session-ID charset: IDs travel in URL paths
// (GET /v1/sessions/{id}) and the one-line ingest preamble, so
// whitespace, slashes and control bytes would create unaddressable
// sessions.
func validateID(id string) error {
	if len(id) > 64 {
		return fmt.Errorf("%w: id longer than 64 bytes", ErrBadSessionID)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("%w: byte %q in %q", ErrBadSessionID, c, id)
		}
	}
	return nil
}

// randomID draws a 12-hex-char session ID.
func randomID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// constant-prefix timestamp if it somehow does.
		return "s" + hex.EncodeToString([]byte(time.Now().Format("150405.000")))[:11]
	}
	return hex.EncodeToString(b[:])
}
