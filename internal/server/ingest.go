package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"rfidraw/internal/obs"
	"rfidraw/internal/readerwire"
	"rfidraw/internal/rfid"
)

// IngestPreamble opens every ingest connection: one ASCII line
// "RFIDRAWD/1 <session-id>\n" before the standard readerwire stream, so
// the gateway can route many concurrent readers onto their sessions
// without changing the wire protocol readers already speak.
const IngestPreamble = "RFIDRAWD/1"

// maxPreamble bounds the preamble line; anything longer is a bad client.
const maxPreamble = 256

// serveIngest accepts reader connections until the listener closes.
func (s *Server) serveIngest(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleIngest(conn)
		}()
	}
}

// handleIngest runs one reader connection: preamble, then a resync-read
// readerwire stream fanned into the session. A reader may disconnect and
// reconnect freely — the session and its trackers persist, and the
// resync reader survives damaged or partial frames (it re-locks on the
// next frame header instead of dropping the connection).
func (s *Server) handleIngest(conn net.Conn) {
	defer conn.Close()
	s.metrics.IngestConns.Add(1)
	if !s.addPendingIngest(conn) {
		return // server is shutting down
	}
	sess, r, err := s.ingestHandshake(conn)
	if err != nil {
		s.removePendingIngest(conn)
		s.logger.Warn("ingest handshake failed", "remote", conn.RemoteAddr(), "err", err)
		return
	}
	// Hand ownership to the session before leaving the pending set, so
	// a concurrent shutdown always finds the conn in one of the two.
	err = sess.addReader(conn)
	s.removePendingIngest(conn)
	if err != nil {
		return
	}
	defer sess.removeReader(conn)
	defer func() {
		if n := int64(r.Resyncs()); n > 0 {
			sess.resyncs.Add(n)
			s.metrics.ResyncBytes.Add(n)
			sess.timeline.Record(obs.EventResync, "bytes="+strconv.FormatInt(n, 10))
		}
	}()

	// Per-reader sequencing: a reader's clock must not regress. Reports
	// that do are dropped (and counted) instead of corrupting the
	// session's merge; cross-reader skew is the session reorder buffer's
	// job, not ours.
	lastTime := make(map[int]time.Duration)
	sawHello := false
	// Burst mode: after each blocking read, drain every further message
	// that read already buffered (NextBuffered never touches the socket)
	// and hand the accumulated reports to the session as ONE inbox
	// operation instead of one per report. Under load a single read
	// delivers tens of frames, so the per-report channel hand-off — the
	// dominant ingest cost — amortizes across the burst.
	burst := make([]rfid.Report, 0, s.reg.cfg.IngestBurst)
	flush := func() error {
		if len(burst) == 0 {
			return nil
		}
		err := sess.OfferBatch(burst)
		burst = burst[:0]
		return err
	}
	for {
		msg, err := r.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.logger.Warn("ingest stream error", "remote", conn.RemoteAddr(), "err", err)
			}
			return
		}
		for {
			switch {
			case msg.Hello != nil:
				// Flush first so reports that preceded a mid-stream
				// re-announcement reach the session before the new sweep.
				if flush() != nil {
					return
				}
				sawHello = true
				if err := sess.announceSweep(msg.Hello.SweepInterval); err != nil {
					return
				}
			case msg.Report != nil:
				if !sawHello {
					break // protocol requires Hello first; drop strays
				}
				rep := *msg.Report
				if last, ok := lastTime[rep.ReaderID]; ok && rep.Time < last {
					sess.outOfOrder.Add(1)
					s.metrics.ReportsOutOfOrder.Add(1)
					break
				}
				lastTime[rep.ReaderID] = rep.Time
				burst = append(burst, rep)
				if len(burst) == cap(burst) {
					if flush() != nil {
						return // session closed under us
					}
				}
			case msg.Bye != nil:
				// Clean end of this reader's stream; keep the connection open
				// in case the reader re-announces (Hello) on the same conn.
			}
			var ok bool
			msg, ok, err = r.NextBuffered()
			if err != nil {
				flush()
				s.logger.Warn("ingest stream error", "remote", conn.RemoteAddr(), "err", err)
				return
			}
			if !ok {
				break // buffer drained: block on the next read
			}
		}
		if flush() != nil {
			return
		}
	}
}

// addPendingIngest / removePendingIngest / closePendingIngest track
// connections that no session owns yet, so shutdown can cut their
// handshake short instead of waiting out the read deadline.
func (s *Server) addPendingIngest(conn net.Conn) bool {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	if s.pendingShutdown {
		return false
	}
	s.pendingIngest[conn] = struct{}{}
	return true
}

func (s *Server) removePendingIngest(conn net.Conn) {
	s.pendingMu.Lock()
	delete(s.pendingIngest, conn)
	s.pendingMu.Unlock()
}

func (s *Server) closePendingIngest() {
	s.pendingMu.Lock()
	s.pendingShutdown = true
	for conn := range s.pendingIngest {
		conn.Close()
	}
	s.pendingMu.Unlock()
}

// ingestHandshake reads the preamble line and resolves the session.
func (s *Server) ingestHandshake(conn net.Conn) (*Session, *readerwire.Reader, error) {
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	line, rest, err := readLine(conn, maxPreamble)
	if err != nil {
		return nil, nil, fmt.Errorf("preamble: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) != 2 || fields[0] != IngestPreamble {
		return nil, nil, fmt.Errorf("bad preamble %q", line)
	}
	sess, ok := s.reg.Get(fields[1])
	if !ok {
		fmt.Fprintf(conn, "ERR unknown session %s\n", fields[1])
		return nil, nil, fmt.Errorf("unknown session %q", fields[1])
	}
	// Any bytes read past the newline belong to the wire stream.
	return sess, readerwire.NewResyncReader(io.MultiReader(strings.NewReader(rest), conn)), nil
}

// readLine reads up to max bytes to the first newline, returning the line
// (without the newline) and any extra bytes read past it.
func readLine(r io.Reader, max int) (line, rest string, err error) {
	buf := make([]byte, 0, 64)
	one := make([]byte, 64)
	for len(buf) < max {
		n, err := r.Read(one)
		if n > 0 {
			buf = append(buf, one[:n]...)
			if i := strings.IndexByte(string(buf), '\n'); i >= 0 {
				return strings.TrimRight(string(buf[:i]), "\r"), string(buf[i+1:]), nil
			}
		}
		if err != nil {
			return "", "", err
		}
	}
	return "", "", fmt.Errorf("line exceeds %d bytes", max)
}
