package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rfidraw/internal/realtime"
)

// This file is the wire-compatibility gate for the SessionSpec API
// consolidation: pre-spec HTTP bodies, the NDJSON stream field names and
// the deprecated constructor wrappers must keep working verbatim, and
// the new error envelope must be the one shape every handler speaks.

func compatServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := New(Config{
		HTTPAddr:   "127.0.0.1:0",
		IngestAddr: "127.0.0.1:0",
		Registry: RegistryConfig{
			NewEngine: testFactory(t),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, &Client{BaseURL: "http://" + srv.HTTPAddr()}
}

// TestCreateSessionLegacyBody: a pre-spec create body — exactly the
// fields the old CreateSession/CreateSessionGeometry client methods
// sent — still opens a session.
func TestCreateSessionLegacyBody(t *testing.T) {
	srv, _ := compatServer(t)
	base := "http://" + srv.HTTPAddr()
	for _, body := range []string{
		`{"id": "legacy-plain", "sweep_ms": 25}`,
		`{"id": "legacy-geom", "sweep_ms": 25, "geometry": "default"}`,
		``, // empty body: daemon assigns everything
	} {
		resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, status := readBody(t, resp), resp.StatusCode
		if status != http.StatusCreated {
			t.Fatalf("body %q: status %d (%s)", body, status, raw)
		}
		var created struct {
			ID     string `json:"id"`
			Ingest string `json:"ingest"`
			Stream string `json:"stream"`
		}
		if err := json.Unmarshal([]byte(raw), &created); err != nil {
			t.Fatalf("body %q: bad response %q: %v", body, raw, err)
		}
		if created.ID == "" || created.Ingest == "" || !strings.HasPrefix(created.Stream, "/v1/sessions/") {
			t.Fatalf("body %q: response missing fields: %q", body, raw)
		}
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestErrorEnvelope: every /v1 failure answers the one
// {"error":{"code","message"}} envelope, and Client surfaces it as a
// typed APIError whose Is() maps codes back onto the error sentinels.
func TestErrorEnvelope(t *testing.T) {
	srv, cl := compatServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	base := "http://" + srv.HTTPAddr()

	// Raw envelope shape on a 404.
	resp, err := http.Get(base + "/v1/sessions/nope")
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(raw), &env); err != nil {
		t.Fatalf("bad envelope %q: %v", raw, err)
	}
	if env.Error.Code != "not_found" || env.Error.Message == "" {
		t.Fatalf("envelope = %q", raw)
	}

	// Typed decode + sentinel mapping across representative failures.
	if _, err := cl.CreateSession(ctx, SessionSpec{ID: "dup", Sweep: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		do       func() error
		code     string
		status   int
		sentinel error
	}{
		{"conflict", func() error {
			_, err := cl.CreateSession(ctx, SessionSpec{ID: "dup"})
			return err
		}, "conflict", http.StatusConflict, ErrSessionExists},
		{"bad id", func() error {
			_, err := cl.CreateSession(ctx, SessionSpec{ID: "bad/id"})
			return err
		}, "bad_session_id", http.StatusBadRequest, ErrBadSessionID},
		{"unknown delete", func() error {
			return cl.DeleteSession(ctx, "nope")
		}, "not_found", http.StatusNotFound, ErrUnknownSession},
		{"not parked", func() error {
			return cl.ResumeSession(ctx, "dup")
		}, "not_parked", http.StatusConflict, ErrNotParked},
		{"no wal retrace", func() error {
			_, _, err := cl.Retrace(ctx, "dup", "")
			return err
		}, "no_wal", http.StatusBadRequest, ErrNoWAL},
	}
	for _, tc := range cases {
		err := tc.do()
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("%s: error %v (%T) is not an *APIError", tc.name, err, err)
		}
		if apiErr.Code != tc.code || apiErr.StatusCode != tc.status {
			t.Errorf("%s: code=%q status=%d, want %q/%d", tc.name, apiErr.Code, apiErr.StatusCode, tc.code, tc.status)
		}
		if !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: %v does not map to sentinel %v", tc.name, err, tc.sentinel)
		}
	}
}

// TestAPIErrorLegacyFlat: Client still decodes the pre-envelope flat
// {"error":"message"} body an older daemon answers with.
func TestAPIErrorLegacyFlat(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error": "boom from an old daemon"}`))
	}))
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}
	err := cl.DeleteSession(context.Background(), "x")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v (%T) is not an *APIError", err, err)
	}
	if apiErr.StatusCode != http.StatusInternalServerError || apiErr.Message != "boom from an old daemon" {
		t.Fatalf("APIError = %+v", apiErr)
	}
}

// TestNDJSONWireFields: the stream's NDJSON field names are the frozen
// wire contract; the spec consolidation must not have renamed any.
func TestNDJSONWireFields(t *testing.T) {
	run, _ := scenario(t)
	srv, cl := compatServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	id, err := cl.CreateSession(ctx, SessionSpec{ID: "wire", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	sess, ok := srv.reg.Get(id)
	if !ok {
		t.Fatal("session not registered")
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+srv.HTTPAddr()+"/v1/sessions/"+id+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	for _, rep := range realtime.MergeStreams(run.ReportsRF...) {
		if err := sess.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pointKeys := map[string]bool{}
	for sc.Scan() {
		var fields map[string]any
		if err := json.Unmarshal(sc.Bytes(), &fields); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		typ, _ := fields["type"].(string)
		if typ == "" {
			t.Fatalf("line %q has no type", sc.Text())
		}
		if typ == "point" {
			for k := range fields {
				pointKeys[k] = true
			}
			// Every field is omitempty except x/z, so accumulate until a
			// non-zero-time point has shown the full shape.
			if pointKeys["t_ns"] {
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"type", "tag", "t_ns", "x", "z"} {
		if !pointKeys[want] {
			t.Errorf("point event lost wire field %q (got %v)", want, pointKeys)
		}
	}
	for k := range pointKeys {
		switch k {
		case "type", "tag", "t_ns", "x", "z", "confidence", "hypotheses", "switched", "seq":
		default:
			t.Errorf("point event grew unexpected wire field %q", k)
		}
	}
}

// TestDeprecatedConstructorWrappers: the geometry-suffixed pairs still
// compile and behave exactly like their SessionSpec forms. (This test is
// the one sanctioned caller; CI lints any other internal use.)
func TestDeprecatedConstructorWrappers(t *testing.T) {
	run, _ := scenario(t)
	reg := testRegistry(t, RegistryConfig{})
	sess, err := reg.OpenGeometry("dep-open", perTagSweep(run), "")
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID != "dep-open" || sess.State() != "live" {
		t.Fatalf("OpenGeometry wrapper: id=%q state=%q", sess.ID, sess.State())
	}

	srv, cl := compatServer(t)
	_ = srv
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	id, err := cl.CreateSessionGeometry(ctx, "dep-create", 25*time.Millisecond, "default")
	if err != nil {
		t.Fatal(err)
	}
	if id != "dep-create" {
		t.Fatalf("CreateSessionGeometry wrapper returned id %q", id)
	}
}
