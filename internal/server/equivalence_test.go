package server

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"rfidraw/internal/readerwire"
	"rfidraw/internal/realtime"
	"rfidraw/internal/wal"
)

// collectEvents drains a client event channel into a slice.
func collectEvents(events <-chan Event, out *[]Event, wg *sync.WaitGroup) {
	defer wg.Done()
	for ev := range events {
		*out = append(*out, ev)
	}
}

// TestBurstOfferEquivalence is the batching acceptance gate: the same
// report stream offered one report at a time (Offer) and in arbitrary
// bursts (OfferBatch) must produce gob-byte-identical per-tag trace
// results — burst mode is a transport optimization, never a semantic
// one.
func TestBurstOfferEquivalence(t *testing.T) {
	run, _ := scenario(t)
	reg := testRegistry(t, RegistryConfig{NewEngine: recordingFactory(t), NoRecognize: true})
	single, err := reg.Open(SessionSpec{ID: "single", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := reg.Open(SessionSpec{ID: "burst", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	merged := realtime.MergeStreams(run.ReportsRF...)
	for _, rep := range merged {
		if err := single.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	// Deliberately ragged burst sizes (1, 2, 3, … wrapping at 97) so the
	// equivalence covers single-report bursts, partial bursts and the
	// flush boundary between bursts, not just one tidy chunk size.
	for i, size := 0, 1; i < len(merged); i, size = i+size, size%97+1 {
		end := i + size
		if end > len(merged) {
			end = len(merged)
		}
		if err := burst.OfferBatch(merged[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := single.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := burst.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := single.TraceResults()
	if err != nil {
		t.Fatal(err)
	}
	b, err := burst.TraceResults()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trace results: single %d tags, burst %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Tag != b[i].Tag {
			t.Fatalf("tag order diverged: %s vs %s", a[i].Tag, b[i].Tag)
		}
		if !bytes.Equal(gobBytes(t, a[i].Result), gobBytes(t, b[i].Result)) {
			t.Fatalf("tag %s: burst trace differs from single-report trace", a[i].Tag)
		}
	}
	if sn, _ := reg.Pipeline().BurstSnapshot(); sn == 0 {
		t.Fatal("burst counter did not move: OfferBatch bypassed the burst path")
	}
}

// TestEncodingEquivalenceLive subscribes one NDJSON and one binary
// consumer to the same live session and requires the decoded event
// streams to be deep-equal: the binary encoding is a wire optimization,
// not a different stream.
func TestEncodingEquivalenceLive(t *testing.T) {
	run, _ := scenario(t)
	srv, err := New(Config{
		HTTPAddr:   "127.0.0.1:0",
		IngestAddr: "127.0.0.1:0",
		Registry: RegistryConfig{
			NewEngine: testFactory(t),
			// Deep queues: a slow-consumer drop is per-subscriber state
			// that would legitimately fork the streams.
			SubscriberQueue: 1 << 15,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ndjsonClient := &Client{BaseURL: "http://" + srv.HTTPAddr()}
	binaryClient := &Client{BaseURL: ndjsonClient.BaseURL, Encoding: "binary", SubscribeBuffer: 1024}
	id, err := ndjsonClient.CreateSession(ctx, SessionSpec{ID: "enc-live", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	ndjsonEvents, ndjsonErrs, err := ndjsonClient.Subscribe(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	binaryEvents, binaryErrs, err := binaryClient.Subscribe(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	var fromNDJSON, fromBinary []Event
	var wg sync.WaitGroup
	wg.Add(2)
	go collectEvents(ndjsonEvents, &fromNDJSON, &wg)
	go collectEvents(binaryEvents, &fromBinary, &wg)

	rs, err := ndjsonClient.DialIngest(id, readerwire.Hello{
		Proto: readerwire.ProtoVersion, ReaderID: 1, AntennaCount: 4,
		SweepInterval: perTagSweep(run),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range realtime.MergeStreams(run.ReportsRF...) {
		if err := rs.Send(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ndjsonClient.DrainSession(ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := ndjsonClient.DeleteSession(ctx, id); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for _, errs := range []<-chan error{ndjsonErrs, binaryErrs} {
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	}
	compareEventStreams(t, fromNDJSON, fromBinary)
}

// TestEncodingEquivalenceCatchup repeats the equivalence through the
// ?from=seq path: both encodings attach mid-stream with WAL catch-up,
// replay the recorded prefix, splice onto the live remainder, and must
// still decode to deep-equal streams.
func TestEncodingEquivalenceCatchup(t *testing.T) {
	run, _ := scenario(t)
	store, err := wal.Open(t.TempDir(), wal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		HTTPAddr:   "127.0.0.1:0",
		IngestAddr: "127.0.0.1:0",
		Registry: RegistryConfig{
			NewEngine:       recordingFactory(t),
			NewReplayer:     testReplayerFactory(t),
			WAL:             store,
			NoRecognize:     true,
			SubscriberQueue: 1 << 15,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ndjsonClient := &Client{BaseURL: "http://" + srv.HTTPAddr()}
	binaryClient := &Client{BaseURL: ndjsonClient.BaseURL, Encoding: "binary", SubscribeBuffer: 1024}
	id, err := ndjsonClient.CreateSession(ctx, SessionSpec{ID: "enc-catchup", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ndjsonClient.DialIngest(id, readerwire.Hello{
		Proto: readerwire.ProtoVersion, ReaderID: 1, AntennaCount: 4,
		SweepInterval: perTagSweep(run),
	})
	if err != nil {
		t.Fatal(err)
	}
	merged := realtime.MergeStreams(run.ReportsRF...)
	prefix := merged[:2*len(merged)/3]
	for _, rep := range prefix {
		if err := rs.Send(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	// Drain so the prefix is on disk and the catch-up head is stable
	// before either subscriber snapshots it.
	if err := ndjsonClient.DrainSession(ctx, id); err != nil {
		t.Fatal(err)
	}
	ndjsonEvents, ndjsonErrs, err := ndjsonClient.SubscribeFrom(ctx, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	binaryEvents, binaryErrs, err := binaryClient.SubscribeFrom(ctx, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fromNDJSON, fromBinary []Event
	var wg sync.WaitGroup
	wg.Add(2)
	go collectEvents(ndjsonEvents, &fromNDJSON, &wg)
	go collectEvents(binaryEvents, &fromBinary, &wg)

	for _, rep := range merged[len(prefix):] {
		if err := rs.Send(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ndjsonClient.DrainSession(ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := ndjsonClient.DeleteSession(ctx, id); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for _, errs := range []<-chan error{ndjsonErrs, binaryErrs} {
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	}
	// The replayed prefix must actually be present: a live-only
	// subscriber attached after the drain would see no points stamped
	// inside the prefix's time range.
	prefixEnd := prefix[len(prefix)-1].Time
	replayed := 0
	for _, ev := range fromNDJSON {
		if ev.Type == "point" && ev.T <= prefixEnd {
			replayed++
		}
	}
	if replayed == 0 {
		t.Fatal("catch-up stream has no points from the recorded prefix")
	}
	compareEventStreams(t, fromNDJSON, fromBinary)
}

// compareEventStreams requires two decoded streams to be deep-equal and
// free of per-subscriber drop forks.
func compareEventStreams(t *testing.T, a, b []Event) {
	t.Helper()
	for _, ev := range a {
		if ev.Type == "drop" {
			t.Fatal("stream saw a slow-consumer drop; the equivalence setup must not overflow queues")
		}
	}
	if len(a) == 0 {
		t.Fatal("no events decoded")
	}
	if len(a) != len(b) {
		t.Fatalf("stream lengths diverged: %d NDJSON events vs %d binary", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("event %d diverged:\n  ndjson: %+v\n  binary: %+v", i, a[i], b[i])
		}
	}
}
