// Package server is the session-serving layer of the reproduction: the
// long-lived daemon side that turns the one-shot readerd → tracker
// pipeline into a multi-tenant service, the deployment shape the paper's
// "virtual touch screen that many users write on simultaneously" implies.
//
// It is built from four cooperating parts:
//
//   - a session registry (registry.go): named sessions, each binding a
//     client's tag-set to its own sharded tracking engine, with explicit
//     lifecycle — create, attach, detach, idle expiry, GC — and admission
//     control by live-session count;
//   - an ingest gateway (ingest.go): a TCP listener that accepts many
//     concurrent readerwire reader connections, each prefixed with a
//     one-line session preamble, decodes them through the self-healing
//     resync reader (reconnects and mid-frame disconnects do not kill a
//     session), sequences each reader's reports, and fans them into the
//     session's engine through a small time-reorder buffer;
//   - a streaming API (http.go): JSON control endpoints for session
//     lifecycle plus a chunked NDJSON live stream of trace points and
//     recognized glyphs per session, delivered to N subscribers through
//     bounded queues with a drop-oldest slow-consumer policy and
//     load-shedding (HTTP 503) beyond the configured caps;
//   - an observability surface (metrics.go): /healthz and /metrics with
//     counters for sessions, ingested reports (and a reports/s gauge),
//     emitted points, search evaluations, queue drops and shed requests,
//     plus a goroutine gauge the CI soak job uses to detect leaks.
//
// The delivery discipline borrows from streaming-media serving: per
// subscriber the queue is bounded and freshness beats completeness (a
// slow consumer loses the oldest points, never stalls the tracker), and
// beyond the admission caps the server sheds load explicitly rather than
// degrading every session.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	"rfidraw/internal/engine"
	"rfidraw/internal/recognition"
	"rfidraw/internal/vote"
)

// Config assembles a Server.
type Config struct {
	// HTTPAddr is the control/streaming API listen address.
	// Default 127.0.0.1:8090.
	HTTPAddr string
	// IngestAddr is the reader ingest gateway listen address.
	// Default 127.0.0.1:7070.
	IngestAddr string

	// Registry tunes the session registry; zero values take defaults.
	Registry RegistryConfig
	// SharedRegistry, when non-nil, serves an existing registry instead
	// of building one from the Registry config — the hook that lets
	// rfidraw.System expose its in-process sessions over the daemon API.
	// Closing the server closes the shared registry's sessions.
	SharedRegistry *Registry

	// IdleTimeout seeds the registry's runtime idle-expiry knob: sessions
	// with no ingest activity, no connected readers and no subscribers
	// past it are expired (parked if durable). Default 2 minutes;
	// mutable at runtime via the control API.
	IdleTimeout time.Duration

	// Logger, when non-nil, receives structured operational logs and
	// takes precedence over Logf; it is threaded into the registry
	// (session-scoped attrs) unless SharedRegistry already has one.
	Logger *slog.Logger
	// LogLevel, when non-nil, is the shared runtime-mutable level gate.
	LogLevel *slog.LevelVar
	// Logf receives operational log lines when Logger is nil; nil
	// discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.HTTPAddr == "" {
		c.HTTPAddr = "127.0.0.1:8090"
	}
	if c.IngestAddr == "" {
		c.IngestAddr = "127.0.0.1:7070"
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the rfidrawd daemon core: an HTTP API and an ingest gateway
// over a session registry.
type Server struct {
	cfg     Config
	reg     *Registry
	metrics *Metrics
	// logger is the registry's resolved structured logger.
	logger *slog.Logger

	httpLn   net.Listener
	ingestLn net.Listener
	httpSrv  *http.Server

	wg        sync.WaitGroup
	quit      chan struct{}
	closeOnce sync.Once
	closeErr  error

	// pendingMu guards ingest connections still in their preamble
	// handshake: not yet owned by any session, so Close must disconnect
	// them itself or wg.Wait stalls on their read deadline.
	// pendingShutdown refuses late registrations from connections
	// accepted in the instant before the listener closed.
	pendingMu       sync.Mutex
	pendingIngest   map[net.Conn]struct{}
	pendingShutdown bool

	// scrape-rate state for the reports/s gauge.
	rateMu      sync.Mutex
	lastScrape  time.Time
	lastReports int64
}

// New builds a Server. cfg.Registry.NewEngine is required — it binds each
// session to a tracking engine (rfidraw.System.Serve and cmd/rfidrawd
// provide it from their deployment configuration).
func New(cfg Config) (*Server, error) {
	explicitIdle := cfg.IdleTimeout > 0
	cfg = cfg.withDefaults()
	reg := cfg.SharedRegistry
	if reg == nil {
		rcfg := cfg.Registry
		if rcfg.IdleTimeout <= 0 {
			rcfg.IdleTimeout = cfg.IdleTimeout
		}
		if rcfg.Logger == nil {
			rcfg.Logger = cfg.Logger
		}
		if rcfg.LogLevel == nil {
			rcfg.LogLevel = cfg.LogLevel
		}
		if rcfg.Logf == nil {
			rcfg.Logf = cfg.Logf
		}
		var err error
		reg, err = NewRegistry(rcfg)
		if err != nil {
			return nil, err
		}
	} else if explicitIdle {
		// A shared registry keeps its own knobs unless the server was
		// given an explicit timeout (the pre-knob behavior).
		d := cfg.IdleTimeout
		if err := reg.ApplyKnobs(KnobPatch{IdleTimeout: &d}); err != nil {
			return nil, err
		}
	}
	return &Server{
		cfg:           cfg,
		reg:           reg,
		metrics:       reg.metrics,
		logger:        reg.logger,
		quit:          make(chan struct{}),
		pendingIngest: map[net.Conn]struct{}{},
	}, nil
}

// Registry exposes the server's session registry (for in-process sessions
// and tests).
func (s *Server) Registry() *Registry { return s.reg }

// Start binds both listeners and launches the accept and GC loops. It
// returns once the server is reachable; use Close (or Serve) to stop it.
func (s *Server) Start() error {
	httpLn, err := net.Listen("tcp", s.cfg.HTTPAddr)
	if err != nil {
		return fmt.Errorf("server: http listen: %w", err)
	}
	ingestLn, err := net.Listen("tcp", s.cfg.IngestAddr)
	if err != nil {
		httpLn.Close()
		return fmt.Errorf("server: ingest listen: %w", err)
	}
	s.httpLn, s.ingestLn = httpLn, ingestLn
	s.httpSrv = &http.Server{Handler: s.handler()}
	s.wg.Add(4)
	go func() {
		defer s.wg.Done()
		if err := s.httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.logger.Error("http serve failed", "err", err)
		}
	}()
	go func() {
		defer s.wg.Done()
		s.serveIngest(ingestLn)
	}()
	go func() {
		defer s.wg.Done()
		s.gcLoop()
	}()
	go func() {
		defer s.wg.Done()
		s.pressureLoop()
	}()
	s.logger.Info("server listening", "http", s.HTTPAddr(), "ingest", s.IngestAddr())
	return nil
}

// Serve runs the server until the context is cancelled, then shuts it
// down. It is the blocking convenience over Start/Close.
func (s *Server) Serve(ctx context.Context) error {
	if err := s.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	return s.Close()
}

// HTTPAddr returns the bound API address (resolved, useful with ":0").
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return s.cfg.HTTPAddr
	}
	return s.httpLn.Addr().String()
}

// IngestAddr returns the bound ingest gateway address.
func (s *Server) IngestAddr() string {
	if s.ingestLn == nil {
		return s.cfg.IngestAddr
	}
	return s.ingestLn.Addr().String()
}

// gcLoop expires idle sessions (and over-retained parked records) on a
// fraction of the idle timeout. The deadlines are re-read from the
// registry's runtime knobs every tick so a control-plane mutation takes
// effect without a restart.
func (s *Server) gcLoop() {
	period := s.cfg.IdleTimeout / 4
	if period < time.Second {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			now := time.Now()
			for _, id := range s.reg.ExpireIdle(now, s.reg.IdleTimeout()) {
				s.logger.Info("session expired idle", "session", id)
			}
			for _, id := range s.reg.ExpireRetained(now, s.reg.RetainFor()) {
				s.logger.Info("session retention expired, record deleted", "session", id)
			}
		case <-s.quit:
			return
		}
	}
}

// pressureLoopTick is the cadence of the congestion refresh and the
// park-under-pressure relief valve.
const pressureLoopTick = time.Second

// pressureLoop keeps the congestion score fresh and, when it crosses the
// park threshold, parks the lowest-cost durable sessions until the node
// is back under — shedding state it can rebuild from disk instead of
// collapsing.
func (s *Server) pressureLoop() {
	ticker := time.NewTicker(pressureLoopTick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.reg.ParkUnderPressure(time.Now())
		case <-s.quit:
			return
		}
	}
}

// Close shuts the listeners down, closes every session and waits for all
// server goroutines to drain. It is idempotent. The registry closes
// before the HTTP server shuts down: closing sessions ends their
// subscribers' streams, so long-lived stream handlers return instead of
// holding Shutdown to its timeout.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.quit)
		if s.ingestLn != nil {
			s.ingestLn.Close()
		}
		s.closePendingIngest()
		s.reg.Close()
		if s.httpSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			s.closeErr = s.httpSrv.Shutdown(ctx)
			cancel()
		}
		s.wg.Wait()
	})
	return s.closeErr
}

// newRecognizer builds the glyph recognizer sessions share; it is in this
// file so every assembly path (daemon, tests, in-process registry) uses
// the same construction.
func newRecognizer() (*recognition.Recognizer, error) {
	return recognition.New(nil)
}

// EngineFactory is the hook a deployment provides to bind a session to a
// tracking engine: it must return a started engine whose OnUpdate is the
// given callback and whose streaming sweep interval is sweep. geometry
// names the session's antenna geometry ("" = default deployment); the
// factory builds the steering tables for it. search, when non-nil,
// overrides the deployment's vote-search configuration for this
// session's pipeline (and must configure it identically to how
// ReplayerFactory would, or retrace equivalence breaks).
type EngineFactory func(sweep time.Duration, geometry string, search *vote.SearchConfig, onUpdate func(engine.Update)) (*engine.Engine, error)
