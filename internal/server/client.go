package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rfidraw/internal/obs"
	"rfidraw/internal/readerwire"
	"rfidraw/internal/rfid"
)

// APIError is the typed form of the daemon's JSON error envelope
// ({"error": {"code", "message", "retry_after_ms"}}). errors.Is matches
// it against the server sentinels (ErrSessionLimit, ErrOverloaded, …)
// by code, so callers branch on sentinel, not on status text.
type APIError struct {
	// StatusCode is the HTTP status the error arrived with.
	StatusCode int
	// Code is the envelope's stable machine-readable code.
	Code string
	// Message is the human-readable description.
	Message string
	// RetryAfter is the server's suggested backoff (429 responses; zero
	// otherwise).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("server: %s (%d %s, retry after %s)", e.Message, e.StatusCode, e.Code, e.RetryAfter)
	}
	return fmt.Sprintf("server: %s (%d %s)", e.Message, e.StatusCode, e.Code)
}

// Is maps envelope codes back onto the package's error sentinels.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrSessionLimit:
		return e.Code == "session_limit"
	case ErrSubscriberLimit:
		return e.Code == "subscriber_limit"
	case ErrOverloaded:
		return e.Code == "overloaded"
	case ErrSessionExists:
		return e.Code == "conflict"
	case ErrBadSessionID:
		return e.Code == "bad_session_id"
	case ErrUnknownSession:
		return e.Code == "not_found"
	case ErrNotParked:
		return e.Code == "not_parked"
	case ErrNotLive:
		return e.Code == "not_live"
	case ErrNotDurable:
		return e.Code == "not_durable"
	case ErrNoWAL:
		return e.Code == "no_wal"
	case ErrSessionClosed:
		return e.Code == "gone"
	}
	return false
}

// decodeAPIError turns a non-2xx response into an *APIError. It is
// tolerant of the pre-envelope flat shape ({"error": "msg"}) and of
// non-JSON bodies, so the client keeps working against old daemons.
func decodeAPIError(resp *http.Response, raw []byte) *APIError {
	e := &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	var env struct {
		Error json.RawMessage `json:"error"`
	}
	if json.Unmarshal(raw, &env) == nil && len(env.Error) > 0 {
		var body errorBody
		if json.Unmarshal(env.Error, &body) == nil && body.Message != "" {
			e.Code, e.Message = body.Code, body.Message
			e.RetryAfter = time.Duration(body.RetryAfterMS) * time.Millisecond
		} else {
			var flat string
			if json.Unmarshal(env.Error, &flat) == nil {
				e.Message = flat
			}
		}
	}
	if e.RetryAfter == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	if e.Message == "" {
		e.Message = resp.Status
	}
	return e
}

// readAPIError drains the body and decodes the error envelope.
func readAPIError(resp *http.Response) *APIError {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	return decodeAPIError(resp, raw)
}

// Client is a minimal rfidrawd client: session lifecycle over the HTTP
// API, report replay over the ingest gateway and event stream
// consumption (NDJSON or binary). cmd/loadgen and the daemon-mode
// examples share it.
type Client struct {
	// BaseURL is the daemon's HTTP API root, e.g. "http://127.0.0.1:8090".
	BaseURL string
	// Ingest is the ingest gateway address, e.g. "127.0.0.1:7070". When
	// empty it is learned from the create-session response.
	Ingest string
	// HTTP overrides the HTTP client; nil uses a default with no overall
	// timeout (streams are long-lived).
	HTTP *http.Client
	// Encoding selects the stream wire encoding Subscribe negotiates:
	// "" or "ndjson" for the NDJSON default, "binary" for the
	// length-prefixed CRC-framed binary encoding. Decoded Events are
	// identical either way.
	Encoding string
	// Tier selects the trace tier Subscribe negotiates: "" for the T1
	// default (today's full stream), "0" for the decimated dashboard
	// tier, "1" explicit, or "2" for full plus diagnostic detail.
	Tier string
	// SubscribeBuffer is the event-channel depth Subscribe allocates;
	// <= 0 takes the default 64.
	SubscribeBuffer int
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

// CreateSession opens a session from a spec; spec.ID == "" lets the
// daemon assign one. The returned ID addresses the other calls. A
// daemon at its hard session cap answers 503 (errors.Is
// ErrSessionLimit); one shedding by congestion score answers 429
// (errors.Is ErrOverloaded) with the suggested backoff in the
// APIError's RetryAfter.
func (c *Client) CreateSession(ctx context.Context, spec SessionSpec) (string, error) {
	fields := map[string]any{
		"id":       spec.ID,
		"sweep_ms": float64(spec.Sweep) / float64(time.Millisecond),
	}
	if spec.Geometry != "" {
		fields["geometry"] = spec.Geometry
	}
	if spec.Search != nil {
		fields["search"] = toSearchJSON(spec.Search)
	}
	if spec.WAL != (WALPolicy{}) {
		fields["wal"] = walPolicyJSON{Disable: spec.WAL.Disable, SyncEvery: spec.WAL.SyncEvery}
	}
	body, err := json.Marshal(fields)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/sessions", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", readAPIError(resp)
	}
	var out struct {
		ID     string `json:"id"`
		Ingest string `json:"ingest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if c.Ingest == "" {
		c.Ingest = out.Ingest
	}
	return out.ID, nil
}

// CreateSessionGeometry opens a session on a named antenna geometry.
//
// Deprecated: build a SessionSpec and call CreateSession; this wrapper
// survives for old callers only.
func (c *Client) CreateSessionGeometry(ctx context.Context, id string, sweep time.Duration, geometry string) (string, error) {
	return c.CreateSession(ctx, SessionSpec{ID: id, Sweep: sweep, Geometry: geometry})
}

// DeleteSession closes a session (and forgets its retained record).
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/sessions/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return readAPIError(resp)
	}
	return nil
}

// Subscribe attaches to a session's live event stream — NDJSON by
// default, or the binary encoding when c.Encoding is "binary" — and
// decodes it onto the returned channel until the stream ends or the
// context is cancelled. The channel is closed at end of stream; a
// terminal decode or transport error is delivered on the (buffered)
// error channel.
func (c *Client) Subscribe(ctx context.Context, id string) (<-chan Event, <-chan error, error) {
	return c.subscribe(ctx, c.BaseURL+"/v1/sessions/"+id+"/stream")
}

// SubscribeFrom attaches with WAL catch-up: the stream starts with the
// session's recorded history replayed from log sequence from (0 = all),
// then splices onto the live stream (daemons started with a data dir).
func (c *Client) SubscribeFrom(ctx context.Context, id string, from uint64) (<-chan Event, <-chan error, error) {
	return c.subscribe(ctx, fmt.Sprintf("%s/v1/sessions/%s/stream?from=%d", c.BaseURL, id, from))
}

// streamURL appends the client's encoding and tier selections to a
// stream URL.
func (c *Client) streamURL(url string) (string, bool, error) {
	appendParam := func(url, param string) string {
		sep := "?"
		if strings.Contains(url, "?") {
			sep = "&"
		}
		return url + sep + param
	}
	var binary bool
	switch c.Encoding {
	case "", "ndjson":
	case "binary":
		url, binary = appendParam(url, "encoding=binary"), true
	default:
		return "", false, fmt.Errorf("server: unknown client encoding %q (want ndjson or binary)", c.Encoding)
	}
	switch c.Tier {
	case "":
	case "0", "1", "2":
		url = appendParam(url, "tier="+c.Tier)
	default:
		return "", false, fmt.Errorf("server: unknown client tier %q (want 0, 1 or 2)", c.Tier)
	}
	return url, binary, nil
}

func (c *Client) subscribe(ctx context.Context, url string) (<-chan Event, <-chan error, error) {
	url, binary, err := c.streamURL(url)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		resp.Body.Close()
		return nil, nil, ErrSubscriberLimit
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, nil, readAPIError(resp)
	}
	buffer := c.SubscribeBuffer
	if buffer <= 0 {
		buffer = 64
	}
	events := make(chan Event, buffer)
	errs := make(chan error, 1)
	deliver := func(ev Event) bool {
		select {
		case events <- ev:
			return true
		case <-ctx.Done():
			return false
		}
	}
	go func() {
		defer close(events)
		defer resp.Body.Close()
		if binary {
			// Strict decode: the daemon's stream is a reliable transport,
			// so a malformed frame is a real fault worth surfacing, not
			// something to silently resync over.
			er := NewEventReader(resp.Body)
			for {
				ev, err := er.Next()
				if err != nil {
					if !errors.Is(err, io.EOF) && ctx.Err() == nil {
						errs <- err
					}
					return
				}
				if !deliver(ev) {
					return
				}
			}
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			var ev Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				errs <- err
				return
			}
			if !deliver(ev) {
				return
			}
		}
		if err := sc.Err(); err != nil && ctx.Err() == nil {
			errs <- err
		}
	}()
	return events, errs, nil
}

// DialIngest opens a reader connection bound to a session and sends the
// stream-opening Hello. The caller streams reports on the returned
// ReaderStream and closes it.
func (c *Client) DialIngest(sessionID string, hello readerwire.Hello) (*ReaderStream, error) {
	if c.Ingest == "" {
		return nil, fmt.Errorf("server: client has no ingest address (create a session first)")
	}
	conn, err := net.DialTimeout("tcp", c.Ingest, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(conn, "%s %s\n", IngestPreamble, sessionID); err != nil {
		conn.Close()
		return nil, err
	}
	w := readerwire.NewWriter(conn)
	if err := w.WriteHello(hello); err != nil {
		conn.Close()
		return nil, err
	}
	return &ReaderStream{conn: conn, w: w}, nil
}

// ReaderStream is one live reader connection into the ingest gateway.
type ReaderStream struct {
	conn net.Conn
	w    *readerwire.Writer
	sent int64
}

// Send writes one report (buffered; Flush pushes to the network).
func (rs *ReaderStream) Send(rep rfid.Report) error {
	if err := rs.w.WriteReport(rep); err != nil {
		return err
	}
	rs.sent++
	return nil
}

// Sent reports how many reports this stream has written, so a replay
// harness can turn a run into a throughput without re-deriving which
// loops completed. Not safe to call concurrently with Send.
func (rs *ReaderStream) Sent() int64 { return rs.sent }

// Flush pushes buffered reports.
func (rs *ReaderStream) Flush() error { return rs.w.Flush() }

// Close sends Bye and closes the connection.
func (rs *ReaderStream) Close() error {
	_ = rs.w.WriteBye()
	return rs.conn.Close()
}

// Replay streams a time-ordered report slice, paced by the reports' own
// timestamps scaled by pace (1 = real time, 0 = unpaced), with offset
// added to every report time (for looping a scenario). It flushes every
// 10 ms of stream time and returns on the first write error or context
// cancellation.
func (rs *ReaderStream) Replay(ctx context.Context, reports []rfid.Report, pace float64, offset time.Duration, start time.Time) error {
	return rs.ReplaySkewed(ctx, reports, pace, offset, start, 0)
}

// ReplaySkewed is Replay for a reader whose clock runs clockSkew ahead
// of true time: timestamps go out as stamped, but the send schedule is
// the true wall clock (stamp − clockSkew). That is how a skewed reader
// behaves on the wire — it emits at true time, stamped by its own clock.
// Pacing by the stamp instead would re-serialize the streams and hide
// exactly the cross-reader disorder an injected clock fault exists to
// create.
func (rs *ReaderStream) ReplaySkewed(ctx context.Context, reports []rfid.Report, pace float64, offset time.Duration, start time.Time, clockSkew time.Duration) error {
	const flushEvery = 10 * time.Millisecond
	lastFlush := time.Duration(-1)
	for _, rep := range reports {
		t := rep.Time + offset
		sched := t - clockSkew
		if pace > 0 {
			target := start.Add(time.Duration(float64(sched) / pace))
			if sleep := time.Until(target); sleep > 0 {
				select {
				case <-time.After(sleep):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
		rep.Time = t
		if err := rs.Send(rep); err != nil {
			return err
		}
		if sched-lastFlush >= flushEvery {
			if err := rs.Flush(); err != nil {
				return err
			}
			lastFlush = sched
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return rs.Flush()
}

// MetricsContentType is the Prometheus text exposition format version
// the daemon serves and this client requires.
const MetricsContentType = "text/plain; version=0.0.4"

// FetchMetrics grabs the raw /metrics text (soak tooling and the
// loadgen latency cross-check). It fails on any non-200 status and on a
// Content-Type other than the Prometheus text exposition format, so a
// proxy error page or a misrouted endpoint can never masquerade as an
// empty scrape.
func (c *Client) FetchMetrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", readAPIError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); ct != MetricsContentType {
		return "", fmt.Errorf("server: /metrics served unexpected Content-Type %q (want %q)", ct, MetricsContentType)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// FetchTrace dumps a session's sampled stage spans (NDJSON from
// GET /v1/sessions/{id}/trace), oldest first.
func (c *Client) FetchTrace(ctx context.Context, id string) ([]obs.Span, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/sessions/"+id+"/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readAPIError(resp)
	}
	var spans []obs.Span
	dec := json.NewDecoder(resp.Body)
	for {
		var sp obs.Span
		if err := dec.Decode(&sp); err != nil {
			if errors.Is(err, io.EOF) {
				return spans, nil
			}
			return spans, err
		}
		spans = append(spans, sp)
	}
}

// FetchEvents fetches a session's diagnostic timeline
// (GET /v1/sessions/{id}/events).
func (c *Client) FetchEvents(ctx context.Context, id string) ([]obs.TimelineEvent, uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/sessions/"+id+"/events", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, readAPIError(resp)
	}
	var out sessionEvents
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, 0, err
	}
	return out.Events, out.Total, nil
}

// Retrace replays a session's WAL through a fresh pipeline on the
// daemon, optionally under an overridden search mode ("", "hierarchical"
// or "dense"), and returns the per-tag results. Raw is the exact
// response body, for byte-level determinism checks.
func (c *Client) Retrace(ctx context.Context, id, mode string) (*RetraceSummary, []byte, error) {
	body := []byte("{}")
	if mode != "" {
		var err error
		if body, err = json.Marshal(map[string]any{"search": map[string]any{"mode": mode}}); err != nil {
			return nil, nil, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/sessions/"+id+"/retrace", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, raw, decodeAPIError(resp, raw)
	}
	var sum RetraceSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		return nil, raw, err
	}
	return &sum, raw, nil
}

// Control fetches the node's control-plane state: congestion score and
// components, runtime knobs, and every session's cost.
func (c *Client) Control(ctx context.Context) (*ControlState, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/control", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readAPIError(resp)
	}
	var st ControlState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// UpdateControl mutates the node's runtime knobs (POST
// /v1/control/config body shape; absent fields keep their value) and
// returns the post-mutation state.
func (c *Client) UpdateControl(ctx context.Context, patch ControlPatchJSON) (*ControlState, error) {
	body, err := json.Marshal(patch)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/control/config", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readAPIError(resp)
	}
	var st ControlState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// sessionVerb drives one of the per-session control verbs.
func (c *Client) sessionVerb(ctx context.Context, id, verb string) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/sessions/"+id+"/"+verb, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readAPIError(resp)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// ParkSession parks a live durable session (idempotent).
func (c *Client) ParkSession(ctx context.Context, id string) error {
	_, err := c.sessionVerb(ctx, id, "park")
	return err
}

// ResumeSession brings a parked session back live.
func (c *Client) ResumeSession(ctx context.Context, id string) error {
	_, err := c.sessionVerb(ctx, id, "resume")
	return err
}

// DrainSession flushes a live session's pipeline to subscribers and WAL.
func (c *Client) DrainSession(ctx context.Context, id string) error {
	_, err := c.sessionVerb(ctx, id, "drain")
	return err
}
