package server

// Binary event-stream encoding: the compact wire format the stream
// endpoint serves when a subscriber negotiates ?encoding=binary (or
// Accept: application/x-rfidraw-events) instead of the default NDJSON.
//
// Framing reuses the write-ahead log's discipline — length prefix, then
// a CRC-32 of the payload, then the payload — so a reader can both
// detect corruption (the CRC) and resynchronize after it (scan forward
// for the next frame that checks out):
//
//	uint32  payload length (big endian, excluding the 8-byte header)
//	uint32  CRC-32 (IEEE) of the payload
//	...     payload: uint8 event type + type-specific fields
//
// Event types and payloads (integers big endian, floats IEEE 754 bits,
// durations nanoseconds, strings uint8-length-prefixed UTF-8):
//
//	0x01 point  tag, t, x, z, confidence, hypotheses(u32), flags(u8,
//	            bit0 = switched), seq(u64)
//	0x02 glyph  tag, t, glyph, dist, margin, points(u32)
//	0x03 drop   dropped(u32)
//	0x04 end    (no fields)
//	0x05 tier   tier(u8), from(u8), reason
//	0x06 stroke tag, t, points(u32)
//
// The encoding carries exactly the fields NDJSON serializes for each
// event type, so a binary stream decodes to the same Event values as
// the NDJSON stream of the same session (asserted by the encoding
// equivalence gates).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

// EventStreamContentType is the binary event stream's media type; the
// stream endpoint negotiates it via the Accept header or the
// ?encoding=binary query parameter.
const EventStreamContentType = "application/x-rfidraw-events"

// EventMaxPayload bounds one event frame's payload; larger lengths are
// rejected as corrupt framing. Generous: the largest legal payload (a
// glyph with maximal strings) is under 600 bytes.
const EventMaxPayload = 1 << 12

// eventFrameHeader is the frame header size: length + CRC.
const eventFrameHeader = 8

// Event frame type bytes.
const (
	eventTypePoint  = 0x01
	eventTypeGlyph  = 0x02
	eventTypeDrop   = 0x03
	eventTypeEnd    = 0x04
	eventTypeTier   = 0x05
	eventTypeStroke = 0x06
)

// ErrBadEventFrame reports malformed binary event framing: a corrupt
// length, a failed CRC, an unknown type or a payload that does not
// decode.
var ErrBadEventFrame = errors.New("server: bad event frame")

// appendEventString appends one uint8-length-prefixed string (truncated
// to 255 bytes; tags and glyphs are far shorter).
func appendEventString(dst []byte, s string) []byte {
	if len(s) > 255 {
		s = s[:255]
	}
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

// appendEventFrame appends one framed binary event to dst and returns
// the extended slice. Unknown event types append nothing.
func appendEventFrame(dst []byte, ev *Event) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // length + CRC, fixed up below
	switch ev.Type {
	case "point":
		dst = append(dst, eventTypePoint)
		dst = appendEventString(dst, ev.Tag)
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(ev.T)))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(ev.X))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(ev.Z))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(ev.Confidence))
		dst = binary.BigEndian.AppendUint32(dst, uint32(ev.Hypotheses))
		var flags byte
		if ev.Switched {
			flags |= 1
		}
		dst = append(dst, flags)
		dst = binary.BigEndian.AppendUint64(dst, ev.Seq)
	case "glyph":
		dst = append(dst, eventTypeGlyph)
		dst = appendEventString(dst, ev.Tag)
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(ev.T)))
		dst = appendEventString(dst, ev.Glyph)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(ev.Dist))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(ev.Margin))
		dst = binary.BigEndian.AppendUint32(dst, uint32(ev.Points))
	case "drop":
		dst = append(dst, eventTypeDrop)
		dst = binary.BigEndian.AppendUint32(dst, uint32(ev.Dropped))
	case "end":
		dst = append(dst, eventTypeEnd)
	case "tier":
		dst = append(dst, eventTypeTier)
		dst = append(dst, byte(ev.Tier), byte(ev.FromTier))
		dst = appendEventString(dst, ev.Reason)
	case "stroke":
		dst = append(dst, eventTypeStroke)
		dst = appendEventString(dst, ev.Tag)
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(ev.T)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(ev.Points))
	default:
		return dst[:start]
	}
	payload := dst[start+eventFrameHeader:]
	binary.BigEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// EventReader decodes a binary event stream.
type EventReader struct {
	r *bufio.Reader
	// resync makes Next scan forward for the next valid frame instead of
	// failing the stream on a malformed one (see NewResyncEventReader).
	resync  bool
	resyncs int
}

// NewEventReader wraps an io.Reader (normally a stream response body).
// The reader is strict: any malformed frame fails the stream with
// ErrBadEventFrame.
func NewEventReader(r io.Reader) *EventReader {
	return &EventReader{r: bufio.NewReaderSize(r, EventMaxPayload+eventFrameHeader)}
}

// NewResyncEventReader wraps an io.Reader like NewEventReader but makes
// Next self-healing: a malformed frame — corrupt length, failed CRC,
// unknown type, short payload — slides the reader forward one byte at a
// time until the next frame that checks out, instead of erroring out
// the stream. A partial frame at the very end of the stream reads as a
// clean io.EOF.
func NewResyncEventReader(r io.Reader) *EventReader {
	return &EventReader{r: bufio.NewReaderSize(r, EventMaxPayload+eventFrameHeader), resync: true}
}

// Resyncs reports how many bytes Next has skipped hunting for valid
// frames; zero on an undamaged stream.
func (r *EventReader) Resyncs() int { return r.resyncs }

// Next reads the next event. It returns io.EOF at a clean end of stream.
// In strict mode malformed frames return ErrBadEventFrame; in resync
// mode they are skipped.
func (r *EventReader) Next() (Event, error) {
	for {
		ev, err := r.next()
		if err == nil || !r.resync || !errors.Is(err, ErrBadEventFrame) {
			return ev, err
		}
		if _, derr := r.r.Discard(1); derr != nil {
			return Event{}, io.EOF
		}
		r.resyncs++
	}
}

// next decodes one event without consuming any bytes until the whole
// frame has validated, so resync mode can rescan from the next byte.
func (r *EventReader) next() (Event, error) {
	hdr, err := r.r.Peek(eventFrameHeader)
	if err != nil {
		if len(hdr) == 0 {
			return Event{}, err // clean EOF between frames, or IO error
		}
		if errors.Is(err, io.EOF) {
			if r.resync {
				// 1–7 trailing bytes: an unfinishable partial header.
				return Event{}, io.EOF
			}
			return Event{}, fmt.Errorf("%w: truncated header: %v", ErrBadEventFrame, io.ErrUnexpectedEOF)
		}
		return Event{}, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 || n > EventMaxPayload {
		return Event{}, fmt.Errorf("%w: payload length %d", ErrBadEventFrame, n)
	}
	frame, err := r.r.Peek(eventFrameHeader + int(n))
	if err != nil {
		if errors.Is(err, io.EOF) {
			if r.resync && !plausibleEventFrame(frame) {
				// The "frame" this length implies runs past the end of the
				// stream and does not even start like a real event: treat
				// it as corruption and keep scanning.
				return Event{}, fmt.Errorf("%w: truncated payload: %v", ErrBadEventFrame, io.ErrUnexpectedEOF)
			}
			if r.resync {
				// A truncated but plausible final frame: the stream ended
				// mid-frame. End of stream.
				return Event{}, io.EOF
			}
			return Event{}, fmt.Errorf("%w: truncated payload: %v", ErrBadEventFrame, io.ErrUnexpectedEOF)
		}
		return Event{}, err
	}
	payload := frame[eventFrameHeader:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[4:]) {
		return Event{}, fmt.Errorf("%w: CRC mismatch", ErrBadEventFrame)
	}
	ev, err := decodeEventPayload(payload)
	if err != nil {
		return Event{}, err
	}
	if _, err := r.r.Discard(eventFrameHeader + int(n)); err != nil {
		return Event{}, err
	}
	return ev, nil
}

// plausibleEventFrame reports whether a partial frame (header plus
// however much payload arrived) starts like a genuine event: a known
// type byte. Unlike readerwire, payload lengths here are
// string-variable, so the type byte is the only cheap check.
func plausibleEventFrame(partial []byte) bool {
	if len(partial) <= eventFrameHeader {
		return len(partial) == eventFrameHeader // header alone: cannot disprove
	}
	switch partial[eventFrameHeader] {
	case eventTypePoint, eventTypeGlyph, eventTypeDrop, eventTypeEnd,
		eventTypeTier, eventTypeStroke:
		return true
	}
	return false
}

// eventCursor is a bounds-checked payload reader: every take fails soft
// (ok=false) instead of slicing out of range, so decodeEventPayload can
// never panic on adversarial input.
type eventCursor struct {
	b  []byte
	ok bool
}

func (c *eventCursor) take(n int) []byte {
	if !c.ok || len(c.b) < n {
		c.ok = false
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *eventCursor) u8() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *eventCursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (c *eventCursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (c *eventCursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *eventCursor) str() string { return string(c.take(int(c.u8()))) }

// decodeEventPayload validates and decodes one frame payload.
func decodeEventPayload(payload []byte) (Event, error) {
	c := &eventCursor{b: payload, ok: true}
	typ := c.u8()
	var ev Event
	switch typ {
	case eventTypePoint:
		ev.Type = "point"
		ev.Tag = c.str()
		ev.T = time.Duration(int64(c.u64()))
		ev.X = c.f64()
		ev.Z = c.f64()
		ev.Confidence = c.f64()
		ev.Hypotheses = int(c.u32())
		ev.Switched = c.u8()&1 != 0
		ev.Seq = c.u64()
	case eventTypeGlyph:
		ev.Type = "glyph"
		ev.Tag = c.str()
		ev.T = time.Duration(int64(c.u64()))
		ev.Glyph = c.str()
		ev.Dist = c.f64()
		ev.Margin = c.f64()
		ev.Points = int(c.u32())
	case eventTypeDrop:
		ev.Type = "drop"
		ev.Dropped = int(c.u32())
	case eventTypeEnd:
		ev.Type = "end"
	case eventTypeTier:
		ev.Type = "tier"
		ev.Tier = int(c.u8())
		ev.FromTier = int(c.u8())
		ev.Reason = c.str()
	case eventTypeStroke:
		ev.Type = "stroke"
		ev.Tag = c.str()
		ev.T = time.Duration(int64(c.u64()))
		ev.Points = int(c.u32())
	default:
		return Event{}, fmt.Errorf("%w: unknown type 0x%02x", ErrBadEventFrame, typ)
	}
	if !c.ok || len(c.b) != 0 {
		return Event{}, fmt.Errorf("%w: type 0x%02x payload length %d", ErrBadEventFrame, typ, len(payload))
	}
	return ev, nil
}
