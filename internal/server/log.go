package server

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
)

// logfHandler bridges structured logs onto the legacy Logf hook so every
// embedder that only wired a printf-style sink keeps receiving the
// daemon's logs after the slog migration. Records render as
// "level msg k=v k=v" on a single line.
type logfHandler struct {
	logf  func(format string, args ...any)
	level *slog.LevelVar
	attrs []slog.Attr
}

func newLogfHandler(logf func(format string, args ...any), level *slog.LevelVar) logfHandler {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return logfHandler{logf: logf, level: level}
}

func (h logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level.Level()
}

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(levelName(r.Level))
	b.WriteByte(' ')
	b.WriteString(r.Message)
	for _, a := range h.attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
	}
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	merged = append(merged, h.attrs...)
	merged = append(merged, attrs...)
	h.attrs = merged
	return h
}

func (h logfHandler) WithGroup(name string) slog.Handler {
	// Groups are flattened: the bridge is for simple printf sinks.
	return h
}

// levelName renders a slog level the way the control plane accepts it.
func levelName(l slog.Level) string {
	switch {
	case l < slog.LevelInfo:
		return "debug"
	case l < slog.LevelWarn:
		return "info"
	case l < slog.LevelError:
		return "warn"
	default:
		return "error"
	}
}

// parseLevel maps a control-plane level name onto slog.
func parseLevel(name string) (slog.Level, error) {
	switch strings.ToLower(name) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("%w: unknown log level %q", ErrBadSpec, name)
}
