package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"rfidraw/internal/vote"
)

// This file is the operator control plane over the admission layer in
// cost.go/registry.go: inspect the node's congestion state and every
// session's cost, mutate the runtime knobs without a restart, and drive
// explicit drain/park/resume lifecycle verbs — the surface a dispatch
// tier routes on once nodes are clustered.

// ControlState is the GET /v1/control response: the node's congestion
// state, its runtime knobs, and every session's cost.
type ControlState struct {
	// Score is the current congestion score with its per-resource
	// component breakdown, refreshed for this request.
	Score NodeScore `json:"score"`
	// ShedThreshold and ParkThreshold are the score levels at which
	// admission 429s and the pressure loop parks (<= 0 = disabled).
	ShedThreshold float64 `json:"shed_threshold"`
	ParkThreshold float64 `json:"park_threshold"`
	// Capacity is the score's normalization basis.
	Capacity controlCapacity `json:"capacity"`
	// IdleMS / RetainMS are the lifecycle deadlines (retain 0 = forever).
	IdleMS   int64 `json:"idle_ms"`
	RetainMS int64 `json:"retain_ms"`
	// WALSyncEvery is the default report-append fsync cadence for new
	// session logs (0 = store default).
	WALSyncEvery int `json:"wal_sync_every"`
	// Search is the default vote-search for new sessions (null =
	// deployment default).
	Search *SearchJSON `json:"search"`
	// TraceSampleN is the span-sampling cadence (1-in-N reports per
	// session record a full stage span; 0 = off).
	TraceSampleN int `json:"trace_sample_n"`
	// LogLevel is the structured-logging level gate.
	LogLevel string `json:"log_level"`
	// MaxSessions / Live / Parked are the admission head-count facts.
	MaxSessions int `json:"max_sessions"`
	Live        int `json:"live"`
	Parked      int `json:"parked"`
	// Sessions is every registry entry's control view, sorted by ID.
	Sessions []ControlSession `json:"sessions"`
}

// controlCapacity is Capacity's JSON shape.
type controlCapacity struct {
	SearchEvalsPerSec float64 `json:"search_evals_per_sec"`
	WALBytesPerSec    float64 `json:"wal_bytes_per_sec"`
	LatePerSec        float64 `json:"late_per_sec"`
	Backlog           float64 `json:"backlog"`
	DowngradesPerSec  float64 `json:"downgrades_per_sec"`
}

// ControlSession is one session's control-plane view: lifecycle state
// plus the demand signal the park policy orders it by.
type ControlSession struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Geometry and Search pin what the session's pipeline was built
	// from.
	Geometry string       `json:"geometry,omitempty"`
	Search   *SearchJSON  `json:"search,omitempty"`
	WALSeq   uint64       `json:"wal_seq,omitempty"`
	IdleMS   int64        `json:"idle_ms"`
	Cost     CostSnapshot `json:"cost"`
	// Events counts the session's diagnostic-timeline entries (including
	// evicted ones); LastEvent summarizes the most recent as "type" or
	// "type: detail". GET /v1/sessions/{id}/events serves the full ring.
	Events    uint64 `json:"events,omitempty"`
	LastEvent string `json:"last_event,omitempty"`
	// Spans counts the session's sampled stage traces; GET
	// /v1/sessions/{id}/trace dumps the retained ring as NDJSON.
	Spans uint64 `json:"spans,omitempty"`
}

// ControlPatchJSON is the POST /v1/control/config body: every field
// optional, absent fields keep their value (KnobPatch semantics).
type ControlPatchJSON struct {
	IdleMS        *int64           `json:"idle_ms"`
	RetainMS      *int64           `json:"retain_ms"`
	ShedThreshold *float64         `json:"shed_threshold"`
	ParkThreshold *float64         `json:"park_threshold"`
	Capacity      *controlCapacity `json:"capacity"`
	WALSyncEvery  *int             `json:"wal_sync_every"`
	// Search replaces the default-search knob; {"mode": "default"}
	// clears it back to the deployment default.
	Search *SearchJSON `json:"search"`
	// TraceSampleN sets the span-sampling cadence (0 disables).
	TraceSampleN *int `json:"trace_sample_n"`
	// LogLevel sets the logging level gate ("debug", "info", "warn",
	// "error").
	LogLevel *string `json:"log_level"`
}

// toSearchJSON renders a search configuration in the same shape
// the create and retrace requests accept (nil stays nil).
func toSearchJSON(sc *vote.SearchConfig) *SearchJSON {
	if sc == nil {
		return nil
	}
	mode := "hierarchical"
	if sc.Mode == vote.SearchDense {
		mode = "dense"
	}
	return &SearchJSON{Mode: mode, TopK: sc.TopK, Levels: sc.Levels}
}

func (s *Server) controlState(now time.Time) ControlState {
	score := s.reg.RefreshCongestion(now)
	knobs := s.reg.Knobs()
	st := ControlState{
		Score:         score,
		ShedThreshold: knobs.ShedThreshold,
		ParkThreshold: knobs.ParkThreshold,
		Capacity: controlCapacity{
			SearchEvalsPerSec: knobs.Capacity.SearchEvalsPerSec,
			WALBytesPerSec:    knobs.Capacity.WALBytesPerSec,
			LatePerSec:        knobs.Capacity.LatePerSec,
			Backlog:           knobs.Capacity.Backlog,
			DowngradesPerSec:  knobs.Capacity.DowngradesPerSec,
		},
		IdleMS:       knobs.IdleTimeout.Milliseconds(),
		RetainMS:     knobs.RetainFor.Milliseconds(),
		WALSyncEvery: knobs.WALSyncEvery,
		Search:       toSearchJSON(knobs.Search),
		TraceSampleN: knobs.TraceSampleN,
		LogLevel:     knobs.LogLevel,
		MaxSessions:  s.reg.cfg.MaxSessions,
	}
	for _, sess := range s.reg.List() {
		state := sess.State()
		switch state {
		case "live":
			st.Live++
		case "recovered":
			st.Parked++
		}
		cs := ControlSession{
			ID:       sess.ID,
			State:    state,
			Geometry: sess.geometry,
			Search:   toSearchJSON(sess.Search()),
			WALSeq:   sess.WALSeq(),
			IdleMS:   now.Sub(sess.idleSince()).Milliseconds(),
			Cost:     sess.Cost(),
			Events:   sess.EventTotal(),
			Spans:    sess.SpanTotal(),
		}
		if last, ok := sess.LastEvent(); ok {
			cs.LastEvent = last.Type
			if last.Detail != "" {
				cs.LastEvent += ": " + last.Detail
			}
		}
		st.Sessions = append(st.Sessions, cs)
	}
	return st
}

func (s *Server) handleControl(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.controlState(time.Now()))
}

func (s *Server) handleControlConfig(w http.ResponseWriter, r *http.Request) {
	var req ControlPatchJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
		return
	}
	var patch KnobPatch
	if req.IdleMS != nil {
		d := time.Duration(*req.IdleMS) * time.Millisecond
		patch.IdleTimeout = &d
	}
	if req.RetainMS != nil {
		d := time.Duration(*req.RetainMS) * time.Millisecond
		patch.RetainFor = &d
	}
	patch.ShedThreshold = req.ShedThreshold
	patch.ParkThreshold = req.ParkThreshold
	if req.Capacity != nil {
		patch.Capacity = &Capacity{
			SearchEvalsPerSec: req.Capacity.SearchEvalsPerSec,
			WALBytesPerSec:    req.Capacity.WALBytesPerSec,
			LatePerSec:        req.Capacity.LatePerSec,
			Backlog:           req.Capacity.Backlog,
			DowngradesPerSec:  req.Capacity.DowngradesPerSec,
		}
	}
	patch.WALSyncEvery = req.WALSyncEvery
	patch.TraceSampleN = req.TraceSampleN
	patch.LogLevel = req.LogLevel
	if req.Search != nil {
		patch.SetSearch = true
		if req.Search.Mode != "default" {
			sc, err := req.Search.config()
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad_request", err.Error())
				return
			}
			patch.Search = sc
		}
	}
	if err := s.reg.ApplyKnobs(patch); err != nil {
		writeSessionError(w, err)
		return
	}
	// Answer with the post-mutation state so mutate → inspect is one
	// round trip and the caller sees exactly what took effect.
	writeJSON(w, http.StatusOK, s.controlState(time.Now()))
}

// handlePark parks one live durable session (explicit load shedding:
// engine reclaimed, record retained and resumable). Idempotent.
func (s *Server) handlePark(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.reg.Park(id); err != nil {
		writeSessionError(w, err)
		return
	}
	sess, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown session")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "state": sess.State(), "wal_seq": sess.WALSeq(),
	})
}

// handleResume brings a parked session back live, its log appending
// past the retained head.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, err := s.reg.Resume(id)
	if err != nil {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "state": sess.State(), "resumed_from": sess.resumeFrom,
		"ingest": s.IngestAddr(),
		"stream": "/v1/sessions/" + id + "/stream",
	})
}

// handleDrain flushes a live session: the reorder buffer empties, open
// sweeps close and the final positions reach subscribers and the WAL —
// the operator's "make everything durable now" verb (e.g. right before
// a planned park).
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown session")
		return
	}
	if sess.State() != "live" {
		writeSessionError(w, ErrNotLive)
		return
	}
	if err := sess.Flush(); err != nil {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "state": sess.State(), "wal_seq": sess.WALSeq(),
	})
}
