package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rfidraw/internal/deploy"
	"rfidraw/internal/obs"
	"rfidraw/internal/vote"
)

// sessionInfo is the JSON shape of one session on the control API.
type sessionInfo struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
	AgeMS   int64     `json:"age_ms"`
	// State is "live" (pump and engine running), "recovered" (serving
	// from the retained WAL only) or "closed".
	State string `json:"state"`
	// Geometry names the session's antenna geometry; omitted for the
	// default deployment.
	Geometry string `json:"geometry,omitempty"`
	// WALSeq is the session's log head sequence; 0 when nothing is
	// recorded. ?from=seq catch-up requests address this space.
	WALSeq      uint64       `json:"wal_seq,omitempty"`
	Readers     int          `json:"readers"`
	Subscribers int          `json:"subscribers"`
	Reports     int64        `json:"reports"`
	Points      int64        `json:"points"`
	Glyphs      int64        `json:"glyphs"`
	Drops       int64        `json:"drops"`
	SearchEvals int64        `json:"search_evals"`
	Resyncs     int64        `json:"resync_bytes"`
	OutOfOrder  int64        `json:"out_of_order"`
	ReorderLate int64        `json:"reorder_late"`
	Tags        []sessionTag `json:"tags,omitempty"`
}

type sessionTag struct {
	Tag            string  `json:"tag"`
	Positions      int     `json:"positions"`
	Started        bool    `json:"started"`
	MeanVote       float64 `json:"mean_vote"`
	Reacquisitions int     `json:"reacquisitions"`
	Hypotheses     int     `json:"hypotheses"`
	LeaderSwitches int     `json:"leader_switches"`
	Retirements    int     `json:"retirements"`
	Buffered       int     `json:"buffered"`
	SearchEvals    int     `json:"search_evals"`
	Err            string  `json:"err,omitempty"`
}

func (s *Server) info(sess *Session) sessionInfo {
	info := sessionInfo{
		ID:          sess.ID,
		Created:     sess.Created,
		AgeMS:       time.Since(sess.Created).Milliseconds(),
		State:       sess.State(),
		Geometry:    sess.geometry,
		WALSeq:      sess.WALSeq(),
		Readers:     sess.Readers(),
		Subscribers: sess.Subscribers(),
		Reports:     sess.reports.Load(),
		Points:      sess.points.Load(),
		Glyphs:      sess.glyphs.Load(),
		Drops:       sess.drops.Load(),
		SearchEvals: sess.searchEvals.Load(),
		Resyncs:     sess.resyncs.Load(),
		OutOfOrder:  sess.outOfOrder.Load(),
		ReorderLate: sess.reorderLate.Load(),
	}
	for _, st := range sess.TagStats() {
		tag := sessionTag{
			Tag: st.Tag, Positions: st.Positions, Started: st.Started,
			MeanVote: st.MeanVote, Reacquisitions: st.Reacquisitions,
			Hypotheses: st.Hypotheses, LeaderSwitches: st.LeaderSwitches,
			Retirements: st.Retirements, Buffered: st.Buffered,
			SearchEvals: st.SearchEvals,
		}
		if st.Err != nil {
			tag.Err = st.Err.Error()
		}
		info.Tags = append(info.Tags, tag)
	}
	return info
}

// handler builds the control/streaming API mux.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	mux.HandleFunc("GET /v1/sessions/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/sessions/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/sessions/{id}/retrace", s.handleRetrace)
	mux.HandleFunc("GET /v1/control", s.handleControl)
	mux.HandleFunc("POST /v1/control/config", s.handleControlConfig)
	mux.HandleFunc("POST /v1/sessions/{id}/park", s.handlePark)
	mux.HandleFunc("POST /v1/sessions/{id}/resume", s.handleResume)
	mux.HandleFunc("POST /v1/sessions/{id}/drain", s.handleDrain)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errorBody is the one JSON error envelope every /v1 handler speaks:
// a stable machine-readable code, a human message, and (on 429s) the
// suggested backoff. Client decodes it into APIError.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS mirrors the Retry-After header on overload refusals.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

type errorEnvelope struct {
	Error errorBody `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: msg}})
}

// writeOverload answers a score-driven admission refusal: HTTP 429 with
// the standard Retry-After header (whole seconds, rounded up) and the
// same hint in milliseconds in the envelope.
func writeOverload(w http.ResponseWriter, oe *OverloadError) {
	secs := int64((oe.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, http.StatusTooManyRequests, errorEnvelope{Error: errorBody{
		Code:         "overloaded",
		Message:      oe.Error(),
		RetryAfterMS: oe.RetryAfter.Milliseconds(),
	}})
}

// writeSessionError maps the session/registry error sentinels onto the
// envelope; it handles every error the open, verb and stream paths can
// produce.
func writeSessionError(w http.ResponseWriter, err error) {
	var oe *OverloadError
	switch {
	case errors.As(err, &oe):
		writeOverload(w, oe)
	case errors.Is(err, ErrSessionLimit):
		writeError(w, http.StatusServiceUnavailable, "session_limit", "session limit reached")
	case errors.Is(err, ErrSessionExists):
		writeError(w, http.StatusConflict, "conflict", "session exists")
	case errors.Is(err, ErrBadSessionID):
		writeError(w, http.StatusBadRequest, "bad_session_id", err.Error())
	case errors.Is(err, ErrBadSpec):
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, ErrUnknownSession):
		writeError(w, http.StatusNotFound, "not_found", "unknown session")
	case errors.Is(err, ErrNotParked):
		writeError(w, http.StatusConflict, "not_parked", err.Error())
	case errors.Is(err, ErrNotLive):
		writeError(w, http.StatusConflict, "not_live", err.Error())
	case errors.Is(err, ErrNotDurable):
		writeError(w, http.StatusConflict, "not_durable", err.Error())
	case errors.Is(err, ErrNoWAL):
		writeError(w, http.StatusBadRequest, "no_wal", "session has no write-ahead log")
	case errors.Is(err, ErrSessionClosed):
		writeError(w, http.StatusGone, "gone", "session closed")
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"sessions":   s.reg.Len(),
		"version":    obs.BuildVersion(),
		"go_version": obs.GoVersion(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	live := liveSums{
		searchEvals:    s.metrics.SearchEvalsRetired.Load(),
		leaderSwitches: s.metrics.LeaderSwitchesRetired.Load(),
		retirements:    s.metrics.RetirementsRetired.Load(),
		// A scrape refreshes the congestion score so operators (and the
		// soak gate) always read a current value.
		score: s.reg.RefreshCongestion(time.Now()),
	}
	for _, sess := range s.reg.List() {
		live.searchEvals += sess.searchEvals.Load()
		live.hypotheses += sess.hypotheses.Load()
		live.leaderSwitches += sess.leaderSwitches.Load()
		live.retirements += sess.retirements.Load()
	}
	usage := s.reg.WALUsage()
	live.walBytes = usage.Bytes
	live.walSegments = int64(usage.Segments)
	live.pipeline = s.reg.Pipeline()
	now := time.Now()
	total := s.metrics.Reports.Load()
	s.rateMu.Lock()
	if !s.lastScrape.IsZero() {
		if dt := now.Sub(s.lastScrape).Seconds(); dt > 0 {
			live.reportsPerSec = float64(total-s.lastReports) / dt
		}
	}
	s.lastScrape, s.lastReports = now, total
	s.rateMu.Unlock()
	w.Header().Set("Content-Type", MetricsContentType)
	s.metrics.render(w, live)
}

// createSessionRequest is the POST /v1/sessions body — the JSON shape
// of a SessionSpec; all fields optional. Pre-spec bodies ({"id",
// "sweep_ms", "geometry"}) decode unchanged.
type createSessionRequest struct {
	// ID names the session; empty assigns a random one.
	ID string `json:"id"`
	// SweepMS is the reader cadence in milliseconds for sessions that
	// know it up front; ingest-fed sessions may leave it 0 and let the
	// first reader Hello announce it.
	SweepMS float64 `json:"sweep_ms"`
	// Geometry names the session's antenna geometry (deploy registry
	// name); empty selects the default deployment.
	Geometry string `json:"geometry,omitempty"`
	// Search overrides the deployment's vote-search configuration for
	// this session (recorded in the WAL, honored by recovery and
	// retrace).
	Search *SearchJSON `json:"search,omitempty"`
	// WAL tunes this session's durability.
	WAL *walPolicyJSON `json:"wal,omitempty"`
}

// walPolicyJSON is the JSON shape of a WALPolicy.
type walPolicyJSON struct {
	Disable   bool `json:"disable,omitempty"`
	SyncEvery int  `json:"sync_every,omitempty"`
}

func (p *walPolicyJSON) policy() WALPolicy {
	if p == nil {
		return WALPolicy{}
	}
	return WALPolicy{Disable: p.Disable, SyncEvery: p.SyncEvery}
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	// An empty body is fine; only a malformed one is an error.
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
		return
	}
	if _, err := deploy.GeometryByName(req.Geometry); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	search, err := req.Search.config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	sess, err := s.reg.Open(SessionSpec{
		ID:       req.ID,
		Sweep:    time.Duration(req.SweepMS * float64(time.Millisecond)),
		Geometry: req.Geometry,
		Search:   search,
		WAL:      req.WAL.policy(),
	})
	if err != nil {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{
		"id":     sess.ID,
		"ingest": s.IngestAddr(),
		"stream": "/v1/sessions/" + sess.ID + "/stream",
	})
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	sessions := s.reg.List()
	out := make([]sessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, s.info(sess))
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown session")
		return
	}
	writeJSON(w, http.StatusOK, s.info(sess))
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if !s.reg.Remove(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "not_found", "unknown session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// streamTier resolves the stream endpoint's trace tier from the ?tier
// query parameter: 0 (decimated dashboard grade), 1 (the full default
// stream) or 2 (full plus diagnostic detail). Absent means T1, the
// compatibility default; anything else is an error.
func streamTier(r *http.Request) (SubscribeTier, error) {
	switch t := r.URL.Query().Get("tier"); t {
	case "":
		return TierDefault, nil
	case "0":
		return Tier0, nil
	case "1":
		return Tier1, nil
	case "2":
		return Tier2, nil
	default:
		return TierDefault, fmt.Errorf("unknown tier %q (want 0, 1 or 2)", t)
	}
}

// streamEncoding resolves the stream endpoint's wire encoding: the
// ?encoding query parameter (ndjson | binary) wins, else an Accept
// header naming the binary media type selects binary, else NDJSON (the
// compatibility default). An unknown ?encoding value is an error.
func streamEncoding(r *http.Request) (binary bool, err error) {
	switch enc := r.URL.Query().Get("encoding"); enc {
	case "":
		// Fall through to Accept negotiation.
	case "ndjson":
		return false, nil
	case "binary":
		return true, nil
	default:
		return false, fmt.Errorf("unknown encoding %q (want ndjson or binary)", enc)
	}
	if strings.Contains(r.Header.Get("Accept"), EventStreamContentType) {
		return true, nil
	}
	return false, nil
}

// handleStream is the live delivery path: a chunked stream of the
// session's events — NDJSON (one JSON object per line) by default, or
// the length-prefixed CRC-framed binary encoding when negotiated via
// ?encoding=binary or Accept (see eventwire.go) — flushed as events
// arrive. ?tier=0|1|2 negotiates the trace tier (T1, today's full
// stream, is the default); a subscriber that falls far enough behind is
// adaptively stepped down a tier — announced in-stream with a "tier"
// control event — and stepped back up after sustained calm. The
// subscriber's queue is bounded; if this consumer still cannot keep up
// it loses the oldest events and sees drop notices (the last-resort
// slow-consumer policy), never stalling the tracker or its peers.
// Live events arrive group-committed: the session's emit flusher
// coalesces them into batches, marshals each batch exactly once per
// encoding, and every stream writer shares the resulting immutable
// bytes — one queue item and one Write per batch, identical bytes on
// the wire. This writer only marshals locally for events that bypass
// that path (catch-up replays, drop notices).
//
// With ?from=seq (WAL-backed sessions) the subscriber first catches up
// from the session's recorded history — points derived from log records
// with sequence ≥ seq (0 = everything) — and is then spliced onto the
// live stream without gap or duplicate. On a recovered session the
// stream is the replay alone, ending with an "end" event; recovered
// sessions always serve this way, with or without the parameter.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown session")
		return
	}
	binary, err := streamEncoding(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	tier, err := streamTier(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	opts := SubscribeOptions{Binary: binary, Batched: true, Tier: tier}
	var sub *Subscriber
	if fromStr := r.URL.Query().Get("from"); fromStr != "" || sess.Recovered() {
		from := uint64(0)
		if fromStr != "" {
			from, err = strconv.ParseUint(fromStr, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad_request", "bad from: "+err.Error())
				return
			}
		}
		sub, err = sess.SubscribeFromOpts(from, opts)
		if errors.Is(err, ErrNoWAL) {
			writeError(w, http.StatusBadRequest, "no_wal", "session has no write-ahead log")
			return
		}
	} else {
		sub, err = sess.SubscribeOpts(opts)
	}
	if errors.Is(err, ErrSubscriberLimit) {
		s.metrics.Shed.Add(1)
		writeError(w, http.StatusServiceUnavailable, "subscriber_limit", "subscriber limit reached")
		return
	}
	if err != nil {
		writeError(w, http.StatusGone, "gone", "session closed")
		return
	}
	defer sub.Close()
	flusher, _ := w.(http.Flusher)
	if binary {
		w.Header().Set("Content-Type", EventStreamContentType)
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	pipeline := s.reg.Pipeline()
	// scratch backs the marshal-locally fallback for events without
	// shared wire bytes; reused across events, never escapes this writer.
	var scratch []byte
	writeEvent := func(ev Event) error {
		if ev.enq > 0 {
			pipeline.ObserveStage(obs.StageWrite, obs.Now()-ev.enq, sess.stripe)
		}
		if binary {
			if ev.wire != nil && ev.wire.binary != nil {
				_, err := w.Write(ev.wire.binary)
				return err
			}
			if ev.batchLen > 0 {
				return nil // carrier: only its pre-encoded bytes have meaning
			}
			scratch = appendEventFrame(scratch[:0], &ev)
			_, err := w.Write(scratch)
			return err
		}
		if ev.wire != nil && ev.wire.ndjson != nil {
			_, err := w.Write(ev.wire.ndjson)
			return err
		}
		if ev.batchLen > 0 {
			return nil // carrier: only its pre-encoded bytes have meaning
		}
		return enc.Encode(ev)
	}
	ctx := r.Context()
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if err := writeEvent(ev); err != nil {
				return
			}
			// Drain whatever else is queued before paying for a flush.
		drain:
			for i := 0; i < 256; i++ {
				select {
				case ev, ok := <-sub.Events():
					if !ok {
						return
					}
					if err := writeEvent(ev); err != nil {
						return
					}
				default:
					break drain
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-ctx.Done():
			return
		}
	}
}

// handleTrace dumps a session's sampled spans as NDJSON, oldest first —
// one line per span, each a full stage-by-stage timing of one report.
// Sampling is off until the trace_sample_n control knob is set.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown session")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, sp := range sess.Spans() {
		if err := enc.Encode(sp); err != nil {
			return
		}
	}
}

// sessionEvents is the GET /v1/sessions/{id}/events response shape.
type sessionEvents struct {
	ID string `json:"id"`
	// Total counts every event ever recorded, including ones the bounded
	// ring has evicted.
	Total  uint64              `json:"total"`
	Events []obs.TimelineEvent `json:"events"`
}

// handleEvents serves a session's diagnostic timeline: the bounded ring
// of lifecycle and anomaly events, oldest first.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown session")
		return
	}
	evs := sess.Events()
	if evs == nil {
		evs = []obs.TimelineEvent{}
	}
	writeJSON(w, http.StatusOK, sessionEvents{ID: sess.ID, Total: sess.EventTotal(), Events: evs})
}

// retraceRequest is the POST /v1/sessions/{id}/retrace body; everything
// optional. An empty body re-traces under the deployment's configuration
// (and the result is then byte-equivalent to the live trace).
type retraceRequest struct {
	Search *SearchJSON `json:"search"`
}

// SearchJSON is the JSON shape of a SearchConfig override.
type SearchJSON struct {
	// Mode is "hierarchical" (default) or "dense".
	Mode   string `json:"mode"`
	TopK   int    `json:"top_k"`
	Levels int    `json:"levels"`
}

func (o *SearchJSON) config() (*vote.SearchConfig, error) {
	if o == nil {
		return nil, nil
	}
	sc := &vote.SearchConfig{TopK: o.TopK, Levels: o.Levels}
	switch o.Mode {
	case "", "hierarchical":
		sc.Mode = vote.SearchHierarchical
	case "dense":
		sc.Mode = vote.SearchDense
	default:
		return nil, fmt.Errorf("unknown search mode %q", o.Mode)
	}
	return sc, nil
}

// RetraceSummary carries one retrace run's per-tag results: the JSON
// the retrace endpoint serves and the shape Client.Retrace decodes —
// one declaration, so server and client cannot drift.
type RetraceSummary struct {
	ID string `json:"id"`
	// Records is the log head sequence the retrace covered.
	Records uint64               `json:"records"`
	Tags    []RetracedTagSummary `json:"tags"`
}

// RetracedTagSummary is one tag's outcome within a RetraceSummary.
type RetracedTagSummary struct {
	Tag string `json:"tag"`
	// Chosen indexes the selected hypothesis among the candidates.
	Chosen         int              `json:"chosen"`
	Initial        PointJSON        `json:"initial"`
	LeaderSwitches int              `json:"leader_switches"`
	Retirements    int              `json:"retirements"`
	Points         []TracePointJSON `json:"points"`
	Err            string           `json:"err,omitempty"`
}

// PointJSON is an (x, z) writing-plane position on the JSON API.
type PointJSON struct {
	X float64 `json:"x"`
	Z float64 `json:"z"`
}

// TracePointJSON is one timed trajectory point on the JSON API.
type TracePointJSON struct {
	T time.Duration `json:"t_ns"`
	X float64       `json:"x"`
	Z float64       `json:"z"`
}

// handleRetrace replays a session's WAL through a fresh tracking
// pipeline — optionally under an overridden SearchConfig — and returns
// batch results for every recorded tag. Works on live sessions (the
// pump drains first, so the retrace covers everything ingested so far)
// and on recovered ones.
func (s *Server) handleRetrace(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown session")
		return
	}
	var req retraceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
		return
	}
	search, err := req.Search.config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	results, head, err := sess.Retrace(search)
	switch {
	case errors.Is(err, ErrNoWAL):
		writeError(w, http.StatusBadRequest, "no_wal", "session has no write-ahead log")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	resp := RetraceSummary{ID: sess.ID, Records: head, Tags: make([]RetracedTagSummary, 0, len(results))}
	for _, res := range results {
		tag := RetracedTagSummary{Tag: res.Tag}
		if res.Err != nil {
			tag.Err = res.Err.Error()
			resp.Tags = append(resp.Tags, tag)
			continue
		}
		tag.Chosen = res.Result.BestIndex
		init := res.Result.InitialPosition()
		tag.Initial = PointJSON{X: init.X, Z: init.Z}
		tag.LeaderSwitches = res.Result.LeaderSwitches
		tag.Retirements = res.Result.Retirements
		for _, p := range res.Result.Best.Trajectory.Points {
			tag.Points = append(tag.Points, TracePointJSON{T: p.T, X: p.Pos.X, Z: p.Pos.Z})
		}
		resp.Tags = append(resp.Tags, tag)
	}
	writeJSON(w, http.StatusOK, resp)
}
