package server

import (
	"bytes"
	"encoding/gob"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rfidraw/internal/engine"
	"rfidraw/internal/realtime"
	"rfidraw/internal/vote"
	"rfidraw/internal/wal"
)

// recordingFactory builds session engines with RecordTrace on, so the
// live trace can be snapshotted for disk round-trip comparison.
func recordingFactory(t testing.TB) EngineFactory {
	scenario(t)
	return func(sweep time.Duration, geometry string, search *vote.SearchConfig, onUpdate func(engine.Update)) (*engine.Engine, error) {
		sys, err := geometrySearchSystem(t, geometry, search)
		if err != nil {
			return nil, err
		}
		return engine.New(engine.Config{
			Shards:        2,
			System:        sys,
			SweepInterval: sweep,
			OnUpdate:      onUpdate,
			BatchSize:     1,
			RecordTrace:   true,
		})
	}
}

// testReplayerFactory mirrors the serve.go factory: shared system when
// the search config is untouched, a rebuilt one under an override —
// the same geometrySearchSystem the engine factories use, so a session
// opened with a search override replays identically to its live run.
func testReplayerFactory(t testing.TB) ReplayerFactory {
	scenario(t)
	return func(sweep time.Duration, geometry string, search *vote.SearchConfig, record bool) (*engine.Replayer, error) {
		sys, err := geometrySearchSystem(t, geometry, search)
		if err != nil {
			return nil, err
		}
		return engine.NewReplayer(engine.Config{
			System:        sys,
			SweepInterval: sweep,
			RecordTrace:   record,
		})
	}
}

// walRegistry builds a WAL-backed registry over dir with every-append
// syncing (crash images must be complete) and trace recording.
func walRegistry(t testing.TB, dir string) *Registry {
	t.Helper()
	store, err := wal.Open(dir, wal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(RegistryConfig{
		NewEngine:   recordingFactory(t),
		NewReplayer: testReplayerFactory(t),
		WAL:         store,
		NoRecognize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	return reg
}

// copyTree snapshots a directory — the crash image a SIGKILL would leave.
func copyTree(t testing.TB, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func gobBytes(t testing.TB, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWALRetraceMatchesLiveTrace is the PR's acceptance gate: a session
// traced live, killed mid-stream (modelled as a crash image of the data
// dir — no close record, no shutdown path), recovered from the WAL by a
// fresh registry and re-traced with the same config must yield per-tag
// batch Results gob-byte-identical to the live trace of the recorded
// prefix — the disk round-trip extension of TestBatchIsReplayOfStreaming.
func TestWALRetraceMatchesLiveTrace(t *testing.T) {
	run, _ := scenario(t)
	dir := t.TempDir()
	reg := walRegistry(t, dir)
	sess, err := reg.Open(SessionSpec{ID: "crash", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	merged := realtime.MergeStreams(run.ReportsRF...)
	// Feed only a prefix: the "mid-stream" part of the kill.
	prefix := merged[:2*len(merged)/3]
	for _, rep := range prefix {
		if err := sess.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	// Snapshot the live trace of everything ingested so far.
	live, err := sess.TraceResults()
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != len(run.Tags) {
		t.Fatalf("live results for %d tags, want %d", len(live), len(run.Tags))
	}
	for _, r := range live {
		if r.Err != nil {
			t.Fatalf("tag %s: live: %v", r.Tag, r.Err)
		}
	}

	// SIGKILL: copy the data dir as-is. The log has no close record.
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)

	// A fresh daemon recovers the crash image.
	reg2 := walRegistry(t, crashDir)
	sess2, ok := reg2.Get("crash")
	if !ok {
		t.Fatal("crashed session not rehydrated")
	}
	if sess2.State() != "recovered" {
		t.Fatalf("state = %q, want recovered", sess2.State())
	}
	if reg2.metrics.SessionsRecovered.Load() != 1 {
		t.Fatal("recovery counter not incremented")
	}
	// Ingest and live subscription must refuse; only replay serves.
	if err := sess2.Offer(merged[0]); err != ErrSessionClosed {
		t.Fatalf("Offer on recovered session: %v", err)
	}
	if _, err := sess2.Subscribe(0); err != ErrSessionClosed {
		t.Fatalf("Subscribe on recovered session: %v", err)
	}

	retraced, head, err := sess2.Retrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	if head == 0 {
		t.Fatal("retrace covered nothing")
	}
	if len(retraced) != len(live) {
		t.Fatalf("retraced %d tags, live %d", len(retraced), len(live))
	}
	for i := range live {
		if retraced[i].Err != nil {
			t.Fatalf("tag %s: retrace: %v", retraced[i].Tag, retraced[i].Err)
		}
		if retraced[i].Tag != live[i].Tag {
			t.Fatalf("tag order: %s vs %s", retraced[i].Tag, live[i].Tag)
		}
		if !bytes.Equal(gobBytes(t, live[i].Result), gobBytes(t, retraced[i].Result)) {
			t.Errorf("tag %s: retrace differs from live trace after disk round-trip", live[i].Tag)
		}
	}

	// A retrace under an overridden SearchConfig runs (dense reference
	// mode) and still traces every tag; results may legitimately differ.
	dense := &vote.SearchConfig{Mode: vote.SearchDense}
	overridden, _, err := sess2.Retrace(dense)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range overridden {
		if r.Err != nil {
			t.Fatalf("tag %s: dense retrace: %v", r.Tag, r.Err)
		}
		if r.Result.Best.Trajectory.Len() == 0 {
			t.Fatalf("tag %s: dense retrace produced no trajectory", r.Tag)
		}
	}
}

// TestRecoveredSessionLifecycle: recovered sessions are listable, never
// idle-expired, serve full-history catch-up streams ending with "end",
// and DELETE removes both the entry and the on-disk record.
func TestRecoveredSessionLifecycle(t *testing.T) {
	run, _ := scenario(t)
	dir := t.TempDir()
	reg := walRegistry(t, dir)
	sess, err := reg.Open(SessionSpec{ID: "keep", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	feedSession(t, run, sess)
	reg.Close()

	reg2 := walRegistry(t, dir)
	sess2, ok := reg2.Get("keep")
	if !ok {
		t.Fatal("session not rehydrated after clean close")
	}
	// The clean close compacted the log to a single segment.
	if segs, _ := filepath.Glob(filepath.Join(dir, "keep", "*.wal")); len(segs) != 1 {
		t.Fatalf("clean-closed session has %d segments, want 1 (compacted)", len(segs))
	}
	// Idle GC must leave recovered sessions alone.
	if ids := reg2.ExpireIdle(time.Now().Add(24*time.Hour), time.Minute); len(ids) != 0 {
		t.Fatalf("idle GC expired recovered sessions: %v", ids)
	}
	// Its ID stays reserved.
	if _, err := reg2.Open(SessionSpec{ID: "keep", Sweep: perTagSweep(run)}); err != ErrSessionExists {
		t.Fatalf("open over recovered id: %v, want ErrSessionExists", err)
	}

	// Full-history catch-up replay: points for both tags, then "end".
	sub, err := sess2.SubscribeFrom(0, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	points := map[string]int{}
	sawEnd := false
	for ev := range sub.Events() {
		switch ev.Type {
		case "point":
			if ev.Seq == 0 {
				t.Fatal("replayed point without a log sequence")
			}
			points[ev.Tag]++
		case "end":
			sawEnd = true
		}
	}
	if !sawEnd {
		t.Fatal("recovered replay did not end with an end event")
	}
	if len(points) != len(run.Tags) {
		t.Fatalf("replay covered %d tags, want %d (%v)", len(points), len(run.Tags), points)
	}

	// DELETE forgets: registry entry and disk record both go.
	if !reg2.Remove("keep") {
		t.Fatal("remove failed")
	}
	if _, err := os.Stat(filepath.Join(dir, "keep")); !os.IsNotExist(err) {
		t.Fatalf("wal dir survives delete: %v", err)
	}
	if _, err := reg2.Open(SessionSpec{ID: "keep", Sweep: perTagSweep(run)}); err != nil {
		t.Fatalf("open after delete: %v", err)
	}
}

// TestExpiryParksDurableSessions: idle expiry of a WAL-backed session
// reclaims its engine but keeps the record serveable in the registry as
// "recovered" — the motivating bug (idle GC losing the session forever)
// is gone.
func TestExpiryParksDurableSessions(t *testing.T) {
	run, _ := scenario(t)
	reg := walRegistry(t, t.TempDir())
	sess, err := reg.Open(SessionSpec{ID: "park", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	feedSession(t, run, sess)
	ids := reg.ExpireIdle(time.Now().Add(time.Hour), time.Minute)
	if len(ids) != 1 || ids[0] != "park" {
		t.Fatalf("ExpireIdle = %v, want [park]", ids)
	}
	parked, ok := reg.Get("park")
	if !ok {
		t.Fatal("durable session vanished on expiry")
	}
	if parked.State() != "recovered" {
		t.Fatalf("state = %q, want recovered", parked.State())
	}
	if reg.metrics.SessionsRetained.Load() != 1 {
		t.Fatal("retained gauge wrong")
	}
	results, _, err := parked.Retrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("tag %s: retrace after expiry: %v", r.Tag, r.Err)
		}
	}
	// Expiry freed the admission slot.
	if reg.live != 0 {
		t.Fatalf("live count = %d after expiry", reg.live)
	}
}

// TestFlushIdempotentSingleRecord: repeated explicit flushes with no new
// ingest log exactly one flush record — the session-level face of the
// drain-race fix, which is what keeps a WAL replay equivalent to the
// live trace (a second logged flush would close sweeps twice on replay
// only).
func TestFlushIdempotentSingleRecord(t *testing.T) {
	run, _ := scenario(t)
	dir := t.TempDir()
	reg := walRegistry(t, dir)
	sess, err := reg.Open(SessionSpec{ID: "flushy", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	store, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	scanFlushes := func() int {
		t.Helper()
		_, stats, err := store.Scan("flushy")
		if err != nil {
			t.Fatal(err)
		}
		return stats.Flushes
	}
	merged := realtime.MergeStreams(run.ReportsRF...)
	half := len(merged) / 2
	for _, rep := range merged[:half] {
		if err := sess.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	before := scanFlushes()
	if before == 0 {
		t.Fatal("effective flush logged no record")
	}
	// The gate: back-to-back flushes with nothing new must log nothing
	// (and close no sweep — the replay would otherwise close it twice).
	for i := 0; i < 3; i++ {
		if err := sess.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if after := scanFlushes(); after != before {
		t.Fatalf("idle flushes logged %d extra records", after-before)
	}
	// New ingest makes the next flush effective again.
	for _, rep := range merged[half:] {
		if err := sess.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if after := scanFlushes(); after <= before {
		t.Fatalf("flush after new ingest logged nothing (%d -> %d)", before, after)
	}
	_, stats, err := store.Scan("flushy")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reports != len(merged) {
		t.Fatalf("logged %d reports, want %d", stats.Reports, len(merged))
	}
}
