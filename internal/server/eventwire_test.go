package server

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"rfidraw/internal/faultgen"
)

// fuzzEventStream is the canonical valid event stream the fuzzer
// mutates: every event type the encoder frames, with representative
// field values. The committed seed corpus under
// testdata/fuzz/FuzzEventFrame holds this stream plus
// faultgen.Corruptions variants of it (truncations, bit flips, length
// tampering, junk insertion) so every fuzz run starts from the wire
// damage the fault harness models.
func fuzzEventStream(tb testing.TB, points int) []byte {
	tb.Helper()
	var buf []byte
	for i := 0; i < points; i++ {
		buf = appendEventFrame(buf, &Event{
			Type: "point", Tag: "tag-1",
			T: time.Duration(i) * 5 * time.Millisecond,
			X: 0.1 * float64(i), Z: -0.2 * float64(i),
			Confidence: 0.9, Hypotheses: 3, Switched: i%2 == 1,
			Seq: uint64(i + 1),
		})
	}
	buf = appendEventFrame(buf, &Event{
		Type: "glyph", Tag: "tag-1", T: 250 * time.Millisecond,
		Glyph: "A", Dist: 0.42, Margin: 0.17, Points: points,
	})
	buf = appendEventFrame(buf, &Event{Type: "drop", Dropped: 7})
	buf = appendEventFrame(buf, &Event{
		Type: "stroke", Tag: "tag-1", T: 250 * time.Millisecond, Points: points,
	})
	buf = appendEventFrame(buf, &Event{
		Type: "tier", Tier: 1, FromTier: 2, Reason: "backlog",
	})
	buf = appendEventFrame(buf, &Event{Type: "end"})
	return buf
}

// checkWireEvent asserts a decoded event upholds the decoder's
// contract: a known type, and no NaN-poisoned counters smuggled into
// integer fields (floats may be anything — the CRC vouches for them).
func checkWireEvent(t *testing.T, ev Event) {
	t.Helper()
	switch ev.Type {
	case "point", "glyph", "drop", "end", "tier", "stroke":
	default:
		t.Fatalf("decoded event with unknown type %q", ev.Type)
	}
}

// FuzzEventFrame drives arbitrary bytes through both event decoder
// modes. Strict mode may reject (ErrBadEventFrame) but never panic or
// mis-decode; resync mode must additionally terminate at io.EOF on
// EVERY input — it exists to survive corruption, so surfacing
// ErrBadEventFrame, looping forever, or hallucinating more events than
// the bytes could frame are all failures.
func FuzzEventFrame(f *testing.F) {
	clean := fuzzEventStream(f, 6)
	f.Add(clean)
	for _, c := range faultgen.Corruptions(1, clean, 16) {
		f.Add(c)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		strict := NewEventReader(bytes.NewReader(data))
		for {
			ev, err := strict.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrBadEventFrame) {
					t.Fatalf("strict: unexpected error class: %v", err)
				}
				break
			}
			checkWireEvent(t, ev)
		}

		rr := NewResyncEventReader(bytes.NewReader(data))
		decoded := 0
		for {
			ev, err := rr.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("resync: leaked error past resync: %v", err)
				}
				break
			}
			checkWireEvent(t, ev)
			decoded++
		}
		// Progress invariants: the scanner cannot skip more bytes than the
		// input holds, and the smallest frame (end: header + type byte) is
		// 9 bytes, bounding how many events any input can possibly contain.
		if rr.Resyncs() > len(data) {
			t.Fatalf("resync: skipped %d bytes of a %d-byte input", rr.Resyncs(), len(data))
		}
		if decoded > len(data)/9 {
			t.Fatalf("resync: decoded %d events from %d bytes", decoded, len(data))
		}
	})
}

// TestEventFrameRoundTrip pins the codec: every event type survives an
// encode/decode round trip with its serialized fields intact.
func TestEventFrameRoundTrip(t *testing.T) {
	events := []Event{
		{Type: "point", Tag: "pen", T: 125 * time.Millisecond, X: 1.25, Z: -0.75,
			Confidence: 0.875, Hypotheses: 4, Switched: true, Seq: 42},
		{Type: "point", Tag: "pen", T: 130 * time.Millisecond, X: math.Pi, Z: 0,
			Confidence: 1, Hypotheses: 1, Switched: false, Seq: 43},
		{Type: "glyph", Tag: "pen", T: 300 * time.Millisecond, Glyph: "B",
			Dist: 0.5, Margin: 0.25, Points: 17},
		{Type: "drop", Dropped: 9},
		{Type: "tier", Tier: 0, FromTier: 1, Reason: "backlog"},
		{Type: "tier", Tier: 2, FromTier: 1, Reason: "recovered"},
		{Type: "stroke", Tag: "pen", T: 300 * time.Millisecond, Points: 17},
		{Type: "end"},
	}
	var buf []byte
	for i := range events {
		buf = appendEventFrame(buf, &events[i])
	}
	r := NewEventReader(bytes.NewReader(buf))
	for i, want := range events {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d round-tripped to %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF after last event, got %v", err)
	}
}

// TestEventResyncRecoversInterleavedJunk mirrors the readerwire gate:
// junk between every frame of a valid stream must cost nothing but the
// junk — every original event comes back, in order.
func TestEventResyncRecoversInterleavedJunk(t *testing.T) {
	clean := fuzzEventStream(t, 6)
	var frames [][]byte
	for rest := clean; len(rest) > 0; {
		n := eventFrameHeader + int(uint32(rest[0])<<24|uint32(rest[1])<<16|uint32(rest[2])<<8|uint32(rest[3]))
		frames = append(frames, rest[:n])
		rest = rest[n:]
	}
	junk := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00}
	var damaged bytes.Buffer
	for _, fr := range frames {
		damaged.Write(junk)
		damaged.Write(fr)
	}
	rr := NewResyncEventReader(bytes.NewReader(damaged.Bytes()))
	var got int
	for {
		ev, err := rr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		checkWireEvent(t, ev)
		got++
	}
	if got != len(frames) {
		t.Fatalf("recovered %d events, want %d", got, len(frames))
	}
	if rr.Resyncs() == 0 {
		t.Fatal("resync counter did not move over damaged stream")
	}
}

// TestEventStrictRejectsCorruptCRC pins strict mode's whole point: a
// flipped payload bit fails the stream with ErrBadEventFrame.
func TestEventStrictRejectsCorruptCRC(t *testing.T) {
	buf := appendEventFrame(nil, &Event{Type: "drop", Dropped: 3})
	buf[len(buf)-1] ^= 0x01
	r := NewEventReader(bytes.NewReader(buf))
	if _, err := r.Next(); !errors.Is(err, ErrBadEventFrame) {
		t.Fatalf("want ErrBadEventFrame on CRC damage, got %v", err)
	}
}
