package server

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"rfidraw/internal/obs"
)

// obsServer spins up a full daemon over real sockets with the test
// engine factory, returning it with a bound API client.
func obsServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
	}
	if cfg.IngestAddr == "" {
		cfg.IngestAddr = "127.0.0.1:0"
	}
	if cfg.SharedRegistry == nil && cfg.Registry.NewEngine == nil {
		cfg.Registry.NewEngine = testFactory(t)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, &Client{BaseURL: "http://" + srv.HTTPAddr()}
}

// TestMetricsExpositionLint scrapes a loaded daemon and lints the whole
// Prometheus text exposition: every series needs HELP and TYPE declared
// before its samples and exactly once, histogram buckets must be
// cumulative and in ascending le order, and each label set's +Inf
// bucket must equal its _count. The scrape itself goes through
// Client.FetchMetrics, which asserts the status and Content-Type.
func TestMetricsExpositionLint(t *testing.T) {
	run, _ := scenario(t)
	srv, cl := obsServer(t, Config{})
	sess, err := srv.Registry().Open(SessionSpec{ID: "lint", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// An HTTP stream subscriber, so the write stage sees traffic too.
	events, errs, err := cl.Subscribe(ctx, "lint")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	go func() {
		seen := false
		for ev := range events {
			if ev.Type == "point" && !seen {
				seen = true
				close(got)
			}
		}
	}()
	feedSession(t, run, sess)
	select {
	case <-got:
	case err := <-errs:
		t.Fatalf("stream error: %v", err)
	case <-ctx.Done():
		t.Fatal("no point reached the HTTP stream")
	}

	text, err := cl.FetchMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lintExposition(t, text)

	// The observability families this PR introduces must be present with
	// the right types, and every pipeline stage must have observed load.
	for fam, want := range map[string]string{
		"rfidrawd_stage_seconds":              "histogram",
		"rfidrawd_report_latency_seconds":     "histogram",
		"rfidrawd_build_info":                 "gauge",
		"rfidrawd_process_start_time_seconds": "gauge",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" "+want) {
			t.Errorf("missing # TYPE %s %s", fam, want)
		}
	}
	for _, st := range obs.Stages() {
		line := `rfidrawd_stage_seconds_bucket{stage="` + st.String() + `",le="+Inf"}`
		count := sampleValue(t, text, line)
		if count == 0 {
			t.Errorf("stage %s histogram never observed anything", st)
		}
	}
	if sampleValue(t, text, `rfidrawd_report_latency_seconds_count`) == 0 {
		t.Error("end-to-end latency histogram never observed anything")
	}
}

// sampleValue finds the sample whose series text starts with prefix and
// returns its value (0 with an error logged when absent).
func sampleValue(t *testing.T, text, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Errorf("series %s has unparseable value %q", prefix, rest)
			}
			return v
		}
	}
	t.Errorf("series %s absent from /metrics", prefix)
	return 0
}

// lintExposition enforces the Prometheus text-format invariants over a
// full scrape.
func lintExposition(t *testing.T, text string) {
	t.Helper()
	help := map[string]bool{}
	typ := map[string]string{}
	type key struct{ family, labels string }
	lastLe := map[key]float64{}
	lastVal := map[key]float64{}
	infVal := map[key]float64{}
	countVal := map[key]float64{}
	seenInf := map[key]bool{}
	for _, line := range strings.Split(text, "\n") {
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Errorf("HELP line without text: %q", line)
			}
			help[f[2]] = true
			continue
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := typ[f[2]]; dup {
				t.Errorf("duplicate # TYPE for %s", f[2])
			}
			typ[f[2]] = f[3]
			continue
		case strings.HasPrefix(line, "#"):
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
			continue
		}
		name, labels := series, ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Errorf("unterminated label set: %q", line)
				continue
			}
			name, labels = series[:i], series[i+1:len(series)-1]
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name && typ[base] == "histogram" {
				family = base
				break
			}
		}
		if typ[family] == "" {
			t.Errorf("sample %s has no # TYPE", name)
		}
		if !help[family] {
			t.Errorf("sample %s has no # HELP", name)
		}
		if typ[family] != "histogram" {
			continue
		}
		// Histogram invariants, per label set (minus le).
		var le string
		var rest []string
		for _, kv := range strings.Split(labels, ",") {
			switch {
			case kv == "":
			case strings.HasPrefix(kv, `le="`):
				le = strings.TrimSuffix(strings.TrimPrefix(kv, `le="`), `"`)
			default:
				rest = append(rest, kv)
			}
		}
		k := key{family, strings.Join(rest, ",")}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if le == "" {
				t.Errorf("histogram bucket without le label: %q", line)
				continue
			}
			leVal := math.Inf(1)
			if le != "+Inf" {
				if leVal, err = strconv.ParseFloat(le, 64); err != nil {
					t.Errorf("unparseable le %q in %q", le, line)
					continue
				}
			}
			if prev, ok := lastLe[k]; ok && leVal <= prev {
				t.Errorf("%s{%s}: bucket le=%q not above the previous bound", family, k.labels, le)
			}
			if val < lastVal[k] {
				t.Errorf("%s{%s}: bucket counts not cumulative at le=%q (%v < %v)", family, k.labels, le, val, lastVal[k])
			}
			lastLe[k], lastVal[k] = leVal, val
			if math.IsInf(leVal, 1) {
				infVal[k], seenInf[k] = val, true
			}
		case strings.HasSuffix(name, "_count"):
			countVal[k] = val
		}
	}
	for k := range countVal {
		if !seenInf[k] {
			t.Errorf("%s{%s}: histogram has a _count but no +Inf bucket", k.family, k.labels)
			continue
		}
		if infVal[k] != countVal[k] {
			t.Errorf("%s{%s}: +Inf bucket %v != _count %v", k.family, k.labels, infVal[k], countVal[k])
		}
	}
	for k := range seenInf {
		if _, ok := countVal[k]; !ok {
			t.Errorf("%s{%s}: histogram has buckets but no _count", k.family, k.labels)
		}
	}
}

// TestFetchMetricsRejectsBadResponses pins the client-side scrape
// hardening: a non-200 status or a non-exposition Content-Type must
// fail instead of returning an error page as "metrics".
func TestFetchMetricsRejectsBadResponses(t *testing.T) {
	ctx := context.Background()
	boom := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer boom.Close()
	if _, err := (&Client{BaseURL: boom.URL}).FetchMetrics(ctx); err == nil {
		t.Error("FetchMetrics accepted a 500 response")
	}

	html := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.Write([]byte("<html>not metrics</html>"))
	}))
	defer html.Close()
	if _, err := (&Client{BaseURL: html.URL}).FetchMetrics(ctx); err == nil || !strings.Contains(err.Error(), "Content-Type") {
		t.Errorf("FetchMetrics on text/html: %v, want a Content-Type error", err)
	}

	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", MetricsContentType)
		w.Write([]byte("rfidrawd_up 1\n"))
	}))
	defer good.Close()
	if txt, err := (&Client{BaseURL: good.URL}).FetchMetrics(ctx); err != nil || !strings.Contains(txt, "rfidrawd_up") {
		t.Errorf("FetchMetrics on a proper exposition: %q, %v", txt, err)
	}
}

// TestTraceSpanSampling drives the span sampler end to end: enable
// 1-in-1 sampling through the control plane, stream a session, and dump
// the spans back as NDJSON.
func TestTraceSpanSampling(t *testing.T) {
	run, _ := scenario(t)
	srv, cl := obsServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	one := 1
	state, err := cl.UpdateControl(ctx, ControlPatchJSON{TraceSampleN: &one})
	if err != nil {
		t.Fatal(err)
	}
	if state.TraceSampleN != 1 {
		t.Fatalf("control state trace_sample_n = %d after setting 1", state.TraceSampleN)
	}
	neg := -1
	if _, err := cl.UpdateControl(ctx, ControlPatchJSON{TraceSampleN: &neg}); err == nil {
		t.Error("negative trace_sample_n was accepted")
	}

	sess, err := srv.Registry().Open(SessionSpec{ID: "spans", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	feedSession(t, run, sess)

	spans, err := cl.FetchTrace(ctx, "spans")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("1-in-1 sampling recorded no spans")
	}
	for i, sp := range spans {
		if sp.Wall == 0 {
			t.Fatalf("span %d has no wall stamp", i)
		}
		if sp.TotalNs < sp.EmitNs || sp.TotalNs < 0 {
			t.Fatalf("span %d: total %dns < emit %dns", i, sp.TotalNs, sp.EmitNs)
		}
		if sp.ReorderNs < 0 || sp.WALNs < 0 || sp.OfferNs < 0 {
			t.Fatalf("span %d has a negative stage duration: %+v", i, sp)
		}
	}

	// The control plane summarizes the ring per session.
	state, err = cl.Control(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, cs := range state.Sessions {
		if cs.ID == "spans" {
			found = true
			if cs.Spans == 0 {
				t.Error("control state reports zero spans for the sampled session")
			}
		}
	}
	if !found {
		t.Fatal("session absent from control state")
	}

	// The unknown-session path returns the API error envelope.
	if _, err := cl.FetchTrace(ctx, "nope"); err == nil {
		t.Error("FetchTrace of an unknown session succeeded")
	}
}

// TestEventTimelineParkResume proves the diagnostic timeline is one
// continuous record across the session's whole lifecycle: the create
// event survives an operator park and a resume (the timeline rides the
// resumeState hand-off), and the events API serves it in order.
func TestEventTimelineParkResume(t *testing.T) {
	run, _ := scenario(t)
	reg := walRegistry(t, t.TempDir())
	srv, cl := obsServer(t, Config{SharedRegistry: reg})
	_ = srv
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sess, err := reg.Open(SessionSpec{ID: "tl", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	feedSession(t, run, sess)
	if err := reg.Park("tl"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Resume("tl"); err != nil {
		t.Fatal(err)
	}

	evs, total, err := cl.FetchEvents(ctx, "tl")
	if err != nil {
		t.Fatal(err)
	}
	if total < 3 || len(evs) < 3 {
		t.Fatalf("timeline has %d events (%d retained), want >= 3", total, len(evs))
	}
	idx := map[string]int{}
	for i, ev := range evs {
		if _, seen := idx[ev.Type]; !seen {
			idx[ev.Type] = i
		}
		if ev.Type == obs.EventPark && ev.Detail != "operator" {
			t.Errorf("park event detail = %q, want operator", ev.Detail)
		}
	}
	create, okC := idx[obs.EventCreate]
	park, okP := idx[obs.EventPark]
	resume, okR := idx[obs.EventResume]
	if !okC || !okP || !okR {
		t.Fatalf("timeline %v missing create/park/resume", evs)
	}
	if !(create < park && park < resume) {
		t.Fatalf("timeline out of order: create@%d park@%d resume@%d", create, park, resume)
	}

	// The control plane surfaces the most recent event.
	state, err := cl.Control(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range state.Sessions {
		if cs.ID != "tl" {
			continue
		}
		if cs.Events != total {
			t.Errorf("control state events = %d, want %d", cs.Events, total)
		}
		if !strings.HasPrefix(cs.LastEvent, obs.EventResume) {
			t.Errorf("control state last_event = %q, want a resume", cs.LastEvent)
		}
	}
}

// TestLogLevelKnob mutates the runtime logging gate through the control
// plane and rejects nonsense levels before any mutation.
func TestLogLevelKnob(t *testing.T) {
	_, cl := obsServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	debug := "debug"
	state, err := cl.UpdateControl(ctx, ControlPatchJSON{LogLevel: &debug})
	if err != nil {
		t.Fatal(err)
	}
	if state.LogLevel != "debug" {
		t.Fatalf("log_level = %q after setting debug", state.LogLevel)
	}
	bogus := "shouting"
	if _, err := cl.UpdateControl(ctx, ControlPatchJSON{LogLevel: &bogus}); err == nil {
		t.Error("bogus log level was accepted")
	}
	state, err = cl.Control(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if state.LogLevel != "debug" {
		t.Fatalf("rejected patch mutated log_level to %q", state.LogLevel)
	}
}
