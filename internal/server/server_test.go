package server

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/deploy"
	"rfidraw/internal/engine"
	"rfidraw/internal/geom"
	"rfidraw/internal/readerwire"
	"rfidraw/internal/realtime"
	"rfidraw/internal/rfid"
	"rfidraw/internal/sim"
	"rfidraw/internal/vote"
)

// testScenario caches one simulated two-tag writing session for the whole
// package (scenario generation dominates test time otherwise).
var (
	scenarioOnce sync.Once
	scenarioRun  *sim.MultiWordRun
	scenarioSys  *core.System
	scenarioErr  error
)

func scenario(t testing.TB) (*sim.MultiWordRun, *core.System) {
	t.Helper()
	scenarioOnce.Do(func() {
		sc, err := sim.New(sim.Config{Seed: 7})
		if err != nil {
			scenarioErr = err
			return
		}
		scenarioRun, scenarioErr = sc.RunWords(
			[]string{"hi", "go"},
			[]geom.Vec2{{X: 0.5, Z: 1.0}, {X: 1.6, Z: 1.4}},
		)
		if scenarioErr != nil {
			return
		}
		scenarioSys, scenarioErr = core.NewSystem(nil, core.Config{
			Plane: geom.Plane{Y: 2}, Region: deploy.DefaultRegion(),
		})
	})
	if scenarioErr != nil {
		t.Fatal(scenarioErr)
	}
	return scenarioRun, scenarioSys
}

// perTagSweep is the scenario's streaming cadence (airtime split two
// ways).
func perTagSweep(run *sim.MultiWordRun) time.Duration {
	return run.SweepInterval * time.Duration(len(run.Tags))
}

// geometrySystem resolves a named geometry to a positioning system for
// test factories: the cached scenario system for the default, a freshly
// built one (rebuilt steering tables, widened region) otherwise.
func geometrySystem(t testing.TB, geometry string) (*core.System, error) {
	_, sys := scenario(t)
	if geometry == "" || geometry == "default" {
		return sys, nil
	}
	spec, err := deploy.GeometryByName(geometry)
	if err != nil {
		return nil, err
	}
	dep, err := spec.BuildDefault()
	if err != nil {
		return nil, err
	}
	cfg := sys.Config()
	cfg.Region = spec.Region()
	return core.NewSystem(dep, cfg)
}

// geometrySearchSystem is geometrySystem plus an optional vote-search
// override, rebuilt with field assignment exactly like serve.go's
// factories so live engines and replayers configure identically.
func geometrySearchSystem(t testing.TB, geometry string, search *vote.SearchConfig) (*core.System, error) {
	sys, err := geometrySystem(t, geometry)
	if err != nil || search == nil {
		return sys, err
	}
	cfg := sys.Config()
	cfg.Vote.Search = *search
	cfg.Trace.Search = *search
	return core.NewSystem(sys.Deployment(), cfg)
}

func testFactory(t testing.TB) EngineFactory {
	scenario(t)
	return func(sweep time.Duration, geometry string, search *vote.SearchConfig, onUpdate func(engine.Update)) (*engine.Engine, error) {
		sys, err := geometrySearchSystem(t, geometry, search)
		if err != nil {
			return nil, err
		}
		return engine.New(engine.Config{
			Shards:        2,
			System:        sys,
			SweepInterval: sweep,
			OnUpdate:      onUpdate,
			BatchSize:     1,
		})
	}
}

func testRegistry(t testing.TB, cfg RegistryConfig) *Registry {
	t.Helper()
	if cfg.NewEngine == nil {
		cfg.NewEngine = testFactory(t)
	}
	reg, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	return reg
}

// feedSession replays the scenario's merged report stream into a session
// in-process and flushes.
func feedSession(t testing.TB, run *sim.MultiWordRun, sess *Session) {
	t.Helper()
	for _, rep := range realtime.MergeStreams(run.ReportsRF...) {
		if err := sess.Offer(rep); err != nil {
			t.Fatalf("Offer: %v", err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

// drainCount consumes a subscriber channel until it closes, counting
// events by type.
func drainCount(sub *Subscriber, wg *sync.WaitGroup, out *map[string]int, mu *sync.Mutex) {
	defer wg.Done()
	for ev := range sub.Events() {
		mu.Lock()
		(*out)[ev.Type]++
		mu.Unlock()
	}
}

// TestSessionLifecycle is the satellite lifecycle test: create → attach
// two subscribers → slow-consumer drop → idle expiry → GC, exercised
// under -race in CI.
func TestSessionLifecycle(t *testing.T) {
	run, _ := scenario(t)
	reg := testRegistry(t, RegistryConfig{})
	sess, err := reg.Open(SessionSpec{ID: "life", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open(SessionSpec{ID: "life", Sweep: perTagSweep(run)}); err != ErrSessionExists {
		t.Fatalf("duplicate open: %v, want ErrSessionExists", err)
	}

	// Attach two subscribers: a healthy one and a deliberately tiny,
	// never-drained one that must hit the slow-consumer drop policy.
	healthy, err := sess.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := sess.Subscribe(2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go drainCount(healthy, &wg, &counts, &mu)

	feedSession(t, run, sess)

	if got := sess.points.Load(); got == 0 {
		t.Fatal("session produced no points")
	}
	if slow.Drops() == 0 {
		t.Fatal("slow subscriber (queue 2) should have dropped events")
	}
	if sess.drops.Load() == 0 || reg.Metrics().EventsDropped.Load() == 0 {
		t.Fatal("drop counters not incremented")
	}

	// Detach, then idle-expire: with no readers and no subscribers the GC
	// must collect the session.
	slow.Close()
	slow.Close() // idempotent
	if ids := reg.ExpireIdle(time.Now().Add(time.Hour), time.Minute); len(ids) != 0 {
		t.Fatalf("expired %v while a subscriber is attached", ids)
	}
	healthyDrained := make(chan struct{})
	go func() { wg.Wait(); close(healthyDrained) }()
	healthy.Close()
	<-healthyDrained

	ids := reg.ExpireIdle(time.Now().Add(time.Hour), time.Minute)
	if len(ids) != 1 || ids[0] != "life" {
		t.Fatalf("ExpireIdle = %v, want [life]", ids)
	}
	if _, ok := reg.Get("life"); ok {
		t.Fatal("expired session still registered")
	}
	if reg.Metrics().SessionsExpired.Load() != 1 || reg.Metrics().SessionsActive.Load() != 0 {
		t.Fatal("expiry metrics wrong")
	}
	// The session must be fully closed: offers fail, Close is idempotent.
	if err := sess.Offer(rfid.Report{}); err != ErrSessionClosed {
		t.Fatalf("Offer after expiry: %v", err)
	}
	sess.Close()

	mu.Lock()
	defer mu.Unlock()
	if counts["point"] == 0 {
		t.Fatal("healthy subscriber saw no points")
	}
}

// TestGlyphEvents: strokes separated by stream-time silence produce glyph
// events for the healthy subscriber.
func TestGlyphEvents(t *testing.T) {
	run, _ := scenario(t)
	reg := testRegistry(t, RegistryConfig{})
	sess, err := reg.Open(SessionSpec{ID: "glyph", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := sess.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go drainCount(sub, &wg, &counts, &mu)
	feedSession(t, run, sess)
	reg.Remove("glyph")
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if counts["glyph"] == 0 {
		t.Fatal("no glyph events (strokes should classify at flush)")
	}
	if counts["end"] != 1 {
		t.Fatalf("end events = %d, want 1", counts["end"])
	}
}

// TestAdmissionControl: opens beyond MaxSessions shed with
// ErrSessionLimit and count; subscribers beyond MaxSubscribers shed.
func TestAdmissionControl(t *testing.T) {
	run, _ := scenario(t)
	reg := testRegistry(t, RegistryConfig{MaxSessions: 2, MaxSubscribers: 1, NoRecognize: true})
	if _, err := reg.Open(SessionSpec{ID: "a", Sweep: perTagSweep(run)}); err != nil {
		t.Fatal(err)
	}
	sb, err := reg.Open(SessionSpec{ID: "b", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open(SessionSpec{ID: "c", Sweep: perTagSweep(run)}); err != ErrSessionLimit {
		t.Fatalf("third open: %v, want ErrSessionLimit", err)
	}
	if reg.Metrics().Shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", reg.Metrics().Shed.Load())
	}
	// Removing a session frees a slot.
	reg.Remove("a")
	if _, err := reg.Open(SessionSpec{ID: "c", Sweep: perTagSweep(run)}); err != nil {
		t.Fatalf("open after free: %v", err)
	}
	sub, err := sb.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := sb.Subscribe(0); err != ErrSubscriberLimit {
		t.Fatalf("second subscriber: %v, want ErrSubscriberLimit", err)
	}
}

// TestServerEndToEnd runs the full daemon loop over real sockets: create
// a session over HTTP, stream two readers through the ingest gateway,
// consume the NDJSON stream, check the observability surface, delete.
func TestServerEndToEnd(t *testing.T) {
	run, _ := scenario(t)
	srv, err := New(Config{
		HTTPAddr:   "127.0.0.1:0",
		IngestAddr: "127.0.0.1:0",
		Registry: RegistryConfig{
			NewEngine: testFactory(t),
			// The test replays at 8x, so cross-reader wall skew is
			// amplified 8x in stream time; widen the reorder hold.
			ReorderWindow: 250 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl := &Client{BaseURL: "http://" + srv.HTTPAddr()}
	id, err := cl.CreateSession(ctx, SessionSpec{ID: "e2e", Sweep: 0})
	if err != nil {
		t.Fatal(err)
	}
	if id != "e2e" || cl.Ingest != srv.IngestAddr() {
		t.Fatalf("create returned id=%q ingest=%q", id, cl.Ingest)
	}
	events, errs, err := cl.Subscribe(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			counts[ev.Type]++
		}
	}()

	const pace = 8
	start := time.Now()
	var wg sync.WaitGroup
	for readerID := range run.ReportsRF {
		wg.Add(1)
		go func(readerID int) {
			defer wg.Done()
			rs, err := cl.DialIngest(id, readerwire.Hello{
				Proto:         readerwire.ProtoVersion,
				ReaderID:      uint8(readerID),
				AntennaCount:  4,
				SweepInterval: perTagSweep(run),
			})
			if err != nil {
				t.Errorf("reader %d: %v", readerID, err)
				return
			}
			defer rs.Close()
			if err := rs.Replay(ctx, run.ReportsRF[readerID], pace, 0, start); err != nil {
				t.Errorf("reader %d replay: %v", readerID, err)
			}
		}(readerID)
	}
	wg.Wait()
	// Let the idle drain close the final sweeps, then inspect and delete.
	time.Sleep(300 * time.Millisecond)

	metricsText, err := cl.FetchMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rfidrawd_sessions_active 1",
		"rfidrawd_reports_total",
		"rfidrawd_points_total",
		"rfidrawd_search_evals_total",
		"rfidrawd_goroutines",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if err := cl.DeleteSession(ctx, id); err != nil {
		t.Fatal(err)
	}
	<-done
	select {
	case err := <-errs:
		t.Fatalf("stream error: %v", err)
	default:
	}
	if counts["point"] == 0 {
		t.Fatalf("no point events over the wire (counts=%v)", counts)
	}
	if counts["end"] != 1 {
		t.Fatalf("end events = %d, want 1 (counts=%v)", counts["end"], counts)
	}
	if cl2 := srv.Registry().Len(); cl2 != 0 {
		t.Fatalf("sessions after delete = %d", cl2)
	}
}

// TestIngestReaderReconnect: a reader that disconnects mid-stream and
// reconnects (new conn, new Hello) keeps its session's trackers going.
func TestIngestReaderReconnect(t *testing.T) {
	run, _ := scenario(t)
	srv, err := New(Config{
		HTTPAddr:   "127.0.0.1:0",
		IngestAddr: "127.0.0.1:0",
		Registry: RegistryConfig{
			NewEngine:     testFactory(t),
			ReorderWindow: 250 * time.Millisecond,
			NoRecognize:   true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl := &Client{BaseURL: "http://" + srv.HTTPAddr()}
	id, err := cl.CreateSession(ctx, SessionSpec{ID: "", Sweep: 0})
	if err != nil {
		t.Fatal(err)
	}

	hello := func(readerID int) readerwire.Hello {
		return readerwire.Hello{
			Proto: readerwire.ProtoVersion, ReaderID: uint8(readerID),
			AntennaCount: 4, SweepInterval: perTagSweep(run),
		}
	}
	const pace = 8
	start := time.Now()
	var wg sync.WaitGroup
	// Reader 1 streams straight through; reader 0 drops after the first
	// half (no Bye — a hard disconnect) and reconnects for the rest.
	wg.Add(2)
	go func() {
		defer wg.Done()
		rs, err := cl.DialIngest(id, hello(1))
		if err != nil {
			t.Error(err)
			return
		}
		defer rs.Close()
		if err := rs.Replay(ctx, run.ReportsRF[1], pace, 0, start); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		half := len(run.ReportsRF[0]) / 2
		rs, err := cl.DialIngest(id, hello(0))
		if err != nil {
			t.Error(err)
			return
		}
		if err := rs.Replay(ctx, run.ReportsRF[0][:half], pace, 0, start); err != nil {
			t.Error(err)
		}
		rs.conn.Close() // hard drop, no Bye
		rs2, err := cl.DialIngest(id, hello(0))
		if err != nil {
			t.Error(err)
			return
		}
		defer rs2.Close()
		if err := rs2.Replay(ctx, run.ReportsRF[0][half:], pace, 0, start); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	time.Sleep(300 * time.Millisecond)

	sess, ok := srv.Registry().Get(id)
	if !ok {
		t.Fatal("session gone")
	}
	if sess.points.Load() == 0 {
		t.Fatal("no points across reader reconnect")
	}
}

// TestCloseFastWithLiveSubscriber: a server with an attached stream
// consumer (and an idle half-open ingest conn) must shut down promptly —
// the registry closes first, ending the stream handlers, so http.Shutdown
// does not sit out its timeout.
func TestCloseFastWithLiveSubscriber(t *testing.T) {
	run, _ := scenario(t)
	srv, err := New(Config{
		HTTPAddr:   "127.0.0.1:0",
		IngestAddr: "127.0.0.1:0",
		Registry:   RegistryConfig{NewEngine: testFactory(t), NoRecognize: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl := &Client{BaseURL: "http://" + srv.HTTPAddr()}
	id, err := cl.CreateSession(ctx, SessionSpec{ID: "", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	events, _, err := cl.Subscribe(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	// A connection that never completes its preamble handshake.
	idle, err := net.Dial("tcp", srv.IngestAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Close took %v with a live subscriber; want prompt", d)
	}
	for range events {
	} // stream must have ended
}

// TestBadSessionID: IDs that cannot travel in URL paths or the ingest
// preamble are rejected at create time.
func TestBadSessionID(t *testing.T) {
	reg := testRegistry(t, RegistryConfig{NoRecognize: true})
	for _, id := range []string{"a b", "a/b", "a\nb", strings.Repeat("x", 65)} {
		if _, err := reg.Open(SessionSpec{ID: id, Sweep: time.Millisecond}); !errors.Is(err, ErrBadSessionID) {
			t.Errorf("Open(%q) = %v, want ErrBadSessionID", id, err)
		}
	}
	if _, err := reg.Open(SessionSpec{ID: "ok-id_1.2", Sweep: time.Millisecond}); err != nil {
		t.Errorf("Open(ok-id_1.2): %v", err)
	}
}

// TestIngestUnknownSession: the gateway refuses a preamble naming a
// session that does not exist.
func TestIngestUnknownSession(t *testing.T) {
	srv, err := New(Config{
		HTTPAddr:   "127.0.0.1:0",
		IngestAddr: "127.0.0.1:0",
		Registry:   RegistryConfig{NewEngine: testFactory(t), NoRecognize: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &Client{Ingest: srv.IngestAddr()}
	if _, err := cl.DialIngest("nope", readerwire.Hello{Proto: readerwire.ProtoVersion, SweepInterval: time.Millisecond}); err == nil {
		// The dial itself may succeed (preamble write buffered); the
		// server must close the conn without creating anything.
		if srv.Registry().Len() != 0 {
			t.Fatal("unknown-session preamble created state")
		}
	}
}
