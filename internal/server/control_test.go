package server

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"rfidraw/internal/engine"
	"rfidraw/internal/realtime"
	"rfidraw/internal/vote"
	"rfidraw/internal/wal"
)

// This file covers the tentpole: demand-signal admission (congestion
// score, 429s with Retry-After), pressure parking ordered by session
// cost, the runtime-knob control plane, and the park → resume → retrace
// determinism guarantee.

// walControlRegistry is walRegistry with admission tuning exposed.
func walControlRegistry(t testing.TB, dir string, cfg RegistryConfig) *Registry {
	t.Helper()
	store, err := wal.Open(dir, wal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.NewEngine = recordingFactory(t)
	cfg.NewReplayer = testReplayerFactory(t)
	cfg.WAL = store
	cfg.NoRecognize = true
	reg, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	return reg
}

// TestKnobRoundTrip: ApplyKnobs mutations are visible in the next Knobs
// snapshot, invalid patches are refused whole, and the search default
// can be set and cleared.
func TestKnobRoundTrip(t *testing.T) {
	reg := testRegistry(t, RegistryConfig{})
	k := reg.Knobs()
	if k.IdleTimeout != 2*time.Minute || k.ShedThreshold != 0.9 || k.ParkThreshold != 0.75 {
		t.Fatalf("default knobs = %+v", k)
	}

	idle, retain := 30*time.Second, time.Hour
	shed, park := 0.5, 0.25
	sync := 7
	if err := reg.ApplyKnobs(KnobPatch{
		IdleTimeout:   &idle,
		RetainFor:     &retain,
		ShedThreshold: &shed,
		ParkThreshold: &park,
		Capacity:      &Capacity{SearchEvalsPerSec: 100},
		WALSyncEvery:  &sync,
		SetSearch:     true,
		Search:        &vote.SearchConfig{Mode: vote.SearchDense, TopK: 3},
	}); err != nil {
		t.Fatal(err)
	}
	k = reg.Knobs()
	if k.IdleTimeout != idle || k.RetainFor != retain || k.ShedThreshold != shed || k.ParkThreshold != park {
		t.Fatalf("mutated knobs = %+v", k)
	}
	if k.Capacity.SearchEvalsPerSec != 100 || k.Capacity.Backlog == 0 {
		t.Fatalf("capacity not normalized: %+v", k.Capacity)
	}
	if k.WALSyncEvery != 7 {
		t.Fatalf("wal sync = %d", k.WALSyncEvery)
	}
	if k.Search == nil || k.Search.Mode != vote.SearchDense || k.Search.TopK != 3 {
		t.Fatalf("search knob = %+v", k.Search)
	}

	// A partial patch leaves everything else alone.
	shed2 := 0.8
	if err := reg.ApplyKnobs(KnobPatch{ShedThreshold: &shed2}); err != nil {
		t.Fatal(err)
	}
	k = reg.Knobs()
	if k.ShedThreshold != 0.8 || k.IdleTimeout != idle || k.Search == nil {
		t.Fatalf("partial patch clobbered knobs: %+v", k)
	}

	// Clearing the search default.
	if err := reg.ApplyKnobs(KnobPatch{SetSearch: true}); err != nil {
		t.Fatal(err)
	}
	if reg.Knobs().Search != nil {
		t.Fatal("search knob not cleared")
	}

	// Invalid values are refused with ErrBadSpec.
	bad := -time.Second
	if err := reg.ApplyKnobs(KnobPatch{IdleTimeout: &bad}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("negative idle accepted: %v", err)
	}
	badSearch := &vote.SearchConfig{TopK: 300}
	if err := reg.ApplyKnobs(KnobPatch{SetSearch: true, Search: badSearch}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("out-of-range search accepted: %v", err)
	}
}

// TestControlAPIRoundTrip: mutate → inspect over HTTP is coherent — the
// config response reflects the patch, and a later GET /v1/control agrees.
func TestControlAPIRoundTrip(t *testing.T) {
	run, _ := scenario(t)
	srv, cl := compatServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := cl.CreateSession(ctx, SessionSpec{ID: "ctl", Sweep: perTagSweep(run)}); err != nil {
		t.Fatal(err)
	}

	st, err := cl.Control(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShedThreshold != 0.9 || st.ParkThreshold != 0.75 || st.MaxSessions == 0 {
		t.Fatalf("defaults = %+v", st)
	}
	if st.Live != 1 || len(st.Sessions) != 1 || st.Sessions[0].ID != "ctl" || st.Sessions[0].State != "live" {
		t.Fatalf("session view = %+v", st.Sessions)
	}

	idleMS, shed := int64(45_000), 0.6
	mutated, err := cl.UpdateControl(ctx, ControlPatchJSON{
		IdleMS:        &idleMS,
		ShedThreshold: &shed,
		Search:        &SearchJSON{Mode: "dense", TopK: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mutated.IdleMS != idleMS || mutated.ShedThreshold != 0.6 {
		t.Fatalf("mutation response = %+v", mutated)
	}
	if mutated.Search == nil || mutated.Search.Mode != "dense" || mutated.Search.TopK != 2 {
		t.Fatalf("search in response = %+v", mutated.Search)
	}

	again, err := cl.Control(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if again.IdleMS != idleMS || again.ShedThreshold != 0.6 || again.Search == nil {
		t.Fatalf("mutation did not persist: %+v", again)
	}
	// The serving loop reads the same knob the control plane wrote.
	if got := srv.reg.IdleTimeout(); got != 45*time.Second {
		t.Fatalf("registry idle = %v", got)
	}

	// Clearing the search default with the "default" sentinel mode.
	cleared, err := cl.UpdateControl(ctx, ControlPatchJSON{Search: &SearchJSON{Mode: "default"}})
	if err != nil {
		t.Fatal(err)
	}
	if cleared.Search != nil {
		t.Fatalf("search not cleared: %+v", cleared.Search)
	}

	// An invalid patch is a 400 with the envelope's bad_request code.
	badIdle := int64(-5)
	if _, err := cl.UpdateControl(ctx, ControlPatchJSON{IdleMS: &badIdle}); err == nil {
		t.Fatal("negative idle accepted over HTTP")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
			t.Fatalf("invalid patch error = %v", err)
		}
	}
}

// TestOverloadAdmission: once measured demand exceeds the configured
// capacity, new sessions are refused with an OverloadError carrying a
// positive Retry-After, while sessions under the hard cap and score are
// admitted; disabling the threshold re-admits.
func TestOverloadAdmission(t *testing.T) {
	run, _ := scenario(t)
	reg := testRegistry(t, RegistryConfig{
		// A capacity of one search evaluation per second: any fed
		// session saturates the score.
		Capacity: Capacity{SearchEvalsPerSec: 1},
	})
	sess, err := reg.Open(SessionSpec{ID: "hog", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the cost meters BEFORE the work happens — rates are deltas
	// between samples — then sample again once the evals have landed.
	// Both stamps track the wall clock so admission reuses the cache.
	reg.RefreshCongestion(time.Now())
	feedSession(t, run, sess)
	score := reg.RefreshCongestion(time.Now())
	if score.Score < 1 {
		t.Fatalf("score = %v after saturating evals", score.Score)
	}
	if score.Components.SearchEvals < 1 {
		t.Fatalf("components = %+v", score.Components)
	}

	_, err = reg.Open(SessionSpec{ID: "refused", Sweep: perTagSweep(run)})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("open under overload: %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("overload error carries no retry hint: %v", err)
	}
	if reg.metrics.AdmissionRejected.Load() == 0 || reg.metrics.Shed.Load() == 0 {
		t.Fatal("admission rejection not counted")
	}

	// Negative threshold disables score shedding; the session admits.
	off := -1.0
	if err := reg.ApplyKnobs(KnobPatch{ShedThreshold: &off}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open(SessionSpec{ID: "admitted", Sweep: perTagSweep(run)}); err != nil {
		t.Fatalf("open with shedding disabled: %v", err)
	}
}

// TestParkUnderPressureOrdersByCost: the pressure loop parks the
// lowest-cost durable sessions first and stops once the score clears
// the threshold (here capacity is saturated, so it parks until no
// durable live session remains).
func TestParkUnderPressureOrdersByCost(t *testing.T) {
	run, _ := scenario(t)
	reg := walControlRegistry(t, t.TempDir(), RegistryConfig{
		Capacity: Capacity{SearchEvalsPerSec: 1},
	})
	cheap, err := reg.Open(SessionSpec{ID: "cheap", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := reg.Open(SessionSpec{ID: "costly", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	merged := realtime.MergeStreams(run.ReportsRF...)
	// Seed the meters, then feed: the cheap session sees a sliver of
	// the stream, the costly one all of it — its eval rate dominates.
	reg.RefreshCongestion(time.Now())
	for _, rep := range merged[:len(merged)/8] {
		if err := cheap.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := cheap.Flush(); err != nil {
		t.Fatal(err)
	}
	feedSession(t, run, costly)

	now := time.Now()
	if s := reg.RefreshCongestion(now); s.Score < 1 {
		t.Fatalf("score = %v, want saturated", s.Score)
	}
	parked := reg.ParkUnderPressure(now)
	if len(parked) != 2 || parked[0] != "cheap" || parked[1] != "costly" {
		t.Fatalf("parked %v, want [cheap costly]", parked)
	}
	for _, id := range []string{"cheap", "costly"} {
		s, ok := reg.Get(id)
		if !ok || s.State() != "recovered" {
			t.Fatalf("session %s not parked", id)
		}
	}
	if reg.metrics.SessionsParked.Load() != 2 {
		t.Fatalf("parked counter = %d", reg.metrics.SessionsParked.Load())
	}
	// With nothing left to shed the loop must terminate empty-handed,
	// not spin.
	if again := reg.ParkUnderPressure(now); len(again) != 0 {
		t.Fatalf("second pass parked %v", again)
	}
}

// TestParkResumeRetraceDeterminism is the tentpole acceptance gate: a
// session parked and resumed must lose nothing — its retrace stays
// byte-identical to an unkilled control session fed the same stream,
// and its log keeps appending past the retained head after resume.
func TestParkResumeRetraceDeterminism(t *testing.T) {
	run, _ := scenario(t)
	reg := walControlRegistry(t, t.TempDir(), RegistryConfig{})
	control, err := reg.Open(SessionSpec{ID: "control", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := reg.Open(SessionSpec{ID: "victim", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	feedSession(t, run, control)
	feedSession(t, run, victim)

	if err := reg.Park("victim"); err != nil {
		t.Fatal(err)
	}
	parked, _ := reg.Get("victim")
	if parked.State() != "recovered" {
		t.Fatalf("state after park = %q", parked.State())
	}
	if err := reg.Park("victim"); err != nil {
		t.Fatalf("re-park of a parked session must be idempotent: %v", err)
	}
	headAtPark := parked.WALSeq()
	if headAtPark == 0 {
		t.Fatal("parked session has no retained head")
	}

	// Parked: the record still serves retrace, and it matches the
	// unkilled control byte for byte.
	ctrlRes, _, err := control.Retrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	parkRes, _, err := parked.Retrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	compareRetraces(t, "parked vs control", ctrlRes, parkRes)

	resumed, err := reg.Resume("victim")
	if err != nil {
		t.Fatal(err)
	}
	if resumed.State() != "live" {
		t.Fatalf("state after resume = %q", resumed.State())
	}
	if got := resumed.WALSeq(); got != headAtPark {
		t.Fatalf("resume moved the head: %d -> %d", headAtPark, got)
	}
	if reg.metrics.SessionsResumed.Load() != 1 {
		t.Fatal("resume counter not incremented")
	}

	// The resumed session accepts new ingest and its log appends past
	// the retained head rather than truncating it.
	if err := resumed.Offer(realtime.MergeStreams(run.ReportsRF...)[len(realtime.MergeStreams(run.ReportsRF...))-1]); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := resumed.WALSeq(); got <= headAtPark {
		t.Fatalf("log did not advance after resume: %d <= %d", got, headAtPark)
	}

	// The full record — pre-park prefix plus post-resume appends — is
	// one coherent stream: retrace covers it without error, twice, and
	// the two runs agree (determinism of the resumed record).
	res1, head1, err := resumed.Retrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, head2, err := resumed.Retrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	if head1 != head2 || head1 <= headAtPark {
		t.Fatalf("retrace heads %d/%d, want equal and past %d", head1, head2, headAtPark)
	}
	compareRetraces(t, "resumed run1 vs run2", res1, res2)

	// Resuming a live session refuses.
	if _, err := reg.Resume("victim"); !errors.Is(err, ErrNotParked) {
		t.Fatalf("resume of live session: %v", err)
	}
}

func compareRetraces(t *testing.T, label string, a, b []engine.TagResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d tags vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("%s: tag %s: %v / %v", label, a[i].Tag, a[i].Err, b[i].Err)
		}
		if a[i].Tag != b[i].Tag {
			t.Fatalf("%s: tag order %s vs %s", label, a[i].Tag, b[i].Tag)
		}
		if !bytes.Equal(gobBytes(t, a[i].Result), gobBytes(t, b[i].Result)) {
			t.Errorf("%s: tag %s: retraces differ", label, a[i].Tag)
		}
	}
}

// TestExpireRetained: a parked record untouched past the retention
// deadline is forgotten and its log deleted; touching it (retrace)
// re-arms the clock.
func TestExpireRetained(t *testing.T) {
	run, _ := scenario(t)
	reg := walControlRegistry(t, t.TempDir(), RegistryConfig{})
	sess, err := reg.Open(SessionSpec{ID: "fade", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	feedSession(t, run, sess)
	if err := reg.Park("fade"); err != nil {
		t.Fatal(err)
	}

	// Within the deadline nothing expires.
	if ids := reg.ExpireRetained(time.Now().Add(time.Minute), time.Hour); len(ids) != 0 {
		t.Fatalf("expired %v before the deadline", ids)
	}
	// Retain 0 means forever.
	if ids := reg.ExpireRetained(time.Now().Add(1000*time.Hour), 0); len(ids) != 0 {
		t.Fatalf("retain=0 expired %v", ids)
	}
	ids := reg.ExpireRetained(time.Now().Add(2*time.Hour), time.Hour)
	if len(ids) != 1 || ids[0] != "fade" {
		t.Fatalf("ExpireRetained = %v, want [fade]", ids)
	}
	if _, ok := reg.Get("fade"); ok {
		t.Fatal("expired record still registered")
	}
	if reg.metrics.SessionsRetained.Load() != 0 {
		t.Fatalf("retained gauge = %d", reg.metrics.SessionsRetained.Load())
	}
	if reg.WALUsage().Sessions != 0 {
		t.Fatal("expired record's log not deleted")
	}
}
