package server

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"rfidraw/internal/engine"
	"rfidraw/internal/obs"
	"rfidraw/internal/realtime"
	"rfidraw/internal/vote"
	"rfidraw/internal/wal"
)

// ReplayerFactory binds a WAL replay to a fresh tracking pipeline. sweep
// is the recorded session's per-tag cadence; search, when non-nil,
// overrides the deployment's SearchConfig (a retrace under different
// tunables — the record-once/re-trace-many use of the log). record asks
// for batch-equivalent TraceResults (retrace); catch-up feeds leave it
// off so replay memory stays bounded.
// geometry names the recorded session's antenna geometry (from the WAL
// meta; "" = default) so the replay positions with the same steering
// tables the live session used.
type ReplayerFactory func(sweep time.Duration, geometry string, search *vote.SearchConfig, record bool) (*engine.Replayer, error)

// SubscribeFrom attaches a catch-up consumer: it is fed the session's
// recorded history replayed from the WAL — points derived from log
// records with sequence ≥ from (0 = everything) — and, on a live
// session, spliced onto the live event stream at the log head without
// gap or duplicate. The splice is pump-mediated: the pump drains (so
// everything emitted live so far is on disk), snapshots the head, and
// parks live events for this subscriber until the replayed prefix has
// been delivered. On a recovered session the replay ends with an "end"
// event instead.
func (s *Session) SubscribeFrom(from uint64, buffer int) (*Subscriber, error) {
	return s.SubscribeFromOpts(from, SubscribeOptions{Buffer: buffer})
}

// SubscribeFromOpts is SubscribeFrom with the full option set (buffer
// size, binary wire encoding).
func (s *Session) SubscribeFromOpts(from uint64, o SubscribeOptions) (*Subscriber, error) {
	if s.reg.cfg.WAL == nil || s.reg.cfg.NewReplayer == nil {
		return nil, ErrNoWAL
	}
	buffer := o.Buffer
	if buffer <= 0 {
		buffer = s.reg.cfg.SubscriberQueue
	}
	tier := o.Tier.level()
	sub := &Subscriber{
		sess:       s,
		ch:         make(chan Event, buffer),
		catchingUp: true,
		binary:     o.Binary,
		batched:    o.Batched,
		tier:       tier,
		maxTier:    tier,
		cancel:     make(chan struct{}),
	}
	if s.Recovered() {
		s.emitMu.Lock()
		if !s.replayAttachable {
			s.emitMu.Unlock()
			return nil, ErrSessionClosed
		}
		if len(s.subs) >= s.reg.cfg.MaxSubscribers {
			s.emitMu.Unlock()
			return nil, ErrSubscriberLimit
		}
		s.addSubLocked(sub)
		s.emitMu.Unlock()
		s.touch() // retention clock: the record is in active use
		go s.runCatchup(sub, from, 0, true)
		return sub, nil
	}
	// Live session: admission under emitMu, then the pump-mediated
	// drain-and-attach (the subscriber limit is re-checked by nobody —
	// a racing attach may briefly overshoot the cap by the number of
	// in-flight catch-ups, which is the usual bounded-staleness of the
	// admission counters).
	s.emitMu.Lock()
	if s.subsClosed || s.closing {
		s.emitMu.Unlock()
		return nil, ErrSessionClosed
	}
	if len(s.subs) >= s.reg.cfg.MaxSubscribers {
		s.emitMu.Unlock()
		return nil, ErrSubscriberLimit
	}
	s.emitMu.Unlock()
	req := &catchupReq{sub: sub, head: make(chan uint64, 1)}
	if err := s.enqueue(ingestItem{catchup: req}); err != nil {
		return nil, err
	}
	select {
	case head, ok := <-req.head:
		if !ok {
			return nil, ErrSessionClosed
		}
		go s.runCatchup(sub, from, head, false)
		return sub, nil
	case <-s.pumpDone:
		return nil, ErrSessionClosed
	}
}

// runCatchup is the catch-up subscriber's feeder goroutine: it replays
// the WAL through a fresh pipeline up to head (0 = the whole log),
// delivers the derived points with seq ≥ from, then splices the
// subscriber onto the live stream (or ends it, for recovered sessions).
// It is the sole closer of sub.ch.
func (s *Session) runCatchup(sub *Subscriber, from, head uint64, recovered bool) {
	err := s.feedCatchup(sub, from, head)
	if err != nil {
		s.logger.Warn("catch-up replay failed", "err", err)
	}
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	if _, in := s.subs[sub]; !in {
		// Detached (or session closed) mid-replay: the accounting is
		// done, only the channel is ours to close.
		close(sub.ch)
		return
	}
	if err != nil || recovered {
		// A recovered session has no live stream to splice onto; a
		// failed replay must not silently splice over a gap. Both end
		// the stream.
		s.removeSubLocked(sub)
		sub.catchingUp = false
		select {
		case sub.ch <- Event{Type: "end"}:
		default:
		}
		close(sub.ch)
		return
	}
	// Splice: deliver the live events parked during the replay, then
	// hand the queue over to the broadcast path. Everything parked
	// derives from records past the snapshotted head, so the stream is
	// gapless and duplicate-free across the boundary.
	sub.catchingUp = false
	for _, ev := range sub.pending {
		s.sendLocked(sub, ev)
	}
	sub.pending = nil
}

// feedCatchup replays the log into the subscriber's queue. Sends block
// (the replay is consumer-paced) but abort on detach or session close.
func (s *Session) feedCatchup(sub *Subscriber, from, head uint64) error {
	if head == 0 && !s.Recovered() {
		return nil // nothing recorded yet; splice immediately
	}
	sweep := time.Duration(s.sweepNs.Load())
	if sweep <= 0 {
		return nil // no engine was ever built; nothing to replay
	}
	rp, err := s.reg.cfg.NewReplayer(sweep, s.geometry, s.search, false)
	if err != nil {
		return err
	}
	// A T0 catch-up decimates the replayed points in WAL-sequence space
	// (deterministic for any given record) with the live tier's factor;
	// higher tiers replay everything. The tier is fixed at attach for the
	// whole replay — adaptive retuning starts at the live splice.
	decimated := sub.tier == 0
	var sendErr error
	seq := uint64(0)
	rp.OnUpdate = func(u engine.Update) {
		if sendErr != nil {
			return
		}
		for _, p := range u.Positions {
			if seq < from {
				continue
			}
			if decimated && seq%t0DecimateEvery != 0 {
				continue
			}
			select {
			case sub.ch <- pointEvent(u.Tag, p, seq):
			case <-sub.cancel:
				sendErr = errCatchupCancelled
				return
			}
		}
	}
	err = s.reg.cfg.WAL.Replay(s.ID, head, func(rec wal.Record) error {
		seq = rec.Seq
		switch rec.Type {
		case wal.RecordReport:
			if err := rp.Offer(rec.Report); err != nil {
				return err
			}
		case wal.RecordFlush, wal.RecordClose:
			rp.Flush()
		}
		return sendErr
	})
	if err == nil && sendErr == nil {
		rp.Flush()
	}
	if errors.Is(err, errCatchupCancelled) || errors.Is(sendErr, errCatchupCancelled) {
		return nil // detach mid-replay is a clean end, not a failure
	}
	if err != nil {
		return err
	}
	return sendErr
}

var errCatchupCancelled = errors.New("server: catch-up cancelled")

// effectiveSearch resolves a retrace's search: an explicit override
// wins; otherwise the session's own configuration, so a plain retrace of
// a session opened with a search override is byte-identical to its live
// trace rather than silently reverting to the deployment default.
func (s *Session) effectiveSearch(override *vote.SearchConfig) *vote.SearchConfig {
	if override != nil {
		return override
	}
	return s.search
}

// pointEvent converts one replayed position into the event shape the
// live onUpdate path emits, plus its producing log sequence.
func pointEvent(tag string, p realtime.Position, seq uint64) Event {
	return Event{
		Type: "point", Tag: tag, T: p.Time, X: p.Pos.X, Z: p.Pos.Z,
		Confidence: p.Confidence, Hypotheses: p.Hypotheses, Switched: p.Switched,
		Seq: seq,
	}
}

// Retrace replays the session's WAL through a fresh tracking pipeline
// and returns each tag's batch-equivalent TraceResult. With search nil
// the pipeline is configured exactly as the live one, and the results
// are gob-byte-identical to the live trace of the recorded stream (the
// disk round-trip extension of the batch/streaming equivalence gate);
// a non-nil search re-traces the same record under different tunables.
// On a live session the pump drains first, so the retrace covers
// everything ingested before the call.
func (s *Session) Retrace(search *vote.SearchConfig) ([]engine.TagResult, uint64, error) {
	if s.reg.cfg.WAL == nil || s.reg.cfg.NewReplayer == nil {
		return nil, 0, ErrNoWAL
	}
	head := uint64(0)
	if !s.Recovered() {
		// Drain and snapshot the head in one pump step: everything at or
		// below a drain-boundary head is complete and synced on disk,
		// whereas reading walSeq from this goroutine could see a record
		// the pump is mid-write on. A session that closed under us is
		// fine — its log was completed and compacted by the close, so
		// the plain head read is stable.
		h, err := s.drainHead()
		if errors.Is(err, ErrSessionClosed) {
			h = s.walSeq.Load()
		} else if err != nil {
			return nil, 0, err
		}
		head = h
		if head == 0 {
			return nil, 0, fmt.Errorf("server: session %s has recorded nothing", s.ID)
		}
	}
	sweep := time.Duration(s.sweepNs.Load())
	if sweep <= 0 {
		return nil, 0, fmt.Errorf("server: session %s has recorded nothing", s.ID)
	}
	rp, err := s.reg.cfg.NewReplayer(sweep, s.geometry, s.effectiveSearch(search), true)
	if err != nil {
		return nil, 0, err
	}
	var last uint64
	err = s.reg.cfg.WAL.Replay(s.ID, head, func(rec wal.Record) error {
		last = rec.Seq
		switch rec.Type {
		case wal.RecordReport:
			return rp.Offer(rec.Report)
		case wal.RecordFlush, wal.RecordClose:
			rp.Flush()
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	// A final flush closes any open sweep; after a log whose last record
	// already was a flush it is a no-op (tracker flush idempotence), so
	// clean and torn logs retrace alike.
	rp.Flush()
	s.reg.metrics.Retraces.Add(1)
	s.timeline.Record(obs.EventRetrace, "head="+strconv.FormatUint(head, 10))
	s.touch() // retention clock: the record is in active use
	return rp.Results(), last, nil
}

// drainHead asks the pump to drain and report the log head at the drain
// boundary.
func (s *Session) drainHead() (uint64, error) {
	ch := make(chan uint64, 1)
	if err := s.enqueue(ingestItem{flushHead: ch}); err != nil {
		return 0, err
	}
	select {
	case h := <-ch:
		return h, nil
	case <-s.pumpDone:
		return 0, ErrSessionClosed
	}
}

// TraceResults returns the live engine's batch-equivalent per-tag trace
// results (sessions whose engines record traces; equivalence tests). It
// round-trips through the pump, draining first.
func (s *Session) TraceResults() ([]engine.TagResult, error) {
	ch := make(chan []engine.TagResult, 1)
	if err := s.enqueue(ingestItem{results: ch}); err != nil {
		return nil, err
	}
	select {
	case res := <-ch:
		return res, nil
	case <-s.pumpDone:
		return nil, ErrSessionClosed
	}
}

// WALSeq reports the session's current log head sequence (0 when the
// session records nothing).
func (s *Session) WALSeq() uint64 { return s.walSeq.Load() }
