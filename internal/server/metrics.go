package server

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync/atomic"

	"rfidraw/internal/obs"
)

// Metrics is the server-wide counter set, exposed in Prometheus text
// format on /metrics. All fields are monotonic counters unless noted.
type Metrics struct {
	SessionsCreated   atomic.Int64
	SessionsExpired   atomic.Int64
	SessionsClosed    atomic.Int64
	SessionsActive    atomic.Int64 // gauge
	SubscribersActive atomic.Int64 // gauge
	IngestConns       atomic.Int64
	Reports           atomic.Int64
	ReportsOutOfOrder atomic.Int64
	// ReorderLate counts reports that arrived after their reorder-window
	// slot was already released: the session resequencer delivered them
	// to the engine behind later-stamped reports (a reader's clock skew
	// exceeds RegistryConfig.ReorderWindow).
	ReorderLate   atomic.Int64
	ResyncBytes   atomic.Int64
	Points        atomic.Int64
	Glyphs        atomic.Int64
	EventsDropped atomic.Int64
	Shed          atomic.Int64
	// SearchEvalsRetired accumulates closed sessions' final search-eval
	// counts so rfidrawd_search_evals_total (retired + live sum) stays
	// monotonic when sessions are deleted or expire.
	SearchEvalsRetired atomic.Int64
	// LeaderSwitchesRetired and RetirementsRetired are the same
	// closed-session accumulators for the hypothesis counters.
	LeaderSwitchesRetired atomic.Int64
	RetirementsRetired    atomic.Int64

	// Durability counters. SessionsRecovered counts WAL sessions
	// rehydrated at startup; SessionsRetained (gauge) counts sessions
	// currently parked in the recovered state; Retraces counts WAL
	// re-trace runs; WALFailures counts sessions whose log was abandoned
	// after a write error; WALTornBytes accumulates bytes dropped
	// recovering damaged or torn records.
	SessionsRecovered atomic.Int64
	SessionsRetained  atomic.Int64 // gauge
	Retraces          atomic.Int64
	WALFailures       atomic.Int64
	WALTornBytes      atomic.Int64

	// Admission/control-plane counters. SessionsParked counts sessions
	// parked by the pressure loop or an operator verb (idle-expiry parks
	// are SessionsExpired); SessionsResumed counts parked sessions
	// brought back live; AdmissionRejected counts opens refused by the
	// congestion score (HTTP 429; the flat-cap 503s are in Shed).
	SessionsParked    atomic.Int64
	SessionsResumed   atomic.Int64
	AdmissionRejected atomic.Int64
	// Tiered-multicast counters. TierDowngrades/TierUpgrades count
	// adaptive tier transitions (a downgrade sheds stream weight for a
	// backlogged subscriber instead of dropping its events);
	// TierSubscribers (gauges) count attached subscribers by the tier
	// they are currently served at.
	TierDowngrades  atomic.Int64
	TierUpgrades    atomic.Int64
	TierSubscribers [3]atomic.Int64 // gauge per tier
	// congestionBits is the latest congestion score's float64 bits
	// (gauge; written by Registry.RefreshCongestion).
	congestionBits atomic.Uint64
}

// setCongestion publishes the latest congestion score.
func (m *Metrics) setCongestion(score float64) {
	m.congestionBits.Store(math.Float64bits(score))
}

// Congestion reads the published congestion score.
func (m *Metrics) Congestion() float64 {
	return math.Float64frombits(m.congestionBits.Load())
}

// counterDef drives the text rendering.
type counterDef struct {
	name, help, typ string
	val             func(m *Metrics) int64
}

var counterDefs = []counterDef{
	{"rfidrawd_sessions_created_total", "Sessions created.", "counter", func(m *Metrics) int64 { return m.SessionsCreated.Load() }},
	{"rfidrawd_sessions_expired_total", "Sessions expired by idle GC.", "counter", func(m *Metrics) int64 { return m.SessionsExpired.Load() }},
	{"rfidrawd_sessions_closed_total", "Sessions closed (any reason).", "counter", func(m *Metrics) int64 { return m.SessionsClosed.Load() }},
	{"rfidrawd_sessions_active", "Live sessions.", "gauge", func(m *Metrics) int64 { return m.SessionsActive.Load() }},
	{"rfidrawd_subscribers_active", "Attached stream subscribers.", "gauge", func(m *Metrics) int64 { return m.SubscribersActive.Load() }},
	{"rfidrawd_ingest_connections_total", "Reader connections accepted by the ingest gateway.", "counter", func(m *Metrics) int64 { return m.IngestConns.Load() }},
	{"rfidrawd_reports_total", "Phase reports ingested.", "counter", func(m *Metrics) int64 { return m.Reports.Load() }},
	{"rfidrawd_reports_out_of_order_total", "Reports dropped for regressing their reader's clock.", "counter", func(m *Metrics) int64 { return m.ReportsOutOfOrder.Load() }},
	{"rfidrawd_reorder_late_total", "Reports delivered to the engine after their reorder-window slot was released (reader clock skew beyond the window).", "counter", func(m *Metrics) int64 { return m.ReorderLate.Load() }},
	{"rfidrawd_resync_bytes_total", "Bytes skipped re-locking onto damaged reader streams.", "counter", func(m *Metrics) int64 { return m.ResyncBytes.Load() }},
	{"rfidrawd_points_total", "Trace points emitted to sessions.", "counter", func(m *Metrics) int64 { return m.Points.Load() }},
	{"rfidrawd_glyphs_total", "Glyphs recognized from completed strokes.", "counter", func(m *Metrics) int64 { return m.Glyphs.Load() }},
	{"rfidrawd_events_dropped_total", "Events dropped by the slow-consumer policy.", "counter", func(m *Metrics) int64 { return m.EventsDropped.Load() }},
	{"rfidrawd_shed_total", "Requests shed by admission control (HTTP 503).", "counter", func(m *Metrics) int64 { return m.Shed.Load() }},
	{"rfidrawd_sessions_recovered_total", "Sessions rehydrated from retained WALs at startup.", "counter", func(m *Metrics) int64 { return m.SessionsRecovered.Load() }},
	{"rfidrawd_sessions_retained", "Sessions parked in the recovered state (WAL-only, no engine).", "gauge", func(m *Metrics) int64 { return m.SessionsRetained.Load() }},
	{"rfidrawd_retraces_total", "WAL re-trace runs served.", "counter", func(m *Metrics) int64 { return m.Retraces.Load() }},
	{"rfidrawd_wal_failures_total", "Sessions whose WAL was abandoned after a write error.", "counter", func(m *Metrics) int64 { return m.WALFailures.Load() }},
	{"rfidrawd_wal_torn_bytes_total", "Bytes dropped recovering damaged or torn WAL records.", "counter", func(m *Metrics) int64 { return m.WALTornBytes.Load() }},
	{"rfidrawd_sessions_parked_total", "Sessions parked under pressure or by operator verb.", "counter", func(m *Metrics) int64 { return m.SessionsParked.Load() }},
	{"rfidrawd_sessions_resumed_total", "Parked sessions resumed live.", "counter", func(m *Metrics) int64 { return m.SessionsResumed.Load() }},
	{"rfidrawd_admission_rejected_total", "Session opens refused by the congestion score (HTTP 429).", "counter", func(m *Metrics) int64 { return m.AdmissionRejected.Load() }},
	{"rfidrawd_tier_downgrades_total", "Adaptive tier step-downs taken by backlogged subscribers.", "counter", func(m *Metrics) int64 { return m.TierDowngrades.Load() }},
	{"rfidrawd_tier_upgrades_total", "Adaptive tier step-ups after sustained calm backlog.", "counter", func(m *Metrics) int64 { return m.TierUpgrades.Load() }},
}

// liveSums carries the per-scrape values summed over live sessions by
// the metrics handler (counters also fold in the closed-session retired
// accumulators so they stay monotonic).
type liveSums struct {
	searchEvals    int64
	hypotheses     int64
	leaderSwitches int64
	retirements    int64
	reportsPerSec  float64
	walBytes       int64
	walSegments    int64
	// score is the congestion score refreshed for this scrape, with its
	// per-resource component breakdown.
	score NodeScore
	// pipeline, when non-nil, renders the stage and end-to-end latency
	// histograms.
	pipeline *obs.Pipeline
}

// render writes the metrics in Prometheus text exposition format.
func (m *Metrics) render(w io.Writer, live liveSums) {
	for _, d := range counterDefs {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", d.name, d.help, d.name, d.typ, d.name, d.val(m))
	}
	fmt.Fprintf(w, "# HELP rfidrawd_search_evals_total Vote-surface evaluations spent by live sessions.\n# TYPE rfidrawd_search_evals_total counter\nrfidrawd_search_evals_total %d\n", live.searchEvals)
	fmt.Fprintf(w, "# HELP rfidrawd_hypotheses_active Candidate hypotheses currently advanced by live sessions' multi-streams.\n# TYPE rfidrawd_hypotheses_active gauge\nrfidrawd_hypotheses_active %d\n", live.hypotheses)
	fmt.Fprintf(w, "# HELP rfidrawd_leader_switches_total Leading-hypothesis changes (the over-time candidate disambiguation re-electing).\n# TYPE rfidrawd_leader_switches_total counter\nrfidrawd_leader_switches_total %d\n", live.leaderSwitches)
	fmt.Fprintf(w, "# HELP rfidrawd_hypothesis_retirements_total Hypotheses retired for collapsed vote records.\n# TYPE rfidrawd_hypothesis_retirements_total counter\nrfidrawd_hypothesis_retirements_total %d\n", live.retirements)
	fmt.Fprintf(w, "# HELP rfidrawd_reports_per_second Ingest rate over the last scrape interval.\n# TYPE rfidrawd_reports_per_second gauge\nrfidrawd_reports_per_second %.1f\n", live.reportsPerSec)
	fmt.Fprintf(w, "# HELP rfidrawd_wal_bytes On-disk bytes across all retained session logs.\n# TYPE rfidrawd_wal_bytes gauge\nrfidrawd_wal_bytes %d\n", live.walBytes)
	fmt.Fprintf(w, "# HELP rfidrawd_wal_segments Segment files across all retained session logs.\n# TYPE rfidrawd_wal_segments gauge\nrfidrawd_wal_segments %d\n", live.walSegments)
	fmt.Fprintf(w, "# HELP rfidrawd_congestion_score Node congestion score (max capacity-normalized demand component; admission sheds past the shed threshold).\n# TYPE rfidrawd_congestion_score gauge\nrfidrawd_congestion_score %.4f\n", live.score.Score)
	fmt.Fprintf(w, "# HELP rfidrawd_congestion_component Capacity-normalized demand per resource.\n# TYPE rfidrawd_congestion_component gauge\n")
	c := live.score.Components
	fmt.Fprintf(w, "rfidrawd_congestion_component{resource=\"search_evals\"} %.4f\n", c.SearchEvals)
	fmt.Fprintf(w, "rfidrawd_congestion_component{resource=\"wal_bytes\"} %.4f\n", c.WALBytes)
	fmt.Fprintf(w, "rfidrawd_congestion_component{resource=\"reorder_late\"} %.4f\n", c.ReorderLate)
	fmt.Fprintf(w, "rfidrawd_congestion_component{resource=\"backlog\"} %.4f\n", c.Backlog)
	fmt.Fprintf(w, "rfidrawd_congestion_component{resource=\"session_slots\"} %.4f\n", c.SessionSlots)
	fmt.Fprintf(w, "rfidrawd_congestion_component{resource=\"tier_pressure\"} %.4f\n", c.TierPressure)
	fmt.Fprintf(w, "# HELP rfidrawd_tier_subscribers Attached stream subscribers by the trace tier currently served.\n# TYPE rfidrawd_tier_subscribers gauge\n")
	for t := range m.TierSubscribers {
		fmt.Fprintf(w, "rfidrawd_tier_subscribers{tier=\"%d\"} %d\n", t, m.TierSubscribers[t].Load())
	}
	fmt.Fprintf(w, "# HELP rfidrawd_goroutines Current goroutine count (soak leak gate).\n# TYPE rfidrawd_goroutines gauge\nrfidrawd_goroutines %d\n", runtime.NumGoroutine())
	if live.pipeline != nil {
		live.pipeline.Render(w)
	}
	fmt.Fprintf(w, "# HELP rfidrawd_build_info Build identity; the value is always 1.\n# TYPE rfidrawd_build_info gauge\n")
	fmt.Fprintf(w, "rfidrawd_build_info{version=%q,go_version=%q} 1\n", obs.BuildVersion(), obs.GoVersion())
	fmt.Fprintf(w, "# HELP rfidrawd_process_start_time_seconds Unix time the process started.\n# TYPE rfidrawd_process_start_time_seconds gauge\nrfidrawd_process_start_time_seconds %.3f\n", float64(obs.StartTime.UnixNano())/1e9)
}
