package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rfidraw/internal/obs"
	"rfidraw/internal/readerwire"
	"rfidraw/internal/realtime"
)

// tierServer starts a daemon with subscriber queues deep enough that no
// adaptive downgrade can fire, so tier streams differ only by
// classification, never by backlog pressure.
func tierServer(t *testing.T) *Server {
	t.Helper()
	srv, err := New(Config{
		HTTPAddr:   "127.0.0.1:0",
		IngestAddr: "127.0.0.1:0",
		Registry: RegistryConfig{
			NewEngine:       testFactory(t),
			SubscriberQueue: 1 << 15,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// feedOverIngest replays the scenario into a session over the ingest
// gateway and drains it, so every derived event has reached subscribers.
func feedOverIngest(t *testing.T, ctx context.Context, c *Client, id string) {
	t.Helper()
	run, _ := scenario(t)
	rs, err := c.DialIngest(id, readerwire.Hello{
		Proto: readerwire.ProtoVersion, ReaderID: 1, AntennaCount: 4,
		SweepInterval: perTagSweep(run),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range realtime.MergeStreams(run.ReportsRF...) {
		if err := rs.Send(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.DrainSession(ctx, id); err != nil {
		t.Fatal(err)
	}
}

// pointKey identifies one position event across tier streams.
func pointKey(ev Event) string {
	return fmt.Sprintf("%s|%d|%g|%g", ev.Tag, ev.T, ev.X, ev.Z)
}

// countByType tallies a decoded stream by event type.
func countByType(evs []Event) map[string]int {
	out := map[string]int{}
	for _, ev := range evs {
		out[ev.Type]++
	}
	return out
}

// TestTierStreamSubsets pins the tier classification contract:
// T0 ⊆ T1 ⊆ T2 as event sets, with T0 a strict decimation of T1's
// points and the diagnostic "stroke" closures exclusive to T2.
func TestTierStreamSubsets(t *testing.T) {
	srv := tierServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	base := "http://" + srv.HTTPAddr()
	clients := map[string]*Client{
		"0": {BaseURL: base, Tier: "0", SubscribeBuffer: 1024},
		"1": {BaseURL: base, Tier: "1", SubscribeBuffer: 1024},
		"2": {BaseURL: base, Tier: "2", SubscribeBuffer: 1024},
	}
	run, _ := scenario(t)
	id, err := clients["1"].CreateSession(ctx, SessionSpec{ID: "tier-subsets", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	streams := map[string]*[]Event{}
	errsByTier := map[string]<-chan error{}
	var wg sync.WaitGroup
	for tier, c := range clients {
		events, errs, err := c.Subscribe(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		errsByTier[tier] = errs
		out := &[]Event{}
		streams[tier] = out
		wg.Add(1)
		go collectEvents(events, out, &wg)
	}
	feedOverIngest(t, ctx, clients["1"], id)
	if err := clients["1"].DeleteSession(ctx, id); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for tier, errs := range errsByTier {
		select {
		case err := <-errs:
			t.Fatalf("tier %s stream error: %v", tier, err)
		default:
		}
	}

	counts := map[string]map[string]int{}
	for tier, evs := range streams {
		counts[tier] = countByType(*evs)
		if n := counts[tier]["drop"]; n != 0 {
			t.Fatalf("tier %s saw %d drop events under deep queues", tier, n)
		}
	}
	// The diagnostic closures are T2-only; every tier sees the glyphs.
	for _, tier := range []string{"0", "1"} {
		if n := counts[tier]["stroke"]; n != 0 {
			t.Fatalf("tier %s leaked %d stroke diagnostics", tier, n)
		}
		if n := counts[tier]["tier"]; n != 0 {
			t.Fatalf("tier %s saw %d tier transitions under deep queues", tier, n)
		}
	}
	if counts["2"]["stroke"] == 0 {
		t.Fatal("tier 2 stream carried no stroke diagnostics")
	}
	if counts["0"]["glyph"] == 0 || counts["0"]["glyph"] != counts["2"]["glyph"] {
		t.Fatalf("glyphs not tier-invariant: %d (T0) vs %d (T2)", counts["0"]["glyph"], counts["2"]["glyph"])
	}
	// Point subsets: T0 ⊂ T1 = T2's points, with T0 genuinely decimated.
	points := map[string]map[string]int{}
	for tier, evs := range streams {
		points[tier] = map[string]int{}
		for _, ev := range *evs {
			if ev.Type == "point" {
				points[tier][pointKey(ev)]++
			}
		}
	}
	if len(points["0"]) == 0 {
		t.Fatal("tier 0 stream carried no points")
	}
	if c0, c1 := counts["0"]["point"], counts["1"]["point"]; c0*2 >= c1 {
		t.Fatalf("tier 0 not meaningfully decimated: %d of %d points", c0, c1)
	}
	subset := func(inner, outer map[string]int, name string) {
		for k, n := range inner {
			if outer[k] < n {
				t.Fatalf("%s: point %s appears %d times in the narrower stream, %d in the wider", name, k, n, outer[k])
			}
		}
	}
	subset(points["0"], points["1"], "T0 ⊆ T1")
	subset(points["1"], points["2"], "T1 ⊆ T2")
	subset(points["2"], points["1"], "T2 points = T1 points")
}

// rawStream GETs a stream URL and returns the whole body (the stream
// ends when the session closes).
func rawStream(t *testing.T, url string, accept string) ([]byte, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// TestTierT1ByteIdentity is the compatibility gate for the tiered
// fan-out: a stream negotiated with ?tier=1 is byte-for-byte the
// unnegotiated default stream, in both encodings, and neither carries
// any of the new tier-era event types.
func TestTierT1ByteIdentity(t *testing.T) {
	srv := tierServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := &Client{BaseURL: "http://" + srv.HTTPAddr()}
	run, _ := scenario(t)
	id, err := c.CreateSession(ctx, SessionSpec{ID: "tier-bytes", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	stream := c.BaseURL + "/v1/sessions/" + id + "/stream"
	urls := map[string]string{
		"default-ndjson": stream,
		"tier1-ndjson":   stream + "?tier=1",
		"default-binary": stream + "?encoding=binary",
		"tier1-binary":   stream + "?encoding=binary&tier=1",
	}
	bodies := map[string][]byte{}
	errs := map[string]error{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for name, url := range urls {
		wg.Add(1)
		go func(name, url string) {
			defer wg.Done()
			b, err := rawStream(t, url, "")
			mu.Lock()
			bodies[name], errs[name] = b, err
			mu.Unlock()
		}(name, url)
	}
	// Give every subscriber time to attach before events flow; an attach
	// race would legitimately fork the streams at the front.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sess, ok := srv.reg.Get(id)
		if !ok {
			t.Fatal("session vanished")
		}
		if sess.Subscribers() == len(urls) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d subscribers attached", sess.Subscribers(), len(urls))
		}
		time.Sleep(5 * time.Millisecond)
	}
	feedOverIngest(t, ctx, c, id)
	if err := c.DeleteSession(ctx, id); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for name, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if !bytes.Equal(bodies["default-ndjson"], bodies["tier1-ndjson"]) {
		t.Fatalf("?tier=1 NDJSON stream diverged from the default (%d vs %d bytes)",
			len(bodies["tier1-ndjson"]), len(bodies["default-ndjson"]))
	}
	if !bytes.Equal(bodies["default-binary"], bodies["tier1-binary"]) {
		t.Fatalf("?tier=1 binary stream diverged from the default (%d vs %d bytes)",
			len(bodies["tier1-binary"]), len(bodies["default-binary"]))
	}
	if len(bodies["default-ndjson"]) == 0 || len(bodies["default-binary"]) == 0 {
		t.Fatal("empty stream bodies")
	}
	// The default stream must not have grown any tier-era event types.
	for _, line := range strings.Split(strings.TrimSpace(string(bodies["default-ndjson"])), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch ev.Type {
		case "tier", "stroke":
			t.Fatalf("tier-era event %q leaked into the default stream", ev.Type)
		}
	}
	er := NewEventReader(bytes.NewReader(bodies["default-binary"]))
	for {
		ev, err := er.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case "tier", "stroke":
			t.Fatalf("tier-era event %q leaked into the default binary stream", ev.Type)
		}
	}
}

// TestTierEventJSONShape pins the new control/diagnostic events' JSON:
// no phantom "x":0,"z":0 (they are not positions), while the frozen
// point shape marshals exactly as before the tier refactor.
func TestTierEventJSONShape(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{Type: "tier", Tier: 1, FromTier: 2, Reason: "backlog"},
			`{"type":"tier","tier":1,"from":2,"reason":"backlog"}`},
		{Event{Type: "tier", Tier: 1, FromTier: 0},
			`{"type":"tier","tier":1,"from":0}`},
		{Event{Type: "stroke", Tag: "pen", T: 5 * time.Millisecond, Points: 9},
			`{"type":"stroke","tag":"pen","t_ns":5000000,"points":9}`},
		{Event{Type: "point", Tag: "pen", T: time.Millisecond, Confidence: 0.5},
			`{"type":"point","tag":"pen","t_ns":1000000,"x":0,"z":0,"confidence":0.5}`},
		{Event{Type: "end"},
			`{"type":"end","x":0,"z":0}`},
	}
	for _, tc := range cases {
		got, err := json.Marshal(&tc.ev)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != tc.want {
			t.Fatalf("event %+v marshaled to %s, want %s", tc.ev, got, tc.want)
		}
	}
}

// TestTierForcedDowngrade drives the adaptive policy deterministically:
// a Tier2 subscriber whose queue fill crosses the downgrade threshold
// steps down tier by tier, each transition announced in-stream as a
// "tier" event, recorded on the session timeline and in the metrics,
// with the stream continuing gaplessly at the reduced tier — and steps
// back up after sustained calm.
func TestTierForcedDowngrade(t *testing.T) {
	run, _ := scenario(t)
	reg := testRegistry(t, RegistryConfig{})
	downgradesBefore := reg.metrics.TierDowngrades.Load()
	sess, err := reg.Open(SessionSpec{ID: "tier-downgrade", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	const buffer = 16
	sub, err := sess.SubscribeOpts(SubscribeOptions{Tier: Tier2, Buffer: buffer})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if got := sub.Tier(); got != 2 {
		t.Fatalf("negotiated tier = %d, want 2", got)
	}
	point := func(i int, minTier uint8) Event {
		return Event{
			Type: "point", Tag: "pen", T: time.Duration(i) * time.Millisecond,
			X: float64(i), Z: -float64(i), minTier: minTier,
		}
	}
	// Fill to the downgrade threshold without consuming: the retune at
	// each delivery sees fill (i-1)/16, so broadcasts 13 and 14 cross
	// 0.75 twice — 2→1 then 1→0 — and queue exactly: 12 points, a tier
	// event, 1 point, a tier event, 1 T0 point (the T1-only point after
	// the second downgrade is filtered, not dropped).
	for i := 1; i <= 13; i++ {
		sess.broadcast(point(i, 1))
	}
	sess.broadcast(point(14, 1))
	sess.broadcast(point(15, 0))

	var got []Event
drain:
	for {
		select {
		case ev := <-sub.Events():
			got = append(got, ev)
		default:
			break drain
		}
	}
	types := make([]string, len(got))
	for i, ev := range got {
		types[i] = ev.Type
	}
	want := []string{
		"point", "point", "point", "point", "point", "point",
		"point", "point", "point", "point", "point", "point",
		"tier", "point", "tier", "point",
	}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("stream sequence %v, want %v", types, want)
	}
	if tr := got[12]; tr.Tier != 1 || tr.FromTier != 2 || tr.Reason != "backlog" {
		t.Fatalf("first transition %+v, want 2->1 (backlog)", tr)
	}
	if tr := got[14]; tr.Tier != 0 || tr.FromTier != 1 || tr.Reason != "backlog" {
		t.Fatalf("second transition %+v, want 1->0 (backlog)", tr)
	}
	if got[15].X != 15 {
		t.Fatalf("post-downgrade stream not gapless: got point %+v, want X=15", got[15])
	}
	if sub.Drops() != 0 {
		t.Fatalf("downgrade path dropped %d events", sub.Drops())
	}
	if got := sub.Tier(); got != 0 {
		t.Fatalf("tier after downgrades = %d, want 0", got)
	}
	if n := sub.Downgrades(); n != 2 {
		t.Fatalf("subscriber downgrades = %d, want 2", n)
	}
	if n := sess.TierDowngrades(); n != 2 {
		t.Fatalf("session downgrades = %d, want 2", n)
	}
	if n := reg.metrics.TierDowngrades.Load() - downgradesBefore; n != 2 {
		t.Fatalf("metrics downgrades moved %d, want 2", n)
	}
	if n := reg.metrics.TierSubscribers[0].Load(); n < 1 {
		t.Fatalf("tier-0 subscriber gauge = %d, want >= 1", n)
	}
	transitions := 0
	for _, ev := range sess.Events() {
		if ev.Type == obs.EventTierChange {
			transitions++
		}
	}
	if transitions != 2 {
		t.Fatalf("timeline recorded %d tier changes, want 2", transitions)
	}

	// Sustained calm steps back up: with the queue drained at every
	// delivery, upgradeAfterCalm calm deliveries earn one step.
	var upgrades []Event
	for i := 0; i < 3*upgradeAfterCalm+6; i++ {
		sess.broadcast(point(100+i, 0))
		for {
			ev, ok := <-sub.Events()
			if !ok {
				t.Fatal("subscriber closed during calm phase")
			}
			if ev.Type == "tier" {
				upgrades = append(upgrades, ev)
				continue
			}
			break
		}
	}
	if len(upgrades) != 2 {
		t.Fatalf("calm phase produced %d transitions, want 2 (0->1->2): %+v", len(upgrades), upgrades)
	}
	if upgrades[0].Tier != 1 || upgrades[0].FromTier != 0 || upgrades[0].Reason != "recovered" {
		t.Fatalf("first upgrade %+v, want 0->1 (recovered)", upgrades[0])
	}
	if upgrades[1].Tier != 2 || upgrades[1].FromTier != 1 {
		t.Fatalf("second upgrade %+v, want 1->2", upgrades[1])
	}
	if got := sub.Tier(); got != 2 {
		t.Fatalf("tier after recovery = %d, want the negotiated 2", got)
	}
}

// TestStreamTierNegotiation pins the HTTP-layer tier parsing: a bad
// ?tier is a 400 with the standard envelope, and the client validates
// its Tier field before dialing.
func TestStreamTierNegotiation(t *testing.T) {
	srv := tierServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := &Client{BaseURL: "http://" + srv.HTTPAddr()}
	run, _ := scenario(t)
	id, err := c.CreateSession(ctx, SessionSpec{ID: "tier-negotiate", Sweep: perTagSweep(run)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL + "/v1/sessions/" + id + "/stream?tier=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?tier=3 answered %d, want 400", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "bad_request" {
		t.Fatalf("?tier=3 error code %q, want bad_request", env.Error.Code)
	}
	bad := &Client{BaseURL: c.BaseURL, Tier: "fast"}
	if _, _, err := bad.Subscribe(ctx, id); err == nil {
		t.Fatal("client accepted tier \"fast\"")
	}
}
