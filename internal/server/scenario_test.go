package server

import (
	"bytes"
	"os"
	"sync"
	"testing"
	"time"

	"rfidraw/internal/corpus"
	"rfidraw/internal/deploy"
	"rfidraw/internal/engine"
	"rfidraw/internal/geom"
	"rfidraw/internal/realtime"
	"rfidraw/internal/rfid"
	"rfidraw/internal/sim"
	"rfidraw/internal/traj"
)

// The TestScenario* suite drives every named corpus profile through the
// serving layer and holds the PR's adversarial gates: faultgen output is
// reproducible byte-for-byte from (profile, seed); the live==WAL-retrace
// equivalence chain stays gob-byte-identical under every fault profile
// (crash image mid-fault, no clean close); and faulted runs degrade
// gracefully against the clean control. The CI scenario matrix runs one
// profile per job via RFIDRAW_SCENARIO_PROFILE.

// profilesUnderTest honors the CI matrix's profile filter.
func profilesUnderTest(t *testing.T) []corpus.Profile {
	t.Helper()
	name := os.Getenv("RFIDRAW_SCENARIO_PROFILE")
	if name == "" {
		return corpus.Profiles()
	}
	p, err := corpus.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return []corpus.Profile{p}
}

// profileRun is one profile's cached simulated scenario: the clean run
// and the faulted report stream in arrival order. Faults are applied to
// the merged (true-time-ordered) stream, not per reader: arrival order
// is wall-clock order, so a reader whose clock is skewed hands the pump
// timestamps that genuinely disagree with its neighbors' — re-sorting by
// the faulted timestamps would hide exactly the disorder the reorder
// window exists to absorb.
type profileRun struct {
	run     *sim.MultiWordRun
	merged  []rfid.Report // unfaulted, true arrival order
	faulted []rfid.Report
	sweep   time.Duration // per-tag cadence
}

var (
	profileRunMu sync.Mutex
	profileRuns  = map[string]*profileRun{}
)

// scenarioFor builds (once per profile) the simulated scenario on the
// profile's geometry and propagation, then applies its fault plan.
func scenarioFor(t *testing.T, p corpus.Profile) *profileRun {
	t.Helper()
	profileRunMu.Lock()
	defer profileRunMu.Unlock()
	if pr, ok := profileRuns[p.Name]; ok {
		return pr
	}
	spec, err := deploy.GeometryByName(p.Geometry)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := spec.BuildDefault()
	if err != nil {
		t.Fatal(err)
	}
	prop := sim.LOS
	if p.NLOS {
		prop = sim.NLOS
	}
	sc, err := sim.New(sim.Config{
		Prop:       prop,
		Seed:       p.Seed,
		Deployment: dep,
		Region:     spec.Region(),
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sc.RunWords(
		[]string{"hi", "go"},
		[]geom.Vec2{{X: 0.5, Z: 1.0}, {X: 1.6, Z: 1.4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	merged := realtime.MergeStreams(run.ReportsRF...)
	pr := &profileRun{
		run:     run,
		merged:  merged,
		faulted: p.Plan().Apply(merged),
		sweep:   run.SweepInterval * time.Duration(len(run.Tags)),
	}
	profileRuns[p.Name] = pr
	return pr
}

// TestScenarioFaultgenReproducible: a profile's faulted streams are a
// pure function of (profile, seed) — two applications are byte-identical.
func TestScenarioFaultgenReproducible(t *testing.T) {
	for _, p := range profilesUnderTest(t) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			pr := scenarioFor(t, p)
			again := p.Plan().Apply(pr.merged)
			if !bytes.Equal(gobBytes(t, pr.faulted), gobBytes(t, again)) {
				t.Fatalf("profile %s: fault application is not reproducible", p.Name)
			}
			// Splitting per reader and faulting the splits must agree with
			// faulting the merged stream: the per-reader rng streams are
			// keyed by reader, not by slice.
			split := p.Plan().ApplyAll(pr.run.ReportsRF)
			perReader := map[int][]rfid.Report{}
			for _, rep := range pr.faulted {
				perReader[rep.ReaderID] = append(perReader[rep.ReaderID], rep)
			}
			for i, s := range split {
				if !bytes.Equal(gobBytes(t, s), gobBytes(t, perReader[i])) {
					t.Fatalf("profile %s: reader %d: split-faulted stream disagrees with merged-faulted", p.Name, i)
				}
			}
			if reseed := (corpus.Profile{Name: p.Name, Seed: p.Seed + 1, Faults: p.Faults}); p.Plan().Active() &&
				hasRandomFault(p) &&
				bytes.Equal(gobBytes(t, pr.faulted), gobBytes(t, reseed.Plan().Apply(pr.merged))) {
				t.Fatalf("profile %s: seed does not drive fault randomness", p.Name)
			}
		})
	}
}

// hasRandomFault reports whether any of the profile's faults consume the
// seeded random stream (deterministic faults are seed-invariant).
func hasRandomFault(p corpus.Profile) bool {
	for _, f := range p.Faults {
		if f.DuplicateProb > 0 || f.ShuffleWindow > 0 {
			return true
		}
	}
	return false
}

// feedPrefix offers the first two thirds of the faulted merged stream —
// the crash lands mid-fault (inside death intervals, dropout periods and
// duplicate bursts) — then flushes and snapshots the live trace.
func feedPrefix(t *testing.T, sess *Session, pr *profileRun) []engine.TagResult {
	t.Helper()
	if len(pr.faulted) == 0 {
		t.Fatal("faulted scenario produced no reports")
	}
	prefix := pr.faulted[:2*len(pr.faulted)/3]
	for _, rep := range prefix {
		if err := sess.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	live, err := sess.TraceResults()
	if err != nil {
		t.Fatal(err)
	}
	return live
}

// requireSameResults asserts two result sets are identical: same tags in
// the same order, same error-ness, and gob-byte-identical traces.
func requireSameResults(t *testing.T, label string, a, b []engine.TagResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d tags vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Tag != b[i].Tag {
			t.Fatalf("%s: tag order %s vs %s", label, a[i].Tag, b[i].Tag)
		}
		if (a[i].Err == nil) != (b[i].Err == nil) {
			t.Fatalf("%s: tag %s: error mismatch: %v vs %v", label, a[i].Tag, a[i].Err, b[i].Err)
		}
		if a[i].Err != nil {
			continue
		}
		if !bytes.Equal(gobBytes(t, a[i].Result), gobBytes(t, b[i].Result)) {
			t.Fatalf("%s: tag %s: results differ byte-for-byte", label, a[i].Tag)
		}
	}
}

// TestScenarioEquivalenceChain is the tentpole gate, per profile: a
// session fed the faulted stream, crash-imaged mid-fault with no close
// record, recovered by a fresh registry and retraced, must reproduce the
// live trace gob-byte-identically — and a second retrace must reproduce
// the first. This also covers the WAL-recovery satellite for dup-flood
// and reader-loss: the crash lands inside their fault windows.
func TestScenarioEquivalenceChain(t *testing.T) {
	for _, p := range profilesUnderTest(t) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			pr := scenarioFor(t, p)
			dir := t.TempDir()
			reg := walRegistry(t, dir)
			sess, err := reg.Open(SessionSpec{ID: "scen-" + p.Name, Sweep: pr.sweep, Geometry: p.Geometry})
			if err != nil {
				t.Fatal(err)
			}
			if sess.Geometry() != p.Geometry {
				t.Fatalf("session geometry %q, want %q", sess.Geometry(), p.Geometry)
			}
			live := feedPrefix(t, sess, pr)
			if len(live) == 0 {
				t.Fatal("live trace saw no tags")
			}
			if p.Name == "clean" {
				for _, r := range live {
					if r.Err != nil {
						t.Fatalf("clean profile: tag %s failed live: %v", r.Tag, r.Err)
					}
				}
			}

			// SIGKILL: the data dir as-is, mid-fault, no close record.
			crashDir := t.TempDir()
			copyTree(t, dir, crashDir)

			reg2 := walRegistry(t, crashDir)
			sess2, ok := reg2.Get("scen-" + p.Name)
			if !ok {
				t.Fatal("crashed session not rehydrated")
			}
			if sess2.Geometry() != p.Geometry {
				t.Fatalf("recovered geometry %q, want %q (WAL meta lost it)", sess2.Geometry(), p.Geometry)
			}
			retraced, head, err := sess2.Retrace(nil)
			if err != nil {
				t.Fatal(err)
			}
			if head == 0 {
				t.Fatal("retrace covered nothing")
			}
			requireSameResults(t, "live vs retrace", live, retraced)
			again, _, err := sess2.Retrace(nil)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResults(t, "retrace vs retrace", retraced, again)
		})
	}
}

// TestScenarioReorderLate: the drift profile's 40ms skew exceeds the 25ms
// reorder window, so late deliveries must be counted — and the clean
// profile must count none. (The per-session counter feeds the
// rfidrawd_reorder_late_total metric.)
func TestScenarioReorderLate(t *testing.T) {
	for _, p := range profilesUnderTest(t) {
		p := p
		if p.Name != "clean" && p.Name != "drift" {
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			pr := scenarioFor(t, p)
			reg := walRegistry(t, t.TempDir())
			sess, err := reg.Open(SessionSpec{ID: "late-" + p.Name, Sweep: pr.sweep, Geometry: p.Geometry})
			if err != nil {
				t.Fatal(err)
			}
			for _, rep := range pr.faulted {
				if err := sess.Offer(rep); err != nil {
					t.Fatal(err)
				}
			}
			if err := sess.Flush(); err != nil {
				t.Fatal(err)
			}
			late := sess.reorderLate.Load()
			if p.Name == "drift" && late == 0 {
				t.Fatal("drift profile: skew beyond the reorder window counted no late reports")
			}
			if p.Name == "clean" && late != 0 {
				t.Fatalf("clean profile counted %d late reports", late)
			}
			if got := reg.metrics.ReorderLate.Load(); got != late {
				t.Fatalf("registry metric %d != session counter %d", got, late)
			}
		})
	}
}

// meanTraceError is the mean per-tag median position error of successful
// traces against ground truth; ok is how many tags traced at all.
func meanTraceError(t *testing.T, pr *profileRun, results []engine.TagResult) (mean float64, ok int) {
	t.Helper()
	byTag := map[string]int{}
	for i, tag := range pr.run.Tags {
		byTag[tag.EPC.String()] = i
	}
	var sum float64
	for _, r := range results {
		if r.Err != nil || r.Result == nil {
			continue
		}
		i, found := byTag[r.Tag]
		if !found {
			t.Fatalf("traced unknown tag %s", r.Tag)
		}
		med, err := traj.MedianError(pr.run.Truths[i], r.Result.Best.Trajectory, traj.AlignInitial, 64)
		if err != nil {
			t.Fatal(err)
		}
		sum += med
		ok++
	}
	if ok == 0 {
		return 0, 0
	}
	return sum / float64(ok), ok
}

// TestScenarioGracefulDegradation: faulted single-room profiles must
// still trace (no pump stall, points produced) with position error
// bounded relative to the clean control — faults degrade the trace, they
// must not detonate it. The multiroom profile only has to keep the
// equivalence chain (covered above): its second room's arrays hear the
// tag from far outside the calibrated regime.
func TestScenarioGracefulDegradation(t *testing.T) {
	clean, err := corpus.ProfileByName("clean")
	if err != nil {
		t.Fatal(err)
	}
	cleanPR := scenarioFor(t, clean)
	reg := walRegistry(t, t.TempDir())
	sessClean, err := reg.Open(SessionSpec{ID: "degrade-clean", Sweep: cleanPR.sweep})
	if err != nil {
		t.Fatal(err)
	}
	cleanResults := traceAll(t, sessClean, cleanPR)
	cleanErr, cleanOK := meanTraceError(t, cleanPR, cleanResults)
	if cleanOK != len(cleanPR.run.Tags) {
		t.Fatalf("clean control traced %d/%d tags", cleanOK, len(cleanPR.run.Tags))
	}
	if cleanErr > 0.25 {
		t.Fatalf("clean control error %.1f cm — control itself is broken", cleanErr*100)
	}

	for _, p := range profilesUnderTest(t) {
		p := p
		if p.Name == "clean" || p.Name == "multiroom" {
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			pr := scenarioFor(t, p)
			sess, err := reg.Open(SessionSpec{ID: "degrade-" + p.Name, Sweep: pr.sweep, Geometry: p.Geometry})
			if err != nil {
				t.Fatal(err)
			}
			results := traceAll(t, sess, pr)
			faultErr, ok := meanTraceError(t, pr, results)
			if ok == 0 {
				t.Fatalf("profile %s: no tag traced at all", p.Name)
			}
			// Generous absolute ceiling: faults may cost accuracy, but a
			// bounded amount — a detonated trace lands meters away or
			// nowhere.
			if faultErr > cleanErr+0.75 {
				t.Fatalf("profile %s: error %.1f cm vs clean %.1f cm — degradation unbounded",
					p.Name, faultErr*100, cleanErr*100)
			}
			t.Logf("profile %s: %d/%d tags, error %.1f cm (clean %.1f cm)",
				p.Name, ok, len(pr.run.Tags), faultErr*100, cleanErr*100)
		})
	}
}

// traceAll feeds the full faulted stream and returns the live trace.
func traceAll(t *testing.T, sess *Session, pr *profileRun) []engine.TagResult {
	t.Helper()
	for _, rep := range pr.faulted {
		if err := sess.Offer(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	results, err := sess.TraceResults()
	if err != nil {
		t.Fatal(err)
	}
	return results
}
